// Package multicore is a simulation-based reproduction of "Characterization
// of Scientific Workloads on Systems with Multi-Core Processors" (Alam,
// Barrett, Kuehn, Roth, Vetter — ORNL, IISWC 2006).
//
// The library models the paper's three AMD Opteron evaluation systems
// (Tiger, DMZ, and the eight-socket Longs/Iwill H8501 ladder), a
// numactl-style processor/memory affinity layer, and an MPI runtime with
// shared-memory transport sub-layers, then runs the paper's full workload
// stack on them: STREAM, BLAS, the HPC Challenge suite, the Intel MPI
// Benchmarks, NAS CG/FT, and application models of AMBER, LAMMPS, and POP.
//
// Entry points:
//
//   - internal/core: run any workload on any system under any placement.
//   - internal/experiments: regenerate every table and figure in the paper.
//   - cmd/mcbench, cmd/mcrun, cmd/mctopo: command-line tools.
//   - examples/: runnable demonstrations of the public API.
//
// See DESIGN.md for the system inventory and EXPERIMENTS.md for the
// paper-vs-measured comparison.
package multicore
