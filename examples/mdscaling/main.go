// MD scaling: run the paper's molecular-dynamics applications (AMBER JAC
// with PME, AMBER gb_mb with GB, and the three LAMMPS benchmarks) across
// core counts on the 16-core Longs system, reproducing Table 8 and
// Table 10's contrast: compute-bound GB and the polymer chain scale
// (super)linearly while PME saturates on its force all-reduce.
package main

import (
	"fmt"

	"multicore/internal/apps/amber"
	"multicore/internal/apps/lammps"
	"multicore/internal/core"
	"multicore/internal/mpi"
)

func main() {
	counts := []int{1, 2, 4, 8, 16}

	fmt.Println("Simulated MD scaling on Longs (8 sockets x 2 cores)")
	fmt.Println()
	fmt.Printf("%-14s", "cores")
	for _, n := range counts {
		fmt.Printf("%8d", n)
	}
	fmt.Println()

	printRow("JAC (PME)", counts, func(ranks int) float64 {
		return amberTime("JAC", ranks)
	})
	printRow("gb_mb (GB)", counts, func(ranks int) float64 {
		return amberTime("gb_mb", ranks)
	})
	for _, b := range []lammps.Benchmark{lammps.LJ, lammps.Chain, lammps.EAM} {
		b := b
		printRow("lammps "+b.String(), counts, func(ranks int) float64 {
			res, err := core.Run(core.Job{System: "longs", Ranks: ranks}, func(r *mpi.Rank) {
				lammps.Run(r, lammps.Params{Bench: b, Steps: 20})
			})
			if err != nil {
				panic(err)
			}
			return res.Max(lammps.MetricTime)
		})
	}

	fmt.Println()
	fmt.Println("Speedups relative to one core. PME saturates (force all-reduce);")
	fmt.Println("GB stays near-linear; the polymer chain goes superlinear once its")
	fmt.Println("working set drops into cache — the shapes of Tables 8 and 10.")
}

func amberTime(bench string, ranks int) float64 {
	b, err := amber.ByName(bench)
	if err != nil {
		panic(err)
	}
	res, err := core.Run(core.Job{System: "longs", Ranks: ranks}, func(r *mpi.Rank) {
		amber.Run(r, amber.Params{Bench: b, Steps: 4})
	})
	if err != nil {
		panic(err)
	}
	return res.Max(amber.MetricTotalTime)
}

func printRow(name string, counts []int, timeFor func(int) float64) {
	base := timeFor(1)
	fmt.Printf("%-14s", name)
	for _, n := range counts {
		fmt.Printf("%7.2fx", base/timeFor(n))
	}
	fmt.Println()
}
