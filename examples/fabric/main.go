// Fabric: explore hypothetical interconnects beyond the paper's machines.
// The Longs system's 2x4 HyperTransport ladder was the paper's problem
// child; this example keeps its cores and memory but swaps the fabric,
// asking how NAS FT (alltoall-heavy) and the CG solver (latency-heavy)
// would have fared on a ring, a wider ladder, or a full crossbar.
package main

import (
	"fmt"

	"multicore/internal/core"
	"multicore/internal/machine"
	"multicore/internal/mpi"
	"multicore/internal/npb"
	"multicore/internal/topology"
)

func main() {
	fabrics := []string{"ladder:4x2", "ring:8", "line:8", "xbar:8"}

	ftBody, err := npb.RunFT(npb.ClassA)
	if err != nil {
		panic(err)
	}
	cgBody, err := npb.RunCG(npb.ClassA)
	if err != nil {
		panic(err)
	}

	fmt.Println("Longs cores and memory on alternative 8-socket fabrics, 16 ranks")
	fmt.Println()
	fmt.Printf("%-12s %10s %14s %14s\n", "fabric", "diameter", "NAS FT (s)", "NAS CG (s)")
	for _, name := range fabrics {
		topo, err := topology.Parse(name)
		if err != nil {
			panic(err)
		}
		spec := machine.Longs()
		spec.Topo = topo
		if err := spec.Validate(); err != nil {
			panic(err)
		}
		ft := runOn(spec, ftBody, npb.MetricFTTime)
		cg := runOn(spec, cgBody, npb.MetricCGTime)
		fmt.Printf("%-12s %10d %14.3f %14.3f\n", name, topo.MaxHops(), ft, cg)
	}

	fmt.Println()
	fmt.Println("The crossbar's single-hop fabric helps the alltoall-heavy FT most;")
	fmt.Println("the line topology shows what an even worse fabric would have cost.")
	fmt.Println("The coherence-derated controllers, not the ladder, remain the main")
	fmt.Println("bottleneck — the conclusion the paper reached about its Longs system.")
}

func runOn(spec *machine.Spec, body func(*mpi.Rank), key string) float64 {
	res, err := core.Run(core.Job{Spec: spec, Ranks: 16, Impl: mpi.MPICH2()}, body)
	if err != nil {
		panic(err)
	}
	return res.Max(key)
}
