// Hybrid: evaluate the programming model the paper proposes in Section
// 3.4 — "OpenMP only within each multi-core processor, and MPI for
// communication both between processor sockets and between system nodes"
// — on the simulated Longs system, using NAS FT (the alltoall-heavy
// kernel where rank count hurts most).
package main

import (
	"fmt"

	"multicore/internal/affinity"
	"multicore/internal/core"
	"multicore/internal/mpi"
	"multicore/internal/npb"
)

func main() {
	fmt.Println("NAS FT (class A) on the simulated Longs system")
	fmt.Println()
	fmt.Printf("%-42s %12s\n", "configuration", "FT time (s)")

	for _, cfg := range []struct {
		name    string
		ranks   int
		threads int
		scheme  affinity.Scheme
	}{
		{"pure MPI: 16 ranks (both cores busy)", 16, 1, affinity.Default},
		{"pure MPI: 8 ranks (one per socket)", 8, 1, affinity.OneMPILocalAlloc},
		{"hybrid: 8 ranks x 2 OpenMP threads", 8, 2, affinity.OneMPILocalAlloc},
	} {
		body, err := npb.RunFTHybrid(npb.ClassA, cfg.threads)
		if err != nil {
			panic(err)
		}
		res, err := core.Run(core.Job{
			System: "longs",
			Ranks:  cfg.ranks,
			Scheme: cfg.scheme,
			Impl:   mpi.MPICH2(),
		}, body)
		if err != nil {
			panic(err)
		}
		fmt.Printf("%-42s %12.3f\n", cfg.name, res.Max(npb.MetricFTTime))
	}

	fmt.Println()
	fmt.Println("The hybrid run keeps the alltoall at 8 ranks (quarter the message")
	fmt.Println("count of 16) while the second core of each socket still contributes")
	fmt.Println("to the local FFTs — the paper's proposed three-class model pays off.")
}
