// Affinity: reproduce the paper's central claim — choosing the right MPI
// task and memory placement buys >25% on key scientific kernels. Runs the
// NAS CG kernel on the 8-socket Longs system under all six numactl schemes
// from Table 5.
package main

import (
	"errors"
	"fmt"

	"multicore/internal/affinity"
	"multicore/internal/core"
	"multicore/internal/mpi"
	"multicore/internal/npb"
)

func main() {
	const ranks = 8
	body, err := npb.RunCG(npb.ClassA)
	if err != nil {
		panic(err)
	}

	fmt.Printf("NAS CG (class A) with %d tasks on the simulated Longs system\n\n", ranks)
	fmt.Printf("%-24s %12s %10s\n", "numactl scheme", "time (s)", "vs best")

	type row struct {
		scheme affinity.Scheme
		time   float64
	}
	var rows []row
	best := -1.0
	for _, scheme := range affinity.Schemes {
		res, err := core.Run(core.Job{
			System: "longs",
			Ranks:  ranks,
			Scheme: scheme,
			Impl:   mpi.MPICH2(),
		}, body)
		if err != nil {
			var inf *affinity.ErrInfeasible
			if errors.As(err, &inf) {
				fmt.Printf("%-24s %12s\n", scheme, "-")
				continue
			}
			panic(err)
		}
		t := res.Max(npb.MetricCGTime)
		rows = append(rows, row{scheme, t})
		if best < 0 || t < best {
			best = t
		}
	}
	worst := 0.0
	for _, r := range rows {
		fmt.Printf("%-24s %12.3f %9.0f%%\n", r.scheme, r.time, 100*(r.time/best-1))
		if r.time > worst {
			worst = r.time
		}
	}

	fmt.Printf("\nBest-to-worst spread: %.0f%% — the paper reports that an appropriate\n", 100*(worst/best-1))
	fmt.Println("selection of MPI task and memory placement yields over 25% improvement")
	fmt.Println("for key scientific calculations on the 8-socket system.")
}
