// Quickstart: build a simulated multi-core Opteron system, run the STREAM
// triad on a growing set of cores, and watch the paper's headline effect —
// the second core of each socket adds almost no memory bandwidth.
package main

import (
	"fmt"

	"multicore/internal/affinity"
	"multicore/internal/core"
	"multicore/internal/kernels/stream"
	"multicore/internal/mpi"
	"multicore/internal/units"
)

func main() {
	fmt.Println("STREAM triad on the simulated DMZ node (2 sockets x 2 cores)")
	fmt.Println()
	fmt.Printf("%-28s %14s %14s\n", "configuration", "aggregate", "per core")

	for _, cfg := range []struct {
		name   string
		ranks  int
		scheme affinity.Scheme
	}{
		{"1 core", 1, affinity.OneMPILocalAlloc},
		{"2 cores, one per socket", 2, affinity.OneMPILocalAlloc},
		{"2 cores, same socket", 2, affinity.TwoMPILocalAlloc},
		{"4 cores (both sockets full)", 4, affinity.TwoMPILocalAlloc},
	} {
		res, err := core.Run(core.Job{
			System: "dmz",
			Ranks:  cfg.ranks,
			Scheme: cfg.scheme,
		}, func(r *mpi.Rank) {
			stream.RunTriad(r, stream.Params{VectorBytes: 16 * units.MB, Iters: 2})
		})
		if err != nil {
			panic(err)
		}
		total := res.Sum(stream.MetricBandwidth)
		fmt.Printf("%-28s %14s %14s\n", cfg.name,
			units.Rate(total), units.Rate(total/float64(cfg.ranks)))
	}

	fmt.Println()
	fmt.Println("Two cores on one socket share the memory controller: aggregate")
	fmt.Println("bandwidth is nearly flat, so per-core bandwidth halves — the effect")
	fmt.Println("the paper's Figures 2-3 report for dual-core Opterons.")
}
