// Climate: run the Parallel Ocean Program model (x1 configuration) and
// reproduce the paper's Section 4.2 analysis — both phases scale well,
// but only the memory-placement-sensitive phases respond to numactl, and
// the barotropic solver feels the MPI sub-layer through its tiny
// all-reduces.
package main

import (
	"fmt"

	"multicore/internal/affinity"
	"multicore/internal/apps/pop"
	"multicore/internal/core"
	"multicore/internal/mpi"
)

func main() {
	fmt.Println("POP x1 (320x384x40) on the simulated Longs system, 5 time steps")
	fmt.Println()

	// Phase scaling (Table 12).
	fmt.Printf("%-10s %14s %14s\n", "cores", "baroclinic", "barotropic")
	type phase struct{ clinic, tropic float64 }
	base := runPOP(1, affinity.Default, mpi.MPICH2())
	for _, ranks := range []int{1, 2, 4, 8, 16} {
		p := runPOP(ranks, affinity.Default, mpi.MPICH2())
		fmt.Printf("%-10d %13.2fx %13.2fx\n", ranks,
			base.clinic/p.clinic, base.tropic/p.tropic)
	}

	// Placement sensitivity at 8 tasks (Tables 13-14).
	fmt.Println()
	fmt.Printf("%-24s %14s %14s\n", "scheme (8 tasks)", "baroclinic s", "barotropic s")
	for _, scheme := range []affinity.Scheme{
		affinity.Default, affinity.TwoMPILocalAlloc, affinity.TwoMPIMembind, affinity.Interleave,
	} {
		p := runPOP(8, scheme, mpi.MPICH2())
		fmt.Printf("%-24s %14.3f %14.3f\n", scheme, p.clinic, p.tropic)
	}

	// Sub-layer sensitivity of the solver (Figure 13's consequence).
	fmt.Println()
	fmt.Printf("%-24s %14s\n", "sub-layer (8 tasks)", "barotropic s")
	for _, impl := range []*mpi.Impl{
		mpi.LAM().WithSublayer(mpi.USysV()),
		mpi.LAM().WithSublayer(mpi.SysV()),
	} {
		p := runPOPImpl(8, affinity.OneMPILocalAlloc, impl)
		fmt.Printf("%-24s %14.3f\n", impl.Name, p.tropic)
	}

	fmt.Println()
	fmt.Println("The conjugate-gradient barotropic phase is dominated by small")
	fmt.Println("all-reduces, so the SysV semaphore sub-layer hits it directly —")
	fmt.Println("the same interaction the paper traces from Figure 13 to Table 14.")
}

type phases struct{ clinic, tropic float64 }

func runPOP(ranks int, scheme affinity.Scheme, impl *mpi.Impl) phases {
	return runPOPImpl(ranks, scheme, impl)
}

func runPOPImpl(ranks int, scheme affinity.Scheme, impl *mpi.Impl) phases {
	res, err := core.Run(core.Job{System: "longs", Ranks: ranks, Scheme: scheme, Impl: impl},
		func(r *mpi.Rank) {
			pop.Run(r, pop.Params{Steps: 5})
		})
	if err != nil {
		panic(err)
	}
	return phases{res.Max(pop.MetricBaroclinic), res.Max(pop.MetricBarotropic)}
}
