// Command mctopo inspects the simulated systems: core/socket layout, link
// topology, hop-distance matrices, and the calibrated machine parameters.
//
// Usage:
//
//	mctopo [tiger|dmz|longs|<spec>]...
//
// A <spec> builds a hypothetical machine with Longs-like parameters on a
// custom fabric: ladder:RxC[xK], ring:N[xK], xbar:N[xK], line:N[xK].
package main

import (
	"fmt"
	"os"

	"multicore/internal/machine"
	"multicore/internal/topology"
	"multicore/internal/units"
)

func main() {
	names := os.Args[1:]
	if len(names) == 0 {
		names = []string{"tiger", "dmz", "longs"}
	}
	for i, name := range names {
		spec := machine.ByName(name)
		if spec == nil {
			topo, err := topology.Parse(name)
			if err != nil {
				fmt.Fprintf(os.Stderr, "mctopo: unknown system %q (want tiger, dmz, longs, or a spec like ladder:4x2)\n", name)
				os.Exit(1)
			}
			spec = machine.Longs()
			spec.Topo = topo
		}
		if i > 0 {
			fmt.Println()
		}
		describe(spec)
	}
}

func describe(spec *machine.Spec) {
	topo := spec.Topo
	fmt.Printf("%s: %d sockets x %d cores = %d cores @ %.1f GHz (peak %s/core)\n",
		topo.Name, topo.NumSockets, topo.CoresPerSock, topo.NumCores(),
		spec.FreqHz/1e9, units.Flops(spec.PeakFlops()))
	fmt.Printf("  memory: %s/socket effective, %s/core issue, %.0f KiB cache/core\n",
		units.Rate(spec.MCBandwidth), units.Rate(spec.CoreIssueBW), spec.CacheBytes/1024)
	fmt.Printf("  links: %s per direction, latency %s local / +%s per hop\n",
		units.Rate(spec.LinkBandwidth), units.Duration(spec.LocalLatency), units.Duration(spec.HopLatency))

	fmt.Println("  links:")
	for i, l := range topo.Links {
		fmt.Printf("    link %d: socket %d <-> socket %d\n", i, l.A, l.B)
	}

	fmt.Println("  hop-distance matrix (sockets):")
	fmt.Print("      ")
	for s := 0; s < topo.NumSockets; s++ {
		fmt.Printf("%3d", s)
	}
	fmt.Println()
	for a := 0; a < topo.NumSockets; a++ {
		fmt.Printf("    %2d", a)
		for b := 0; b < topo.NumSockets; b++ {
			fmt.Printf("%3d", topo.Hops(topology.SocketID(a), topology.SocketID(b)))
		}
		fmt.Println()
	}

	fmt.Println("  memory latency by distance:")
	seen := map[int]bool{}
	for s := 0; s < topo.NumSockets; s++ {
		h := topo.Hops(0, topology.SocketID(s))
		if seen[h] {
			continue
		}
		seen[h] = true
		lat := spec.LocalLatency + float64(h)*spec.HopLatency
		fmt.Printf("    %d hop(s): %s\n", h, units.Duration(lat))
	}
}
