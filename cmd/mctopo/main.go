// Command mctopo inspects the simulated systems: core/socket layout, link
// topology, hop-distance matrices, and the calibrated machine parameters.
//
// Usage:
//
//	mctopo [-spec NAME] [NAME|@FILE|<topology>]...
//
// NAME is any registered machine (tiger, dmz, longs, hybrid16, epyc2x4,
// ...); @FILE loads a machine-spec JSON file. A bare <topology> string
// builds a hypothetical machine with Longs-like parameters on a custom
// fabric: ladder:RxC[xK], ring:N[xK], xbar:N[xK], line:N[xK], sock:K —
// with core-class lists ("sock:8P+8E") and die splits ("line:2x32/4")
// accepted in the cores position.
//
// -spec emits the machine's canonical schema-2 JSON instead of the
// human-readable description — the starting point for a custom spec file.
package main

import (
	"fmt"
	"os"
	"strings"

	"multicore/internal/machine"
	"multicore/internal/topology"
	"multicore/internal/units"
)

func main() {
	args := os.Args[1:]
	specOut := ""
	if len(args) >= 2 && args[0] == "-spec" {
		specOut = args[1]
		args = args[2:]
	} else if len(args) >= 1 && strings.HasPrefix(args[0], "-spec=") {
		specOut = strings.TrimPrefix(args[0], "-spec=")
		args = args[1:]
	}
	if specOut != "" {
		spec, err := resolve(specOut)
		if err != nil {
			fmt.Fprintf(os.Stderr, "mctopo: %v\n", err)
			os.Exit(1)
		}
		data, err := machine.MarshalJSONSpec(spec)
		if err != nil {
			fmt.Fprintf(os.Stderr, "mctopo: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("%s\n", data)
		return
	}
	if len(args) == 0 {
		args = []string{"tiger", "dmz", "longs"}
	}
	for i, name := range args {
		spec, err := resolve(name)
		if err != nil {
			fmt.Fprintf(os.Stderr, "mctopo: %v\n", err)
			os.Exit(1)
		}
		if i > 0 {
			fmt.Println()
		}
		describe(spec)
	}
}

// resolve maps a CLI argument to a machine: registered names and @FILE
// paths through the registry, bare topology strings onto Longs-like
// parameters (with a fabric defaulted in for multi-die strings, so the
// hypothetical machine still validates).
func resolve(name string) (*machine.Spec, error) {
	spec, rerr := machine.Resolve(name)
	if rerr == nil {
		return spec, nil
	}
	topo, terr := topology.Parse(name)
	if terr != nil {
		return nil, fmt.Errorf("%v; not a topology spec either (%v)", rerr, terr)
	}
	spec = machine.Longs()
	spec.Topo = topo
	if topo.NumDies() > 1 {
		spec.FabricBandwidth = spec.MCBandwidth
		spec.FabricLatency = spec.HopLatency / 2
	}
	return spec, nil
}

func describe(spec *machine.Spec) {
	topo := spec.Topo
	cores := fmt.Sprintf("%d cores", topo.CoresPerSock)
	if len(topo.Classes) > 0 {
		var parts []string
		for _, cl := range topo.Classes {
			parts = append(parts, fmt.Sprintf("%d%s", cl.PerSocket, cl.Name))
		}
		cores = fmt.Sprintf("%s cores", strings.Join(parts, "+"))
	}
	fmt.Printf("%s: %d sockets x %s = %d cores @ %.1f GHz (peak %s/core)\n",
		topo.Name, topo.NumSockets, cores, topo.NumCores(),
		spec.FreqHz/1e9, units.Flops(spec.PeakFlops()))
	for i, cl := range spec.Classes {
		first := topo.CoresOn(0)[0]
		for c := 0; c < topo.NumCores(); c++ {
			if topo.ClassOf(topology.CoreID(c)) == i {
				first = topology.CoreID(c)
				break
			}
		}
		fmt.Printf("  class %s: %d/socket @ %.1f GHz, peak %s, %s issue, %.0f KiB cache\n",
			cl.Name, topo.Classes[i].PerSocket, spec.FreqOn(first)/1e9,
			units.Flops(spec.PeakFlopsOn(first)), units.Rate(spec.IssueBWOn(first)),
			spec.CacheBytesOn(first)/1024)
	}
	fmt.Printf("  memory: %s/socket effective, %s/core issue, %.0f KiB cache/core\n",
		units.Rate(spec.MCBandwidth), units.Rate(spec.CoreIssueBW), spec.CacheBytes/1024)
	if spec.LLCBytes > 0 {
		fmt.Printf("  shared LLC: %.0f MiB per die (%.0f KiB/core share)\n",
			spec.LLCBytes/(1024*1024), spec.LLCBytes/float64(topo.CoresPerDie())/1024)
	}
	if topo.NumDies() > 1 {
		fmt.Printf("  dies: %d per socket (%d cores each), fabric %s, +%s per DRAM access\n",
			topo.NumDies(), topo.CoresPerDie(),
			units.Rate(spec.FabricBandwidth), units.Duration(spec.FabricLatency))
	}
	fmt.Printf("  links: %s per direction, latency %s local / +%s per hop\n",
		units.Rate(spec.LinkBandwidth), units.Duration(spec.LocalLatency), units.Duration(spec.HopLatency))

	fmt.Println("  links:")
	for i, l := range topo.Links {
		fmt.Printf("    link %d: socket %d <-> socket %d\n", i, l.A, l.B)
	}

	fmt.Println("  hop-distance matrix (sockets):")
	fmt.Print("      ")
	for s := 0; s < topo.NumSockets; s++ {
		fmt.Printf("%3d", s)
	}
	fmt.Println()
	for a := 0; a < topo.NumSockets; a++ {
		fmt.Printf("    %2d", a)
		for b := 0; b < topo.NumSockets; b++ {
			fmt.Printf("%3d", topo.Hops(topology.SocketID(a), topology.SocketID(b)))
		}
		fmt.Println()
	}

	fmt.Println("  memory latency by distance:")
	seen := map[int]bool{}
	for s := 0; s < topo.NumSockets; s++ {
		h := topo.Hops(0, topology.SocketID(s))
		if seen[h] {
			continue
		}
		seen[h] = true
		fmt.Printf("    %d hop(s): %s\n", h, units.Duration(spec.NodeRoundTrip(0, topology.SocketID(s))))
	}
}
