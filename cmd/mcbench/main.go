// Command mcbench regenerates the paper's tables and figures on the
// simulated systems.
//
// Usage:
//
//	mcbench [-scale quick|full] [-format text|md|csv] [-out DIR] [-j N] [-json FILE] <id>...|all|list
//
// Experiment ids are the paper artifact names: fig2..fig17, table2..table14.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"sync"
	"time"

	"multicore/internal/experiments"
	"multicore/internal/report"
	"multicore/internal/sim"
)

func main() {
	scale := flag.String("scale", "quick", "problem scale: quick or full (paper sizes)")
	format := flag.String("format", "text", "output format: text, md, csv, or plot")
	outDir := flag.String("out", "", "directory to write per-experiment files (default: stdout)")
	jobs := flag.Int("j", runtime.GOMAXPROCS(0), "max simulations in flight (1 = fully serial)")
	traceDir := flag.String("trace", "", "directory for per-cell Chrome trace-event JSON files")
	jsonOut := flag.String("json", "", "write per-experiment benchmark records (wall time, events, settles, allocs) to FILE; runs experiments serially")
	note := flag.String("note", "", "free-form note recorded in the -json output")
	flag.Usage = usage
	flag.Parse()

	if flag.NArg() == 0 {
		usage()
		os.Exit(2)
	}

	var sc experiments.Scale
	switch *scale {
	case "quick":
		sc = experiments.Quick
	case "full":
		sc = experiments.Full
	default:
		fatalf("unknown scale %q (want quick or full)", *scale)
	}
	if *jobs < 1 {
		fatalf("-j must be at least 1")
	}
	experiments.SetParallelism(*jobs)
	if *traceDir != "" {
		if err := os.MkdirAll(*traceDir, 0o755); err != nil {
			fatalf("creating %s: %v", *traceDir, err)
		}
		experiments.SetTraceDir(*traceDir)
	}

	render := renderer(*format)

	var ids []string
	for _, arg := range flag.Args() {
		switch arg {
		case "list":
			for _, e := range experiments.All() {
				fmt.Printf("%-8s %s\n", e.ID, e.Title)
			}
			return
		case "all":
			for _, e := range experiments.All() {
				ids = append(ids, e.ID)
			}
		default:
			ids = append(ids, arg)
		}
	}

	exps := make([]experiments.Experiment, len(ids))
	for i, id := range ids {
		e, ok := experiments.ByID(id)
		if !ok {
			fatalf("unknown experiment %q (try `mcbench list`)", id)
		}
		exps[i] = e
	}

	// Render every requested experiment. With -j 1 the experiments run
	// strictly in request order; otherwise they run concurrently (each
	// one's cells already share the worker pool) and outputs are still
	// emitted in request order.
	outputs := make([]string, len(exps))
	runOne := func(i int) {
		e := exps[i]
		fmt.Fprintf(os.Stderr, "running %s: %s\n", e.ID, e.Title)
		tables := e.Run(sc)
		var b strings.Builder
		fmt.Fprintf(&b, "# %s — %s\n\nPaper: %s\n\n", e.ID, e.Title, e.Paper)
		for _, t := range tables {
			b.WriteString(render(t))
			b.WriteString("\n")
		}
		outputs[i] = b.String()
	}
	switch {
	case *jsonOut != "":
		// Benchmark mode: experiments run one at a time (cells still use
		// the worker pool) so the activity/allocation deltas measured
		// around each one are attributable to it. The result cache is
		// cleared per experiment so shared cells are re-simulated and the
		// timings reflect actual simulation work.
		records := make([]benchRecord, len(exps))
		for i := range exps {
			experiments.ClearCache()
			records[i] = measure(exps[i].ID, func() { runOne(i) })
		}
		writeBenchJSON(*jsonOut, *note, *scale, records)
	case *jobs <= 1 || len(exps) == 1:
		for i := range exps {
			runOne(i)
		}
	default:
		// Experiment-level fan-out uses plain goroutines gated by their
		// own semaphore so they never hold cell-pool slots while waiting.
		sem := make(chan struct{}, *jobs)
		var wg sync.WaitGroup
		for i := range exps {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				sem <- struct{}{}
				defer func() { <-sem }()
				runOne(i)
			}(i)
		}
		wg.Wait()
	}

	for i, e := range exps {
		if *outDir == "" {
			fmt.Print(outputs[i])
			continue
		}
		if err := os.MkdirAll(*outDir, 0o755); err != nil {
			fatalf("creating %s: %v", *outDir, err)
		}
		path := filepath.Join(*outDir, e.ID+ext(*format))
		if err := os.WriteFile(path, []byte(outputs[i]), 0o644); err != nil {
			fatalf("writing %s: %v", path, err)
		}
		fmt.Fprintf(os.Stderr, "wrote %s\n", path)
	}
}

// benchRecord is one experiment's measured cost: wall time plus the
// simulation activity (engine events, flow-network settling passes, flows)
// and heap allocations it performed.
type benchRecord struct {
	ID      string  `json:"id"`
	Seconds float64 `json:"seconds"`
	Events  uint64  `json:"events"`
	Flows   uint64  `json:"flows"`
	Settles uint64  `json:"settles"`
	Mallocs uint64  `json:"mallocs"`
}

// measure runs fn and attributes the process-wide activity and allocation
// deltas to it; only valid when experiments run one at a time.
func measure(id string, fn func()) benchRecord {
	var m0, m1 runtime.MemStats
	ev0, fl0, st0 := sim.Activity()
	runtime.ReadMemStats(&m0)
	start := time.Now()
	fn()
	secs := time.Since(start).Seconds()
	runtime.ReadMemStats(&m1)
	ev1, fl1, st1 := sim.Activity()
	return benchRecord{
		ID:      id,
		Seconds: secs,
		Events:  ev1 - ev0,
		Flows:   fl1 - fl0,
		Settles: st1 - st0,
		Mallocs: m1.Mallocs - m0.Mallocs,
	}
}

// writeBenchJSON writes the benchmark envelope to path.
func writeBenchJSON(path, note, scale string, records []benchRecord) {
	env := struct {
		Note        string        `json:"note,omitempty"`
		Scale       string        `json:"scale"`
		Go          string        `json:"go"`
		MaxProcs    int           `json:"maxprocs"`
		Experiments []benchRecord `json:"experiments"`
	}{Note: note, Scale: scale, Go: runtime.Version(), MaxProcs: runtime.GOMAXPROCS(0), Experiments: records}
	data, err := json.MarshalIndent(env, "", "  ")
	if err != nil {
		fatalf("encoding %s: %v", path, err)
	}
	data = append(data, '\n')
	if err := os.WriteFile(path, data, 0o644); err != nil {
		fatalf("writing %s: %v", path, err)
	}
	fmt.Fprintf(os.Stderr, "wrote %s\n", path)
}

func renderer(format string) func(*report.Table) string {
	switch format {
	case "text":
		return (*report.Table).Text
	case "md":
		return (*report.Table).Markdown
	case "csv":
		return (*report.Table).CSV
	case "plot":
		return func(t *report.Table) string { return t.Chart(16) }
	}
	fatalf("unknown format %q (want text, md, csv, or plot)", format)
	return nil
}

func ext(format string) string {
	switch format {
	case "md":
		return ".md"
	case "csv":
		return ".csv"
	}
	return ".txt"
}

func usage() {
	fmt.Fprintf(os.Stderr, `mcbench regenerates the paper's tables and figures.

usage: mcbench [flags] <id>...|all|list

flags:
`)
	flag.PrintDefaults()
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "mcbench: "+format+"\n", args...)
	os.Exit(1)
}
