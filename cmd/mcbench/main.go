// Command mcbench regenerates the paper's tables and figures on the
// simulated systems.
//
// Usage:
//
//	mcbench [-scale quick|full] [-format text|md|csv] [-out DIR] [-j N]
//	        [-store DIR] [-resume] [-timeout D] [-json FILE] [-delta FILE]
//	        [-delta-tol F] [-settle N] [-faults PLAN] [-fault-seed N]
//	        [-retries N] <id>...|all|list
//	mcbench -sweep GRID [-remote URL] [-priority N] [-client ID]
//	        [-screen] [-promote-margin F]
//	        [-uncertainty-bound F] [-calibrate] [flags]
//	mcbench -calibrate -store DIR
//
// Experiment ids are the paper artifact names: fig2..fig17, table2..table14.
//
// With -sweep, mcbench runs an arbitrary workload × system × ranks ×
// scheme grid (e.g. "workloads=stream,cg;systems=tiger,dmz;ranks=1,2;
// schemes=default,localalloc"; ranks accepts lo..hi ranges) instead of
// a paper artifact and renders one makespan table. Adding -remote URL
// submits the same grid to an mcsweepd coordinator and streams per-cell
// results as workers complete them; the remote table is byte-identical
// to the local serial one. Remote streams survive coordinator restarts:
// the client reconnects with its resume token and replays only the
// results it missed. -priority (0 bulk .. 9 interactive) weights the
// coordinator's dequeue; -client names this submission for the
// coordinator's per-client admission quota (429 + Retry-After past it).
//
// Adding -screen engages the two-tier executor: every cell is priced by
// the analytic roofline model (internal/analytic) and only cells the
// model cannot settle — schemes within -promote-margin of a ranking
// flip, estimates above -uncertainty-bound, families without a profile
// — are simulated. Estimated cells render as ~seconds, promoted cells
// as seconds*. With -calibrate the estimator first fits per-class
// correction factors from the -store's simulated results and prints the
// residual-error report; standalone `mcbench -calibrate -store DIR`
// prints just the report.
//
// Sweeps are resilient: SIGINT/SIGTERM cancels the running simulations
// cleanly, a per-cell -timeout bounds any one cell's wall-clock cost, a
// panicking cell renders as ERR instead of killing the run, and with
// -store every completed cell is persisted so the next invocation (add
// -resume to also retry failed cells) re-runs only what is missing and
// reproduces byte-identical tables. Concurrent -store runs over the same
// directory are serialized by an advisory lock. With -faults, the
// deterministic perturbations of a fault plan (see internal/fault) are
// injected into every cell; -retries re-attempts cells that fail
// transiently.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"path/filepath"
	"runtime"
	"strings"
	"sync"
	"syscall"
	"time"

	"multicore/internal/affinity"
	"multicore/internal/analytic"
	"multicore/internal/experiments"
	"multicore/internal/fault"
	"multicore/internal/report"
	"multicore/internal/schema"
	"multicore/internal/sim"
	"multicore/internal/store"
	"multicore/internal/sweepd"
	"multicore/internal/workload"
)

func main() {
	scale := flag.String("scale", "quick", "problem scale: quick or full (paper sizes)")
	format := flag.String("format", "text", "output format: text, md, csv, or plot")
	outDir := flag.String("out", "", "directory to write per-experiment files (default: stdout)")
	jobs := flag.Int("j", runtime.GOMAXPROCS(0), "max simulations in flight (1 = fully serial)")
	traceDir := flag.String("trace", "", "directory for per-cell Chrome trace-event JSON files")
	storeDir := flag.String("store", "", "directory of the persistent cell-result store (created if missing)")
	resume := flag.Bool("resume", false, "with -store: re-run cells whose stored status is error instead of reporting the recorded failure")
	timeout := flag.Duration("timeout", 0, "wall-clock budget per simulated cell (0 = unbounded), e.g. 30s")
	jsonOut := flag.String("json", "", "write per-experiment benchmark records (wall time, events, settles, allocs, ranks, peak heap) to FILE; runs experiments serially")
	deltaFile := flag.String("delta", "", "with -json: compare the new records against the committed snapshot FILE and fail on a >10% wall-time or allocation regression")
	note := flag.String("note", "", "free-form note recorded in the -json output")
	settle := flag.Int("settle", 0, "per-cell parallel settle workers; >1 opts into component-mode settling (0/1 = serial union settling)")
	faults := flag.String("faults", "", `deterministic fault plan injected into every cell, e.g. "noise:core=3,period=1ms,frac=0.1;linkdown:s0-s1,t=2ms..5ms"`)
	faultSeed := flag.Int64("fault-seed", 1, "seed for the fault plan's random draws (phases, cell failures)")
	retries := flag.Int("retries", 0, "re-attempts per cell that fails with a transient fault (0 = no retry)")
	sweep := flag.String("sweep", "", `grid sweep instead of paper artifacts, e.g. "workloads=stream,cg;systems=tiger;ranks=1,2;schemes=default,localalloc" (systems take registered names or @FILE spec files)`)
	remote := flag.String("remote", "", "with -sweep: submit the grid to this mcsweepd coordinator URL and stream results")
	priority := flag.Int("priority", 0, "with -remote: sweep priority 0 (bulk) to 9 (interactive); the coordinator weights its dequeue (priority+1):1")
	client := flag.String("client", "", "with -remote: client id for the coordinator's per-client admission quota (default: hostname)")
	screen := flag.Bool("screen", false, "with -sweep: two-tier execution — price every cell analytically, simulate only promoted cells (scheme crossovers and high-uncertainty estimates)")
	promoteMargin := flag.Float64("promote-margin", sweepd.DefaultPromoteMargin, "with -screen: fractional closeness of two schemes' estimates that promotes both to simulation")
	uncBound := flag.Float64("uncertainty-bound", sweepd.DefaultUncertaintyBound, "with -screen: model uncertainty above which a cell promotes to simulation")
	calibrate := flag.Bool("calibrate", false, "with -store: fit per-workload-class correction factors from stored simulation results and report residual error (applied to -screen estimates)")
	screenBench := flag.Int("screen-bench", 0, "with -json: benchmark analytic screening over a synthetic grid of at least N cells and record the throughput")
	deltaTol := flag.Float64("delta-tol", 0.10, "with -delta: fractional wall-time/allocation regression tolerated before failing")
	flag.Usage = usage
	flag.Parse()

	if flag.NArg() == 0 && *sweep == "" && !*calibrate && *screenBench == 0 {
		usage()
		os.Exit(2)
	}

	sc, err := experiments.ParseScale(*scale)
	if err != nil {
		fatalf("%v", err)
	}
	if *jobs < 1 {
		fatalf("-j must be at least 1")
	}
	if *resume && *storeDir == "" {
		fatalf("-resume needs -store DIR (there is nothing to resume from)")
	}
	if *retries < 0 {
		fatalf("-retries must be non-negative")
	}
	if *deltaFile != "" && *jsonOut == "" {
		fatalf("-delta needs -json FILE (there are no records to compare)")
	}
	if *deltaTol <= 0 {
		fatalf("-delta-tol must be positive")
	}
	if *screen && *sweep == "" {
		fatalf("-screen needs -sweep GRID (paper artifacts always simulate)")
	}
	if *calibrate && *storeDir == "" {
		fatalf("-calibrate needs -store DIR (calibration fits against stored simulation results)")
	}
	if *screenBench != 0 && *jsonOut == "" {
		fatalf("-screen-bench needs -json FILE (it records a benchmark)")
	}
	if *priority < 0 || *priority > sweepd.MaxPriority {
		fatalf("-priority must be between 0 and %d", sweepd.MaxPriority)
	}
	if (*priority != 0 || *client != "") && *remote == "" {
		fatalf("-priority and -client apply to remote sweeps (-remote URL)")
	}
	if *client == "" {
		host, _ := os.Hostname()
		*client = host
	}
	if *screenBench < 0 {
		fatalf("-screen-bench must be non-negative")
	}
	opts := experiments.Options{
		Parallelism:   *jobs,
		Resume:        *resume,
		CellTimeout:   *timeout,
		TraceDir:      *traceDir,
		Retries:       *retries,
		RetryBackoff:  100 * time.Millisecond,
		SettleWorkers: *settle,
	}
	if *faults != "" {
		plan, err := fault.Parse(*faults, *faultSeed)
		if err != nil {
			fatalf("%v", err)
		}
		opts.Faults = plan
	}
	if *traceDir != "" {
		if err := os.MkdirAll(*traceDir, 0o755); err != nil {
			fatalf("creating %s: %v", *traceDir, err)
		}
	}
	if *storeDir != "" {
		st, err := store.Open(*storeDir)
		if err != nil {
			fatalf("%v", err)
		}
		// Serialize whole sweeps: a second mcbench on the same store would
		// resimulate every cell this one has in flight.
		if ok, err := st.TryLock(); err != nil {
			fatalf("%v", err)
		} else if !ok {
			fmt.Fprintf(os.Stderr, "mcbench: store %s is locked by another run; waiting...\n", *storeDir)
			if err := st.Lock(); err != nil {
				fatalf("%v", err)
			}
		}
		defer st.Unlock()
		opts.Store = st
	}

	// SIGINT/SIGTERM cancels the sweep: in-flight engines abort, no new
	// cells start, and (with -store) completed cells stay on disk for a
	// later -resume-style run.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	render := renderer(*format)

	if *sweep != "" {
		if flag.NArg() != 0 {
			fatalf("-sweep and experiment ids are mutually exclusive")
		}
		if *jsonOut != "" {
			fatalf("-json applies to paper artifacts, not -sweep grids")
		}
		cfg := screenCfg{enabled: *screen, margin: *promoteMargin, bound: *uncBound, calibrate: *calibrate}
		runSweep(ctx, *sweep, *remote, *scale, opts, render, *faults, *faultSeed, *retries, *jobs, *storeDir, cfg, *client, *priority)
		return
	}
	if *remote != "" {
		fatalf("-remote needs -sweep GRID (paper artifacts always run locally)")
	}
	if *calibrate && flag.NArg() == 0 {
		// Standalone calibration report: fit against the store and print.
		if _, err := calibrateEstimator(analytic.New(), opts.Store); err != nil {
			fatalf("%v", err)
		}
		return
	}

	var ids []string
	for _, arg := range flag.Args() {
		switch arg {
		case "list":
			for _, e := range experiments.All() {
				fmt.Printf("%-8s %s\n", e.ID, e.Title)
			}
			return
		case "all":
			for _, e := range experiments.All() {
				ids = append(ids, e.ID)
			}
		default:
			ids = append(ids, arg)
		}
	}

	exps := make([]experiments.Experiment, len(ids))
	for i, id := range ids {
		e, ok := experiments.ByID(id)
		if !ok {
			fatalf("unknown experiment %q (try `mcbench list`)", id)
		}
		exps[i] = e
	}

	runner := experiments.NewRunner(ctx, opts)

	// Render every requested experiment. With -j 1 the experiments run
	// strictly in request order; otherwise they run concurrently (each
	// one's cells already share the worker pool) and outputs are still
	// emitted in request order. A failing experiment (panic, stored
	// failure) reports its error and the rest of the sweep continues.
	outputs := make([]string, len(exps))
	errs := make([]error, len(exps))
	runOne := func(r *experiments.Runner, i int) {
		e := exps[i]
		fmt.Fprintf(os.Stderr, "running %s: %s\n", e.ID, e.Title)
		tables, err := r.Run(e, sc)
		if err != nil {
			errs[i] = err
			return
		}
		var b strings.Builder
		fmt.Fprintf(&b, "# %s — %s\n\nPaper: %s\n\n", e.ID, e.Title, e.Paper)
		for _, t := range tables {
			b.WriteString(render(t))
			b.WriteString("\n")
		}
		outputs[i] = b.String()
	}
	switch {
	case *jsonOut != "":
		// Benchmark mode: experiments run one at a time (cells still use
		// the worker pool) so the activity/allocation deltas measured
		// around each one are attributable to it. Each experiment gets a
		// fresh runner so shared cells are re-simulated and the timings
		// reflect actual simulation work. The persistent store is
		// deliberately not consulted here for the same reason.
		benchOpts := opts
		benchOpts.Store = nil
		// Peak heap is only attributable to an experiment when its cells
		// run serially: with -j > 1 the sampled peak spans however many
		// cells were in flight, so the column is omitted rather than
		// recording a misleading per-experiment number.
		sampleHeap := *jobs <= 1
		if !sampleHeap {
			fmt.Fprintf(os.Stderr, "mcbench: -j %d > 1: peak_heap_bytes omitted from %s (peaks are only per-experiment when cells run serially)\n",
				*jobs, *jsonOut)
		}
		records := make([]benchRecord, len(exps))
		for i := range exps {
			r := experiments.NewRunner(ctx, benchOpts)
			records[i] = measure(exps[i].ID, sampleHeap, func() { runOne(r, i) })
		}
		var sInfo *screenInfo
		if *screenBench > 0 {
			var rec benchRecord
			rec, sInfo = measureScreen(*screenBench)
			records = append(records, rec)
			fmt.Fprintf(os.Stderr, "mcbench: screened %d cells in %.3fs (%.0f cells/sec, single-threaded)\n",
				sInfo.Cells, sInfo.Seconds, sInfo.CellsPerSec)
		}
		writeBenchJSON(*jsonOut, *note, *scale, records, sInfo)
		if *deltaFile != "" {
			if err := checkBenchDelta(*deltaFile, records, *deltaTol); err != nil {
				fmt.Fprintf(os.Stderr, "mcbench: %v\n", err)
				os.Exit(1)
			}
			fmt.Fprintf(os.Stderr, "mcbench: no regression against %s (tolerance %.0f%%)\n", *deltaFile, 100**deltaTol)
		}
	case *jobs <= 1 || len(exps) == 1:
		for i := range exps {
			runOne(runner, i)
		}
	default:
		// Experiment-level fan-out uses plain goroutines gated by their
		// own semaphore so they never hold cell-pool slots while waiting.
		sem := make(chan struct{}, *jobs)
		var wg sync.WaitGroup
		for i := range exps {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				sem <- struct{}{}
				defer func() { <-sem }()
				runOne(runner, i)
			}(i)
		}
		wg.Wait()
	}

	interrupted := ctx.Err() != nil
	failed := 0
	for i, e := range exps {
		if errs[i] != nil {
			if !isCancellation(errs[i]) {
				fmt.Fprintf(os.Stderr, "mcbench: %s failed: %v\n", e.ID, errs[i])
				failed++
			}
			continue
		}
		if *outDir == "" {
			fmt.Print(outputs[i])
			continue
		}
		if err := os.MkdirAll(*outDir, 0o755); err != nil {
			fatalf("creating %s: %v", *outDir, err)
		}
		path := filepath.Join(*outDir, e.ID+ext(*format))
		if err := os.WriteFile(path, []byte(outputs[i]), 0o644); err != nil {
			fatalf("writing %s: %v", path, err)
		}
		fmt.Fprintf(os.Stderr, "wrote %s\n", path)
	}

	for _, err := range runner.CellErrors() {
		fmt.Fprintf(os.Stderr, "mcbench: cell error: %v\n", err)
	}
	if *storeDir != "" {
		fmt.Fprintf(os.Stderr, "cells: %d simulated, %d store hits (store: %s)\n",
			runner.CellsRun(), runner.StoreHits(), *storeDir)
	}
	if interrupted {
		fmt.Fprintf(os.Stderr, "mcbench: interrupted\n")
		if *storeDir != "" {
			fmt.Fprintf(os.Stderr, "mcbench: completed cells are saved; re-run the same command to continue\n")
		}
		os.Exit(130)
	}
	if failed > 0 {
		os.Exit(1)
	}
}

// screenCfg carries the two-tier executor settings into runSweep.
type screenCfg struct {
	enabled       bool
	margin, bound float64
	calibrate     bool
}

// runSweep executes a -sweep grid: locally on one runner (the serial
// golden path when -j 1), or against an mcsweepd coordinator with
// -remote. Both paths assemble the table through sweepd.Table, so a
// distributed sweep's output is byte-identical to the serial run's.
// With -screen, tier A prices every cell analytically and only promoted
// cells reach the simulator — locally through sweepd.RunScreened, or on
// the coordinator, which screens the grid in-process and leases only
// the promoted sliver to workers.
func runSweep(ctx context.Context, gridStr, remote, scale string, opts experiments.Options,
	render func(*report.Table) string, faults string, faultSeed int64, retries, jobs int, storeDir string, cfg screenCfg,
	client string, priority int) {
	g, err := sweepd.ParseGrid(gridStr)
	if err != nil {
		fatalf("%v", err)
	}
	g.Scale = scale
	if cfg.enabled && faults != "" {
		fatalf("-screen cannot price fault plans (drop -faults or -screen)")
	}
	var results map[string]sweepd.CellResult
	var sum sweepd.Summary
	if remote != "" {
		if storeDir != "" {
			fatalf("-store belongs to the workers in remote mode (they share the cell cache)")
		}
		req := sweepd.SweepRequest{
			SchemaVersion: schema.Version,
			Grid:          g,
			Faults:        faults,
			FaultSeed:     faultSeed,
			Retries:       retries,
			Client:        client,
			Priority:      priority,
		}
		if cfg.enabled {
			req.Screen = true
			req.PromoteMargin = cfg.margin
			req.UncertaintyBound = cfg.bound
		}
		results = make(map[string]sweepd.CellResult)
		total := len(g.Cells())
		s, err := sweepd.Submit(ctx, remote, req, func(res sweepd.CellResult) {
			results[res.Cell.Key()] = res
			fmt.Fprintf(os.Stderr, "cell %d/%d %s: %s\n", len(results), total, res.Cell.Key(), res.Status)
		})
		if err != nil {
			var qe *sweepd.QuotaError
			if errors.As(err, &qe) {
				fatalf("%v (retry in %s, or resubmit with a higher quota on the coordinator)", qe, qe.RetryAfter)
			}
			fatalf("%v", err)
		}
		if s != nil {
			sum = *s
		}
		if sum.Errors > 0 {
			fmt.Fprintf(os.Stderr, "mcbench: %d cells failed (rendered ERR)\n", sum.Errors)
		}
		if sum.Divergent > 0 {
			fmt.Fprintf(os.Stderr, "mcbench: WARNING: coordinator observed %d divergent cell fingerprints\n", sum.Divergent)
		}
	} else {
		runner := experiments.NewRunner(ctx, opts)
		if cfg.enabled {
			e := analytic.New()
			if cfg.calibrate {
				if _, err := calibrateEstimator(e, opts.Store); err != nil {
					fatalf("%v", err)
				}
			}
			sopts := sweepd.ScreenOptions{PromoteMargin: cfg.margin, UncertaintyBound: cfg.bound}
			var decisions []sweepd.ScreenDecision
			results, decisions = sweepd.RunScreened(runner, e, g, sopts, jobs)
			sum = sweepd.ScreenSummary(decisions, results)
		} else {
			results = sweepd.RunLocal(runner, g, jobs)
		}
		if ctx.Err() != nil {
			fmt.Fprintf(os.Stderr, "mcbench: interrupted\n")
			os.Exit(130)
		}
		for _, e := range runner.CellErrors() {
			fmt.Fprintf(os.Stderr, "mcbench: cell error: %v\n", e)
		}
		sum.Simulated, sum.StoreHits = runner.CellsRun(), runner.StoreHits()
	}
	fmt.Print(render(sweepd.Table(g, results)))
	if cfg.enabled {
		fmt.Fprintf(os.Stderr, "cells: %d screened analytically, %d promoted to simulation\n",
			sum.Screened, sum.Promoted)
	}
	if remote != "" || storeDir != "" {
		fmt.Fprintf(os.Stderr, "cells: %d simulated, %d store hits\n", sum.Simulated, sum.StoreHits)
	}
}

// calibrateEstimator fits the estimator's per-class correction factors
// from the persistent store's ok-status entries, installs them, and
// prints the residual-error report.
func calibrateEstimator(e *analytic.Estimator, st *store.Store) (analytic.Calibration, error) {
	if st == nil {
		return analytic.Calibration{}, fmt.Errorf("-calibrate needs -store DIR")
	}
	entries, err := st.List()
	if err != nil {
		return analytic.Calibration{}, err
	}
	obs := make([]sweepd.StoreObservation, 0, len(entries))
	for _, ent := range entries {
		var secs float64
		if ent.Status == store.StatusOK {
			if err := json.Unmarshal(ent.Value, &secs); err != nil {
				continue // not a makespan cell (table artifact, etc.)
			}
		}
		obs = append(obs, sweepd.StoreObservation{
			Workload: ent.Key.Workload,
			System:   ent.Key.System,
			Ranks:    ent.Key.Ranks,
			Scheme:   ent.Key.Scheme,
			Faults:   ent.Key.Faults,
			Status:   ent.Status,
			Seconds:  secs,
		})
	}
	cal, err := sweepd.CalibrateFromStore(e, obs)
	if err != nil {
		return cal, err
	}
	e.SetCalibration(cal.Factors)
	fmt.Fprint(os.Stderr, cal.String())
	return cal, nil
}

// screenInfo is the throughput record of a -screen-bench run.
type screenInfo struct {
	Cells       int     `json:"cells"`
	Seconds     float64 `json:"seconds"`
	CellsPerSec float64 `json:"cells_per_sec"`
}

// measureScreen benchmarks the analytic screening tier single-threaded
// over a synthetic grid of at least minCells cells: every registry
// workload × every system × every placement scheme, with the rank
// dimension grown until the grid is big enough. The wall time and
// allocation count land in the benchmark records (id "screen") so the
// delta gate tracks screening regressions like any experiment.
func measureScreen(minCells int) (benchRecord, *screenInfo) {
	systems := []string{"tiger", "dmz", "longs"}
	schemes := make([]string, len(affinity.Schemes))
	for i, s := range affinity.Schemes {
		schemes[i] = s.CLIName()
	}
	workloads := workload.Names()
	per := len(workloads) * len(systems) * len(schemes)
	maxRanks := (minCells + per - 1) / per
	ranks := make([]int, maxRanks)
	for i := range ranks {
		ranks[i] = i + 1
	}
	g := sweepd.Grid{Workloads: workloads, Systems: systems, Ranks: ranks, Schemes: schemes, Scale: "quick"}
	e := analytic.New()
	var n int
	rec := measure("screen", false, func() {
		n = len(sweepd.ScreenGrid(e, g, sweepd.ScreenOptions{}))
	})
	return rec, &screenInfo{Cells: n, Seconds: rec.Seconds, CellsPerSec: float64(n) / rec.Seconds}
}

// isCancellation reports whether err only says "the sweep was stopped".
func isCancellation(err error) bool {
	var ce *sim.CanceledError
	return errors.As(err, &ce) ||
		errors.Is(err, context.Canceled) ||
		errors.Is(err, context.DeadlineExceeded)
}

// benchRecord is one experiment's measured cost: wall time plus the
// simulation activity (engine events, flow-network settling passes, flows,
// processes spawned) and heap behavior it exhibited. Ranks counts every
// simulated process — MPI ranks plus transient helpers — so
// peak_heap_bytes/ranks is the memory-per-rank figure scale regressions
// show up in.
type benchRecord struct {
	ID      string  `json:"id"`
	Seconds float64 `json:"seconds"`
	Events  uint64  `json:"events"`
	Flows   uint64  `json:"flows"`
	Settles uint64  `json:"settles"`
	Mallocs uint64  `json:"mallocs"`
	Ranks   uint64  `json:"ranks"`
	// PeakHeapBytes is omitted (zero) when the worker pool is active
	// (-j > 1): a sampled peak spanning concurrent cells is not a
	// per-experiment number.
	PeakHeapBytes uint64 `json:"peak_heap_bytes,omitempty"`
}

// measure runs fn and attributes the process-wide activity and allocation
// deltas to it; only valid when experiments run one at a time. Peak heap
// is sampled by a 10ms ticker (plus a final read), so it is a lower bound
// that is within one GC cycle of the true peak — stable enough for the
// order-of-magnitude bytes-per-rank tracking the snapshots do. With
// sampleHeap false (cells run on a parallel pool) the peak is not
// sampled and the record's PeakHeapBytes stays zero.
func measure(id string, sampleHeap bool, fn func()) benchRecord {
	var m0, m1 runtime.MemStats
	ev0, fl0, st0, sp0 := sim.Activity()
	runtime.ReadMemStats(&m0)
	peak := m0.HeapAlloc
	stop := make(chan struct{})
	done := make(chan struct{})
	if sampleHeap {
		go func() {
			defer close(done)
			t := time.NewTicker(10 * time.Millisecond)
			defer t.Stop()
			var m runtime.MemStats
			for {
				select {
				case <-stop:
					return
				case <-t.C:
					runtime.ReadMemStats(&m)
					if m.HeapAlloc > peak {
						peak = m.HeapAlloc
					}
				}
			}
		}()
	} else {
		close(done)
	}
	start := time.Now()
	fn()
	secs := time.Since(start).Seconds()
	close(stop)
	<-done
	runtime.ReadMemStats(&m1)
	if m1.HeapAlloc > peak {
		peak = m1.HeapAlloc
	}
	ev1, fl1, st1, sp1 := sim.Activity()
	rec := benchRecord{
		ID:      id,
		Seconds: secs,
		Events:  ev1 - ev0,
		Flows:   fl1 - fl0,
		Settles: st1 - st0,
		Mallocs: m1.Mallocs - m0.Mallocs,
		Ranks:   sp1 - sp0,
	}
	if sampleHeap {
		rec.PeakHeapBytes = peak
	}
	return rec
}

// checkBenchDelta compares fresh records against a committed snapshot and
// reports an error when any experiment regressed by more than the -delta-tol
// fraction in wall time or allocations. Experiments absent from the snapshot are skipped
// (new artifacts are not regressions) but logged, so lost coverage is
// visible — and if *nothing* overlaps (say, a baseline captured at a
// different -scale), the gate errors out instead of passing vacuously.
// Wall time is only compared when the baseline ran long enough (≥50ms)
// for the ratio to mean anything.
func checkBenchDelta(path string, records []benchRecord, tol float64) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return fmt.Errorf("reading -delta baseline: %v", err)
	}
	var base struct {
		Experiments []benchRecord `json:"experiments"`
	}
	if err := json.Unmarshal(data, &base); err != nil {
		return fmt.Errorf("decoding -delta baseline %s: %v", path, err)
	}
	byID := make(map[string]benchRecord, len(base.Experiments))
	for _, r := range base.Experiments {
		byID[r.ID] = r
	}
	tolerance := 1 + tol
	var regressions, skipped []string
	compared := 0
	for _, r := range records {
		b, ok := byID[r.ID]
		if !ok {
			skipped = append(skipped, r.ID)
			continue
		}
		compared++
		if b.Seconds >= 0.05 && r.Seconds > b.Seconds*tolerance {
			regressions = append(regressions,
				fmt.Sprintf("%s: wall time %.3fs vs baseline %.3fs (+%.0f%%)",
					r.ID, r.Seconds, b.Seconds, 100*(r.Seconds/b.Seconds-1)))
		}
		if b.Mallocs > 0 && float64(r.Mallocs) > float64(b.Mallocs)*tolerance {
			regressions = append(regressions,
				fmt.Sprintf("%s: %d mallocs vs baseline %d (+%.0f%%)",
					r.ID, r.Mallocs, b.Mallocs, 100*(float64(r.Mallocs)/float64(b.Mallocs)-1)))
		}
	}
	if len(skipped) > 0 {
		fmt.Fprintf(os.Stderr, "mcbench: -delta: no baseline in %s for %s (skipped — regression coverage lost)\n",
			path, strings.Join(skipped, ", "))
	}
	if compared == 0 {
		return fmt.Errorf("-delta: none of the %d fresh records match an experiment in %s — nothing was compared (baseline from a different id set or -scale?)",
			len(records), path)
	}
	if len(regressions) > 0 {
		return fmt.Errorf("benchmark regression vs %s:\n  %s", path, strings.Join(regressions, "\n  "))
	}
	return nil
}

// writeBenchJSON writes the schema-versioned benchmark envelope to path.
// A non-nil screen record adds the analytic-screening throughput section.
func writeBenchJSON(path, note, scale string, records []benchRecord, sInfo *screenInfo) {
	env := struct {
		SchemaVersion int           `json:"schema_version"`
		Note          string        `json:"note,omitempty"`
		Scale         string        `json:"scale"`
		Go            string        `json:"go"`
		MaxProcs      int           `json:"maxprocs"`
		Screen        *screenInfo   `json:"screen,omitempty"`
		Experiments   []benchRecord `json:"experiments"`
	}{SchemaVersion: schema.Version, Note: note, Scale: scale, Go: runtime.Version(), MaxProcs: runtime.GOMAXPROCS(0), Screen: sInfo, Experiments: records}
	data, err := json.MarshalIndent(env, "", "  ")
	if err != nil {
		fatalf("encoding %s: %v", path, err)
	}
	data = append(data, '\n')
	if err := os.WriteFile(path, data, 0o644); err != nil {
		fatalf("writing %s: %v", path, err)
	}
	fmt.Fprintf(os.Stderr, "wrote %s\n", path)
}

func renderer(format string) func(*report.Table) string {
	switch format {
	case "text":
		return (*report.Table).Text
	case "md":
		return (*report.Table).Markdown
	case "csv":
		return (*report.Table).CSV
	case "plot":
		return func(t *report.Table) string { return t.Chart(16) }
	}
	fatalf("unknown format %q (want text, md, csv, or plot)", format)
	return nil
}

func ext(format string) string {
	switch format {
	case "md":
		return ".md"
	case "csv":
		return ".csv"
	}
	return ".txt"
}

func usage() {
	fmt.Fprintf(os.Stderr, `mcbench regenerates the paper's tables and figures.

usage: mcbench [flags] <id>...|all|list

flags:
`)
	flag.PrintDefaults()
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "mcbench: "+format+"\n", args...)
	os.Exit(1)
}
