// Command mcbench regenerates the paper's tables and figures on the
// simulated systems.
//
// Usage:
//
//	mcbench [-scale quick|full] [-format text|md|csv] [-out DIR] [-j N] <id>...|all|list
//
// Experiment ids are the paper artifact names: fig2..fig17, table2..table14.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"sync"

	"multicore/internal/experiments"
	"multicore/internal/report"
)

func main() {
	scale := flag.String("scale", "quick", "problem scale: quick or full (paper sizes)")
	format := flag.String("format", "text", "output format: text, md, csv, or plot")
	outDir := flag.String("out", "", "directory to write per-experiment files (default: stdout)")
	jobs := flag.Int("j", runtime.GOMAXPROCS(0), "max simulations in flight (1 = fully serial)")
	traceDir := flag.String("trace", "", "directory for per-cell Chrome trace-event JSON files")
	flag.Usage = usage
	flag.Parse()

	if flag.NArg() == 0 {
		usage()
		os.Exit(2)
	}

	var sc experiments.Scale
	switch *scale {
	case "quick":
		sc = experiments.Quick
	case "full":
		sc = experiments.Full
	default:
		fatalf("unknown scale %q (want quick or full)", *scale)
	}
	if *jobs < 1 {
		fatalf("-j must be at least 1")
	}
	experiments.SetParallelism(*jobs)
	if *traceDir != "" {
		if err := os.MkdirAll(*traceDir, 0o755); err != nil {
			fatalf("creating %s: %v", *traceDir, err)
		}
		experiments.SetTraceDir(*traceDir)
	}

	render := renderer(*format)

	var ids []string
	for _, arg := range flag.Args() {
		switch arg {
		case "list":
			for _, e := range experiments.All() {
				fmt.Printf("%-8s %s\n", e.ID, e.Title)
			}
			return
		case "all":
			for _, e := range experiments.All() {
				ids = append(ids, e.ID)
			}
		default:
			ids = append(ids, arg)
		}
	}

	exps := make([]experiments.Experiment, len(ids))
	for i, id := range ids {
		e, ok := experiments.ByID(id)
		if !ok {
			fatalf("unknown experiment %q (try `mcbench list`)", id)
		}
		exps[i] = e
	}

	// Render every requested experiment. With -j 1 the experiments run
	// strictly in request order; otherwise they run concurrently (each
	// one's cells already share the worker pool) and outputs are still
	// emitted in request order.
	outputs := make([]string, len(exps))
	runOne := func(i int) {
		e := exps[i]
		fmt.Fprintf(os.Stderr, "running %s: %s\n", e.ID, e.Title)
		tables := e.Run(sc)
		var b strings.Builder
		fmt.Fprintf(&b, "# %s — %s\n\nPaper: %s\n\n", e.ID, e.Title, e.Paper)
		for _, t := range tables {
			b.WriteString(render(t))
			b.WriteString("\n")
		}
		outputs[i] = b.String()
	}
	if *jobs <= 1 || len(exps) == 1 {
		for i := range exps {
			runOne(i)
		}
	} else {
		// Experiment-level fan-out uses plain goroutines gated by their
		// own semaphore so they never hold cell-pool slots while waiting.
		sem := make(chan struct{}, *jobs)
		var wg sync.WaitGroup
		for i := range exps {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				sem <- struct{}{}
				defer func() { <-sem }()
				runOne(i)
			}(i)
		}
		wg.Wait()
	}

	for i, e := range exps {
		if *outDir == "" {
			fmt.Print(outputs[i])
			continue
		}
		if err := os.MkdirAll(*outDir, 0o755); err != nil {
			fatalf("creating %s: %v", *outDir, err)
		}
		path := filepath.Join(*outDir, e.ID+ext(*format))
		if err := os.WriteFile(path, []byte(outputs[i]), 0o644); err != nil {
			fatalf("writing %s: %v", path, err)
		}
		fmt.Fprintf(os.Stderr, "wrote %s\n", path)
	}
}

func renderer(format string) func(*report.Table) string {
	switch format {
	case "text":
		return (*report.Table).Text
	case "md":
		return (*report.Table).Markdown
	case "csv":
		return (*report.Table).CSV
	case "plot":
		return func(t *report.Table) string { return t.Chart(16) }
	}
	fatalf("unknown format %q (want text, md, csv, or plot)", format)
	return nil
}

func ext(format string) string {
	switch format {
	case "md":
		return ".md"
	case "csv":
		return ".csv"
	}
	return ".txt"
}

func usage() {
	fmt.Fprintf(os.Stderr, `mcbench regenerates the paper's tables and figures.

usage: mcbench [flags] <id>...|all|list

flags:
`)
	flag.PrintDefaults()
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "mcbench: "+format+"\n", args...)
	os.Exit(1)
}
