// Command mcsweepd is the distributed sweep service: one binary serving
// either role of the coordinator/worker system in internal/sweepd.
//
// Coordinator mode shards submitted sweeps across registered workers and
// streams per-cell results back to clients as NDJSON:
//
//	mcsweepd -serve 127.0.0.1:9141 [-state DIR] [-lease 15s] [-quota N]
//
// With -state DIR the coordinator is durable: submissions, cell
// finalizations, and lease attempts journal to DIR, so a coordinator
// that is SIGKILL'd mid-sweep restarts to the exact queue state —
// re-leasing only unfinished cells — and clients resume their result
// streams by token without re-simulating anything. -quota caps one
// client's in-flight cells (admission control, 429 past it); sweep
// priorities weight the dequeue so interactive sweeps are not starved
// by bulk submissions.
//
// Worker mode pulls cell leases, simulates them through the experiment
// executor with the (shared) result store as a global cache, and reports
// results; run any number against one coordinator:
//
//	mcsweepd -worker http://127.0.0.1:9141 -store /shared/cellstore [-j N] [-domain rack1]
//
// -domain labels the worker's failure domain (host, rack, zone);
// repeated lease expiries quarantine the whole domain with exponential
// backoff instead of re-leasing cells into known-bad hardware.
//
// Clients submit sweeps with `mcbench -sweep GRID -remote URL`. Workers
// heartbeat their leases; kill -9 a worker mid-cell and the coordinator
// re-queues its cells after the lease expires, with results guaranteed
// byte-identical to a serial run by the per-cell determinism
// fingerprints.
//
// Screened sweeps (`mcbench -sweep GRID -remote URL -screen`) never
// reach the workers in full: the coordinator prices the whole grid
// through the analytic screening tier in-process — about a microsecond
// per cell — and leases only the promoted cells (scheme crossovers
// within the client's promote margin, high-uncertainty estimates, and
// families without an analytic profile). A million-cell grid submission
// streams back mostly "estimated" cells immediately and occupies the
// worker fleet only with the contested sliver.
//
// Stress mode exercises the whole durable stack in one process —
// screening tier, distributed service, chaos worker kills, and a
// coordinator kill+restart — and fails unless the final table is
// byte-identical to a serial run:
//
//	mcsweepd -stress -cells 1000000 [-seed 1] [-j N] [-store DIR] [-state DIR]
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"runtime"
	"syscall"
	"time"

	"multicore/internal/sweepd"
)

func main() {
	serve := flag.String("serve", "", "coordinator mode: listen address, e.g. 127.0.0.1:9141")
	worker := flag.String("worker", "", "worker mode: coordinator base URL, e.g. http://127.0.0.1:9141")
	stress := flag.Bool("stress", false, "stress mode: screened chaos sweep with coordinator kill+restart, checked against serial")
	storeDir := flag.String("store", "", "worker/stress mode: shared result-store directory (global cell cache)")
	name := flag.String("name", "", "worker mode: label reported to the coordinator (default: hostname)")
	domain := flag.String("domain", "", "worker mode: failure-domain label (default: hostname)")
	jobs := flag.Int("j", runtime.GOMAXPROCS(0), "worker mode: cells simulated concurrently; stress mode: worker slots")
	settle := flag.Int("settle", 0, "worker mode: per-cell parallel settle workers (see mcbench -settle)")
	stateDir := flag.String("state", "", "coordinator/stress mode: durable state directory (journal + snapshot); empty = in-memory only")
	lease := flag.Duration("lease", 15*time.Second, "coordinator mode: lease duration workers must heartbeat within")
	maxAttempts := flag.Int("max-attempts", 5, "coordinator mode: lease assignments per cell before it fails")
	quota := flag.Int("quota", 0, "coordinator mode: max in-flight cells per client (0 = unlimited)")
	retention := flag.Duration("retention", 15*time.Minute, "coordinator mode: how long sweeps outlive their last client (resume window)")
	cells := flag.Int("cells", 100000, "stress mode: approximate grid size")
	seed := flag.Int64("seed", 1, "stress mode: chaos schedule seed")
	quiet := flag.Bool("quiet", false, "suppress per-event logging")
	flag.Parse()

	modes := 0
	for _, on := range []bool{*serve != "", *worker != "", *stress} {
		if on {
			modes++
		}
	}
	if modes != 1 {
		fmt.Fprintln(os.Stderr, "mcsweepd: exactly one of -serve ADDR, -worker URL, or -stress is required")
		flag.Usage()
		os.Exit(2)
	}

	log.SetFlags(log.Ltime | log.Lmicroseconds)
	logf := log.Printf
	if *quiet {
		logf = func(string, ...any) {}
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	if *stress {
		rep, err := sweepd.Stress(ctx, sweepd.StressOptions{
			Cells:    *cells,
			Seed:     *seed,
			Workers:  2,
			Slots:    *jobs,
			StoreDir: *storeDir,
			StateDir: *stateDir,
			Logf:     logf,
		})
		if err != nil {
			fatalf("stress: %v", err)
		}
		log.Printf("mcsweepd: stress PASS: %s", rep)
		return
	}

	if *serve != "" {
		coord, err := sweepd.NewCoordinator(sweepd.CoordinatorOptions{
			Lease:                *lease,
			MaxAttempts:          *maxAttempts,
			StateDir:             *stateDir,
			MaxInflightPerClient: *quota,
			SweepRetention:       *retention,
			Logf:                 logf,
		})
		if err != nil {
			fatalf("%v", err)
		}
		defer coord.Close()
		srv := &http.Server{Addr: *serve, Handler: coord.Handler()}
		errc := make(chan error, 1)
		go func() { errc <- srv.ListenAndServe() }()
		durable := "in-memory"
		if *stateDir != "" {
			durable = "state " + *stateDir
		}
		log.Printf("mcsweepd: coordinating on %s (lease %s, %s)", *serve, *lease, durable)
		select {
		case err := <-errc:
			fatalf("%v", err)
		case <-ctx.Done():
		}
		shCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		if err := srv.Shutdown(shCtx); err != nil {
			fatalf("shutdown: %v", err)
		}
		return
	}

	if *name == "" {
		host, _ := os.Hostname()
		*name = host
	}
	if *domain == "" {
		host, _ := os.Hostname()
		*domain = host
	}
	w, err := sweepd.NewWorker(sweepd.WorkerOptions{
		Coordinator:   *worker,
		Store:         *storeDir,
		Name:          *name,
		Domain:        *domain,
		Parallelism:   *jobs,
		SettleWorkers: *settle,
		Logf:          logf,
	})
	if err != nil {
		fatalf("%v", err)
	}
	log.Printf("mcsweepd: worker %q serving %s (store %q, domain %q, %d slots)", *name, *worker, *storeDir, *domain, *jobs)
	if err := w.Run(ctx); err != nil && !errors.Is(err, context.Canceled) {
		fatalf("%v", err)
	}
	cellsRun, hits := w.Stats()
	log.Printf("mcsweepd: worker done: %d cells simulated, %d store hits", cellsRun, hits)
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "mcsweepd: "+format+"\n", args...)
	os.Exit(1)
}
