// Command mcsweepd is the distributed sweep service: one binary serving
// either role of the coordinator/worker system in internal/sweepd.
//
// Coordinator mode shards submitted sweeps across registered workers and
// streams per-cell results back to clients as NDJSON:
//
//	mcsweepd -serve 127.0.0.1:9141 [-lease 15s] [-max-attempts 5]
//
// Worker mode pulls cell leases, simulates them through the experiment
// executor with the (shared) result store as a global cache, and reports
// results; run any number against one coordinator:
//
//	mcsweepd -worker http://127.0.0.1:9141 -store /shared/cellstore [-j N]
//
// Clients submit sweeps with `mcbench -sweep GRID -remote URL`. Workers
// heartbeat their leases; kill -9 a worker mid-cell and the coordinator
// re-queues its cells after the lease expires, with results guaranteed
// byte-identical to a serial run by the per-cell determinism
// fingerprints.
//
// Screened sweeps (`mcbench -sweep GRID -remote URL -screen`) never
// reach the workers in full: the coordinator prices the whole grid
// through the analytic screening tier in-process — about a microsecond
// per cell — and leases only the promoted cells (scheme crossovers
// within the client's promote margin, high-uncertainty estimates, and
// families without an analytic profile). A million-cell grid submission
// streams back mostly "estimated" cells immediately and occupies the
// worker fleet only with the contested sliver.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"runtime"
	"syscall"
	"time"

	"multicore/internal/sweepd"
)

func main() {
	serve := flag.String("serve", "", "coordinator mode: listen address, e.g. 127.0.0.1:9141")
	worker := flag.String("worker", "", "worker mode: coordinator base URL, e.g. http://127.0.0.1:9141")
	storeDir := flag.String("store", "", "worker mode: shared result-store directory (global cell cache)")
	name := flag.String("name", "", "worker mode: label reported to the coordinator (default: hostname)")
	jobs := flag.Int("j", runtime.GOMAXPROCS(0), "worker mode: cells simulated concurrently")
	settle := flag.Int("settle", 0, "worker mode: per-cell parallel settle workers (see mcbench -settle)")
	lease := flag.Duration("lease", 15*time.Second, "coordinator mode: lease duration workers must heartbeat within")
	maxAttempts := flag.Int("max-attempts", 5, "coordinator mode: lease assignments per cell before it fails")
	quiet := flag.Bool("quiet", false, "suppress per-event logging")
	flag.Parse()

	if (*serve == "") == (*worker == "") {
		fmt.Fprintln(os.Stderr, "mcsweepd: exactly one of -serve ADDR or -worker URL is required")
		flag.Usage()
		os.Exit(2)
	}

	log.SetFlags(log.Ltime | log.Lmicroseconds)
	logf := log.Printf
	if *quiet {
		logf = func(string, ...any) {}
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	if *serve != "" {
		coord := sweepd.NewCoordinator(sweepd.CoordinatorOptions{
			Lease:       *lease,
			MaxAttempts: *maxAttempts,
			Logf:        logf,
		})
		defer coord.Close()
		srv := &http.Server{Addr: *serve, Handler: coord.Handler()}
		errc := make(chan error, 1)
		go func() { errc <- srv.ListenAndServe() }()
		log.Printf("mcsweepd: coordinating on %s (lease %s)", *serve, *lease)
		select {
		case err := <-errc:
			fatalf("%v", err)
		case <-ctx.Done():
		}
		shCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		if err := srv.Shutdown(shCtx); err != nil {
			fatalf("shutdown: %v", err)
		}
		return
	}

	if *name == "" {
		host, _ := os.Hostname()
		*name = host
	}
	w, err := sweepd.NewWorker(sweepd.WorkerOptions{
		Coordinator:   *worker,
		Store:         *storeDir,
		Name:          *name,
		Parallelism:   *jobs,
		SettleWorkers: *settle,
		Logf:          logf,
	})
	if err != nil {
		fatalf("%v", err)
	}
	log.Printf("mcsweepd: worker %q serving %s (store %q, %d slots)", *name, *worker, *storeDir, *jobs)
	if err := w.Run(ctx); err != nil && !errors.Is(err, context.Canceled) {
		fatalf("%v", err)
	}
	cells, hits := w.Stats()
	log.Printf("mcsweepd: worker done: %d cells simulated, %d store hits", cells, hits)
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "mcsweepd: "+format+"\n", args...)
	os.Exit(1)
}
