// Command mcrun executes a single workload on a simulated system with an
// explicit placement configuration — the equivalent of the paper's
// `numactl ... mpirun -np N <benchmark>` invocations.
//
// Usage:
//
//	mcrun -system longs -ranks 8 -scheme localalloc -impl mpich2 -workload cg
//
// Workloads are resolved through the internal/workload registry: stream,
// daxpy, dgemm, fft, ra, ptrans, hpl, cg, ft, ep, mg, lmbench,
// amber:<bench>, lammps:<lj|chain|eam>, pop.
//
// The run is cancellable (SIGINT/SIGTERM) and optionally bounded by
// -timeout; a deadlocked workload reports the blocked ranks and exits
// instead of hanging. With -faults a deterministic perturbation plan
// (OS noise, degraded links/memory controllers, stragglers, message
// delays — see internal/fault) is injected into the run, seeded by
// -fault-seed; -retries re-attempts runs that fail transiently.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"

	"multicore/internal/affinity"
	"multicore/internal/core"
	"multicore/internal/fault"
	"multicore/internal/machine"
	"multicore/internal/mpi"
	"multicore/internal/report"
	"multicore/internal/sim"
	"multicore/internal/units"
	"multicore/internal/workload"
)

func impls(name string) *mpi.Impl {
	switch name {
	case "mpich2":
		return mpi.MPICH2()
	case "lam":
		return mpi.LAM()
	case "lam-sysv":
		return mpi.LAM().WithSublayer(mpi.SysV())
	case "lam-usysv":
		return mpi.LAM().WithSublayer(mpi.USysV())
	case "openmpi":
		return mpi.OpenMPI()
	}
	return nil
}

func main() {
	system := flag.String("system", "dmz", "system: a registered machine (tiger, dmz, longs, hybrid16, epyc2x4, ...) or @FILE for a spec file")
	machineFile := flag.String("machine", "", "JSON machine-spec file overriding -system (see machine.LoadSpec)")
	ranks := flag.Int("ranks", 2, "MPI task count")
	scheme := flag.String("scheme", "default", "placement: default, localalloc, membind, 2mpi-localalloc, 2mpi-membind, interleave")
	impl := flag.String("impl", "mpich2", "MPI profile: mpich2, lam, lam-sysv, lam-usysv, openmpi")
	workloadName := flag.String("workload", "stream", "workload (see doc comment)")
	class := flag.String("class", "", "NPB problem class override (A, B, W)")
	steps := flag.Int("steps", 0, "MD/time-step count override for amber, lammps, pop")
	size := flag.Int("n", 0, "problem-size override for daxpy, dgemm, fft, ptrans, hpl")
	timeout := flag.Duration("timeout", 0, "wall-clock budget for the run (0 = unbounded), e.g. 30s")
	util := flag.Bool("util", false, "print per-resource utilization after the run")
	phases := flag.Bool("phases", false, "print the recorded phase timeline")
	trace := flag.String("trace", "", "write a Chrome trace-event JSON file (view in Perfetto)")
	breakdown := flag.Bool("breakdown", false, "print the per-rank time breakdown table")
	stats := flag.Bool("stats", false, "print engine stats (event/flow counters, per-process state times)")
	nodes := flag.Int("nodes", 1, "number of cluster nodes (ranks are per node)")
	netName := flag.String("net", "rapidarray", "inter-node fabric: rapidarray or gige")
	faults := flag.String("faults", "", `deterministic fault plan, e.g. "noise:core=3,period=1ms,frac=0.1;linkdown:s0-s1,t=2ms..5ms"`)
	faultSeed := flag.Int64("fault-seed", 1, "seed for the fault plan's random draws")
	retries := flag.Int("retries", 0, "re-attempts when the run fails with a transient fault (0 = no retry)")
	settle := flag.Int("settle", 0, "parallel settle workers; >1 opts into component-mode settling (0/1 = serial union settling)")
	flag.Parse()

	sch, err := affinity.ParseScheme(*scheme)
	if err != nil {
		fatalf("%v", err)
	}
	im := impls(*impl)
	if im == nil {
		fatalf("unknown impl %q", *impl)
	}

	spec, err := workload.ParseSpec(*workloadName)
	if err != nil {
		fatalf("%v", err)
	}
	spec.Class = *class
	spec.Steps = *steps
	spec.N = *size
	wl, err := workload.New(spec)
	if err != nil {
		fatalf("%v", err)
	}

	var net *mpi.NetSpec
	switch *netName {
	case "rapidarray":
		net = mpi.RapidArray()
	case "gige":
		net = mpi.GigE()
	default:
		fatalf("unknown net %q", *netName)
	}
	job := core.Job{
		System:        *system,
		Ranks:         *ranks,
		Scheme:        sch,
		Impl:          im,
		Nodes:         *nodes,
		Net:           net,
		Observe:       *stats || *trace != "",
		SettleWorkers: *settle,
	}
	if *trace != "" {
		job.Trace = &sim.Trace{}
	}
	var plan *fault.Plan
	if *faults != "" {
		plan, err = fault.Parse(*faults, *faultSeed)
		if err != nil {
			fatalf("%v", err)
		}
		job.Faults = plan
	}
	if *retries < 0 {
		fatalf("-retries must be non-negative")
	}
	if *machineFile != "" {
		spec, err := machine.LoadSpec(*machineFile)
		if err != nil {
			fatalf("%v", err)
		}
		job.Spec = spec
		*system = spec.Topo.Name
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}
	// Retry loop: only transient failures (injected by the fault plan) are
	// re-attempted; deterministic failures repeat identically and surface
	// immediately. Each attempt sees fresh, seeded fault draws.
	cell := fmt.Sprintf("%s/%s/r%d/%s", spec, *system, *ranks, *scheme)
	var res *mpi.Result
	for attempt := 0; ; attempt++ {
		if *trace != "" {
			job.Trace = &sim.Trace{} // don't accumulate spans across attempts
		}
		if plan != nil {
			err = plan.CellError(cell, attempt)
		}
		if err == nil {
			res, err = core.RunContext(ctx, job, wl.Body)
		}
		if err == nil || !fault.IsTransient(err) || attempt >= *retries || ctx.Err() != nil {
			break
		}
		fmt.Fprintf(os.Stderr, "mcrun: attempt %d/%d failed transiently: %v (retrying)\n",
			attempt+1, *retries+1, err)
	}
	if err != nil {
		var dl *sim.DeadlockError
		if errors.As(err, &dl) {
			fmt.Fprintf(os.Stderr, "mcrun: deadlock at t=%s: %d processes blocked forever:\n",
				units.Duration(dl.Time), dl.Live)
			for _, p := range dl.Blocked {
				fmt.Fprintf(os.Stderr, "  %-16s waiting on %s\n", p.Name, p.Wait)
			}
			os.Exit(1)
		}
		var ce *sim.CanceledError
		if errors.As(err, &ce) {
			fatalf("run aborted at simulated t=%s: %v", units.Duration(ce.Time), ce.Cause)
		}
		if fault.IsTransient(err) {
			fatalf("run failed transiently after %d attempt(s): %v", *retries+1, err)
		}
		fatalf("%v", err)
	}

	if *nodes > 1 {
		fmt.Printf("%s on %d x %s (%s), %d ranks/node, %s, %s\n",
			spec, *nodes, *system, net.Name, *ranks, *scheme, im.Name)
	} else {
		fmt.Printf("%s on %s, %d ranks, %s, %s\n", spec, *system, *ranks, *scheme, im.Name)
	}
	fmt.Printf("  makespan: %s\n", units.Duration(res.Time))
	fmt.Printf("  messages: %d (%s)\n", res.Messages, units.Bytes(res.Bytes))
	for _, m := range wl.Metrics {
		if vs := res.Values[m.Key]; len(vs) > 0 {
			fmt.Printf("  %s: max %s, mean %s\n", m.Label, m.Format(res.Max(m.Key)), m.Format(res.Mean(m.Key)))
		}
	}
	if len(res.RankCompute) > 0 {
		maxC, maxM := 0.0, 0.0
		for i := range res.RankCompute {
			if res.RankCompute[i] > maxC {
				maxC = res.RankCompute[i]
			}
			if res.RankMemBytes[i] > maxM {
				maxM = res.RankMemBytes[i]
			}
		}
		fmt.Printf("  per-rank max: %s compute, %s DRAM traffic\n",
			units.Duration(maxC), units.Bytes(maxM))
	}
	hot := res.Machine.HottestResource(res.Time)
	fmt.Printf("  bottleneck: %s at %.0f%% utilization (%s served)\n",
		hot.Name, 100*hot.Utilization, units.Bytes(hot.BytesServed))
	if *breakdown {
		perRank := make([][]float64, len(res.Breakdown))
		for i, b := range res.Breakdown {
			perRank[i] = b.Slice()
		}
		fmt.Print(report.Breakdown("per-rank time breakdown (seconds)",
			mpi.CategoryNames[:], perRank).Text())
	}
	if *stats {
		s := res.Stats
		fmt.Printf("  engine: %d events, %d flows, %d settles, %d spawns\n", s.Events, s.Flows, s.Settles, s.Spawns)
		for _, p := range s.Procs {
			if p.Total() == 0 {
				continue
			}
			fmt.Printf("    %-16s run %s  sleep %s  flow-wait %s  queue-wait %s\n",
				p.Name, units.Duration(p.Running), units.Duration(p.Sleeping),
				units.Duration(p.BlockedFlow), units.Duration(p.BlockedQueue))
		}
	}
	if *trace != "" {
		if err := job.Trace.WriteFile(*trace); err != nil {
			fatalf("writing trace: %v", err)
		}
		fmt.Printf("  trace: %s (%d events)\n", *trace, job.Trace.Len())
	}
	if *phases && len(res.Timeline) > 0 {
		fmt.Println("  phase timeline (first 40 spans):")
		for i, span := range res.Timeline {
			if i >= 40 {
				fmt.Printf("    ... %d more\n", len(res.Timeline)-40)
				break
			}
			fmt.Printf("    rank %2d %-14s %12s .. %12s\n", span.Rank, span.Name,
				units.Duration(span.Start), units.Duration(span.End))
		}
	}
	if *util {
		fmt.Println("  resource utilization:")
		for _, u := range res.Machine.Utilizations(res.Time) {
			if u.BytesServed == 0 {
				continue
			}
			fmt.Printf("    %-24s %6.1f%%  %s\n", u.Name, 100*u.Utilization, units.Bytes(u.BytesServed))
		}
	}
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "mcrun: "+format+"\n", args...)
	os.Exit(1)
}
