// Command mcrun executes a single workload on a simulated system with an
// explicit placement configuration — the equivalent of the paper's
// `numactl ... mpirun -np N <benchmark>` invocations.
//
// Usage:
//
//	mcrun -system longs -ranks 8 -scheme localalloc -impl mpich2 -workload cg
//
// Workloads: stream, daxpy, dgemm, fft, ra, ptrans, hpl, cg, ft, ep, mg,
// lmbench, amber:<bench>, lammps:<lj|chain|eam>, pop.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"multicore/internal/affinity"
	"multicore/internal/apps/amber"
	"multicore/internal/apps/lammps"
	"multicore/internal/apps/pop"
	"multicore/internal/core"
	"multicore/internal/kernels/blas"
	"multicore/internal/kernels/cg"
	"multicore/internal/kernels/fft"
	"multicore/internal/kernels/hpl"
	"multicore/internal/kernels/lmbench"
	"multicore/internal/kernels/ptrans"
	"multicore/internal/kernels/rnda"
	"multicore/internal/kernels/stream"
	"multicore/internal/machine"
	"multicore/internal/mpi"
	"multicore/internal/npb"
	"multicore/internal/report"
	"multicore/internal/sim"
	"multicore/internal/units"
)

func impls(name string) *mpi.Impl {
	switch name {
	case "mpich2":
		return mpi.MPICH2()
	case "lam":
		return mpi.LAM()
	case "lam-sysv":
		return mpi.LAM().WithSublayer(mpi.SysV())
	case "lam-usysv":
		return mpi.LAM().WithSublayer(mpi.USysV())
	case "openmpi":
		return mpi.OpenMPI()
	}
	return nil
}

func main() {
	system := flag.String("system", "dmz", "system: tiger, dmz, longs")
	machineFile := flag.String("machine", "", "JSON machine-spec file overriding -system (see machine.LoadSpec)")
	ranks := flag.Int("ranks", 2, "MPI task count")
	scheme := flag.String("scheme", "default", "placement: default, localalloc, membind, 2mpi-localalloc, 2mpi-membind, interleave")
	impl := flag.String("impl", "mpich2", "MPI profile: mpich2, lam, lam-sysv, lam-usysv, openmpi")
	workload := flag.String("workload", "stream", "workload (see doc comment)")
	util := flag.Bool("util", false, "print per-resource utilization after the run")
	phases := flag.Bool("phases", false, "print the recorded phase timeline")
	trace := flag.String("trace", "", "write a Chrome trace-event JSON file (view in Perfetto)")
	breakdown := flag.Bool("breakdown", false, "print the per-rank time breakdown table")
	stats := flag.Bool("stats", false, "print engine stats (event/flow counters, per-process state times)")
	nodes := flag.Int("nodes", 1, "number of cluster nodes (ranks are per node)")
	netName := flag.String("net", "rapidarray", "inter-node fabric: rapidarray or gige")
	flag.Parse()

	sch, err := affinity.ParseScheme(*scheme)
	if err != nil {
		fatalf("%v", err)
	}
	im := impls(*impl)
	if im == nil {
		fatalf("unknown impl %q", *impl)
	}

	body, metrics, err := workloadBody(*workload)
	if err != nil {
		fatalf("%v", err)
	}

	var net *mpi.NetSpec
	switch *netName {
	case "rapidarray":
		net = mpi.RapidArray()
	case "gige":
		net = mpi.GigE()
	default:
		fatalf("unknown net %q", *netName)
	}
	job := core.Job{
		System:  *system,
		Ranks:   *ranks,
		Scheme:  sch,
		Impl:    im,
		Nodes:   *nodes,
		Net:     net,
		Observe: *stats || *trace != "",
	}
	if *trace != "" {
		job.Trace = &sim.Trace{}
	}
	if *machineFile != "" {
		spec, err := machine.LoadSpec(*machineFile)
		if err != nil {
			fatalf("%v", err)
		}
		job.Spec = spec
		*system = spec.Topo.Name
	}
	res, err := core.Run(job, body)
	if err != nil {
		fatalf("%v", err)
	}

	if *nodes > 1 {
		fmt.Printf("%s on %d x %s (%s), %d ranks/node, %s, %s\n",
			*workload, *nodes, *system, net.Name, *ranks, *scheme, im.Name)
	} else {
		fmt.Printf("%s on %s, %d ranks, %s, %s\n", *workload, *system, *ranks, *scheme, im.Name)
	}
	fmt.Printf("  makespan: %s\n", units.Duration(res.Time))
	fmt.Printf("  messages: %d (%s)\n", res.Messages, units.Bytes(res.Bytes))
	for _, m := range metrics {
		if vs := res.Values[m.key]; len(vs) > 0 {
			fmt.Printf("  %s: max %s, mean %s\n", m.label, m.fmt(res.Max(m.key)), m.fmt(res.Mean(m.key)))
		}
	}
	if len(res.RankCompute) > 0 {
		maxC, maxM := 0.0, 0.0
		for i := range res.RankCompute {
			if res.RankCompute[i] > maxC {
				maxC = res.RankCompute[i]
			}
			if res.RankMemBytes[i] > maxM {
				maxM = res.RankMemBytes[i]
			}
		}
		fmt.Printf("  per-rank max: %s compute, %s DRAM traffic\n",
			units.Duration(maxC), units.Bytes(maxM))
	}
	hot := res.Machine.HottestResource(res.Time)
	fmt.Printf("  bottleneck: %s at %.0f%% utilization (%s served)\n",
		hot.Name, 100*hot.Utilization, units.Bytes(hot.BytesServed))
	if *breakdown {
		perRank := make([][]float64, len(res.Breakdown))
		for i, b := range res.Breakdown {
			perRank[i] = b.Slice()
		}
		fmt.Print(report.Breakdown("per-rank time breakdown (seconds)",
			mpi.CategoryNames[:], perRank).Text())
	}
	if *stats {
		s := res.Stats
		fmt.Printf("  engine: %d events, %d flows, %d settles\n", s.Events, s.Flows, s.Settles)
		for _, p := range s.Procs {
			if p.Total() == 0 {
				continue
			}
			fmt.Printf("    %-16s run %s  sleep %s  flow-wait %s  queue-wait %s\n",
				p.Name, units.Duration(p.Running), units.Duration(p.Sleeping),
				units.Duration(p.BlockedFlow), units.Duration(p.BlockedQueue))
		}
	}
	if *trace != "" {
		if err := job.Trace.WriteFile(*trace); err != nil {
			fatalf("writing trace: %v", err)
		}
		fmt.Printf("  trace: %s (%d events)\n", *trace, job.Trace.Len())
	}
	if *phases && len(res.Timeline) > 0 {
		fmt.Println("  phase timeline (first 40 spans):")
		for i, span := range res.Timeline {
			if i >= 40 {
				fmt.Printf("    ... %d more\n", len(res.Timeline)-40)
				break
			}
			fmt.Printf("    rank %2d %-14s %12s .. %12s\n", span.Rank, span.Name,
				units.Duration(span.Start), units.Duration(span.End))
		}
	}
	if *util {
		fmt.Println("  resource utilization:")
		for _, u := range res.Machine.Utilizations(res.Time) {
			if u.BytesServed == 0 {
				continue
			}
			fmt.Printf("    %-24s %6.1f%%  %s\n", u.Name, 100*u.Utilization, units.Bytes(u.BytesServed))
		}
	}
}

type metric struct {
	key   string
	label string
	fmt   func(float64) string
}

func secs(v float64) string { return units.Duration(v) }
func rate(v float64) string { return units.Rate(v) }
func flps(v float64) string { return units.Flops(v) }
func gups(v float64) string { return fmt.Sprintf("%.4f GUPS", v) }
func gfs(v float64) string  { return fmt.Sprintf("%.2f GFlop/s", v) }

func workloadBody(name string) (func(*mpi.Rank), []metric, error) {
	switch {
	case name == "stream":
		return func(r *mpi.Rank) { stream.RunTriad(r, stream.Params{}) },
			[]metric{{stream.MetricBandwidth, "triad bandwidth", rate}}, nil
	case name == "daxpy":
		return func(r *mpi.Rank) { blas.RunDaxpy(r, blas.DaxpyParams{N: 1 << 22, Variant: blas.ACML}) },
			[]metric{{blas.MetricDaxpyFlops, "DAXPY", flps}}, nil
	case name == "dgemm":
		return func(r *mpi.Rank) { blas.RunDgemm(r, blas.DgemmParams{N: 800, Variant: blas.ACML}) },
			[]metric{{blas.MetricDgemmFlops, "DGEMM", flps}}, nil
	case name == "fft":
		return func(r *mpi.Rank) { fft.RunDist(r, fft.DistParams{TotalN: 1 << 22}) },
			[]metric{{fft.MetricFlops, "FFT", flps}}, nil
	case name == "ra":
		return func(r *mpi.Rank) { rnda.Run(r, rnda.Params{MPI: true}) },
			[]metric{{rnda.MetricGUPS, "RandomAccess", gups}}, nil
	case name == "ptrans":
		return func(r *mpi.Rank) { ptrans.Run(r, ptrans.Params{N: 2048}) },
			[]metric{{ptrans.MetricBandwidth, "PTRANS", rate}}, nil
	case name == "hpl":
		return func(r *mpi.Rank) { hpl.Run(r, hpl.Params{N: 2048}) },
			[]metric{{hpl.MetricGFlops, "HPL", gfs}}, nil
	case name == "cg":
		body, err := npb.RunCG(npb.ClassA)
		return body, []metric{{cg.MetricTime, "CG time", secs}}, err
	case name == "ft":
		body, err := npb.RunFT(npb.ClassA)
		return body, []metric{{npb.MetricFTTime, "FT time", secs}}, err
	case name == "ep":
		body, err := npb.RunEP(npb.ClassA)
		return body, []metric{{npb.MetricEPTime, "EP time", secs}}, err
	case name == "mg":
		body, err := npb.RunMG(npb.ClassW)
		return body, []metric{{npb.MetricMGTime, "MG time", secs}}, err
	case name == "lmbench":
		return func(r *mpi.Rank) {
				for _, pt := range lmbench.Run(r, lmbench.Params{}) {
					r.Report(fmt.Sprintf("%s%.0f", lmbench.MetricPrefix, pt.WorkingSetBytes), pt.LatencySeconds)
				}
			},
			nil, nil
	case strings.HasPrefix(name, "amber:"):
		bench, err := amber.ByName(strings.TrimPrefix(name, "amber:"))
		if err != nil {
			return nil, nil, err
		}
		return func(r *mpi.Rank) { amber.Run(r, amber.Params{Bench: bench, Steps: 10}) },
			[]metric{
				{amber.MetricTotalTime, "MD loop time", secs},
				{amber.MetricFFTTime, "FFT phase time", secs},
			}, nil
	case strings.HasPrefix(name, "lammps:"):
		bench, err := lammps.ByName(strings.TrimPrefix(name, "lammps:"))
		if err != nil {
			return nil, nil, err
		}
		return func(r *mpi.Rank) { lammps.Run(r, lammps.Params{Bench: bench}) },
			[]metric{{lammps.MetricTime, "MD loop time", secs}}, nil
	case name == "pop":
		return func(r *mpi.Rank) { pop.Run(r, pop.Params{Steps: 10}) },
			[]metric{
				{pop.MetricBaroclinic, "baroclinic time", secs},
				{pop.MetricBarotropic, "barotropic time", secs},
			}, nil
	}
	return nil, nil, fmt.Errorf("unknown workload %q", name)
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "mcrun: "+format+"\n", args...)
	os.Exit(1)
}
