// Command mccompare scores the reproduction against the paper's published
// numbers: it re-runs each transcribed table on the simulator and reports
// per-row rank correlation (does the same option/workload ordering hold?)
// and spread ratio (is the placement effect the same magnitude?).
//
// Usage:
//
//	mccompare [-scale quick|full] [table2 table9 ...]
package main

import (
	"flag"
	"fmt"
	"math"
	"os"
	"sort"
	"strconv"

	"multicore/internal/experiments"
	"multicore/internal/paperdata"
	"multicore/internal/report"
)

// binding of a paperdata table to the experiment artifact that regenerates
// it: experiment id, table index within the experiment's output, and an
// optional transform from measured cell to the paper's unit.
type binding struct {
	expID string
	index int
	// toEfficiency divides a measured speedup by the row's task count
	// (the paper's Table 4 reports efficiencies).
	toEfficiency bool
}

var bindings = map[string]binding{
	"table2-cg": {expID: "table2", index: 0},
	"table2-ft": {expID: "table2", index: 1},
	"table3-cg": {expID: "table3", index: 0},
	"table3-ft": {expID: "table3", index: 1},
	"table4":    {expID: "table4", index: 0, toEfficiency: true},
	"table7":    {expID: "table7", index: 0},
	"table8":    {expID: "table8", index: 0},
	"table9":    {expID: "table9", index: 0},
	"table10":   {expID: "table10", index: 0},
	"table11":   {expID: "table11", index: 0},
	"table12":   {expID: "table12", index: 0},
	"table13":   {expID: "table13", index: 0},
	"table14":   {expID: "table14", index: 0},
}

func main() {
	scale := flag.String("scale", "quick", "problem scale: quick or full")
	flag.Parse()
	sc := experiments.Quick
	if *scale == "full" {
		sc = experiments.Full
	}

	runner := experiments.NewRunner(nil, experiments.Options{})

	want := flag.Args()
	paper := paperdata.Tables()
	ids := make([]string, 0, len(paper))
	for id := range paper {
		if len(want) > 0 && !matchesAny(id, want) {
			continue
		}
		ids = append(ids, id)
	}
	sort.Strings(ids)

	// Run each needed experiment once.
	measured := map[string][]*report.Table{}
	var all []paperdata.Agreement
	for _, id := range ids {
		b, ok := bindings[id]
		if !ok {
			continue
		}
		if _, done := measured[b.expID]; !done {
			e, ok := experiments.ByID(b.expID)
			if !ok {
				fatalf("no experiment %q", b.expID)
			}
			fmt.Fprintf(os.Stderr, "running %s...\n", b.expID)
			tabs, err := runner.Run(e, sc)
			if err != nil {
				fatalf("%s: %v", b.expID, err)
			}
			measured[b.expID] = tabs
		}
		tabs := measured[b.expID]
		if b.index >= len(tabs) {
			fatalf("%s: experiment %s returned %d tables", id, b.expID, len(tabs))
		}
		ptab := paper[id]
		fmt.Printf("%s — %s\n", id, ptab.Title)
		var ags []paperdata.Agreement
		for _, row := range ptab.Rows {
			cells, ok := measuredRow(tabs[b.index], row.Tasks, row.System)
			if !ok {
				fmt.Printf("  (%2d, %-6s) no measured row\n", row.Tasks, row.System)
				continue
			}
			if b.toEfficiency {
				for i := range cells {
					cells[i] /= float64(row.Tasks)
				}
			}
			ag := paperdata.Compare(row.Cells, cells)
			ags = append(ags, ag)
			fmt.Printf("  (%2d, %-6s) %s\n", row.Tasks, row.System, ag)
		}
		s, g := paperdata.Summary(ags)
		fmt.Printf("  => mean spearman %.2f, geo spread ratio %.2f\n\n", s, g)
		all = append(all, ags...)
	}

	s, g := paperdata.Summary(all)
	fmt.Printf("OVERALL: %d rows, mean spearman %.2f, geo spread ratio %.2f\n", len(all), s, g)
	if !math.IsNaN(s) && s < 0.3 {
		fmt.Println("WARNING: weak ordering agreement with the paper")
		os.Exit(1)
	}
}

func matchesAny(id string, wants []string) bool {
	for _, w := range wants {
		if id == w || (len(id) > len(w) && id[:len(w)] == w && id[len(w)] == '-') {
			return true
		}
	}
	return false
}

// measuredRow finds the experiment-table row whose first two cells are
// (tasks, system) — or, for speedup tables, ("cores", system) — and
// parses the remaining cells ("-" becomes NaN).
func measuredRow(t *report.Table, tasks int, system string) ([]float64, bool) {
	want := strconv.Itoa(tasks)
	for i := 0; i < t.NumRows(); i++ {
		if t.Cell(i, 0) != want || t.Cell(i, 1) != system {
			continue
		}
		var out []float64
		for c := 2; c < len(t.Columns); c++ {
			v, err := strconv.ParseFloat(t.Cell(i, c), 64)
			if err != nil {
				v = math.NaN()
			}
			out = append(out, v)
		}
		return out, true
	}
	return nil, false
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "mccompare: "+format+"\n", args...)
	os.Exit(1)
}
