package units

import (
	"strings"
	"testing"
)

func TestBytes(t *testing.T) {
	cases := map[float64]string{
		512:           "512 B",
		2 * KB:        "2.00 KiB",
		3.5 * MB:      "3.50 MiB",
		1.25 * GB:     "1.25 GiB",
		1536 * KB * 4: "6.00 MiB",
	}
	for v, want := range cases {
		if got := Bytes(v); got != want {
			t.Fatalf("Bytes(%v) = %q, want %q", v, got, want)
		}
	}
}

func TestRate(t *testing.T) {
	cases := map[float64]string{
		500:        "500 B/s",
		2.5 * Kilo: "2.50 kB/s",
		3 * Mega:   "3.00 MB/s",
		6.4 * Giga: "6.40 GB/s",
	}
	for v, want := range cases {
		if got := Rate(v); got != want {
			t.Fatalf("Rate(%v) = %q, want %q", v, got, want)
		}
	}
}

func TestFlops(t *testing.T) {
	if got := Flops(4.4 * Giga); got != "4.40 GFlop/s" {
		t.Fatalf("Flops = %q", got)
	}
	if got := Flops(12 * Mega); got != "12.00 MFlop/s" {
		t.Fatalf("Flops = %q", got)
	}
	if !strings.HasSuffix(Flops(10), "Flop/s") {
		t.Fatal("small flops should still carry the unit")
	}
}

func TestDuration(t *testing.T) {
	cases := map[float64]string{
		2.5:                  "2.500 s",
		12 * Millisecond:     "12.000 ms",
		3.25 * Microsecond:   "3.250 us",
		90 * Nanosecond:      "90.0 ns",
		999.9 * Microsecond:  "999.900 us",
		1000.1 * Microsecond: "1.000 ms",
	}
	for v, want := range cases {
		if got := Duration(v); got != want {
			t.Fatalf("Duration(%v) = %q, want %q", v, got, want)
		}
	}
}

func TestConstantsConsistent(t *testing.T) {
	if KB*1024 != MB || MB*1024 != GB {
		t.Fatal("binary prefixes inconsistent")
	}
	if Kilo*1000 != Mega || Mega*1000 != Giga {
		t.Fatal("decimal prefixes inconsistent")
	}
	if Second != 1 || Millisecond*1000 != Second {
		t.Fatal("time units inconsistent")
	}
}
