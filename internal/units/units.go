// Package units provides quantities and formatting helpers used across the
// simulator: bytes, flops, bandwidths, and simulated time in seconds.
package units

import "fmt"

// Common byte sizes.
const (
	KB = 1 << 10
	MB = 1 << 20
	GB = 1 << 30
)

// Decimal rate units (bandwidths and flop rates are decimal, as in the
// paper's GB/s and GFlop/s figures).
const (
	Kilo = 1e3
	Mega = 1e6
	Giga = 1e9
)

// Time units expressed in seconds of simulated time.
const (
	Second      = 1.0
	Millisecond = 1e-3
	Microsecond = 1e-6
	Nanosecond  = 1e-9
)

// Bytes formats a byte count with a binary-prefix unit.
func Bytes(n float64) string {
	switch {
	case n >= GB:
		return fmt.Sprintf("%.2f GiB", n/GB)
	case n >= MB:
		return fmt.Sprintf("%.2f MiB", n/MB)
	case n >= KB:
		return fmt.Sprintf("%.2f KiB", n/KB)
	}
	return fmt.Sprintf("%.0f B", n)
}

// Rate formats a rate in bytes/second with a decimal-prefix unit.
func Rate(bps float64) string {
	switch {
	case bps >= Giga:
		return fmt.Sprintf("%.2f GB/s", bps/Giga)
	case bps >= Mega:
		return fmt.Sprintf("%.2f MB/s", bps/Mega)
	case bps >= Kilo:
		return fmt.Sprintf("%.2f kB/s", bps/Kilo)
	}
	return fmt.Sprintf("%.0f B/s", bps)
}

// Flops formats a flop rate.
func Flops(fps float64) string {
	switch {
	case fps >= Giga:
		return fmt.Sprintf("%.2f GFlop/s", fps/Giga)
	case fps >= Mega:
		return fmt.Sprintf("%.2f MFlop/s", fps/Mega)
	}
	return fmt.Sprintf("%.0f Flop/s", fps)
}

// Duration formats simulated seconds with an adaptive unit.
func Duration(s float64) string {
	switch {
	case s >= 1:
		return fmt.Sprintf("%.3f s", s)
	case s >= Millisecond:
		return fmt.Sprintf("%.3f ms", s/Millisecond)
	case s >= Microsecond:
		return fmt.Sprintf("%.3f us", s/Microsecond)
	}
	return fmt.Sprintf("%.1f ns", s/Nanosecond)
}
