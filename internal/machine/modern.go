package machine

import (
	"multicore/internal/topology"
	"multicore/internal/units"
)

// The modern pack: machines the 2006 paper could not measure, built
// from the same effective-parameter calibration style as the paper
// systems. Values are derated from datasheet peaks so that measured
// behaviour (STREAM-class bandwidth, load-to-use latency) emerges from
// the model, not the marketing numbers; MODEL.md §17 records the
// rationale per parameter.

// Hybrid16 is an i9-12900K-style hybrid desktop part (see the LIKWID
// characterization in SNIPPETS.md): one socket carrying eight
// performance cores at 5.2 GHz and eight efficiency cores at 3.9 GHz,
// all sharing a 30 MiB last-level cache and a dual-channel DDR5
// controller.
func Hybrid16() *Spec {
	topo, err := topology.Parse("sock:8P+8E")
	if err != nil {
		panic(err)
	}
	return &Spec{
		Topo: topo,
		// Flat fields hold the P-core values; the E class overrides.
		FreqHz:        5.2e9,
		FlopsPerCycle: 16, // AVX2: two 4-wide DP FMAs per cycle
		MCBandwidth:   60 * units.Giga,
		CoreIssueBW:   30 * units.Giga,
		CacheBytes:    (48 + 1280) * units.KB,
		LineBytes:     64,
		L2Bandwidth:   80 * units.Giga,
		// One socket: no inter-socket links exist, but the fields must
		// stay physical for Validate and CopyCeiling.
		LinkBandwidth:     50 * units.Giga,
		LocalLatency:      80 * units.Nanosecond,
		HopLatency:        40 * units.Nanosecond,
		ContentionPenalty: 0.08,
		MLPRandom:         12,
		PrefetchDepth:     24,
		Classes: []CoreClassSpec{
			{
				Name:          "P",
				FreqHz:        5.2e9,
				FlopsPerCycle: 16,
				CoreIssueBW:   30 * units.Giga,
				CacheBytes:    (48 + 1280) * units.KB,
				L2Bandwidth:   80 * units.Giga,
			},
			{
				Name:          "E",
				FreqHz:        3.9e9,
				FlopsPerCycle: 8, // Gracemont: one 4-wide DP FMA per cycle
				CoreIssueBW:   20 * units.Giga,
				CacheBytes:    (32 + 512) * units.KB, // quarter of a 2 MiB cluster L2
				L2Bandwidth:   40 * units.Giga,
			},
		},
		LLCBytes: 30 * 1024 * units.KB,
	}
}

// EPYC2x4 is a two-socket EPYC-style chiplet server: each socket is
// four 8-core dies behind an IO hub (Infinity-Fabric-style on-package
// links), with a 32 MiB L3 slice per die and an 8-channel DDR4
// controller on the hub; the sockets are joined by one xGMI-class link.
func EPYC2x4() *Spec {
	topo, err := topology.Parse("line:2x32/4")
	if err != nil {
		panic(err)
	}
	return &Spec{
		Topo:          topo,
		FreqHz:        3.4e9,
		FlopsPerCycle: 16,
		MCBandwidth:   130 * units.Giga,
		CoreIssueBW:   22 * units.Giga,
		CacheBytes:    (32 + 512) * units.KB,
		LineBytes:     64,
		L2Bandwidth:   60 * units.Giga,
		LinkBandwidth: 36 * units.Giga,
		LocalLatency:  95 * units.Nanosecond,
		HopLatency:    55 * units.Nanosecond,
		// Every DRAM access crosses die->IO-hub: the fabric link is
		// what keeps a single die from monopolizing the socket's
		// controller, and its latency is the chiplet tax on every miss.
		FabricBandwidth:   45 * units.Giga,
		FabricLatency:     25 * units.Nanosecond,
		ContentionPenalty: 0.10,
		MLPRandom:         10,
		PrefetchDepth:     20,
		LLCBytes:          32 * 1024 * units.KB,
	}
}

func init() {
	Register("hybrid16", Hybrid16)
	Register("epyc2x4", EPYC2x4)
}
