package machine

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"multicore/internal/sim"
	"multicore/internal/topology"
)

// TestRegistryNames checks the registry exposes every built-in plus the
// modern pack, in sorted order.
func TestRegistryNames(t *testing.T) {
	got := strings.Join(Names(), ",")
	want := "dmz,epyc2x4,hybrid16,longs,tiger"
	if got != want {
		t.Fatalf("Names() = %s, want %s", got, want)
	}
}

func TestRegistryLookup(t *testing.T) {
	for _, name := range Names() {
		s := Lookup(name)
		if s == nil {
			t.Fatalf("Lookup(%q) = nil", name)
		}
		if err := s.Validate(); err != nil {
			t.Fatalf("registered machine %q does not validate: %v", name, err)
		}
	}
	if Lookup("TIGER") == nil {
		t.Fatal("lookup should be case-insensitive")
	}
	if Lookup("nope") != nil {
		t.Fatal("unknown names must return nil")
	}
}

func TestResolveErrorListsNames(t *testing.T) {
	_, err := Resolve("nope")
	if err == nil {
		t.Fatal("want error")
	}
	for _, name := range Names() {
		if !strings.Contains(err.Error(), name) {
			t.Fatalf("error %q does not mention %q", err, name)
		}
	}
}

func TestResolveSpecFile(t *testing.T) {
	data, err := MarshalJSONSpec(Hybrid16())
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "hyb.json")
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	spec, err := Resolve("@" + path)
	if err != nil {
		t.Fatal(err)
	}
	if spec.Topo.NumCores() != 16 || len(spec.Classes) != 2 {
		t.Fatalf("resolved spec wrong: %d cores, %d classes", spec.Topo.NumCores(), len(spec.Classes))
	}
}

// TestSpecIDStable checks the content-hash id survives the ship path:
// formatting changes, field reordering, and v1-vs-v2 phrasing of the
// same machine must all hash identically, and registering a spec's
// canonical bytes must reproduce its id.
func TestSpecIDStable(t *testing.T) {
	id, _, err := SpecID(Hybrid16())
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(id, "sock:8p+8e@") || len(id) != len("sock:8p+8e@")+12 {
		t.Fatalf("id format wrong: %q", id)
	}
	if strings.ContainsAny(id, "/ \t") {
		t.Fatalf("id %q is not path-safe", id)
	}

	// Reformat: decode to a generic map and re-encode compactly.
	canon, _ := MarshalJSONSpec(Hybrid16())
	var m map[string]any
	if err := json.Unmarshal(canon, &m); err != nil {
		t.Fatal(err)
	}
	compact, err := json.Marshal(m)
	if err != nil {
		t.Fatal(err)
	}
	id2, _, err := RegisterSpecJSON(compact)
	if err != nil {
		t.Fatal(err)
	}
	if id2 != id {
		t.Fatalf("reformatted spec hashed to %s, want %s", id2, id)
	}

	// Registering the canonical bytes is idempotent.
	id3, _, err := RegisterSpecJSON(canon)
	if err != nil {
		t.Fatal(err)
	}
	if id3 != id {
		t.Fatalf("canonical bytes hashed to %s, want %s", id3, id)
	}
	raw, ok := CustomSpecJSON(id)
	if !ok {
		t.Fatalf("registered custom %s not retrievable", id)
	}
	id4, _, err := RegisterSpecJSON(raw)
	if err != nil || id4 != id {
		t.Fatalf("re-registering retrieved bytes: id %s err %v, want %s", id4, err, id)
	}
}

// TestSpecIDV1V2Agree: a v1 file auto-upgrades — its canonical form
// declares schema 2 — and its content hash is idempotent: registering
// the canonical bytes reproduces the id the v1 bytes produced. (The id
// is defined over the decoded file, so v1 and v2 phrasings of the same
// values agree; a Go-built Spec re-marshaled through unit conversions
// is a different byte stream and may hash differently.)
func TestSpecIDV1V2Agree(t *testing.T) {
	v1 := []byte(`{
		"topology": "ladder:2x2",
		"freq_ghz": 2.2,
		"flops_per_cycle": 2,
		"mc_bandwidth_gbs": 6.4,
		"core_issue_gbs": 4.0,
		"cache_kib": 1088,
		"line_bytes": 64,
		"l2_bandwidth_gbs": 20,
		"link_bandwidth_gbs": 4.0,
		"local_latency_ns": 90,
		"hop_latency_ns": 60,
		"mlp_random": 4
	}`)
	id1, spec, err := RegisterSpecJSON(v1)
	if err != nil {
		t.Fatal(err)
	}
	if len(spec.Classes) != 0 || spec.Topo.NumDies() != 1 {
		t.Fatalf("v1 spec grew hetero structure: %d classes, %d dies", len(spec.Classes), spec.Topo.NumDies())
	}
	canon, ok := CustomSpecJSON(id1)
	if !ok {
		t.Fatalf("registered v1 spec %s not retrievable", id1)
	}
	if !strings.Contains(string(canon), `"schema": 2`) {
		t.Fatalf("canonical form is not schema 2:\n%s", canon)
	}
	id2, _, err := RegisterSpecJSON(canon)
	if err != nil {
		t.Fatal(err)
	}
	if id1 != id2 {
		t.Fatalf("v1 id %s != canonical re-registration id %s", id1, id2)
	}
}

// TestSpecJSONHeteroRoundTrip: marshal → unmarshal must preserve every
// per-class, die, fabric, and LLC parameter for the modern pack.
func TestSpecJSONHeteroRoundTrip(t *testing.T) {
	for _, build := range []func() *Spec{Hybrid16, EPYC2x4} {
		orig := build()
		data, err := MarshalJSONSpec(orig)
		if err != nil {
			t.Fatal(err)
		}
		got, err := UnmarshalJSONSpec(data)
		if err != nil {
			t.Fatalf("%s: %v\n%s", orig.Topo.Name, err, data)
		}
		if got.Topo.Name != orig.Topo.Name ||
			got.Topo.NumDies() != orig.Topo.NumDies() ||
			len(got.Classes) != len(orig.Classes) ||
			got.FabricBandwidth != orig.FabricBandwidth ||
			got.FabricLatency != orig.FabricLatency ||
			got.LLCBytes != orig.LLCBytes {
			t.Fatalf("%s: round trip lost structure", orig.Topo.Name)
		}
		for c := 0; c < orig.Topo.NumCores(); c++ {
			id := topology.CoreID(c)
			if got.PeakFlopsOn(id) != orig.PeakFlopsOn(id) ||
				got.IssueBWOn(id) != orig.IssueBWOn(id) ||
				got.CacheBytesOn(id) != orig.CacheBytesOn(id) ||
				got.L2BandwidthOn(id) != orig.L2BandwidthOn(id) {
				t.Fatalf("%s: core %d parameters differ after round trip", orig.Topo.Name, c)
			}
		}
		// And the round trip is byte-stable.
		again, err := MarshalJSONSpec(got)
		if err != nil {
			t.Fatal(err)
		}
		if string(again) != string(data) {
			t.Fatalf("%s: second marshal differs:\n%s\n---\n%s", orig.Topo.Name, data, again)
		}
	}
}

// TestSpecJSONV2Validation covers the schema-2 error paths: declared
// schema mismatches, v2 fields under v1, and per-class field checks.
func TestSpecJSONV2Validation(t *testing.T) {
	base := func() map[string]any {
		return map[string]any{
			"schema": 2, "topology": "sock:2P+2E",
			"freq_ghz": 2.0, "flops_per_cycle": 2.0, "mc_bandwidth_gbs": 6.0,
			"core_issue_gbs": 4.0, "cache_kib": 1024.0, "line_bytes": 64.0,
			"l2_bandwidth_gbs": 20.0, "link_bandwidth_gbs": 4.0,
			"local_latency_ns": 90.0, "hop_latency_ns": 60.0, "mlp_random": 4.0,
			"core_classes": []map[string]any{
				{"name": "P", "cores_per_socket": 2.0, "freq_ghz": 2.5},
				{"name": "E", "cores_per_socket": 2.0, "freq_ghz": 1.5},
			},
		}
	}
	cases := []struct {
		name string
		mut  func(m map[string]any)
		want string
	}{
		{"bad schema", func(m map[string]any) { m["schema"] = 3 }, "unsupported spec schema 3"},
		{"v2 fields under v1", func(m map[string]any) { m["schema"] = 1 }, "schema-2 fields"},
		{"negative class field", func(m map[string]any) {
			m["core_classes"].([]map[string]any)[0]["freq_ghz"] = -1.0
		}, `core_classes[0] field "freq_ghz"`},
		{"class count mismatch", func(m map[string]any) {
			m["core_classes"].([]map[string]any)[0]["cores_per_socket"] = 3.0
		}, "core_classes"},
		{"negative fabric", func(m map[string]any) { m["fabric_bandwidth_gbs"] = -1.0 }, `"fabric_bandwidth_gbs"`},
		{"negative llc", func(m map[string]any) { m["llc_mib"] = -4.0 }, `"llc_mib"`},
		{"dies mismatch", func(m map[string]any) {
			m["topology"] = "sock:4"
			delete(m, "core_classes")
			m["dies_per_socket"] = 3.0
		}, `dies`},
		{"negative contention", func(m map[string]any) { m["contention_penalty"] = -0.1 }, `"contention_penalty"`},
		{"mlp below 1", func(m map[string]any) { m["mlp_random"] = 0.5 }, `"mlp_random"`},
		{"negative prefetch", func(m map[string]any) { m["prefetch_depth"] = -2.0 }, `"prefetch_depth"`},
	}
	for _, tc := range cases {
		m := base()
		tc.mut(m)
		data, err := json.Marshal(m)
		if err != nil {
			t.Fatal(err)
		}
		_, err = UnmarshalJSONSpec(data)
		if err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: error %v, want mention of %q", tc.name, err, tc.want)
		}
	}
	// The unmutated base must parse.
	data, _ := json.Marshal(base())
	if _, err := UnmarshalJSONSpec(data); err != nil {
		t.Fatalf("base v2 spec rejected: %v", err)
	}
}

// TestHomogeneousAccessorsMatchFlatFields guards the byte-identity
// contract: on the paper machines the per-core accessors must return the
// exact flat-field expressions the pre-registry code used.
func TestHomogeneousAccessorsMatchFlatFields(t *testing.T) {
	for _, name := range []string{"tiger", "dmz", "longs"} {
		s := Lookup(name)
		for c := 0; c < s.Topo.NumCores(); c++ {
			id := topology.CoreID(c)
			if s.PeakFlopsOn(id) != s.PeakFlops() ||
				s.FreqOn(id) != s.FreqHz ||
				s.IssueBWOn(id) != s.CoreIssueBW ||
				s.CacheBytesOn(id) != s.CacheBytes ||
				s.L2BandwidthOn(id) != s.L2Bandwidth {
				t.Fatalf("%s core %d: per-core accessor diverged from flat field", name, c)
			}
		}
		for a := 0; a < s.Topo.NumSockets; a++ {
			for b := 0; b < s.Topo.NumSockets; b++ {
				want := s.LocalLatency + float64(s.Topo.Hops(topology.SocketID(a), topology.SocketID(b)))*s.HopLatency
				if got := s.NodeRoundTrip(topology.SocketID(a), topology.SocketID(b)); got != want {
					t.Fatalf("%s: NodeRoundTrip(%d,%d) = %v, want %v", name, a, b, got, want)
				}
			}
		}
	}
}

// TestUtilizationsFabricRows: multi-die machines expose one fabric
// resource per (socket, die); single-die machines expose none.
func TestUtilizationsFabricRows(t *testing.T) {
	m := New(sim.NewEngine(), EPYC2x4())
	fabs := 0
	for _, u := range m.Utilizations(1) {
		if strings.Contains(u.Name, "/fab") {
			fabs++
		}
	}
	if want := 2 * 4; fabs != want {
		t.Fatalf("epyc2x4 fabric rows = %d, want %d", fabs, want)
	}
	m = New(sim.NewEngine(), Lookup("dmz"))
	for _, u := range m.Utilizations(1) {
		if strings.Contains(u.Name, "/fab") {
			t.Fatalf("dmz grew a fabric resource: %s", u.Name)
		}
	}
}
