package machine

import (
	"fmt"
	"math"

	"multicore/internal/mem"
	"multicore/internal/sim"
	"multicore/internal/topology"
)

// CapWindow is one time window during which a resource runs at a reduced
// capacity: in [Start, End) the resource's bandwidth is Base*Factor. An
// infinite End means the degradation lasts for the rest of the run.
type CapWindow struct {
	Start, End float64
	Factor     float64
}

// Perturb is the hook the deterministic fault layer (internal/fault)
// presents to the machine model. A nil Perturb — the default everywhere —
// keeps the machine byte-identical to the unperturbed model: no extra
// events are scheduled and no per-operation calls are made.
type Perturb interface {
	// ComputeTime maps an on-core execution duration that starts at
	// simulated time now on the given core to its perturbed duration
	// (>= d), modeling periodic OS noise stealing cycles from the core.
	ComputeTime(core int, now, d float64) float64
	// MCWindows returns the capacity-degradation windows of the socket's
	// memory controller.
	MCWindows(socket int) []CapWindow
	// LinkWindows returns the capacity-degradation windows of the
	// HyperTransport link between sockets a and b (applied to both
	// directions; a/b order is irrelevant).
	LinkWindows(a, b int) []CapWindow
}

// Machine is an instantiated system: the spec's resources realized in a
// simulation engine.
type Machine struct {
	Spec *Spec
	Eng  *sim.Engine

	mcs    []*sim.Resource    // per-socket memory controllers
	issue  []*sim.Resource    // per-core load/store issue ports
	l2     []*sim.Resource    // per-core cache-hit service
	links  [][2]*sim.Resource // per topology link: [forward A->B, reverse B->A]
	fabs   [][]*sim.Resource  // per-socket, per-die on-package fabric (multi-die only)
	caches []*mem.Cache

	// perturb, when non-nil, injects deterministic faults (OS noise on
	// compute durations; the capacity windows were already scheduled by
	// ApplyFaults). Nil means the idealized fault-free machine.
	perturb Perturb
}

// New realizes spec inside engine eng.
func New(eng *sim.Engine, spec *Spec) *Machine {
	topo := spec.Topo
	m := &Machine{Spec: spec, Eng: eng}
	for s := 0; s < topo.NumSockets; s++ {
		m.mcs = append(m.mcs, sim.NewResource(fmt.Sprintf("%s/mc%d", topo.Name, s), spec.MCBandwidth))
	}
	for c := 0; c < topo.NumCores(); c++ {
		id := topology.CoreID(c)
		m.issue = append(m.issue, sim.NewResource(fmt.Sprintf("%s/issue%d", topo.Name, c), spec.IssueBWOn(id)))
		m.l2 = append(m.l2, sim.NewResource(fmt.Sprintf("%s/l2-%d", topo.Name, c), spec.L2BandwidthOn(id)))
		m.caches = append(m.caches, mem.NewCache(c, spec.CacheBytesOn(id), spec.LineBytes))
	}
	for i, l := range topo.Links {
		fwd := sim.NewResource(fmt.Sprintf("%s/link%d:%d->%d", topo.Name, i, l.A, l.B), spec.LinkBandwidth)
		rev := sim.NewResource(fmt.Sprintf("%s/link%d:%d->%d", topo.Name, i, l.B, l.A), spec.LinkBandwidth)
		m.links = append(m.links, [2]*sim.Resource{fwd, rev})
	}
	if topo.NumDies() > 1 {
		// Chiplet sockets: each die reaches the socket's IO hub (where
		// the memory controller and inter-socket links live) over its own
		// fabric link, shared by the die's cores. Monolithic sockets get
		// none, keeping the paper systems' resource sets untouched.
		for s := 0; s < topo.NumSockets; s++ {
			dies := make([]*sim.Resource, topo.NumDies())
			for d := range dies {
				dies[d] = sim.NewResource(fmt.Sprintf("%s/fab%d.%d", topo.Name, s, d), spec.FabricBandwidth)
			}
			m.fabs = append(m.fabs, dies)
		}
	}
	return m
}

// fabricFor returns the on-package fabric resource of core's die, nil on
// monolithic sockets.
func (m *Machine) fabricFor(core topology.CoreID) *sim.Resource {
	if m.fabs == nil {
		return nil
	}
	return m.fabs[m.Topo().SocketOf(core)][m.Topo().DieOf(core)]
}

// ApplyFaults installs a fault injector on the machine. It must be called
// before the simulation starts: the injector's capacity-degradation
// windows (slowed memory controllers, degraded or flapping links) are
// realized as engine events that re-rate the affected resource's flows at
// each window boundary, and its compute-time perturbation is consulted on
// every subsequent compute phase. A nil injector is a no-op.
func (m *Machine) ApplyFaults(p Perturb) {
	if p == nil {
		return
	}
	m.perturb = p
	for s := range m.mcs {
		m.scheduleCapWindows(m.mcs[s], p.MCWindows(s))
	}
	for i, l := range m.Topo().Links {
		ws := p.LinkWindows(int(l.A), int(l.B))
		m.scheduleCapWindows(m.links[i][0], ws)
		m.scheduleCapWindows(m.links[i][1], ws)
	}
}

// scheduleCapWindows turns degradation windows into capacity-change events.
// Overlapping windows are applied in event order (later boundary wins).
func (m *Machine) scheduleCapWindows(r *sim.Resource, ws []CapWindow) {
	base := r.Cap
	net := m.Eng.Net()
	for _, w := range ws {
		factor := w.Factor
		if factor < 1e-9 {
			// A fully-down link would stall its flows forever; floor the
			// cut so the simulation always terminates.
			factor = 1e-9
		}
		start := w.Start
		if start < m.Eng.Now() {
			start = m.Eng.Now()
		}
		degraded := base * factor
		m.Eng.At(start, func() { net.SetCapacity(r, degraded) })
		if !math.IsInf(w.End, 1) && w.End > start {
			m.Eng.At(w.End, func() { net.SetCapacity(r, base) })
		}
	}
}

// perturbedCompute maps an on-core execution duration through the fault
// injector's OS-noise model; identity when no injector is installed.
func (m *Machine) perturbedCompute(core topology.CoreID, now, d float64) float64 {
	if m.perturb == nil || d <= 0 {
		return d
	}
	return m.perturb.ComputeTime(int(core), now, d)
}

// Topo returns the machine's topology.
func (m *Machine) Topo() *topology.System { return m.Spec.Topo }

// Cache returns the cache model of core c.
func (m *Machine) Cache(c topology.CoreID) *mem.Cache { return m.caches[c] }

// MC returns the memory controller resource of socket s.
func (m *Machine) MC(s topology.SocketID) *sim.Resource { return m.mcs[s] }

// linkResources maps a directed route to its resource sequence.
func (m *Machine) linkResources(route []topology.DirectedLink) []*sim.Resource {
	out := make([]*sim.Resource, 0, len(route))
	for _, dl := range route {
		if dl.Reverse {
			out = append(out, m.links[dl.Index][1])
		} else {
			out = append(out, m.links[dl.Index][0])
		}
	}
	return out
}

// ReadPath is the resource path for data flowing from memory node `node`
// to a core: the core's issue port, its die's fabric link on chiplet
// sockets, the links from node to the core's socket, and the node's
// memory controller.
func (m *Machine) ReadPath(core topology.CoreID, node topology.SocketID) []*sim.Resource {
	sock := m.Topo().SocketOf(core)
	path := []*sim.Resource{m.issue[core]}
	if fab := m.fabricFor(core); fab != nil {
		path = append(path, fab)
	}
	path = append(path, m.linkResources(m.Topo().Route(node, sock))...)
	path = append(path, m.mcs[node])
	return path
}

// WritePath is the resource path for data flowing from a core to memory
// node `node`.
func (m *Machine) WritePath(core topology.CoreID, node topology.SocketID) []*sim.Resource {
	sock := m.Topo().SocketOf(core)
	path := []*sim.Resource{m.issue[core]}
	if fab := m.fabricFor(core); fab != nil {
		path = append(path, fab)
	}
	path = append(path, m.linkResources(m.Topo().Route(sock, node))...)
	path = append(path, m.mcs[node])
	return path
}

// CopyPath is the resource path for a memory-to-memory copy performed by a
// core (an MPI shared-buffer copy): read from src node, write to dst node.
// Both controllers and both link routes are charged; the issue port is
// charged once (it limits the copy loop's combined rate).
func (m *Machine) CopyPath(core topology.CoreID, src, dst topology.SocketID) []*sim.Resource {
	sock := m.Topo().SocketOf(core)
	path := []*sim.Resource{m.issue[core]}
	if fab := m.fabricFor(core); fab != nil {
		path = append(path, fab)
	}
	path = append(path, m.linkResources(m.Topo().Route(src, sock))...)
	path = append(path, m.mcs[src])
	if dst != src {
		path = append(path, m.linkResources(m.Topo().Route(sock, dst))...)
		path = append(path, m.mcs[dst])
	}
	return path
}

// RoundTrip returns the load-to-use latency from a core on socket s to
// memory node n (on chiplet sockets this includes the fabric crossing;
// see Spec.NodeRoundTrip).
func (m *Machine) RoundTrip(s, n topology.SocketID) float64 {
	return m.Spec.NodeRoundTrip(s, n)
}

// CPU is a workload's execution context on one core. All methods must be
// called from within proc's body.
type CPU struct {
	m    *Machine
	core topology.CoreID
	proc *sim.Proc

	// Stats.
	ComputeSeconds float64
	MemBytes       float64

	// Reusable scratch for execute: the started-flow list and the path
	// buffer that splices the prefetch window in. Start copies paths into
	// flow-owned storage, so the buffer can be reused across admissions
	// within one batch.
	flowScratch []*sim.Flow
	pathScratch []*sim.Resource
}

// CPU binds a process to a core, returning its execution context.
func (m *Machine) CPU(p *sim.Proc, core topology.CoreID) *CPU {
	if int(core) < 0 || int(core) >= m.Topo().NumCores() {
		panic(fmt.Sprintf("machine: core %d out of range on %s", core, m.Topo().Name))
	}
	return &CPU{m: m, core: core, proc: p}
}

// Rebind attaches the execution context to a new process. It exists for
// helper-process recycling (mpi Isend/Irecv clones): the context's core,
// caches, and accumulated stats carry over; only the process executing on
// it changes. The previous process must have finished.
func (c *CPU) Rebind(p *sim.Proc) { c.proc = p }

// Core returns the core this context is bound to.
func (c *CPU) Core() topology.CoreID { return c.core }

// Socket returns the socket of the bound core.
func (c *CPU) Socket() topology.SocketID { return c.m.Topo().SocketOf(c.core) }

// Machine returns the underlying machine.
func (c *CPU) Machine() *Machine { return c.m }

// Proc returns the simulation process.
func (c *CPU) Proc() *sim.Proc { return c.proc }

// Compute advances time by the cost of `flops` floating-point operations
// at the given efficiency (fraction of peak, 0 < eff <= 1).
func (c *CPU) Compute(flops, eff float64) {
	if flops <= 0 {
		return
	}
	if eff <= 0 || eff > 1 {
		panic(fmt.Sprintf("machine: compute efficiency %g out of (0,1]", eff))
	}
	d := c.m.perturbedCompute(c.core, c.proc.Now(), flops/(c.m.Spec.PeakFlopsOn(c.core)*eff))
	c.ComputeSeconds += d
	c.proc.Sleep(d)
}

// accessPlan is the cost breakdown of one access batch: flow specs for
// DRAM traffic plus the serial cache-hit time and the stream-latency
// statistics needed to size the core's shared prefetch window.
type accessPlan struct {
	specs       []sim.FlowSpec
	hitTime     float64
	streamBytes float64 // DRAM bytes moved by prefetchable (streaming) flows
	weightedRT  float64 // sum of bytes*roundTrip over those flows
}

// flowSpecs converts an access batch into a cost plan after cache
// filtering.
func (c *CPU) flowSpecs(a mem.Access) accessPlan {
	spec := c.m.Spec
	tr := c.m.caches[c.core].Filter(a)
	plan := accessPlan{hitTime: tr.HitBytes / spec.L2BandwidthOn(c.core)}

	if tr.MemBytes <= 0 && tr.LatencyTouches <= 0 {
		return plan
	}
	c.MemBytes += tr.MemBytes

	var bound *sim.Resource
	if a.RateCeiling > 0 {
		bound = ceilingResource(a.RateCeiling)
	}

	sock := c.Socket()
	parts := a.Region.Split(tr.MemBytes)
	for node, bytes := range parts {
		if bytes <= 0 {
			continue
		}
		nodeID := topology.SocketID(node)
		var path []*sim.Resource
		if a.Pattern == mem.StreamWrite {
			// Half write-allocate reads, half writebacks; approximate
			// with the write path (the controller dominates).
			path = c.m.WritePath(c.core, nodeID)
		} else {
			path = c.m.ReadPath(c.core, nodeID)
		}
		ceiling := 0.0
		inflate := 1.0
		if tr.LatencyTouches > 0 {
			// Latency-bound access: rate capped by outstanding-miss
			// round trips. Random lines already pay full DRAM row
			// misses, so the stream-interleaving penalty does not
			// apply.
			mlp := spec.MLPRandom
			if a.Pattern == mem.Chase {
				mlp = 1
			}
			ceiling = mlp * spec.LineBytes / c.m.RoundTrip(sock, nodeID)
		} else {
			plan.streamBytes += bytes
			plan.weightedRT += bytes * c.m.RoundTrip(sock, nodeID)
			// DRAM stream-interleaving penalty: concurrent flows at
			// this controller reduce effective bandwidth. The row-
			// buffer thrash saturates after a few streams.
			inflate = 1 + spec.ContentionPenalty*float64(min(c.m.mcs[node].ActiveFlows(), 3))
		}
		if bound != nil {
			path = append(append([]*sim.Resource{}, path...), bound)
		}
		specs := sim.FlowSpec{Bytes: bytes * inflate, Path: path, Ceiling: ceiling}
		plan.specs = append(plan.specs, specs)
	}
	return plan
}

// ceilingResource materializes a per-access rate bound as an ephemeral
// shared resource so that all of the access's subflows divide it.
func ceilingResource(rate float64) *sim.Resource {
	return sim.NewResource("access-ceiling", rate)
}

// window returns an ephemeral per-call resource modeling the core's
// prefetch/miss window: streaming flows of this call share
// PrefetchDepth*Line/avgRoundTrip of bandwidth, which is what makes remote
// or interleaved streams slower for a single core even when controller
// bandwidth is available. Returns nil if no streaming traffic.
func (c *CPU) window(plans []accessPlan) *sim.Resource {
	spec := c.m.Spec
	if spec.PrefetchDepth <= 0 {
		return nil
	}
	totalBytes, totalWRT := 0.0, 0.0
	for _, p := range plans {
		totalBytes += p.streamBytes
		totalWRT += p.weightedRT
	}
	if totalBytes <= 0 {
		return nil
	}
	avgRT := totalWRT / totalBytes
	return sim.NewResource("prefetch-window", spec.PrefetchDepth*spec.LineBytes/avgRT)
}

// execute launches the plans' flows (with the shared prefetch window on
// every streaming path), optionally overlapping a compute phase, and
// blocks until everything finishes.
func (c *CPU) execute(label string, plans []accessPlan, flops, eff float64) {
	win := c.window(plans)
	hitTime := 0.0
	net := c.m.Eng.Net()
	flows := c.flowScratch[:0]
	for _, p := range plans {
		hitTime += p.hitTime
		for _, s := range p.specs {
			if s.Bytes <= 0 {
				continue
			}
			path := s.Path
			if win != nil && s.Ceiling == 0 {
				path = append(append(c.pathScratch[:0], path...), win)
				c.pathScratch = path[:0]
			}
			flows = append(flows, net.Start(label, s.Bytes, path, s.Ceiling))
		}
	}
	if flops > 0 {
		if eff <= 0 || eff > 1 {
			panic(fmt.Sprintf("machine: compute efficiency %g out of (0,1]", eff))
		}
		d := c.m.perturbedCompute(c.core, c.proc.Now(), flops/(c.m.Spec.PeakFlopsOn(c.core)*eff)+hitTime)
		c.ComputeSeconds += d
		c.proc.Sleep(d)
	} else if hitTime > 0 {
		c.proc.Sleep(c.m.perturbedCompute(c.core, c.proc.Now(), hitTime))
	}
	for _, f := range flows {
		c.proc.WaitFlow(f)
	}
	// All waits have returned and nothing else holds these flows: this
	// call owns them, so they go back to the arena (see FlowNet.Release).
	for i, f := range flows {
		net.Release(f)
		flows[i] = nil
	}
	c.flowScratch = flows[:0]
}

// Access performs one memory access batch, blocking for its full cost.
func (c *CPU) Access(a mem.Access) {
	c.execute(a.Region.Name, []accessPlan{c.flowSpecs(a)}, 0, 1)
}

// Overlap runs a compute phase concurrently with one or more memory access
// batches, modeling out-of-order overlap: total time is the maximum of the
// compute time and the memory time, not their sum.
func (c *CPU) Overlap(flops, eff float64, accesses ...mem.Access) {
	plans := make([]accessPlan, 0, len(accesses))
	for _, a := range accesses {
		plans = append(plans, c.flowSpecs(a))
	}
	c.execute("overlap", plans, flops, eff)
}

// Copy models a core-driven memory copy of `bytes` from a region on
// srcNode to one on dstNode (the MPI shared-memory transport primitive).
func (c *CPU) Copy(bytes float64, srcNode, dstNode topology.SocketID) {
	if bytes <= 0 {
		return
	}
	inflate := 1 + c.m.Spec.ContentionPenalty*float64(c.m.mcs[srcNode].ActiveFlows())
	c.MemBytes += bytes
	c.proc.Transfer("copy", bytes*inflate, c.m.CopyPath(c.core, srcNode, dstNode), 0)
}

// ContentionInflate returns the volume inflation factor for a new stream
// at node's controller given current concurrent flows (DRAM interleaving
// penalty, saturating after a few streams).
func (m *Machine) ContentionInflate(node topology.SocketID) float64 {
	return 1 + m.Spec.ContentionPenalty*float64(min(m.mcs[node].ActiveFlows(), 3))
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// Alloc creates a region with an explicit node distribution. Placement
// policy application (which distribution a rank's policy yields) is the
// caller's concern; see internal/mpi and internal/affinity.
func (c *CPU) Alloc(name string, bytes float64, dist mem.Placement) *mem.Region {
	if len(dist) != c.m.Topo().NumSockets {
		panic(fmt.Sprintf("machine: placement has %d nodes, machine has %d sockets",
			len(dist), c.m.Topo().NumSockets))
	}
	return mem.NewRegion(name, bytes, dist)
}

// ResourceUtil is one row of a utilization report.
type ResourceUtil struct {
	Name        string
	BytesServed float64
	Utilization float64 // mean over [0, now]
}

// Utilizations returns a utilization report for every modeled resource
// (memory controllers, link directions, on-package fabric links, issue
// ports) at simulated time `now`, in a stable order: controllers first,
// then links, then fabric, then issue ports. Monolithic machines have
// no fabric rows, so the paper systems' reports are unchanged.
func (m *Machine) Utilizations(now float64) []ResourceUtil {
	var out []ResourceUtil
	add := func(r *sim.Resource) {
		out = append(out, ResourceUtil{
			Name:        r.Name,
			BytesServed: r.BytesServed(),
			Utilization: r.Utilization(now),
		})
	}
	for _, mc := range m.mcs {
		add(mc)
	}
	for _, pair := range m.links {
		add(pair[0])
		add(pair[1])
	}
	for _, dies := range m.fabs {
		for _, fab := range dies {
			add(fab)
		}
	}
	for _, port := range m.issue {
		add(port)
	}
	return out
}

// HottestResource returns the resource with the highest utilization — the
// run's bottleneck candidate.
func (m *Machine) HottestResource(now float64) ResourceUtil {
	var best ResourceUtil
	for _, u := range m.Utilizations(now) {
		if u.Utilization > best.Utilization {
			best = u
		}
	}
	return best
}
