package machine

import (
	"crypto/sha256"
	"encoding/json"
	"fmt"
	"os"
	"sort"
	"strings"
	"sync"
)

// The machine registry makes user-defined systems first-class: built-in
// and modern-pack machines register a builder under a name, and custom
// specs loaded from JSON register under a canonical content-hash id, so
// every consumer (CLIs, sweep grids, the analytic estimator, the sweep
// coordinator and its workers) resolves machines through one API.
var (
	regMu    sync.RWMutex
	builders = map[string]func() *Spec{} // lowercase name -> constructor
	customs  = map[string]*customSpec{}  // content-hash id -> loaded spec
)

type customSpec struct {
	spec *Spec
	raw  []byte // canonical schema-v2 JSON (the bytes that were hashed)
}

// Register adds a named machine constructor. Names are matched
// case-insensitively; registering a name twice panics — machine packs
// are wired up in init functions and a collision is a programming error.
func Register(name string, build func() *Spec) {
	key := strings.ToLower(name)
	regMu.Lock()
	defer regMu.Unlock()
	if _, dup := builders[key]; dup {
		panic(fmt.Sprintf("machine: system %q registered twice", name))
	}
	builders[key] = build
}

// Names returns the sorted registered system names (content-hash ids of
// loaded custom specs are resolvable but not listed — they are derived,
// not named).
func Names() []string {
	regMu.RLock()
	defer regMu.RUnlock()
	out := make([]string, 0, len(builders))
	for n := range builders {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Lookup resolves a registered name (case-insensitive) or a custom-spec
// content-hash id to a spec, returning nil when unknown. Builder
// machines are constructed fresh on every call; custom specs return a
// shallow copy, so callers may adjust top-level fields either way.
func Lookup(name string) *Spec {
	regMu.RLock()
	build := builders[strings.ToLower(name)]
	cs := customs[name]
	regMu.RUnlock()
	if build != nil {
		return build()
	}
	if cs != nil {
		c := *cs.spec
		return &c
	}
	return nil
}

// Resolve is Lookup with error reporting and @FILE support: "@path"
// loads, validates, and registers the spec file at path (see
// RegisterSpecFile), and unknown names list what is registered.
func Resolve(name string) (*Spec, error) {
	if path, ok := strings.CutPrefix(name, "@"); ok {
		_, s, err := RegisterSpecFile(path)
		return s, err
	}
	if s := Lookup(name); s != nil {
		return s, nil
	}
	return nil, fmt.Errorf("machine: unknown system %q (registered: %s; or @FILE for a spec file)",
		name, strings.Join(Names(), ", "))
}

// canonicalID derives a custom spec's content-addressed identity from
// its normalized serialized form: a sanitized lowercase topology name
// joined by "@" to the first 12 hex digits of the SHA-256 of the
// canonical schema-2 JSON. Hashing the normalized *JSON* values — not a
// re-marshal of the converted Spec — is what keeps the id bitwise
// stable across client, coordinator, and worker: Go's float64-to-text
// emission round-trips exactly, whereas unit conversions (GHz <-> Hz)
// need not be fixpoints.
func canonicalID(j *specJSON, s *Spec) (string, []byte, error) {
	canon, err := json.MarshalIndent(j, "", "  ")
	if err != nil {
		return "", nil, err
	}
	sum := sha256.Sum256(canon)
	name := strings.Map(func(r rune) rune {
		switch {
		case r >= 'a' && r <= 'z', r >= '0' && r <= '9',
			r == '+', r == '.', r == ':', r == '-':
			return r
		case r >= 'A' && r <= 'Z':
			return r + ('a' - 'A')
		}
		return '-' // keep ids path- and shell-safe ("line:2x32/4" has a '/')
	}, s.Topo.Name)
	return fmt.Sprintf("%s@%x", name, sum[:6]), canon, nil
}

// SpecID returns the canonical content-addressed identity of a spec and
// its canonical schema-2 JSON. Two files describing the same machine
// get the same id regardless of field order, formatting, or schema
// version — which is what keys custom machines in the result store and
// dedups them across sweep clients.
func SpecID(s *Spec) (string, []byte, error) {
	data, err := MarshalJSONSpec(s)
	if err != nil {
		return "", nil, err
	}
	j, s2, err := decodeSpec(data)
	if err != nil {
		return "", nil, err
	}
	return canonicalID(j, s2)
}

// RegisterSpec validates s, computes its content-hash id, and registers
// it so the id resolves process-wide (Lookup, grid validation, the
// analytic estimator, core.Job). Re-registering the same content is
// idempotent.
func RegisterSpec(s *Spec) (string, error) {
	data, err := MarshalJSONSpec(s)
	if err != nil {
		return "", err
	}
	id, _, err := RegisterSpecJSON(data)
	return id, err
}

// RegisterSpecJSON parses a spec file's bytes (schema 1 or 2) and
// registers the machine, returning its content-hash id and the spec.
// The registered spec is the decoded canonical form, so a machine
// behaves identically whether it was registered from a hand-written
// file or shipped to a worker as canonical bytes.
func RegisterSpecJSON(data []byte) (string, *Spec, error) {
	j, s, err := decodeSpec(data)
	if err != nil {
		return "", nil, err
	}
	id, canon, err := canonicalID(j, s)
	if err != nil {
		return "", nil, err
	}
	regMu.Lock()
	customs[id] = &customSpec{spec: s, raw: canon}
	regMu.Unlock()
	return id, s, nil
}

// RegisterSpecFile loads and registers a machine spec file.
func RegisterSpecFile(path string) (string, *Spec, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return "", nil, err
	}
	return RegisterSpecJSON(data)
}

// CustomSpecJSON returns the canonical schema-v2 JSON of a registered
// custom spec id — the payload the sweep coordinator ships to workers
// inside the lease — and whether the id is a registered custom machine.
func CustomSpecJSON(id string) ([]byte, bool) {
	regMu.RLock()
	defer regMu.RUnlock()
	cs, ok := customs[id]
	if !ok {
		return nil, false
	}
	return cs.raw, true
}

func init() {
	Register("tiger", Tiger)
	Register("dmz", DMZ)
	Register("longs", Longs)
}
