package machine

import (
	"encoding/json"
	"fmt"
	"os"

	"multicore/internal/topology"
)

// SpecSchemaVersion is the machine-spec JSON schema emitted by
// MarshalJSONSpec. Version-1 files (no "schema" field, flat fields
// only) are auto-upgraded on read; version 2 adds heterogeneous core
// classes, chiplet dies, the on-package fabric, and a shared LLC tier.
const SpecSchemaVersion = 2

// specJSON is the serialized form of a Spec: the topology is referenced
// by a parseable spec string (see topology.Parse) or a built-in system
// name. Field order here is the canonical emission order — content
// hashes (see RegisterSpecJSON) are taken over these bytes.
type specJSON struct {
	Schema            int     `json:"schema"`
	Topology          string  `json:"topology"`
	FreqGHz           float64 `json:"freq_ghz"`
	FlopsPerCycle     float64 `json:"flops_per_cycle"`
	MCBandwidthGBs    float64 `json:"mc_bandwidth_gbs"`
	CoreIssueGBs      float64 `json:"core_issue_gbs"`
	CacheKiB          float64 `json:"cache_kib"`
	LineBytes         float64 `json:"line_bytes"`
	L2BandwidthGBs    float64 `json:"l2_bandwidth_gbs"`
	LinkBandwidthGBs  float64 `json:"link_bandwidth_gbs"`
	LocalLatencyNs    float64 `json:"local_latency_ns"`
	HopLatencyNs      float64 `json:"hop_latency_ns"`
	ContentionPenalty float64 `json:"contention_penalty"`
	MLPRandom         float64 `json:"mlp_random"`
	PrefetchDepth     float64 `json:"prefetch_depth"`

	// Schema 2: heterogeneous cores and chiplet sockets.
	CoreClasses        []classJSON `json:"core_classes,omitempty"`
	DiesPerSocket      int         `json:"dies_per_socket,omitempty"`
	FabricBandwidthGBs float64     `json:"fabric_bandwidth_gbs,omitempty"`
	FabricLatencyNs    float64     `json:"fabric_latency_ns,omitempty"`
	LLCMiB             float64     `json:"llc_mib,omitempty"`
}

// classJSON is one core class: its share of each socket plus parameter
// overrides (zero/omitted fields inherit the flat spec fields).
type classJSON struct {
	Name           string  `json:"name"`
	CoresPerSocket int     `json:"cores_per_socket,omitempty"`
	FreqGHz        float64 `json:"freq_ghz,omitempty"`
	FlopsPerCycle  float64 `json:"flops_per_cycle,omitempty"`
	CoreIssueGBs   float64 `json:"core_issue_gbs,omitempty"`
	CacheKiB       float64 `json:"cache_kib,omitempty"`
	L2BandwidthGBs float64 `json:"l2_bandwidth_gbs,omitempty"`
}

// specJSONFrom converts a validated Spec to its serialized form.
func specJSONFrom(s *Spec) specJSON {
	j := specJSON{
		Schema:             SpecSchemaVersion,
		Topology:           s.Topo.Name,
		FreqGHz:            s.FreqHz / 1e9,
		FlopsPerCycle:      s.FlopsPerCycle,
		MCBandwidthGBs:     s.MCBandwidth / 1e9,
		CoreIssueGBs:       s.CoreIssueBW / 1e9,
		CacheKiB:           s.CacheBytes / 1024,
		LineBytes:          s.LineBytes,
		L2BandwidthGBs:     s.L2Bandwidth / 1e9,
		LinkBandwidthGBs:   s.LinkBandwidth / 1e9,
		LocalLatencyNs:     s.LocalLatency * 1e9,
		HopLatencyNs:       s.HopLatency * 1e9,
		ContentionPenalty:  s.ContentionPenalty,
		MLPRandom:          s.MLPRandom,
		PrefetchDepth:      s.PrefetchDepth,
		FabricBandwidthGBs: s.FabricBandwidth / 1e9,
		FabricLatencyNs:    s.FabricLatency * 1e9,
		LLCMiB:             s.LLCBytes / (1024 * 1024),
	}
	if n := s.Topo.NumDies(); n > 1 {
		j.DiesPerSocket = n
	}
	for i, cl := range s.Classes {
		cj := classJSON{
			Name:           cl.Name,
			CoresPerSocket: s.Topo.Classes[i].PerSocket,
			FreqGHz:        cl.FreqHz / 1e9,
			FlopsPerCycle:  cl.FlopsPerCycle,
			CoreIssueGBs:   cl.CoreIssueBW / 1e9,
			CacheKiB:       cl.CacheBytes / 1024,
			L2BandwidthGBs: cl.L2Bandwidth / 1e9,
		}
		j.CoreClasses = append(j.CoreClasses, cj)
	}
	return j
}

// MarshalJSONSpec serializes a spec as canonical schema-2 JSON
// (topology as a spec string when it was parseable; built-in names
// survive as-is).
func MarshalJSONSpec(s *Spec) ([]byte, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	return json.MarshalIndent(specJSONFrom(s), "", "  ")
}

// decodeSpec parses a spec file (schema 1 or 2), returning both the
// normalized serialized form — the canonical bytes content hashes are
// computed over — and the built Spec. The serialized fields are
// validated by their JSON names before the unit conversions, so a bad
// file is reported in the vocabulary the author wrote it in
// ("mc_bandwidth_gbs", not "MCBandwidth") — and a zero from an omitted
// field is caught even where the generic Validate tolerates it.
func decodeSpec(data []byte) (*specJSON, *Spec, error) {
	var j specJSON
	if err := json.Unmarshal(data, &j); err != nil {
		return nil, nil, fmt.Errorf("machine: parsing spec: %w", err)
	}
	switch j.Schema {
	case 0, 1:
		// Schema 1 (or the pre-"schema" era): flat fields only. A file
		// mixing v2 fields into a v1 declaration fails loudly instead
		// of half-applying.
		if len(j.CoreClasses) > 0 || j.DiesPerSocket != 0 ||
			j.FabricBandwidthGBs != 0 || j.FabricLatencyNs != 0 || j.LLCMiB != 0 {
			return nil, nil, fmt.Errorf(`machine: spec uses schema-2 fields (core_classes, dies_per_socket, fabric_*, llc_mib) but declares "schema": %d`, j.Schema)
		}
		j.Schema = SpecSchemaVersion // auto-upgrade
	case SpecSchemaVersion:
	default:
		return nil, nil, fmt.Errorf("machine: unsupported spec schema %d (want 1 or %d)", j.Schema, SpecSchemaVersion)
	}
	for _, f := range []struct {
		name  string
		value float64
	}{
		{"freq_ghz", j.FreqGHz},
		{"flops_per_cycle", j.FlopsPerCycle},
		{"mc_bandwidth_gbs", j.MCBandwidthGBs},
		{"core_issue_gbs", j.CoreIssueGBs},
		{"cache_kib", j.CacheKiB},
		{"line_bytes", j.LineBytes},
		{"l2_bandwidth_gbs", j.L2BandwidthGBs},
		{"link_bandwidth_gbs", j.LinkBandwidthGBs},
	} {
		if !(f.value > 0) {
			return nil, nil, fmt.Errorf("machine: spec field %q must be positive (got %v)", f.name, f.value)
		}
	}
	// The three tunables are optional in spirit but bounded: report bad
	// values by JSON name like the required fields above, instead of
	// falling through to the generic Validate's Go-field vocabulary.
	if j.ContentionPenalty < 0 {
		return nil, nil, fmt.Errorf("machine: spec field %q must be non-negative (got %v)", "contention_penalty", j.ContentionPenalty)
	}
	if j.MLPRandom < 1 {
		return nil, nil, fmt.Errorf("machine: spec field %q must be at least 1 (got %v)", "mlp_random", j.MLPRandom)
	}
	if j.PrefetchDepth < 0 {
		return nil, nil, fmt.Errorf("machine: spec field %q must be non-negative (got %v)", "prefetch_depth", j.PrefetchDepth)
	}
	for _, f := range []struct {
		name  string
		value float64
	}{
		{"fabric_bandwidth_gbs", j.FabricBandwidthGBs},
		{"fabric_latency_ns", j.FabricLatencyNs},
		{"llc_mib", j.LLCMiB},
	} {
		if f.value < 0 {
			return nil, nil, fmt.Errorf("machine: spec field %q must be non-negative (got %v)", f.name, f.value)
		}
	}
	if j.DiesPerSocket < 0 {
		return nil, nil, fmt.Errorf("machine: spec field %q must be non-negative (got %v)", "dies_per_socket", j.DiesPerSocket)
	}
	for i, cj := range j.CoreClasses {
		if cj.CoresPerSocket < 0 {
			return nil, nil, fmt.Errorf("machine: core_classes[%d] field %q must be non-negative (got %v)", i, "cores_per_socket", cj.CoresPerSocket)
		}
		for _, f := range []struct {
			name  string
			value float64
		}{
			{"freq_ghz", cj.FreqGHz},
			{"flops_per_cycle", cj.FlopsPerCycle},
			{"core_issue_gbs", cj.CoreIssueGBs},
			{"cache_kib", cj.CacheKiB},
			{"l2_bandwidth_gbs", cj.L2BandwidthGBs},
		} {
			if f.value < 0 {
				return nil, nil, fmt.Errorf("machine: core_classes[%d] field %q must be non-negative (got %v)", i, f.name, f.value)
			}
		}
	}

	var topo *topology.System
	if builtin := Lookup(j.Topology); builtin != nil {
		topo = builtin.Topo
	} else {
		t, err := topology.Parse(j.Topology)
		if err != nil {
			return nil, nil, fmt.Errorf("machine: topology %q: %w", j.Topology, err)
		}
		topo = t
	}

	// Layer JSON-declared core classes and dies onto the topology. The
	// topology string may itself carry both ("sock:8P+8E/2"); when both
	// sources speak they must agree.
	if j.DiesPerSocket > 1 && topo.NumDies() > 1 && j.DiesPerSocket != topo.NumDies() {
		return nil, nil, fmt.Errorf("machine: spec field %q is %d but topology %q has %d dies",
			"dies_per_socket", j.DiesPerSocket, j.Topology, topo.NumDies())
	}
	var classes []topology.CoreClass
	if len(j.CoreClasses) > 0 {
		if len(topo.Classes) > 0 {
			if len(j.CoreClasses) != len(topo.Classes) {
				return nil, nil, fmt.Errorf("machine: spec lists %d core classes, topology %q declares %d",
					len(j.CoreClasses), j.Topology, len(topo.Classes))
			}
			for i, cj := range j.CoreClasses {
				tc := topo.Classes[i]
				if cj.Name != tc.Name {
					return nil, nil, fmt.Errorf("machine: core_classes[%d] is %q, topology %q calls it %q",
						i, cj.Name, j.Topology, tc.Name)
				}
				if cj.CoresPerSocket != 0 && cj.CoresPerSocket != tc.PerSocket {
					return nil, nil, fmt.Errorf("machine: core_classes[%d] (%q) has %d cores per socket, topology %q says %d",
						i, cj.Name, cj.CoresPerSocket, j.Topology, tc.PerSocket)
				}
			}
		} else {
			classes = make([]topology.CoreClass, len(j.CoreClasses))
			for i, cj := range j.CoreClasses {
				if cj.CoresPerSocket <= 0 {
					return nil, nil, fmt.Errorf("machine: core_classes[%d] (%q) needs %q on topology %q",
						i, cj.Name, "cores_per_socket", j.Topology)
				}
				classes[i] = topology.CoreClass{Name: cj.Name, PerSocket: cj.CoresPerSocket}
			}
		}
	}
	if classes != nil || (j.DiesPerSocket > 1 && topo.NumDies() == 1) {
		t, err := topo.Reshape(classes, j.DiesPerSocket)
		if err != nil {
			return nil, nil, fmt.Errorf("machine: topology %q: %w", j.Topology, err)
		}
		topo = t
	}

	s := &Spec{
		Topo:              topo,
		FreqHz:            j.FreqGHz * 1e9,
		FlopsPerCycle:     j.FlopsPerCycle,
		MCBandwidth:       j.MCBandwidthGBs * 1e9,
		CoreIssueBW:       j.CoreIssueGBs * 1e9,
		CacheBytes:        j.CacheKiB * 1024,
		LineBytes:         j.LineBytes,
		L2Bandwidth:       j.L2BandwidthGBs * 1e9,
		LinkBandwidth:     j.LinkBandwidthGBs * 1e9,
		LocalLatency:      j.LocalLatencyNs / 1e9,
		HopLatency:        j.HopLatencyNs / 1e9,
		ContentionPenalty: j.ContentionPenalty,
		MLPRandom:         j.MLPRandom,
		PrefetchDepth:     j.PrefetchDepth,
		FabricBandwidth:   j.FabricBandwidthGBs * 1e9,
		FabricLatency:     j.FabricLatencyNs / 1e9,
		LLCBytes:          j.LLCMiB * 1024 * 1024,
	}
	if len(j.CoreClasses) > 0 {
		if len(topo.Classes) == 0 {
			// A single unnamed class normalized into the homogeneous
			// form cannot carry overrides that would then be dropped.
			for _, cj := range j.CoreClasses {
				if cj.FreqGHz != 0 || cj.FlopsPerCycle != 0 || cj.CoreIssueGBs != 0 ||
					cj.CacheKiB != 0 || cj.L2BandwidthGBs != 0 {
					return nil, nil, fmt.Errorf("machine: unnamed single core class cannot carry parameter overrides (set the flat fields)")
				}
			}
		} else {
			for _, cj := range j.CoreClasses {
				s.Classes = append(s.Classes, CoreClassSpec{
					Name:          cj.Name,
					FreqHz:        cj.FreqGHz * 1e9,
					FlopsPerCycle: cj.FlopsPerCycle,
					CoreIssueBW:   cj.CoreIssueGBs * 1e9,
					CacheBytes:    cj.CacheKiB * 1024,
					L2Bandwidth:   cj.L2BandwidthGBs * 1e9,
				})
			}
		}
	}
	if err := s.Validate(); err != nil {
		return nil, nil, err
	}

	// Normalize the serialized form so that re-marshaling it is
	// byte-stable: explicit class counts, dies only when real. The
	// numeric fields keep their decoded float64 values — Go's JSON
	// emission round-trips those exactly, which is what makes content
	// hashes identical across client, coordinator, and worker.
	for i := range j.CoreClasses {
		if len(topo.Classes) > 0 {
			j.CoreClasses[i].CoresPerSocket = topo.Classes[i].PerSocket
		}
	}
	if n := topo.NumDies(); n > 1 {
		j.DiesPerSocket = n
	} else {
		j.DiesPerSocket = 0
	}
	return &j, s, nil
}

// UnmarshalJSONSpec builds a Spec from its serialized form (schema 1 or
// 2). The topology field accepts a registered machine name or a
// topology.Parse spec string (ladder:4x2, xbar:8, sock:8P+8E, ...).
func UnmarshalJSONSpec(data []byte) (*Spec, error) {
	_, s, err := decodeSpec(data)
	return s, err
}

// LoadSpec reads a machine spec from a JSON file.
func LoadSpec(path string) (*Spec, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	return UnmarshalJSONSpec(data)
}
