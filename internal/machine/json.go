package machine

import (
	"encoding/json"
	"fmt"
	"os"

	"multicore/internal/topology"
)

// specJSON is the serialized form of a Spec: the topology is referenced by
// a parseable spec string (see topology.Parse) or a built-in system name.
type specJSON struct {
	Topology          string  `json:"topology"`
	FreqGHz           float64 `json:"freq_ghz"`
	FlopsPerCycle     float64 `json:"flops_per_cycle"`
	MCBandwidthGBs    float64 `json:"mc_bandwidth_gbs"`
	CoreIssueGBs      float64 `json:"core_issue_gbs"`
	CacheKiB          float64 `json:"cache_kib"`
	LineBytes         float64 `json:"line_bytes"`
	L2BandwidthGBs    float64 `json:"l2_bandwidth_gbs"`
	LinkBandwidthGBs  float64 `json:"link_bandwidth_gbs"`
	LocalLatencyNs    float64 `json:"local_latency_ns"`
	HopLatencyNs      float64 `json:"hop_latency_ns"`
	ContentionPenalty float64 `json:"contention_penalty"`
	MLPRandom         float64 `json:"mlp_random"`
	PrefetchDepth     float64 `json:"prefetch_depth"`
}

// MarshalJSONSpec serializes a spec (topology as a spec string when it was
// parseable; built-in names survive as-is).
func MarshalJSONSpec(s *Spec) ([]byte, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	j := specJSON{
		Topology:          s.Topo.Name,
		FreqGHz:           s.FreqHz / 1e9,
		FlopsPerCycle:     s.FlopsPerCycle,
		MCBandwidthGBs:    s.MCBandwidth / 1e9,
		CoreIssueGBs:      s.CoreIssueBW / 1e9,
		CacheKiB:          s.CacheBytes / 1024,
		LineBytes:         s.LineBytes,
		L2BandwidthGBs:    s.L2Bandwidth / 1e9,
		LinkBandwidthGBs:  s.LinkBandwidth / 1e9,
		LocalLatencyNs:    s.LocalLatency * 1e9,
		HopLatencyNs:      s.HopLatency * 1e9,
		ContentionPenalty: s.ContentionPenalty,
		MLPRandom:         s.MLPRandom,
		PrefetchDepth:     s.PrefetchDepth,
	}
	return json.MarshalIndent(j, "", "  ")
}

// UnmarshalJSONSpec builds a Spec from its serialized form. The topology
// field accepts a built-in name (tiger/dmz/longs) or a topology.Parse spec
// string (ladder:4x2, xbar:8, ...).
func UnmarshalJSONSpec(data []byte) (*Spec, error) {
	var j specJSON
	if err := json.Unmarshal(data, &j); err != nil {
		return nil, fmt.Errorf("machine: parsing spec: %w", err)
	}
	// Validate the serialized fields by their JSON names before the
	// unit conversions, so a bad file is reported in the vocabulary the
	// author wrote it in ("mc_bandwidth_gbs", not "MCBandwidth") — and a
	// zero from an omitted field is caught even where the generic
	// Validate tolerates it.
	for _, f := range []struct {
		name  string
		value float64
	}{
		{"freq_ghz", j.FreqGHz},
		{"flops_per_cycle", j.FlopsPerCycle},
		{"mc_bandwidth_gbs", j.MCBandwidthGBs},
		{"core_issue_gbs", j.CoreIssueGBs},
		{"cache_kib", j.CacheKiB},
		{"line_bytes", j.LineBytes},
		{"l2_bandwidth_gbs", j.L2BandwidthGBs},
		{"link_bandwidth_gbs", j.LinkBandwidthGBs},
	} {
		if !(f.value > 0) {
			return nil, fmt.Errorf("machine: spec field %q must be positive (got %v)", f.name, f.value)
		}
	}
	var topo *topology.System
	if builtin := ByName(j.Topology); builtin != nil {
		topo = builtin.Topo
	} else {
		t, err := topology.Parse(j.Topology)
		if err != nil {
			return nil, fmt.Errorf("machine: topology %q: %w", j.Topology, err)
		}
		topo = t
	}
	s := &Spec{
		Topo:              topo,
		FreqHz:            j.FreqGHz * 1e9,
		FlopsPerCycle:     j.FlopsPerCycle,
		MCBandwidth:       j.MCBandwidthGBs * 1e9,
		CoreIssueBW:       j.CoreIssueGBs * 1e9,
		CacheBytes:        j.CacheKiB * 1024,
		LineBytes:         j.LineBytes,
		L2Bandwidth:       j.L2BandwidthGBs * 1e9,
		LinkBandwidth:     j.LinkBandwidthGBs * 1e9,
		LocalLatency:      j.LocalLatencyNs / 1e9,
		HopLatency:        j.HopLatencyNs / 1e9,
		ContentionPenalty: j.ContentionPenalty,
		MLPRandom:         j.MLPRandom,
		PrefetchDepth:     j.PrefetchDepth,
	}
	if err := s.Validate(); err != nil {
		return nil, err
	}
	return s, nil
}

// LoadSpec reads a machine spec from a JSON file.
func LoadSpec(path string) (*Spec, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	return UnmarshalJSONSpec(data)
}
