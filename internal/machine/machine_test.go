package machine

import (
	"math"
	"testing"

	"multicore/internal/mem"
	"multicore/internal/sim"
	"multicore/internal/topology"
	"multicore/internal/units"
)

// streamBandwidth runs one streaming read pass per listed core over a
// fresh over-capacity region placed by dist, and returns the aggregate
// bandwidth in B/s.
func streamBandwidth(t *testing.T, spec *Spec, cores []topology.CoreID, distFor func(c topology.CoreID) mem.Placement) float64 {
	t.Helper()
	eng := sim.NewEngine()
	m := New(eng, spec)
	const bytesPer = 64 * units.MB
	for _, core := range cores {
		core := core
		eng.Spawn("stream", func(p *sim.Proc) {
			cpu := m.CPU(p, core)
			r := cpu.Alloc("v", 8*units.MB, distFor(core))
			// Stream the region repeatedly to reach steady state.
			for i := 0; i < int(bytesPer/(8*units.MB)); i++ {
				cpu.Access(mem.Access{Region: r, Pattern: mem.Stream, Bytes: 8 * units.MB})
			}
		})
	}
	eng.Run()
	return float64(len(cores)) * bytesPer / eng.Now()
}

func localDist(spec *Spec) func(c topology.CoreID) mem.Placement {
	return func(c topology.CoreID) mem.Placement {
		return mem.Place(mem.LocalAlloc, spec.Topo.NumSockets, int(spec.Topo.SocketOf(c)), nil)
	}
}

func TestDMZSingleCoreStream(t *testing.T) {
	spec := DMZ()
	bw := streamBandwidth(t, spec, []topology.CoreID{0}, localDist(spec))
	// Single core is issue-limited at ~2.8 GB/s.
	if math.Abs(bw-2.8*units.Giga)/units.Giga > 0.2 {
		t.Fatalf("DMZ single-core stream = %s, want ~2.8 GB/s", units.Rate(bw))
	}
}

func TestDMZSecondCoreOnSocketIsNearlyFlat(t *testing.T) {
	spec := DMZ()
	one := streamBandwidth(t, spec, []topology.CoreID{0}, localDist(spec))
	two := streamBandwidth(t, spec, []topology.CoreID{0, 1}, localDist(spec))
	gain := two / one
	// Paper Fig 2/3: activating the second core per socket is flat or
	// slightly degraded; the controller caps the pair.
	if gain < 0.85 || gain > 1.25 {
		t.Fatalf("second-core gain = %.2fx (one=%s two=%s), want ~1x",
			gain, units.Rate(one), units.Rate(two))
	}
}

func TestDMZSecondSocketScalesLinearly(t *testing.T) {
	spec := DMZ()
	one := streamBandwidth(t, spec, []topology.CoreID{0}, localDist(spec))
	two := streamBandwidth(t, spec, []topology.CoreID{0, 2}, localDist(spec))
	gain := two / one
	if gain < 1.9 || gain > 2.1 {
		t.Fatalf("second-socket gain = %.2fx, want ~2x", gain)
	}
}

func TestLongsSingleCoreIsCoherenceLimited(t *testing.T) {
	spec := Longs()
	bw := streamBandwidth(t, spec, []topology.CoreID{0}, localDist(spec))
	// Paper: best single-core bandwidth on the 8-socket box is below
	// 2 GB/s, less than half the expected 4+ GB/s.
	if bw > 2.1*units.Giga {
		t.Fatalf("Longs single-core stream = %s, want <= ~2 GB/s", units.Rate(bw))
	}
	if bw < 1.5*units.Giga {
		t.Fatalf("Longs single-core stream = %s, unreasonably low", units.Rate(bw))
	}
}

func TestLongsSecondCorePerSocketDegrades(t *testing.T) {
	spec := Longs()
	one := streamBandwidth(t, spec, []topology.CoreID{0}, localDist(spec))
	two := streamBandwidth(t, spec, []topology.CoreID{0, 1}, localDist(spec))
	// Paper Fig 10: engaging the second core on STREAM loses per-socket
	// bandwidth (Single:Star ratio > 2).
	if two >= one {
		t.Fatalf("Longs second core should degrade socket bandwidth: one=%s two=%s",
			units.Rate(one), units.Rate(two))
	}
}

func TestLongsAllSocketsScaleAcrossFirstCores(t *testing.T) {
	spec := Longs()
	cores := make([]topology.CoreID, 0, 8)
	for s := 0; s < 8; s++ {
		cores = append(cores, spec.Topo.CoresOn(topology.SocketID(s))[0])
	}
	one := streamBandwidth(t, spec, cores[:1], localDist(spec))
	all := streamBandwidth(t, spec, cores, localDist(spec))
	gain := all / one
	if gain < 7 || gain > 8.5 {
		t.Fatalf("Longs 8-socket scaling = %.2fx, want ~8x", gain)
	}
}

func TestRemoteStreamIsSlowerThanLocal(t *testing.T) {
	spec := DMZ()
	local := streamBandwidth(t, spec, []topology.CoreID{0}, localDist(spec))
	remote := streamBandwidth(t, spec, []topology.CoreID{0}, func(topology.CoreID) mem.Placement {
		return mem.Place(mem.Membind, 2, 0, []int{1})
	})
	if remote >= local {
		t.Fatalf("remote stream %s not slower than local %s", units.Rate(remote), units.Rate(local))
	}
}

func TestInterleaveSplitsTraffic(t *testing.T) {
	spec := DMZ()
	eng := sim.NewEngine()
	m := New(eng, spec)
	eng.Spawn("il", func(p *sim.Proc) {
		cpu := m.CPU(p, 0)
		r := cpu.Alloc("v", 8*units.MB, mem.Place(mem.Interleave, 2, 0, nil))
		cpu.Access(mem.Access{Region: r, Pattern: mem.Stream, Bytes: 8 * units.MB})
	})
	eng.Run()
	b0 := m.MC(0).BytesServed()
	b1 := m.MC(1).BytesServed()
	if math.Abs(b0-b1) > 1 {
		t.Fatalf("interleave traffic uneven: mc0=%v mc1=%v", b0, b1)
	}
	if b0 == 0 {
		t.Fatal("no traffic recorded")
	}
}

func TestComputeTime(t *testing.T) {
	spec := DMZ() // peak 4.4 GFlop/s
	eng := sim.NewEngine()
	m := New(eng, spec)
	eng.Spawn("c", func(p *sim.Proc) {
		cpu := m.CPU(p, 0)
		cpu.Compute(4.4e9, 1.0) // one second of peak flops
	})
	eng.Run()
	if math.Abs(eng.Now()-1.0) > 1e-9 {
		t.Fatalf("compute time = %v, want 1.0", eng.Now())
	}
}

func TestChaseIsLatencyBound(t *testing.T) {
	spec := DMZ()
	eng := sim.NewEngine()
	m := New(eng, spec)
	const touches = 10000
	eng.Spawn("chase", func(p *sim.Proc) {
		cpu := m.CPU(p, 0)
		r := cpu.Alloc("list", 64*units.MB, localDist(spec)(0))
		cpu.Access(mem.Access{Region: r, Pattern: mem.Chase, Touches: touches})
	})
	eng.Run()
	perTouch := eng.Now() / touches
	// Dependent chain: one local round trip per touch (90 ns).
	if math.Abs(perTouch-90*units.Nanosecond)/units.Nanosecond > 20 {
		t.Fatalf("chase per-touch latency = %s, want ~90 ns", units.Duration(perTouch))
	}
}

func TestRandomHasMLPOverlap(t *testing.T) {
	spec := DMZ()
	timeFor := func(pat mem.Pattern) float64 {
		eng := sim.NewEngine()
		m := New(eng, spec)
		eng.Spawn("r", func(p *sim.Proc) {
			cpu := m.CPU(p, 0)
			r := cpu.Alloc("tbl", 64*units.MB, localDist(spec)(0))
			cpu.Access(mem.Access{Region: r, Pattern: pat, Touches: 10000})
		})
		eng.Run()
		return eng.Now()
	}
	chase := timeFor(mem.Chase)
	random := timeFor(mem.Random)
	ratio := chase / random
	if math.Abs(ratio-spec.MLPRandom)/spec.MLPRandom > 0.25 {
		t.Fatalf("chase/random ratio = %.2f, want ~%v (MLP)", ratio, spec.MLPRandom)
	}
}

func TestOverlapTakesMax(t *testing.T) {
	spec := DMZ()
	eng := sim.NewEngine()
	m := New(eng, spec)
	var tEnd float64
	eng.Spawn("o", func(p *sim.Proc) {
		cpu := m.CPU(p, 0)
		r := cpu.Alloc("v", 8*units.MB, localDist(spec)(0))
		// Memory: 8 MB at 2.8 GB/s ~= 3 ms. Compute: 44M flops at peak
		// = 10 ms. Overlapped total should be ~10 ms, not ~13 ms.
		cpu.Overlap(44e6, 1.0, mem.Access{Region: r, Pattern: mem.Stream, Bytes: 8 * units.MB})
		tEnd = p.Now()
	})
	eng.Run()
	if tEnd > 11e-3 || tEnd < 9.9e-3 {
		t.Fatalf("overlap time = %s, want ~10 ms", units.Duration(tEnd))
	}
}

func TestCopyChargesBothControllers(t *testing.T) {
	spec := DMZ()
	eng := sim.NewEngine()
	m := New(eng, spec)
	eng.Spawn("cp", func(p *sim.Proc) {
		cpu := m.CPU(p, 0)
		cpu.Copy(units.MB, 0, 1)
	})
	eng.Run()
	if m.MC(0).BytesServed() < units.MB || m.MC(1).BytesServed() < units.MB {
		t.Fatalf("copy traffic: mc0=%v mc1=%v, want >= 1 MB each",
			m.MC(0).BytesServed(), m.MC(1).BytesServed())
	}
}

func TestLongsRemoteLatencyGrowsWithHops(t *testing.T) {
	spec := Longs()
	m := New(sim.NewEngine(), spec)
	l0 := m.RoundTrip(0, 0)
	l1 := m.RoundTrip(0, 1)
	l4 := m.RoundTrip(0, 7)
	if !(l0 < l1 && l1 < l4) {
		t.Fatalf("latency not monotone in hops: %v %v %v", l0, l1, l4)
	}
	if math.Abs(l4-(spec.LocalLatency+4*spec.HopLatency)) > 1e-12 {
		t.Fatalf("4-hop latency = %v", l4)
	}
}

func TestByName(t *testing.T) {
	for _, n := range []string{"tiger", "dmz", "longs"} {
		if ByName(n) == nil {
			t.Fatalf("ByName(%q) = nil", n)
		}
	}
	if ByName("nope") != nil {
		t.Fatal("ByName(nope) should be nil")
	}
}

func TestUtilizationsReport(t *testing.T) {
	spec := DMZ()
	eng := sim.NewEngine()
	m := New(eng, spec)
	eng.Spawn("w", func(p *sim.Proc) {
		cpu := m.CPU(p, 0)
		r := cpu.Alloc("v", 8*units.MB, localDist(spec)(0))
		cpu.Access(mem.Access{Region: r, Pattern: mem.Stream, Bytes: 8 * units.MB})
	})
	eng.Run()
	utils := m.Utilizations(eng.Now())
	// 2 MCs + 2 link dirs + 4 issue ports + 4 L2... L2 not included: 2+2+4.
	if len(utils) != 8 {
		t.Fatalf("got %d resources, want 8", len(utils))
	}
	hot := m.HottestResource(eng.Now())
	if hot.Utilization <= 0 {
		t.Fatalf("hottest resource has no utilization: %+v", hot)
	}
	if hot.Name != utils[0].Name && hot.BytesServed == 0 {
		t.Fatal("hottest resource inconsistent")
	}
}

func TestSpecValidate(t *testing.T) {
	for _, s := range []*Spec{Tiger(), DMZ(), Longs()} {
		if err := s.Validate(); err != nil {
			t.Fatalf("%s: %v", s.Topo.Name, err)
		}
	}
	bad := DMZ()
	bad.MCBandwidth = 0
	if err := bad.Validate(); err == nil {
		t.Fatal("zero-bandwidth spec should fail validation")
	}
	bad2 := DMZ()
	bad2.Topo = nil
	if err := bad2.Validate(); err == nil {
		t.Fatal("nil topology should fail validation")
	}
}

func TestCopyCeilingMonotone(t *testing.T) {
	spec := Longs()
	if spec.CopyCeiling(0) != 0 {
		t.Fatal("zero hops should mean no ceiling")
	}
	prev := spec.CopyCeiling(1)
	if prev <= 0 || prev >= spec.LinkBandwidth {
		t.Fatalf("1-hop ceiling %v out of range", prev)
	}
	for h := 2; h <= 4; h++ {
		c := spec.CopyCeiling(h)
		if c >= prev {
			t.Fatalf("ceiling not decreasing at %d hops: %v >= %v", h, c, prev)
		}
		prev = c
	}
}
