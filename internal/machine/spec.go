// Package machine turns a topology plus calibrated performance parameters
// into an executable machine model: cores that can compute, access memory
// through caches and NUMA links, and (via internal/mpi) exchange messages.
//
// Memory accesses become flows in the simulation's fluid network, so
// contention between cores sharing a memory controller, or messages sharing
// a HyperTransport link, emerges from the model rather than being assumed.
package machine

import (
	"fmt"

	"multicore/internal/topology"
	"multicore/internal/units"
)

// Spec holds the calibrated performance parameters of one evaluated
// system. Values are *effective* (already derated for protocol overheads),
// chosen so the micro-benchmark behaviour the paper reports emerges:
// Longs' coherence-limited bandwidth, DMZ's near-flat second-core STREAM,
// and the latency gap between local and multi-hop remote memory.
type Spec struct {
	Topo *topology.System

	FreqHz        float64 // core clock
	FlopsPerCycle float64 // double-precision flops per cycle (Opteron: 2)

	// Memory system.
	MCBandwidth float64 // effective DRAM bandwidth per socket (B/s)
	CoreIssueBW float64 // max stream rate a single core can sustain (B/s)
	CacheBytes  float64 // per-core L1d + exclusive L2 capacity
	LineBytes   float64 // cache line size
	L2Bandwidth float64 // service rate for cache hits (B/s)

	// Interconnect.
	LinkBandwidth float64 // coherent HT per-direction payload bandwidth (B/s)
	LocalLatency  float64 // DRAM round trip to the local controller (s)
	HopLatency    float64 // additional round-trip latency per HT hop (s)

	// DRAM efficiency loss when multiple streams interleave at one
	// controller (bank/row-buffer conflicts): each concurrent stream
	// inflates a new flow's effective volume by this fraction.
	ContentionPenalty float64

	// Memory-level parallelism: how many independent random misses a
	// core keeps in flight (dependent chains always get 1).
	MLPRandom float64

	// PrefetchDepth is the number of cache-line fills the hardware
	// prefetcher keeps in flight for streaming accesses. It caps a
	// single stream's rate at PrefetchDepth*LineBytes/roundTrip, which
	// is what makes remote and interleaved streams slower for a single
	// core even when aggregate controller bandwidth is available.
	PrefetchDepth float64
}

// PeakFlops returns the peak double-precision flop rate of one core.
func (s *Spec) PeakFlops() float64 { return s.FreqHz * s.FlopsPerCycle }

// CopyCeiling bounds the rate of a memory-to-memory copy whose path
// crosses `hops` HT links: remote reads pay coherence probes, so a
// cross-link copy cannot reach the full link payload bandwidth. Zero hops
// means no ceiling (returns 0).
func (s *Spec) CopyCeiling(hops int) float64 {
	if hops <= 0 {
		return 0
	}
	ceiling := 0.7 * s.LinkBandwidth
	for i := 1; i < hops; i++ {
		ceiling *= 0.9
	}
	return ceiling
}

// Tiger returns the calibrated spec for the Cray XD1 node: two single-core
// 2.2 GHz Opteron 248 (paper Table 1).
func Tiger() *Spec {
	return &Spec{
		Topo:              topology.Tiger(),
		FreqHz:            2.2e9,
		FlopsPerCycle:     2,
		MCBandwidth:       4.0 * units.Giga,
		CoreIssueBW:       2.9 * units.Giga,
		CacheBytes:        (64 + 1024) * units.KB,
		LineBytes:         64,
		L2Bandwidth:       8.0 * units.Giga,
		LinkBandwidth:     2.2 * units.Giga,
		LocalLatency:      85 * units.Nanosecond,
		HopLatency:        50 * units.Nanosecond,
		ContentionPenalty: 0.15,
		MLPRandom:         4,
		PrefetchDepth:     8,
	}
}

// DMZ returns the calibrated spec for one DMZ node: two dual-core 2.2 GHz
// Opteron 275 (paper Table 1). The two-socket coherence fabric is simple,
// so the controller keeps most of its DDR-400 bandwidth.
func DMZ() *Spec {
	return &Spec{
		Topo:              topology.DMZ(),
		FreqHz:            2.2e9,
		FlopsPerCycle:     2,
		MCBandwidth:       3.4 * units.Giga,
		CoreIssueBW:       2.8 * units.Giga,
		CacheBytes:        (64 + 1024) * units.KB,
		LineBytes:         64,
		L2Bandwidth:       8.0 * units.Giga,
		LinkBandwidth:     2.2 * units.Giga,
		LocalLatency:      90 * units.Nanosecond,
		HopLatency:        55 * units.Nanosecond,
		ContentionPenalty: 0.15,
		MLPRandom:         4,
		PrefetchDepth:     8,
	}
}

// Longs returns the calibrated spec for the Iwill H8501: eight dual-core
// 1.8 GHz Opteron 865 on a 2x4 HT ladder. The paper found the eight-socket
// broadcast-probe coherence scheme costs more than half the expected
// bandwidth ("best achievable single core bandwidth ... less than half of
// the more than 4 GB/s one would typically expect"), so the effective
// controller bandwidth here is derated far below the DDR-400 peak and the
// base latency is higher than on the two-socket systems.
func Longs() *Spec {
	return &Spec{
		Topo:              topology.Longs(),
		FreqHz:            1.8e9,
		FlopsPerCycle:     2,
		MCBandwidth:       2.0 * units.Giga,
		CoreIssueBW:       2.8 * units.Giga,
		CacheBytes:        (64 + 1024) * units.KB,
		LineBytes:         64,
		L2Bandwidth:       6.5 * units.Giga,
		LinkBandwidth:     2.0 * units.Giga,
		LocalLatency:      150 * units.Nanosecond,
		HopLatency:        70 * units.Nanosecond,
		ContentionPenalty: 0.18,
		MLPRandom:         3,
		PrefetchDepth:     6,
	}
}

// ByName returns the spec of a paper system ("tiger", "dmz", "longs").
// It returns nil for unknown names.
func ByName(name string) *Spec {
	switch name {
	case "tiger", "Tiger":
		return Tiger()
	case "dmz", "DMZ":
		return DMZ()
	case "longs", "Longs":
		return Longs()
	}
	return nil
}

// Validate checks a spec for physical plausibility; custom specs built in
// code should be validated before use.
func (s *Spec) Validate() error {
	switch {
	case s.Topo == nil:
		return fmt.Errorf("machine: spec has no topology")
	case s.FreqHz <= 0 || s.FlopsPerCycle <= 0:
		return fmt.Errorf("machine: %s has non-positive compute rate", s.Topo.Name)
	case s.MCBandwidth <= 0 || s.CoreIssueBW <= 0 || s.LinkBandwidth <= 0:
		return fmt.Errorf("machine: %s has non-positive bandwidth", s.Topo.Name)
	case s.CacheBytes <= 0 || s.LineBytes <= 0:
		return fmt.Errorf("machine: %s has non-positive cache geometry", s.Topo.Name)
	case s.LocalLatency <= 0 || s.HopLatency < 0:
		return fmt.Errorf("machine: %s has bad latencies", s.Topo.Name)
	case s.ContentionPenalty < 0 || s.MLPRandom < 1 || s.PrefetchDepth < 0:
		return fmt.Errorf("machine: %s has bad contention/MLP parameters", s.Topo.Name)
	}
	return nil
}
