// Package machine turns a topology plus calibrated performance parameters
// into an executable machine model: cores that can compute, access memory
// through caches and NUMA links, and (via internal/mpi) exchange messages.
//
// Memory accesses become flows in the simulation's fluid network, so
// contention between cores sharing a memory controller, or messages sharing
// a HyperTransport link, emerges from the model rather than being assumed.
package machine

import (
	"fmt"

	"multicore/internal/topology"
	"multicore/internal/units"
)

// Spec holds the calibrated performance parameters of one evaluated
// system. Values are *effective* (already derated for protocol overheads),
// chosen so the micro-benchmark behaviour the paper reports emerges:
// Longs' coherence-limited bandwidth, DMZ's near-flat second-core STREAM,
// and the latency gap between local and multi-hop remote memory.
type Spec struct {
	Topo *topology.System

	FreqHz        float64 // core clock
	FlopsPerCycle float64 // double-precision flops per cycle (Opteron: 2)

	// Memory system.
	MCBandwidth float64 // effective DRAM bandwidth per socket (B/s)
	CoreIssueBW float64 // max stream rate a single core can sustain (B/s)
	CacheBytes  float64 // per-core L1d + exclusive L2 capacity
	LineBytes   float64 // cache line size
	L2Bandwidth float64 // service rate for cache hits (B/s)

	// Interconnect.
	LinkBandwidth float64 // coherent HT per-direction payload bandwidth (B/s)
	LocalLatency  float64 // DRAM round trip to the local controller (s)
	HopLatency    float64 // additional round-trip latency per HT hop (s)

	// DRAM efficiency loss when multiple streams interleave at one
	// controller (bank/row-buffer conflicts): each concurrent stream
	// inflates a new flow's effective volume by this fraction.
	ContentionPenalty float64

	// Memory-level parallelism: how many independent random misses a
	// core keeps in flight (dependent chains always get 1).
	MLPRandom float64

	// PrefetchDepth is the number of cache-line fills the hardware
	// prefetcher keeps in flight for streaming accesses. It caps a
	// single stream's rate at PrefetchDepth*LineBytes/roundTrip, which
	// is what makes remote and interleaved streams slower for a single
	// core even when aggregate controller bandwidth is available.
	PrefetchDepth float64

	// Classes, when non-empty, gives per-core-class parameter overrides
	// for heterogeneous (hybrid) machines. Classes[i] corresponds to
	// Topo.Classes[i]; a zero field inherits the flat value above. Empty
	// means every core uses the flat fields — the paper systems.
	Classes []CoreClassSpec

	// Multi-die socket fabric (used when Topo.NumDies() > 1): every
	// DRAM access from a chiplet crosses its die's link to the socket's
	// IO hub, adding FabricLatency to the round trip and sharing
	// FabricBandwidth with the die's other cores.
	FabricBandwidth float64 // per-die link to the IO hub (B/s)
	FabricLatency   float64 // extra round-trip latency per DRAM access (s)

	// LLCBytes is a shared last-level cache per die (per socket on
	// monolithic parts), split evenly across the die's cores on top of
	// each core's private CacheBytes. Zero means no shared tier — the
	// paper systems, whose Opteron L2 is private and already counted in
	// CacheBytes.
	LLCBytes float64
}

// CoreClassSpec overrides per-core performance parameters for one core
// class of a heterogeneous machine. Zero fields inherit the spec's flat
// value, so a class only states what differs.
type CoreClassSpec struct {
	Name          string
	FreqHz        float64
	FlopsPerCycle float64
	CoreIssueBW   float64
	CacheBytes    float64
	L2Bandwidth   float64
}

// PeakFlops returns the peak double-precision flop rate of one core.
func (s *Spec) PeakFlops() float64 { return s.FreqHz * s.FlopsPerCycle }

// classFor returns the class overrides for core c, nil on homogeneous
// specs (or when the topology declares more classes than the spec
// parameterizes).
func (s *Spec) classFor(c topology.CoreID) *CoreClassSpec {
	if len(s.Classes) == 0 {
		return nil
	}
	if i := s.Topo.ClassOf(c); i < len(s.Classes) {
		return &s.Classes[i]
	}
	return nil
}

// FreqOn returns the clock of core c.
func (s *Spec) FreqOn(c topology.CoreID) float64 {
	if cl := s.classFor(c); cl != nil && cl.FreqHz > 0 {
		return cl.FreqHz
	}
	return s.FreqHz
}

// FlopsPerCycleOn returns the per-cycle flop throughput of core c.
func (s *Spec) FlopsPerCycleOn(c topology.CoreID) float64 {
	if cl := s.classFor(c); cl != nil && cl.FlopsPerCycle > 0 {
		return cl.FlopsPerCycle
	}
	return s.FlopsPerCycle
}

// PeakFlopsOn returns the peak flop rate of core c. On homogeneous
// specs this is exactly PeakFlops() — same expression, same bits — so
// the paper systems are unchanged by the per-core generalization.
func (s *Spec) PeakFlopsOn(c topology.CoreID) float64 {
	if cl := s.classFor(c); cl != nil {
		return s.FreqOn(c) * s.FlopsPerCycleOn(c)
	}
	return s.FreqHz * s.FlopsPerCycle
}

// IssueBWOn returns the load/store issue bandwidth of core c.
func (s *Spec) IssueBWOn(c topology.CoreID) float64 {
	if cl := s.classFor(c); cl != nil && cl.CoreIssueBW > 0 {
		return cl.CoreIssueBW
	}
	return s.CoreIssueBW
}

// L2BandwidthOn returns the cache-hit service rate of core c.
func (s *Spec) L2BandwidthOn(c topology.CoreID) float64 {
	if cl := s.classFor(c); cl != nil && cl.L2Bandwidth > 0 {
		return cl.L2Bandwidth
	}
	return s.L2Bandwidth
}

// CacheBytesOn returns the effective cache capacity of core c: its
// class's (or the flat) private capacity plus an even share of the
// die's shared last-level cache. Homogeneous specs without an LLC tier
// return CacheBytes untouched.
func (s *Spec) CacheBytesOn(c topology.CoreID) float64 {
	base := s.CacheBytes
	cl := s.classFor(c)
	if cl != nil && cl.CacheBytes > 0 {
		base = cl.CacheBytes
	}
	if s.LLCBytes > 0 {
		base += s.LLCBytes / float64(s.Topo.CoresPerDie())
	}
	return base
}

// NodeRoundTrip returns the load-to-use latency from a core on socket
// sock to memory node n: the local DRAM round trip plus per-hop link
// latency, plus the on-package fabric crossing on multi-die sockets.
// For monolithic sockets the expression is identical to the original
// two-term model, keeping the paper systems bit-exact.
func (s *Spec) NodeRoundTrip(sock, n topology.SocketID) float64 {
	rt := s.LocalLatency + float64(s.Topo.Hops(sock, n))*s.HopLatency
	if s.Topo.NumDies() > 1 {
		rt += s.FabricLatency
	}
	return rt
}

// CopyCeiling bounds the rate of a memory-to-memory copy whose path
// crosses `hops` HT links: remote reads pay coherence probes, so a
// cross-link copy cannot reach the full link payload bandwidth. Zero hops
// means no ceiling (returns 0).
func (s *Spec) CopyCeiling(hops int) float64 {
	if hops <= 0 {
		return 0
	}
	ceiling := 0.7 * s.LinkBandwidth
	for i := 1; i < hops; i++ {
		ceiling *= 0.9
	}
	return ceiling
}

// Tiger returns the calibrated spec for the Cray XD1 node: two single-core
// 2.2 GHz Opteron 248 (paper Table 1).
func Tiger() *Spec {
	return &Spec{
		Topo:              topology.Tiger(),
		FreqHz:            2.2e9,
		FlopsPerCycle:     2,
		MCBandwidth:       4.0 * units.Giga,
		CoreIssueBW:       2.9 * units.Giga,
		CacheBytes:        (64 + 1024) * units.KB,
		LineBytes:         64,
		L2Bandwidth:       8.0 * units.Giga,
		LinkBandwidth:     2.2 * units.Giga,
		LocalLatency:      85 * units.Nanosecond,
		HopLatency:        50 * units.Nanosecond,
		ContentionPenalty: 0.15,
		MLPRandom:         4,
		PrefetchDepth:     8,
	}
}

// DMZ returns the calibrated spec for one DMZ node: two dual-core 2.2 GHz
// Opteron 275 (paper Table 1). The two-socket coherence fabric is simple,
// so the controller keeps most of its DDR-400 bandwidth.
func DMZ() *Spec {
	return &Spec{
		Topo:              topology.DMZ(),
		FreqHz:            2.2e9,
		FlopsPerCycle:     2,
		MCBandwidth:       3.4 * units.Giga,
		CoreIssueBW:       2.8 * units.Giga,
		CacheBytes:        (64 + 1024) * units.KB,
		LineBytes:         64,
		L2Bandwidth:       8.0 * units.Giga,
		LinkBandwidth:     2.2 * units.Giga,
		LocalLatency:      90 * units.Nanosecond,
		HopLatency:        55 * units.Nanosecond,
		ContentionPenalty: 0.15,
		MLPRandom:         4,
		PrefetchDepth:     8,
	}
}

// Longs returns the calibrated spec for the Iwill H8501: eight dual-core
// 1.8 GHz Opteron 865 on a 2x4 HT ladder. The paper found the eight-socket
// broadcast-probe coherence scheme costs more than half the expected
// bandwidth ("best achievable single core bandwidth ... less than half of
// the more than 4 GB/s one would typically expect"), so the effective
// controller bandwidth here is derated far below the DDR-400 peak and the
// base latency is higher than on the two-socket systems.
func Longs() *Spec {
	return &Spec{
		Topo:              topology.Longs(),
		FreqHz:            1.8e9,
		FlopsPerCycle:     2,
		MCBandwidth:       2.0 * units.Giga,
		CoreIssueBW:       2.8 * units.Giga,
		CacheBytes:        (64 + 1024) * units.KB,
		LineBytes:         64,
		L2Bandwidth:       6.5 * units.Giga,
		LinkBandwidth:     2.0 * units.Giga,
		LocalLatency:      150 * units.Nanosecond,
		HopLatency:        70 * units.Nanosecond,
		ContentionPenalty: 0.18,
		MLPRandom:         3,
		PrefetchDepth:     6,
	}
}

// ByName returns the spec of a registered system ("tiger", "dmz",
// "longs", the modern pack, content-hash ids of loaded custom specs).
// It returns nil for unknown names; see Resolve for an error-reporting
// variant that also accepts @FILE paths.
func ByName(name string) *Spec { return Lookup(name) }

// Validate checks a spec for physical plausibility; custom specs built in
// code should be validated before use.
func (s *Spec) Validate() error {
	switch {
	case s.Topo == nil:
		return fmt.Errorf("machine: spec has no topology")
	case s.FreqHz <= 0 || s.FlopsPerCycle <= 0:
		return fmt.Errorf("machine: %s has non-positive compute rate", s.Topo.Name)
	case s.MCBandwidth <= 0 || s.CoreIssueBW <= 0 || s.LinkBandwidth <= 0:
		return fmt.Errorf("machine: %s has non-positive bandwidth", s.Topo.Name)
	case s.CacheBytes <= 0 || s.LineBytes <= 0:
		return fmt.Errorf("machine: %s has non-positive cache geometry", s.Topo.Name)
	case s.LocalLatency <= 0 || s.HopLatency < 0:
		return fmt.Errorf("machine: %s has bad latencies", s.Topo.Name)
	case s.ContentionPenalty < 0 || s.MLPRandom < 1 || s.PrefetchDepth < 0:
		return fmt.Errorf("machine: %s has bad contention/MLP parameters", s.Topo.Name)
	case s.LLCBytes < 0:
		return fmt.Errorf("machine: %s has negative shared-cache capacity", s.Topo.Name)
	}
	if len(s.Classes) > 0 {
		if len(s.Classes) != len(s.Topo.Classes) {
			return fmt.Errorf("machine: %s parameterizes %d core classes, topology declares %d",
				s.Topo.Name, len(s.Classes), len(s.Topo.Classes))
		}
		for i, cl := range s.Classes {
			if cl.Name != s.Topo.Classes[i].Name {
				return fmt.Errorf("machine: %s class %d is %q, topology calls it %q",
					s.Topo.Name, i, cl.Name, s.Topo.Classes[i].Name)
			}
			if cl.FreqHz < 0 || cl.FlopsPerCycle < 0 || cl.CoreIssueBW < 0 ||
				cl.CacheBytes < 0 || cl.L2Bandwidth < 0 {
				return fmt.Errorf("machine: %s class %q has negative parameters", s.Topo.Name, cl.Name)
			}
		}
	}
	if s.Topo.NumDies() > 1 {
		if s.FabricBandwidth <= 0 {
			return fmt.Errorf("machine: %s has %d dies per socket but no fabric bandwidth",
				s.Topo.Name, s.Topo.NumDies())
		}
		if s.FabricLatency < 0 {
			return fmt.Errorf("machine: %s has negative fabric latency", s.Topo.Name)
		}
	}
	return nil
}
