package machine

import (
	"encoding/json"
	"math"
	"strings"
	"testing"
)

func TestSpecJSONRoundTrip(t *testing.T) {
	for _, orig := range []*Spec{Tiger(), DMZ(), Longs()} {
		data, err := MarshalJSONSpec(orig)
		if err != nil {
			t.Fatal(err)
		}
		got, err := UnmarshalJSONSpec(data)
		if err != nil {
			t.Fatalf("%s: %v\n%s", orig.Topo.Name, err, data)
		}
		if got.Topo.NumCores() != orig.Topo.NumCores() {
			t.Fatalf("%s: cores %d != %d", orig.Topo.Name, got.Topo.NumCores(), orig.Topo.NumCores())
		}
		for name, pair := range map[string][2]float64{
			"freq":    {got.FreqHz, orig.FreqHz},
			"mc":      {got.MCBandwidth, orig.MCBandwidth},
			"cache":   {got.CacheBytes, orig.CacheBytes},
			"latency": {got.LocalLatency, orig.LocalLatency},
			"mlp":     {got.MLPRandom, orig.MLPRandom},
		} {
			if math.Abs(pair[0]-pair[1]) > 1e-9*math.Abs(pair[1]) {
				t.Fatalf("%s: %s %v != %v", orig.Topo.Name, name, pair[0], pair[1])
			}
		}
	}
}

func TestSpecJSONCustomTopology(t *testing.T) {
	spec := Longs()
	data, err := MarshalJSONSpec(spec)
	if err != nil {
		t.Fatal(err)
	}
	// Swap the built-in name for a parseable fabric spec.
	patched := strings.Replace(string(data), `"Longs"`, `"xbar:8"`, 1)
	got, err := UnmarshalJSONSpec([]byte(patched))
	if err != nil {
		t.Fatal(err)
	}
	if got.Topo.MaxHops() != 1 {
		t.Fatalf("custom topology not applied: diameter %d", got.Topo.MaxHops())
	}
}

func TestSpecJSONRejectsGarbage(t *testing.T) {
	if _, err := UnmarshalJSONSpec([]byte(`{"topology":"nonsense:9"`)); err == nil {
		t.Fatal("truncated JSON should fail")
	}
	if _, err := UnmarshalJSONSpec([]byte(`{"topology":"nonsense:9"}`)); err == nil {
		t.Fatal("unknown topology should fail")
	}
	if _, err := UnmarshalJSONSpec([]byte(`{"topology":"dmz"}`)); err == nil {
		t.Fatal("zero-valued parameters should fail validation")
	}
}

// TestSpecJSONFieldValidation: every named numeric field is checked
// individually — a zero or negative value fails with an error naming
// the JSON field, so spec authors see "mc_bandwidth_gbs", not an
// internal struct name.
func TestSpecJSONFieldValidation(t *testing.T) {
	data, err := MarshalJSONSpec(Tiger())
	if err != nil {
		t.Fatal(err)
	}
	var base map[string]any
	if err := json.Unmarshal(data, &base); err != nil {
		t.Fatal(err)
	}
	fields := []string{
		"freq_ghz", "flops_per_cycle", "mc_bandwidth_gbs", "core_issue_gbs",
		"cache_kib", "line_bytes", "l2_bandwidth_gbs", "link_bandwidth_gbs",
	}
	for _, field := range fields {
		for _, bad := range []float64{0, -1} {
			patched := map[string]any{}
			for k, v := range base {
				patched[k] = v
			}
			patched[field] = bad
			enc, err := json.Marshal(patched)
			if err != nil {
				t.Fatal(err)
			}
			_, err = UnmarshalJSONSpec(enc)
			if err == nil {
				t.Errorf("%s=%v accepted, want error", field, bad)
				continue
			}
			if !strings.Contains(err.Error(), `"`+field+`"`) {
				t.Errorf("%s=%v: error %q does not name the field", field, bad, err)
			}
		}
	}
	// The unmodified spec still parses — the loop above is testing the
	// patches, not a broken baseline.
	if _, err := UnmarshalJSONSpec(data); err != nil {
		t.Fatalf("baseline spec rejected: %v", err)
	}
}

func TestLoadSpecMissingFile(t *testing.T) {
	if _, err := LoadSpec("/nonexistent/spec.json"); err == nil {
		t.Fatal("expected error")
	}
}
