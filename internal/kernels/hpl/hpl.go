// Package hpl implements the High-Performance Linpack benchmark: a real
// LU solver with partial pivoting for correctness testing and a simulated
// block-cyclic distributed driver (paper Figure 8).
package hpl

import (
	"fmt"
	"math"

	"multicore/internal/mem"
	"multicore/internal/mpi"
)

// Solve factors the n x n row-major matrix a in place with partial
// pivoting and solves a*x = b, returning x. It returns an error on
// (near-)singular matrices.
func Solve(a []float64, b []float64, n int) ([]float64, error) {
	if len(a) < n*n || len(b) < n {
		panic("hpl: buffers too small")
	}
	piv := make([]int, n)
	for i := range piv {
		piv[i] = i
	}
	for k := 0; k < n; k++ {
		// Partial pivot.
		p, maxv := k, math.Abs(a[k*n+k])
		for i := k + 1; i < n; i++ {
			if v := math.Abs(a[i*n+k]); v > maxv {
				p, maxv = i, v
			}
		}
		if maxv < 1e-12 {
			return nil, fmt.Errorf("hpl: matrix is singular at column %d", k)
		}
		if p != k {
			for j := 0; j < n; j++ {
				a[k*n+j], a[p*n+j] = a[p*n+j], a[k*n+j]
			}
			b[k], b[p] = b[p], b[k]
		}
		// Eliminate below.
		inv := 1 / a[k*n+k]
		for i := k + 1; i < n; i++ {
			f := a[i*n+k] * inv
			a[i*n+k] = f
			for j := k + 1; j < n; j++ {
				a[i*n+j] -= f * a[k*n+j]
			}
			b[i] -= f * b[k]
		}
	}
	// Back substitution.
	x := make([]float64, n)
	for i := n - 1; i >= 0; i-- {
		sum := b[i]
		for j := i + 1; j < n; j++ {
			sum -= a[i*n+j] * x[j]
		}
		x[i] = sum / a[i*n+i]
	}
	return x, nil
}

// Residual returns max_i |A0*x - b0|_i / (|A0|*|x|*n*eps)-style normalized
// residual given the original matrix and right-hand side.
func Residual(a0, x, b0 []float64, n int) float64 {
	maxRes := 0.0
	for i := 0; i < n; i++ {
		sum := -b0[i]
		for j := 0; j < n; j++ {
			sum += a0[i*n+j] * x[j]
		}
		if r := math.Abs(sum); r > maxRes {
			maxRes = r
		}
	}
	return maxRes
}

// Flops returns the LU operation count 2n^3/3 + 2n^2.
func Flops(n float64) float64 { return 2*n*n*n/3 + 2*n*n }

// Report keys for simulated HPL runs.
const (
	MetricGFlops = "hpl.gflops" // whole-job HPL rate (reported by rank 0)
)

// Params configures a simulated HPL run.
type Params struct {
	N  int // global matrix order
	NB int // block size (default 64)
}

// Run executes the simulated HPL factorization across all ranks: a 1-D
// block-cyclic right-looking LU with panel broadcast and blocked trailing
// updates.
func Run(r *mpi.Rank, p Params) {
	if p.N <= 0 {
		panic("hpl: order must be positive")
	}
	if p.NB == 0 {
		p.NB = 64
	}
	n := float64(p.N)
	nb := float64(p.NB)
	ranks := r.Size()
	localBytes := 8 * n * n / float64(ranks)
	local := r.Alloc("hpl.local", localBytes)

	r.Barrier()
	start := r.Now()
	panels := p.N / p.NB
	for k := 0; k < panels; k++ {
		m := n - float64(k)*nb // remaining rows/cols
		owner := k % ranks
		if r.ID() == owner {
			// Panel factorization: O(m*nb^2) flops, streaming the
			// panel (latency-sensitive column operations).
			r.Overlap(m*nb*nb, 0.35,
				mem.Access{Region: local, Pattern: mem.Stream, Bytes: 8 * m * nb})
		}
		// Broadcast the factored panel.
		if ranks > 1 {
			r.Bcast(owner, 8*m*nb)
		}
		// Trailing submatrix update: DGEMM-like, split across ranks.
		updFlops := 2 * m * m * nb / float64(ranks)
		touched := 8 * m * m * nb / 64 / float64(ranks) // blocked traffic
		r.Overlap(updFlops, 0.8,
			mem.Access{Region: local, Pattern: mem.Blocked, Bytes: touched * 48, Reuse: 48})
	}
	if ranks > 1 {
		r.Barrier()
	}
	elapsed := r.Now() - start
	if r.ID() == 0 {
		r.Report(MetricGFlops, Flops(n)/elapsed/1e9)
	}
}
