package hpl

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"multicore/internal/affinity"
	"multicore/internal/machine"
	"multicore/internal/mem"
	"multicore/internal/mpi"
	"multicore/internal/topology"
)

func TestSolveKnownSystem(t *testing.T) {
	// 2x + y = 5; x + 3y = 10 -> x = 1, y = 3.
	a := []float64{2, 1, 1, 3}
	b := []float64{5, 10}
	x, err := Solve(a, b, 2)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(x[0]-1) > 1e-12 || math.Abs(x[1]-3) > 1e-12 {
		t.Fatalf("x = %v, want [1 3]", x)
	}
}

func TestSolveRandomSystems(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(30)
		a0 := make([]float64, n*n)
		for i := range a0 {
			a0[i] = rng.NormFloat64()
		}
		// Diagonal dominance keeps the system well conditioned.
		for i := 0; i < n; i++ {
			a0[i*n+i] += float64(n)
		}
		b0 := make([]float64, n)
		for i := range b0 {
			b0[i] = rng.NormFloat64()
		}
		a := append([]float64(nil), a0...)
		b := append([]float64(nil), b0...)
		x, err := Solve(a, b, n)
		if err != nil {
			return false
		}
		return Residual(a0, x, b0, n) < 1e-8
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestSolveNeedsPivoting(t *testing.T) {
	// Zero on the leading diagonal forces a row swap.
	a0 := []float64{0, 1, 1, 0}
	b0 := []float64{2, 3}
	a := append([]float64(nil), a0...)
	b := append([]float64(nil), b0...)
	x, err := Solve(a, b, 2)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(x[0]-3) > 1e-12 || math.Abs(x[1]-2) > 1e-12 {
		t.Fatalf("x = %v, want [3 2]", x)
	}
}

func TestSolveSingular(t *testing.T) {
	a := []float64{1, 2, 2, 4}
	b := []float64{1, 2}
	if _, err := Solve(a, b, 2); err == nil {
		t.Fatal("expected singular-matrix error")
	}
}

func bind(cores ...int) []affinity.Binding {
	b := make([]affinity.Binding, len(cores))
	for i, c := range cores {
		b[i] = affinity.Binding{Core: topology.CoreID(c), MemPolicy: mem.LocalAlloc}
	}
	return b
}

func TestSimHPLScalesWithRanks(t *testing.T) {
	spec := machine.Longs()
	rate := func(cores ...int) float64 {
		res := mpi.Run(mpi.Config{Spec: spec, Bindings: bind(cores...)}, func(r *mpi.Rank) {
			Run(r, Params{N: 2048, NB: 64})
		})
		return res.Max(MetricGFlops)
	}
	r1 := rate(0)
	r4 := rate(0, 2, 4, 6)
	if speedup := r4 / r1; speedup < 2 || speedup > 4.2 {
		t.Fatalf("HPL 4-rank speedup = %.2f, want 2-4x", speedup)
	}
}

func TestSimHPLSysVHurts(t *testing.T) {
	// Paper Fig 8: the MPI sub-layer dominates the memory placement
	// choice for HPL.
	spec := machine.Longs()
	cores := []int{0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15}
	rate := func(impl *mpi.Impl) float64 {
		res := mpi.Run(mpi.Config{Spec: spec, Impl: impl, Bindings: bind(cores...)}, func(r *mpi.Rank) {
			Run(r, Params{N: 2048, NB: 64})
		})
		return res.Max(MetricGFlops)
	}
	usysv := rate(mpi.LAM().WithSublayer(mpi.USysV()))
	sysv := rate(mpi.LAM().WithSublayer(mpi.SysV()))
	if usysv <= sysv {
		t.Fatalf("USysV HPL (%v GF) should beat SysV (%v GF)", usysv, sysv)
	}
}
