// Package rnda implements the HPCC RandomAccess (GUPS) benchmark: real
// table updates with the HPCC polynomial random stream for correctness
// testing, and simulated local/MPI drivers that exercise the last level of
// the memory hierarchy (paper Figure 11).
package rnda

import (
	"multicore/internal/mem"
	"multicore/internal/mpi"
)

// POLY is the primitive polynomial the HPCC random stream uses.
const POLY = 0x0000000000000007

// NextRandom advances the HPCC pseudo-random sequence.
func NextRandom(v uint64) uint64 {
	hi := int64(v) < 0
	v <<= 1
	if hi {
		v ^= POLY
	}
	return v
}

// Table is a RandomAccess update table of power-of-two size.
type Table struct {
	Data []uint64
	mask uint64
}

// NewTable creates a table of 2^logSize entries initialized to t[i] = i,
// the HPCC starting state.
func NewTable(logSize uint) *Table {
	n := 1 << logSize
	t := &Table{Data: make([]uint64, n), mask: uint64(n - 1)}
	for i := range t.Data {
		t.Data[i] = uint64(i)
	}
	return t
}

// Update applies `count` updates starting from the given stream value and
// returns the final stream value. Updates are t[ran & mask] ^= ran, the
// exact HPCC kernel.
func (t *Table) Update(start uint64, count int) uint64 {
	ran := start
	for i := 0; i < count; i++ {
		ran = NextRandom(ran)
		t.Data[ran&t.mask] ^= ran
	}
	return ran
}

// Verify re-applies the same update stream (XOR is an involution) and
// reports how many entries fail to return to the initial state. HPCC
// tolerates up to 1% errors from races; a serial run must return 0.
func (t *Table) Verify(start uint64, count int) int {
	t.Update(start, count)
	errors := 0
	for i, v := range t.Data {
		if v != uint64(i) {
			errors++
		}
	}
	return errors
}

// Report keys for simulated RandomAccess runs.
const (
	MetricGUPS = "rnda.gups" // per-rank giga-updates per second
)

// Params configures a simulated RandomAccess run.
type Params struct {
	TableBytes float64 // table size (well beyond cache)
	Updates    float64 // number of updates
	// MPI runs bucket updates and exchanges them with all ranks every
	// BucketSize updates (HPCC MPI RandomAccess structure).
	MPI        bool
	BucketSize float64
}

func (p *Params) setDefaults() {
	if p.TableBytes == 0 {
		p.TableBytes = 64 << 20
	}
	if p.Updates == 0 {
		p.Updates = 4 * p.TableBytes / 8
	}
	if p.BucketSize == 0 {
		p.BucketSize = 1024
	}
}

// Run executes the simulated RandomAccess on one rank (and, in MPI mode,
// exchanges update buckets with all ranks). Reports GUPS per rank.
func Run(r *mpi.Rank, p Params) {
	p.setDefaults()
	table := r.Alloc("rnda.table", p.TableBytes)

	r.Barrier()
	start := r.Now()
	if !p.MPI || r.Size() == 1 {
		// Local: independent random updates; read-modify-write means
		// each update touches its line twice, but the second touch is
		// a cache hit, so one latency-bound touch per update.
		r.Access(mem.Access{Region: table, Pattern: mem.Random, Touches: p.Updates})
	} else {
		// MPI: rounds of local bucket fill + alltoall of updates bound
		// for other ranks + application of received updates.
		perRank := p.Updates / float64(r.Size())
		rounds := int(perRank / p.BucketSize)
		if rounds < 1 {
			rounds = 1
		}
		perRound := perRank / float64(rounds)
		own := 1.0 / float64(r.Size())
		for i := 0; i < rounds; i++ {
			// Updates destined for each peer: 8 bytes per update.
			r.Alltoall(perRound * (1 - own) / float64(r.Size()-1) * 8)
			r.Access(mem.Access{Region: table, Pattern: mem.Random, Touches: perRound})
		}
	}
	elapsed := r.Now() - start
	perRank := p.Updates
	if p.MPI {
		perRank = p.Updates / float64(r.Size())
	}
	r.Report(MetricGUPS, perRank/elapsed/1e9)
}
