package rnda

import (
	"testing"
	"testing/quick"

	"multicore/internal/affinity"
	"multicore/internal/machine"
	"multicore/internal/mem"
	"multicore/internal/mpi"
	"multicore/internal/topology"
)

func TestNextRandomIsNonTrivial(t *testing.T) {
	seen := map[uint64]bool{}
	v := uint64(1)
	for i := 0; i < 1000; i++ {
		v = NextRandom(v)
		if seen[v] {
			t.Fatalf("random stream cycled after %d steps", i)
		}
		seen[v] = true
	}
}

func TestUpdateVerifyRoundTrip(t *testing.T) {
	tbl := NewTable(12)
	end := tbl.Update(1, 50000)
	if end == 1 {
		t.Fatal("stream did not advance")
	}
	if errs := tbl.Verify(1, 50000); errs != 0 {
		t.Fatalf("serial RandomAccess verify found %d errors", errs)
	}
}

func TestVerifyPropertyAcrossSeeds(t *testing.T) {
	f := func(seed uint64, countRaw uint16) bool {
		if seed == 0 {
			seed = 1
		}
		count := int(countRaw)%5000 + 1
		tbl := NewTable(10)
		tbl.Update(seed, count)
		return tbl.Verify(seed, count) == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func TestCorruptionIsDetected(t *testing.T) {
	tbl := NewTable(10)
	tbl.Update(1, 10000)
	tbl.Data[5] ^= 0xdeadbeef
	if errs := tbl.Verify(1, 10000); errs == 0 {
		t.Fatal("verify missed a corrupted entry")
	}
}

func bind(cores ...int) []affinity.Binding {
	b := make([]affinity.Binding, len(cores))
	for i, c := range cores {
		b[i] = affinity.Binding{Core: topology.CoreID(c), MemPolicy: mem.LocalAlloc}
	}
	return b
}

func TestSimLocalGUPSIsLatencyBound(t *testing.T) {
	spec := machine.DMZ()
	res := mpi.Run(mpi.Config{Spec: spec, Bindings: bind(0)}, func(r *mpi.Rank) {
		Run(r, Params{TableBytes: 64 << 20, Updates: 1e6})
	})
	gups := res.Max(MetricGUPS)
	// MLP 4 over ~90ns: ~0.044 GUPS ceiling.
	if gups < 0.01 || gups > 0.08 {
		t.Fatalf("local GUPS = %v, outside plausible band", gups)
	}
}

func TestSimStarRAGainsPerSocket(t *testing.T) {
	// Paper Fig 11: RandomAccess is latency bound, so the second core
	// per socket yields a net gain (Single:Star ratio < 2).
	spec := machine.Longs()
	single := mpi.Run(mpi.Config{Spec: spec, Bindings: bind(0)}, func(r *mpi.Rank) {
		Run(r, Params{TableBytes: 32 << 20, Updates: 4e5})
	}).Sum(MetricGUPS)
	star := mpi.Run(mpi.Config{Spec: spec, Bindings: bind(0, 1)}, func(r *mpi.Rank) {
		Run(r, Params{TableBytes: 32 << 20, Updates: 4e5})
	}).Sum(MetricGUPS)
	if star <= single*1.2 {
		t.Fatalf("second core should gain for latency-bound RA: single=%v star=%v", single, star)
	}
}

func TestSimMPIRASysVPenalty(t *testing.T) {
	// Paper: MPI RandomAccess sends small messages, so the SysV
	// sub-layer's latency collapses its performance.
	run := func(impl *mpi.Impl) float64 {
		res := mpi.Run(mpi.Config{Spec: machine.Longs(), Impl: impl, Bindings: bind(0, 2, 4, 6)},
			func(r *mpi.Rank) {
				Run(r, Params{TableBytes: 32 << 20, Updates: 4e5, MPI: true})
			})
		return res.Max(MetricGUPS)
	}
	usysv := run(mpi.LAM().WithSublayer(mpi.USysV()))
	sysv := run(mpi.LAM().WithSublayer(mpi.SysV()))
	if sysv >= usysv*0.7 {
		t.Fatalf("SysV MPI-RA (%v) should be far below USysV (%v)", sysv, usysv)
	}
}
