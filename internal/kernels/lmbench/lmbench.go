// Package lmbench implements the LMbench lat_mem_rd memory-latency probe
// the paper's micro-benchmark section builds on (Section 3.1 uses the
// LMbench STREAM implementation; lat_mem_rd is its companion): a pointer
// chase over a working set swept from cache-resident to memory-resident
// sizes, exposing each level of the hierarchy and the NUMA distance of the
// backing node.
package lmbench

import (
	"math/rand"

	"multicore/internal/mem"
	"multicore/internal/mpi"
)

// BuildChain creates a random cyclic pointer chain of n entries (the real
// lat_mem_rd structure, used by the correctness tests and host-side
// benchmarks).
func BuildChain(n int, seed int64) []int {
	if n <= 0 {
		panic("lmbench: chain length must be positive")
	}
	perm := rand.New(rand.NewSource(seed)).Perm(n)
	next := make([]int, n)
	for i := 0; i < n-1; i++ {
		next[perm[i]] = perm[i+1]
	}
	next[perm[n-1]] = perm[0]
	return next
}

// WalkChain follows the chain for `steps` hops starting at entry 0 and
// returns the final index; the data dependency defeats any reordering.
func WalkChain(next []int, steps int) int {
	idx := 0
	for i := 0; i < steps; i++ {
		idx = next[idx]
	}
	return idx
}

// ChainIsCyclic reports whether the chain visits every entry exactly once
// before returning to the start (the lat_mem_rd invariant).
func ChainIsCyclic(next []int) bool {
	seen := make([]bool, len(next))
	idx := 0
	for i := 0; i < len(next); i++ {
		if seen[idx] {
			return false
		}
		seen[idx] = true
		idx = next[idx]
	}
	return idx == 0
}

// Point is one measured latency point.
type Point struct {
	WorkingSetBytes float64
	LatencySeconds  float64 // per dependent load
}

// MetricPrefix prefixes per-size Report keys.
const MetricPrefix = "lmbench.lat."

// Params configures a simulated latency sweep.
type Params struct {
	// Sizes are the working-set sizes to probe (bytes). Default: 4 KiB
	// to 64 MiB by powers of four.
	Sizes []float64
	// Touches per size (default 20000).
	Touches float64
}

func (p *Params) setDefaults() {
	if len(p.Sizes) == 0 {
		for s := 4.0 * 1024; s <= 64*1024*1024; s *= 4 {
			p.Sizes = append(p.Sizes, s)
		}
	}
	if p.Touches == 0 {
		p.Touches = 20000
	}
}

// Run executes the simulated sweep on one rank and returns the latency
// curve. Each size allocates a fresh region (placed by the rank's policy)
// and chases a dependent chain through it twice: one warm-up pass, one
// measured pass.
func Run(r *mpi.Rank, p Params) []Point {
	p.setDefaults()
	out := make([]Point, 0, len(p.Sizes))
	for _, size := range p.Sizes {
		region := r.Alloc("lmbench.chain", size)
		// Warm-up: populate the cache model's residency.
		r.Access(mem.Access{Region: region, Pattern: mem.Chase, Touches: p.Touches})
		start := r.Now()
		r.Access(mem.Access{Region: region, Pattern: mem.Chase, Touches: p.Touches})
		lat := (r.Now() - start) / p.Touches
		out = append(out, Point{WorkingSetBytes: size, LatencySeconds: lat})
	}
	return out
}
