package lmbench

import (
	"testing"
	"testing/quick"

	"multicore/internal/affinity"
	"multicore/internal/machine"
	"multicore/internal/mem"
	"multicore/internal/mpi"
	"multicore/internal/units"
)

func TestChainIsCyclicPermutation(t *testing.T) {
	f := func(seed int64, nRaw uint16) bool {
		n := int(nRaw)%2000 + 1
		return ChainIsCyclic(BuildChain(n, seed))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestWalkChainReturnsToStart(t *testing.T) {
	n := 1024
	chain := BuildChain(n, 7)
	if idx := WalkChain(chain, n); idx != 0 {
		t.Fatalf("walk of length n ended at %d, want 0", idx)
	}
	if idx := WalkChain(chain, 2*n); idx != 0 {
		t.Fatalf("walk of length 2n ended at %d, want 0", idx)
	}
}

func TestBadChainDetected(t *testing.T) {
	chain := BuildChain(64, 1)
	chain[5] = 5 // self-loop breaks the cycle
	if ChainIsCyclic(chain) {
		t.Fatal("corrupted chain not detected")
	}
}

func runSweep(t *testing.T, spec *machine.Spec, pol mem.Policy, bind []int) []Point {
	t.Helper()
	var pts []Point
	b := []affinity.Binding{{Core: 0, MemPolicy: pol, BindNodes: bind}}
	mpi.Run(mpi.Config{Spec: spec, Bindings: b}, func(r *mpi.Rank) {
		pts = Run(r, Params{})
	})
	return pts
}

func TestLatencyCurveShape(t *testing.T) {
	pts := runSweep(t, machine.DMZ(), mem.LocalAlloc, nil)
	// Monotone non-decreasing with working set, with a clear cache-to-
	// memory transition around the 1.1 MiB capacity.
	var inCache, inMem float64
	for _, p := range pts {
		if p.WorkingSetBytes <= 256*units.KB {
			inCache = p.LatencySeconds
		}
		if p.WorkingSetBytes >= 16*units.MB {
			inMem = p.LatencySeconds
		}
	}
	if inMem < 10*inCache {
		t.Fatalf("memory latency %v should dwarf cache latency %v", inMem, inCache)
	}
	// Memory plateau near the spec's local round trip (90 ns on DMZ).
	if inMem < 60*units.Nanosecond || inMem > 120*units.Nanosecond {
		t.Fatalf("memory-resident latency = %v, want ~90 ns", inMem)
	}
}

func TestRemoteLatencyPlateauHigher(t *testing.T) {
	local := runSweep(t, machine.DMZ(), mem.LocalAlloc, nil)
	remote := runSweep(t, machine.DMZ(), mem.Membind, []int{1})
	last := len(local) - 1
	if remote[last].LatencySeconds <= local[last].LatencySeconds {
		t.Fatalf("remote plateau %v should exceed local %v",
			remote[last].LatencySeconds, local[last].LatencySeconds)
	}
}

func TestLongsLatencyAboveDMZ(t *testing.T) {
	dmz := runSweep(t, machine.DMZ(), mem.LocalAlloc, nil)
	longs := runSweep(t, machine.Longs(), mem.LocalAlloc, nil)
	last := len(dmz) - 1
	// The 8-socket probe scheme raises even local latency.
	if longs[last].LatencySeconds <= dmz[last].LatencySeconds {
		t.Fatalf("Longs local latency %v should exceed DMZ %v",
			longs[last].LatencySeconds, dmz[last].LatencySeconds)
	}
}
