package fft

import (
	"math"
	"math/cmplx"
	"math/rand"
	"testing"
)

func TestForward3DImpulse(t *testing.T) {
	nx, ny, nz := 8, 4, 2
	data := make([]complex128, nx*ny*nz)
	data[0] = 1
	Forward3D(data, nx, ny, nz)
	for i, v := range data {
		if cmplx.Abs(v-1) > 1e-12 {
			t.Fatalf("impulse FFT[%d] = %v, want 1", i, v)
		}
	}
}

func TestRoundTrip3D(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	nx, ny, nz := 16, 8, 4
	data := make([]complex128, nx*ny*nz)
	for i := range data {
		data[i] = complex(rng.NormFloat64(), rng.NormFloat64())
	}
	orig := append([]complex128(nil), data...)
	Forward3D(data, nx, ny, nz)
	Inverse3D(data, nx, ny, nz)
	for i := range data {
		if cmplx.Abs(data[i]-orig[i]) > 1e-9*(1+cmplx.Abs(orig[i])) {
			t.Fatalf("round trip differs at %d: %v vs %v", i, data[i], orig[i])
		}
	}
}

func TestForward3DMatchesNaivePlanewave(t *testing.T) {
	// A single plane wave exp(2*pi*i*(k.x)/n) transforms to one spike.
	nx, ny, nz := 8, 8, 8
	kx, ky, kz := 3, 5, 1
	data := make([]complex128, nx*ny*nz)
	for z := 0; z < nz; z++ {
		for y := 0; y < ny; y++ {
			for x := 0; x < nx; x++ {
				phase := 2 * math.Pi * (float64(kx*x)/float64(nx) +
					float64(ky*y)/float64(ny) + float64(kz*z)/float64(nz))
				data[z*nx*ny+y*nx+x] = cmplx.Exp(complex(0, phase))
			}
		}
	}
	Forward3D(data, nx, ny, nz)
	n := float64(nx * ny * nz)
	spike := kz*nx*ny + ky*nx + kx
	for i, v := range data {
		want := complex(0, 0)
		if i == spike {
			want = complex(n, 0)
		}
		if cmplx.Abs(v-want) > 1e-8*n {
			t.Fatalf("plane wave spectrum wrong at %d: %v, want %v", i, v, want)
		}
	}
}

func TestParseval3D(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	nx, ny, nz := 8, 16, 4
	data := make([]complex128, nx*ny*nz)
	timeE := 0.0
	for i := range data {
		data[i] = complex(rng.NormFloat64(), rng.NormFloat64())
		timeE += real(data[i])*real(data[i]) + imag(data[i])*imag(data[i])
	}
	Forward3D(data, nx, ny, nz)
	freqE := 0.0
	for _, v := range data {
		freqE += real(v)*real(v) + imag(v)*imag(v)
	}
	freqE /= float64(nx * ny * nz)
	if math.Abs(timeE-freqE) > 1e-8*timeE {
		t.Fatalf("Parseval violated: %v vs %v", timeE, freqE)
	}
}

func TestMismatched3DSizePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Forward3D(make([]complex128, 10), 4, 4, 4)
}
