package fft

import (
	"math"
	"math/cmplx"
	"math/rand"
	"multicore/internal/topology"
	"testing"
	"testing/quick"

	"multicore/internal/affinity"
	"multicore/internal/machine"
	"multicore/internal/mem"
	"multicore/internal/mpi"
	"multicore/internal/units"
)

func randSignal(rng *rand.Rand, n int) []complex128 {
	x := make([]complex128, n)
	for i := range x {
		x[i] = complex(rng.NormFloat64(), rng.NormFloat64())
	}
	return x
}

func TestForwardMatchesNaiveDFT(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for _, n := range []int{1, 2, 4, 8, 64, 256} {
		x := randSignal(rng, n)
		want := NaiveDFT(x)
		Forward(x)
		for i := range x {
			if cmplx.Abs(x[i]-want[i]) > 1e-8*(1+cmplx.Abs(want[i])) {
				t.Fatalf("n=%d: FFT[%d] = %v, DFT = %v", n, i, x[i], want[i])
			}
		}
	}
}

func TestRoundTripProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 << (1 + rng.Intn(9))
		x := randSignal(rng, n)
		orig := append([]complex128(nil), x...)
		Forward(x)
		Inverse(x)
		for i := range x {
			if cmplx.Abs(x[i]-orig[i]) > 1e-9*(1+cmplx.Abs(orig[i])) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestParsevalProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	n := 512
	x := randSignal(rng, n)
	timeEnergy := 0.0
	for _, v := range x {
		timeEnergy += real(v)*real(v) + imag(v)*imag(v)
	}
	Forward(x)
	freqEnergy := 0.0
	for _, v := range x {
		freqEnergy += real(v)*real(v) + imag(v)*imag(v)
	}
	freqEnergy /= float64(n)
	if math.Abs(timeEnergy-freqEnergy) > 1e-8*timeEnergy {
		t.Fatalf("Parseval violated: %v vs %v", timeEnergy, freqEnergy)
	}
}

func TestImpulseResponse(t *testing.T) {
	n := 16
	x := make([]complex128, n)
	x[0] = 1
	Forward(x)
	for i, v := range x {
		if cmplx.Abs(v-1) > 1e-12 {
			t.Fatalf("impulse FFT[%d] = %v, want 1", i, v)
		}
	}
}

func TestNonPowerOfTwoPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Forward(make([]complex128, 3))
}

func TestFlopsFormula(t *testing.T) {
	if Flops(1) != 0 {
		t.Fatal("Flops(1) should be 0")
	}
	if got, want := Flops(1024), 5.0*1024*10; got != want {
		t.Fatalf("Flops(1024) = %v, want %v", got, want)
	}
}

func bindingsOn(cores ...int) []affinity.Binding {
	b := make([]affinity.Binding, len(cores))
	for i, c := range cores {
		b[i] = affinity.Binding{Core: topology.CoreID(c), MemPolicy: mem.LocalAlloc}
	}
	return b
}

func TestSimLocalFFTRate(t *testing.T) {
	spec := machine.DMZ()
	res := mpi.Run(mpi.Config{Spec: spec, Bindings: bindingsOn(0)}, func(r *mpi.Rank) {
		RunLocal(r, LocalParams{N: 1 << 20})
	})
	gf := res.Max(MetricFlops)
	// FFT sustains a modest fraction of peak; sanity-check the range.
	if gf < 0.05*spec.PeakFlops() || gf > 0.4*spec.PeakFlops() {
		t.Fatalf("FFT rate = %s (peak %s), outside plausible band",
			units.Flops(gf), units.Flops(spec.PeakFlops()))
	}
}

func TestSimStarFFTNearlyMatchesSingle(t *testing.T) {
	// Paper Fig 9: FFT is cache-friendly enough that Star mode is only
	// slightly below Single mode.
	spec := machine.DMZ()
	single := mpi.Run(mpi.Config{Spec: spec, Bindings: bindingsOn(0)}, func(r *mpi.Rank) {
		RunLocal(r, LocalParams{N: 1 << 20})
	}).Max(MetricFlops)
	star := mpi.Run(mpi.Config{Spec: spec, Bindings: bindingsOn(0, 1, 2, 3)}, func(r *mpi.Rank) {
		RunLocal(r, LocalParams{N: 1 << 20})
	}).Mean(MetricFlops)
	ratio := star / single
	if ratio < 0.6 || ratio > 1.02 {
		t.Fatalf("star/single FFT ratio = %.2f, want slightly under 1", ratio)
	}
}

func TestSimDistFFTScales(t *testing.T) {
	spec := machine.DMZ()
	timeFor := func(cores ...int) float64 {
		res := mpi.Run(mpi.Config{Spec: spec, Bindings: bindingsOn(cores...)}, func(r *mpi.Rank) {
			RunDist(r, DistParams{TotalN: 1 << 22, Iters: 1})
		})
		return res.Time
	}
	t1 := timeFor(0)
	t4 := timeFor(0, 1, 2, 3)
	speedup := t1 / t4
	// FT-like: sublinear but real speedup on 4 cores (paper Table 4:
	// ~0.64 efficiency at 4 cores on DMZ).
	if speedup < 1.5 || speedup > 4 {
		t.Fatalf("dist FFT speedup on 4 cores = %.2f", speedup)
	}
}
