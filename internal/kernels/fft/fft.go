// Package fft implements the fast Fourier transform kernels used by the
// paper's workloads: a real radix-2 complex FFT for correctness testing,
// plus simulated drivers for the HPCC single/star FFT and the distributed
// transpose-based FFT that NAS FT and AMBER PME build on.
package fft

import (
	"math"
	"math/bits"
	"math/cmplx"
)

// Forward computes the in-place forward FFT of x (len must be a power of
// two) using the iterative radix-2 Cooley-Tukey algorithm.
func Forward(x []complex128) { transform(x, -1) }

// Inverse computes the in-place inverse FFT of x, including the 1/n
// normalization.
func Inverse(x []complex128) {
	transform(x, +1)
	n := complex(float64(len(x)), 0)
	for i := range x {
		x[i] /= n
	}
}

func transform(x []complex128, sign float64) {
	n := len(x)
	if n == 0 {
		return
	}
	if n&(n-1) != 0 {
		panic("fft: length must be a power of two")
	}
	// Bit-reversal permutation.
	shift := 64 - uint(bits.TrailingZeros(uint(n)))
	for i := 0; i < n; i++ {
		j := int(bits.Reverse64(uint64(i)) >> shift)
		if j > i {
			x[i], x[j] = x[j], x[i]
		}
	}
	for size := 2; size <= n; size <<= 1 {
		half := size / 2
		step := sign * 2 * math.Pi / float64(size)
		for start := 0; start < n; start += size {
			for k := 0; k < half; k++ {
				w := cmplx.Exp(complex(0, step*float64(k)))
				a := x[start+k]
				b := x[start+k+half] * w
				x[start+k] = a + b
				x[start+k+half] = a - b
			}
		}
	}
}

// NaiveDFT computes the forward DFT directly in O(n^2); it is the test
// oracle for Forward.
func NaiveDFT(x []complex128) []complex128 {
	n := len(x)
	out := make([]complex128, n)
	for k := 0; k < n; k++ {
		var sum complex128
		for j := 0; j < n; j++ {
			angle := -2 * math.Pi * float64(k) * float64(j) / float64(n)
			sum += x[j] * cmplx.Exp(complex(0, angle))
		}
		out[k] = sum
	}
	return out
}

// Flops returns the standard operation-count estimate for a complex FFT
// of length n: 5 n log2 n.
func Flops(n float64) float64 {
	if n <= 1 {
		return 0
	}
	return 5 * n * math.Log2(n)
}
