package fft

import (
	"math"

	"multicore/internal/mem"
	"multicore/internal/mpi"
)

// Report keys for simulated FFT runs.
const (
	MetricFlops = "fft.flops" // per-rank FFT flop rate (flop/s)
)

// computeEff is the in-cache efficiency of a tuned FFT butterfly kernel
// (FFTs sustain ~20-25% of peak on Opteron-class cores).
const computeEff = 0.22

// LocalParams configures a simulated single-rank FFT.
type LocalParams struct {
	N     int // transform length (complex elements)
	Iters int
}

// RunLocal executes iters local FFTs of length N on one rank and reports
// the flop rate (the HPCC Single/Star FFT kernel).
func RunLocal(r *mpi.Rank, p LocalParams) {
	if p.N <= 0 {
		panic("fft: length must be positive")
	}
	if p.Iters == 0 {
		p.Iters = 3
	}
	bytes := 16 * float64(p.N)
	data := r.Alloc("fft.data", bytes)

	localPass(r, data, float64(p.N)) // warm-up

	start := r.Now()
	for i := 0; i < p.Iters; i++ {
		localPass(r, data, float64(p.N))
	}
	elapsed := r.Now() - start
	r.Report(MetricFlops, Flops(float64(p.N))*float64(p.Iters)/elapsed)
}

// localPass models one FFT over a region: an out-of-cache transform makes
// several blocked passes over the data (four-step decomposition), each a
// stream read + write; the butterflies overlap the traffic.
func localPass(r *mpi.Rank, data *mem.Region, n float64) {
	bytes := 16 * n
	passes := memoryPasses(r, n)
	r.Overlap(Flops(n), computeEff,
		mem.Access{Region: data, Pattern: mem.Stream, Bytes: bytes * passes},
		mem.Access{Region: data, Pattern: mem.StreamWrite, Bytes: bytes * passes},
	)
}

// memoryPasses estimates how many sweeps over the dataset an out-of-cache
// FFT performs: log(n) levels grouped into blocks that fit in cache.
func memoryPasses(r *mpi.Rank, n float64) float64 {
	cacheElems := r.Machine().Spec.CacheBytes / 16
	if n <= cacheElems {
		return 1
	}
	return math.Ceil(math.Log2(n) / math.Log2(cacheElems))
}

// DistParams configures a distributed transpose-based 1D FFT.
type DistParams struct {
	TotalN int // global transform length
	Iters  int
}

// RunDist executes a distributed FFT across all ranks (the HPCC MPIFFT
// pattern): local FFTs on N/p points, a global transpose (alltoall),
// a twiddle pass, local FFTs again, and a final transpose.
func RunDist(r *mpi.Rank, p DistParams) {
	if p.TotalN <= 0 {
		panic("fft: total length must be positive")
	}
	if p.Iters == 0 {
		p.Iters = 2
	}
	nLocal := float64(p.TotalN) / float64(r.Size())
	bytes := 16 * nLocal
	data := r.Alloc("fft.dist", bytes)
	scratch := r.Alloc("fft.scratch", bytes)

	r.Barrier()
	start := r.Now()
	for i := 0; i < p.Iters; i++ {
		distPass(r, data, scratch, nLocal)
	}
	elapsed := r.Now() - start
	// Flop count of the global transform, attributed per rank.
	r.Report(MetricFlops, Flops(float64(p.TotalN))/float64(r.Size())*float64(p.Iters)/elapsed)
}

func distPass(r *mpi.Rank, data, scratch *mem.Region, nLocal float64) {
	p := float64(r.Size())
	bytes := 16 * nLocal
	// Step 1: local FFTs over rows.
	localSubPass(r, data, nLocal)
	// Step 2: global transpose.
	if r.Size() > 1 {
		r.Alltoall(bytes / p)
	}
	// Step 3: twiddle multiplication (one sweep).
	r.Overlap(6*nLocal, computeEff,
		mem.Access{Region: scratch, Pattern: mem.Stream, Bytes: bytes},
		mem.Access{Region: scratch, Pattern: mem.StreamWrite, Bytes: bytes},
	)
	// Step 4: local FFTs over columns.
	localSubPass(r, scratch, nLocal)
	// Step 5: transpose back.
	if r.Size() > 1 {
		r.Alltoall(bytes / p)
	}
}

func localSubPass(r *mpi.Rank, region *mem.Region, n float64) {
	bytes := 16 * n
	passes := memoryPasses(r, n)
	r.Overlap(Flops(n), computeEff,
		mem.Access{Region: region, Pattern: mem.Stream, Bytes: bytes * passes},
		mem.Access{Region: region, Pattern: mem.StreamWrite, Bytes: bytes * passes},
	)
}
