package fft

// Forward3D computes the in-place forward 3-D FFT of a nx*ny*nz array in
// row-major order (x fastest): the separable composition of 1-D
// transforms along each axis — the same structure the NAS FT benchmark
// and AMBER's PME reciprocal sum use.
func Forward3D(data []complex128, nx, ny, nz int) { transform3D(data, nx, ny, nz, Forward) }

// Inverse3D computes the in-place inverse 3-D FFT, including the full
// 1/(nx*ny*nz) normalization.
func Inverse3D(data []complex128, nx, ny, nz int) { transform3D(data, nx, ny, nz, Inverse) }

func transform3D(data []complex128, nx, ny, nz int, f func([]complex128)) {
	if len(data) != nx*ny*nz {
		panic("fft: data length does not match 3-D dimensions")
	}
	// Along x: contiguous runs.
	for base := 0; base < len(data); base += nx {
		f(data[base : base+nx])
	}
	// Along y: stride nx within each z-plane.
	line := make([]complex128, ny)
	for z := 0; z < nz; z++ {
		plane := data[z*nx*ny : (z+1)*nx*ny]
		for x := 0; x < nx; x++ {
			for y := 0; y < ny; y++ {
				line[y] = plane[y*nx+x]
			}
			f(line[:ny])
			for y := 0; y < ny; y++ {
				plane[y*nx+x] = line[y]
			}
		}
	}
	// Along z: stride nx*ny.
	col := make([]complex128, nz)
	stride := nx * ny
	for xy := 0; xy < nx*ny; xy++ {
		for z := 0; z < nz; z++ {
			col[z] = data[z*stride+xy]
		}
		f(col[:nz])
		for z := 0; z < nz; z++ {
			data[z*stride+xy] = col[z]
		}
	}
}
