package stream

import (
	"math"
	"testing"
	"testing/quick"

	"multicore/internal/affinity"
	"multicore/internal/machine"
	"multicore/internal/mem"
	"multicore/internal/mpi"
	"multicore/internal/topology"
	"multicore/internal/units"
)

func TestTriadReference(t *testing.T) {
	b := []float64{1, 2, 3}
	c := []float64{10, 20, 30}
	a := make([]float64, 3)
	Triad(a, b, c, 2)
	want := []float64{21, 42, 63}
	for i := range want {
		if a[i] != want[i] {
			t.Fatalf("a = %v, want %v", a, want)
		}
	}
}

func TestKernelsAgainstEachOther(t *testing.T) {
	f := func(vals []float64, scalar float64) bool {
		if len(vals) == 0 || math.IsNaN(scalar) || math.IsInf(scalar, 0) {
			return true
		}
		for _, v := range vals {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return true
			}
		}
		n := len(vals)
		b := vals
		c := make([]float64, n)
		Scale(c, b, scalar) // c = s*b
		sum := make([]float64, n)
		Add(sum, b, c) // sum = b + s*b
		tri := make([]float64, n)
		Triad(tri, b, b, scalar) // tri = b + s*b
		for i := range sum {
			if sum[i] != tri[i] {
				return false
			}
		}
		cp := make([]float64, n)
		Copy(cp, tri)
		for i := range cp {
			if cp[i] != tri[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestMismatchedLengthsPanic(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Triad(make([]float64, 2), make([]float64, 3), make([]float64, 3), 1)
}

func runTriadOn(spec *machine.Spec, cores ...topology.CoreID) *mpi.Result {
	bindings := make([]affinity.Binding, len(cores))
	for i, c := range cores {
		bindings[i] = affinity.Binding{Core: c, MemPolicy: mem.LocalAlloc}
	}
	return mpi.Run(mpi.Config{Spec: spec, Bindings: bindings}, func(r *mpi.Rank) {
		RunTriad(r, Params{VectorBytes: 8 << 20, Iters: 2})
	})
}

func TestSimTriadSingleCoreDMZ(t *testing.T) {
	res := runTriadOn(machine.DMZ(), 0)
	bw := res.Max(MetricBandwidth)
	// Write-allocate makes the actual traffic 4/3 of the STREAM-counted
	// 24 B per element, so reported bandwidth sits below the 2.8 GB/s
	// issue limit.
	if bw < 1.6*units.Giga || bw > 2.8*units.Giga {
		t.Fatalf("DMZ single-core triad = %s, want ~2.1 GB/s", units.Rate(bw))
	}
}

func TestSimTriadSecondCoreFlat(t *testing.T) {
	one := runTriadOn(machine.DMZ(), 0).Sum(MetricBandwidth)
	two := runTriadOn(machine.DMZ(), 0, 1).Sum(MetricBandwidth)
	gain := two / one
	if gain < 0.8 || gain > 1.3 {
		t.Fatalf("second-core triad gain = %.2fx, want ~1x", gain)
	}
}

func TestSimTriadSocketScaling(t *testing.T) {
	one := runTriadOn(machine.DMZ(), 0).Sum(MetricBandwidth)
	two := runTriadOn(machine.DMZ(), 0, 2).Sum(MetricBandwidth)
	if g := two / one; g < 1.85 || g > 2.15 {
		t.Fatalf("cross-socket triad gain = %.2fx, want ~2x", g)
	}
}

func TestSimTriadLongsSecondCoreLoss(t *testing.T) {
	one := runTriadOn(machine.Longs(), 0).Sum(MetricBandwidth)
	two := runTriadOn(machine.Longs(), 0, 1).Sum(MetricBandwidth)
	// Paper Fig 10: STREAM on both cores of a Longs socket loses
	// per-socket bandwidth.
	if two >= one {
		t.Fatalf("Longs second core gained bandwidth: one=%s two=%s",
			units.Rate(one), units.Rate(two))
	}
}

func TestSimTriadInterleavePenalty(t *testing.T) {
	spec := machine.Longs()
	run := func(pol mem.Policy) float64 {
		bindings := []affinity.Binding{{Core: 0, MemPolicy: pol}}
		res := mpi.Run(mpi.Config{Spec: spec, Bindings: bindings}, func(r *mpi.Rank) {
			RunTriad(r, Params{VectorBytes: 8 << 20, Iters: 2})
		})
		return res.Max(MetricBandwidth)
	}
	local := run(mem.LocalAlloc)
	inter := run(mem.Interleave)
	if inter >= local {
		t.Fatalf("interleaved triad %s not slower than local %s",
			units.Rate(inter), units.Rate(local))
	}
}

func TestRunAllReportsFourKernels(t *testing.T) {
	res := mpi.Run(mpi.Config{
		Spec:     machine.DMZ(),
		Bindings: []affinity.Binding{{Core: 0, MemPolicy: mem.LocalAlloc}},
	}, func(r *mpi.Rank) {
		RunAll(r, Params{VectorBytes: 8 << 20, Iters: 2})
	})
	for _, key := range []string{MetricCopy, MetricScale, MetricAdd, MetricBandwidth} {
		if res.Max(key) <= 0 {
			t.Fatalf("kernel %s reported no bandwidth", key)
		}
	}
	// Copy and Scale count 16 B/element over two streams; Add and Triad
	// count 24 B over three. The four kernels land in the same ballpark.
	copyBW := res.Max(MetricCopy)
	triad := res.Max(MetricBandwidth)
	if ratio := copyBW / triad; ratio < 0.5 || ratio > 2 {
		t.Fatalf("copy/triad ratio %.2f implausible", ratio)
	}
}
