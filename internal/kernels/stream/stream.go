// Package stream implements the STREAM triad benchmark (McCalpin), both as
// real array arithmetic for correctness testing and as a simulated driver
// measuring sustainable memory bandwidth on a machine model (paper
// Section 3.1, Figures 2-3; HPCC STREAM, Figure 10).
package stream

import (
	"fmt"

	"multicore/internal/mem"
	"multicore/internal/mpi"
)

// Triad computes a[i] = b[i] + scalar*c[i] over real slices (the reference
// kernel used by unit tests).
func Triad(a, b, c []float64, scalar float64) {
	if len(a) != len(b) || len(b) != len(c) {
		panic("stream: mismatched slice lengths")
	}
	for i := range a {
		a[i] = b[i] + scalar*c[i]
	}
}

// Copy computes a[i] = b[i].
func Copy(a, b []float64) {
	if len(a) != len(b) {
		panic("stream: mismatched slice lengths")
	}
	copy(a, b)
}

// Scale computes a[i] = scalar*b[i].
func Scale(a, b []float64, scalar float64) {
	if len(a) != len(b) {
		panic("stream: mismatched slice lengths")
	}
	for i := range a {
		a[i] = scalar * b[i]
	}
}

// Add computes a[i] = b[i] + c[i].
func Add(a, b, c []float64) {
	if len(a) != len(b) || len(b) != len(c) {
		panic("stream: mismatched slice lengths")
	}
	for i := range a {
		a[i] = b[i] + c[i]
	}
}

// Params configures a simulated STREAM run.
type Params struct {
	// VectorBytes is the size of each of the three vectors. STREAM
	// requires vectors well beyond cache; the default is 32 MiB.
	VectorBytes float64
	// Iters is the number of triad sweeps (default 4).
	Iters int
}

func (p *Params) setDefaults() {
	if p.VectorBytes == 0 {
		p.VectorBytes = 32 << 20
	}
	if p.Iters == 0 {
		p.Iters = 4
	}
}

// Report keys for per-rank bandwidth (B/s) of the four STREAM kernels,
// using McCalpin's byte-counting convention (Copy/Scale move 16 B per
// element, Add/Triad 24 B).
const (
	MetricBandwidth = "stream.triad.bw"
	MetricCopy      = "stream.copy.bw"
	MetricScale     = "stream.scale.bw"
	MetricAdd       = "stream.add.bw"
)

// RunTriad executes the simulated triad on one rank and reports its
// bandwidth. Use it as (part of) an mpi.Run body; ranks run independently
// (STREAM has no communication).
func RunTriad(r *mpi.Rank, p Params) {
	p.setDefaults()
	a := r.Alloc("stream.a", p.VectorBytes)
	b := r.Alloc("stream.b", p.VectorBytes)
	c := r.Alloc("stream.c", p.VectorBytes)

	// Untimed first touch / warm-up sweep, as the real benchmark does.
	sweep(r, a, b, c, p.VectorBytes)

	start := r.Now()
	for i := 0; i < p.Iters; i++ {
		sweep(r, a, b, c, p.VectorBytes)
	}
	elapsed := r.Now() - start
	moved := 3 * p.VectorBytes * float64(p.Iters)
	r.Report(MetricBandwidth, moved/elapsed)
}

func sweep(r *mpi.Rank, a, b, c *mem.Region, bytes float64) {
	// One triad pass: stream-read b and c, stream-write a, with the
	// multiply-add overlapped under the memory traffic.
	flops := 2 * bytes / 8
	r.Overlap(flops, 1.0,
		mem.Access{Region: b, Pattern: mem.Stream, Bytes: bytes},
		mem.Access{Region: c, Pattern: mem.Stream, Bytes: bytes},
		mem.Access{Region: a, Pattern: mem.StreamWrite, Bytes: bytes},
	)
}

// RunAll executes the full STREAM suite (Copy, Scale, Add, Triad) the way
// the real benchmark does, reporting each kernel's bandwidth with
// McCalpin's byte counting.
func RunAll(r *mpi.Rank, p Params) {
	p.setDefaults()
	a := r.Alloc("stream.a", p.VectorBytes)
	b := r.Alloc("stream.b", p.VectorBytes)
	c := r.Alloc("stream.c", p.VectorBytes)
	bytes := p.VectorBytes
	iters := float64(p.Iters)

	run := func(metric string, counted float64, pass func()) {
		pass() // warm-up
		start := r.Now()
		for i := 0; i < p.Iters; i++ {
			pass()
		}
		r.Report(metric, counted*iters/(r.Now()-start))
	}

	// Copy: c = a (read + write, 16 B/element counted).
	run(MetricCopy, 2*bytes, func() {
		r.Overlap(0, 1,
			mem.Access{Region: a, Pattern: mem.Stream, Bytes: bytes},
			mem.Access{Region: c, Pattern: mem.StreamWrite, Bytes: bytes})
	})
	// Scale: b = s*c.
	run(MetricScale, 2*bytes, func() {
		r.Overlap(bytes/8, 1,
			mem.Access{Region: c, Pattern: mem.Stream, Bytes: bytes},
			mem.Access{Region: b, Pattern: mem.StreamWrite, Bytes: bytes})
	})
	// Add: c = a + b.
	run(MetricAdd, 3*bytes, func() {
		r.Overlap(bytes/8, 1,
			mem.Access{Region: a, Pattern: mem.Stream, Bytes: bytes},
			mem.Access{Region: b, Pattern: mem.Stream, Bytes: bytes},
			mem.Access{Region: c, Pattern: mem.StreamWrite, Bytes: bytes})
	})
	// Triad: a = b + s*c.
	run(MetricBandwidth, 3*bytes, func() { sweep(r, a, b, c, bytes) })
}

// String describes the params for reports.
func (p Params) String() string {
	return fmt.Sprintf("triad vectors=%.0fMB iters=%d", p.VectorBytes/(1<<20), p.Iters)
}
