package ptrans

import (
	"math/rand"
	"testing"
	"testing/quick"

	"multicore/internal/affinity"
	"multicore/internal/machine"
	"multicore/internal/mem"
	"multicore/internal/mpi"
	"multicore/internal/topology"
)

func TestAddTranspose(t *testing.T) {
	n := 3
	a := make([]float64, n*n)
	b := []float64{
		1, 2, 3,
		4, 5, 6,
		7, 8, 9,
	}
	AddTranspose(a, b, n)
	want := []float64{
		1, 4, 7,
		2, 5, 8,
		3, 6, 9,
	}
	for i := range want {
		if a[i] != want[i] {
			t.Fatalf("a = %v, want %v", a, want)
		}
	}
}

func TestTransposeInvolution(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(16)
		b := make([]float64, n*n)
		for i := range b {
			b[i] = rng.NormFloat64()
		}
		tt := Transpose(Transpose(b, n), n)
		for i := range b {
			if tt[i] != b[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func bind(cores ...int) []affinity.Binding {
	b := make([]affinity.Binding, len(cores))
	for i, c := range cores {
		b[i] = affinity.Binding{Core: topology.CoreID(c), MemPolicy: mem.LocalAlloc}
	}
	return b
}

func TestSimPTRANSSysVPenalty(t *testing.T) {
	// Paper Fig 12: PTRANS shows extreme SysV vs USysV differences, with
	// spinlocks a clear win.
	run := func(impl *mpi.Impl) float64 {
		res := mpi.Run(mpi.Config{Spec: machine.Longs(), Impl: impl, Bindings: bind(0, 2, 4, 6, 8, 10, 12, 14)},
			func(r *mpi.Rank) {
				Run(r, Params{N: 1024, Iters: 1})
			})
		return res.Mean(MetricBandwidth)
	}
	usysv := run(mpi.LAM().WithSublayer(mpi.USysV()))
	sysv := run(mpi.LAM().WithSublayer(mpi.SysV()))
	if usysv <= sysv {
		t.Fatalf("USysV PTRANS (%v) should beat SysV (%v)", usysv, sysv)
	}
}

func TestSimPTRANSHotspotBufferHurts(t *testing.T) {
	// Paper Fig 12: localalloc degrades the sub-layers on PTRANS (all
	// segments land on one node).
	run := func(mode mpi.BufferMode) float64 {
		// 16 ranks with N=1024 keeps the exchanged blocks (8*N^2/p^2 =
		// 32 KB) inside the shared-segment pool, where placement
		// pathologies live.
		cores := make([]int, 16)
		for i := range cores {
			cores[i] = i
		}
		cfg := mpi.Config{
			Spec:     machine.Longs(),
			Impl:     mpi.LAM().WithSublayer(mpi.USysV()),
			Bindings: bind(cores...),
			BufMode:  mode,
		}
		res := mpi.Run(cfg, func(r *mpi.Rank) {
			Run(r, Params{N: 1024, Iters: 2})
		})
		return res.Time
	}
	spread := run(mpi.BufSpread)
	hot := run(mpi.BufHotspot)
	if hot <= spread {
		t.Fatalf("hotspot segments (%v) should slow PTRANS vs spread (%v)", hot, spread)
	}
}
