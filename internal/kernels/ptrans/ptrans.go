// Package ptrans implements the HPCC PTRANS benchmark (parallel matrix
// transpose, A = A + B^T): a real in-memory transpose for correctness and
// a simulated distributed driver that stresses the interconnect's
// bisection (paper Figure 12).
package ptrans

import (
	"multicore/internal/mem"
	"multicore/internal/mpi"
)

// AddTranspose computes A += B^T for n x n row-major matrices (the real
// kernel).
func AddTranspose(a, b []float64, n int) {
	if len(a) < n*n || len(b) < n*n {
		panic("ptrans: matrix buffers too small")
	}
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			a[i*n+j] += b[j*n+i]
		}
	}
}

// Transpose returns B^T (helper for tests).
func Transpose(b []float64, n int) []float64 {
	out := make([]float64, n*n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			out[j*n+i] = b[i*n+j]
		}
	}
	return out
}

// Report keys for simulated PTRANS runs.
const (
	MetricBandwidth = "ptrans.bw" // per-rank effective transpose bandwidth (B/s)
)

// Params configures a simulated PTRANS run.
type Params struct {
	N     int // global matrix order
	Iters int
}

// Run executes the simulated distributed transpose: every rank exchanges
// its off-diagonal blocks with every other rank, then adds the received
// blocks into its slice of A.
func Run(r *mpi.Rank, p Params) {
	if p.N <= 0 {
		panic("ptrans: order must be positive")
	}
	if p.Iters == 0 {
		p.Iters = 2
	}
	n := float64(p.N)
	ranks := float64(r.Size())
	localBytes := 8 * n * n / ranks
	a := r.Alloc("ptrans.a", localBytes)
	b := r.Alloc("ptrans.b", localBytes)

	r.Barrier()
	start := r.Now()
	for i := 0; i < p.Iters; i++ {
		// Exchange off-diagonal blocks: each pair swaps 1/p^2 of the
		// matrix.
		if r.Size() > 1 {
			r.Alltoall(8 * n * n / (ranks * ranks))
		}
		// Local add of the transposed blocks: stream B slice, update A
		// slice (one flop per element).
		r.Overlap(localBytes/8, 0.5,
			mem.Access{Region: b, Pattern: mem.Stream, Bytes: localBytes},
			mem.Access{Region: a, Pattern: mem.StreamWrite, Bytes: localBytes},
		)
	}
	elapsed := r.Now() - start
	r.Report(MetricBandwidth, localBytes*float64(p.Iters)/elapsed)
}
