package cg

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"multicore/internal/affinity"
	"multicore/internal/machine"
	"multicore/internal/mem"
	"multicore/internal/mpi"
	"multicore/internal/topology"
)

func TestMulVecIdentityLike(t *testing.T) {
	// Diagonal matrix times vector scales elementwise.
	m := &CSR{N: 3, RowPtr: []int{0, 1, 2, 3}, Col: []int{0, 1, 2}, Val: []float64{2, 3, 4}}
	y := make([]float64, 3)
	m.MulVec([]float64{1, 1, 1}, y)
	if y[0] != 2 || y[1] != 3 || y[2] != 4 {
		t.Fatalf("y = %v", y)
	}
}

func TestRandomSPDIsSymmetric(t *testing.T) {
	m := RandomSPD(50, 6, 42)
	dense := make([][]float64, m.N)
	for i := range dense {
		dense[i] = make([]float64, m.N)
		for k := m.RowPtr[i]; k < m.RowPtr[i+1]; k++ {
			dense[i][m.Col[k]] = m.Val[k]
		}
	}
	for i := 0; i < m.N; i++ {
		for j := 0; j < m.N; j++ {
			if math.Abs(dense[i][j]-dense[j][i]) > 1e-12 {
				t.Fatalf("asymmetric at (%d,%d): %v vs %v", i, j, dense[i][j], dense[j][i])
			}
		}
	}
}

func TestRandomSPDRowsSorted(t *testing.T) {
	m := RandomSPD(80, 8, 7)
	for i := 0; i < m.N; i++ {
		for k := m.RowPtr[i] + 1; k < m.RowPtr[i+1]; k++ {
			if m.Col[k] <= m.Col[k-1] {
				t.Fatalf("row %d columns not strictly increasing", i)
			}
		}
	}
}

func TestSolveConverges(t *testing.T) {
	m := RandomSPD(200, 8, 1)
	rng := rand.New(rand.NewSource(2))
	b := make([]float64, m.N)
	for i := range b {
		b[i] = rng.NormFloat64()
	}
	x, iters, res := Solve(m, b, 1e-10, 500)
	if res > 1e-10 {
		t.Fatalf("CG did not converge: res=%v after %d iters", res, iters)
	}
	// Check A*x == b directly.
	ax := make([]float64, m.N)
	m.MulVec(x, ax)
	for i := range b {
		if math.Abs(ax[i]-b[i]) > 1e-8 {
			t.Fatalf("A*x != b at %d: %v vs %v", i, ax[i], b[i])
		}
	}
}

func TestSolveProperty(t *testing.T) {
	f := func(seed int64) bool {
		n := 30 + int(seed%50+50)%50
		m := RandomSPD(n, 5, seed)
		rng := rand.New(rand.NewSource(seed + 1))
		b := make([]float64, n)
		for i := range b {
			b[i] = rng.NormFloat64()
		}
		_, _, res := Solve(m, b, 1e-9, 5*n)
		return res <= 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 10}); err != nil {
		t.Fatal(err)
	}
}

func TestGrid(t *testing.T) {
	cases := map[int][2]int{
		1: {1, 1}, 2: {1, 2}, 4: {2, 2}, 8: {2, 4}, 16: {4, 4}, 3: {1, 3},
	}
	for size, want := range cases {
		r, c := grid(size)
		if r != want[0] || c != want[1] {
			t.Fatalf("grid(%d) = %dx%d, want %dx%d", size, r, c, want[0], want[1])
		}
	}
}

func bind(cores ...int) []affinity.Binding {
	b := make([]affinity.Binding, len(cores))
	for i, c := range cores {
		b[i] = affinity.Binding{Core: topology.CoreID(c), MemPolicy: mem.LocalAlloc}
	}
	return b
}

func TestSimCGScalesOnDMZ(t *testing.T) {
	spec := machine.DMZ()
	timeFor := func(cores ...int) float64 {
		res := mpi.Run(mpi.Config{Spec: spec, Bindings: bind(cores...)}, func(r *mpi.Rank) {
			Run(r, Params{N: 75000, NNZPerRow: 13, OuterIters: 2})
		})
		return res.Max(MetricTime)
	}
	t1 := timeFor(0)
	t2 := timeFor(0, 2) // one per socket
	// Paper Table 4: CG speedup ~1.07x efficiency at 2 cores on DMZ
	// (superlinear from cache effects); accept 1.5-2.6.
	if sp := t1 / t2; sp < 1.5 || sp > 2.6 {
		t.Fatalf("CG 2-rank speedup = %.2f", sp)
	}
}

func TestSimCGMembindHurtsOnLongs(t *testing.T) {
	spec := machine.Longs()
	timeFor := func(scheme affinity.Scheme) float64 {
		b, err := affinity.Layout(scheme, spec.Topo, 8)
		if err != nil {
			t.Fatal(err)
		}
		res := mpi.Run(mpi.Config{Spec: spec, Bindings: b, DeriveBufMode: true}, func(r *mpi.Rank) {
			Run(r, Params{N: 75000, NNZPerRow: 13, OuterIters: 2})
		})
		return res.Max(MetricTime)
	}
	local := timeFor(affinity.OneMPILocalAlloc)
	membind := timeFor(affinity.OneMPIMembind)
	// Paper Table 2 (8 tasks): membind is ~2x worse than localalloc.
	if membind < 1.3*local {
		t.Fatalf("membind (%v) should be much slower than localalloc (%v)", membind, local)
	}
}

func TestEstimateEigenConvergesToSmallestEigenvalue(t *testing.T) {
	// The inverse power method drives zeta toward shift + lambda_min(A).
	// Use a diagonal matrix where eigenvalues are explicit.
	n := 50
	m := &CSR{N: n, RowPtr: make([]int, n+1)}
	for i := 0; i < n; i++ {
		m.Col = append(m.Col, i)
		m.Val = append(m.Val, float64(i+2)) // eigenvalues 2..n+1
		m.RowPtr[i+1] = i + 1
	}
	zetas := EstimateEigen(m, 10, 40, 200)
	got := zetas[len(zetas)-1]
	want := 10.0 + 2.0 // shift + lambda_min
	// Inverse power iteration converges linearly at rate
	// lambda_min/lambda_next = 2/3; 40 iterations leave ~1e-7.
	if math.Abs(got-want) > 1e-5 {
		t.Fatalf("zeta = %v, want %v", got, want)
	}
	// The sequence must converge: late deltas smaller than early ones.
	early := math.Abs(zetas[1] - zetas[0])
	late := math.Abs(zetas[len(zetas)-1] - zetas[len(zetas)-2])
	if late > early && early > 1e-12 {
		t.Fatalf("zeta sequence not converging: early delta %v, late %v", early, late)
	}
}

func TestEstimateEigenOnRandomSPD(t *testing.T) {
	m := RandomSPD(120, 6, 5)
	zetas := EstimateEigen(m, 20, 10, 400)
	last := zetas[len(zetas)-1]
	if math.IsNaN(last) || math.IsInf(last, 0) {
		t.Fatalf("zeta diverged: %v", last)
	}
	// Stability: the estimate is settling (deltas shrinking).
	d1 := math.Abs(zetas[1] - zetas[0])
	d2 := math.Abs(zetas[len(zetas)-1] - zetas[len(zetas)-2])
	if d2 > d1 && d1 > 1e-12 {
		t.Fatalf("zeta not settling: first delta %v, last %v", d1, d2)
	}
}
