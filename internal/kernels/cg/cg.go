// Package cg implements conjugate-gradient kernels: a real sparse CG
// solver (CSR matrix, SpMV) for correctness testing, and a simulated
// driver with the NAS CG benchmark's computation and communication
// structure (paper Section 3.5) that POP's barotropic solver also reuses.
package cg

import (
	"fmt"
	"math"
	"math/rand"
)

// CSR is a compressed-sparse-row square matrix.
type CSR struct {
	N      int
	RowPtr []int
	Col    []int
	Val    []float64
}

// NNZ returns the stored nonzero count.
func (m *CSR) NNZ() int { return len(m.Val) }

// MulVec computes y = A*x.
func (m *CSR) MulVec(x, y []float64) {
	if len(x) < m.N || len(y) < m.N {
		panic("cg: vector length mismatch")
	}
	for i := 0; i < m.N; i++ {
		sum := 0.0
		for k := m.RowPtr[i]; k < m.RowPtr[i+1]; k++ {
			sum += m.Val[k] * x[m.Col[k]]
		}
		y[i] = sum
	}
}

// RandomSPD builds a sparse symmetric positive-definite matrix of order n
// with roughly nnzPerRow off-diagonal entries per row, in the spirit of
// the NAS CG generator (random pattern, diagonally dominant shift).
func RandomSPD(n, nnzPerRow int, seed int64) *CSR {
	rng := rand.New(rand.NewSource(seed))
	// Collect symmetric off-diagonal entries.
	type entry struct {
		j int
		v float64
	}
	rows := make([]map[int]float64, n)
	for i := range rows {
		rows[i] = map[int]float64{}
	}
	for i := 0; i < n; i++ {
		for k := 0; k < nnzPerRow/2; k++ {
			j := rng.Intn(n)
			if j == i {
				continue
			}
			v := rng.NormFloat64()
			rows[i][j] += v
			rows[j][i] += v
		}
	}
	m := &CSR{N: n, RowPtr: make([]int, n+1)}
	for i := 0; i < n; i++ {
		// Diagonal dominance guarantees positive definiteness.
		rowSum := 0.0
		cols := make([]int, 0, len(rows[i]))
		for j := range rows[i] {
			cols = append(cols, j)
		}
		sortInts(cols)
		for _, j := range cols {
			rowSum += math.Abs(rows[i][j])
		}
		diag := rowSum + 1 + rng.Float64()
		inserted := false
		for _, j := range cols {
			if !inserted && j > i {
				m.Col = append(m.Col, i)
				m.Val = append(m.Val, diag)
				inserted = true
			}
			m.Col = append(m.Col, j)
			m.Val = append(m.Val, rows[i][j])
		}
		if !inserted {
			m.Col = append(m.Col, i)
			m.Val = append(m.Val, diag)
		}
		m.RowPtr[i+1] = len(m.Val)
	}
	return m
}

func sortInts(a []int) {
	for i := 1; i < len(a); i++ {
		for j := i; j > 0 && a[j] < a[j-1]; j-- {
			a[j], a[j-1] = a[j-1], a[j]
		}
	}
}

// Solve runs conjugate gradients on the SPD system A*x = b until the
// residual norm falls below tol or maxIter iterations pass. It returns
// the solution, the iteration count, and the final residual norm.
func Solve(a *CSR, b []float64, tol float64, maxIter int) ([]float64, int, float64) {
	n := a.N
	x := make([]float64, n)
	r := append([]float64(nil), b...)
	p := append([]float64(nil), b...)
	ap := make([]float64, n)
	rr := dot(r, r)
	iter := 0
	for ; iter < maxIter && math.Sqrt(rr) > tol; iter++ {
		a.MulVec(p, ap)
		alpha := rr / dot(p, ap)
		for i := range x {
			x[i] += alpha * p[i]
			r[i] -= alpha * ap[i]
		}
		rrNew := dot(r, r)
		beta := rrNew / rr
		rr = rrNew
		for i := range p {
			p[i] = r[i] + beta*p[i]
		}
	}
	return x, iter, math.Sqrt(rr)
}

func dot(a, b []float64) float64 {
	sum := 0.0
	for i := range a {
		sum += a[i] * b[i]
	}
	return sum
}

func (m *CSR) String() string {
	return fmt.Sprintf("CSR(n=%d nnz=%d)", m.N, m.NNZ())
}

// EstimateEigen runs the NAS CG outer iteration: a shifted inverse power
// method that estimates the largest eigenvalue of A as
// zeta = shift + 1/(x.z) where z solves A z = x. It returns the zeta
// sequence (one per outer iteration); NAS verifies the final value.
func EstimateEigen(a *CSR, shift float64, outer, inner int) []float64 {
	n := a.N
	x := make([]float64, n)
	for i := range x {
		x[i] = 1
	}
	zetas := make([]float64, 0, outer)
	for it := 0; it < outer; it++ {
		z, _, _ := Solve(a, x, 1e-12, inner)
		xz := dot(x, z)
		zetas = append(zetas, shift+1/xz)
		// x = z / ||z||
		norm := math.Sqrt(dot(z, z))
		for i := range x {
			x[i] = z[i] / norm
		}
	}
	return zetas
}
