package cg

import (
	"math"

	"multicore/internal/mem"
	"multicore/internal/mpi"
)

// spmvRate is the per-rank ceiling on CSR SpMV matrix traffic (B/s):
// indexed loads and short dependent bursts keep a single Opteron core
// around 1.6 GB/s even from local memory.
const spmvRate = 1.6e9

// Report keys for simulated CG runs.
const (
	MetricTime = "cg.time" // per-rank benchmark time (s)
)

// Params configures a simulated NAS-CG-structured run.
type Params struct {
	N          int // matrix order
	NNZPerRow  int // nonzeros per row
	OuterIters int // outer iterations (NAS: 75 for class B)
	InnerIters int // CG iterations per outer step (NAS: 25)
}

// Run executes the simulated CG benchmark. The rank grid follows NAS CG:
// a 2D decomposition with power-of-two rows/cols; per inner iteration one
// SpMV (matrix stream + vector gather), a row-group reduction, two global
// dot products, and three vector updates.
func Run(r *mpi.Rank, p Params) {
	if p.N <= 0 || p.NNZPerRow <= 0 {
		panic("cg: size parameters must be positive")
	}
	if p.OuterIters == 0 {
		p.OuterIters = 5
	}
	if p.InnerIters == 0 {
		p.InnerIters = 25
	}
	size := r.Size()
	nrows, ncols := grid(size)

	n := float64(p.N)
	nnzLocal := n * float64(p.NNZPerRow) / float64(size)
	// Matrix slice: 8-byte values + 4-byte column indices, plus row
	// pointers (negligible).
	matBytes := nnzLocal * 12
	vecLocal := 8 * n / float64(nrows) // x segment this rank gathers from

	mat := r.Alloc("cg.mat", matBytes)
	xseg := r.Alloc("cg.x", vecLocal)
	vecs := r.Alloc("cg.vecs", 4*8*n/float64(size)) // r, p, q, z slices

	r.Barrier()
	start := r.Now()
	for outer := 0; outer < p.OuterIters; outer++ {
		for inner := 0; inner < p.InnerIters; inner++ {
			iteration(r, p, mat, xseg, vecs, matBytes, vecLocal, n, nrows, ncols)
		}
	}
	r.Report(MetricTime, r.Now()-start)
}

func iteration(r *mpi.Rank, p Params, mat, xseg, vecs *mem.Region, matBytes, vecLocal, n float64, nrows, ncols int) {
	size := float64(r.Size())
	nnzLocal := n * float64(p.NNZPerRow) / size

	// SpMV: stream the matrix slice, gather from the x segment (the
	// cache model decides how much of the segment stays resident). The
	// CSR value/index walk is an indexed stream that a single core
	// cannot drive at full issue rate.
	r.Overlap(2*nnzLocal, 0.12,
		mem.Access{Region: mat, Pattern: mem.Stream, Bytes: matBytes, RateCeiling: spmvRate},
		mem.Access{Region: xseg, Pattern: mem.Random, Touches: nnzLocal},
	)

	// Row-group reduction of partial SpMV results (NAS CG's transpose
	// exchange): log2(ncols) stages of sendrecv within the row.
	if ncols > 1 {
		row := r.ID() / ncols
		colIdx := r.ID() % ncols
		for stage := 1; stage < ncols; stage <<= 1 {
			// Non-power-of-two rows have holes in the butterfly: a
			// colIdx^stage past the row simply sits the stage out. The
			// skip is symmetric — XOR is an involution, so a partner
			// inside the row never addresses a rank that skipped.
			if colIdx^stage >= ncols {
				continue
			}
			partner := row*ncols + (colIdx ^ stage)
			r.Sendrecv(partner, vecLocal/float64(ncols), partner)
		}
	}

	// Two dot products -> two small allreduces.
	r.Allreduce(8)
	r.Allreduce(8)

	// Three vector updates (x, r, p): stream reads + writes over the
	// local vector block.
	blk := 8 * n / size
	r.Overlap(6*n/size, 0.4,
		mem.Access{Region: vecs, Pattern: mem.Stream, Bytes: 2 * blk},
		mem.Access{Region: vecs, Pattern: mem.StreamWrite, Bytes: blk},
	)
}

// grid returns the NAS CG process grid: for power-of-two sizes, rows x
// cols with cols >= rows (e.g. 8 -> 2x4); non-power-of-two sizes fall
// back to 1 x size.
func grid(size int) (nrows, ncols int) {
	if size&(size-1) != 0 {
		return 1, size
	}
	log := int(math.Round(math.Log2(float64(size))))
	nrows = 1 << (log / 2)
	ncols = size / nrows
	return nrows, ncols
}
