package blas

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"multicore/internal/affinity"
	"multicore/internal/machine"
	"multicore/internal/mem"
	"multicore/internal/mpi"
	"multicore/internal/units"
)

func TestDaxpy(t *testing.T) {
	x := []float64{1, 2, 3}
	y := []float64{10, 20, 30}
	Daxpy(2, x, y)
	want := []float64{12, 24, 36}
	for i := range want {
		if y[i] != want[i] {
			t.Fatalf("y = %v, want %v", y, want)
		}
	}
}

func TestDdot(t *testing.T) {
	if got := Ddot([]float64{1, 2, 3}, []float64{4, 5, 6}); got != 32 {
		t.Fatalf("ddot = %v, want 32", got)
	}
}

func randMat(rng *rand.Rand, n int) []float64 {
	m := make([]float64, n*n)
	for i := range m {
		m[i] = rng.NormFloat64()
	}
	return m
}

func TestDgemmIdentity(t *testing.T) {
	n := 8
	eye := make([]float64, n*n)
	for i := 0; i < n; i++ {
		eye[i*n+i] = 1
	}
	rng := rand.New(rand.NewSource(1))
	b := randMat(rng, n)
	c := make([]float64, n*n)
	Dgemm(1, eye, b, 0, c, n)
	for i := range b {
		if math.Abs(c[i]-b[i]) > 1e-12 {
			t.Fatalf("I*B != B at %d: %v vs %v", i, c[i], b[i])
		}
	}
}

func TestDgemmBlockedMatchesNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for _, n := range []int{1, 5, 16, 33} {
		for _, block := range []int{1, 4, 8, 64} {
			a := randMat(rng, n)
			b := randMat(rng, n)
			c1 := randMat(rng, n)
			c2 := append([]float64(nil), c1...)
			Dgemm(1.5, a, b, 0.5, c1, n)
			DgemmBlocked(1.5, a, b, 0.5, c2, n, block)
			for i := range c1 {
				if math.Abs(c1[i]-c2[i]) > 1e-9*(1+math.Abs(c1[i])) {
					t.Fatalf("n=%d block=%d mismatch at %d: %v vs %v", n, block, i, c1[i], c2[i])
				}
			}
		}
	}
}

func TestDgemmAlphaBetaProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 1 + r.Intn(12)
		a, b := randMat(rng, n), randMat(rng, n)
		// C = 0*A*B + 1*C leaves C unchanged.
		c := randMat(rng, n)
		c2 := append([]float64(nil), c...)
		Dgemm(0, a, b, 1, c2, n)
		for i := range c {
			if c[i] != c2[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func runOne(spec *machine.Spec, body func(*mpi.Rank)) *mpi.Result {
	return mpi.Run(mpi.Config{
		Spec:     spec,
		Bindings: []affinity.Binding{{Core: 0, MemPolicy: mem.LocalAlloc}},
	}, body)
}

func TestSimDgemmACMLNearPeak(t *testing.T) {
	spec := machine.DMZ() // 4.4 GFlop/s peak
	res := runOne(spec, func(r *mpi.Rank) {
		RunDgemm(r, DgemmParams{N: 1000, Variant: ACML})
	})
	gf := res.Max(MetricDgemmFlops)
	if gf < 0.75*spec.PeakFlops() {
		t.Fatalf("ACML DGEMM = %s, want >= 75%% of peak %s",
			units.Flops(gf), units.Flops(spec.PeakFlops()))
	}
}

func TestSimDgemmVanillaMuchSlower(t *testing.T) {
	spec := machine.DMZ()
	rate := func(v Variant) float64 {
		res := runOne(spec, func(r *mpi.Rank) {
			RunDgemm(r, DgemmParams{N: 600, Variant: v})
		})
		return res.Max(MetricDgemmFlops)
	}
	acml, vanilla := rate(ACML), rate(Vanilla)
	if acml < 4*vanilla {
		t.Fatalf("ACML %s should be >= 4x vanilla %s", units.Flops(acml), units.Flops(vanilla))
	}
}

func TestSimDaxpyCacheCliff(t *testing.T) {
	spec := machine.DMZ()
	rate := func(n int) float64 {
		res := runOne(spec, func(r *mpi.Rank) {
			RunDaxpy(r, DaxpyParams{N: n, Variant: ACML})
		})
		return res.Max(MetricDaxpyFlops)
	}
	inCache := rate(16 << 10)  // 16K elements: 256 KB, fits in L2
	inMemory := rate(16 << 20) // 16M elements: 256 MB, memory bound
	if inCache < 2*inMemory {
		t.Fatalf("in-cache DAXPY %s should far exceed out-of-cache %s",
			units.Flops(inCache), units.Flops(inMemory))
	}
}

func TestSimDgemmStarScalesPerSocket(t *testing.T) {
	// Star-mode DGEMM: both cores of a socket run the kernel; the paper
	// found per-core DGEMM nearly unchanged (Fig 9).
	spec := machine.DMZ()
	single := runOne(spec, func(r *mpi.Rank) {
		RunDgemm(r, DgemmParams{N: 800, Variant: ACML})
	}).Max(MetricDgemmFlops)
	star := mpi.Run(mpi.Config{
		Spec: spec,
		Bindings: []affinity.Binding{
			{Core: 0, MemPolicy: mem.LocalAlloc},
			{Core: 1, MemPolicy: mem.LocalAlloc},
		},
	}, func(r *mpi.Rank) {
		RunDgemm(r, DgemmParams{N: 800, Variant: ACML})
	})
	perCore := star.Mean(MetricDgemmFlops)
	if perCore < 0.9*single {
		t.Fatalf("star DGEMM per-core %s degraded vs single %s",
			units.Flops(perCore), units.Flops(single))
	}
}

func TestSimDaxpySecondCoreContends(t *testing.T) {
	// Out-of-cache DAXPY is STREAM-like: the second core on a socket
	// gains little.
	spec := machine.DMZ()
	single := runOne(spec, func(r *mpi.Rank) {
		RunDaxpy(r, DaxpyParams{N: 8 << 20, Variant: ACML})
	}).Sum(MetricDaxpyFlops)
	pair := mpi.Run(mpi.Config{
		Spec: spec,
		Bindings: []affinity.Binding{
			{Core: 0, MemPolicy: mem.LocalAlloc},
			{Core: 1, MemPolicy: mem.LocalAlloc},
		},
	}, func(r *mpi.Rank) {
		RunDaxpy(r, DaxpyParams{N: 8 << 20, Variant: ACML})
	}).Sum(MetricDaxpyFlops)
	if gain := pair / single; gain > 1.35 {
		t.Fatalf("second-core DAXPY gain %.2fx, want ~flat", gain)
	}
}

func TestBadParamsPanic(t *testing.T) {
	for _, f := range []func(){
		func() { Daxpy(1, make([]float64, 2), make([]float64, 3)) },
		func() { Dgemm(1, make([]float64, 3), make([]float64, 9), 0, make([]float64, 9), 3) },
		func() { DgemmBlocked(1, make([]float64, 9), make([]float64, 9), 0, make([]float64, 9), 3, 0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("expected panic")
				}
			}()
			f()
		}()
	}
}
