package blas

import (
	"multicore/internal/mem"
	"multicore/internal/mpi"
)

// Report keys for simulated BLAS runs.
const (
	MetricDaxpyFlops = "blas.daxpy.flops" // per-rank DAXPY flop rate (flop/s)
	MetricDgemmFlops = "blas.dgemm.flops" // per-rank DGEMM flop rate (flop/s)
)

// DaxpyParams configures a simulated DAXPY sweep point.
type DaxpyParams struct {
	N       int     // vector length (elements)
	Iters   int     // repetitions (default chosen for measurable time)
	Variant Variant // vanilla or ACML
}

// RunDaxpy executes the simulated DAXPY on one rank and reports the flop
// rate. Each iteration streams x and y and writes y back; the multiply-add
// is overlapped with the traffic.
func RunDaxpy(r *mpi.Rank, p DaxpyParams) {
	if p.N <= 0 {
		panic("blas: DAXPY length must be positive")
	}
	if p.Iters == 0 {
		p.Iters = 8
	}
	bytes := float64(8 * p.N)
	x := r.Alloc("daxpy.x", bytes)
	y := r.Alloc("daxpy.y", bytes)

	// Warm-up pass (populates caches for in-cache sizes).
	daxpyPass(r, x, y, bytes, p.Variant)

	start := r.Now()
	for i := 0; i < p.Iters; i++ {
		daxpyPass(r, x, y, bytes, p.Variant)
	}
	elapsed := r.Now() - start
	flops := 2 * float64(p.N) * float64(p.Iters)
	r.Report(MetricDaxpyFlops, flops/elapsed)
}

func daxpyPass(r *mpi.Rank, x, y *mem.Region, bytes float64, v Variant) {
	flops := 2 * bytes / 8
	r.Overlap(flops, daxpyEff(v),
		mem.Access{Region: x, Pattern: mem.Stream, Bytes: bytes},
		mem.Access{Region: y, Pattern: mem.Stream, Bytes: bytes},
		mem.Access{Region: y, Pattern: mem.StreamWrite, Bytes: bytes},
	)
}

// DgemmParams configures a simulated DGEMM point.
type DgemmParams struct {
	N       int // matrix order
	Iters   int
	Variant Variant
}

// RunDgemm executes the simulated n x n DGEMM on one rank and reports the
// flop rate. Memory traffic follows the blocked-reuse model: each operand
// byte fetched from DRAM serves `reuse` flops.
func RunDgemm(r *mpi.Rank, p DgemmParams) {
	if p.N <= 0 {
		panic("blas: DGEMM order must be positive")
	}
	if p.Iters == 0 {
		p.Iters = 2
	}
	n := float64(p.N)
	matBytes := 8 * n * n
	a := r.Alloc("dgemm.a", matBytes)
	b := r.Alloc("dgemm.b", matBytes)
	cm := r.Alloc("dgemm.c", matBytes)

	dgemmPass(r, a, b, cm, n, p.Variant) // warm-up

	start := r.Now()
	for i := 0; i < p.Iters; i++ {
		dgemmPass(r, a, b, cm, n, p.Variant)
	}
	elapsed := r.Now() - start
	flops := 2 * n * n * n * float64(p.Iters)
	r.Report(MetricDgemmFlops, flops/elapsed)
}

func dgemmPass(r *mpi.Rank, a, b, cm *mem.Region, n float64, v Variant) {
	flops := 2 * n * n * n
	reuse := dgemmReuse(v)
	// A and B are swept n/block times in total; the Blocked pattern
	// divides the touched volume by the reuse factor.
	touched := 8 * n * n * n
	r.Overlap(flops, dgemmEff(v),
		mem.Access{Region: a, Pattern: mem.Blocked, Bytes: touched, Reuse: reuse},
		mem.Access{Region: b, Pattern: mem.Blocked, Bytes: touched, Reuse: reuse},
		mem.Access{Region: cm, Pattern: mem.StreamWrite, Bytes: 8 * n * n},
	)
}
