// Package blas provides the BLAS level-1 and level-3 operations the paper
// evaluates (Section 3.2): DAXPY and DGEMM, each as real numerics for
// correctness tests and as simulated drivers in a "vanilla" (compiler-
// generated Fortran) and an "ACML" (vendor-tuned) variant.
package blas

import "fmt"

// Daxpy computes y = alpha*x + y over real slices.
func Daxpy(alpha float64, x, y []float64) {
	if len(x) != len(y) {
		panic("blas: mismatched vector lengths")
	}
	for i := range x {
		y[i] += alpha * x[i]
	}
}

// Ddot returns x.y.
func Ddot(x, y []float64) float64 {
	if len(x) != len(y) {
		panic("blas: mismatched vector lengths")
	}
	sum := 0.0
	for i := range x {
		sum += x[i] * y[i]
	}
	return sum
}

// Dgemm computes C = alpha*A*B + beta*C for n x n row-major matrices using
// a straightforward triple loop (the "vanilla" reference).
func Dgemm(alpha float64, a, b []float64, beta float64, c []float64, n int) {
	if len(a) < n*n || len(b) < n*n || len(c) < n*n {
		panic("blas: matrix buffers too small")
	}
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			c[i*n+j] *= beta
		}
		for k := 0; k < n; k++ {
			aik := alpha * a[i*n+k]
			if aik == 0 {
				continue
			}
			row := b[k*n:]
			for j := 0; j < n; j++ {
				c[i*n+j] += aik * row[j]
			}
		}
	}
}

// DgemmBlocked computes C = alpha*A*B + beta*C with cache blocking (the
// "ACML-like" implementation). Results must match Dgemm.
func DgemmBlocked(alpha float64, a, b []float64, beta float64, c []float64, n, block int) {
	if block <= 0 {
		panic("blas: block size must be positive")
	}
	if len(a) < n*n || len(b) < n*n || len(c) < n*n {
		panic("blas: matrix buffers too small")
	}
	for i := 0; i < n*n; i++ {
		c[i] *= beta
	}
	for ii := 0; ii < n; ii += block {
		iMax := min(ii+block, n)
		for kk := 0; kk < n; kk += block {
			kMax := min(kk+block, n)
			for jj := 0; jj < n; jj += block {
				jMax := min(jj+block, n)
				for i := ii; i < iMax; i++ {
					for k := kk; k < kMax; k++ {
						aik := alpha * a[i*n+k]
						if aik == 0 {
							continue
						}
						for j := jj; j < jMax; j++ {
							c[i*n+j] += aik * b[k*n+j]
						}
					}
				}
			}
		}
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// Variant selects the implementation whose cost profile a simulated run
// uses.
type Variant int

const (
	// Vanilla is the compiler-optimized Fortran reference: modest
	// in-cache efficiency and little cache blocking.
	Vanilla Variant = iota
	// ACML is the vendor library: near-peak in-cache DGEMM and deeply
	// blocked memory traffic.
	ACML
)

func (v Variant) String() string {
	if v == ACML {
		return "ACML"
	}
	return "vanilla"
}

// daxpyEff returns the compute efficiency of DAXPY's multiply-add loop.
// DAXPY retires at most one fused operation per load/store pair, so even
// tuned code is far from peak.
func daxpyEff(v Variant) float64 {
	if v == ACML {
		return 0.45
	}
	return 0.25
}

// dgemmEff returns the in-cache efficiency of the DGEMM inner kernel.
func dgemmEff(v Variant) float64 {
	if v == ACML {
		return 0.88
	}
	return 0.14
}

// dgemmReuse returns the effective cache-blocking reuse factor (how many
// flops each byte fetched from memory serves).
func dgemmReuse(v Variant) float64 {
	if v == ACML {
		return 48 // deep blocking: traffic ~ 16*n^3/48 bytes
	}
	return 6 // register tiling only
}

func (v Variant) GoString() string { return fmt.Sprintf("blas.%s", v) }
