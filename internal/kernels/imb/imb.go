// Package imb implements the Intel MPI Benchmarks the paper uses to study
// intra-node communication (Section 3.4, Figures 14-17): PingPong,
// Exchange, and the HPCC-style ring latency/bandwidth probe.
package imb

import (
	"fmt"

	"multicore/internal/mem"
	"multicore/internal/mpi"
)

// Point is one measured benchmark point.
type Point struct {
	Bytes     float64 // message size
	Latency   float64 // one-way (PingPong) or per-operation (others) latency in seconds
	Bandwidth float64 // payload bandwidth in B/s per the IMB convention
}

func (p Point) String() string {
	return fmt.Sprintf("%.0fB lat=%.2fus bw=%.1fMB/s", p.Bytes, p.Latency*1e6, p.Bandwidth/1e6)
}

// PingPong measures the round-trip between ranks 0 and 1 of cfg. Any
// additional ranks are "parked": they exist (and perturb placement) but
// do not communicate, matching the paper's "2 procs, unbound, 2 parked"
// configuration. Reported latency is one-way; bandwidth is
// bytes/one-way-time.
func PingPong(cfg mpi.Config, bytes float64, iters int) Point {
	if len(cfg.Bindings) < 2 {
		panic("imb: PingPong needs at least 2 ranks")
	}
	if iters <= 0 {
		iters = 50
	}
	res := mpi.Run(cfg, func(r *mpi.Rank) {
		switch r.ID() {
		case 0:
			touchScratch(r, bytes)
			r.Barrier()
			start := r.Now()
			for i := 0; i < iters; i++ {
				r.Send(1, bytes)
				r.Recv(1)
			}
			oneWay := (r.Now() - start) / float64(2*iters)
			r.Report("lat", oneWay)
		case 1:
			touchScratch(r, bytes)
			r.Barrier()
			for i := 0; i < iters; i++ {
				r.Recv(0)
				r.Send(0, bytes)
			}
		default:
			r.Barrier() // parked ranks still take part in startup sync
			park(r, bytes, iters)
		}
	})
	lat := res.Max("lat")
	return Point{Bytes: bytes, Latency: lat, Bandwidth: bytes / lat}
}

// Exchange measures the IMB Exchange pattern: every rank sends to both
// chain neighbours and receives from both each iteration. Reported
// bandwidth follows the IMB convention of 4x message size per iteration.
func Exchange(cfg mpi.Config, bytes float64, iters int) Point {
	n := len(cfg.Bindings)
	if n < 2 {
		panic("imb: Exchange needs at least 2 ranks")
	}
	if iters <= 0 {
		iters = 50
	}
	res := mpi.Run(cfg, func(r *mpi.Rank) {
		touchScratch(r, bytes)
		left := (r.ID() - 1 + n) % n
		right := (r.ID() + 1) % n
		r.Barrier()
		start := r.Now()
		for i := 0; i < iters; i++ {
			sl := r.Isend(left, bytes)
			sr := r.Isend(right, bytes)
			r.Recv(left)
			r.Recv(right)
			r.WaitAll(sl, sr)
		}
		per := (r.Now() - start) / float64(iters)
		r.Report("t", per)
	})
	per := res.Max("t")
	return Point{Bytes: bytes, Latency: per, Bandwidth: 4 * bytes / per}
}

// Ring measures a simultaneous ring shift across all ranks (the HPCC
// ring latency/bandwidth probe). Latency is per shift operation.
func Ring(cfg mpi.Config, bytes float64, iters int) Point {
	n := len(cfg.Bindings)
	if n < 2 {
		panic("imb: Ring needs at least 2 ranks")
	}
	if iters <= 0 {
		iters = 50
	}
	res := mpi.Run(cfg, func(r *mpi.Rank) {
		touchScratch(r, bytes)
		next := (r.ID() + 1) % n
		prev := (r.ID() - 1 + n) % n
		r.Barrier()
		start := r.Now()
		for i := 0; i < iters; i++ {
			r.Sendrecv(next, bytes, prev)
		}
		per := (r.Now() - start) / float64(iters)
		r.Report("t", per)
	})
	per := res.Max("t")
	return Point{Bytes: bytes, Latency: per, Bandwidth: bytes / per}
}

// touchScratch warms a small send/recv buffer so placement policies take
// effect before timing.
func touchScratch(r *mpi.Rank, bytes float64) {
	if bytes <= 0 {
		bytes = 64
	}
	buf := r.Alloc("imb.buf", bytes)
	r.Access(mem.Access{Region: buf, Pattern: mem.Stream, Bytes: bytes})
}

// park keeps a non-communicating rank mildly busy (polling loop touching
// its own memory), long enough to overlap the measured phase.
func park(r *mpi.Rank, bytes float64, iters int) {
	buf := r.Alloc("imb.park", 1<<20)
	for i := 0; i < iters/4+1; i++ {
		r.Access(mem.Access{Region: buf, Pattern: mem.Stream, Bytes: 1 << 20})
	}
}

// Sizes returns the standard IMB message-size sweep: powers of two from
// 1 B to max.
func Sizes(max float64) []float64 {
	var out []float64
	for b := 1.0; b <= max; b *= 2 {
		out = append(out, b)
	}
	return out
}

// CollectiveKind names an IMB collective benchmark.
type CollectiveKind int

// The IMB collective set used here.
const (
	CollAllreduce CollectiveKind = iota
	CollBcast
	CollAlltoall
)

func (k CollectiveKind) String() string {
	switch k {
	case CollAllreduce:
		return "Allreduce"
	case CollBcast:
		return "Bcast"
	case CollAlltoall:
		return "Alltoall"
	}
	return fmt.Sprintf("CollectiveKind(%d)", int(k))
}

// Collective measures one collective operation across all ranks of cfg:
// the reported latency is the mean period per operation at the slowest
// rank, matching the IMB convention.
func Collective(cfg mpi.Config, kind CollectiveKind, bytes float64, iters int) Point {
	if len(cfg.Bindings) < 2 {
		panic("imb: collectives need at least 2 ranks")
	}
	if iters <= 0 {
		iters = 20
	}
	res := mpi.Run(cfg, func(r *mpi.Rank) {
		touchScratch(r, bytes)
		r.Barrier()
		start := r.Now()
		for i := 0; i < iters; i++ {
			switch kind {
			case CollAllreduce:
				r.Allreduce(bytes)
			case CollBcast:
				r.Bcast(0, bytes)
			case CollAlltoall:
				r.Alltoall(bytes / float64(r.Size()))
			}
		}
		r.Report("t", (r.Now()-start)/float64(iters))
	})
	per := res.Max("t")
	return Point{Bytes: bytes, Latency: per, Bandwidth: bytes / per}
}
