package imb

import (
	"testing"

	"multicore/internal/affinity"
	"multicore/internal/machine"
	"multicore/internal/mem"
	"multicore/internal/mpi"
	"multicore/internal/topology"
	"multicore/internal/units"
)

func cfgOn(spec *machine.Spec, impl *mpi.Impl, cores ...int) mpi.Config {
	b := make([]affinity.Binding, len(cores))
	for i, c := range cores {
		b[i] = affinity.Binding{Core: topology.CoreID(c), MemPolicy: mem.LocalAlloc}
	}
	return mpi.Config{Spec: spec, Impl: impl, Bindings: b}
}

func TestPingPongLatencyMonotoneInSize(t *testing.T) {
	cfg := cfgOn(machine.DMZ(), mpi.OpenMPI(), 0, 2)
	prev := 0.0
	for _, size := range []float64{64, 4096, 262144, 4 << 20} {
		pt := PingPong(cfg, size, 10)
		if pt.Latency <= prev {
			t.Fatalf("latency not monotone at %v bytes: %v <= %v", size, pt.Latency, prev)
		}
		prev = pt.Latency
	}
}

func TestPingPongBandwidthSaturates(t *testing.T) {
	cfg := cfgOn(machine.DMZ(), mpi.MPICH2(), 0, 2)
	small := PingPong(cfg, 64, 10)
	large := PingPong(cfg, 4<<20, 5)
	if large.Bandwidth < 20*small.Bandwidth {
		t.Fatalf("large-message bandwidth %s should dwarf small-message %s",
			units.Rate(large.Bandwidth), units.Rate(small.Bandwidth))
	}
	// Shared-memory double copy: bandwidth well below memory bandwidth.
	if large.Bandwidth > 3*units.Giga {
		t.Fatalf("PingPong bandwidth %s implausibly high", units.Rate(large.Bandwidth))
	}
}

func TestBoundBeatsUnboundSplit(t *testing.T) {
	// Paper Fig 16: binding both processes to one dual-core socket gives
	// ~10-13% more bandwidth than placing them on different sockets.
	spec := machine.DMZ()
	same := PingPong(cfgOn(spec, mpi.OpenMPI(), 0, 1), 1<<20, 10)
	split := PingPong(cfgOn(spec, mpi.OpenMPI(), 0, 2), 1<<20, 10)
	gain := same.Bandwidth / split.Bandwidth
	if gain < 1.02 || gain > 1.6 {
		t.Fatalf("intra-socket gain = %.2fx (same=%s split=%s), want ~1.1x",
			gain, units.Rate(same.Bandwidth), units.Rate(split.Bandwidth))
	}
}

func TestParkedProcessesDoNotBreakPingPong(t *testing.T) {
	spec := machine.DMZ()
	pt := PingPong(cfgOn(spec, mpi.OpenMPI(), 0, 2, 1, 3), 64<<10, 8)
	if pt.Latency <= 0 || pt.Bandwidth <= 0 {
		t.Fatalf("parked run produced %v", pt)
	}
}

func TestExchangeSlowerThanPingPong(t *testing.T) {
	spec := machine.DMZ()
	pp := PingPong(cfgOn(spec, mpi.OpenMPI(), 0, 2), 64<<10, 10)
	ex := Exchange(cfgOn(spec, mpi.OpenMPI(), 0, 1, 2, 3), 64<<10, 10)
	// Exchange moves 4 messages per rank per iteration; its period must
	// exceed a single one-way time.
	if ex.Latency <= pp.Latency {
		t.Fatalf("exchange period %v should exceed pingpong one-way %v", ex.Latency, pp.Latency)
	}
}

func TestRingLatencyExceedsPingPong(t *testing.T) {
	// Paper Fig 13: ring latencies are higher than PingPong latencies.
	spec := machine.Longs()
	impl := mpi.LAM().WithSublayer(mpi.USysV())
	pp := PingPong(cfgOn(spec, impl, 0, 2), 1024, 20)
	ring := Ring(cfgOn(spec, impl, 0, 2, 4, 6, 8, 10, 12, 14), 1024, 20)
	if ring.Latency <= pp.Latency {
		t.Fatalf("ring latency %v should exceed pingpong %v", ring.Latency, pp.Latency)
	}
}

func TestSysVDominatesSmallMessageLatency(t *testing.T) {
	spec := machine.Longs()
	sysv := PingPong(cfgOn(spec, mpi.LAM().WithSublayer(mpi.SysV()), 0, 2), 8, 20)
	usysv := PingPong(cfgOn(spec, mpi.LAM().WithSublayer(mpi.USysV()), 0, 2), 8, 20)
	if sysv.Latency < 5*usysv.Latency {
		t.Fatalf("SysV latency %v should dwarf USysV %v", sysv.Latency, usysv.Latency)
	}
}

func TestSizesSweep(t *testing.T) {
	s := Sizes(1 << 20)
	if len(s) != 21 || s[0] != 1 || s[len(s)-1] != 1<<20 {
		t.Fatalf("sizes = %v", s)
	}
}

func TestMPIImplCrossover(t *testing.T) {
	// Paper Fig 14: LAM wins small messages, MPICH2 wins large ones.
	spec := machine.DMZ()
	small := 256.0
	large := float64(4 * units.MB)
	lamS := PingPong(cfgOn(spec, mpi.LAM(), 0, 2), small, 20)
	mpichS := PingPong(cfgOn(spec, mpi.MPICH2(), 0, 2), small, 20)
	if lamS.Latency >= mpichS.Latency {
		t.Fatalf("LAM small-message latency %v should beat MPICH2 %v", lamS.Latency, mpichS.Latency)
	}
	lamL := PingPong(cfgOn(spec, mpi.LAM(), 0, 2), large, 5)
	mpichL := PingPong(cfgOn(spec, mpi.MPICH2(), 0, 2), large, 5)
	if mpichL.Bandwidth <= lamL.Bandwidth {
		t.Fatalf("MPICH2 large-message bandwidth %s should beat LAM %s",
			units.Rate(mpichL.Bandwidth), units.Rate(lamL.Bandwidth))
	}
}

func TestCollectiveLatencyGrowsWithSize(t *testing.T) {
	cfg := cfgOn(machine.Longs(), mpi.MPICH2(), 0, 2, 4, 6, 8, 10, 12, 14)
	for _, kind := range []CollectiveKind{CollAllreduce, CollBcast, CollAlltoall} {
		small := Collective(cfg, kind, 64, 5)
		large := Collective(cfg, kind, 1<<20, 5)
		if large.Latency <= small.Latency {
			t.Fatalf("%v: large payload (%v) not slower than small (%v)",
				kind, large.Latency, small.Latency)
		}
	}
}

func TestCollectiveKindString(t *testing.T) {
	if CollAllreduce.String() != "Allreduce" || CollBcast.String() != "Bcast" || CollAlltoall.String() != "Alltoall" {
		t.Fatal("collective names wrong")
	}
}

func TestAlltoallCostliestAtScale(t *testing.T) {
	// Alltoall moves n-1 messages per rank; for equal total payload it
	// must cost at least as much as a bcast.
	cfg := cfgOn(machine.Longs(), mpi.MPICH2(), 0, 2, 4, 6, 8, 10, 12, 14)
	a2a := Collective(cfg, CollAlltoall, 1<<20, 5)
	bc := Collective(cfg, CollBcast, 1<<20, 5)
	if a2a.Latency < bc.Latency/4 {
		t.Fatalf("alltoall (%v) implausibly cheap vs bcast (%v)", a2a.Latency, bc.Latency)
	}
}

func TestCollectiveAcrossClusterNodes(t *testing.T) {
	cfg := cfgOn(machine.DMZ(), mpi.MPICH2(), 0, 2)
	cfg.Nodes = 2
	cfg.Net = mpi.RapidArray()
	pt := Collective(cfg, CollAllreduce, 4096, 10)
	// Crossing nodes adds network latency on top of the shm path.
	intra := Collective(cfgOn(machine.DMZ(), mpi.MPICH2(), 0, 2), CollAllreduce, 4096, 10)
	if pt.Latency <= intra.Latency {
		t.Fatalf("cluster allreduce (%v) should exceed intra-node (%v)", pt.Latency, intra.Latency)
	}
}
