package workload

import (
	"strings"
	"testing"
)

func TestParseSpec(t *testing.T) {
	for _, tc := range []struct {
		in   string
		want Spec
	}{
		{"stream", Spec{Name: "stream"}},
		{"amber:JAC", Spec{Name: "amber", Arg: "JAC"}},
		{"lammps:eam", Spec{Name: "lammps", Arg: "eam"}},
	} {
		got, err := ParseSpec(tc.in)
		if err != nil {
			t.Fatalf("ParseSpec(%q): %v", tc.in, err)
		}
		if got != tc.want {
			t.Fatalf("ParseSpec(%q) = %+v, want %+v", tc.in, got, tc.want)
		}
		if got.String() != tc.in {
			t.Fatalf("Spec%+v.String() = %q, want %q", got, got.String(), tc.in)
		}
	}
	if _, err := ParseSpec(""); err == nil {
		t.Fatal("empty name accepted")
	}
	if _, err := ParseSpec(":JAC"); err == nil {
		t.Fatal("empty name with arg accepted")
	}
}

func TestRegistryComplete(t *testing.T) {
	want := []string{
		"amber", "cg", "daxpy", "dgemm", "ep", "fft", "ft", "hpl",
		"lammps", "lmbench", "mg", "pop", "ptrans", "ra", "stream",
	}
	got := Names()
	if len(got) != len(want) {
		t.Fatalf("Names() = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Names()[%d] = %q, want %q", i, got[i], want[i])
		}
	}
}

// TestDefaultsResolve: every family must resolve with a zero-extra spec
// (amber and lammps need a variant) and produce a runnable body.
func TestDefaultsResolve(t *testing.T) {
	for _, name := range Names() {
		spec := Spec{Name: name}
		switch name {
		case "amber":
			spec.Arg = "JAC"
		case "lammps":
			spec.Arg = "lj"
		}
		wl, err := New(spec)
		if err != nil {
			t.Fatalf("New(%+v): %v", spec, err)
		}
		if wl.Body == nil {
			t.Fatalf("%s: nil body", name)
		}
		// lmbench reports through per-test keys; every other family
		// declares at least one display metric.
		if name != "lmbench" && len(wl.Metrics) == 0 {
			t.Fatalf("%s: no metrics", name)
		}
		for _, m := range wl.Metrics {
			if m.Key == "" || m.Label == "" || m.Format == nil {
				t.Fatalf("%s: incomplete metric %+v", name, m)
			}
		}
	}
}

func TestUnknownWorkload(t *testing.T) {
	_, err := New(Spec{Name: "nbody"})
	if err == nil {
		t.Fatal("unknown workload accepted")
	}
	if !strings.Contains(err.Error(), "known:") {
		t.Fatalf("error should list known names: %v", err)
	}
}

func TestVariantValidation(t *testing.T) {
	if _, err := New(Spec{Name: "stream", Arg: "bogus"}); err == nil {
		t.Fatal("stream accepted a variant argument")
	}
	if _, err := New(Spec{Name: "amber"}); err == nil {
		t.Fatal("amber resolved without a benchmark name")
	}
	if _, err := New(Spec{Name: "amber", Arg: "nope"}); err == nil {
		t.Fatal("amber accepted an unknown benchmark")
	}
	if _, err := New(Spec{Name: "lammps", Arg: "nope"}); err == nil {
		t.Fatal("lammps accepted an unknown potential")
	}
	if _, err := New(Spec{Name: "cg", Class: "Z"}); err == nil {
		t.Fatal("cg accepted an unknown class")
	}
}

func TestDuplicateRegistrationPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate registration did not panic")
		}
	}()
	Register("stream", func(Spec) (Workload, error) { return Workload{}, nil })
}
