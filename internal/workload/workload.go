// Package workload is the single registry mapping workload names to
// runnable MPI rank bodies. It replaces the two parallel dispatch paths
// that used to exist — the switch in cmd/mcrun and the per-table run
// bodies in internal/experiments — so a workload is defined once, with
// its default parameters and report metrics, and every consumer (the CLI,
// the experiment sweeps, future tools) resolves it through the same
// table.
//
// A workload is named by a Spec: the family name plus optional variant
// argument ("amber:JAC"), NPB problem class, step count, and problem
// size. Zero-valued Spec fields select the family's documented default,
// which matches what cmd/mcrun has always run.
package workload

import (
	"fmt"
	"sort"
	"strings"
	"sync"

	"multicore/internal/mpi"
)

// Spec names a workload plus its run parameters. The zero value of every
// optional field means "the family default".
type Spec struct {
	// Name is the workload family: "stream", "cg", "amber", ...
	Name string
	// Arg selects a variant within the family, e.g. the AMBER benchmark
	// ("JAC") or the LAMMPS potential ("eam"). Families without variants
	// reject a non-empty Arg.
	Arg string
	// Class overrides the NPB problem class ("A", "B", "W"); only the
	// NPB kernels consult it.
	Class string
	// Steps overrides the MD/time-step count for the applications
	// (AMBER, LAMMPS, POP).
	Steps int
	// N overrides the problem size for the kernels that take one
	// (daxpy, dgemm, fft, ptrans, hpl).
	N int
}

// ParseSpec parses the CLI form "name" or "name:arg" (e.g. "amber:JAC").
func ParseSpec(s string) (Spec, error) {
	name, arg, _ := strings.Cut(s, ":")
	if name == "" {
		return Spec{}, fmt.Errorf("workload: empty workload name in %q", s)
	}
	return Spec{Name: name, Arg: arg}, nil
}

// String renders the spec back in CLI form.
func (s Spec) String() string {
	if s.Arg != "" {
		return s.Name + ":" + s.Arg
	}
	return s.Name
}

// Metric describes one value a workload reports per rank.
type Metric struct {
	// Key is the r.Report key the body emits.
	Key string
	// Label is the human-readable name for CLI output.
	Label string
	// Format renders a value of this metric for display.
	Format func(float64) string
}

// Workload is a resolved, runnable workload.
type Workload struct {
	// Body is the SPMD rank body, runnable under mpi or core.
	Body func(*mpi.Rank)
	// Metrics lists the report keys the body emits, in display order.
	Metrics []Metric
}

// Factory builds a Workload from a spec. It validates the spec (unknown
// variant, unsupported class) and applies family defaults.
type Factory func(Spec) (Workload, error)

var registry = struct {
	sync.Mutex
	m map[string]Factory
}{m: map[string]Factory{}}

// Register installs a factory for a family name. Registering a duplicate
// name panics: it is a programming error, caught at init time.
func Register(name string, f Factory) {
	registry.Lock()
	defer registry.Unlock()
	if _, dup := registry.m[name]; dup {
		panic(fmt.Sprintf("workload: duplicate registration of %q", name))
	}
	registry.m[name] = f
}

// New resolves a spec to a runnable workload via the registry.
func New(spec Spec) (Workload, error) {
	registry.Lock()
	f, ok := registry.m[spec.Name]
	registry.Unlock()
	if !ok {
		return Workload{}, fmt.Errorf("workload: unknown workload %q (known: %s)",
			spec.Name, strings.Join(Names(), ", "))
	}
	return f(spec)
}

// Names lists the registered family names, sorted.
func Names() []string {
	registry.Lock()
	defer registry.Unlock()
	names := make([]string, 0, len(registry.m))
	for n := range registry.m {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// noArg rejects a variant argument for families that have none.
func noArg(s Spec) error {
	if s.Arg != "" {
		return fmt.Errorf("workload: %s takes no variant argument (got %q)", s.Name, s.Arg)
	}
	return nil
}
