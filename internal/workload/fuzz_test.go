package workload

import (
	"strings"
	"testing"
)

// FuzzParseSpec asserts that CLI workload specs never panic the parser or
// the registry dispatch: ParseSpec on arbitrary input either errors or
// yields a Spec whose String round-trips, and New on that spec (with
// arbitrary class/steps/size overrides) returns a workload or an error —
// the factories must reject hostile parameters, not crash on them.
func FuzzParseSpec(f *testing.F) {
	seeds := []struct {
		spec  string
		class string
		steps int
		n     int
	}{
		{"stream", "", 0, 0},
		{"cg", "A", 0, 0},
		{"amber:JAC", "", 100, 0},
		{"lammps:eam", "", -5, 0},
		{"daxpy", "", 0, 1 << 20},
		{"hpl", "Z", 0, -1},
		{"pop:variant", "", 0, 0},
		{":arg", "", 0, 0},
		{"ft:A:B", "W", 7, 7},
		{"unknown-workload", "", 0, 0},
		{"ra", "x", 1 << 30, 1 << 30},
	}
	for _, s := range seeds {
		f.Add(s.spec, s.class, s.steps, s.n)
	}
	f.Fuzz(func(t *testing.T, raw, class string, steps, n int) {
		spec, err := ParseSpec(raw)
		if err != nil {
			return
		}
		// The CLI form must round-trip for specs without embedded colons
		// in the arg (ParseSpec cuts at the first colon).
		if rt := spec.String(); !strings.HasPrefix(raw, rt) && rt != raw {
			if _, err := ParseSpec(rt); err != nil {
				t.Fatalf("re-rendered spec %q (from %q) does not re-parse: %v", rt, raw, err)
			}
		}
		spec.Class = class
		spec.Steps = steps
		spec.N = n
		w, err := New(spec)
		if err != nil {
			return
		}
		if w.Body == nil {
			t.Fatalf("New(%+v) returned a workload with no body", spec)
		}
	})
}
