package workload

import (
	"fmt"
	"math"
)

// This file derives closed-form *analytic profiles* from the same cost
// constants the simulated kernel bodies use: per-rank flop counts,
// sequential and latency-bound memory traffic, working-set sizes, and
// the communication pattern mix. The analytic screening tier
// (internal/analytic) prices a profile against a machine spec in
// microseconds, where the fluid simulation of the same body costs
// O(events).
//
// Profiles are approximations by design: loop-carried cache warm-up,
// contention transients, and collective skew are folded into constants,
// and machine-dependent blocking factors use a fixed representative
// geometry. Per-(family, system) calibration factors
// (analytic.Calibrate) absorb constant error; what a profile must get
// right is the *shape* — how work and traffic scale with the rank count
// and how placement-sensitive each phase's memory traffic is.

// CommPattern classifies one communication exchange of a profile.
type CommPattern uint8

const (
	// CommBarrier is a dissemination barrier (Bytes ignored).
	CommBarrier CommPattern = iota
	// CommP2P is Count sequential point-to-point messages of Bytes each.
	CommP2P
	// CommRing is Count nearest-neighbour Sendrecv steps of Bytes each.
	CommRing
	// CommAlltoall is Count all-to-all operations moving Bytes per peer
	// pair (the pairwise-exchange algorithm: ranks-1 sequential steps).
	CommAlltoall
	// CommAllgather is Count ring allgathers of Bytes per piece.
	CommAllgather
	// CommAllreduce is Count allreduces of a Bytes payload.
	CommAllreduce
	// CommBcast is Count broadcasts of a Bytes payload.
	CommBcast
)

// Exchange is one communication term of a profile.
type Exchange struct {
	Pattern CommPattern
	Count   float64 // operations over the whole run
	Bytes   float64 // payload per operation (pattern-specific meaning)
}

// Phase is one kernel phase of a profile: a compute block overlapped
// with its memory traffic, exactly like the simulator's CPU.Overlap.
// All quantities are per-rank totals over the run.
type Phase struct {
	// EffFlops is the efficiency-weighted flop count of the phase:
	// flops/efficiency, so compute seconds = EffFlops/PeakFlops.
	EffFlops float64
	// StreamBytes is the sequential DRAM traffic, with write streams
	// already doubled (write-allocate + writeback, as in mem.Cache).
	StreamBytes float64
	// StreamWS, when positive and cache-resident, serves StreamBytes
	// beyond one cold fill from L2 instead of DRAM.
	StreamWS float64
	// StreamCeiling optionally caps the stream DRAM rate in B/s,
	// mirroring mem.Access.RateCeiling (e.g. the CG SpMV gather bound).
	StreamCeiling float64
	// RandomTouches and ChaseTouches count latency-bound line fetches
	// (independent misses with MLP, and dependent MLP=1 chains).
	RandomTouches float64
	ChaseTouches  float64
	// TouchWS is the region size behind the latency-bound touches; the
	// cache-resident fraction min(1, cache/TouchWS) of them hits in L2.
	TouchWS float64
}

// Profile is the per-rank closed-form work of one workload at one rank
// count.
type Profile struct {
	// Family is the workload family name ("stream", "cg", ...).
	Family string
	// Phases are the kernel phases, priced independently and summed.
	Phases []Phase
	// ChaseSweep, when non-empty, is a latency-probe sweep (lmbench):
	// for each region size, ChaseSweepTouches dependent touches run
	// twice (warm-up + measured) with cache residency applied per size.
	ChaseSweep        []float64
	ChaseSweepTouches float64
	// Exchanges lists the communication terms (empty for single-rank
	// runs and communication-free kernels).
	Exchanges []Exchange
	// Uncertainty is the family's base relative model uncertainty: how
	// far the closed form is trusted before calibration.
	Uncertainty float64
}

// ceilLog2 returns ceil(log2(n)) for n >= 1.
func ceilLog2(n int) float64 {
	if n <= 1 {
		return 0
	}
	return math.Ceil(math.Log2(float64(n)))
}

// ProfileFor derives the analytic profile of a workload spec at a rank
// count. Unknown families return an error; the screening tier treats
// those cells as unestimable and promotes them to full simulation.
func ProfileFor(spec Spec, ranks int) (Profile, error) {
	if ranks < 1 {
		return Profile{}, fmt.Errorf("workload: profile needs a positive rank count, got %d", ranks)
	}
	p := float64(ranks)
	switch spec.Name {
	case "stream":
		// 4 timed triad sweeps + 1 warm-up over three 32 MiB vectors:
		// two read streams plus one doubled write stream per sweep.
		v := 32.0 * 1024 * 1024
		sweeps := 5.0
		return Profile{
			Family: "stream",
			Phases: []Phase{{
				EffFlops:    sweeps * 2 * (v / 8) / 0.5,
				StreamBytes: sweeps * 4 * v,
			}},
			Uncertainty: 0.10,
		}, nil

	case "daxpy":
		n := float64(defaulted(spec.N, defaultDaxpyN))
		passes := 9.0 // 8 timed + warm-up
		return Profile{
			Family: "daxpy",
			Phases: []Phase{{
				EffFlops:    passes * 2 * n / 0.6,
				StreamBytes: passes * 4 * 8 * n, // read x,y + doubled write y
			}},
			Uncertainty: 0.10,
		}, nil

	case "dgemm":
		n := float64(defaulted(spec.N, defaultDgemmN))
		passes := 3.0 // 2 timed + warm-up
		const reuse = 48.0
		return Profile{
			Family: "dgemm",
			Phases: []Phase{{
				EffFlops:    passes * 2 * n * n * n / 0.85,
				StreamBytes: passes * (2*8*n*n*n/reuse + 2*8*n*n),
			}},
			Uncertainty: 0.15,
		}, nil

	case "fft":
		total := float64(defaulted(spec.N, defaultFFTN))
		nLocal := total / p
		iters := 2.0
		// Two local sub-passes per iteration; the blocked transform makes
		// a fixed ~2 read+write sweeps of the local data per sub-pass.
		const memPasses = 2.0
		flops := iters * (2*5*nLocal*math.Log2(math.Max(nLocal, 2)) + 6*nLocal)
		prof := Profile{
			Family: "fft",
			Phases: []Phase{{
				EffFlops:    flops / 0.22,
				StreamBytes: iters * 2 * memPasses * 3 * 16 * nLocal,
			}},
			Uncertainty: 0.15,
		}
		if ranks > 1 {
			prof.Exchanges = []Exchange{
				{Pattern: CommBarrier, Count: 1},
				{Pattern: CommAlltoall, Count: iters * 2, Bytes: 16 * nLocal / p},
			}
		}
		return prof, nil

	case "ra":
		table := 64.0 * 1024 * 1024
		updates := 4 * table / 8
		perRank := updates / p
		prof := Profile{
			Family: "ra",
			Phases: []Phase{{
				EffFlops:      perRank * 2 / 0.5,
				RandomTouches: perRank,
				TouchWS:       table / p,
			}},
			Uncertainty: 0.15,
		}
		if ranks > 1 {
			perRound := 1024.0
			rounds := perRank / perRound
			prof.Exchanges = []Exchange{
				{Pattern: CommAlltoall, Count: rounds, Bytes: perRound * (1 - 1/p) / (p - 1) * 8},
			}
		}
		return prof, nil

	case "ptrans":
		n := float64(defaulted(spec.N, defaultPtransN))
		localBytes := 8 * n * n / p
		iters := 2.0
		prof := Profile{
			Family: "ptrans",
			Phases: []Phase{{
				EffFlops:    iters * (localBytes / 8) / 0.5,
				StreamBytes: iters * 3 * localBytes, // read src + doubled write dst
			}},
			Uncertainty: 0.20,
		}
		if ranks > 1 {
			prof.Exchanges = []Exchange{
				{Pattern: CommAlltoall, Count: iters, Bytes: 8 * n * n / (p * p)},
			}
		}
		return prof, nil

	case "hpl":
		n := float64(defaulted(spec.N, defaultHPLN))
		const nb = 64.0
		panels := math.Floor(n / nb)
		sumM := panels*n - nb*panels*(panels-1)/2 // sum of trailing heights
		sumM2 := 0.0
		for k := 0.0; k < panels; k++ {
			m := n - k*nb
			sumM2 += m * m
		}
		const reuse = 48.0
		prof := Profile{
			Family: "hpl",
			Phases: []Phase{
				{ // panel factorizations, owner work amortized over ranks
					EffFlops:    nb * nb * sumM / 0.35 / p,
					StreamBytes: 8 * nb * sumM / p,
				},
				{ // blocked trailing-matrix updates
					EffFlops:    2 * nb * sumM2 / (0.8 * p),
					StreamBytes: 16 * nb * sumM2 / (reuse * p),
				},
			},
			Uncertainty: 0.20,
		}
		if ranks > 1 {
			prof.Exchanges = []Exchange{
				{Pattern: CommBcast, Count: panels, Bytes: 8 * nb * (sumM / panels)},
				{Pattern: CommBarrier, Count: 1},
			}
		}
		return prof, nil

	case "cg":
		// NPB CG: ClassA N=14000 with 132 nonzeros per row, 15 outer x 25
		// inner iterations on a 2D power-of-two process grid.
		n, nnzRow, outer := 14000.0, 132.0, 15.0
		switch spec.Class {
		case "", "A":
		case "W":
			n, nnzRow, outer = 7000.0, 64.0, 15.0
		case "B":
			n, nnzRow, outer = 75000.0, 143.0, 75.0
		default:
			return Profile{}, fmt.Errorf("workload: no analytic profile for cg class %q", spec.Class)
		}
		inner := outer * 25
		nnzLocal := n * nnzRow / p
		cols := math.Pow(2, math.Floor(ceilLog2(ranks)/2))
		blk := 8 * n / p
		prof := Profile{
			Family: "cg",
			Phases: []Phase{
				{ // SpMV: rate-bound matrix stream + x-vector gathers
					EffFlops:      inner * 2 * nnzLocal / 0.12,
					StreamBytes:   inner * 12 * nnzLocal,
					StreamCeiling: 1.6e9,
					RandomTouches: inner * nnzLocal,
					TouchWS:       8 * n / cols,
				},
				{ // vector updates: axpy-style streams over the local block
					EffFlops:    inner * 6 * (n / p) / 0.4,
					StreamBytes: inner * 4 * blk,
					StreamWS:    3 * blk,
				},
			},
			Uncertainty: 0.20,
		}
		if ranks > 1 {
			prof.Exchanges = []Exchange{
				{Pattern: CommP2P, Count: inner * ceilLog2(int(cols)+1), Bytes: 8 * n / (cols * math.Max(cols, 1))},
				{Pattern: CommAllreduce, Count: inner * 2, Bytes: 8},
			}
		}
		return prof, nil

	case "ft":
		// NPB FT: ClassA 256x256x128, 6 iterations; per iteration an
		// evolve sweep, a local xy FFT, a global transpose, and a z FFT.
		nx, ny, nz, iters := 256.0, 256.0, 128.0, 6.0
		switch spec.Class {
		case "", "A":
		case "W":
			nx, ny, nz, iters = 128.0, 128.0, 32.0, 6.0
		case "B":
			nx, ny, nz, iters = 512.0, 256.0, 256.0, 20.0
		default:
			return Profile{}, fmt.Errorf("workload: no analytic profile for ft class %q", spec.Class)
		}
		total := nx * ny * nz
		nloc := total / p
		allFlops := 5 * total * math.Log2(total) / p
		prof := Profile{
			Family: "ft",
			Phases: []Phase{
				{ // evolve: memory-bound sweep over the local volume
					EffFlops:    iters * 6 * nloc / 0.25,
					StreamBytes: iters * 3 * 16 * nloc,
				},
				{ // FFT passes: compute-bound, with read+write sweeps
					EffFlops:      iters * allFlops / 0.22,
					StreamBytes:   iters * 3 * 16 * nloc,
					RandomTouches: iters * 1024 / p,
					TouchWS:       16 * nloc,
				},
			},
			Uncertainty: 0.20,
		}
		if ranks > 1 {
			prof.Exchanges = []Exchange{
				{Pattern: CommAlltoall, Count: iters, Bytes: 16 * nloc / p},
				{Pattern: CommAllreduce, Count: iters, Bytes: 16},
			}
		}
		return prof, nil

	case "ep":
		m := 28.0
		if spec.Class == "W" {
			m = 25
		} else if spec.Class == "B" {
			m = 30
		}
		pairs := math.Pow(2, m) / p
		prof := Profile{
			Family:      "ep",
			Phases:      []Phase{{EffFlops: 90 * pairs / 0.4}},
			Uncertainty: 0.10,
		}
		if ranks > 1 {
			prof.Exchanges = []Exchange{{Pattern: CommAllreduce, Count: 1, Bytes: 80}}
		}
		return prof, nil

	case "mg":
		n := 128.0 // ClassW
		iters := 4.0
		if spec.Class == "A" {
			n = 256
		} else if spec.Class == "B" {
			n, iters = 256, 20
		}
		var flops, stream, pts23 float64
		for s := n; s >= 4; s /= 2 {
			pts := s * s * s / p
			flops += 2 * 30 * pts / 0.3
			stream += 2 * (2*8*pts + 2*4*pts)
			pts23 += 2 * math.Pow(pts, 2.0/3.0)
		}
		prof := Profile{
			Family: "mg",
			Phases: []Phase{{
				EffFlops:    iters * flops,
				StreamBytes: iters * stream,
			}},
			Uncertainty: 0.20,
		}
		if ranks > 1 {
			prof.Exchanges = []Exchange{
				{Pattern: CommRing, Count: iters * 2 * 6, Bytes: 8 * pts23 / 12},
			}
		}
		return prof, nil

	case "lmbench":
		// lat_mem_rd: dependent chases over working-set sizes swept from
		// cache-resident to memory-resident, two passes per size.
		var sizes []float64
		for s := 4.0 * 1024; s <= 64*1024*1024; s *= 4 {
			sizes = append(sizes, s)
		}
		return Profile{
			Family:            "lmbench",
			ChaseSweep:        sizes,
			ChaseSweepTouches: 20000,
			Uncertainty:       0.15,
		}, nil

	case "amber":
		return amberProfile(spec, ranks)

	case "lammps":
		return lammpsProfile(spec, ranks)

	case "pop":
		return popProfile(spec, ranks)
	}
	return Profile{}, fmt.Errorf("workload: no analytic profile for family %q", spec.Name)
}

func defaulted(v, def int) int {
	if v == 0 {
		return def
	}
	return v
}

// amberProfile mirrors internal/apps/amber's PME/GB cost constants.
func amberProfile(spec Spec, ranks int) (Profile, error) {
	p := float64(ranks)
	var atoms float64
	gb := false
	switch spec.Arg {
	case "dhfr":
		atoms = 22930
	case "factor_ix":
		atoms = 90906
	case "JAC":
		atoms = 23558
	case "gb_cox2":
		atoms, gb = 18056, true
	case "gb_mb":
		atoms, gb = 2492, true
	default:
		return Profile{}, fmt.Errorf("workload: no analytic profile for amber benchmark %q", spec.Arg)
	}
	steps := float64(defaulted(spec.Steps, defaultMDSteps))
	if gb {
		pairCount := atoms / p * 420
		prof := Profile{
			Family: "amber",
			Phases: []Phase{
				{ // GB pairwise forces over the full pair list
					EffFlops:      steps * 2 * pairCount * 90 / 0.45,
					StreamBytes:   steps * 8 * pairCount,
					RandomTouches: steps * pairCount / 8,
					TouchWS:       72 * atoms / p,
				},
				{ // integration over local atoms
					EffFlops:    steps * 9 * atoms / p / 0.4,
					StreamBytes: steps * 64 * atoms / p,
					StreamWS:    72 * atoms / p,
				},
			},
			Uncertainty: 0.25,
		}
		if ranks > 1 {
			prof.Exchanges = []Exchange{
				{Pattern: CommAllreduce, Count: steps, Bytes: 24 * atoms},
			}
		}
		return prof, nil
	}
	pairCount := atoms / p * 190
	gridPts := math.Pow(2, math.Ceil(math.Log2(atoms*11)))
	fftFlops := 5 * gridPts * math.Log2(gridPts) / p
	prof := Profile{
		Family: "amber",
		Phases: []Phase{
			{ // direct-space pair forces
				EffFlops:      steps * pairCount * 55 / 0.30,
				StreamBytes:   steps * (8*pairCount + 24*atoms/p),
				RandomTouches: steps * pairCount / 8,
				TouchWS:       72 * atoms / p,
			},
			{ // reciprocal space: charge spread + FFTs + integration
				EffFlops:    steps * (640*atoms/p/0.25 + 2*fftFlops/0.22 + 9*atoms/p/0.4),
				StreamBytes: steps * (4*16*gridPts/p + 24*atoms/p),
			},
		},
		Uncertainty: 0.25,
	}
	if ranks > 1 {
		prof.Exchanges = []Exchange{
			{Pattern: CommAlltoall, Count: steps * 4, Bytes: 16 * gridPts / (p * p)},
			{Pattern: CommAllreduce, Count: steps, Bytes: 24 * atoms},
		}
	}
	return prof, nil
}

// lammpsProfile mirrors internal/apps/lammps's per-benchmark constants.
func lammpsProfile(spec Spec, ranks int) (Profile, error) {
	p := float64(ranks)
	var neighbors, flopsPerPair, passes, eff, gatherFrac, haloFactor float64
	chase := false
	switch spec.Arg {
	case "lj":
		neighbors, flopsPerPair, passes, eff, gatherFrac, haloFactor = 37, 45, 1, 0.30, 0.125, 6
	case "chain":
		neighbors, flopsPerPair, passes, eff, gatherFrac, haloFactor = 25, 30, 1, 0.30, 1.0, 1.5
		chase = true
	case "eam":
		neighbors, flopsPerPair, passes, eff, gatherFrac, haloFactor = 45, 60, 2, 0.32, 0.125, 7
	default:
		return Profile{}, fmt.Errorf("workload: no analytic profile for lammps benchmark %q", spec.Arg)
	}
	atoms := 32000.0
	steps := float64(spec.Steps)
	if steps == 0 {
		steps = 100
	}
	aLocal := atoms / p
	pairCount := aLocal * neighbors
	atomBytes := 3 * 24 * aLocal
	listBytes := pairCount * 8
	gathers := steps * pairCount * gatherFrac
	rebuilds := math.Ceil(steps / 10)
	force := Phase{ // pairwise force passes
		EffFlops:    steps * passes * pairCount * flopsPerPair / eff,
		StreamBytes: steps * passes * listBytes,
		StreamWS:    listBytes,
		TouchWS:     atomBytes / 3,
	}
	if chase {
		force.ChaseTouches = gathers
	} else {
		force.RandomTouches = gathers
	}
	prof := Profile{
		Family: "lammps",
		Phases: []Phase{
			force,
			{ // neighbour-list rebuilds every 10 steps
				EffFlops:    rebuilds * 20 * pairCount / 0.25,
				StreamBytes: rebuilds * (atomBytes + 2*listBytes),
			},
			{ // integration over local atoms
				EffFlops:    steps * 12 * aLocal / 0.4,
				StreamBytes: steps * (atomBytes/3 + 2*atomBytes/3),
				StreamWS:    atomBytes,
			},
		},
		Uncertainty: 0.25,
	}
	if ranks > 1 {
		haloBytes := haloFactor * math.Pow(aLocal, 2.0/3.0) * 24
		exchanges := 2.0 // forward + reverse
		if spec.Arg == "eam" {
			exchanges = 3 // + mid-step density exchange
		}
		axes := math.Min(3, ceilLog2(ranks))
		prof.Exchanges = []Exchange{
			{Pattern: CommP2P, Count: steps * exchanges * axes * 2, Bytes: haloBytes},
			{Pattern: CommAllreduce, Count: rebuilds, Bytes: 64},
			{Pattern: CommBarrier, Count: 1},
		}
	}
	return prof, nil
}

// popProfile mirrors internal/apps/pop's grid and cost constants.
func popProfile(spec Spec, ranks int) (Profile, error) {
	p := float64(ranks)
	nx, ny, nz := 320.0, 384.0, 40.0
	steps := float64(defaulted(spec.Steps, defaultMDSteps))
	const cgIters = 150.0
	pts2D := nx * ny / p
	pts3D := pts2D * nz
	tileEdge := math.Sqrt(pts2D)
	prof := Profile{
		Family: "pop",
		Phases: []Phase{
			{ // baroclinic: 3D stencil over the state fields
				EffFlops:    steps * pts3D * 150 / 0.28,
				StreamBytes: steps * (10*8*pts3D + 2*10*8*pts3D/3),
			},
			{ // barotropic: 2D CG solver sweeps
				EffFlops:    steps * cgIters * pts2D * 18 / 0.3,
				StreamBytes: steps * cgIters * 4 * 8 * pts2D,
				StreamWS:    3 * 8 * pts2D,
			},
		},
		Uncertainty: 0.25,
	}
	if ranks > 1 {
		prof.Exchanges = []Exchange{
			{Pattern: CommRing, Count: steps * 2, Bytes: 4 * tileEdge * nz * 8 * 2},
			{Pattern: CommRing, Count: steps * cgIters, Bytes: 4 * tileEdge * 8},
			{Pattern: CommAllreduce, Count: steps * cgIters * 2, Bytes: 8},
		}
	}
	return prof, nil
}
