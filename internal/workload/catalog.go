package workload

import (
	"fmt"

	"multicore/internal/apps/amber"
	"multicore/internal/apps/lammps"
	"multicore/internal/apps/pop"
	"multicore/internal/kernels/blas"
	"multicore/internal/kernels/cg"
	"multicore/internal/kernels/fft"
	"multicore/internal/kernels/hpl"
	"multicore/internal/kernels/lmbench"
	"multicore/internal/kernels/ptrans"
	"multicore/internal/kernels/rnda"
	"multicore/internal/kernels/stream"
	"multicore/internal/mpi"
	"multicore/internal/npb"
	"multicore/internal/units"
)

// Display formatters shared by the catalog entries.
func Seconds(v float64) string { return units.Duration(v) }
func Rate(v float64) string    { return units.Rate(v) }
func Flops(v float64) string   { return units.Flops(v) }
func GUPS(v float64) string    { return fmt.Sprintf("%.4f GUPS", v) }
func GFlops(v float64) string  { return fmt.Sprintf("%.2f GFlop/s", v) }

// Family defaults, matching the historical cmd/mcrun invocations.
const (
	defaultDaxpyN   = 1 << 22
	defaultDgemmN   = 800
	defaultFFTN     = 1 << 22
	defaultPtransN  = 2048
	defaultHPLN     = 2048
	defaultMDSteps  = 10 // AMBER and POP single runs
	defaultNPBClass = npb.ClassA
	defaultMGClass  = npb.ClassW
)

func init() {
	Register("stream", func(s Spec) (Workload, error) {
		if err := noArg(s); err != nil {
			return Workload{}, err
		}
		return Workload{
			Body:    func(r *mpi.Rank) { stream.RunTriad(r, stream.Params{}) },
			Metrics: []Metric{{stream.MetricBandwidth, "triad bandwidth", Rate}},
		}, nil
	})

	Register("daxpy", func(s Spec) (Workload, error) {
		if err := noArg(s); err != nil {
			return Workload{}, err
		}
		n := s.N
		if n == 0 {
			n = defaultDaxpyN
		}
		return Workload{
			Body:    func(r *mpi.Rank) { blas.RunDaxpy(r, blas.DaxpyParams{N: n, Variant: blas.ACML}) },
			Metrics: []Metric{{blas.MetricDaxpyFlops, "DAXPY", Flops}},
		}, nil
	})

	Register("dgemm", func(s Spec) (Workload, error) {
		if err := noArg(s); err != nil {
			return Workload{}, err
		}
		n := s.N
		if n == 0 {
			n = defaultDgemmN
		}
		return Workload{
			Body:    func(r *mpi.Rank) { blas.RunDgemm(r, blas.DgemmParams{N: n, Variant: blas.ACML}) },
			Metrics: []Metric{{blas.MetricDgemmFlops, "DGEMM", Flops}},
		}, nil
	})

	Register("fft", func(s Spec) (Workload, error) {
		if err := noArg(s); err != nil {
			return Workload{}, err
		}
		n := s.N
		if n == 0 {
			n = defaultFFTN
		}
		return Workload{
			Body:    func(r *mpi.Rank) { fft.RunDist(r, fft.DistParams{TotalN: n}) },
			Metrics: []Metric{{fft.MetricFlops, "FFT", Flops}},
		}, nil
	})

	Register("ra", func(s Spec) (Workload, error) {
		if err := noArg(s); err != nil {
			return Workload{}, err
		}
		return Workload{
			Body:    func(r *mpi.Rank) { rnda.Run(r, rnda.Params{MPI: true}) },
			Metrics: []Metric{{rnda.MetricGUPS, "RandomAccess", GUPS}},
		}, nil
	})

	Register("ptrans", func(s Spec) (Workload, error) {
		if err := noArg(s); err != nil {
			return Workload{}, err
		}
		n := s.N
		if n == 0 {
			n = defaultPtransN
		}
		return Workload{
			Body:    func(r *mpi.Rank) { ptrans.Run(r, ptrans.Params{N: n}) },
			Metrics: []Metric{{ptrans.MetricBandwidth, "PTRANS", Rate}},
		}, nil
	})

	Register("hpl", func(s Spec) (Workload, error) {
		if err := noArg(s); err != nil {
			return Workload{}, err
		}
		n := s.N
		if n == 0 {
			n = defaultHPLN
		}
		return Workload{
			Body:    func(r *mpi.Rank) { hpl.Run(r, hpl.Params{N: n}) },
			Metrics: []Metric{{hpl.MetricGFlops, "HPL", GFlops}},
		}, nil
	})

	registerNPB("cg", npb.RunCG, defaultNPBClass, Metric{cg.MetricTime, "CG time", Seconds})
	registerNPB("ft", npb.RunFT, defaultNPBClass, Metric{npb.MetricFTTime, "FT time", Seconds})
	registerNPB("ep", npb.RunEP, defaultNPBClass, Metric{npb.MetricEPTime, "EP time", Seconds})
	registerNPB("mg", npb.RunMG, defaultMGClass, Metric{npb.MetricMGTime, "MG time", Seconds})

	Register("lmbench", func(s Spec) (Workload, error) {
		if err := noArg(s); err != nil {
			return Workload{}, err
		}
		return Workload{
			Body: func(r *mpi.Rank) {
				for _, pt := range lmbench.Run(r, lmbench.Params{}) {
					r.Report(fmt.Sprintf("%s%.0f", lmbench.MetricPrefix, pt.WorkingSetBytes), pt.LatencySeconds)
				}
			},
		}, nil
	})

	Register("amber", func(s Spec) (Workload, error) {
		if s.Arg == "" {
			return Workload{}, fmt.Errorf("workload: amber needs a benchmark, e.g. amber:JAC")
		}
		bench, err := amber.ByName(s.Arg)
		if err != nil {
			return Workload{}, err
		}
		steps := s.Steps
		if steps == 0 {
			steps = defaultMDSteps
		}
		return Workload{
			Body: func(r *mpi.Rank) { amber.Run(r, amber.Params{Bench: bench, Steps: steps}) },
			Metrics: []Metric{
				{amber.MetricTotalTime, "MD loop time", Seconds},
				{amber.MetricFFTTime, "FFT phase time", Seconds},
			},
		}, nil
	})

	Register("lammps", func(s Spec) (Workload, error) {
		if s.Arg == "" {
			return Workload{}, fmt.Errorf("workload: lammps needs a benchmark: lammps:<lj|chain|eam>")
		}
		bench, err := lammps.ByName(s.Arg)
		if err != nil {
			return Workload{}, err
		}
		return Workload{
			Body:    func(r *mpi.Rank) { lammps.Run(r, lammps.Params{Bench: bench, Steps: s.Steps}) },
			Metrics: []Metric{{lammps.MetricTime, "MD loop time", Seconds}},
		}, nil
	})

	Register("pop", func(s Spec) (Workload, error) {
		if err := noArg(s); err != nil {
			return Workload{}, err
		}
		steps := s.Steps
		if steps == 0 {
			steps = defaultMDSteps
		}
		return Workload{
			Body: func(r *mpi.Rank) { pop.Run(r, pop.Params{Steps: steps}) },
			Metrics: []Metric{
				{pop.MetricBaroclinic, "baroclinic time", Seconds},
				{pop.MetricBarotropic, "barotropic time", Seconds},
			},
		}, nil
	})
}

// registerNPB installs one NAS kernel: the run constructor validates the
// class, so the factory surfaces bad -class values as errors.
func registerNPB(name string, run func(npb.Class) (func(*mpi.Rank), error), def npb.Class, m Metric) {
	Register(name, func(s Spec) (Workload, error) {
		if err := noArg(s); err != nil {
			return Workload{}, err
		}
		class := def
		if s.Class != "" {
			class = npb.Class(s.Class)
		}
		body, err := run(class)
		if err != nil {
			return Workload{}, err
		}
		return Workload{Body: body, Metrics: []Metric{m}}, nil
	})
}
