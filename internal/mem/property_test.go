package mem

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// TestCacheInvariantsUnderRandomWorkload drives the cache model with
// arbitrary access sequences and checks its core invariants:
//
//  1. total residency never exceeds capacity,
//  2. traffic + hits account for exactly the requested volume on
//     streaming patterns,
//  3. random misses never exceed the touches requested.
func TestCacheInvariantsUnderRandomWorkload(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		c := NewCache(0, 1<<20, 64)
		nRegions := 1 + rng.Intn(5)
		regions := make([]*Region, nRegions)
		for i := range regions {
			size := float64(1+rng.Intn(4<<20)) + 64
			regions[i] = NewRegion("r", size, Placement{1})
		}
		for op := 0; op < 50; op++ {
			r := regions[rng.Intn(nRegions)]
			var tr Traffic
			switch rng.Intn(4) {
			case 0:
				bytes := rng.Float64() * r.Bytes
				tr = c.Filter(Access{Region: r, Pattern: Stream, Bytes: bytes})
				if tr.MemBytes+tr.HitBytes > bytes*1.0001 {
					return false
				}
			case 1:
				bytes := rng.Float64() * r.Bytes
				tr = c.Filter(Access{Region: r, Pattern: StreamWrite, Bytes: bytes})
				// Write traffic may be up to 2x (allocate + writeback).
				if tr.MemBytes > 2*bytes*1.0001 {
					return false
				}
			case 2:
				touches := float64(rng.Intn(10000))
				tr = c.Filter(Access{Region: r, Pattern: Random, Touches: touches})
				if tr.LatencyTouches > touches*1.0001 {
					return false
				}
			case 3:
				bytes := rng.Float64() * 10 * r.Bytes
				tr = c.Filter(Access{Region: r, Pattern: Blocked, Bytes: bytes, Reuse: 1 + rng.Float64()*63})
				if tr.MemBytes > bytes*1.0001 {
					return false
				}
			}
			if tr.MemBytes < 0 || tr.HitBytes < 0 || tr.LatencyTouches < 0 {
				return false
			}
			// Invariant 1: residency within capacity.
			total := 0.0
			for _, reg := range regions {
				total += reg.resident[c.CoreID]
			}
			if total > c.Capacity+1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// TestWarmRegionNeverColdAgainWithoutEviction: with a single region that
// fits, repeated sweeps stay fully hit.
func TestWarmRegionNeverColdAgainWithoutEviction(t *testing.T) {
	c := NewCache(0, 1<<20, 64)
	r := NewRegion("fit", 512<<10, Placement{1})
	c.Filter(Access{Region: r, Pattern: Stream, Bytes: r.Bytes})
	for i := 0; i < 10; i++ {
		tr := c.Filter(Access{Region: r, Pattern: Stream, Bytes: r.Bytes})
		if tr.MemBytes != 0 {
			t.Fatalf("pass %d generated %v traffic on a warm region", i, tr.MemBytes)
		}
	}
}
