// Package mem models the memory system of a NUMA multi-core node: page
// placement policies equivalent to Linux/numactl behaviour (first-touch
// default, localalloc, interleave, membind) and an analytic per-core cache
// model that converts access batches into DRAM traffic.
package mem

import "fmt"

// Policy selects how pages of a region are distributed over memory nodes.
// These correspond to the numactl policies the paper evaluates (Section 2.1
// and Table 5).
type Policy int

const (
	// FirstTouch places pages on the node whose core first touches them
	// (the Linux default). Under process migration the touching node may
	// differ from where the process later runs.
	FirstTouch Policy = iota
	// LocalAlloc forces pages onto the node running the allocating
	// process (numactl --localalloc).
	LocalAlloc
	// Interleave round-robins pages across all nodes
	// (numactl --interleave=all).
	Interleave
	// Membind forces pages onto an explicitly given node set
	// (numactl --membind). The paper's "Membind" scheme bound memory to
	// fixed nodes independent of where tasks ran, which is why it is the
	// worst performer in their tables.
	Membind
)

func (p Policy) String() string {
	switch p {
	case FirstTouch:
		return "first-touch"
	case LocalAlloc:
		return "localalloc"
	case Interleave:
		return "interleave"
	case Membind:
		return "membind"
	}
	return fmt.Sprintf("Policy(%d)", int(p))
}

// Placement is the fraction of a region's pages on each memory node.
// The fractions sum to 1.
type Placement []float64

// Place computes the node distribution for a new region.
//
//	numNodes  – memory nodes in the system (== sockets on Opteron)
//	homeNode  – node of the core running the toucher/allocator
//	bindNodes – target node set for Membind (ignored otherwise)
func Place(policy Policy, numNodes, homeNode int, bindNodes []int) Placement {
	d := make(Placement, numNodes)
	switch policy {
	case FirstTouch, LocalAlloc:
		d[homeNode] = 1
	case Interleave:
		for i := range d {
			d[i] = 1 / float64(numNodes)
		}
	case Membind:
		if len(bindNodes) == 0 {
			panic("mem: Membind requires at least one bind node")
		}
		for _, n := range bindNodes {
			d[n] += 1 / float64(len(bindNodes))
		}
	default:
		panic("mem: unknown policy " + policy.String())
	}
	return d
}

// Region is a named memory allocation with a node distribution. Regions
// are the granularity at which workloads describe their data structures
// (e.g. the three STREAM vectors, a CG matrix, an FFT plane).
type Region struct {
	Name  string
	Bytes float64
	Dist  Placement

	// resident bytes cached per core id; maintained by Cache.
	resident map[int]float64
}

// NewRegion creates a region of the given size with distribution dist.
func NewRegion(name string, bytes float64, dist Placement) *Region {
	if bytes < 0 {
		panic("mem: negative region size")
	}
	return &Region{Name: name, Bytes: bytes, Dist: dist, resident: make(map[int]float64)}
}

// Split returns per-node byte volumes for a transfer of total bytes from
// this region, honoring its placement distribution.
func (r *Region) Split(total float64) []float64 {
	out := make([]float64, len(r.Dist))
	for i, f := range r.Dist {
		out[i] = total * f
	}
	return out
}
