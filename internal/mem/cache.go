package mem

import "fmt"

// Pattern classifies how a workload touches a region. The pattern decides
// how an access batch translates into DRAM traffic and latency-bound
// touches.
type Pattern int

const (
	// Stream reads a region sequentially (hardware prefetch effective;
	// bandwidth bound).
	Stream Pattern = iota
	// StreamWrite writes a region sequentially. A write miss costs a
	// write-allocate read plus an eventual writeback: 2x traffic.
	StreamWrite
	// Random touches independent random elements (memory-level
	// parallelism available, latency bound at the MLP limit).
	Random
	// Chase follows a dependent pointer chain (no overlap; fully
	// latency bound).
	Chase
	// Blocked is a cache-tiled access (e.g. DGEMM): each byte moved from
	// memory is reused Reuse times, cutting traffic accordingly.
	Blocked
)

func (p Pattern) String() string {
	switch p {
	case Stream:
		return "stream"
	case StreamWrite:
		return "stream-write"
	case Random:
		return "random"
	case Chase:
		return "chase"
	case Blocked:
		return "blocked"
	}
	return fmt.Sprintf("Pattern(%d)", int(p))
}

// Access describes one batch of memory operations issued by a core.
type Access struct {
	Region  *Region
	Pattern Pattern
	// Bytes is the logical volume touched by streaming/blocked patterns.
	Bytes float64
	// Touches is the number of element touches for Random/Chase.
	Touches float64
	// Reuse is the reuse factor for Blocked (>= 1).
	Reuse float64
	// RateCeiling optionally bounds the access's aggregate DRAM rate in
	// B/s (e.g. indexed/strided streams that cannot saturate the issue
	// port). Zero means unbounded.
	RateCeiling float64
}

// Traffic is what an access batch costs after cache filtering.
type Traffic struct {
	// MemBytes is the DRAM traffic the batch generates.
	MemBytes float64
	// HitBytes is the volume served from cache.
	HitBytes float64
	// LatencyTouches is the number of latency-bound line fetches
	// (Random/Chase misses); the machine converts these to time using
	// the NUMA round-trip latency and the pattern's MLP.
	LatencyTouches float64
}

// Cache is the analytic per-core cache model: a single capacity (L1+L2,
// exclusive on Opteron) with LRU region tracking. Rather than simulating
// individual lines, it tracks how many bytes of each region are resident
// per core and derives hit fractions.
type Cache struct {
	CoreID   int
	Capacity float64 // bytes (L1 data + L2)
	Line     float64 // bytes per line

	// LRU order of regions with resident bytes on this core,
	// most-recently-used first.
	lru []*Region
}

// NewCache creates a cache model for one core.
func NewCache(coreID int, capacity, line float64) *Cache {
	if capacity <= 0 || line <= 0 {
		panic("mem: cache capacity and line must be positive")
	}
	return &Cache{CoreID: coreID, Capacity: capacity, Line: line}
}

// residentOf returns resident bytes of r on this core.
func (c *Cache) residentOf(r *Region) float64 { return r.resident[c.CoreID] }

// touch installs `bytes` of region r as resident, evicting LRU regions.
func (c *Cache) touch(r *Region, bytes float64) {
	if bytes > c.Capacity {
		bytes = c.Capacity
	}
	if bytes > r.Bytes {
		bytes = r.Bytes
	}
	// Move/insert r at the front of the LRU list.
	for i, reg := range c.lru {
		if reg == r {
			c.lru = append(c.lru[:i], c.lru[i+1:]...)
			break
		}
	}
	c.lru = append([]*Region{r}, c.lru...)
	if bytes > r.resident[c.CoreID] {
		r.resident[c.CoreID] = bytes
	}
	// Evict from the back (never the just-touched front) until within
	// capacity.
	total := 0.0
	for _, reg := range c.lru {
		total += reg.resident[c.CoreID]
	}
	for total > c.Capacity && len(c.lru) > 1 {
		last := c.lru[len(c.lru)-1]
		over := total - c.Capacity
		if last.resident[c.CoreID] > over {
			last.resident[c.CoreID] -= over
			total = c.Capacity
			break
		}
		total -= last.resident[c.CoreID]
		delete(last.resident, c.CoreID)
		c.lru = c.lru[:len(c.lru)-1]
	}
	if total > c.Capacity {
		// Only the touched region remains; clamp it.
		r.resident[c.CoreID] = c.Capacity
	}
}

// Filter converts an access batch into DRAM traffic given current cache
// contents, and updates the resident-set model.
func (c *Cache) Filter(a Access) Traffic {
	r := a.Region
	if r == nil {
		panic("mem: access without region")
	}
	switch a.Pattern {
	case Stream, StreamWrite:
		res := c.residentOf(r)
		factor := 1.0
		if a.Pattern == StreamWrite {
			factor = 2.0 // write-allocate + writeback
		}
		// Partially-resident sweeps hit on the resident share (recency
		// keeps re-referenced lines ahead of a one-shot pass).
		hitFrac := 0.0
		if r.Bytes > 0 {
			hitFrac = res / r.Bytes
			if hitFrac > 1 {
				hitFrac = 1
			}
		}
		// A region that fits becomes resident for next time; an
		// over-capacity stream has no reuse and claims only a residual
		// slice, so concurrently-hot small regions survive.
		claim := r.Bytes
		if claim > c.Capacity {
			claim = c.Capacity / 8
		}
		c.touch(r, claim)
		return Traffic{
			MemBytes: a.Bytes * (1 - hitFrac) * factor,
			HitBytes: a.Bytes * hitFrac,
		}

	case Random, Chase:
		res := c.residentOf(r)
		hitFrac := 0.0
		if r.Bytes > 0 {
			hitFrac = res / r.Bytes
			if hitFrac > 1 {
				hitFrac = 1
			}
		}
		misses := a.Touches * (1 - hitFrac)
		c.touch(r, r.Bytes) // random touches populate up to capacity share
		return Traffic{
			MemBytes: misses * c.Line,
			// Hits are pipelined element loads, not full line refills.
			HitBytes:       a.Touches * hitFrac * 8,
			LatencyTouches: misses,
		}

	case Blocked:
		// Cache-tile service time is part of the kernel's compute
		// efficiency, so blocked accesses report DRAM traffic only.
		reuse := a.Reuse
		if reuse < 1 {
			reuse = 1
		}
		if r.Bytes <= c.Capacity && c.residentOf(r) >= r.Bytes-1 {
			c.touch(r, r.Bytes)
			return Traffic{}
		}
		claim := r.Bytes
		if claim > c.Capacity {
			claim = c.Capacity / 2 // the active tile set
		}
		c.touch(r, claim)
		return Traffic{MemBytes: a.Bytes / reuse}
	}
	panic("mem: unknown pattern " + a.Pattern.String())
}

// Flush drops all resident bytes on this core (e.g. after a context
// migration in the unbound OS model).
func (c *Cache) Flush() {
	for _, r := range c.lru {
		delete(r.resident, c.CoreID)
	}
	c.lru = nil
}
