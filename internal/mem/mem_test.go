package mem

import (
	"math"
	"testing"
	"testing/quick"
)

func TestPlaceLocal(t *testing.T) {
	for _, pol := range []Policy{FirstTouch, LocalAlloc} {
		d := Place(pol, 4, 2, nil)
		if d[2] != 1 {
			t.Fatalf("%v: dist = %v", pol, d)
		}
		for i, f := range d {
			if i != 2 && f != 0 {
				t.Fatalf("%v: dist = %v", pol, d)
			}
		}
	}
}

func TestPlaceInterleave(t *testing.T) {
	d := Place(Interleave, 8, 0, nil)
	sum := 0.0
	for _, f := range d {
		if math.Abs(f-0.125) > 1e-12 {
			t.Fatalf("interleave dist = %v", d)
		}
		sum += f
	}
	if math.Abs(sum-1) > 1e-12 {
		t.Fatalf("interleave does not sum to 1: %v", sum)
	}
}

func TestPlaceMembind(t *testing.T) {
	d := Place(Membind, 4, 0, []int{3})
	if d[3] != 1 || d[0] != 0 {
		t.Fatalf("membind dist = %v", d)
	}
	d = Place(Membind, 4, 0, []int{1, 2})
	if d[1] != 0.5 || d[2] != 0.5 {
		t.Fatalf("membind two-node dist = %v", d)
	}
}

func TestPlaceMembindEmptyPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Place(Membind, 4, 0, nil)
}

func TestPlacementSumsToOne(t *testing.T) {
	f := func(nodes uint8, home uint8) bool {
		n := int(nodes%7) + 1
		h := int(home) % n
		for _, pol := range []Policy{FirstTouch, LocalAlloc, Interleave} {
			d := Place(pol, n, h, nil)
			sum := 0.0
			for _, v := range d {
				if v < 0 {
					return false
				}
				sum += v
			}
			if math.Abs(sum-1) > 1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestRegionSplit(t *testing.T) {
	r := NewRegion("x", 1000, Placement{0.25, 0.75})
	parts := r.Split(400)
	if parts[0] != 100 || parts[1] != 300 {
		t.Fatalf("split = %v", parts)
	}
}

func newTestCache() *Cache { return NewCache(0, 1<<20, 64) } // 1 MB, 64 B lines

func TestStreamColdThenResident(t *testing.T) {
	c := newTestCache()
	r := NewRegion("small", 512<<10, Placement{1}) // 512 KB fits
	tr := c.Filter(Access{Region: r, Pattern: Stream, Bytes: r.Bytes})
	if tr.MemBytes != r.Bytes {
		t.Fatalf("cold pass traffic = %v, want %v", tr.MemBytes, r.Bytes)
	}
	tr = c.Filter(Access{Region: r, Pattern: Stream, Bytes: r.Bytes})
	if tr.MemBytes != 0 || tr.HitBytes != r.Bytes {
		t.Fatalf("warm pass traffic = %+v", tr)
	}
}

func TestStreamOverCapacityMostlyMisses(t *testing.T) {
	c := newTestCache()
	r := NewRegion("big", 8<<20, Placement{1})
	for pass := 0; pass < 3; pass++ {
		tr := c.Filter(Access{Region: r, Pattern: Stream, Bytes: r.Bytes})
		// Only the small residual slice (capacity/8 of an 8x-capacity
		// region, ~1.6%) can hit.
		if tr.MemBytes < 0.97*r.Bytes {
			t.Fatalf("pass %d traffic = %v, want ~%v", pass, tr.MemBytes, r.Bytes)
		}
	}
}

func TestStreamWriteDoublesTraffic(t *testing.T) {
	c := newTestCache()
	r := NewRegion("w", 8<<20, Placement{1})
	tr := c.Filter(Access{Region: r, Pattern: StreamWrite, Bytes: r.Bytes})
	if tr.MemBytes != 2*r.Bytes { // cold region: full write-allocate + writeback
		t.Fatalf("write traffic = %v, want %v", tr.MemBytes, 2*r.Bytes)
	}
}

func TestEvictionBetweenRegions(t *testing.T) {
	c := newTestCache()
	a := NewRegion("a", 768<<10, Placement{1})
	b := NewRegion("b", 768<<10, Placement{1})
	c.Filter(Access{Region: a, Pattern: Stream, Bytes: a.Bytes}) // a resident
	c.Filter(Access{Region: b, Pattern: Stream, Bytes: b.Bytes}) // evicts most of a
	tr := c.Filter(Access{Region: a, Pattern: Stream, Bytes: a.Bytes})
	// Most of a was evicted by b: over half the sweep misses again.
	if tr.MemBytes < a.Bytes/2 {
		t.Fatalf("a should have been mostly evicted; traffic = %v of %v", tr.MemBytes, a.Bytes)
	}
	if tr.MemBytes+tr.HitBytes != a.Bytes {
		t.Fatalf("traffic + hits = %v, want %v", tr.MemBytes+tr.HitBytes, a.Bytes)
	}
}

func TestRandomHitFraction(t *testing.T) {
	c := newTestCache()
	r := NewRegion("tbl", 4<<20, Placement{1}) // 4x capacity
	tr := c.Filter(Access{Region: r, Pattern: Random, Touches: 1000})
	// Cold: all miss.
	if tr.LatencyTouches != 1000 || tr.MemBytes != 1000*64 {
		t.Fatalf("cold random = %+v", tr)
	}
	// Now 1 MB of 4 MB resident: 25% hit.
	tr = c.Filter(Access{Region: r, Pattern: Random, Touches: 1000})
	if math.Abs(tr.LatencyTouches-750) > 1 {
		t.Fatalf("warm random misses = %v, want 750", tr.LatencyTouches)
	}
}

func TestChaseFullyResidentRegionHits(t *testing.T) {
	c := newTestCache()
	r := NewRegion("list", 256<<10, Placement{1})
	c.Filter(Access{Region: r, Pattern: Stream, Bytes: r.Bytes})
	tr := c.Filter(Access{Region: r, Pattern: Chase, Touches: 5000})
	if tr.LatencyTouches != 0 {
		t.Fatalf("resident chase misses = %v, want 0", tr.LatencyTouches)
	}
}

func TestBlockedReuseCutsTraffic(t *testing.T) {
	c := newTestCache()
	r := NewRegion("mat", 64<<20, Placement{1})
	tr := c.Filter(Access{Region: r, Pattern: Blocked, Bytes: 32 << 20, Reuse: 16})
	if math.Abs(tr.MemBytes-(32<<20)/16) > 1 {
		t.Fatalf("blocked traffic = %v, want %v", tr.MemBytes, (32<<20)/16)
	}
}

func TestBlockedResidentRegionFree(t *testing.T) {
	c := newTestCache()
	r := NewRegion("small", 128<<10, Placement{1})
	c.Filter(Access{Region: r, Pattern: Stream, Bytes: r.Bytes})
	tr := c.Filter(Access{Region: r, Pattern: Blocked, Bytes: 10 << 20, Reuse: 4})
	if tr.MemBytes != 0 {
		t.Fatalf("resident blocked traffic = %v", tr.MemBytes)
	}
}

func TestFlushDropsResidency(t *testing.T) {
	c := newTestCache()
	r := NewRegion("small", 128<<10, Placement{1})
	c.Filter(Access{Region: r, Pattern: Stream, Bytes: r.Bytes})
	c.Flush()
	tr := c.Filter(Access{Region: r, Pattern: Stream, Bytes: r.Bytes})
	if tr.MemBytes != r.Bytes {
		t.Fatalf("post-flush traffic = %v, want all misses", tr.MemBytes)
	}
}

func TestPerCoreResidencyIsIndependent(t *testing.T) {
	c0 := NewCache(0, 1<<20, 64)
	c1 := NewCache(1, 1<<20, 64)
	r := NewRegion("shared", 256<<10, Placement{1})
	c0.Filter(Access{Region: r, Pattern: Stream, Bytes: r.Bytes})
	tr := c1.Filter(Access{Region: r, Pattern: Stream, Bytes: r.Bytes})
	if tr.MemBytes != r.Bytes {
		t.Fatalf("core 1 should be cold; traffic = %v", tr.MemBytes)
	}
}

func TestCacheResidencyNeverExceedsCapacity(t *testing.T) {
	c := newTestCache()
	regions := []*Region{
		NewRegion("a", 600<<10, Placement{1}),
		NewRegion("b", 600<<10, Placement{1}),
		NewRegion("c", 600<<10, Placement{1}),
	}
	for pass := 0; pass < 4; pass++ {
		for _, r := range regions {
			c.Filter(Access{Region: r, Pattern: Stream, Bytes: r.Bytes})
			total := 0.0
			for _, rr := range regions {
				total += rr.resident[c.CoreID]
			}
			if total > c.Capacity+1 {
				t.Fatalf("resident total %v exceeds capacity %v", total, c.Capacity)
			}
		}
	}
}
