package core

import (
	"math"
	"runtime"
	"testing"

	"multicore/internal/mpi"
)

// ringHalo is the scale smoke workload: a few steps of compute plus a
// shift around the rank ring — the halo-exchange skeleton of the paper's
// stencil kernels, cheap enough that 10k ranks simulate in seconds.
func ringHalo(steps int, bytes float64) func(*mpi.Rank) {
	return func(r *mpi.Rank) {
		n := r.Size()
		right, left := (r.ID()+1)%n, (r.ID()+n-1)%n
		for s := 0; s < steps; s++ {
			r.Compute(1e6, 0.9)
			r.Sendrecv(right, bytes, left)
		}
	}
}

// scaleJob is a Longs cluster sized to total ranks (16 ranks per node).
func scaleJob(totalRanks, settleWorkers int) Job {
	return Job{
		System:        "longs",
		Ranks:         16,
		Nodes:         totalRanks / 16,
		Net:           mpi.RapidArray(),
		Impl:          mpi.MPICH2(),
		SettleWorkers: settleWorkers,
	}
}

// fingerprint reduces a result to the values a scale regression would
// disturb: the exact makespan bits plus traffic totals.
func fingerprint(res *mpi.Result) [3]uint64 {
	return [3]uint64{math.Float64bits(res.Time), uint64(res.Messages), math.Float64bits(res.Bytes)}
}

// TestScaleSmoke10kRanks: a 10240-rank Longs-cluster ring halo must
// complete, reproduce bit-identically across runs and settle-worker
// counts, and stay within a flat per-rank memory budget — the engine
// scale-up contract. Skipped under -short.
func TestScaleSmoke10kRanks(t *testing.T) {
	if testing.Short() {
		t.Skip("10k-rank smoke test skipped in -short mode")
	}
	const totalRanks = 10240

	// Sample the footprint mid-run, from inside rank 0's last step: every
	// rank process is alive, helpers and flows are churning — the point a
	// per-rank memory regression is visible. (Measuring after Run would
	// miss it: workers and their stacks are released at shutdown.)
	var mid runtime.MemStats
	body := func(r *mpi.Rank) {
		n := r.Size()
		right, left := (r.ID()+1)%n, (r.ID()+n-1)%n
		for s := 0; s < 3; s++ {
			r.Compute(1e6, 0.9)
			r.Sendrecv(right, 4096, left)
			if s == 2 && r.ID() == 0 {
				runtime.ReadMemStats(&mid)
			}
		}
	}
	res, err := Run(scaleJob(totalRanks, 0), body)
	if err != nil {
		t.Fatalf("10k-rank cell failed: %v", err)
	}

	if res.Time <= 0 {
		t.Fatal("no simulated time elapsed")
	}
	if got := res.Stats.Spawns; got < totalRanks {
		t.Errorf("spawned %d processes, want >= %d ranks", got, totalRanks)
	}

	// Flat memory: O(ranks) with a small constant. Each rank body still
	// owns a goroutine (user bodies are arbitrary synchronous code), so
	// ~4KB/rank of stack is inherent; helpers, messages, and flows ride
	// the continuation/arena paths and add heap measured in hundreds of
	// bytes per rank plus uncollected garbage. Today the cell sits around
	// 15KB/rank mid-run; 32KB/rank is loose enough for GC-timing noise
	// yet fails fast if helpers regress to goroutines (stack blow-up) or
	// spawn/teardown starts allocating per message.
	perRank := (mid.HeapAlloc + mid.StackInuse) / totalRanks
	if perRank > 32*1024 {
		t.Errorf("mid-run footprint %d B/rank (heap %d MB + stacks %d MB), want <= 32KB/rank",
			perRank, mid.HeapAlloc>>20, mid.StackInuse>>20)
	}
	if stackPerRank := mid.StackInuse / totalRanks; stackPerRank > 12*1024 {
		t.Errorf("mid-run stacks %d B/rank, want <= 12KB/rank (one goroutine per rank, none per helper)",
			stackPerRank)
	}

	// Determinism: a second serial run and component-mode runs at two
	// different worker counts must all produce the same bits.
	base := fingerprint(res)
	again, err := Run(scaleJob(totalRanks, 0), ringHalo(3, 4096))
	if err != nil {
		t.Fatal(err)
	}
	if fingerprint(again) != base {
		t.Errorf("serial rerun fingerprint %v, want %v", fingerprint(again), base)
	}
	for _, workers := range []int{2, 8} {
		par, err := Run(scaleJob(totalRanks, workers), ringHalo(3, 4096))
		if err != nil {
			t.Fatalf("settle=%d: %v", workers, err)
		}
		if workers == 2 {
			base = fingerprint(par) // component mode may differ from union by float rounding
			continue
		}
		if fingerprint(par) != base {
			t.Errorf("settle=%d fingerprint %v differs from settle=2 %v", workers, fingerprint(par), base)
		}
	}
}

// TestSettleModesAgreeRounded: union and component settling solve the
// same max-min program, so their makespans agree to table precision
// (they may differ in the last float ULPs — the golden hashes pin union
// mode, which stays the default).
func TestSettleModesAgreeRounded(t *testing.T) {
	serial, err := Run(scaleJob(256, 0), ringHalo(3, 4096))
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := Run(scaleJob(256, 4), ringHalo(3, 4096))
	if err != nil {
		t.Fatal(err)
	}
	if serial.Messages != parallel.Messages || serial.Bytes != parallel.Bytes {
		t.Errorf("traffic differs across settle modes: %d/%.0f vs %d/%.0f",
			serial.Messages, serial.Bytes, parallel.Messages, parallel.Bytes)
	}
	if d := math.Abs(serial.Time - parallel.Time); d > 1e-9*math.Max(serial.Time, 1) {
		t.Errorf("makespan differs across settle modes beyond rounding: %.17g vs %.17g",
			serial.Time, parallel.Time)
	}
}
