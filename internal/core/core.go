// Package core is the public face of the characterization framework: it
// ties together the machine models, the numactl-style affinity schemes,
// and the MPI runtime so that a workload (an SPMD body function) can be
// run on any paper system under any placement configuration with one
// call. This is the methodology of the paper packaged as a library.
package core

import (
	"context"
	"fmt"

	"multicore/internal/affinity"
	"multicore/internal/machine"
	"multicore/internal/mpi"
	"multicore/internal/sim"
)

// Job describes one experiment run: a system, a rank count, a placement
// scheme, and an MPI implementation profile.
type Job struct {
	// System is a registered machine name ("tiger", "dmz", "longs", the
	// modern pack, a loaded custom spec's content-hash id) or "@FILE" to
	// load a spec file; or use Spec to supply a custom machine directly.
	System string
	Spec   *machine.Spec
	// Ranks is the number of MPI tasks.
	Ranks int
	// Scheme is the Table 5 placement scheme (default: affinity.Default).
	Scheme affinity.Scheme
	// Impl is the MPI profile (default: OpenMPI).
	Impl *mpi.Impl
	// BufMode optionally overrides the transport segment placement;
	// when nil it is derived from the scheme's memory policy, which is
	// how the paper's placement/sub-layer interactions arise.
	BufMode *mpi.BufferMode
	// Nodes builds a cluster of identical nodes (the paper's "computing
	// system is a collection of nodes"); Ranks then counts tasks *per
	// node*. Zero or one keeps the single-node setting of the paper's
	// intra-node experiments.
	Nodes int
	// Net is the inter-node interconnect for Nodes > 1 (default
	// RapidArray, the Cray XD1 fabric connecting Tiger's nodes).
	Net *mpi.NetSpec
	// Seed feeds rank-local RNGs.
	Seed int64
	// Trace, when non-nil, records per-rank spans for the run (see
	// sim.Trace); nil disables tracing with no overhead.
	Trace *sim.Trace
	// Observe enables detailed engine observation (per-process state
	// times, per-resource rate timelines) snapshotted in Result.Stats.
	Observe bool
	// Faults, when non-nil, injects deterministic perturbations into the
	// run (see internal/fault): OS noise, degraded links and memory
	// controllers, straggler ranks, message delays. Nil keeps the run
	// byte-identical to the idealized fault-free machine.
	Faults mpi.Perturb
	// SettleWorkers, when > 1, opts the engine into component-mode
	// parallel flow settling with at most that many workers — the scale
	// knob for 10k+-rank cells. 0 or 1 keeps the legacy serial union
	// settling (see sim.Engine.SetSettleWorkers for the exact contract).
	SettleWorkers int
}

// resolve returns the machine spec for the job.
func (j Job) resolve() (*machine.Spec, error) {
	if j.Spec != nil {
		return j.Spec, nil
	}
	spec, err := machine.Resolve(j.System)
	if err != nil {
		return nil, fmt.Errorf("core: %w", err)
	}
	return spec, nil
}

// Run executes body as an SPMD program under the job's configuration.
// It returns affinity.ErrInfeasible (wrapped) when the scheme cannot host
// the rank count — the dashes in the paper's tables.
func Run(j Job, body func(*mpi.Rank)) (*mpi.Result, error) {
	return RunContext(context.Background(), j, body)
}

// RunContext is Run with cancellation threaded through to the simulation
// engine: the run stops early when ctx is canceled (SIGINT on a sweep) or
// its deadline passes (a per-cell wall-clock timeout), returning
// *sim.CanceledError; a deadlocked workload returns *sim.DeadlockError
// naming the blocked ranks instead of hanging.
func RunContext(ctx context.Context, j Job, body func(*mpi.Rank)) (*mpi.Result, error) {
	spec, err := j.resolve()
	if err != nil {
		return nil, err
	}
	if j.Ranks <= 0 {
		return nil, fmt.Errorf("core: rank count must be positive")
	}
	bindings, err := affinity.Layout(j.Scheme, spec.Topo, j.Ranks)
	if err != nil {
		return nil, err
	}
	cfg := mpi.Config{
		Spec:          spec,
		Impl:          j.Impl,
		Bindings:      bindings,
		Nodes:         j.Nodes,
		Net:           j.Net,
		DeriveBufMode: j.BufMode == nil,
		Seed:          j.Seed,
		Trace:         j.Trace,
		Observe:       j.Observe,
		Faults:        j.Faults,
		SettleWorkers: j.SettleWorkers,
	}
	if j.BufMode != nil {
		cfg.BufMode = *j.BufMode
	}
	return mpi.RunContext(ctx, cfg, body)
}

// Speedup runs body at 1 rank and at each rank count in `ranks`, under
// the given scheme, and returns time(1)/time(n) for each. The timeKey
// selects which reported metric is the benchmark time; pass "" to use
// the job makespan.
func Speedup(j Job, ranks []int, timeKey string, body func(*mpi.Rank)) ([]float64, error) {
	base := j
	base.Ranks = 1
	baseRes, err := Run(base, body)
	if err != nil {
		return nil, err
	}
	baseTime := timeOf(baseRes, timeKey)
	out := make([]float64, len(ranks))
	for i, n := range ranks {
		jj := j
		jj.Ranks = n
		res, err := Run(jj, body)
		if err != nil {
			return nil, err
		}
		out[i] = baseTime / timeOf(res, timeKey)
	}
	return out, nil
}

func timeOf(res *mpi.Result, key string) float64 {
	if key == "" {
		return res.Time
	}
	return res.Max(key)
}
