package core

import (
	"errors"
	"math"
	"testing"

	"multicore/internal/affinity"
	"multicore/internal/kernels/stream"
	"multicore/internal/machine"
	"multicore/internal/mpi"
	"multicore/internal/units"
)

func TestRunByName(t *testing.T) {
	for _, sys := range []string{"tiger", "dmz", "longs"} {
		res, err := Run(Job{System: sys, Ranks: 2}, func(r *mpi.Rank) {
			r.Compute(1e6, 1)
		})
		if err != nil {
			t.Fatalf("%s: %v", sys, err)
		}
		if res.Time <= 0 {
			t.Fatalf("%s: no time elapsed", sys)
		}
	}
}

func TestRunUnknownSystem(t *testing.T) {
	if _, err := Run(Job{System: "cray-1", Ranks: 1}, func(*mpi.Rank) {}); err == nil {
		t.Fatal("expected error for unknown system")
	}
}

func TestRunCustomSpec(t *testing.T) {
	spec := machine.DMZ()
	res, err := Run(Job{Spec: spec, Ranks: 4}, func(r *mpi.Rank) {
		r.Barrier()
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.RankTimes) != 4 {
		t.Fatalf("rank times = %v", res.RankTimes)
	}
}

func TestRunInfeasibleScheme(t *testing.T) {
	_, err := Run(Job{System: "longs", Ranks: 16, Scheme: affinity.OneMPILocalAlloc},
		func(*mpi.Rank) {})
	var inf *affinity.ErrInfeasible
	if !errors.As(err, &inf) {
		t.Fatalf("want ErrInfeasible, got %v", err)
	}
}

func TestRunZeroRanks(t *testing.T) {
	if _, err := Run(Job{System: "dmz"}, func(*mpi.Rank) {}); err == nil {
		t.Fatal("expected error for zero ranks")
	}
}

func TestBufModeOverride(t *testing.T) {
	hot := mpi.BufHotspot
	res, err := Run(Job{System: "dmz", Ranks: 2, BufMode: &hot}, func(r *mpi.Rank) {
		if r.ID() == 0 {
			r.Send(1, 4*units.KB)
		} else {
			r.Recv(0)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Messages != 1 {
		t.Fatalf("messages = %d", res.Messages)
	}
}

func TestSpeedupHelper(t *testing.T) {
	sp, err := Speedup(Job{System: "dmz"}, []int{2, 4}, stream.MetricBandwidth,
		func(r *mpi.Rank) {
			// Report a fake "time" inversely proportional to ranks so the
			// helper's arithmetic is easy to verify: time halves per
			// doubling.
			r.Report(stream.MetricBandwidth, 1.0/float64(r.Size()))
		})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(sp[0]-2) > 1e-9 || math.Abs(sp[1]-4) > 1e-9 {
		t.Fatalf("speedups = %v, want [2 4]", sp)
	}
}

func TestSpeedupUsesMakespanWithoutKey(t *testing.T) {
	sp, err := Speedup(Job{System: "dmz"}, []int{2}, "", func(r *mpi.Rank) {
		// Perfectly parallel compute.
		r.Compute(1e8/float64(r.Size()), 1)
	})
	if err != nil {
		t.Fatal(err)
	}
	if sp[0] < 1.9 || sp[0] > 2.1 {
		t.Fatalf("makespan speedup = %v, want ~2", sp[0])
	}
}

func TestDeterministicAcrossRuns(t *testing.T) {
	run := func() float64 {
		res, err := Run(Job{System: "longs", Ranks: 8, Scheme: affinity.Interleave},
			func(r *mpi.Rank) {
				stream.RunTriad(r, stream.Params{VectorBytes: 4 * units.MB, Iters: 1})
				r.Allreduce(1024)
			})
		if err != nil {
			t.Fatal(err)
		}
		return res.Time
	}
	if a, b := run(), run(); a != b {
		t.Fatalf("nondeterministic: %v vs %v", a, b)
	}
}

func TestClusterJobScalesAcrossNodes(t *testing.T) {
	body := func(r *mpi.Rank) {
		r.Compute(1e8/float64(r.Size()), 1)
		r.Allreduce(8)
	}
	res1, err := Run(Job{System: "dmz", Ranks: 4}, body)
	if err != nil {
		t.Fatal(err)
	}
	res2, err := Run(Job{System: "dmz", Ranks: 4, Nodes: 2, Net: mpi.RapidArray()}, body)
	if err != nil {
		t.Fatal(err)
	}
	if len(res2.RankTimes) != 8 {
		t.Fatalf("cluster ranks = %d, want 8", len(res2.RankTimes))
	}
	if res2.Time >= res1.Time {
		t.Fatalf("2 nodes (%v) should beat 1 node (%v) on parallel compute", res2.Time, res1.Time)
	}
}
