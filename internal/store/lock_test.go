//go:build unix

package store

import (
	"os"
	"path/filepath"
	"testing"
	"time"
)

// old backdates path far past staleLockAge.
func backdate(t *testing.T, path string) {
	t.Helper()
	old := time.Now().Add(-2 * staleLockAge)
	if err := os.Chtimes(path, old, old); err != nil {
		t.Fatal(err)
	}
}

// TestOpenBreaksStaleLock simulates the crash that motivates lock
// breaking: a sweep takes the lock and dies (flock state vanishes with
// the process, the file stays). Open must remove the orphan once it is
// old and demonstrably unheld.
func TestOpenBreaksStaleLock(t *testing.T) {
	dir := t.TempDir()
	// "Crashed" holder: acquire and abandon without Unlock. Closing the
	// fd releases the flock exactly as process death would.
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Lock(); err != nil {
		t.Fatal(err)
	}
	s.lockFile.Close() // simulate SIGKILL: lock dropped, file left behind
	s.lockFile = nil

	lock := filepath.Join(dir, ".lock")
	if _, err := os.Stat(lock); err != nil {
		t.Fatalf("lock file missing before break: %v", err)
	}
	backdate(t, lock)
	if _, err := Open(dir); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(lock); !os.IsNotExist(err) {
		t.Fatalf("stale lock survived Open: stat err = %v", err)
	}

	// The directory still locks normally afterwards.
	s2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if ok, err := s2.TryLock(); err != nil || !ok {
		t.Fatalf("TryLock after break = (%v, %v), want (true, nil)", ok, err)
	}
	if err := s2.Unlock(); err != nil {
		t.Fatal(err)
	}
}

// TestOpenKeepsRecentLock: a young lock file is never touched, held or
// not — a holder that just acquired may not be flock-visible through
// every filesystem, and an hour of margin costs nothing.
func TestOpenKeepsRecentLock(t *testing.T) {
	dir := t.TempDir()
	lock := filepath.Join(dir, ".lock")
	if err := os.WriteFile(lock, nil, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(dir); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(lock); err != nil {
		t.Fatalf("recent unheld lock removed by Open: %v", err)
	}
}

// TestOpenKeepsHeldLock: age alone must not break a lock — a live
// holder (long sweep, backdated mtime notwithstanding) fails the
// flock-NB probe and keeps its lock.
func TestOpenKeepsHeldLock(t *testing.T) {
	dir := t.TempDir()
	holder, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := holder.Lock(); err != nil {
		t.Fatal(err)
	}
	defer holder.Unlock()
	lock := filepath.Join(dir, ".lock")
	backdate(t, lock)

	if _, err := Open(dir); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(lock); err != nil {
		t.Fatalf("held lock removed by Open: %v", err)
	}
	// The holder's exclusion is intact.
	other, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if ok, err := other.TryLock(); err != nil || ok {
		t.Fatalf("TryLock against live holder = (%v, %v), want (false, nil)", ok, err)
	}
}
