package store

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"multicore/internal/schema"
)

func testKey(workload string) Key {
	return Key{Workload: workload, System: "longs", Ranks: 8,
		Scheme: "localalloc", Scale: "quick", Model: "mc-sim/test"}
}

func TestRoundTrip(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	k := testKey("cg/A")
	type pair struct{ A, B float64 }
	want := pair{A: 1.25, B: 0.0625}
	if err := s.Put(k, want); err != nil {
		t.Fatal(err)
	}
	ent, err := s.Get(k)
	if err != nil {
		t.Fatal(err)
	}
	if ent == nil || ent.Status != StatusOK {
		t.Fatalf("entry = %+v, want ok", ent)
	}
	var got pair
	if err := json.Unmarshal(ent.Value, &got); err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Fatalf("round-trip %+v != %+v", got, want)
	}
}

func TestMissingIsNilNil(t *testing.T) {
	s, _ := Open(t.TempDir())
	ent, err := s.Get(testKey("absent"))
	if ent != nil || err != nil {
		t.Fatalf("miss = (%+v, %v), want (nil, nil)", ent, err)
	}
}

// TestCorruptEntryIsAMiss: a truncated or garbage file must read as a
// miss (the cell re-runs), never as an error that wedges the sweep.
func TestCorruptEntryIsAMiss(t *testing.T) {
	dir := t.TempDir()
	s, _ := Open(dir)
	k := testKey("ft/A")
	if err := s.Put(k, 3.5); err != nil {
		t.Fatal(err)
	}
	ents, err := os.ReadDir(dir)
	if err != nil || len(ents) != 1 {
		t.Fatalf("want 1 entry file, got %d (%v)", len(ents), err)
	}
	path := filepath.Join(dir, ents[0].Name())
	for _, garbage := range []string{"", "{trunc", "not json at all"} {
		if err := os.WriteFile(path, []byte(garbage), 0o644); err != nil {
			t.Fatal(err)
		}
		ent, err := s.Get(k)
		if ent != nil || err != nil {
			t.Fatalf("corrupt %q: got (%+v, %v), want miss", garbage, ent, err)
		}
	}
}

// TestSchemaMismatchRejected: a parseable entry from a different schema
// generation must be a hard error, not silently reinterpreted.
func TestSchemaMismatchRejected(t *testing.T) {
	dir := t.TempDir()
	s, _ := Open(dir)
	k := testKey("hpl")
	if err := s.Put(k, 1.0); err != nil {
		t.Fatal(err)
	}
	ents, _ := os.ReadDir(dir)
	path := filepath.Join(dir, ents[0].Name())
	data, _ := os.ReadFile(path)
	var e Entry
	if err := json.Unmarshal(data, &e); err != nil {
		t.Fatal(err)
	}
	e.SchemaVersion = schema.Version + 1
	out, _ := json.Marshal(e)
	if err := os.WriteFile(path, out, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Get(k); err == nil {
		t.Fatal("schema mismatch not rejected")
	}
}

// TestKeyMismatchRejected: an entry whose embedded key disagrees with the
// requested key (tampering, or an impossibly unlucky hash collision) is a
// hard error.
func TestKeyMismatchRejected(t *testing.T) {
	dir := t.TempDir()
	s, _ := Open(dir)
	k := testKey("ep")
	if err := s.Put(k, 1.0); err != nil {
		t.Fatal(err)
	}
	other := testKey("mg")
	ents, _ := os.ReadDir(dir)
	src := filepath.Join(dir, ents[0].Name())
	data, _ := os.ReadFile(src)
	if err := os.WriteFile(s.path(other), data, 0o644); err != nil {
		t.Fatal(err)
	}
	_, err := s.Get(other)
	if err == nil || !strings.Contains(err.Error(), "holds key") {
		t.Fatalf("key mismatch not rejected: %v", err)
	}
}

func TestStatuses(t *testing.T) {
	s, _ := Open(t.TempDir())
	ki := testKey("infeasible-cell")
	if err := s.PutInfeasible(ki); err != nil {
		t.Fatal(err)
	}
	ent, err := s.Get(ki)
	if err != nil || ent == nil || ent.Status != StatusInfeasible {
		t.Fatalf("infeasible entry = (%+v, %v)", ent, err)
	}
	ke := testKey("failed-cell")
	if err := s.PutError(ke, "deadlock at t=3"); err != nil {
		t.Fatal(err)
	}
	ent, err = s.Get(ke)
	if err != nil || ent == nil || ent.Status != StatusError || ent.Error != "deadlock at t=3" {
		t.Fatalf("error entry = (%+v, %v)", ent, err)
	}
	if n, err := s.Len(); err != nil || n != 2 {
		t.Fatalf("Len = (%d, %v), want 2", n, err)
	}
}

// TestOverwrite: re-putting a key (the -resume retry path) replaces the
// old status.
func TestOverwrite(t *testing.T) {
	s, _ := Open(t.TempDir())
	k := testKey("retry")
	if err := s.PutError(k, "boom"); err != nil {
		t.Fatal(err)
	}
	if err := s.Put(k, 2.0); err != nil {
		t.Fatal(err)
	}
	ent, err := s.Get(k)
	if err != nil || ent.Status != StatusOK {
		t.Fatalf("after overwrite = (%+v, %v), want ok", ent, err)
	}
	if n, _ := s.Len(); n != 1 {
		t.Fatalf("Len = %d, want 1 (overwrite, not append)", n)
	}
}

// TestKeyHashDistinguishesFields: every key field must participate in
// the content address.
func TestKeyHashDistinguishesFields(t *testing.T) {
	base := testKey("w")
	variants := []Key{base}
	k := base
	k.Workload = "w2"
	variants = append(variants, k)
	k = base
	k.System = "dmz"
	variants = append(variants, k)
	k = base
	k.Ranks = 4
	variants = append(variants, k)
	k = base
	k.Scheme = "membind"
	variants = append(variants, k)
	k = base
	k.Scale = "full"
	variants = append(variants, k)
	k = base
	k.Model = "mc-sim/other"
	variants = append(variants, k)
	seen := map[string]Key{}
	for _, v := range variants {
		h := v.hash()
		if prev, dup := seen[h]; dup {
			t.Fatalf("keys %+v and %+v share hash %s", prev, v, h)
		}
		seen[h] = v
	}
}

// TestOpenSweepsStaleTemps: a crash between temp-file creation and the
// committing rename leaks put-*.tmp orphans; Open removes them once they
// are old enough that no live writer can own them, and leaves fresh temp
// files (a concurrent writer mid-commit) alone.
func TestOpenSweepsStaleTemps(t *testing.T) {
	dir := t.TempDir()
	stale := filepath.Join(dir, "put-dead.tmp")
	fresh := filepath.Join(dir, "put-live.tmp")
	for _, p := range []string{stale, fresh} {
		if err := os.WriteFile(p, []byte("{"), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	old := time.Now().Add(-2 * staleTempAge)
	if err := os.Chtimes(stale, old, old); err != nil {
		t.Fatal(err)
	}
	// A committed entry and an unrelated file must survive the sweep.
	s0, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := s0.Put(testKey("sweep/stale"), 1.0); err != nil {
		t.Fatal(err)
	}

	if _, err := Open(dir); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(stale); !os.IsNotExist(err) {
		t.Errorf("stale temp file survived Open: err=%v", err)
	}
	if _, err := os.Stat(fresh); err != nil {
		t.Errorf("fresh temp file removed by Open: %v", err)
	}
	if ent, err := s0.Get(testKey("sweep/stale")); err != nil || ent == nil {
		t.Errorf("committed entry lost after sweep: ent=%v err=%v", ent, err)
	}
}
