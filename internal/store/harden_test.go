package store

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

// TestQuarantineCorruptEntry: a corrupt entry must be preserved under
// corrupt/ (not silently shadow the key forever), counted, and the key
// must behave as a miss that a fresh Put repairs. Removing the quarantine
// in Get fails the corrupt/ assertions below.
func TestQuarantineCorruptEntry(t *testing.T) {
	dir := t.TempDir()
	s, _ := Open(dir)
	k := testKey("corrupt-me")
	if err := s.Put(k, 7.5); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(s.path(k), []byte("{garbage"), 0o644); err != nil {
		t.Fatal(err)
	}
	ent, err := s.Get(k)
	if ent != nil || err != nil {
		t.Fatalf("corrupt entry = (%+v, %v), want miss", ent, err)
	}
	if got := s.Quarantined(); got != 1 {
		t.Fatalf("Quarantined = %d, want 1", got)
	}
	qpath := filepath.Join(dir, "corrupt", filepath.Base(s.path(k)))
	data, err := os.ReadFile(qpath)
	if err != nil {
		t.Fatalf("corrupt entry not preserved: %v", err)
	}
	if string(data) != "{garbage" {
		t.Fatalf("quarantined bytes = %q", data)
	}
	if _, err := os.Stat(s.path(k)); !os.IsNotExist(err) {
		t.Fatalf("corrupt entry still at original path (err=%v)", err)
	}
	// The key is a plain miss now; a re-run repairs it.
	if err := s.Put(k, 8.5); err != nil {
		t.Fatal(err)
	}
	ent, err = s.Get(k)
	if err != nil || ent == nil || ent.Status != StatusOK {
		t.Fatalf("after repair = (%+v, %v), want ok", ent, err)
	}
	// Quarantined files must not count as committed entries.
	if n, _ := s.Len(); n != 1 {
		t.Fatalf("Len = %d, want 1", n)
	}
}

// TestLockExcludesSecondStore: the advisory lock must exclude another
// Store over the same directory — flock is per open file description, so
// two in-process Stores model two processes. Removing the flock calls
// makes b.TryLock succeed and fails the test.
func TestLockExcludesSecondStore(t *testing.T) {
	dir := t.TempDir()
	a, _ := Open(dir)
	b, _ := Open(dir)
	ok, err := a.TryLock()
	if err != nil || !ok {
		t.Fatalf("first TryLock = (%v, %v), want acquired", ok, err)
	}
	ok, err = b.TryLock()
	if err != nil || ok {
		t.Fatalf("second TryLock = (%v, %v), want refused", ok, err)
	}
	// Blocking Lock must wait for the release, then acquire.
	acquired := make(chan error, 1)
	go func() { acquired <- b.Lock() }()
	select {
	case err := <-acquired:
		t.Fatalf("Lock acquired while held (err=%v)", err)
	case <-time.After(50 * time.Millisecond):
	}
	if err := a.Unlock(); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-acquired:
		if err != nil {
			t.Fatalf("Lock after release: %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Lock did not acquire after Unlock")
	}
	if err := b.Unlock(); err != nil {
		t.Fatal(err)
	}
	// Fully released: a third holder acquires immediately.
	if ok, err := a.TryLock(); err != nil || !ok {
		t.Fatalf("TryLock after full release = (%v, %v)", ok, err)
	}
	a.Unlock()
}

// TestUnlockWithoutLock: Unlock on a never-locked store is a no-op.
func TestUnlockWithoutLock(t *testing.T) {
	s, _ := Open(t.TempDir())
	if err := s.Unlock(); err != nil {
		t.Fatal(err)
	}
}

// TestWriteRetriesTransientFailure: a commit that fails transiently must
// be retried within one Put; removing the retry loop in write fails this.
func TestWriteRetriesTransientFailure(t *testing.T) {
	s, _ := Open(t.TempDir())
	fails := 2
	s.commit = func(oldpath, newpath string) error {
		if fails > 0 {
			fails--
			return fmt.Errorf("injected transient rename failure")
		}
		return os.Rename(oldpath, newpath)
	}
	k := testKey("flaky-fs")
	if err := s.Put(k, 1.5); err != nil {
		t.Fatalf("Put with %d transient failures: %v", 2, err)
	}
	ent, err := s.Get(k)
	if err != nil || ent == nil || ent.Status != StatusOK {
		t.Fatalf("after retried write = (%+v, %v), want ok", ent, err)
	}
}

// TestWriteRetriesExhausted: a persistently failing commit surfaces an
// error naming the attempt budget, and leaves no committed entry behind.
func TestWriteRetriesExhausted(t *testing.T) {
	dir := t.TempDir()
	s, _ := Open(dir)
	s.commit = func(oldpath, newpath string) error {
		return fmt.Errorf("injected permanent rename failure")
	}
	err := s.Put(testKey("dead-fs"), 1.5)
	if err == nil || !strings.Contains(err.Error(), fmt.Sprintf("%d attempts", writeAttempts)) {
		t.Fatalf("exhausted write error = %v", err)
	}
	if n, _ := s.Len(); n != 0 {
		t.Fatalf("failed write left %d committed entries", n)
	}
}

// TestFaultKeyHashing: the fault plan and seed must fork the content
// address, and a fault-free key must keep its historical address (the
// fields are hashed only when a plan is present).
func TestFaultKeyHashing(t *testing.T) {
	clean := testKey("w")
	if clean.hash() != (Key{Workload: "w", System: "longs", Ranks: 8,
		Scheme: "localalloc", Scale: "quick", Model: "mc-sim/test"}).hash() {
		t.Fatal("zero fault fields changed a clean key's hash")
	}
	faulted := clean
	faulted.Faults = "noise:core=0,period=0.001s,frac=0.1"
	faulted.FaultSeed = 1
	if faulted.hash() == clean.hash() {
		t.Fatal("fault plan does not fork the content address")
	}
	reseeded := faulted
	reseeded.FaultSeed = 2
	if reseeded.hash() == faulted.hash() {
		t.Fatal("fault seed does not fork the content address")
	}
}
