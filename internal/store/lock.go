//go:build unix

package store

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"syscall"
)

// The advisory store lock serializes whole sweeps, not individual writes:
// per-entry atomicity already comes from rename-based commits, but two
// `mcbench -store` processes sharing a directory would each resimulate the
// cells the other has in flight (both miss, both run, last write wins).
// flock(2) is per open file description, so two Stores in one process
// contend exactly like two processes do — which is how the tests exercise
// it without forking.

func (s *Store) lockPath() string { return filepath.Join(s.dir, ".lock") }

// openLock opens (creating if needed) the lock file. Caller holds s.mu.
func (s *Store) openLock() error {
	if s.lockFile != nil {
		return nil
	}
	f, err := os.OpenFile(s.lockPath(), os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		return fmt.Errorf("store: opening lock file: %v", err)
	}
	s.lockFile = f
	return nil
}

// TryLock attempts to acquire the store's advisory lock without blocking.
// It returns false when another holder (process or Store instance) has it.
func (s *Store) TryLock() (bool, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := s.openLock(); err != nil {
		return false, err
	}
	err := syscall.Flock(int(s.lockFile.Fd()), syscall.LOCK_EX|syscall.LOCK_NB)
	if errors.Is(err, syscall.EWOULDBLOCK) {
		return false, nil
	}
	if err != nil {
		return false, fmt.Errorf("store: locking %s: %v", s.lockPath(), err)
	}
	return true, nil
}

// Lock acquires the store's advisory lock, blocking until the current
// holder releases it.
func (s *Store) Lock() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := s.openLock(); err != nil {
		return err
	}
	if err := syscall.Flock(int(s.lockFile.Fd()), syscall.LOCK_EX); err != nil {
		return fmt.Errorf("store: locking %s: %v", s.lockPath(), err)
	}
	return nil
}

// Unlock releases the advisory lock (a no-op if it was never taken).
func (s *Store) Unlock() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.lockFile == nil {
		return nil
	}
	err := syscall.Flock(int(s.lockFile.Fd()), syscall.LOCK_UN)
	s.lockFile.Close()
	s.lockFile = nil
	if err != nil {
		return fmt.Errorf("store: unlocking %s: %v", s.lockPath(), err)
	}
	return nil
}
