//go:build unix

package store

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"syscall"
	"time"
)

// The advisory store lock serializes whole sweeps, not individual writes:
// per-entry atomicity already comes from rename-based commits, but two
// `mcbench -store` processes sharing a directory would each resimulate the
// cells the other has in flight (both miss, both run, last write wins).
// flock(2) is per open file description, so two Stores in one process
// contend exactly like two processes do — which is how the tests exercise
// it without forking.

func (s *Store) lockPath() string { return filepath.Join(s.dir, ".lock") }

// staleLockAge is how old a .lock file must be before Open considers
// breaking it. Holders refresh the mtime on every acquisition, so an old
// lock file means no process has (re)taken it in at least this long.
const staleLockAge = time.Hour

// breakStaleLock removes a .lock file orphaned by a crashed holder,
// mirroring the put-*.tmp sweep: flock state dies with the process, but
// the file itself lingers and — while harmless to correctness — reads as
// a phantom holder to operators inspecting the directory. Removal is
// double-gated: the file must be old (no recent acquisition) AND
// currently unlocked (flock-NB succeeds, so no live holder). The unlink
// happens while holding the lock, so a concurrent acquirer either beat
// us to the flock (we leave the file) or opens the path after the
// unlink and creates a fresh file. Best-effort: any error leaves the
// file in place.
func breakStaleLock(dir string) {
	path := filepath.Join(dir, ".lock")
	info, err := os.Stat(path)
	if err != nil || time.Since(info.ModTime()) < staleLockAge {
		return
	}
	f, err := os.OpenFile(path, os.O_RDWR, 0o644)
	if err != nil {
		return
	}
	defer f.Close()
	if syscall.Flock(int(f.Fd()), syscall.LOCK_EX|syscall.LOCK_NB) != nil {
		return // a live holder: not stale after all
	}
	defer syscall.Flock(int(f.Fd()), syscall.LOCK_UN)
	// Re-check age under the lock: a holder that acquired and released
	// between our Stat and Flock refreshed the mtime.
	if info, err := os.Stat(path); err != nil || time.Since(info.ModTime()) < staleLockAge {
		return
	}
	os.Remove(path)
}

// openLock opens (creating if needed) the lock file. Caller holds s.mu.
func (s *Store) openLock() error {
	if s.lockFile != nil {
		return nil
	}
	f, err := os.OpenFile(s.lockPath(), os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		return fmt.Errorf("store: opening lock file: %v", err)
	}
	s.lockFile = f
	return nil
}

// TryLock attempts to acquire the store's advisory lock without blocking.
// It returns false when another holder (process or Store instance) has it.
func (s *Store) TryLock() (bool, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := s.openLock(); err != nil {
		return false, err
	}
	err := syscall.Flock(int(s.lockFile.Fd()), syscall.LOCK_EX|syscall.LOCK_NB)
	if errors.Is(err, syscall.EWOULDBLOCK) {
		return false, nil
	}
	if err != nil {
		return false, fmt.Errorf("store: locking %s: %v", s.lockPath(), err)
	}
	s.touchLock()
	return true, nil
}

// touchLock refreshes the lock file's mtime on acquisition so
// breakStaleLock's age gate sees live holders as recent. Caller holds
// s.mu and the flock.
func (s *Store) touchLock() {
	now := time.Now()
	os.Chtimes(s.lockPath(), now, now)
}

// Lock acquires the store's advisory lock, blocking until the current
// holder releases it.
func (s *Store) Lock() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := s.openLock(); err != nil {
		return err
	}
	if err := syscall.Flock(int(s.lockFile.Fd()), syscall.LOCK_EX); err != nil {
		return fmt.Errorf("store: locking %s: %v", s.lockPath(), err)
	}
	s.touchLock()
	return nil
}

// Unlock releases the advisory lock (a no-op if it was never taken).
func (s *Store) Unlock() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.lockFile == nil {
		return nil
	}
	err := syscall.Flock(int(s.lockFile.Fd()), syscall.LOCK_UN)
	s.lockFile.Close()
	s.lockFile = nil
	if err != nil {
		return fmt.Errorf("store: unlocking %s: %v", s.lockPath(), err)
	}
	return nil
}
