// Package store implements the on-disk, content-addressed result store
// behind `mcbench -store`: one JSON file per experiment cell, keyed by a
// SHA-256 hash of the cell's identity (workload, system, ranks, placement
// scheme, problem scale) plus the simulation model version. A sweep that
// dies halfway — SIGINT, a per-cell timeout, one panicking cell — leaves
// every completed cell durably on disk, so re-running with -resume
// executes only the missing or failed cells and reproduces byte-identical
// tables.
//
// Entries are written atomically (temp file + rename, retried a few times
// on transient filesystem errors), so an interrupt can truncate at most an
// uncommitted temp file, never a committed entry. Loads tolerate
// corruption: an entry that fails to parse is quarantined into the store's
// corrupt/ subdirectory (preserved for diagnosis, logged once) and treated
// as a miss, so the cell simply re-runs. A schema_version mismatch, by
// contrast, is rejected with a clear error — silently reinterpreting an
// old layout could corrupt tables instead of regenerating them. Whole-sweep
// exclusion between processes sharing a directory is available via
// Lock/TryLock (an advisory lock on <dir>/.lock).
package store

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"multicore/internal/schema"
)

// Key identifies one simulated cell. Every field participates in the
// content hash, so two cells with equal keys must be byte-for-byte the
// same simulation. Model carries sim.ModelVersion: results from an older
// model generation never alias results from the current one. Faults and
// FaultSeed carry the canonical fault plan (internal/fault) and its seed:
// perturbed results never alias clean ones, and two distinct perturbations
// never alias each other.
type Key struct {
	Workload  string `json:"workload"`
	System    string `json:"system"`
	Ranks     int    `json:"ranks"`
	Scheme    string `json:"scheme"`
	Scale     string `json:"scale"`
	Model     string `json:"model_version"`
	Faults    string `json:"faults,omitempty"`
	FaultSeed int64  `json:"fault_seed,omitempty"`
}

// hash returns the content address of the key: a SHA-256 over the fields
// separated by NUL bytes (no field can contain one). The fault fields are
// hashed only when a plan is present, so every pre-existing clean entry
// keeps its address.
func (k Key) hash() string {
	h := sha256.New()
	fields := []string{k.Workload, k.System, fmt.Sprint(k.Ranks), k.Scheme, k.Scale, k.Model}
	if k.Faults != "" {
		fields = append(fields, k.Faults, fmt.Sprint(k.FaultSeed))
	}
	for _, s := range fields {
		h.Write([]byte(s))
		h.Write([]byte{0})
	}
	return hex.EncodeToString(h.Sum(nil))
}

// Entry statuses.
const (
	// StatusOK marks a successful cell; Value holds its result.
	StatusOK = "ok"
	// StatusInfeasible marks a placement the scheme cannot host (the
	// dashes in the paper's tables) — a deterministic non-result that is
	// as cacheable as a success.
	StatusInfeasible = "infeasible"
	// StatusError marks a failed cell (panic, deadlock); Error holds the
	// message. Failed cells re-run under -resume.
	StatusError = "error"
)

// Entry is the schema-versioned JSON document stored per cell.
type Entry struct {
	SchemaVersion int             `json:"schema_version"`
	Key           Key             `json:"key"`
	Status        string          `json:"status"`
	Value         json.RawMessage `json:"value,omitempty"`
	Error         string          `json:"error,omitempty"`
}

// Store is a directory of cell entries. It is safe for concurrent use by
// multiple goroutines (each operation touches a single file atomically);
// concurrent *processes* sharing a directory are also safe because writes
// are rename-based and content-addressed. For whole-sweep exclusion (two
// mcbench -store runs would each resimulate the other's in-flight cells)
// take the advisory Lock.
type Store struct {
	dir string

	quarantined atomic.Int64
	warnOnce    sync.Once

	mu       sync.Mutex
	lockFile *os.File

	// commit is the final rename of a write; tests inject failures here
	// to exercise the retry path.
	commit func(oldpath, newpath string) error
}

// Open creates the directory if needed and returns a store over it.
// Stale temp files — orphaned by a crash between temp-file creation and
// the committing rename — are swept on open, age-gated so the temp files
// of live concurrent writers are never touched. A .lock file orphaned by
// a crashed sweep is likewise broken, but only when it is both old and
// demonstrably unheld (see breakStaleLock).
func Open(dir string) (*Store, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("store: creating %s: %v", dir, err)
	}
	sweepStaleTemps(dir)
	breakStaleLock(dir)
	return &Store{dir: dir, commit: os.Rename}, nil
}

// staleTempAge is how old an uncommitted put-*.tmp file must be before
// Open removes it. A live writer commits (or unlinks) its temp file
// within milliseconds; an hour of age means the writing process died
// mid-commit and the orphan would otherwise leak forever.
const staleTempAge = time.Hour

// sweepStaleTemps removes orphaned temp files. Best-effort: an
// unreadable or already-removed entry (a concurrent Open sweeping the
// same directory) is skipped, never an error.
func sweepStaleTemps(dir string) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return
	}
	for _, ent := range ents {
		name := ent.Name()
		if ent.IsDir() || !strings.HasPrefix(name, "put-") || !strings.HasSuffix(name, ".tmp") {
			continue
		}
		info, err := ent.Info()
		if err != nil {
			continue
		}
		if time.Since(info.ModTime()) < staleTempAge {
			continue
		}
		os.Remove(filepath.Join(dir, name))
	}
}

// Dir returns the store's directory.
func (s *Store) Dir() string { return s.dir }

func (s *Store) path(k Key) string {
	return filepath.Join(s.dir, k.hash()+".json")
}

// Get loads the entry for k. A missing or unparseable (corrupt/truncated)
// file returns (nil, nil) — the cell re-runs. A parseable entry with a
// mismatched schema_version or a non-matching key is an error: the store
// holds artifacts this build cannot interpret.
func (s *Store) Get(k Key) (*Entry, error) {
	path := s.path(k)
	data, err := os.ReadFile(path)
	if errors.Is(err, os.ErrNotExist) {
		return nil, nil
	}
	if err != nil {
		return nil, fmt.Errorf("store: reading %s: %v", path, err)
	}
	var e Entry
	if err := json.Unmarshal(data, &e); err != nil {
		// Corrupt entry: quarantine it for diagnosis and treat the key as
		// a miss, so the cell re-runs and overwrites nothing interesting.
		s.quarantine(path)
		return nil, nil
	}
	if err := schema.Check(path, e.SchemaVersion); err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	if e.Key != k {
		return nil, fmt.Errorf("store: %s holds key %+v, expected %+v (hash collision or tampered entry)", path, e.Key, k)
	}
	return &e, nil
}

// Put persists a successful cell result. v must round-trip through
// encoding/json unchanged (float64s and structs of exported fields do).
func (s *Store) Put(k Key, v any) error {
	raw, err := json.Marshal(v)
	if err != nil {
		return fmt.Errorf("store: encoding value for %+v: %v", k, err)
	}
	return s.write(Entry{SchemaVersion: schema.Version, Key: k, Status: StatusOK, Value: raw})
}

// PutInfeasible records a placement the scheme cannot host.
func (s *Store) PutInfeasible(k Key) error {
	return s.write(Entry{SchemaVersion: schema.Version, Key: k, Status: StatusInfeasible})
}

// PutError records a failed cell so a later run can report — or, under
// -resume, retry — it without consulting logs.
func (s *Store) PutError(k Key, msg string) error {
	return s.write(Entry{SchemaVersion: schema.Version, Key: k, Status: StatusError, Error: msg})
}

// quarantine moves an undecodable entry into <dir>/corrupt/, preserving
// it for diagnosis instead of silently leaving it to shadow the re-run's
// fresh write. Logged once per store — a chaos sweep can quarantine many
// entries and one line is enough to point at the directory.
func (s *Store) quarantine(path string) {
	dst := filepath.Join(s.dir, "corrupt", filepath.Base(path))
	if err := os.MkdirAll(filepath.Dir(dst), 0o755); err != nil {
		return // leave it in place; the next write renames over it anyway
	}
	if err := os.Rename(path, dst); err != nil {
		return
	}
	s.quarantined.Add(1)
	s.warnOnce.Do(func() {
		fmt.Fprintf(os.Stderr,
			"store: quarantined corrupt entry %s (further corrupt entries quarantined silently)\n", dst)
	})
}

// Quarantined reports how many corrupt entries this store has moved to
// its corrupt/ subdirectory.
func (s *Store) Quarantined() int { return int(s.quarantined.Load()) }

// writeAttempts bounds the retries of a failed entry commit. Temp-file
// creation and the final rename can fail transiently on shared
// filesystems; each attempt restarts from a fresh temp file.
const writeAttempts = 3

// write commits an entry atomically: encode to a temp file in the store
// directory, then rename over the final path, retrying the file
// operations a bounded number of times.
func (s *Store) write(e Entry) error {
	data, err := json.MarshalIndent(e, "", "  ")
	if err != nil {
		return fmt.Errorf("store: encoding entry: %v", err)
	}
	data = append(data, '\n')
	var lastErr error
	for attempt := 0; attempt < writeAttempts; attempt++ {
		if lastErr = s.writeOnce(data, s.path(e.Key)); lastErr == nil {
			return nil
		}
	}
	return fmt.Errorf("store: committing entry after %d attempts: %v", writeAttempts, lastErr)
}

func (s *Store) writeOnce(data []byte, path string) error {
	tmp, err := os.CreateTemp(s.dir, "put-*.tmp")
	if err != nil {
		return fmt.Errorf("creating temp file: %v", err)
	}
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return fmt.Errorf("writing entry: %v", err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("closing entry: %v", err)
	}
	if err := s.commit(tmp.Name(), path); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("renaming entry: %v", err)
	}
	return nil
}

// List decodes every committed entry in the store, sorted by file name
// (content address) so the order is deterministic. Corrupt entries are
// quarantined and skipped exactly like Get; entries from another schema
// generation are an error. Calibration (mcbench -calibrate) walks the
// store through this.
func (s *Store) List() ([]Entry, error) {
	ents, err := os.ReadDir(s.dir)
	if err != nil {
		return nil, fmt.Errorf("store: listing %s: %v", s.dir, err)
	}
	var out []Entry
	for _, ent := range ents {
		if ent.IsDir() || filepath.Ext(ent.Name()) != ".json" {
			continue
		}
		path := filepath.Join(s.dir, ent.Name())
		data, err := os.ReadFile(path)
		if errors.Is(err, os.ErrNotExist) {
			continue // concurrently evicted
		}
		if err != nil {
			return nil, fmt.Errorf("store: reading %s: %v", path, err)
		}
		var e Entry
		if err := json.Unmarshal(data, &e); err != nil {
			s.quarantine(path)
			continue
		}
		if err := schema.Check(path, e.SchemaVersion); err != nil {
			return nil, fmt.Errorf("store: %w", err)
		}
		out = append(out, e)
	}
	return out, nil
}

// Len counts committed entries (uncommitted temp files are excluded).
func (s *Store) Len() (int, error) {
	ents, err := os.ReadDir(s.dir)
	if err != nil {
		return 0, err
	}
	n := 0
	for _, ent := range ents {
		if filepath.Ext(ent.Name()) == ".json" {
			n++
		}
	}
	return n, nil
}
