//go:build !unix

package store

// Non-unix platforms have no flock(2); the advisory sweep lock degrades
// to a no-op. Per-entry atomicity (temp file + rename) still holds, so
// concurrent sweeps are correct — just possibly duplicating work.

// TryLock always succeeds on platforms without advisory file locks.
func (s *Store) TryLock() (bool, error) { return true, nil }

// Lock is a no-op on platforms without advisory file locks.
func (s *Store) Lock() error { return nil }

// Unlock is a no-op on platforms without advisory file locks.
func (s *Store) Unlock() error { return nil }

// breakStaleLock is a no-op without flock: there is no way to tell a
// crashed holder's lock file from a live one, so leave it alone.
func breakStaleLock(dir string) {}
