// Package hpcc drives the HPC Challenge benchmark suite the way the paper
// does (Section 3.3, Figures 8-13): one binary's worth of kernels run in
// Single mode (one rank), Star mode (every core, no communication), or
// MPI mode, under the six LAM/NUMA runtime option combinations evaluated
// on the Longs system.
package hpcc

import (
	"fmt"

	"multicore/internal/affinity"
	"multicore/internal/kernels/blas"
	"multicore/internal/kernels/fft"
	"multicore/internal/kernels/hpl"
	"multicore/internal/kernels/imb"
	"multicore/internal/kernels/ptrans"
	"multicore/internal/kernels/rnda"
	"multicore/internal/kernels/stream"
	"multicore/internal/machine"
	"multicore/internal/mem"
	"multicore/internal/mpi"
)

// RuntimeOption is one LAM/NUMA configuration: a numactl memory policy
// plus a lock sub-layer. Unlike the NAS/application experiments, HPCC
// always keeps every core busy, so the options differ only in memory
// placement and locking — exactly the paper's six Longs configurations.
type RuntimeOption struct {
	Name string
	// Policy overrides the per-rank memory policy (FirstTouch means the
	// OS default with its early-migration misplacement).
	Policy mem.Policy
	Sub    mpi.Sublayer
}

// LongsOptions are the six runtime options of the paper's Longs figures.
func LongsOptions() []RuntimeOption {
	return []RuntimeOption{
		{Name: "default", Policy: mem.FirstTouch, Sub: mpi.DefaultSub()},
		{Name: "SysV", Policy: mem.FirstTouch, Sub: mpi.SysV()},
		{Name: "USysV", Policy: mem.FirstTouch, Sub: mpi.USysV()},
		{Name: "localalloc", Policy: mem.LocalAlloc, Sub: mpi.DefaultSub()},
		{Name: "interleave", Policy: mem.Interleave, Sub: mpi.DefaultSub()},
		{Name: "localalloc+USysV", Policy: mem.LocalAlloc, Sub: mpi.USysV()},
	}
}

// DMZOption is the single configuration the paper reports for DMZ (its
// two-socket organization is minimally affected by NUMA options).
func DMZOption() RuntimeOption {
	return RuntimeOption{Name: "default", Policy: mem.FirstTouch, Sub: mpi.DefaultSub()}
}

// bindingsFor lays ranks out the way the OS does for every option (HPCC
// always fills cores in the same order) and applies the option's memory
// policy.
func bindingsFor(spec *machine.Spec, opt RuntimeOption, ranks int) []affinity.Binding {
	b, err := affinity.Layout(affinity.Default, spec.Topo, ranks)
	if err != nil {
		panic(fmt.Sprintf("hpcc: %v", err))
	}
	for i := range b {
		switch opt.Policy {
		case mem.FirstTouch:
			// Keep the Default layout's first-touch misplacement.
		default:
			b[i].MemPolicy = opt.Policy
			b[i].MisplacedFrac = 0
		}
	}
	return b
}

// run executes body under an option and rank count.
func run(spec *machine.Spec, opt RuntimeOption, ranks int, body func(*mpi.Rank)) *mpi.Result {
	return mpi.Run(mpi.Config{
		Spec:          spec,
		Impl:          mpi.LAM().WithSublayer(opt.Sub),
		Bindings:      bindingsFor(spec, opt, ranks),
		DeriveBufMode: true,
	}, body)
}

// HPL runs the Linpack benchmark over all cores and returns GFlop/s
// (Figure 8).
func HPL(spec *machine.Spec, opt RuntimeOption, n int) float64 {
	res := run(spec, opt, spec.Topo.NumCores(), func(r *mpi.Rank) {
		hpl.Run(r, hpl.Params{N: n})
	})
	return res.Max(hpl.MetricGFlops)
}

// DGEMM returns per-core GFlop/s in Single (star=false) or Star mode
// (Figure 9).
func DGEMM(spec *machine.Spec, opt RuntimeOption, star bool, n int) float64 {
	ranks := 1
	if star {
		ranks = spec.Topo.NumCores()
	}
	res := run(spec, opt, ranks, func(r *mpi.Rank) {
		blas.RunDgemm(r, blas.DgemmParams{N: n, Variant: blas.ACML, Iters: 1})
	})
	return res.Mean(blas.MetricDgemmFlops) / 1e9
}

// FFT returns per-core GFlop/s for the local FFT kernel in Single or Star
// mode (Figure 9).
func FFT(spec *machine.Spec, opt RuntimeOption, star bool, n int) float64 {
	ranks := 1
	if star {
		ranks = spec.Topo.NumCores()
	}
	res := run(spec, opt, ranks, func(r *mpi.Rank) {
		fft.RunLocal(r, fft.LocalParams{N: n, Iters: 1})
	})
	return res.Mean(fft.MetricFlops) / 1e9
}

// STREAM returns per-core triad bandwidth (GB/s) in Single or Star mode
// (Figure 10).
func STREAM(spec *machine.Spec, opt RuntimeOption, star bool) float64 {
	ranks := 1
	if star {
		ranks = spec.Topo.NumCores()
	}
	res := run(spec, opt, ranks, func(r *mpi.Rank) {
		stream.RunTriad(r, stream.Params{VectorBytes: 16 << 20, Iters: 2})
	})
	return res.Mean(stream.MetricBandwidth) / 1e9
}

// RAMode selects the RandomAccess flavour.
type RAMode int

// RandomAccess modes: one rank, every rank independently, or the bucketed
// MPI version.
const (
	RASingle RAMode = iota
	RAStar
	RAMPI
)

// RandomAccess returns per-core GUPS for the chosen mode (Figure 11).
func RandomAccess(spec *machine.Spec, opt RuntimeOption, mode RAMode) float64 {
	ranks := 1
	if mode != RASingle {
		ranks = spec.Topo.NumCores()
	}
	res := run(spec, opt, ranks, func(r *mpi.Rank) {
		rnda.Run(r, rnda.Params{
			TableBytes: 64 << 20,
			Updates:    2e6,
			MPI:        mode == RAMPI,
		})
	})
	return res.Mean(rnda.MetricGUPS)
}

// PTRANS returns per-core transpose bandwidth in GB/s over all cores
// (Figure 12). Pick n so the per-pair block (8*n^2/p^2) stays inside the
// transport's segment pool if pool-placement effects are under study.
func PTRANS(spec *machine.Spec, opt RuntimeOption, n int) float64 {
	res := run(spec, opt, spec.Topo.NumCores(), func(r *mpi.Rank) {
		ptrans.Run(r, ptrans.Params{N: n, Iters: 1})
	})
	return res.Mean(ptrans.MetricBandwidth) / 1e9
}

// commCfg builds an mpi.Config for the imb helpers under an option.
func commCfg(spec *machine.Spec, opt RuntimeOption, ranks int) mpi.Config {
	return mpi.Config{
		Spec:          spec,
		Impl:          mpi.LAM().WithSublayer(opt.Sub),
		Bindings:      bindingsFor(spec, opt, ranks),
		DeriveBufMode: true,
	}
}

// PingPong returns the two-rank point (Figure 12/13 bandwidth and
// latency).
func PingPong(spec *machine.Spec, opt RuntimeOption, bytes float64) imb.Point {
	return imb.PingPong(commCfg(spec, opt, 2), bytes, 30)
}

// Ring returns the all-core ring point (Figure 12/13).
func Ring(spec *machine.Spec, opt RuntimeOption, bytes float64) imb.Point {
	return imb.Ring(commCfg(spec, opt, spec.Topo.NumCores()), bytes, 30)
}
