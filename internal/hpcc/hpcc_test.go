package hpcc

import (
	"testing"

	"multicore/internal/machine"
)

func findOpt(t *testing.T, name string) RuntimeOption {
	t.Helper()
	for _, o := range LongsOptions() {
		if o.Name == name {
			return o
		}
	}
	t.Fatalf("no option %q", name)
	return RuntimeOption{}
}

func TestOptionsList(t *testing.T) {
	opts := LongsOptions()
	if len(opts) != 6 {
		t.Fatalf("want 6 Longs options, got %d", len(opts))
	}
	names := map[string]bool{}
	for _, o := range opts {
		names[o.Name] = true
	}
	for _, want := range []string{"default", "SysV", "USysV", "localalloc", "interleave", "localalloc+USysV"} {
		if !names[want] {
			t.Fatalf("missing option %q", want)
		}
	}
}

func TestStarDGEMMMatchesSingle(t *testing.T) {
	// Paper Fig 9: Star and Single DGEMM are almost identical — the
	// second core effectively doubles per-socket throughput.
	spec := machine.Longs()
	opt := findOpt(t, "USysV")
	single := DGEMM(spec, opt, false, 700)
	star := DGEMM(spec, opt, true, 700)
	ratio := star / single
	if ratio < 0.9 || ratio > 1.05 {
		t.Fatalf("Star/Single DGEMM = %.3f, want ~1", ratio)
	}
}

func TestStarFFTSlightlyBelowSingle(t *testing.T) {
	spec := machine.Longs()
	opt := findOpt(t, "USysV")
	single := FFT(spec, opt, false, 1<<20)
	star := FFT(spec, opt, true, 1<<20)
	ratio := star / single
	if ratio < 0.55 || ratio >= 1.0 {
		t.Fatalf("Star/Single FFT = %.3f, want slightly under 1", ratio)
	}
}

func TestStarSTREAMWorseThanHalfSingle(t *testing.T) {
	// Paper Fig 10: Single:Star > 2:1 — engaging the second core loses
	// per-socket STREAM bandwidth.
	spec := machine.Longs()
	opt := findOpt(t, "localalloc")
	single := STREAM(spec, opt, false)
	star := STREAM(spec, opt, true)
	if star >= single/2 {
		t.Fatalf("Star per-core STREAM %.3f should be < half of Single %.3f", star, single)
	}
}

func TestStarRABetterThanHalfSingle(t *testing.T) {
	// Paper Fig 11: RandomAccess Single:Star < 2:1 — the second core is
	// a net gain for latency-bound access.
	spec := machine.Longs()
	opt := findOpt(t, "localalloc")
	single := RandomAccess(spec, opt, RASingle)
	star := RandomAccess(spec, opt, RAStar)
	if star <= single/2 {
		t.Fatalf("Star per-core RA %.4f should exceed half of Single %.4f", star, single)
	}
}

func TestMPIRandomAccessSysVCollapse(t *testing.T) {
	spec := machine.Longs()
	sysv := RandomAccess(spec, findOpt(t, "SysV"), RAMPI)
	usysv := RandomAccess(spec, findOpt(t, "USysV"), RAMPI)
	if sysv >= usysv {
		t.Fatalf("SysV MPI-RA %.4f should be below USysV %.4f", sysv, usysv)
	}
}

func TestHPLSublayerDominatesPlacement(t *testing.T) {
	// Paper Fig 8: the MPI sub-layer matters more than the placement
	// scheme for HPL.
	spec := machine.Longs()
	def := HPL(spec, findOpt(t, "default"), 1536)
	sysv := HPL(spec, findOpt(t, "SysV"), 1536)
	usysv := HPL(spec, findOpt(t, "USysV"), 1536)
	inter := HPL(spec, findOpt(t, "interleave"), 1536)
	subEffect := usysv - sysv
	placeEffect := def - inter
	if subEffect <= 0 {
		t.Fatalf("USysV HPL %.2f should beat SysV %.2f", usysv, sysv)
	}
	if subEffect < placeEffect {
		t.Fatalf("sub-layer effect (%.2f) should dominate placement effect (%.2f)", subEffect, placeEffect)
	}
}

func TestPTRANSLocalallocDegradesUSysV(t *testing.T) {
	// Paper Fig 12: localalloc+USysV is worse than USysV alone (segment
	// hotspot).
	spec := machine.Longs()
	usysv := PTRANS(spec, findOpt(t, "USysV"), 1024)
	combo := PTRANS(spec, findOpt(t, "localalloc+USysV"), 1024)
	if combo >= usysv {
		t.Fatalf("localalloc+USysV PTRANS %.3f should be below USysV %.3f", combo, usysv)
	}
}

func TestRingLatencyAboveQPingPong(t *testing.T) {
	spec := machine.Longs()
	opt := findOpt(t, "USysV")
	pp := PingPong(spec, opt, 8)
	ring := Ring(spec, opt, 8)
	if ring.Latency <= pp.Latency {
		t.Fatalf("ring latency %v should exceed pingpong %v", ring.Latency, pp.Latency)
	}
}

func TestDMZOptionRuns(t *testing.T) {
	spec := machine.DMZ()
	if gf := HPL(spec, DMZOption(), 1024); gf <= 0 {
		t.Fatalf("DMZ HPL = %v", gf)
	}
}

func TestSingleDGEMMNearPeakOnLongs(t *testing.T) {
	spec := machine.Longs() // peak 3.6 GFlop/s per core
	gf := DGEMM(spec, findOpt(t, "default"), false, 512)
	if gf < 2.8 || gf > 3.6 {
		t.Fatalf("Single DGEMM = %.2f GF, want near 3.17 (88%% of peak)", gf)
	}
}

func TestStreamOptionsOrdering(t *testing.T) {
	// Single-mode STREAM: localalloc beats interleave on Longs.
	spec := machine.Longs()
	local := STREAM(spec, findOpt(t, "localalloc"), false)
	inter := STREAM(spec, findOpt(t, "interleave"), false)
	if inter >= local {
		t.Fatalf("interleave Single STREAM %.2f should trail localalloc %.2f", inter, local)
	}
}

func TestRASingleUnaffectedBySublayer(t *testing.T) {
	// Non-MPI RandomAccess ignores the lock sub-layer entirely.
	spec := machine.Longs()
	a := RandomAccess(spec, findOpt(t, "SysV"), RASingle)
	b := RandomAccess(spec, findOpt(t, "USysV"), RASingle)
	if a != b {
		t.Fatalf("Single RA differs across sub-layers: %v vs %v", a, b)
	}
}
