package mpi

import (
	"fmt"

	"multicore/internal/sim"
	"multicore/internal/topology"
)

// segmentCost returns the serial software overhead of pushing a message
// through the shared-buffer FIFO in SegmentBytes chunks: every chunk past
// the first pays the lock/wake round again.
func segmentCost(im *Impl, bytes float64) float64 {
	if im.SegmentBytes <= 0 || bytes <= im.SegmentBytes {
		return 0
	}
	segs := bytes / im.SegmentBytes
	return (segs - 1) * (im.Sub.LockLatency + im.Sub.WakeLatency) / 2
}

// message is an in-flight point-to-point message.
type message struct {
	src, dst int
	bytes    float64
	bufNode  topology.SocketID

	// rendezvous: the sender blocks on senderQ until the receiver has
	// drained the transfer.
	rendezvous bool
	senderQ    *sim.WaitQueue

	// eager: readyAt is when the copy-in completed (the receiver cannot
	// start draining earlier).
	readyAt float64

	// network marks an inter-node message (already landed at the NIC).
	network bool
}

// Send transmits bytes to rank dst, blocking per the transport protocol:
// eager sends return after the copy into the shared segment; rendezvous
// sends block until the receiver has drained the message.
func (r *Rank) Send(dst int, bytes float64) {
	r.sendPrepare(dst, bytes)
	r.sendTransfer(dst, bytes)
}

// sendPrepare charges the send-side software cost (lock, descriptor,
// protocol hops). It always runs on the issuing process: even a
// non-blocking send spends these CPU cycles inline.
func (r *Rank) sendPrepare(dst int, bytes float64) {
	if dst == r.id {
		panic(fmt.Sprintf("mpi: rank %d sending to itself", r.id))
	}
	w := r.w
	im := w.cfg.Impl
	w.messages++
	w.bytes += bytes

	// Send-side software cost: lock the segment, post the descriptor.
	r.proc.Sleep(im.Sub.LockLatency + im.Overhead/2)
	if w.cfg.Faults != nil {
		// Injected message delay (fault layer): extra latency charged on
		// the sending process before the payload moves.
		if d := w.cfg.Faults.SendDelay(r.id, dst, r.Now()); d > 0 {
			r.proc.Sleep(d)
		}
	}

	topo := w.cfg.Spec.Topo
	peer := w.ranks[dst]
	// Crossing sockets costs extra protocol latency per hop.
	r.proc.Sleep(float64(topo.Hops(topo.SocketOf(r.bind.Core), topo.SocketOf(peer.bind.Core))) *
		w.cfg.Spec.HopLatency)
	r.account(catMPI, "send-sw")
}

// sendTransfer performs the data movement and delivery.
func (r *Rank) sendTransfer(dst int, bytes float64) {
	w := r.w
	im := w.cfg.Impl
	peer := w.ranks[dst]

	if peer.node != r.node {
		r.sendNetwork(peer, bytes)
		return
	}

	buf := w.bufNode(r.id, dst, bytes)
	topo := w.cfg.Spec.Topo

	if bytes > im.EagerThreshold {
		// Rendezvous: post the offer, wake the receiver if it is
		// already waiting, and block until the transfer is drained.
		r.proc.Sleep(im.RendezvousOverhead)
		m := &message{src: r.id, dst: dst, bytes: bytes, bufNode: buf,
			rendezvous: true, senderQ: &sim.WaitQueue{}}
		peer.deliver(m)
		m.senderQ.Wait(r.proc, w.rdvLabels[dst])
		r.account(catMPI, "rendezvous-wait")
		return
	}

	// Eager: copy into the shared segment, then post.
	if bytes > 0 {
		r.proc.Sleep(segmentCost(im, bytes))
		inflate := r.mach.ContentionInflate(buf) / im.CopyEfficiency
		path := r.mach.CopyPath(r.cpu.Core(), r.home, buf)
		hops := topo.Hops(r.home, buf) + topo.Hops(topo.SocketOf(r.bind.Core), buf)
		r.proc.Transfer("eager-in", bytes*inflate, path, w.cfg.Spec.CopyCeiling(hops))
		r.account(catCopy, "eager-in")
	}
	m := &message{src: r.id, dst: dst, bytes: bytes, bufNode: buf, readyAt: r.Now()}
	peer.deliver(m)
}

// sendNetwork moves a message between nodes: the sender copies out of its
// memory through its NIC, the payload crosses the fabric, and the
// receiver's NIC lands it into memory on the far node. The wire volume is
// one flow over [local MC, nic-out, fabric, nic-in]; the receive-side
// memory write is charged when the receiver drains the message.
func (r *Rank) sendNetwork(peer *Rank, bytes float64) {
	w := r.w
	r.proc.Sleep(w.net.Overhead + w.net.Latency)
	r.account(catMPI, "net-sw")
	if bytes > 0 {
		path := append(r.mach.ReadPath(r.cpu.Core(), r.home),
			w.nics[r.node][0], w.fabric, w.nics[peer.node][1])
		r.proc.Transfer("net-send", bytes, path, 0)
		r.account(catCopy, "net-send")
	}
	m := &message{src: r.id, dst: peer.id, bytes: bytes, network: true, readyAt: r.Now()}
	peer.deliver(m)
}

// deliver places a message in the destination inbox and wakes a waiting
// receiver.
func (peer *Rank) deliver(m *message) {
	peer.inbox[m.src] = append(peer.inbox[m.src], m)
	if q := peer.recvQ[m.src]; q != nil {
		q.WakeOne(peer.w.eng)
	}
}

// Recv receives the next message from rank src, blocking until it arrives
// and its data has been drained from the shared segment.
func (r *Rank) Recv(src int) {
	if src == r.id {
		panic(fmt.Sprintf("mpi: rank %d receiving from itself", r.id))
	}
	w := r.w
	im := w.cfg.Impl

	for len(r.inbox[src]) == 0 {
		q := r.recvQ[src]
		if q == nil {
			q = &sim.WaitQueue{}
			r.recvQ[src] = q
		}
		q.Wait(r.proc, w.recvLabels[src])
	}
	m := r.inbox[src][0]
	r.inbox[src] = r.inbox[src][1:]

	if m.network {
		// Network receive: stack overhead, then land the payload into
		// this rank's memory.
		r.proc.Sleep(w.net.Overhead + im.Overhead/2)
		if m.readyAt > r.Now() {
			r.proc.Sleep(m.readyAt - r.Now())
		}
		r.account(catMPI, "recv-wait")
		if m.bytes > 0 {
			r.proc.Transfer("net-recv", m.bytes,
				r.mach.WritePath(r.cpu.Core(), r.home), 0)
			r.account(catCopy, "net-recv")
		}
		return
	}

	// Receive-side software cost: notification plus library overhead.
	r.proc.Sleep(im.Sub.WakeLatency + im.Overhead/2)
	r.account(catMPI, "recv-wait")

	if m.rendezvous {
		// Pipelined copy through the segment: the single flow crosses
		// both the sender-side and receiver-side paths (segment
		// controller charged twice: written once, read once).
		sender := w.ranks[m.src]
		topo := w.cfg.Spec.Topo
		path := r.mach.CopyPath(sender.cpu.Core(), sender.home, m.bufNode)
		path = append(path, r.mach.CopyPath(r.cpu.Core(), m.bufNode, r.home)...)
		inflate := r.mach.ContentionInflate(m.bufNode) / im.CopyEfficiency
		hops := topo.Hops(sender.home, m.bufNode) + topo.Hops(m.bufNode, r.home) +
			topo.Hops(topo.SocketOf(sender.bind.Core), topo.SocketOf(r.bind.Core))
		r.proc.Sleep(segmentCost(im, m.bytes))
		r.proc.Transfer("rendezvous", m.bytes*inflate, path, w.cfg.Spec.CopyCeiling(hops))
		r.account(catCopy, "rendezvous-copy")
		m.senderQ.WakeAll(w.eng)
		return
	}

	// Eager: drain the segment copy.
	if m.readyAt > r.Now() {
		r.proc.Sleep(m.readyAt - r.Now())
		r.account(catMPI, "recv-wait")
	}
	if m.bytes > 0 {
		topo := w.cfg.Spec.Topo
		r.proc.Sleep(segmentCost(im, m.bytes))
		inflate := r.mach.ContentionInflate(m.bufNode) / im.CopyEfficiency
		path := r.mach.CopyPath(r.cpu.Core(), m.bufNode, r.home)
		hops := topo.Hops(m.bufNode, r.home) + topo.Hops(topo.SocketOf(r.bind.Core), m.bufNode)
		r.proc.Transfer("eager-out", m.bytes*inflate, path, w.cfg.Spec.CopyCeiling(hops))
		r.account(catCopy, "eager-out")
	}
}

// Request is a handle for a non-blocking operation.
type Request struct {
	done bool
	q    sim.WaitQueue
}

// Isend starts a non-blocking send; complete it with Wait. The software
// preparation cost runs inline on the caller (the CPU cannot post two
// messages at once); only the data movement overlaps.
func (r *Rank) Isend(dst int, bytes float64) *Request {
	r.sendPrepare(dst, bytes)
	req := &Request{}
	helper := r.helper()
	r.w.eng.Spawn(r.w.isendNames[r.id], func(p *sim.Proc) {
		helper.proc = p
		helper.cpu = r.mach.CPU(p, r.bind.Core)
		helper.acct = p.Now()
		helper.sendTransfer(dst, bytes)
		req.done = true
		req.q.WakeAll(r.w.eng)
		r.releaseHelper(helper)
	})
	return req
}

// Irecv starts a non-blocking receive; complete it with Wait.
func (r *Rank) Irecv(src int) *Request {
	req := &Request{}
	helper := r.helper()
	r.w.eng.Spawn(r.w.irecvNames[r.id], func(p *sim.Proc) {
		helper.proc = p
		helper.cpu = r.mach.CPU(p, r.bind.Core)
		helper.acct = p.Now()
		helper.Recv(src)
		req.done = true
		req.q.WakeAll(r.w.eng)
		r.releaseHelper(helper)
	})
	return req
}

// helper clones the rank identity for a non-blocking helper process. The
// clone shares the inbox and queues (the mailbox is per logical rank) but
// gets a discarded time breakdown — overlapped transfer time is not rank
// wall time; the main process only accounts what it spends in Wait — and
// its own trace thread id so helper spans don't collide with the main
// process's track.
//
// When tracing is off nothing distinguishes one finished helper from the
// next, so clones are recycled through helperFree; with tracing on every
// helper keeps a fresh thread id and the clone is kept alive by its spans.
func (r *Rank) helper() *Rank {
	if n := len(r.helperFree); n > 0 && r.w.trace == nil {
		h := r.helperFree[n-1]
		r.helperFree[n-1] = nil
		r.helperFree = r.helperFree[:n-1]
		h.acctCompute = 0
		return h
	}
	h := *r
	h.bd = &TimeBreakdown{}
	h.acctCompute = 0
	r.helpers++
	h.tid = r.helpers
	return &h
}

// releaseHelper returns a finished helper clone to the pool. Runs at the
// end of the helper's own process, strictly after its last accounted
// interval, so the next Isend/Irecv can safely rebind it.
func (r *Rank) releaseHelper(h *Rank) {
	if r.w.trace == nil {
		r.helperFree = append(r.helperFree, h)
	}
}

// Wait blocks until the request completes.
func (r *Rank) Wait(req *Request) {
	if req.done {
		r.proc.Sleep(0)
	} else {
		req.q.Wait(r.proc, "wait request")
	}
	r.account(catMPI, "mpi-wait")
}

// WaitAll blocks until every request completes.
func (r *Rank) WaitAll(reqs ...*Request) {
	for _, req := range reqs {
		r.Wait(req)
	}
}

// Sendrecv exchanges messages with two (possibly distinct) peers
// concurrently: sends to dst while receiving from src.
func (r *Rank) Sendrecv(dst int, bytes float64, src int) {
	req := r.Isend(dst, bytes)
	r.Recv(src)
	r.Wait(req)
}
