package mpi

import (
	"fmt"

	"multicore/internal/sim"
	"multicore/internal/topology"
)

// segmentCost returns the serial software overhead of pushing a message
// through the shared-buffer FIFO in SegmentBytes chunks: every chunk past
// the first pays the lock/wake round again.
func segmentCost(im *Impl, bytes float64) float64 {
	if im.SegmentBytes <= 0 || bytes <= im.SegmentBytes {
		return 0
	}
	segs := bytes / im.SegmentBytes
	return (segs - 1) * (im.Sub.LockLatency + im.Sub.WakeLatency) / 2
}

// message is an in-flight point-to-point message. Messages are pooled on
// the World (newMessage/freeMessage): the sender side allocates one per
// send, the receiver returns it once the drain completes, so sustained
// traffic at 10k+ ranks recycles a small arena instead of allocating per
// message. The wait queue is embedded so its backing storage recycles
// with the message.
type message struct {
	src, dst int
	bytes    float64
	bufNode  topology.SocketID

	// rendezvous: the sender blocks on senderQ until the receiver has
	// drained the transfer.
	rendezvous bool
	senderQ    sim.WaitQueue

	// eager: readyAt is when the copy-in completed (the receiver cannot
	// start draining earlier).
	readyAt float64

	// network marks an inter-node message (already landed at the NIC).
	network bool
}

// newMessage services a message from the world's pool.
func (w *World) newMessage() *message {
	if n := len(w.msgFree); n > 0 {
		m := w.msgFree[n-1]
		w.msgFree[n-1] = nil
		w.msgFree = w.msgFree[:n-1]
		q := m.senderQ // empty; the copy keeps its backing storage
		*m = message{senderQ: q}
		return m
	}
	return &message{}
}

// freeMessage returns a fully-drained message to the pool. Only the
// receiver calls it, at the end of its Recv: by then the message has left
// the inbox, the sender (rendezvous) has been woken and never touches the
// message after its wait returns, and no other reference exists.
func (w *World) freeMessage(m *message) {
	w.msgFree = append(w.msgFree, m)
}

// Send transmits bytes to rank dst, blocking per the transport protocol:
// eager sends return after the copy into the shared segment; rendezvous
// sends block until the receiver has drained the message.
func (r *Rank) Send(dst int, bytes float64) {
	r.sendPrepare(dst, bytes)
	r.sendTransfer(dst, bytes)
}

// sendPrepare charges the send-side software cost (lock, descriptor,
// protocol hops). It always runs on the issuing process: even a
// non-blocking send spends these CPU cycles inline.
func (r *Rank) sendPrepare(dst int, bytes float64) {
	if dst == r.id {
		panic(fmt.Sprintf("mpi: rank %d sending to itself", r.id))
	}
	w := r.w
	im := w.cfg.Impl
	w.messages++
	w.bytes += bytes

	// Send-side software cost: lock the segment, post the descriptor.
	r.proc.Sleep(im.Sub.LockLatency + im.Overhead/2)
	if w.cfg.Faults != nil {
		// Injected message delay (fault layer): extra latency charged on
		// the sending process before the payload moves.
		if d := w.cfg.Faults.SendDelay(r.id, dst, r.Now()); d > 0 {
			r.proc.Sleep(d)
		}
	}

	topo := w.cfg.Spec.Topo
	peer := w.ranks[dst]
	// Crossing sockets costs extra protocol latency per hop.
	r.proc.Sleep(float64(topo.Hops(topo.SocketOf(r.bind.Core), topo.SocketOf(peer.bind.Core))) *
		w.cfg.Spec.HopLatency)
	r.account(catMPI, "send-sw")
}

// sendTransfer performs the data movement and delivery.
func (r *Rank) sendTransfer(dst int, bytes float64) {
	w := r.w
	im := w.cfg.Impl
	peer := w.ranks[dst]

	if peer.node != r.node {
		r.sendNetwork(peer, bytes)
		return
	}

	buf := w.bufNode(r.id, dst, bytes)
	topo := w.cfg.Spec.Topo

	if bytes > im.EagerThreshold {
		// Rendezvous: post the offer, wake the receiver if it is
		// already waiting, and block until the transfer is drained.
		r.proc.Sleep(im.RendezvousOverhead)
		m := w.newMessage()
		m.src, m.dst, m.bytes, m.bufNode, m.rendezvous = r.id, dst, bytes, buf, true
		peer.deliver(m)
		m.senderQ.Wait(r.proc, w.rdvLabels[dst])
		r.account(catMPI, "rendezvous-wait")
		return
	}

	// Eager: copy into the shared segment, then post.
	if bytes > 0 {
		r.proc.Sleep(segmentCost(im, bytes))
		inflate := r.mach.ContentionInflate(buf) / im.CopyEfficiency
		path := r.mach.CopyPath(r.cpu.Core(), r.home, buf)
		hops := topo.Hops(r.home, buf) + topo.Hops(topo.SocketOf(r.bind.Core), buf)
		r.proc.Transfer("eager-in", bytes*inflate, path, w.cfg.Spec.CopyCeiling(hops))
		r.account(catCopy, "eager-in")
	}
	m := w.newMessage()
	m.src, m.dst, m.bytes, m.bufNode, m.readyAt = r.id, dst, bytes, buf, r.Now()
	peer.deliver(m)
}

// sendTransferThen is the continuation form of sendTransfer, used by the
// lightweight Isend helper. Every blocking call maps to its *Then twin
// with values computed at the same points relative to the blocks, so the
// two forms schedule byte-identically (TestLightHelperEquivalence pins
// this).
func (r *Rank) sendTransferThen(dst int, bytes float64, k func()) {
	w := r.w
	im := w.cfg.Impl
	peer := w.ranks[dst]

	if peer.node != r.node {
		r.sendNetworkThen(peer, bytes, k)
		return
	}

	buf := w.bufNode(r.id, dst, bytes)
	topo := w.cfg.Spec.Topo

	if bytes > im.EagerThreshold {
		r.proc.SleepThen(im.RendezvousOverhead, func() {
			m := w.newMessage()
			m.src, m.dst, m.bytes, m.bufNode, m.rendezvous = r.id, dst, bytes, buf, true
			peer.deliver(m)
			m.senderQ.WaitThen(r.proc, w.rdvLabels[dst], func() {
				r.account(catMPI, "rendezvous-wait")
				k()
			})
		})
		return
	}

	post := func() {
		m := w.newMessage()
		m.src, m.dst, m.bytes, m.bufNode, m.readyAt = r.id, dst, bytes, buf, r.Now()
		peer.deliver(m)
		k()
	}
	if bytes > 0 {
		r.proc.SleepThen(segmentCost(im, bytes), func() {
			inflate := r.mach.ContentionInflate(buf) / im.CopyEfficiency
			path := r.mach.CopyPath(r.cpu.Core(), r.home, buf)
			hops := topo.Hops(r.home, buf) + topo.Hops(topo.SocketOf(r.bind.Core), buf)
			r.proc.TransferThen("eager-in", bytes*inflate, path, w.cfg.Spec.CopyCeiling(hops), func() {
				r.account(catCopy, "eager-in")
				post()
			})
		})
		return
	}
	post()
}

// sendNetwork moves a message between nodes: the sender copies out of its
// memory through its NIC, the payload crosses the fabric, and the
// receiver's NIC lands it into memory on the far node. The wire volume is
// one flow over [local MC, nic-out, fabric, nic-in]; the receive-side
// memory write is charged when the receiver drains the message.
func (r *Rank) sendNetwork(peer *Rank, bytes float64) {
	w := r.w
	r.proc.Sleep(w.net.Overhead + w.net.Latency)
	r.account(catMPI, "net-sw")
	if bytes > 0 {
		path := append(r.mach.ReadPath(r.cpu.Core(), r.home),
			w.nics[r.node][0], w.fabric, w.nics[peer.node][1])
		r.proc.Transfer("net-send", bytes, path, 0)
		r.account(catCopy, "net-send")
	}
	m := w.newMessage()
	m.src, m.dst, m.bytes, m.network, m.readyAt = r.id, peer.id, bytes, true, r.Now()
	peer.deliver(m)
}

// sendNetworkThen is the continuation form of sendNetwork.
func (r *Rank) sendNetworkThen(peer *Rank, bytes float64, k func()) {
	w := r.w
	r.proc.SleepThen(w.net.Overhead+w.net.Latency, func() {
		r.account(catMPI, "net-sw")
		post := func() {
			m := w.newMessage()
			m.src, m.dst, m.bytes, m.network, m.readyAt = r.id, peer.id, bytes, true, r.Now()
			peer.deliver(m)
			k()
		}
		if bytes > 0 {
			path := append(r.mach.ReadPath(r.cpu.Core(), r.home),
				w.nics[r.node][0], w.fabric, w.nics[peer.node][1])
			r.proc.TransferThen("net-send", bytes, path, 0, func() {
				r.account(catCopy, "net-send")
				post()
			})
			return
		}
		post()
	})
}

// deliver places a message in the destination inbox and wakes a waiting
// receiver.
func (peer *Rank) deliver(m *message) {
	peer.inbox[m.src] = append(peer.inbox[m.src], m)
	if q := peer.recvQ[m.src]; q != nil {
		q.WakeOne(peer.w.eng)
	}
}

// Recv receives the next message from rank src, blocking until it arrives
// and its data has been drained from the shared segment.
func (r *Rank) Recv(src int) {
	if src == r.id {
		panic(fmt.Sprintf("mpi: rank %d receiving from itself", r.id))
	}
	w := r.w
	im := w.cfg.Impl

	for len(r.inbox[src]) == 0 {
		q := r.recvQ[src]
		if q == nil {
			q = &sim.WaitQueue{}
			r.recvQ[src] = q
		}
		q.Wait(r.proc, w.recvLabels[src])
	}
	m := r.inbox[src][0]
	r.inbox[src] = r.inbox[src][1:]

	if m.network {
		// Network receive: stack overhead, then land the payload into
		// this rank's memory.
		r.proc.Sleep(w.net.Overhead + im.Overhead/2)
		if m.readyAt > r.Now() {
			r.proc.Sleep(m.readyAt - r.Now())
		}
		r.account(catMPI, "recv-wait")
		if m.bytes > 0 {
			r.proc.Transfer("net-recv", m.bytes,
				r.mach.WritePath(r.cpu.Core(), r.home), 0)
			r.account(catCopy, "net-recv")
		}
		w.freeMessage(m)
		return
	}

	// Receive-side software cost: notification plus library overhead.
	r.proc.Sleep(im.Sub.WakeLatency + im.Overhead/2)
	r.account(catMPI, "recv-wait")

	if m.rendezvous {
		// Pipelined copy through the segment: the single flow crosses
		// both the sender-side and receiver-side paths (segment
		// controller charged twice: written once, read once).
		sender := w.ranks[m.src]
		topo := w.cfg.Spec.Topo
		path := r.mach.CopyPath(sender.cpu.Core(), sender.home, m.bufNode)
		path = append(path, r.mach.CopyPath(r.cpu.Core(), m.bufNode, r.home)...)
		inflate := r.mach.ContentionInflate(m.bufNode) / im.CopyEfficiency
		hops := topo.Hops(sender.home, m.bufNode) + topo.Hops(m.bufNode, r.home) +
			topo.Hops(topo.SocketOf(sender.bind.Core), topo.SocketOf(r.bind.Core))
		r.proc.Sleep(segmentCost(im, m.bytes))
		r.proc.Transfer("rendezvous", m.bytes*inflate, path, w.cfg.Spec.CopyCeiling(hops))
		r.account(catCopy, "rendezvous-copy")
		m.senderQ.WakeAll(w.eng)
		w.freeMessage(m)
		return
	}

	// Eager: drain the segment copy.
	if m.readyAt > r.Now() {
		r.proc.Sleep(m.readyAt - r.Now())
		r.account(catMPI, "recv-wait")
	}
	if m.bytes > 0 {
		topo := w.cfg.Spec.Topo
		r.proc.Sleep(segmentCost(im, m.bytes))
		inflate := r.mach.ContentionInflate(m.bufNode) / im.CopyEfficiency
		path := r.mach.CopyPath(r.cpu.Core(), m.bufNode, r.home)
		hops := topo.Hops(m.bufNode, r.home) + topo.Hops(topo.SocketOf(r.bind.Core), m.bufNode)
		r.proc.Transfer("eager-out", m.bytes*inflate, path, w.cfg.Spec.CopyCeiling(hops))
		r.account(catCopy, "eager-out")
	}
	w.freeMessage(m)
}

// recvThen is the continuation form of Recv, used by the lightweight
// Irecv helper; scheduling parity with Recv is pinned by
// TestLightHelperEquivalence.
func (r *Rank) recvThen(src int, k func()) {
	if src == r.id {
		panic(fmt.Sprintf("mpi: rank %d receiving from itself", r.id))
	}
	w := r.w

	var await func()
	await = func() {
		if len(r.inbox[src]) == 0 {
			q := r.recvQ[src]
			if q == nil {
				q = &sim.WaitQueue{}
				r.recvQ[src] = q
			}
			q.WaitThen(r.proc, w.recvLabels[src], await)
			return
		}
		m := r.inbox[src][0]
		r.inbox[src] = r.inbox[src][1:]
		r.drainThen(m, k)
	}
	await()
}

// drainThen is the continuation form of Recv's post-match half: the
// protocol-specific drain of one matched message.
func (r *Rank) drainThen(m *message, k func()) {
	w := r.w
	im := w.cfg.Impl

	if m.network {
		r.proc.SleepThen(w.net.Overhead+im.Overhead/2, func() {
			land := func() {
				r.account(catMPI, "recv-wait")
				if m.bytes > 0 {
					r.proc.TransferThen("net-recv", m.bytes,
						r.mach.WritePath(r.cpu.Core(), r.home), 0, func() {
							r.account(catCopy, "net-recv")
							w.freeMessage(m)
							k()
						})
					return
				}
				w.freeMessage(m)
				k()
			}
			if m.readyAt > r.Now() {
				r.proc.SleepThen(m.readyAt-r.Now(), land)
				return
			}
			land()
		})
		return
	}

	r.proc.SleepThen(im.Sub.WakeLatency+im.Overhead/2, func() {
		r.account(catMPI, "recv-wait")

		if m.rendezvous {
			sender := w.ranks[m.src]
			topo := w.cfg.Spec.Topo
			path := r.mach.CopyPath(sender.cpu.Core(), sender.home, m.bufNode)
			path = append(path, r.mach.CopyPath(r.cpu.Core(), m.bufNode, r.home)...)
			inflate := r.mach.ContentionInflate(m.bufNode) / im.CopyEfficiency
			hops := topo.Hops(sender.home, m.bufNode) + topo.Hops(m.bufNode, r.home) +
				topo.Hops(topo.SocketOf(sender.bind.Core), topo.SocketOf(r.bind.Core))
			r.proc.SleepThen(segmentCost(im, m.bytes), func() {
				r.proc.TransferThen("rendezvous", m.bytes*inflate, path, w.cfg.Spec.CopyCeiling(hops), func() {
					r.account(catCopy, "rendezvous-copy")
					m.senderQ.WakeAll(w.eng)
					w.freeMessage(m)
					k()
				})
			})
			return
		}

		drain := func() {
			if m.bytes > 0 {
				topo := w.cfg.Spec.Topo
				r.proc.SleepThen(segmentCost(im, m.bytes), func() {
					inflate := r.mach.ContentionInflate(m.bufNode) / im.CopyEfficiency
					path := r.mach.CopyPath(r.cpu.Core(), m.bufNode, r.home)
					hops := topo.Hops(m.bufNode, r.home) + topo.Hops(topo.SocketOf(r.bind.Core), m.bufNode)
					r.proc.TransferThen("eager-out", m.bytes*inflate, path, w.cfg.Spec.CopyCeiling(hops), func() {
						r.account(catCopy, "eager-out")
						w.freeMessage(m)
						k()
					})
				})
				return
			}
			w.freeMessage(m)
			k()
		}
		if m.readyAt > r.Now() {
			r.proc.SleepThen(m.readyAt-r.Now(), func() {
				r.account(catMPI, "recv-wait")
				drain()
			})
			return
		}
		drain()
	})
}

// Request is a handle for a non-blocking operation.
type Request struct {
	done bool
	q    sim.WaitQueue
}

// lightHelpers selects the backing of Isend/Irecv helper processes:
// continuation-backed (no goroutine or stack per in-flight message) when
// true, classic goroutine-backed when false. The two backings simulate
// byte-identically by construction — every *Then primitive consumes event
// sequence numbers exactly like its blocking twin — which
// TestLightHelperEquivalence pins. The toggle exists for that test and
// for bisecting regressions; production code never flips it.
var lightHelpers = true

// Isend starts a non-blocking send; complete it with Wait. The software
// preparation cost runs inline on the caller (the CPU cannot post two
// messages at once); only the data movement overlaps.
func (r *Rank) Isend(dst int, bytes float64) *Request {
	r.sendPrepare(dst, bytes)
	req := &Request{}
	helper := r.helper()
	finish := func() {
		req.done = true
		req.q.WakeAll(r.w.eng)
		r.releaseHelper(helper)
	}
	if lightHelpers {
		r.w.eng.SpawnCont(r.w.isendNames[r.id], func(p *sim.Proc) {
			helper.bindProc(p)
			helper.sendTransferThen(dst, bytes, finish)
		})
	} else {
		r.w.eng.Spawn(r.w.isendNames[r.id], func(p *sim.Proc) {
			helper.bindProc(p)
			helper.sendTransfer(dst, bytes)
			finish()
		})
	}
	return req
}

// Irecv starts a non-blocking receive; complete it with Wait.
func (r *Rank) Irecv(src int) *Request {
	req := &Request{}
	helper := r.helper()
	finish := func() {
		req.done = true
		req.q.WakeAll(r.w.eng)
		r.releaseHelper(helper)
	}
	if lightHelpers {
		r.w.eng.SpawnCont(r.w.irecvNames[r.id], func(p *sim.Proc) {
			helper.bindProc(p)
			helper.recvThen(src, finish)
		})
	} else {
		r.w.eng.Spawn(r.w.irecvNames[r.id], func(p *sim.Proc) {
			helper.bindProc(p)
			helper.Recv(src)
			finish()
		})
	}
	return req
}

// bindProc attaches a helper clone to its freshly spawned process. A
// recycled clone rebinds its existing CPU context instead of allocating a
// new one; behavior is identical either way (helpers never Compute, so
// the context carries no accumulated state a fresh one wouldn't).
func (h *Rank) bindProc(p *sim.Proc) {
	h.proc = p
	if h.cpu == nil {
		h.cpu = h.mach.CPU(p, h.bind.Core)
	} else {
		h.cpu.Rebind(p)
	}
	h.acct = p.Now()
	h.acctCompute = h.cpu.ComputeSeconds
}

// helper clones the rank identity for a non-blocking helper process. The
// clone shares the inbox and queues (the mailbox is per logical rank) but
// gets a discarded time breakdown — overlapped transfer time is not rank
// wall time; the main process only accounts what it spends in Wait — and
// its own trace thread id so helper spans don't collide with the main
// process's track.
//
// When tracing is off nothing distinguishes one finished helper from the
// next, so clones are recycled through helperFree; with tracing on every
// helper keeps a fresh thread id and the clone is kept alive by its spans.
func (r *Rank) helper() *Rank {
	if n := len(r.helperFree); n > 0 && r.w.trace == nil {
		h := r.helperFree[n-1]
		r.helperFree[n-1] = nil
		r.helperFree = r.helperFree[:n-1]
		return h
	}
	h := *r
	h.bd = &TimeBreakdown{}
	h.cpu = nil // bindProc gives the clone its own context; never share r's
	h.acctCompute = 0
	r.helpers++
	h.tid = r.helpers
	return &h
}

// releaseHelper returns a finished helper clone to the pool. Runs at the
// end of the helper's own process, strictly after its last accounted
// interval, so the next Isend/Irecv can safely rebind it.
func (r *Rank) releaseHelper(h *Rank) {
	if r.w.trace == nil {
		r.helperFree = append(r.helperFree, h)
	}
}

// Wait blocks until the request completes.
func (r *Rank) Wait(req *Request) {
	if req.done {
		r.proc.Sleep(0)
	} else {
		req.q.Wait(r.proc, "wait request")
	}
	r.account(catMPI, "mpi-wait")
}

// WaitAll blocks until every request completes.
func (r *Rank) WaitAll(reqs ...*Request) {
	for _, req := range reqs {
		r.Wait(req)
	}
}

// Sendrecv exchanges messages with two (possibly distinct) peers
// concurrently: sends to dst while receiving from src.
func (r *Rank) Sendrecv(dst int, bytes float64, src int) {
	req := r.Isend(dst, bytes)
	r.Recv(src)
	r.Wait(req)
}
