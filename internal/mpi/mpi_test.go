package mpi

import (
	"math"
	"testing"

	"multicore/internal/affinity"
	"multicore/internal/machine"
	"multicore/internal/topology"
	"multicore/internal/units"
)

// jobOn builds a config with one rank per listed core, localalloc memory.
func jobOn(spec *machine.Spec, impl *Impl, cores ...topology.CoreID) Config {
	bindings := make([]affinity.Binding, len(cores))
	for i, c := range cores {
		bindings[i] = affinity.Binding{Core: c, MemPolicy: 1 /* mem.LocalAlloc */}
	}
	return Config{Spec: spec, Impl: impl, Bindings: bindings}
}

func TestPingPongCompletes(t *testing.T) {
	res := Run(jobOn(machine.DMZ(), OpenMPI(), 0, 2), func(r *Rank) {
		const iters = 10
		for i := 0; i < iters; i++ {
			if r.ID() == 0 {
				r.Send(1, 1024)
				r.Recv(1)
			} else {
				r.Recv(0)
				r.Send(0, 1024)
			}
		}
	})
	if res.Messages != 20 {
		t.Fatalf("messages = %d, want 20", res.Messages)
	}
	if res.Time <= 0 {
		t.Fatal("no time elapsed")
	}
}

func TestSmallMessageLatencyOrdering(t *testing.T) {
	// One-way small-message latency must order LAM < OpenMPI < MPICH2
	// (paper Figure 14).
	lat := func(impl *Impl) float64 {
		res := Run(jobOn(machine.DMZ(), impl, 0, 2), func(r *Rank) {
			const iters = 100
			for i := 0; i < iters; i++ {
				if r.ID() == 0 {
					r.Send(1, 8)
					r.Recv(1)
				} else {
					r.Recv(0)
					r.Send(0, 8)
				}
			}
		})
		return res.Time / (2 * 100)
	}
	lam, ompi, mpich := lat(LAM()), lat(OpenMPI()), lat(MPICH2())
	if !(lam < ompi && ompi < mpich) {
		t.Fatalf("latency ordering wrong: LAM=%s OpenMPI=%s MPICH2=%s",
			units.Duration(lam), units.Duration(ompi), units.Duration(mpich))
	}
}

func TestLargeMessageBandwidthOrdering(t *testing.T) {
	// Large messages: MPICH2 > OpenMPI > LAM (paper Figure 14).
	bw := func(impl *Impl) float64 {
		const bytes = 4 * units.MB
		res := Run(jobOn(machine.DMZ(), impl, 0, 2), func(r *Rank) {
			if r.ID() == 0 {
				r.Send(1, bytes)
			} else {
				r.Recv(0)
			}
		})
		return bytes / res.Time
	}
	lam, ompi, mpich := bw(LAM()), bw(OpenMPI()), bw(MPICH2())
	if !(mpich > ompi && ompi > lam) {
		t.Fatalf("bandwidth ordering wrong: MPICH2=%s OpenMPI=%s LAM=%s",
			units.Rate(mpich), units.Rate(ompi), units.Rate(lam))
	}
}

func TestSysVLatencyPenalty(t *testing.T) {
	lat := func(impl *Impl) float64 {
		res := Run(jobOn(machine.Longs(), impl, 0, 2), func(r *Rank) {
			const iters = 50
			for i := 0; i < iters; i++ {
				if r.ID() == 0 {
					r.Send(1, 8)
					r.Recv(1)
				} else {
					r.Recv(0)
					r.Send(0, 8)
				}
			}
		})
		return res.Time / (2 * 50)
	}
	sysv := lat(LAM().WithSublayer(SysV()))
	usysv := lat(LAM().WithSublayer(USysV()))
	// Paper Fig 13: SysV latencies overwhelm everything else.
	if sysv < 5*usysv {
		t.Fatalf("SysV %s should dwarf USysV %s", units.Duration(sysv), units.Duration(usysv))
	}
}

func TestIntraSocketBeatsInterSocket(t *testing.T) {
	// Paper Fig 16/17: ~10-13% more bandwidth within a multi-core
	// processor than across sockets.
	bw := func(cores ...topology.CoreID) float64 {
		const bytes = 1 * units.MB
		const iters = 10
		res := Run(jobOn(machine.DMZ(), OpenMPI(), cores...), func(r *Rank) {
			for i := 0; i < iters; i++ {
				if r.ID() == 0 {
					r.Send(1, bytes)
					r.Recv(1)
				} else {
					r.Recv(0)
					r.Send(0, bytes)
				}
			}
		})
		return 2 * iters * bytes / res.Time
	}
	intra := bw(0, 1) // same socket
	inter := bw(0, 2) // across sockets
	if intra <= inter {
		t.Fatalf("intra-socket %s not faster than inter-socket %s",
			units.Rate(intra), units.Rate(inter))
	}
	ratio := intra / inter
	if ratio > 1.6 {
		t.Fatalf("intra/inter ratio %.2f unreasonably large", ratio)
	}
}

func TestSendrecvDoesNotDeadlock(t *testing.T) {
	res := Run(jobOn(machine.DMZ(), OpenMPI(), 0, 1, 2, 3), func(r *Rank) {
		n := r.Size()
		// Simultaneous ring shift with large (rendezvous) messages.
		for i := 0; i < 3; i++ {
			r.Sendrecv((r.ID()+1)%n, 2*units.MB, (r.ID()-1+n)%n)
		}
	})
	if res.Messages != 12 {
		t.Fatalf("messages = %d, want 12", res.Messages)
	}
}

func TestBarrierSynchronizes(t *testing.T) {
	var after [4]float64
	Run(jobOn(machine.DMZ(), OpenMPI(), 0, 1, 2, 3), func(r *Rank) {
		// Stagger arrival.
		r.Compute(float64(r.ID()+1)*1e6, 1)
		r.Barrier()
		after[r.ID()] = r.Now()
	})
	max, min := after[0], after[0]
	for _, v := range after {
		if v > max {
			max = v
		}
		if v < min {
			min = v
		}
	}
	// All ranks leave the barrier within a small window after the
	// slowest arrival.
	slowest := 4e6 / machine.DMZ().PeakFlops()
	if min < slowest {
		t.Fatalf("a rank left the barrier at %v before the slowest arrival %v", min, slowest)
	}
	if max-min > 100*units.Microsecond {
		t.Fatalf("barrier exit spread = %s", units.Duration(max-min))
	}
}

func TestBcastReachesAll(t *testing.T) {
	for _, n := range []int{2, 3, 4, 8} {
		cores := make([]topology.CoreID, n)
		for i := range cores {
			cores[i] = topology.CoreID(i)
		}
		res := Run(jobOn(machine.Longs(), OpenMPI(), cores...), func(r *Rank) {
			r.Bcast(0, 64*units.KB)
		})
		// A binomial broadcast sends exactly n-1 messages.
		if res.Messages != n-1 {
			t.Fatalf("n=%d: bcast sent %d messages, want %d", n, res.Messages, n-1)
		}
	}
}

func TestBcastNonZeroRoot(t *testing.T) {
	res := Run(jobOn(machine.DMZ(), OpenMPI(), 0, 1, 2, 3), func(r *Rank) {
		r.Bcast(2, 1024)
	})
	if res.Messages != 3 {
		t.Fatalf("messages = %d, want 3", res.Messages)
	}
}

func TestReduceMessageCount(t *testing.T) {
	for _, n := range []int{2, 4, 8} {
		cores := make([]topology.CoreID, n)
		for i := range cores {
			cores[i] = topology.CoreID(i)
		}
		res := Run(jobOn(machine.Longs(), OpenMPI(), cores...), func(r *Rank) {
			r.Reduce(0, 8*units.KB)
		})
		if res.Messages != n-1 {
			t.Fatalf("n=%d: reduce sent %d messages, want %d", n, res.Messages, n-1)
		}
	}
}

func TestAllreduceCompletes(t *testing.T) {
	for _, n := range []int{2, 3, 4, 8} {
		cores := make([]topology.CoreID, n)
		for i := range cores {
			cores[i] = topology.CoreID(i)
		}
		res := Run(jobOn(machine.Longs(), OpenMPI(), cores...), func(r *Rank) {
			r.Allreduce(4 * units.KB)
			r.Report("done", 1)
		})
		if len(res.Values["done"]) != n {
			t.Fatalf("n=%d: only %d ranks finished", n, len(res.Values["done"]))
		}
	}
}

func TestAlltoallMessageCount(t *testing.T) {
	n := 4
	cores := []topology.CoreID{0, 1, 2, 3}
	res := Run(jobOn(machine.DMZ(), OpenMPI(), cores...), func(r *Rank) {
		r.Alltoall(16 * units.KB)
	})
	if res.Messages != n*(n-1) {
		t.Fatalf("alltoall sent %d messages, want %d", res.Messages, n*(n-1))
	}
}

func TestAllgatherCompletes(t *testing.T) {
	res := Run(jobOn(machine.DMZ(), OpenMPI(), 0, 1, 2, 3), func(r *Rank) {
		r.Allgather(units.KB)
	})
	if res.Messages != 4*3 {
		t.Fatalf("allgather messages = %d, want 12", res.Messages)
	}
}

func TestScatterGather(t *testing.T) {
	res := Run(jobOn(machine.DMZ(), OpenMPI(), 0, 1, 2, 3), func(r *Rank) {
		r.Scatter(0, 32*units.KB)
		r.Gather(0, 32*units.KB)
	})
	if res.Messages != 6 {
		t.Fatalf("scatter+gather messages = %d, want 6", res.Messages)
	}
}

func TestEagerDoesNotBlockSender(t *testing.T) {
	var sendDone, recvStart float64
	Run(jobOn(machine.DMZ(), OpenMPI(), 0, 2), func(r *Rank) {
		if r.ID() == 0 {
			r.Send(1, 1024)
			sendDone = r.Now()
		} else {
			r.Compute(44e6, 1) // receiver is late (~10 ms)
			recvStart = r.Now()
			r.Recv(0)
		}
	})
	if sendDone >= recvStart {
		t.Fatalf("eager send blocked until receiver arrived: send=%v recv=%v", sendDone, recvStart)
	}
}

func TestRendezvousBlocksSender(t *testing.T) {
	var sendDone, recvStart float64
	Run(jobOn(machine.DMZ(), OpenMPI(), 0, 2), func(r *Rank) {
		if r.ID() == 0 {
			r.Send(1, 8*units.MB)
			sendDone = r.Now()
		} else {
			r.Compute(44e6, 1)
			recvStart = r.Now()
			r.Recv(0)
		}
	})
	if sendDone <= recvStart {
		t.Fatalf("rendezvous send completed at %v before receiver arrived at %v", sendDone, recvStart)
	}
}

func TestHotspotBufferDegradesDisjointPairs(t *testing.T) {
	// Four ranks exchanging pairwise: with all segments on node 0, the
	// node-0 controller serializes traffic that spread segments would
	// parallelize.
	run := func(mode BufferMode) float64 {
		cfg := jobOn(machine.Longs(), LAM().WithSublayer(USysV()),
			0, 4, 8, 12) // one rank on each of sockets 0,2,4,6
		cfg.BufMode = mode
		res := Run(cfg, func(r *Rank) {
			peer := r.ID() ^ 1
			for i := 0; i < 200; i++ {
				r.Sendrecv(peer, 32*units.KB, peer)
			}
		})
		return res.Time
	}
	spread := run(BufSpread)
	hot := run(BufHotspot)
	if hot <= spread*1.05 {
		t.Fatalf("hotspot buffers (%v) should be slower than spread (%v)", hot, spread)
	}
}

func TestDeterminism(t *testing.T) {
	run := func() *Result {
		return Run(jobOn(machine.Longs(), LAM(), 0, 2, 4, 6), func(r *Rank) {
			r.Alltoall(64 * units.KB)
			r.Allreduce(8 * units.KB)
			r.Barrier()
		})
	}
	a, b := run(), run()
	if math.Abs(a.Time-b.Time) > 1e-15 {
		t.Fatalf("nondeterministic: %v vs %v", a.Time, b.Time)
	}
	if a.Messages != b.Messages || a.Bytes != b.Bytes {
		t.Fatalf("nondeterministic traffic")
	}
}

func TestResultAggregates(t *testing.T) {
	res := Run(jobOn(machine.DMZ(), OpenMPI(), 0, 1), func(r *Rank) {
		r.Report("v", float64(r.ID()+1))
	})
	if res.Max("v") != 2 || res.Mean("v") != 1.5 || res.Sum("v") != 3 {
		t.Fatalf("aggregates wrong: max=%v mean=%v sum=%v", res.Max("v"), res.Mean("v"), res.Sum("v"))
	}
	if res.Max("missing") != 0 || res.Mean("missing") != 0 {
		t.Fatal("missing key should aggregate to 0")
	}
}
