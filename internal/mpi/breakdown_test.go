package mpi

import (
	"bytes"
	"math"
	"testing"

	"multicore/internal/machine"
	"multicore/internal/mem"
	"multicore/internal/sim"
	"multicore/internal/units"
)

// checkBreakdown verifies the core invariant of the time-attribution
// layer: each rank's category times partition its wall time exactly
// (within float summation error), and no category is negative.
func checkBreakdown(t *testing.T, label string, res *Result) {
	t.Helper()
	if len(res.Breakdown) != len(res.RankTimes) {
		t.Fatalf("%s: %d breakdowns for %d ranks", label, len(res.Breakdown), len(res.RankTimes))
	}
	for i, b := range res.Breakdown {
		for _, c := range b.Slice() {
			if c < 0 {
				t.Errorf("%s rank %d: negative category in %+v", label, i, b)
			}
		}
		sum, wall := b.Total(), res.RankTimes[i]
		if math.Abs(sum-wall) > 1e-9*(1+wall) {
			t.Errorf("%s rank %d: categories sum to %.15g, wall time %.15g (diff %g)",
				label, i, sum, wall, sum-wall)
		}
	}
}

// TestBreakdownSumsToWallTime exercises every accounting site — compute,
// memory access, overlap, eager and rendezvous point-to-point, nonblocking
// ops, collectives, hybrid regions, and the inter-node network path — and
// requires the per-rank categories to reconstruct wall time each way.
func TestBreakdownSumsToWallTime(t *testing.T) {
	region := func(r *Rank) *mem.Region { return r.Alloc("buf", 8*units.MB) }
	cases := []struct {
		name string
		cfg  Config
		body func(*Rank)
	}{
		{"compute-only", jobOn(machine.DMZ(), OpenMPI(), 0, 2), func(r *Rank) {
			r.Compute(1e8, 1)
		}},
		{"memory-access", jobOn(machine.DMZ(), OpenMPI(), 0, 2), func(r *Rank) {
			r.Access(mem.Access{Region: region(r), Bytes: 4 * units.MB, Touches: 4 * units.MB / 64})
		}},
		{"overlap", jobOn(machine.Longs(), MPICH2(), 0, 4), func(r *Rank) {
			r.Overlap(5e7, 1, mem.Access{Region: region(r), Bytes: 2 * units.MB, Touches: 2 * units.MB / 64})
		}},
		{"eager-pingpong", jobOn(machine.DMZ(), OpenMPI(), 0, 2), func(r *Rank) {
			for i := 0; i < 10; i++ {
				if r.ID() == 0 {
					r.Send(1, 1024)
					r.Recv(1)
				} else {
					r.Recv(0)
					r.Send(0, 1024)
				}
			}
		}},
		{"rendezvous", jobOn(machine.DMZ(), OpenMPI(), 0, 2), func(r *Rank) {
			if r.ID() == 0 {
				r.Send(1, 8*units.MB)
			} else {
				r.Compute(4e7, 1) // late receiver: sender accrues rendezvous wait
				r.Recv(0)
			}
		}},
		{"isend-wait", jobOn(machine.DMZ(), LAM(), 0, 1, 2, 3), func(r *Rank) {
			n := r.Size()
			req := r.Isend((r.ID()+1)%n, 2*units.MB)
			r.Recv((r.ID() - 1 + n) % n)
			r.Wait(req)
		}},
		{"irecv-wait", jobOn(machine.DMZ(), OpenMPI(), 0, 2), func(r *Rank) {
			if r.ID() == 0 {
				req := r.Irecv(1)
				r.Compute(2e7, 1)
				r.Wait(req)
			} else {
				r.Send(0, 4*units.MB)
			}
		}},
		{"collectives", jobOn(machine.Longs(), MPICH2(), 0, 2, 4, 6), func(r *Rank) {
			r.Bcast(0, 64*units.KB)
			r.Allreduce(8 * units.KB)
			r.Alltoall(16 * units.KB)
			r.Barrier()
		}},
		{"hybrid", jobOn(machine.Longs(), OpenMPI(), 0, 8), func(r *Rank) {
			r.HybridOverlap(2, 5e7, 1,
				mem.Access{Region: region(r), Bytes: 2 * units.MB, Touches: 2 * units.MB / 64})
		}},
		{"sysv-sublayer", jobOn(machine.Longs(), LAM().WithSublayer(SysV()), 0, 2), func(r *Rank) {
			for i := 0; i < 5; i++ {
				r.Sendrecv(1-r.ID(), 32*units.KB, 1-r.ID())
			}
		}},
	}
	multinode := jobOn(machine.DMZ(), OpenMPI(), 0, 2)
	multinode.Nodes = 2
	multinode.Net = RapidArray()
	cases = append(cases, struct {
		name string
		cfg  Config
		body func(*Rank)
	}{"multi-node", multinode, func(r *Rank) {
		peer := (r.ID() + 2) % 4 // cross-node partner
		for i := 0; i < 5; i++ {
			r.Sendrecv(peer, 256*units.KB, peer)
		}
	}})
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			checkBreakdown(t, tc.name, Run(tc.cfg, tc.body))
		})
	}
}

// TestBreakdownCategoriesLandWhereExpected pins the attribution itself,
// not just the sum: a staggered eager exchange must charge the late
// receiver's stall to MPI wait, and pure compute must stay pure.
func TestBreakdownCategoriesLandWhereExpected(t *testing.T) {
	res := Run(jobOn(machine.DMZ(), OpenMPI(), 0, 2), func(r *Rank) {
		if r.ID() == 0 {
			r.Compute(1e8, 1)
			r.Send(1, 1024)
		} else {
			r.Recv(0) // idles until rank 0 finishes computing
		}
	})
	b0, b1 := res.Breakdown[0], res.Breakdown[1]
	if b0.Compute <= 0 || b0.Compute < 0.9*res.RankTimes[0] {
		t.Errorf("rank 0 should be compute-dominated: %+v (wall %g)", b0, res.RankTimes[0])
	}
	if b1.MPIWait < 0.9*res.RankTimes[1] {
		t.Errorf("rank 1 should be wait-dominated: %+v (wall %g)", b1, res.RankTimes[1])
	}
	if b1.Compute > 0.1*res.RankTimes[1] {
		t.Errorf("rank 1 charged compute it never did: %+v", b1)
	}
}

// TestBreakdownMatchesRankCompute ties the interval-attribution compute
// category to the machine layer's independent ComputeSeconds ledger.
func TestBreakdownMatchesRankCompute(t *testing.T) {
	res := Run(jobOn(machine.Longs(), MPICH2(), 0, 2, 4, 6), func(r *Rank) {
		r.Compute(float64(r.ID()+1)*2e7, 1)
		r.Allreduce(64 * units.KB)
		r.Compute(1e7, 1)
	})
	for i, b := range res.Breakdown {
		if diff := math.Abs(b.Compute - res.RankCompute[i]); diff > 1e-9*(1+res.RankCompute[i]) {
			t.Errorf("rank %d: breakdown compute %g != CPU ledger %g", i, b.Compute, res.RankCompute[i])
		}
	}
	checkBreakdown(t, "match-compute", res)
}

// TestTraceIsDeterministic renders the same traced job twice and requires
// byte-identical trace JSON — the foundation for the serial-vs-parallel
// determinism guarantee at the experiments layer.
func TestTraceIsDeterministic(t *testing.T) {
	render := func() []byte {
		cfg := jobOn(machine.Longs(), LAM(), 0, 2, 4, 6)
		cfg.Trace = &sim.Trace{}
		cfg.Observe = true
		Run(cfg, func(r *Rank) {
			r.Compute(1e7, 1)
			r.Alltoall(64 * units.KB)
			r.Barrier()
		})
		var buf bytes.Buffer
		if err := cfg.Trace.WriteJSON(&buf); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	a, b := render(), render()
	if !bytes.Equal(a, b) {
		t.Fatalf("trace JSON differs between identical runs (%d vs %d bytes)", len(a), len(b))
	}
	if len(a) == 0 {
		t.Fatal("empty trace")
	}
}
