// Package mpi is a message-passing runtime whose ranks are simulated
// processes on a machine model. It provides blocking and non-blocking
// point-to-point operations and the collectives the paper's workloads
// need, on top of a shared-memory transport whose cost model captures the
// effects the paper measures: lock sub-layer latency (SysV semaphores vs
// spin locks), eager/rendezvous protocols, double copies through a shared
// buffer, and the NUMA placement of that buffer.
package mpi

import "multicore/internal/units"

// Sublayer models the intra-node lock/notification mechanism of the MPI
// shared-memory transport (the paper's LAM "SysV" vs "USysV" runtime
// options, Section 3.3).
type Sublayer struct {
	Name string
	// LockLatency is the per-message synchronization cost on the send
	// side (acquiring the segment, posting the message).
	LockLatency float64
	// WakeLatency is the receive-side notification cost (semaphore
	// sleep/wake vs spin detection).
	WakeLatency float64
}

// SysV uses System V semaphores: each message pays a kernel sleep/wake
// round trip. The paper attributes the RandomAccess and small-message
// latency collapse to this cost.
func SysV() Sublayer {
	return Sublayer{Name: "SysV", LockLatency: 15 * units.Microsecond, WakeLatency: 30 * units.Microsecond}
}

// USysV uses user-space spin locks: messages are posted and detected
// without kernel involvement.
func USysV() Sublayer {
	return Sublayer{Name: "USysV", LockLatency: 0.4 * units.Microsecond, WakeLatency: 0.6 * units.Microsecond}
}

// DefaultSub is the implementation's default locking, between the two
// explicit options.
func DefaultSub() Sublayer {
	return Sublayer{Name: "default", LockLatency: 1.2 * units.Microsecond, WakeLatency: 1.8 * units.Microsecond}
}

// Impl is a parameterized MPI implementation profile. The three profiles
// below are calibrated to reproduce the paper's Figure 14/15 orderings:
// MPICH2 pays the highest small-message overhead but moves large messages
// fastest; LAM is quickest below ~16 KB; OpenMPI wins in between.
type Impl struct {
	Name string
	// Overhead is the per-message software cost, split evenly between
	// sender and receiver.
	Overhead float64
	// EagerThreshold is the message size at which the transport switches
	// from eager (buffered) to rendezvous protocol.
	EagerThreshold float64
	// RendezvousOverhead is the extra handshake cost for large messages.
	RendezvousOverhead float64
	// CopyEfficiency scales the effective bandwidth of the shared-buffer
	// copy loops (pipelining quality), in (0, 1].
	CopyEfficiency float64
	// SegmentBytes is the shared-buffer FIFO segment size: every segment
	// of a message pays the sub-layer lock cost, which is how a slow
	// lock (SysV) degrades even large-message bandwidth.
	SegmentBytes float64
	// Sub is the lock sub-layer.
	Sub Sublayer
	// PoolBytes is the largest message the fixed shared-segment pool
	// carries; larger transfers stage through per-process buffers and
	// so escape pool placement pathologies. Zero means every message
	// uses the pool.
	PoolBytes float64
	// HotspotUnderLocalAlloc marks implementations whose shared-memory
	// pool is touched by one process at init time, so numactl
	// --localalloc concentrates every segment on that process's node
	// (the LAM behaviour behind the paper's "localalloc degrades both
	// SysV and USysV" observation). MPICH2 and OpenMPI fault segments
	// per sender and stay spread.
	HotspotUnderLocalAlloc bool
}

// WithSublayer returns a copy of the profile using the given sub-layer
// (LAM's ssi rpi options).
func (im Impl) WithSublayer(sub Sublayer) *Impl {
	im.Sub = sub
	im.Name = im.Name + "/" + sub.Name
	return &im
}

// MPICH2 returns the MPICH2 1.0.3 profile.
func MPICH2() *Impl {
	return &Impl{
		Name:               "MPICH2",
		Overhead:           7.0 * units.Microsecond,
		EagerThreshold:     64 * units.KB,
		RendezvousOverhead: 4 * units.Microsecond,
		CopyEfficiency:     1.0,
		SegmentBytes:       64 * units.KB,
		Sub:                DefaultSub(),
	}
}

// LAM returns the LAM 7.1.2 profile with its default sub-layer; combine
// with WithSublayer(SysV()) or WithSublayer(USysV()) for the runtime
// options of Figures 8-13.
func LAM() *Impl {
	return &Impl{
		Name:               "LAM",
		Overhead:           1.0 * units.Microsecond,
		EagerThreshold:     64 * units.KB,
		RendezvousOverhead: 3 * units.Microsecond,
		CopyEfficiency:     0.62,
		SegmentBytes:       8 * units.KB,
		PoolBytes:          64 * units.KB,
		Sub:                DefaultSub(),

		HotspotUnderLocalAlloc: true,
	}
}

// OpenMPI returns the OpenMPI 1.0.1 profile.
func OpenMPI() *Impl {
	return &Impl{
		Name:               "OpenMPI",
		Overhead:           2.4 * units.Microsecond,
		EagerThreshold:     64 * units.KB,
		RendezvousOverhead: 3 * units.Microsecond,
		CopyEfficiency:     0.85,
		SegmentBytes:       32 * units.KB,
		Sub:                DefaultSub(),
	}
}
