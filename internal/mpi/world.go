package mpi

import (
	"context"
	"fmt"
	"math/rand"

	"multicore/internal/affinity"
	"multicore/internal/machine"
	"multicore/internal/mem"
	"multicore/internal/sim"
	"multicore/internal/topology"
)

// BufferMode decides where the transport's shared-memory segments live.
// The paper observed that page placement policies leak into MPI behaviour
// ("Clearly, the MPI sub-layer is affecting page placement"); this is the
// mechanism.
type BufferMode int

const (
	// BufSpread places each sender's segment on the sender's node (the
	// healthy first-touch outcome).
	BufSpread BufferMode = iota
	// BufHotspot places the whole segment pool on rank 0's node, the
	// pathological localalloc interaction the paper saw degrade PTRANS
	// under "localalloc + sub-layer" combinations.
	BufHotspot
	// BufInterleaved spreads segments round-robin over all nodes.
	BufInterleaved
)

func (b BufferMode) String() string {
	switch b {
	case BufSpread:
		return "spread"
	case BufHotspot:
		return "hotspot"
	case BufInterleaved:
		return "interleaved"
	}
	return fmt.Sprintf("BufferMode(%d)", int(b))
}

// BufferModeFor maps a rank-0 memory policy to the segment placement it
// induces at MPI_Init time for the given implementation.
func BufferModeFor(impl *Impl, p mem.Policy) BufferMode {
	switch p {
	case mem.LocalAlloc, mem.Membind:
		if impl != nil && impl.HotspotUnderLocalAlloc {
			return BufHotspot
		}
		return BufSpread
	case mem.Interleave:
		return BufInterleaved
	default:
		return BufSpread
	}
}

// NetSpec models the inter-node interconnect of a cluster.
type NetSpec struct {
	Name string
	// Latency is the one-way network latency (s).
	Latency float64
	// Bandwidth is the per-NIC bandwidth (B/s).
	Bandwidth float64
	// Overhead is the per-message software cost of the network stack.
	Overhead float64
}

// RapidArray is the Cray XD1 fabric connecting Tiger's nodes.
func RapidArray() *NetSpec {
	return &NetSpec{Name: "RapidArray", Latency: 1.8e-6, Bandwidth: 2.0e9, Overhead: 1.0e-6}
}

// GigE is commodity gigabit Ethernet with a kernel TCP stack.
func GigE() *NetSpec {
	return &NetSpec{Name: "GigE", Latency: 25e-6, Bandwidth: 125e6, Overhead: 20e-6}
}

// Perturb is the fault injector's MPI-facing interface: the machine-level
// hooks plus the message- and rank-level perturbations only this layer can
// apply. internal/fault's Plan implements it; a nil injector keeps every
// run byte-identical to the unperturbed model.
type Perturb interface {
	machine.Perturb
	// SendDelay returns extra latency (seconds) injected into a message
	// from rank src to rank dst issued at simulated time now.
	SendDelay(src, dst int, now float64) float64
	// RankFactor returns the compute slowdown factor (>= 1) of a
	// straggler rank; 1 for unaffected ranks.
	RankFactor(rank int) float64
}

// Config describes one MPI job: the system, implementation profile, and
// per-rank placement.
type Config struct {
	Spec     *machine.Spec
	Impl     *Impl
	Bindings []affinity.Binding
	// Nodes builds a cluster of identical nodes; the Bindings describe
	// one node's layout and ranks are dealt to nodes in blocks
	// (rank i lives on node i / len(Bindings)). Zero or one means a
	// single node.
	Nodes int
	// Net is the inter-node interconnect (default RapidArray). Only
	// used when Nodes > 1.
	Net *NetSpec
	// BufMode overrides the segment placement; if unset (zero value
	// BufSpread) and Derive is true, it is derived from rank 0's policy.
	BufMode BufferMode
	// DeriveBufMode derives BufMode from rank 0's memory policy.
	DeriveBufMode bool
	// OSMigrationPeriod, when positive, models scheduler jitter on an
	// unbound run: every period one rank (round-robin) loses its cached
	// working set, as a migration or preemption would cause. Zero
	// disables it.
	OSMigrationPeriod float64
	Seed              int64
	// Trace, when non-nil, receives one span per accounted rank interval
	// (pid = rank, tid 0 = main process) plus resource-rate counters when
	// Observe is also set. Nil (the default) records nothing and keeps
	// the hot paths at a single pointer check.
	Trace *sim.Trace
	// Observe enables the engine's detailed observer: per-process state
	// times and per-resource used-rate timelines, snapshotted into
	// Result.Stats.
	Observe bool
	// Faults, when non-nil, injects deterministic perturbations (OS
	// noise, degraded links and controllers, straggler ranks, message
	// delays) into the run. Nil — the default — keeps the run
	// byte-identical to the idealized fault-free machine.
	Faults Perturb
	// SettleWorkers, when > 1, opts the engine into component-mode
	// parallel flow settling with at most that many workers (see
	// sim.Engine.SetSettleWorkers; output is deterministic and identical
	// for every value > 1). 0 or 1 keeps the legacy serial union
	// settling the golden hashes pin.
	SettleWorkers int
}

// Result is what a finished job reports.
type Result struct {
	// Time is the job makespan in simulated seconds.
	Time float64
	// RankTimes holds each rank's finish time.
	RankTimes []float64
	// RankCompute holds each rank's accumulated compute seconds, and
	// RankMemBytes its DRAM traffic — together they break a rank's time
	// into compute, memory, and (by subtraction) communication/wait.
	RankCompute  []float64
	RankMemBytes []float64
	// Breakdown partitions each rank's wall time into compute, memory,
	// MPI wait, and copy; the categories sum to RankTimes[i].
	Breakdown []TimeBreakdown
	// Stats snapshots engine activity: event/flow/settle counters always,
	// plus per-process state times and per-resource used-rate timelines
	// when Config.Observe was set.
	Stats sim.Stats
	// Values holds per-rank reported metrics by key.
	Values map[string][]float64
	// Messages and Bytes count point-to-point traffic.
	Messages int
	Bytes    float64
	// Timeline holds the phase spans recorded via Rank.Phase, in
	// completion order.
	Timeline []PhaseSpan
	// Machine allows post-run inspection of resource utilization.
	Machine *machine.Machine
}

// Max returns the maximum reported value for key (0 if none).
func (r *Result) Max(key string) float64 {
	max := 0.0
	for _, v := range r.Values[key] {
		if v > max {
			max = v
		}
	}
	return max
}

// Mean returns the mean reported value for key (0 if none).
func (r *Result) Mean(key string) float64 {
	vs := r.Values[key]
	if len(vs) == 0 {
		return 0
	}
	sum := 0.0
	for _, v := range vs {
		sum += v
	}
	return sum / float64(len(vs))
}

// Sum returns the sum of reported values for key.
func (r *Result) Sum(key string) float64 {
	sum := 0.0
	for _, v := range r.Values[key] {
		sum += v
	}
	return sum
}

// World is the shared state of a running job.
type World struct {
	cfg      Config
	machines []*machine.Machine
	eng      *sim.Engine
	net      *NetSpec
	nics     [][2]*sim.Resource // per node: [egress, ingress]
	fabric   *sim.Resource
	ranks    []*Rank
	bufMode  BufferMode

	messages int
	bytes    float64

	values   map[string][]float64
	timeline []PhaseSpan
	trace    *sim.Trace

	// msgFree pools in-flight message descriptors (see newMessage).
	msgFree []*message

	// Pre-formatted per-rank strings for the hot paths: wait-reason labels
	// and helper process names, so Recv loops and Isend/Irecv spawns do
	// not re-run fmt.Sprintf per call.
	recvLabels []string // "recv from <src>"
	rdvLabels  []string // "rendezvous to <dst>"
	isendNames []string // "rank<i>.isend"
	irecvNames []string // "rank<i>.irecv"

	finished int
	// endTime records when the last rank finished. With faults active the
	// capacity-window events scheduled by ApplyFaults may outlive the
	// workload, so the makespan is read from here instead of the engine
	// clock at queue drain.
	endTime float64

	// rankFactors caches the per-rank straggler slowdown (nil when no
	// fault plan is set, so the clean path costs one nil check).
	rankFactors []float64

	barrierGen   int
	barrierCount int
	barrierQ     sim.WaitQueue
}

// Run executes body as an SPMD program, one rank per binding, and returns
// the job result. Each run builds a fresh engine and machine, so results
// are reproducible and independent. A deadlocked workload panics; sweeps
// that must survive bad cells use RunContext instead.
func Run(cfg Config, body func(*Rank)) *Result {
	res, err := RunContext(context.Background(), cfg, body)
	if err != nil {
		panic(err)
	}
	return res
}

// RunContext is Run with cancellation and structured failure: the run
// stops early when ctx is canceled or its deadline passes (returning
// *sim.CanceledError), and a deadlocked workload returns
// *sim.DeadlockError naming the blocked ranks and their wait labels
// instead of hanging or panicking. On error the returned Result is nil
// and every engine goroutine has been released.
func RunContext(ctx context.Context, cfg Config, body func(*Rank)) (*Result, error) {
	if cfg.Impl == nil {
		cfg.Impl = OpenMPI()
	}
	if len(cfg.Bindings) == 0 {
		panic("mpi: no rank bindings")
	}
	nodes := cfg.Nodes
	if nodes < 1 {
		nodes = 1
	}
	eng := sim.NewEngine()
	if cfg.Observe {
		eng.EnableObservation()
	}
	if cfg.SettleWorkers > 1 {
		eng.SetSettleWorkers(cfg.SettleWorkers)
	}
	w := &World{cfg: cfg, eng: eng, values: map[string][]float64{}, trace: cfg.Trace}
	for nd := 0; nd < nodes; nd++ {
		m := machine.New(eng, cfg.Spec)
		m.ApplyFaults(cfg.Faults)
		w.machines = append(w.machines, m)
	}
	if nodes > 1 {
		w.net = cfg.Net
		if w.net == nil {
			w.net = RapidArray()
		}
		for nd := 0; nd < nodes; nd++ {
			w.nics = append(w.nics, [2]*sim.Resource{
				sim.NewResource(fmt.Sprintf("node%d/nic-out", nd), w.net.Bandwidth),
				sim.NewResource(fmt.Sprintf("node%d/nic-in", nd), w.net.Bandwidth),
			})
		}
		// Fabric bisection: half the aggregate NIC bandwidth.
		w.fabric = sim.NewResource("fabric", float64(nodes)*w.net.Bandwidth/2)
	}
	w.bufMode = cfg.BufMode
	if cfg.DeriveBufMode {
		w.bufMode = BufferModeFor(cfg.Impl, cfg.Bindings[0].MemPolicy)
	}
	perNode := len(cfg.Bindings)
	n := perNode * nodes
	res := &Result{
		RankTimes:    make([]float64, n),
		RankCompute:  make([]float64, n),
		RankMemBytes: make([]float64, n),
		Breakdown:    make([]TimeBreakdown, n),
		Machine:      w.machines[0],
	}
	w.recvLabels = make([]string, n)
	w.rdvLabels = make([]string, n)
	w.isendNames = make([]string, n)
	w.irecvNames = make([]string, n)
	for i := 0; i < n; i++ {
		w.recvLabels[i] = fmt.Sprintf("recv from %d", i)
		w.rdvLabels[i] = fmt.Sprintf("rendezvous to %d", i)
		w.isendNames[i] = fmt.Sprintf("rank%d.isend", i)
		w.irecvNames[i] = fmt.Sprintf("rank%d.irecv", i)
	}
	for i := 0; i < n; i++ {
		i := i
		b := cfg.Bindings[i%perNode]
		m := w.machines[i/perNode]
		r := &Rank{
			w:     w,
			id:    i,
			node:  i / perNode,
			mach:  m,
			bind:  b,
			bd:    &res.Breakdown[i],
			inbox: map[int][]*message{},
			recvQ: map[int]*sim.WaitQueue{},
			rng:   rand.New(rand.NewSource(cfg.Seed*1000003 + int64(i))),
		}
		r.dist = b.Placement(cfg.Spec.Topo, cfg.Spec.Topo.NumSockets)
		r.home = homeNode(r.dist, cfg.Spec.Topo.SocketOf(b.Core))
		w.ranks = append(w.ranks, r)
		if w.trace != nil {
			w.trace.ProcessName(i, fmt.Sprintf("rank %d", i))
		}
		eng.Spawn(fmt.Sprintf("rank%d", i), func(p *sim.Proc) {
			r.proc = p
			r.cpu = m.CPU(p, b.Core)
			r.acct = p.Now()
			body(r)
			// Flush any residual interval so the categories sum to the
			// rank's wall time exactly.
			r.account(catCompute, "run-tail")
			res.RankTimes[i] = p.Now()
			res.RankCompute[i] = r.cpu.ComputeSeconds
			res.RankMemBytes[i] = r.cpu.MemBytes
			w.finished++
			if w.finished == n {
				w.endTime = p.Now()
			}
		})
	}
	if cfg.Faults != nil {
		w.rankFactors = make([]float64, n)
		for i := range w.rankFactors {
			w.rankFactors[i] = cfg.Faults.RankFactor(i)
		}
	}
	if cfg.OSMigrationPeriod > 0 {
		// Continuation-backed: the jitter source is a self-rescheduling
		// tick, not a call stack, so it costs no goroutine.
		eng.SpawnCont("os-scheduler", func(p *sim.Proc) {
			victim := 0
			var step func()
			step = func() {
				if w.finished >= n {
					return
				}
				p.SleepThen(cfg.OSMigrationPeriod, func() {
					// The migrated task loses its cache contents.
					v := w.ranks[victim%n]
					v.mach.Cache(v.bind.Core).Flush()
					victim++
					step()
				})
			}
			step()
		})
	}
	if err := eng.RunContext(ctx); err != nil {
		return nil, err
	}
	res.Time = eng.Now()
	if cfg.Faults != nil {
		// Trailing capacity-window events may have advanced the engine
		// clock past the workload; the makespan is the last rank's finish.
		res.Time = w.endTime
	}
	res.Values = w.values
	res.Timeline = w.timeline
	res.Messages = w.messages
	res.Bytes = w.bytes
	res.Stats = eng.Stats()
	if w.trace != nil && cfg.Observe {
		emitResourceCounters(w.trace, n, res.Stats.Resources)
	}
	return res, nil
}

// emitResourceCounters appends the observed per-resource used-rate
// timelines to the trace as counter tracks on a dedicated pid (one past
// the last rank), in GB/s so the viewer's axis stays readable.
func emitResourceCounters(tr *sim.Trace, pid int, resources []sim.ResourceStats) {
	tr.ProcessName(pid, "resources (GB/s)")
	for _, rs := range resources {
		for i, seg := range rs.Segments {
			tr.Counter(pid, rs.Name, seg.Start, seg.Rate/1e9)
			// Close the segment when the rate does not continue.
			if i+1 == len(rs.Segments) || rs.Segments[i+1].Start > seg.End {
				tr.Counter(pid, rs.Name, seg.End, 0)
			}
		}
	}
}

// homeNode is the node a rank's transient buffers live on: the node
// holding the largest share of its pages, with ties broken toward the
// rank's own socket (an interleaved policy spreads data pages but the
// staging buffers are faulted by the core itself).
func homeNode(d mem.Placement, own topology.SocketID) topology.SocketID {
	best, bi := -1.0, 0
	for i, f := range d {
		if f > best {
			best, bi = f, i
		}
	}
	if d[own] >= best-1e-9 {
		return own
	}
	return topology.SocketID(bi)
}

// bufNode returns the memory node of the segment used for src->dst
// messages of the given size.
func (w *World) bufNode(src, dst int, bytes float64) topology.SocketID {
	if w.bufMode == BufHotspot && w.cfg.Impl.PoolBytes > 0 && bytes > w.cfg.Impl.PoolBytes {
		// Oversized transfers stage through per-process buffers and
		// escape the mislocated pool.
		return w.ranks[src].home
	}
	switch w.bufMode {
	case BufHotspot:
		return w.ranks[0].home
	case BufInterleaved:
		n := w.cfg.Spec.Topo.NumSockets
		return topology.SocketID((src*len(w.ranks) + dst) % n)
	default:
		return w.ranks[src].home
	}
}

// Rank is one MPI process. All methods must be called from the rank's own
// body function (or a helper process created by Isend/Irecv).
type Rank struct {
	w    *World
	id   int
	node int
	mach *machine.Machine
	bind affinity.Binding
	proc *sim.Proc
	cpu  *machine.CPU
	dist mem.Placement
	home topology.SocketID
	rng  *rand.Rand

	// Time-attribution state (see breakdown.go): the breakdown being
	// filled, the last accounted timestamp, the CPU compute seconds at
	// that mark, and the trace thread id (0 = main, >= 1 = helpers).
	bd          *TimeBreakdown
	acct        float64
	acctCompute float64
	tid         int
	helpers     int

	// helperFree recycles finished Isend/Irecv helper clones when tracing
	// is off (with tracing on, every helper keeps a distinct thread id).
	helperFree []*Rank

	inbox map[int][]*message
	recvQ map[int]*sim.WaitQueue
}

// ID returns the rank number.
func (r *Rank) ID() int { return r.id }

// Size returns the number of ranks in the job.
func (r *Rank) Size() int { return len(r.w.ranks) }

// Now returns the current simulated time.
func (r *Rank) Now() float64 { return r.proc.Now() }

// CPU returns the rank's machine execution context.
func (r *Rank) CPU() *machine.CPU { return r.cpu }

// RNG returns the rank's deterministic random source.
func (r *Rank) RNG() *rand.Rand { return r.rng }

// Home returns the rank's primary memory node.
func (r *Rank) Home() topology.SocketID { return r.home }

// Machine returns the rank's node machine model.
func (r *Rank) Machine() *machine.Machine { return r.mach }

// Node returns the cluster node index hosting this rank.
func (r *Rank) Node() int { return r.node }

// Alloc creates a region placed according to this rank's binding policy.
func (r *Rank) Alloc(name string, bytes float64) *mem.Region {
	return r.cpu.Alloc(fmt.Sprintf("r%d/%s", r.id, name), bytes, r.dist)
}

// Compute advances the rank by a compute phase. A straggler rank (fault
// injection) computes at reduced effective efficiency, inflating the
// phase by its slowdown factor.
func (r *Rank) Compute(flops, eff float64) {
	if fs := r.w.rankFactors; fs != nil && fs[r.id] > 1 {
		eff /= fs[r.id]
	}
	r.cpu.Compute(flops, eff)
	r.account(catCompute, "compute")
}

// Access performs a memory access batch.
func (r *Rank) Access(a mem.Access) {
	r.cpu.Access(a)
	r.account(catMemory, a.Region.Name)
}

// Overlap runs compute concurrently with memory accesses.
func (r *Rank) Overlap(flops, eff float64, accesses ...mem.Access) {
	r.cpu.Overlap(flops, eff, accesses...)
	r.account(catMemory, "overlap")
}

// Report records a named metric for this rank (phase timings, bandwidth).
func (r *Rank) Report(key string, value float64) {
	r.w.values[key] = append(r.w.values[key], value)
}

// HybridOverlap splits a compute+memory phase across `threads` cores of
// the rank's socket, modeling an OpenMP parallel region inside the MPI
// rank — the hybrid programming model the paper's Section 3.4 proposes
// for multi-core nodes. The rank's own core runs the first share inline;
// sibling cores run theirs concurrently. Threads beyond the socket's core
// count are clamped.
func (r *Rank) HybridOverlap(threads int, flops, eff float64, accesses ...mem.Access) {
	topo := r.w.cfg.Spec.Topo
	cores := topo.CoresOn(topo.SocketOf(r.bind.Core))
	if threads > len(cores) {
		threads = len(cores)
	}
	if threads <= 1 {
		r.cpu.Overlap(flops, eff, accesses...)
		r.account(catMemory, "hybrid-overlap")
		return
	}
	share := func(frac float64) []mem.Access {
		out := make([]mem.Access, len(accesses))
		for i, a := range accesses {
			a.Bytes *= frac
			a.Touches *= frac
			out[i] = a
		}
		return out
	}
	frac := 1.0 / float64(threads)
	var done sim.WaitQueue
	pending := 0
	for t := 1; t < threads; t++ {
		core := cores[t]
		if core == r.bind.Core {
			core = cores[0]
		}
		pending++
		coreT := core
		r.w.eng.Spawn(fmt.Sprintf("rank%d.omp%d", r.id, t), func(p *sim.Proc) {
			cpu := r.mach.CPU(p, coreT)
			cpu.Overlap(flops*frac, eff, share(frac)...)
			pending--
			done.WakeAll(r.w.eng)
		})
	}
	r.cpu.Overlap(flops*frac, eff, share(frac)...)
	for pending > 0 {
		done.Wait(r.proc, "omp join")
	}
	r.account(catMemory, "hybrid-overlap")
}

// PhaseSpan is one recorded interval of a rank's timeline.
type PhaseSpan struct {
	Rank  int
	Name  string
	Start float64
	End   float64
}

// Phase runs fn and records its interval in the job's timeline, available
// afterwards as Result.Timeline. Phases may nest; spans are recorded in
// completion order.
func (r *Rank) Phase(name string, fn func()) {
	start := r.Now()
	fn()
	r.w.timeline = append(r.w.timeline, PhaseSpan{
		Rank: r.id, Name: name, Start: start, End: r.Now(),
	})
	if tr := r.w.trace; tr != nil {
		tr.Span(r.id, r.tid, name, "phase", start, r.Now()-start)
	}
}
