package mpi

// Per-rank time attribution. Every Rank-level operation accounts the
// simulated time it consumed into one of four categories — the breakdown
// the paper uses to explain *why* a scheme wins or loses (compute vs.
// memory stalls vs. MPI waits). Accounting is interval-based: each rank
// carries a mark of the last accounted timestamp, and every operation
// attributes [mark, now) when it finishes, splitting out the compute
// seconds the CPU recorded over the interval. Because simulated time only
// advances inside instrumented operations, the category sums reconstruct
// the rank's wall time exactly (within float summation error).
//
// The same accounting points drive the trace sink: when Config.Trace is
// set, each accounted interval is emitted as one span (pid = rank id,
// tid 0 for the main process, tid >= 1 for Isend/Irecv helpers). With
// tracing off the per-operation cost is a handful of float additions.

// TimeBreakdown partitions one rank's wall time into the paper's
// categories, in seconds.
type TimeBreakdown struct {
	// Compute is time the core spent executing instructions (flops and
	// cache-hit service).
	Compute float64
	// Memory is time stalled on the rank's own memory traffic (DRAM
	// streams, latency-bound misses).
	Memory float64
	// MPIWait is time in MPI software overhead and waiting for peers
	// (recv waits, rendezvous handshakes, barriers).
	MPIWait float64
	// Copy is time moving message payloads (shared-segment and network
	// copies).
	Copy float64
}

// Total returns the sum of all categories.
func (b TimeBreakdown) Total() float64 {
	return b.Compute + b.Memory + b.MPIWait + b.Copy
}

// tcat indexes a TimeBreakdown category.
type tcat int

const (
	catCompute tcat = iota
	catMemory
	catMPI
	catCopy
)

// CategoryNames lists the breakdown categories in field order, for
// building report tables.
var CategoryNames = [...]string{"compute", "memory", "mpi-wait", "copy"}

// Slice returns the categories in CategoryNames order.
func (b TimeBreakdown) Slice() []float64 {
	return []float64{b.Compute, b.Memory, b.MPIWait, b.Copy}
}

func (b *TimeBreakdown) add(c tcat, d float64) {
	switch c {
	case catCompute:
		b.Compute += d
	case catMemory:
		b.Memory += d
	case catMPI:
		b.MPIWait += d
	case catCopy:
		b.Copy += d
	}
}

// account attributes the time elapsed since the rank's last accounting
// mark: the compute seconds the CPU recorded over the interval go to
// Compute, the remainder to cat. When tracing, the interval is emitted as
// one span named op.
func (r *Rank) account(cat tcat, op string) {
	now := r.proc.Now()
	dt := now - r.acct
	if dt <= 0 {
		// Zero-width interval: just re-sync the compute mark.
		r.acctCompute = r.cpu.ComputeSeconds
		return
	}
	comp := r.cpu.ComputeSeconds - r.acctCompute
	if comp < 0 {
		comp = 0
	} else if comp > dt {
		comp = dt
	}
	r.bd.Compute += comp
	r.bd.add(cat, dt-comp)
	if tr := r.w.trace; tr != nil {
		tr.Span(r.id, r.tid, op, CategoryNames[cat], r.acct, dt)
	}
	r.acct = now
	r.acctCompute = r.cpu.ComputeSeconds
}
