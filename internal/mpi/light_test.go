package mpi

import (
	"bytes"
	"context"
	"math"
	"reflect"
	"testing"

	"multicore/internal/affinity"
	"multicore/internal/machine"
	"multicore/internal/sim"
)

// lightTraffic is a mixed-protocol workload touching every helper path:
// eager and rendezvous point-to-point (below and above MPICH2's 128KB
// switch), nonblocking overlap through Isend/Irecv, Sendrecv's paired
// helpers, and a collective built on p2p underneath.
func lightTraffic(r *Rank) {
	n := r.Size()
	right, left := (r.ID()+1)%n, (r.ID()+n-1)%n
	for i := 0; i < 3; i++ {
		r.Sendrecv(right, 4096, left) // eager
	}
	if r.ID() == 0 {
		r.Send(1, 512*1024) // rendezvous
	} else if r.ID() == 1 {
		r.Recv(0)
	}
	req := r.Irecv(left)
	q := r.Isend(right, 64*1024)
	r.Compute(1e6, 0.9)
	r.WaitAll(req, q)
	r.Allreduce(8192)
	r.Report("t", r.Now())
}

// runLightTraffic executes the mixed workload with the given helper
// backing and returns the result plus the byte-exact trace.
func runLightTraffic(t *testing.T, light bool, nodes int) (*Result, []byte) {
	t.Helper()
	old := lightHelpers
	lightHelpers = light
	defer func() { lightHelpers = old }()
	spec := machine.Longs()
	bindings, err := affinity.Layout(affinity.Default, spec.Topo, 8)
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{Spec: spec, Impl: MPICH2(), Bindings: bindings,
		Trace: &sim.Trace{}, Observe: true}
	if nodes > 1 {
		cfg.Nodes = nodes
		cfg.Net = RapidArray()
	}
	res, err := RunContext(context.Background(), cfg, lightTraffic)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := cfg.Trace.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	return res, buf.Bytes()
}

// TestLightHelperEquivalence: the continuation-backed helper processes
// must reproduce the goroutine-backed helpers exactly — same makespan
// bits, same message and byte counts, same per-rank metrics, and a
// byte-identical trace — across intra-node and inter-node traffic.
func TestLightHelperEquivalence(t *testing.T) {
	for _, tc := range []struct {
		name  string
		nodes int
	}{
		{"intra-node", 1},
		{"cluster", 2},
	} {
		t.Run(tc.name, func(t *testing.T) {
			heavy, heavyTrace := runLightTraffic(t, false, tc.nodes)
			lightRes, lightTrace := runLightTraffic(t, true, tc.nodes)
			if math.Float64bits(heavy.Time) != math.Float64bits(lightRes.Time) {
				t.Errorf("makespan differs: goroutine helpers %.17g, continuation helpers %.17g",
					heavy.Time, lightRes.Time)
			}
			if heavy.Messages != lightRes.Messages || heavy.Bytes != lightRes.Bytes {
				t.Errorf("traffic differs: %d msgs/%.0f B vs %d msgs/%.0f B",
					heavy.Messages, heavy.Bytes, lightRes.Messages, lightRes.Bytes)
			}
			if !reflect.DeepEqual(heavy.Values, lightRes.Values) {
				t.Errorf("per-rank metrics differ:\n goroutine: %v\n continuation: %v",
					heavy.Values, lightRes.Values)
			}
			if !reflect.DeepEqual(heavy.Breakdown, lightRes.Breakdown) {
				t.Errorf("time breakdowns differ:\n goroutine: %+v\n continuation: %+v",
					heavy.Breakdown, lightRes.Breakdown)
			}
			if !bytes.Equal(heavyTrace, lightTrace) {
				t.Errorf("traces differ: %d bytes vs %d bytes", len(heavyTrace), len(lightTrace))
			}
		})
	}
}
