package mpi

import (
	"testing"

	"multicore/internal/machine"
	"multicore/internal/units"
)

// Closed-form message counts for each collective algorithm — the cheapest
// possible regression net for schedule bugs.

func countMessages(t *testing.T, n int, body func(*Rank)) int {
	t.Helper()
	res := Run(jobOn(machine.Longs(), MPICH2(), longsCores(n)...), body)
	return res.Messages
}

func TestRingAllreduceMessageCount(t *testing.T) {
	for _, n := range []int{2, 4, 8} {
		got := countMessages(t, n, func(r *Rank) { r.AllreduceRing(units.MB) })
		want := 2 * n * (n - 1) // 2(n-1) steps, one message per rank per step
		if got != want {
			t.Fatalf("n=%d: ring allreduce sent %d messages, want %d", n, got, want)
		}
	}
}

func TestRecursiveDoublingMessageCount(t *testing.T) {
	for _, n := range []int{2, 4, 8, 16} {
		got := countMessages(t, n, func(r *Rank) { r.AllreduceRecursiveDoubling(1024) })
		want := 0
		for k := 1; k < n; k <<= 1 {
			want += n // every rank sends once per round
		}
		if got != want {
			t.Fatalf("n=%d: doubling allreduce sent %d messages, want %d", n, got, want)
		}
	}
}

func TestScatterAllgatherBcastMessageCount(t *testing.T) {
	for _, n := range []int{3, 4, 8} {
		got := countMessages(t, n, func(r *Rank) { r.BcastScatterAllgather(0, units.MB) })
		// Scatter: n-1 sends from root; ring allgather: n(n-1).
		want := (n - 1) + n*(n-1)
		if got != want {
			t.Fatalf("n=%d: scatter+allgather bcast sent %d messages, want %d", n, got, want)
		}
	}
}

func TestBarrierMessageCount(t *testing.T) {
	for _, n := range []int{2, 4, 8, 16} {
		got := countMessages(t, n, func(r *Rank) { r.Barrier() })
		rounds := 0
		for k := 1; k < n; k <<= 1 {
			rounds++
		}
		want := n * rounds
		if got != want {
			t.Fatalf("n=%d: barrier sent %d messages, want %d", n, got, want)
		}
	}
}

func TestAlltoallNonPowerOfTwoMessageCount(t *testing.T) {
	n := 6
	got := countMessages(t, n, func(r *Rank) { r.Alltoall(1024) })
	want := n * (n - 1)
	if got != want {
		t.Fatalf("alltoall(6) sent %d messages, want %d", got, want)
	}
}
