package mpi

import (
	"testing"

	"multicore/internal/machine"
	"multicore/internal/topology"
	"multicore/internal/units"
)

func longsCores(n int) []topology.CoreID {
	out := make([]topology.CoreID, n)
	for i := range out {
		out[i] = topology.CoreID(i)
	}
	return out
}

func TestRingAllreduceBeatsDoublingForLargePayloads(t *testing.T) {
	const bytes = 4 * units.MB
	run := func(body func(*Rank)) float64 {
		return Run(jobOn(machine.Longs(), MPICH2(), longsCores(8)...), body).Time
	}
	ring := run(func(r *Rank) { r.AllreduceRing(bytes) })
	doubling := run(func(r *Rank) { r.AllreduceRecursiveDoubling(bytes) })
	if ring >= doubling {
		t.Fatalf("ring allreduce (%v) should beat recursive doubling (%v) at 4 MB", ring, doubling)
	}
}

func TestDoublingBeatsRingForSmallPayloads(t *testing.T) {
	const bytes = 64
	run := func(body func(*Rank)) float64 {
		return Run(jobOn(machine.Longs(), MPICH2(), longsCores(8)...), body).Time
	}
	ring := run(func(r *Rank) { r.AllreduceRing(bytes) })
	doubling := run(func(r *Rank) { r.AllreduceRecursiveDoubling(bytes) })
	if doubling >= ring {
		t.Fatalf("recursive doubling (%v) should beat ring (%v) at 64 B", doubling, ring)
	}
}

func TestScatterAllgatherBcastBeatsBinomialForLargePayloads(t *testing.T) {
	const bytes = 8 * units.MB
	run := func(body func(*Rank)) float64 {
		return Run(jobOn(machine.Longs(), MPICH2(), longsCores(8)...), body).Time
	}
	sag := run(func(r *Rank) { r.BcastScatterAllgather(0, bytes) })
	bin := run(func(r *Rank) { r.BcastBinomial(0, bytes) })
	if sag >= bin {
		t.Fatalf("scatter+allgather bcast (%v) should beat binomial (%v) at 8 MB", sag, bin)
	}
}

func TestAutoSelectionMatchesBestAlgorithm(t *testing.T) {
	for _, bytes := range []float64{64, 4 * units.MB} {
		run := func(body func(*Rank)) float64 {
			return Run(jobOn(machine.Longs(), MPICH2(), longsCores(8)...), body).Time
		}
		auto := run(func(r *Rank) { r.Allreduce(bytes) })
		ring := run(func(r *Rank) { r.AllreduceRing(bytes) })
		doubling := run(func(r *Rank) { r.AllreduceRecursiveDoubling(bytes) })
		best := ring
		if doubling < best {
			best = doubling
		}
		if auto > best*1.01 {
			t.Fatalf("auto allreduce at %v B = %v, best explicit = %v", bytes, auto, best)
		}
	}
}

func TestBcastAlgorithmsDeliverSameMessageVolume(t *testing.T) {
	// Scatter+allgather moves less data per link, but every rank must
	// still participate; both complete on odd rank counts.
	for _, n := range []int{3, 5, 8} {
		for _, alg := range []func(*Rank, int, float64){
			(*Rank).BcastBinomial,
			(*Rank).BcastScatterAllgather,
		} {
			alg := alg
			res := Run(jobOn(machine.Longs(), MPICH2(), longsCores(n)...), func(r *Rank) {
				alg(r, 0, 512*units.KB)
				r.Report("done", 1)
			})
			if got := len(res.Values["done"]); got != n {
				t.Fatalf("n=%d: only %d ranks completed", n, got)
			}
		}
	}
}

func TestHybridOverlapUsesSiblingCore(t *testing.T) {
	// An OpenMP region with 2 threads on a dual-core socket should cut a
	// compute-bound phase nearly in half.
	spec := machine.DMZ()
	timeFor := func(threads int) float64 {
		return Run(jobOn(spec, MPICH2(), 0), func(r *Rank) {
			r.HybridOverlap(threads, 4.4e8, 1.0)
		}).Time
	}
	t1 := timeFor(1)
	t2 := timeFor(2)
	if ratio := t1 / t2; ratio < 1.8 || ratio > 2.1 {
		t.Fatalf("2-thread hybrid speedup = %.2f, want ~2", ratio)
	}
}

func TestHybridOverlapClampsThreads(t *testing.T) {
	// Asking for more threads than the socket has cores must not panic
	// and not use foreign sockets.
	spec := machine.DMZ()
	res := Run(jobOn(spec, MPICH2(), 0), func(r *Rank) {
		r.HybridOverlap(8, 1e8, 1.0)
	})
	if res.Time <= 0 {
		t.Fatal("no time elapsed")
	}
}
