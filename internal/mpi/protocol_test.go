package mpi

import (
	"testing"

	"multicore/internal/machine"
	"multicore/internal/mem"
	"multicore/internal/topology"
	"multicore/internal/units"
)

func TestZeroByteSendDelivers(t *testing.T) {
	res := Run(jobOn(machine.DMZ(), OpenMPI(), 0, 1), func(r *Rank) {
		if r.ID() == 0 {
			r.Send(1, 0)
		} else {
			r.Recv(0)
		}
	})
	if res.Messages != 1 {
		t.Fatalf("messages = %d", res.Messages)
	}
}

func TestFIFOOrderingPerPair(t *testing.T) {
	// Messages between one pair must drain in order even when sizes mix
	// eager and rendezvous protocols on the receive side.
	var got []float64
	Run(jobOn(machine.DMZ(), OpenMPI(), 0, 2), func(r *Rank) {
		sizes := []float64{8, 128 * units.KB, 64, 256 * units.KB}
		if r.ID() == 0 {
			for _, s := range sizes {
				r.Send(1, s)
			}
		} else {
			for range sizes {
				r.Recv(0)
				got = append(got, 1)
			}
		}
	})
	if len(got) != 4 {
		t.Fatalf("received %d messages, want 4", len(got))
	}
}

func TestIsendOverlapsTransfers(t *testing.T) {
	// Two outstanding isends to different peers must overlap their data
	// movement: total time well below the serial sum.
	serial := Run(jobOn(machine.Longs(), OpenMPI(), 0, 4, 8), func(r *Rank) {
		if r.ID() == 0 {
			r.Send(1, 16*units.KB)
			r.Send(2, 16*units.KB)
		} else {
			r.Recv(0)
		}
	}).Time
	overlapped := Run(jobOn(machine.Longs(), OpenMPI(), 0, 4, 8), func(r *Rank) {
		if r.ID() == 0 {
			a := r.Isend(1, 16*units.KB)
			b := r.Isend(2, 16*units.KB)
			r.WaitAll(a, b)
		} else {
			r.Recv(0)
		}
	}).Time
	if overlapped >= serial {
		t.Fatalf("isend (%v) should beat blocking sends (%v)", overlapped, serial)
	}
}

func TestWaitAfterCompletionReturnsImmediately(t *testing.T) {
	Run(jobOn(machine.DMZ(), OpenMPI(), 0, 1), func(r *Rank) {
		if r.ID() == 0 {
			req := r.Isend(1, 64)
			r.Compute(1e7, 1) // plenty of time for the send to finish
			r.Wait(req)       // must not deadlock
			r.Wait(req)       // double-wait is harmless
		} else {
			r.Recv(0)
		}
	})
}

func TestHopLatencyVisibleInSmallMessages(t *testing.T) {
	lat := func(cores ...topology.CoreID) float64 {
		res := Run(jobOn(machine.Longs(), OpenMPI(), cores...), func(r *Rank) {
			for i := 0; i < 40; i++ {
				if r.ID() == 0 {
					r.Send(1, 8)
					r.Recv(1)
				} else {
					r.Recv(0)
					r.Send(0, 8)
				}
			}
		})
		return res.Time / 80
	}
	near := lat(0, 2) // sockets 0-1: 1 hop
	far := lat(0, 14) // sockets 0-7: 4 hops
	want := 3 * 70e-9 // three extra hops at 70 ns
	if far-near < want*0.8 {
		t.Fatalf("hop latency not visible: near=%v far=%v", near, far)
	}
}

func TestBufferModeForProfiles(t *testing.T) {
	if BufferModeFor(LAM(), 1 /* LocalAlloc */) != BufHotspot {
		t.Fatal("LAM under localalloc should hotspot")
	}
	if BufferModeFor(MPICH2(), 1) != BufSpread {
		t.Fatal("MPICH2 under localalloc should stay spread")
	}
	if BufferModeFor(OpenMPI(), 2 /* Interleave */) != BufInterleaved {
		t.Fatal("interleave should spread segments")
	}
	if BufferModeFor(nil, 0) != BufSpread {
		t.Fatal("default policy should spread")
	}
}

func TestSegmentCost(t *testing.T) {
	im := LAM().WithSublayer(SysV())
	if c := segmentCost(im, 4*units.KB); c != 0 {
		t.Fatalf("single-segment message cost = %v, want 0", c)
	}
	big := segmentCost(im, 64*units.KB) // 8 segments of 8 KB
	perSeg := (im.Sub.LockLatency + im.Sub.WakeLatency) / 2
	want := 7 * perSeg
	if big != want {
		t.Fatalf("segment cost = %v, want %v", big, want)
	}
}

func TestRendezvousThreshold(t *testing.T) {
	// A message exactly at the threshold stays eager; one byte over goes
	// rendezvous (sender blocks until the receiver arrives).
	im := OpenMPI()
	var eagerDone, rdvDone float64
	Run(Config{Spec: machine.DMZ(), Impl: im, Bindings: jobOn(machine.DMZ(), im, 0, 2).Bindings},
		func(r *Rank) {
			if r.ID() == 0 {
				r.Send(1, im.EagerThreshold)
				eagerDone = r.Now()
				r.Send(1, im.EagerThreshold+1)
				rdvDone = r.Now()
			} else {
				r.Compute(44e6, 1) // ~10 ms late
				r.Recv(0)
				r.Recv(0)
			}
		})
	if eagerDone > 5e-3 {
		t.Fatalf("threshold-sized send blocked: %v", eagerDone)
	}
	if rdvDone < 10e-3 {
		t.Fatalf("over-threshold send did not block: %v", rdvDone)
	}
}

// memAccessStream constructs a plain streaming access.
func memAccessStream(r *mem.Region, bytes float64) mem.Access {
	return mem.Access{Region: r, Pattern: mem.Stream, Bytes: bytes}
}

func TestOSMigrationFlushesCaches(t *testing.T) {
	// A cache-resident workload slows down when scheduler jitter
	// periodically evicts its working set.
	spec := machine.DMZ()
	timeFor := func(period float64) float64 {
		cfg := jobOn(spec, OpenMPI(), 0)
		cfg.OSMigrationPeriod = period
		return Run(cfg, func(r *Rank) {
			reg := r.Alloc("hot", 512<<10) // cache resident
			for i := 0; i < 200; i++ {
				r.Access(memAccessStream(reg, 512<<10))
			}
		}).Time
	}
	clean := timeFor(0)
	jittery := timeFor(100 * units.Microsecond)
	if jittery <= clean*1.05 {
		t.Fatalf("migration jitter should slow a cache-resident loop: clean=%v jittery=%v", clean, jittery)
	}
}

func clusterCfg(nodes int, net *NetSpec, cores ...topology.CoreID) Config {
	cfg := jobOn(machine.DMZ(), OpenMPI(), cores...)
	cfg.Nodes = nodes
	cfg.Net = net
	return cfg
}

func TestClusterSpawnsRanksOnAllNodes(t *testing.T) {
	res := Run(clusterCfg(3, RapidArray(), 0, 2), func(r *Rank) {
		r.Report("node", float64(r.Node()))
	})
	if len(res.RankTimes) != 6 {
		t.Fatalf("ranks = %d, want 6", len(res.RankTimes))
	}
	if res.Max("node") != 2 {
		t.Fatalf("max node = %v, want 2", res.Max("node"))
	}
}

func TestInterNodeLatencyExceedsIntraNode(t *testing.T) {
	lat := func(dst int) float64 {
		res := Run(clusterCfg(2, RapidArray(), 0, 2), func(r *Rank) {
			for i := 0; i < 40; i++ {
				switch r.ID() {
				case 0:
					r.Send(dst, 8)
					r.Recv(dst)
				case dst:
					r.Recv(0)
					r.Send(0, 8)
				}
			}
		})
		return res.Time / 80
	}
	intra := lat(1) // same node, other socket
	inter := lat(2) // rank 2 = first rank of node 1
	if inter <= intra {
		t.Fatalf("inter-node latency %v should exceed intra-node %v", inter, intra)
	}
	// RapidArray wire+stack costs replace the shm copies but still add
	// a clear microsecond-scale premium each way.
	if inter-intra < 1.5e-6 {
		t.Fatalf("network latency too small: %v", inter-intra)
	}
}

func TestGigEMuchSlowerThanRapidArray(t *testing.T) {
	bw := func(net *NetSpec) float64 {
		const bytes = 1 * units.MB
		res := Run(clusterCfg(2, net, 0, 2), func(r *Rank) {
			if r.ID() == 0 {
				r.Send(2, bytes)
			} else if r.ID() == 2 {
				r.Recv(0)
			}
		})
		return bytes / res.Time
	}
	ra := bw(RapidArray())
	ge := bw(GigE())
	if ra < 5*ge {
		t.Fatalf("RapidArray (%v B/s) should be >> GigE (%v B/s)", ra, ge)
	}
}

func TestClusterCollectivesSpanNodes(t *testing.T) {
	res := Run(clusterCfg(2, RapidArray(), 0, 1, 2, 3), func(r *Rank) {
		r.Allreduce(1024)
		r.Barrier()
		r.Report("done", 1)
	})
	if got := len(res.Values["done"]); got != 8 {
		t.Fatalf("only %d of 8 ranks finished", got)
	}
}

func TestNodeLocalMemoryIsIndependent(t *testing.T) {
	// Two nodes streaming locally must not contend: time equals the
	// single-node case.
	single := Run(clusterCfg(1, nil, 0), func(r *Rank) {
		reg := r.Alloc("v", 8*units.MB)
		for i := 0; i < 4; i++ {
			r.Access(memAccessStream(reg, 8*units.MB))
		}
	}).Time
	double := Run(clusterCfg(2, RapidArray(), 0), func(r *Rank) {
		reg := r.Alloc("v", 8*units.MB)
		for i := 0; i < 4; i++ {
			r.Access(memAccessStream(reg, 8*units.MB))
		}
	}).Time
	if d := double - single; d > 1e-9 {
		t.Fatalf("cross-node memory interference: %v vs %v", double, single)
	}
}

func TestPhaseTimeline(t *testing.T) {
	res := Run(jobOn(machine.DMZ(), OpenMPI(), 0, 2), func(r *Rank) {
		r.Phase("compute", func() { r.Compute(1e7, 1) })
		r.Phase("sync", func() { r.Barrier() })
	})
	if len(res.Timeline) != 4 {
		t.Fatalf("timeline spans = %d, want 4", len(res.Timeline))
	}
	for _, span := range res.Timeline {
		if span.End < span.Start {
			t.Fatalf("span %+v runs backwards", span)
		}
		if span.Name != "compute" && span.Name != "sync" {
			t.Fatalf("unexpected span %q", span.Name)
		}
	}
}

func TestPhaseNesting(t *testing.T) {
	res := Run(jobOn(machine.DMZ(), OpenMPI(), 0), func(r *Rank) {
		r.Phase("outer", func() {
			r.Phase("inner", func() { r.Compute(1e6, 1) })
			r.Compute(1e6, 1)
		})
	})
	if len(res.Timeline) != 2 {
		t.Fatalf("spans = %d, want 2", len(res.Timeline))
	}
	// Inner completes first; outer encloses it.
	inner, outer := res.Timeline[0], res.Timeline[1]
	if inner.Name != "inner" || outer.Name != "outer" {
		t.Fatalf("span order wrong: %+v", res.Timeline)
	}
	if inner.Start < outer.Start || inner.End > outer.End {
		t.Fatalf("inner span %+v escapes outer %+v", inner, outer)
	}
}
