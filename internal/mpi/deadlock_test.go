package mpi

import (
	"context"
	"errors"
	"strings"
	"testing"
	"time"

	"multicore/internal/machine"
	"multicore/internal/sim"
)

// TestHeadToHeadRendezvousDeadlocks is the classic MPI protocol bug: both
// ranks issue a blocking Send above the eager threshold, so each waits
// for the other's Recv that never comes. RunContext must return a
// *sim.DeadlockError naming both ranks parked on their rendezvous waits
// rather than hanging the process.
func TestHeadToHeadRendezvousDeadlocks(t *testing.T) {
	im := MPICH2()
	res, err := RunContext(context.Background(), jobOn(machine.DMZ(), im, 0, 2), func(r *Rank) {
		r.Send(1-r.ID(), im.EagerThreshold+1)
		r.Recv(1 - r.ID())
	})
	if res != nil {
		t.Fatal("deadlocked run returned a result")
	}
	var dl *sim.DeadlockError
	if !errors.As(err, &dl) {
		t.Fatalf("got %v, want *sim.DeadlockError", err)
	}
	names := map[string]string{}
	for _, b := range dl.Blocked {
		names[b.Name] = b.Wait
	}
	for _, rank := range []string{"rank0", "rank1"} {
		wait, ok := names[rank]
		if !ok {
			t.Fatalf("%s not in blocked set %v", rank, dl.Blocked)
		}
		if !strings.Contains(wait, "rendezvous to") {
			t.Fatalf("%s wait label %q should name the rendezvous", rank, wait)
		}
	}
}

// TestEagerHeadToHeadCompletes is the contrast case: the same exchange
// below the eager threshold buffers and completes.
func TestEagerHeadToHeadCompletes(t *testing.T) {
	im := MPICH2()
	res, err := RunContext(context.Background(), jobOn(machine.DMZ(), im, 0, 2), func(r *Rank) {
		r.Send(1-r.ID(), im.EagerThreshold-1)
		r.Recv(1 - r.ID())
	})
	if err != nil {
		t.Fatalf("eager exchange should complete: %v", err)
	}
	if res.Messages != 2 {
		t.Fatalf("messages = %d, want 2", res.Messages)
	}
}

// TestRunContextDeadlineAborts checks that an expired deadline aborts a
// run as *sim.CanceledError unwrapping to DeadlineExceeded.
func TestRunContextDeadlineAborts(t *testing.T) {
	ctx, cancel := context.WithDeadline(context.Background(), time.Now().Add(-time.Second))
	defer cancel()
	res, err := RunContext(ctx, jobOn(machine.DMZ(), MPICH2(), 0, 2), func(r *Rank) {
		r.Barrier()
	})
	if res != nil {
		t.Fatal("aborted run returned a result")
	}
	var ce *sim.CanceledError
	if !errors.As(err, &ce) {
		t.Fatalf("got %v, want *sim.CanceledError", err)
	}
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("should unwrap to DeadlineExceeded, got %v", err)
	}
}
