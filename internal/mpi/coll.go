package mpi

import "fmt"

// smallMsg is the payload size used for pure synchronization messages.
const smallMsg = 8

// Barrier synchronizes all ranks with a dissemination algorithm
// (ceil(log2 n) rounds of small sendrecvs).
func (r *Rank) Barrier() {
	n := r.Size()
	if n == 1 {
		r.proc.Sleep(0)
		return
	}
	for k := 1; k < n; k <<= 1 {
		dst := (r.id + k) % n
		src := (r.id - k + n) % n
		r.Sendrecv(dst, smallMsg, src)
	}
}

// Bcast broadcasts bytes from root, choosing the algorithm by size the
// way production MPI libraries do: binomial tree for small payloads,
// scatter+allgather for large ones.
func (r *Rank) Bcast(root int, bytes float64) {
	if bytes > bcastLargeThreshold && r.Size() > 2 {
		r.BcastScatterAllgather(root, bytes)
		return
	}
	r.BcastBinomial(root, bytes)
}

// parentOf returns the binomial-tree parent of virtual rank v (> 0).
func parentOf(v int) int {
	// Clear the highest set bit.
	h := 1
	for h<<1 <= v {
		h <<= 1
	}
	return v - h
}

// lowestPow2Above returns the smallest power of two strictly greater than
// v for v > 0, or 1 for v == 0 (the fan-out start for each subtree root).
func lowestPow2Above(v int) int {
	if v == 0 {
		return 1
	}
	h := 1
	for h<<1 <= v {
		h <<= 1
	}
	return h << 1
}

// Reduce combines bytes of data onto root over a binomial tree, charging
// one flop per 8 bytes per combine step at the given efficiency.
func (r *Rank) Reduce(root int, bytes float64) {
	n := r.Size()
	if n == 1 {
		return
	}
	vrank := (r.id - root + n) % n
	// Children send up in reverse binomial order: a rank forwards to the
	// peer that differs in its lowest set bit.
	for k := 1; k < n; k <<= 1 {
		if vrank&k != 0 {
			r.Send((vrank-k+root)%n, bytes)
			return
		}
		peerV := vrank + k
		if peerV < n {
			r.Recv((peerV + root) % n)
			r.Compute(bytes/8, 0.5) // combine partial results
		}
	}
}

// Allreduce combines and redistributes bytes across all ranks, choosing
// recursive doubling for small payloads and the bandwidth-optimal ring
// for large ones.
func (r *Rank) Allreduce(bytes float64) {
	if bytes > allreduceLargeThreshold && r.Size() > 2 {
		r.AllreduceRing(bytes)
		return
	}
	r.AllreduceRecursiveDoubling(bytes)
}

// Alltoall exchanges bytesPerPair with every other rank using pairwise
// exchange (XOR schedule for power-of-two counts, rotation otherwise).
func (r *Rank) Alltoall(bytesPerPair float64) {
	n := r.Size()
	if n == 1 {
		return
	}
	if n&(n-1) == 0 {
		for step := 1; step < n; step++ {
			peer := r.id ^ step
			r.Sendrecv(peer, bytesPerPair, peer)
		}
		return
	}
	for step := 1; step < n; step++ {
		dst := (r.id + step) % n
		src := (r.id - step + n) % n
		r.Sendrecv(dst, bytesPerPair, src)
	}
}

// Allgather circulates bytes from every rank to every rank over a ring
// (n-1 steps).
func (r *Rank) Allgather(bytes float64) {
	n := r.Size()
	if n == 1 {
		return
	}
	next := (r.id + 1) % n
	prev := (r.id - 1 + n) % n
	for step := 0; step < n-1; step++ {
		r.Sendrecv(next, bytes, prev)
	}
}

// Scatter distributes bytesPerRank from root to every rank (root sends
// directly; fine for the node-scale jobs modeled here).
func (r *Rank) Scatter(root int, bytesPerRank float64) {
	n := r.Size()
	if n == 1 {
		return
	}
	if r.id == root {
		for i := 0; i < n; i++ {
			if i != root {
				r.Send(i, bytesPerRank)
			}
		}
	} else {
		r.Recv(root)
	}
}

// Gather collects bytesPerRank from every rank at root.
func (r *Rank) Gather(root int, bytesPerRank float64) {
	n := r.Size()
	if n == 1 {
		return
	}
	if r.id == root {
		for i := 0; i < n; i++ {
			if i != root {
				r.Recv(i)
			}
		}
	} else {
		r.Send(root, bytesPerRank)
	}
}

func (r *Rank) String() string { return fmt.Sprintf("rank %d/%d", r.id, r.Size()) }
