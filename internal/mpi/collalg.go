package mpi

// Collective algorithm selection. Real MPI implementations switch
// algorithms by message size: latency-optimal trees for small payloads,
// bandwidth-optimal pipelines for large ones. The default entry points
// (Bcast, Allreduce, ...) pick automatically; the explicit variants are
// exported for the algorithm-comparison ablation.

// bcastLargeThreshold is the payload size above which Bcast switches from
// the binomial tree to scatter+allgather.
const bcastLargeThreshold = 128 * 1024

// allreduceLargeThreshold switches Allreduce from recursive doubling to
// the ring (reduce-scatter + allgather) algorithm.
const allreduceLargeThreshold = 256 * 1024

// BcastBinomial broadcasts over a binomial tree: log2(n) rounds, each
// moving the full payload — latency-optimal for small messages.
func (r *Rank) BcastBinomial(root int, bytes float64) {
	n := r.Size()
	if n == 1 {
		return
	}
	vrank := (r.id - root + n) % n
	if vrank != 0 {
		r.Recv((parentOf(vrank) + root) % n)
	}
	for k := lowestPow2Above(vrank); k < n; k <<= 1 {
		child := vrank + k
		if child < n {
			r.Send((child+root)%n, bytes)
		}
	}
}

// BcastScatterAllgather broadcasts large payloads bandwidth-optimally:
// the root scatters 1/n of the data to each rank, then a ring allgather
// circulates the pieces. Total bytes moved per link ~ 2x payload instead
// of log2(n)x.
func (r *Rank) BcastScatterAllgather(root int, bytes float64) {
	n := r.Size()
	if n == 1 {
		return
	}
	piece := bytes / float64(n)
	r.Scatter(root, piece)
	r.Allgather(piece)
}

// AllreduceRecursiveDoubling combines in log2(n) exchange rounds of the
// full payload — latency-optimal. Falls back to Reduce+Bcast for
// non-power-of-two sizes.
func (r *Rank) AllreduceRecursiveDoubling(bytes float64) {
	n := r.Size()
	if n == 1 {
		return
	}
	if n&(n-1) != 0 {
		r.Reduce(0, bytes)
		r.Bcast(0, bytes)
		return
	}
	for k := 1; k < n; k <<= 1 {
		peer := r.id ^ k
		r.Sendrecv(peer, bytes, peer)
		r.Compute(bytes/8, 0.5)
	}
}

// AllreduceRing implements reduce-scatter + allgather over a ring:
// 2(n-1) steps of bytes/n each, bandwidth-optimal for large payloads.
func (r *Rank) AllreduceRing(bytes float64) {
	n := r.Size()
	if n == 1 {
		return
	}
	piece := bytes / float64(n)
	next := (r.id + 1) % n
	prev := (r.id - 1 + n) % n
	// Reduce-scatter phase: each step passes a piece and combines.
	for step := 0; step < n-1; step++ {
		r.Sendrecv(next, piece, prev)
		r.Compute(piece/8, 0.5)
	}
	// Allgather phase: circulate the reduced pieces.
	for step := 0; step < n-1; step++ {
		r.Sendrecv(next, piece, prev)
	}
}
