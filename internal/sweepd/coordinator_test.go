package sweepd

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"multicore/internal/schema"
)

// Control-plane tests: fake workers drive the coordinator's HTTP API
// directly, so lease expiry, transient requeue, dedup, and divergence
// detection are exercised without running simulations.

func startCoordinator(t *testing.T, opts CoordinatorOptions) (*Coordinator, *httptest.Server) {
	t.Helper()
	c, err := NewCoordinator(opts)
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(c.Handler())
	t.Cleanup(func() { srv.Close(); c.Close() })
	return c, srv
}

func postAs[T any](t *testing.T, url string, req any) T {
	t.Helper()
	var out T
	body, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("POST %s: status %d", url, resp.StatusCode)
	}
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	return out
}

func registerWorker(t *testing.T, base string) string {
	t.Helper()
	resp := postAs[RegisterResponse](t, base+PathRegister, RegisterRequest{SchemaVersion: schema.Version, Name: "fake"})
	return resp.Worker
}

// pollUntil polls as the worker until an assignment arrives or the
// deadline passes.
func pollUntil(t *testing.T, base, worker string, timeout time.Duration) *Assignment {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		resp := postAs[PollResponse](t, base+PathPoll, PollRequest{Worker: worker, WaitMillis: 50})
		if resp.Assignment != nil {
			return resp.Assignment
		}
	}
	return nil
}

func completeOK(t *testing.T, base, worker string, asg *Assignment, secs float64) {
	t.Helper()
	res := CellResult{Cell: asg.Cell, Status: StatusOK, Seconds: secs, Simulated: true}
	res.Fingerprint = Fingerprint(res)
	postAs[struct{}](t, base+PathComplete, CompleteRequest{Worker: worker, ID: asg.ID, Attempt: asg.Attempt, Result: res})
}

func testGrid() Grid {
	return Grid{Workloads: []string{"stream"}, Systems: []string{"tiger"},
		Ranks: []int{2}, Schemes: []string{"default"}, Scale: "quick"}
}

// submitAsync runs Submit in a goroutine, returning channels for the
// summary and collected results.
func submitAsync(t *testing.T, base string, req SweepRequest) (<-chan *Summary, <-chan map[string]CellResult, <-chan error) {
	t.Helper()
	sumc := make(chan *Summary, 1)
	resc := make(chan map[string]CellResult, 1)
	errc := make(chan error, 1)
	go func() {
		results := map[string]CellResult{}
		var mu sync.Mutex
		sum, err := Submit(context.Background(), base, req, func(r CellResult) {
			mu.Lock()
			results[r.Cell.Key()] = r
			mu.Unlock()
		})
		sumc <- sum
		resc <- results
		errc <- err
	}()
	return sumc, resc, errc
}

func TestLeaseExpiryReassigns(t *testing.T) {
	_, srv := startCoordinator(t, CoordinatorOptions{Lease: 60 * time.Millisecond})
	w1 := registerWorker(t, srv.URL)
	w2 := registerWorker(t, srv.URL)

	req := SweepRequest{SchemaVersion: schema.Version, Grid: testGrid()}
	sumc, _, errc := submitAsync(t, srv.URL, req)

	asg1 := pollUntil(t, srv.URL, w1, 2*time.Second)
	if asg1 == nil {
		t.Fatal("w1 never got the cell")
	}
	if asg1.Attempt != 1 {
		t.Fatalf("first lease attempt = %d, want 1", asg1.Attempt)
	}
	// w1 goes silent: no heartbeat, no completion. The lease must expire
	// and the cell re-lease to w2.
	asg2 := pollUntil(t, srv.URL, w2, 2*time.Second)
	if asg2 == nil {
		t.Fatal("cell never re-leased after expiry")
	}
	if asg2.ID != asg1.ID || asg2.Attempt != 2 {
		t.Fatalf("re-lease = %+v, want same cell at attempt 2", asg2)
	}
	completeOK(t, srv.URL, w2, asg2, 1.5)
	sum := <-sumc
	if err := <-errc; err != nil {
		t.Fatal(err)
	}
	if sum.Cells != 1 || sum.Simulated != 1 {
		t.Errorf("summary = %+v, want 1 cell simulated", sum)
	}
}

func TestHeartbeatKeepsLease(t *testing.T) {
	_, srv := startCoordinator(t, CoordinatorOptions{Lease: 80 * time.Millisecond})
	w1 := registerWorker(t, srv.URL)
	w2 := registerWorker(t, srv.URL)

	req := SweepRequest{SchemaVersion: schema.Version, Grid: testGrid()}
	sumc, _, errc := submitAsync(t, srv.URL, req)
	asg := pollUntil(t, srv.URL, w1, 2*time.Second)
	if asg == nil {
		t.Fatal("no assignment")
	}
	// Heartbeat well past the original lease; the cell must not be
	// re-leased while renewed.
	for i := 0; i < 10; i++ {
		hb := postAs[HeartbeatResponse](t, srv.URL+PathHeartbeat, HeartbeatRequest{Worker: w1, IDs: []string{asg.ID}})
		if len(hb.Lost) != 0 {
			t.Fatalf("heartbeat lost lease: %v", hb.Lost)
		}
		if resp := postAs[PollResponse](t, srv.URL+PathPoll, PollRequest{Worker: w2, WaitMillis: 10}); resp.Assignment != nil {
			t.Fatalf("cell re-leased to w2 despite heartbeats: %+v", resp.Assignment)
		}
		time.Sleep(20 * time.Millisecond)
	}
	completeOK(t, srv.URL, w1, asg, 2.5)
	<-sumc
	if err := <-errc; err != nil {
		t.Fatal(err)
	}
}

func TestTransientFailureRequeues(t *testing.T) {
	_, srv := startCoordinator(t, CoordinatorOptions{Lease: time.Second})
	w := registerWorker(t, srv.URL)
	req := SweepRequest{SchemaVersion: schema.Version, Grid: testGrid()}
	sumc, resc, errc := submitAsync(t, srv.URL, req)

	asg := pollUntil(t, srv.URL, w, 2*time.Second)
	if asg == nil {
		t.Fatal("no assignment")
	}
	res := CellResult{Cell: asg.Cell, Status: StatusError, Error: "injected transient", Transient: true, Simulated: true}
	res.Fingerprint = Fingerprint(res)
	postAs[struct{}](t, srv.URL+PathComplete, CompleteRequest{Worker: w, ID: asg.ID, Attempt: asg.Attempt, Result: res})

	asg2 := pollUntil(t, srv.URL, w, 2*time.Second)
	if asg2 == nil {
		t.Fatal("transient failure was not re-queued")
	}
	if asg2.Attempt != 2 {
		t.Fatalf("requeued attempt = %d, want 2", asg2.Attempt)
	}
	completeOK(t, srv.URL, w, asg2, 3.25)
	sum := <-sumc
	results := <-resc
	if err := <-errc; err != nil {
		t.Fatal(err)
	}
	if sum.Errors != 0 {
		t.Errorf("summary errors = %d, want 0 (retry succeeded)", sum.Errors)
	}
	for _, r := range results {
		if r.Status != StatusOK || r.Attempt != 2 {
			t.Errorf("result = %+v, want OK at attempt 2", r)
		}
	}
}

func TestDeterministicFailureFinalizes(t *testing.T) {
	_, srv := startCoordinator(t, CoordinatorOptions{Lease: time.Second})
	w := registerWorker(t, srv.URL)
	req := SweepRequest{SchemaVersion: schema.Version, Grid: testGrid()}
	sumc, resc, errc := submitAsync(t, srv.URL, req)

	asg := pollUntil(t, srv.URL, w, 2*time.Second)
	res := CellResult{Cell: asg.Cell, Status: StatusError, Error: "cell panicked", Simulated: true}
	res.Fingerprint = Fingerprint(res)
	postAs[struct{}](t, srv.URL+PathComplete, CompleteRequest{Worker: w, ID: asg.ID, Attempt: asg.Attempt, Result: res})

	sum := <-sumc
	results := <-resc
	if err := <-errc; err != nil {
		t.Fatal(err)
	}
	if sum.Errors != 1 {
		t.Errorf("summary errors = %d, want 1", sum.Errors)
	}
	for _, r := range results {
		if r.Status != StatusError || r.Attempt != 1 {
			t.Errorf("deterministic failure retried: %+v", r)
		}
	}
}

func TestLeaseBudgetExhaustionFailsCell(t *testing.T) {
	_, srv := startCoordinator(t, CoordinatorOptions{Lease: 40 * time.Millisecond, MaxAttempts: 2})
	w := registerWorker(t, srv.URL)
	req := SweepRequest{SchemaVersion: schema.Version, Grid: testGrid()}
	sumc, resc, errc := submitAsync(t, srv.URL, req)

	// Take both leases and abandon them.
	for i := 0; i < 2; i++ {
		if asg := pollUntil(t, srv.URL, w, 2*time.Second); asg == nil {
			t.Fatalf("no assignment for attempt %d", i+1)
		}
	}
	sum := <-sumc
	results := <-resc
	if err := <-errc; err != nil {
		t.Fatal(err)
	}
	if sum.Errors != 1 {
		t.Errorf("summary = %+v, want 1 error", sum)
	}
	for _, r := range results {
		if r.Status != StatusError || !strings.Contains(r.Error, "lease expired") {
			t.Errorf("result = %+v, want lease-expiry error", r)
		}
	}
}

func TestConcurrentSweepsShareExecutions(t *testing.T) {
	_, srv := startCoordinator(t, CoordinatorOptions{Lease: time.Second})
	w := registerWorker(t, srv.URL)
	g := Grid{Workloads: []string{"stream", "cg"}, Systems: []string{"tiger"},
		Ranks: []int{1, 2}, Schemes: []string{"default"}, Scale: "quick"}
	req := SweepRequest{SchemaVersion: schema.Version, Grid: g}
	nCells := len(g.Cells())

	sum1, res1, err1 := submitAsync(t, srv.URL, req)
	sum2, res2, err2 := submitAsync(t, srv.URL, req)

	// Serve every assignment the coordinator hands out; count them.
	assigned := 0
	deadline := time.Now().Add(5 * time.Second)
	for assigned < nCells && time.Now().Before(deadline) {
		asg := pollUntil(t, srv.URL, w, 200*time.Millisecond)
		if asg == nil {
			continue
		}
		assigned++
		completeOK(t, srv.URL, w, asg, float64(assigned))
	}
	s1, s2 := <-sum1, <-sum2
	r1, r2 := <-res1, <-res2
	if err := <-err1; err != nil {
		t.Fatal(err)
	}
	if err := <-err2; err != nil {
		t.Fatal(err)
	}
	if assigned != nCells {
		t.Errorf("coordinator assigned %d executions for %d cells across 2 identical sweeps", assigned, nCells)
	}
	// No further work may be pending.
	if asg := pollUntil(t, srv.URL, w, 100*time.Millisecond); asg != nil {
		t.Errorf("extra assignment after both sweeps done: %+v", asg)
	}
	if s1.Cells != nCells || s2.Cells != nCells {
		t.Errorf("summaries = %+v / %+v, want %d cells each", s1, s2, nCells)
	}
	// Both clients saw identical results.
	for k, a := range r1 {
		b, ok := r2[k]
		if !ok || a.Fingerprint != b.Fingerprint {
			t.Errorf("sweep results diverge at %s: %+v vs %+v", k, a, b)
		}
	}
}

func TestDivergentDuplicateCompletionDetected(t *testing.T) {
	c, srv := startCoordinator(t, CoordinatorOptions{Lease: 50 * time.Millisecond})
	w1 := registerWorker(t, srv.URL)
	w2 := registerWorker(t, srv.URL)
	req := SweepRequest{SchemaVersion: schema.Version, Grid: testGrid()}
	sumc, _, errc := submitAsync(t, srv.URL, req)

	asg1 := pollUntil(t, srv.URL, w1, 2*time.Second)
	asg2 := pollUntil(t, srv.URL, w2, 2*time.Second) // re-lease after expiry
	if asg1 == nil || asg2 == nil {
		t.Fatal("missing assignments")
	}
	completeOK(t, srv.URL, w2, asg2, 1.0)
	// The stale worker reports a *different* value for the same cell:
	// must be counted as divergence, not silently dropped.
	completeOK(t, srv.URL, w1, asg1, 2.0)
	<-sumc
	if err := <-errc; err != nil {
		t.Fatal(err)
	}
	st := getStatus(t, srv.URL)
	if st.Divergent != 1 {
		t.Errorf("divergent = %d, want 1", st.Divergent)
	}
	c.Close()
}

func getStatus(t *testing.T, base string) Status {
	t.Helper()
	resp, err := http.Get(base + PathStatus)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var st Status
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	return st
}

func TestSchemaMismatchRejected(t *testing.T) {
	_, srv := startCoordinator(t, CoordinatorOptions{})
	req := SweepRequest{SchemaVersion: schema.Version + 1, Grid: testGrid()}
	if _, err := Submit(context.Background(), srv.URL, req, nil); err == nil ||
		!strings.Contains(err.Error(), "schema_version") {
		t.Errorf("mismatched sweep schema accepted: %v", err)
	}
	body, _ := json.Marshal(RegisterRequest{SchemaVersion: schema.Version + 1})
	resp, err := http.Post(srv.URL+PathRegister, "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("mismatched register schema: status %d, want 400", resp.StatusCode)
	}
}

func TestUnknownWorkerGets404(t *testing.T) {
	_, srv := startCoordinator(t, CoordinatorOptions{})
	body, _ := json.Marshal(PollRequest{Worker: "w999"})
	resp, err := http.Post(srv.URL+PathPoll, "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("unknown worker poll: status %d, want 404", resp.StatusCode)
	}
}

func TestSubmitValidatesGrid(t *testing.T) {
	_, srv := startCoordinator(t, CoordinatorOptions{})
	bad := SweepRequest{SchemaVersion: schema.Version,
		Grid: Grid{Workloads: []string{"cg"}, Systems: []string{"tiger"}, Ranks: []int{2}, Schemes: []string{"default"}}}
	if _, err := Submit(context.Background(), srv.URL, bad, nil); err == nil ||
		!strings.Contains(err.Error(), "scale") {
		t.Errorf("scaleless sweep accepted: %v", err)
	}
	bad.Grid.Scale = "quick"
	bad.Grid.Schemes = []string{"bogus"}
	if _, err := Submit(context.Background(), srv.URL, bad, nil); err == nil {
		t.Error("bogus scheme accepted")
	}
}
