package sweepd

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"sync"
	"testing"
	"time"

	"multicore/internal/schema"
	"multicore/internal/store"
)

// Durability, admission control, and failure-domain tests: quotas,
// weighted-fair dequeue, domain quarantine, resume tokens, and the
// headline crash/restart guarantee.

// waitStatus polls /status until pred holds or the deadline passes.
func waitStatus(t *testing.T, base string, pred func(Status) bool) Status {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	var st Status
	for time.Now().Before(deadline) {
		st = getStatus(t, base)
		if pred(st) {
			return st
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("status never satisfied predicate; last = %+v", st)
	return st
}

func rankedGrid(workload string, ranks ...int) Grid {
	return Grid{Workloads: []string{workload}, Systems: []string{"tiger"},
		Ranks: ranks, Schemes: []string{"default"}, Scale: "quick"}
}

// TestQuotaRejectsOverInflightLimit: a client with its quota of cells in
// flight gets 429 + Retry-After on the next submission (surfaced as
// *QuotaError), while other clients are unaffected.
func TestQuotaRejectsOverInflightLimit(t *testing.T) {
	_, srv := startCoordinator(t, CoordinatorOptions{
		MaxInflightPerClient: 2, RetryAfter: 7 * time.Second,
	})
	// No workers: the first sweep's two cells stay in flight forever.
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	go Submit(ctx, srv.URL, SweepRequest{
		SchemaVersion: schema.Version, Grid: rankedGrid("stream", 1, 2), Client: "bulk",
	}, func(CellResult) {})
	waitStatus(t, srv.URL, func(s Status) bool { return s.Queued == 2 })

	// Same client, one more cell: over quota.
	_, err := Submit(context.Background(), srv.URL, SweepRequest{
		SchemaVersion: schema.Version, Grid: rankedGrid("stream", 4), Client: "bulk",
	}, func(CellResult) {})
	var qe *QuotaError
	if !errors.As(err, &qe) {
		t.Fatalf("over-quota submission err = %v, want *QuotaError", err)
	}
	if qe.RetryAfter != 7*time.Second {
		t.Errorf("QuotaError.RetryAfter = %s, want 7s (coordinator's hint)", qe.RetryAfter)
	}

	// A different client is admitted: its stream starts (HTTP 200).
	body, _ := json.Marshal(SweepRequest{
		SchemaVersion: schema.Version, Grid: rankedGrid("cg", 1), Client: "other",
	})
	resp, err := http.Post(srv.URL+PathSweep, "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("other client's submission status = %d, want 200", resp.StatusCode)
	}
}

// TestPriorityWeightedDequeue: with a low- and a high-priority sweep
// queued, the stride scheduler hands out high-priority cells roughly
// (priority+1):1 — here all four high cells land within the first five
// dequeues instead of FIFO-draining the earlier low sweep.
func TestPriorityWeightedDequeue(t *testing.T) {
	_, srv := startCoordinator(t, CoordinatorOptions{})
	submitAsync(t, srv.URL, SweepRequest{
		SchemaVersion: schema.Version, Grid: rankedGrid("cg", 1, 2, 3, 4), Client: "bulk", Priority: 0,
	})
	waitStatus(t, srv.URL, func(s Status) bool { return s.Queued == 4 })
	submitAsync(t, srv.URL, SweepRequest{
		SchemaVersion: schema.Version, Grid: rankedGrid("stream", 1, 2, 3, 4), Client: "urgent", Priority: 9,
	})
	waitStatus(t, srv.URL, func(s Status) bool { return s.Queued == 8 })

	w := registerWorker(t, srv.URL)
	var order []string
	for i := 0; i < 8; i++ {
		asg := pollUntil(t, srv.URL, w, 5*time.Second)
		if asg == nil {
			t.Fatalf("queue dried up after %d cells (order %v)", i, order)
		}
		order = append(order, asg.Cell.Workload)
		completeOK(t, srv.URL, w, asg, 1.0)
	}
	hi := 0
	for _, wl := range order[:4] {
		if wl == "stream" {
			hi++
		}
	}
	if hi < 3 {
		t.Errorf("high-priority cells in first 4 dequeues = %d, want >= 3 (order %v)", hi, order)
	}
}

// TestDomainQuarantineAndRecovery: repeated lease expiries quarantine the
// worker's whole failure domain (polls refused with a backoff hint,
// /status surfaces it), and a successful completion afterwards clears
// the domain's record.
func TestDomainQuarantineAndRecovery(t *testing.T) {
	_, srv := startCoordinator(t, CoordinatorOptions{
		Lease: 60 * time.Millisecond, MaxAttempts: 10,
		QuarantineAfter: 2, QuarantineBackoff: 300 * time.Millisecond,
	})
	submitAsync(t, srv.URL, SweepRequest{SchemaVersion: schema.Version, Grid: rankedGrid("stream", 1, 2)})
	waitStatus(t, srv.URL, func(s Status) bool { return s.Queued == 2 })

	resp := postAs[RegisterResponse](t, srv.URL+PathRegister,
		RegisterRequest{SchemaVersion: schema.Version, Name: "flaky", Domain: "rack9"})
	w := resp.Worker

	// Lease both cells and never heartbeat: two expiries = QuarantineAfter.
	if a := pollUntil(t, srv.URL, w, 5*time.Second); a == nil {
		t.Fatal("no first assignment")
	}
	if a := pollUntil(t, srv.URL, w, 5*time.Second); a == nil {
		t.Fatal("no second assignment")
	}

	// Polls are now turned away with a backoff hint.
	var retry int64
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		pr := postAs[PollResponse](t, srv.URL+PathPoll, PollRequest{Worker: w, WaitMillis: 10})
		if pr.RetryAfterMillis > 0 {
			retry = pr.RetryAfterMillis
			break
		}
		if pr.Assignment != nil {
			// Re-leased before quarantine tripped; let it expire again.
			continue
		}
	}
	if retry <= 0 {
		t.Fatal("domain never quarantined after repeated lease expiries")
	}
	st := waitStatus(t, srv.URL, func(s Status) bool { return len(s.Domains) > 0 })
	found := false
	for _, d := range st.Domains {
		if d.Domain == "rack9" {
			found = true
			if !d.Quarantined || d.Quarantines < 1 {
				t.Errorf("domain status = %+v, want quarantined with >= 1 quarantine", d)
			}
		}
	}
	if !found {
		t.Fatalf("/status domains = %+v, want rack9", st.Domains)
	}

	// After the backoff the domain serves again; a success clears it.
	time.Sleep(time.Duration(retry) * time.Millisecond)
	for i := 0; i < 2; i++ {
		asg := pollUntil(t, srv.URL, w, 10*time.Second)
		if asg == nil {
			t.Fatalf("no assignment after quarantine lifted (cell %d)", i)
		}
		completeOK(t, srv.URL, w, asg, 1.0)
	}
	st = getStatus(t, srv.URL)
	for _, d := range st.Domains {
		if d.Domain == "rack9" && d.Quarantined {
			t.Errorf("domain still quarantined after successful completions: %+v", d)
		}
	}
}

// readEvent decodes one NDJSON stream line.
func readEvent(t *testing.T, sc *bufio.Scanner) StreamEvent {
	t.Helper()
	if !sc.Scan() {
		t.Fatalf("stream ended early: %v", sc.Err())
	}
	var ev StreamEvent
	if err := json.Unmarshal(sc.Bytes(), &ev); err != nil {
		t.Fatalf("bad stream line %q: %v", sc.Bytes(), err)
	}
	return ev
}

// TestResumeTokenReplaysFinalizedCells: a client that drops its stream
// mid-sweep reattaches with the token from the "start" event and
// receives every cell finalized in its absence, then the done summary.
func TestResumeTokenReplaysFinalizedCells(t *testing.T) {
	_, srv := startCoordinator(t, CoordinatorOptions{})
	g := rankedGrid("stream", 1, 2)
	body, _ := json.Marshal(SweepRequest{SchemaVersion: schema.Version, Grid: g})
	resp, err := http.Post(srv.URL+PathSweep, "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	ev := readEvent(t, bufio.NewScanner(resp.Body))
	if ev.Type != "start" || ev.Token == "" {
		t.Fatalf("first event = %+v, want start with token", ev)
	}
	token := ev.Token
	resp.Body.Close() // client drops; the sweep is retained server-side

	// Finish both cells while no client is attached.
	w := registerWorker(t, srv.URL)
	for i := 0; i < 2; i++ {
		asg := pollUntil(t, srv.URL, w, 5*time.Second)
		if asg == nil {
			t.Fatalf("no assignment for cell %d", i)
		}
		completeOK(t, srv.URL, w, asg, float64(i+1))
	}
	waitStatus(t, srv.URL, func(s Status) bool { return s.Done == 2 })

	// Resume: replay of both finalized cells, then done.
	body, _ = json.Marshal(SweepRequest{Resume: token})
	resp2, err := http.Post(srv.URL+PathSweep, "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("resume status = %d, want 200", resp2.StatusCode)
	}
	sc := bufio.NewScanner(resp2.Body)
	if ev := readEvent(t, sc); ev.Type != "start" || ev.Token != token {
		t.Fatalf("resume start = %+v, want same token %s", ev, token)
	}
	cells := 0
	for {
		ev := readEvent(t, sc)
		if ev.Type == "cell" {
			cells++
			continue
		}
		if ev.Type == "done" {
			if ev.Summary == nil || ev.Summary.Cells != 2 {
				t.Errorf("done summary = %+v, want 2 cells", ev.Summary)
			}
			break
		}
		if ev.Type == "ping" {
			continue
		}
		t.Fatalf("unexpected resume event %+v", ev)
	}
	if cells != 2 {
		t.Errorf("resume replayed %d cells, want 2", cells)
	}
}

// TestUnknownResumeToken404: resuming a token the coordinator has never
// seen (or already dropped) is a 404, not a hang or a fresh sweep.
func TestUnknownResumeToken404(t *testing.T) {
	_, srv := startCoordinator(t, CoordinatorOptions{})
	body, _ := json.Marshal(SweepRequest{Resume: "snope"})
	resp, err := http.Post(srv.URL+PathSweep, "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("unknown resume token status = %d, want 404", resp.StatusCode)
	}
}

// TestCoordinatorCrashRestartResumesSweep is the headline durability
// guarantee end to end: SIGKILL the coordinator mid-sweep, restart it
// from the journal on the same address, and the in-flight client sweep
// completes byte-identical to serial with every cell simulated at most
// once.
func TestCoordinatorCrashRestartResumesSweep(t *testing.T) {
	g := e2eGrid()
	golden, goldenTable := serialGolden(t, g)
	stateDir := t.TempDir()
	storeDir := t.TempDir()
	coordOpts := CoordinatorOptions{
		Lease: time.Second, StateDir: stateDir, SyncEvery: 1,
		PingEvery: 100 * time.Millisecond,
	}
	sc, addr, err := startStressCoordinator("127.0.0.1:0", coordOpts)
	if err != nil {
		t.Fatal(err)
	}
	base := "http://" + addr

	// The worker dawdles before each cell so the sweep is guaranteed to
	// be mid-flight when the coordinator dies.
	firstCell := make(chan struct{}, 1)
	w, _ := startE2EWorker(t, base, storeDir, "a", func(Assignment) {
		select {
		case firstCell <- struct{}{}:
		default:
		}
		time.Sleep(250 * time.Millisecond)
	})

	var mu sync.Mutex
	results := map[string]CellResult{}
	sumc := make(chan *Summary, 1)
	errc := make(chan error, 1)
	go func() {
		sum, err := Submit(context.Background(), base, SweepRequest{
			SchemaVersion: schema.Version, Grid: g, Client: "crashtest",
		}, func(r CellResult) {
			mu.Lock()
			results[r.Cell.Key()] = r
			mu.Unlock()
		})
		sumc <- sum
		errc <- err
	}()

	<-firstCell // a cell is leased: the sweep is live
	sc.kill()   // simulated SIGKILL: journal unflushed, connections severed
	time.Sleep(150 * time.Millisecond)
	sc2, _, err := startStressCoordinator(addr, coordOpts)
	if err != nil {
		t.Fatalf("coordinator restart: %v", err)
	}
	defer sc2.close()

	sum := <-sumc
	if err := <-errc; err != nil {
		t.Fatalf("sweep across coordinator crash failed: %v", err)
	}
	if sum.Errors != 0 || sum.Divergent != 0 {
		t.Fatalf("summary = %+v, want clean completion across the crash", sum)
	}
	mu.Lock()
	got := Table(g, results).Text()
	mu.Unlock()
	if got != goldenTable {
		t.Errorf("post-crash table differs from serial:\n--- distributed\n%s--- serial\n%s", got, goldenTable)
	}
	mu.Lock()
	for k, want := range golden {
		if results[k].Fingerprint != want.Fingerprint {
			t.Errorf("cell %s fingerprint %s != serial %s", k, results[k].Fingerprint, want.Fingerprint)
		}
	}
	mu.Unlock()
	// Zero re-simulation: cells finalized before the crash were restored
	// from the journal, and cells completed during the outage re-lease
	// into store hits — either way the worker simulates each cell once.
	if run, _ := w.Stats(); run != len(g.Cells()) {
		t.Errorf("worker simulated %d cells across the crash, want %d", run, len(g.Cells()))
	}
	st, err := store.Open(storeDir)
	if err != nil {
		t.Fatal(err)
	}
	if n, err := st.Len(); err != nil || n != len(g.Cells()) {
		t.Errorf("store holds %d entries (err %v), want %d", n, err, len(g.Cells()))
	}
}
