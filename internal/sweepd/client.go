package sweepd

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"time"

	"multicore/internal/machine"
)

// attachSpecs fills req.Specs with the canonical schema-2 JSON of every
// custom machine the grid references by content-hash id, so the
// coordinator and its workers can resolve ids this client registered
// locally (e.g. from a systems=@FILE grid entry).
func attachSpecs(req *SweepRequest) {
	for _, sys := range req.Grid.Systems {
		raw, ok := machine.CustomSpecJSON(sys)
		if !ok {
			continue
		}
		if req.Specs == nil {
			req.Specs = map[string]json.RawMessage{}
		}
		req.Specs[sys] = raw
	}
}

// Submit posts a sweep to a coordinator and consumes the NDJSON result
// stream, invoking onCell for every completed cell as it arrives (so
// callers can render tables filling in live). Each received result's
// fingerprint is recomputed locally — a mismatch means the wire mangled
// a value (or a worker diverged) and fails the sweep rather than
// silently producing a wrong table. Connection refusals are retried
// briefly so clients can race a just-started coordinator.
func Submit(ctx context.Context, coordinator string, req SweepRequest, onCell func(CellResult)) (*Summary, error) {
	attachSpecs(&req)
	body, err := json.Marshal(req)
	if err != nil {
		return nil, fmt.Errorf("sweepd: encoding sweep request: %v", err)
	}
	client := &http.Client{} // no timeout: the stream lasts as long as the sweep
	var resp *http.Response
	for attempt := 0; ; attempt++ {
		hreq, err := http.NewRequestWithContext(ctx, http.MethodPost, coordinator+PathSweep, bytes.NewReader(body))
		if err != nil {
			return nil, err
		}
		hreq.Header.Set("Content-Type", "application/json")
		resp, err = client.Do(hreq)
		if err == nil {
			break
		}
		if ctx.Err() != nil || attempt >= 10 {
			return nil, fmt.Errorf("sweepd: submitting sweep to %s: %v", coordinator, err)
		}
		t := time.NewTimer(300 * time.Millisecond)
		select {
		case <-ctx.Done():
			t.Stop()
			return nil, ctx.Err()
		case <-t.C:
		}
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
		return nil, fmt.Errorf("sweepd: coordinator rejected sweep: %s", bytes.TrimSpace(msg))
	}

	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	for sc.Scan() {
		line := bytes.TrimSpace(sc.Bytes())
		if len(line) == 0 {
			continue
		}
		var ev StreamEvent
		if err := json.Unmarshal(line, &ev); err != nil {
			return nil, fmt.Errorf("sweepd: decoding stream event: %v", err)
		}
		switch ev.Type {
		case "cell":
			if ev.Cell == nil {
				return nil, fmt.Errorf("sweepd: cell event without a cell")
			}
			if got := Fingerprint(*ev.Cell); got != ev.Cell.Fingerprint {
				return nil, fmt.Errorf("sweepd: cell %s fingerprint mismatch: streamed %s, recomputed %s",
					ev.Cell.Cell.Key(), ev.Cell.Fingerprint, got)
			}
			if onCell != nil {
				onCell(*ev.Cell)
			}
		case "done":
			if ev.Summary == nil {
				return nil, fmt.Errorf("sweepd: done event without a summary")
			}
			return ev.Summary, nil
		case "error":
			return nil, fmt.Errorf("sweepd: coordinator error: %s", ev.Message)
		default:
			return nil, fmt.Errorf("sweepd: unknown stream event type %q", ev.Type)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("sweepd: reading result stream: %v", err)
	}
	return nil, fmt.Errorf("sweepd: result stream ended before the sweep completed")
}
