package sweepd

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"sync/atomic"
	"time"

	"multicore/internal/machine"
)

// attachSpecs fills req.Specs with the canonical schema-2 JSON of every
// custom machine the grid references by content-hash id, so the
// coordinator and its workers can resolve ids this client registered
// locally (e.g. from a systems=@FILE grid entry).
func attachSpecs(req *SweepRequest) {
	for _, sys := range req.Grid.Systems {
		raw, ok := machine.CustomSpecJSON(sys)
		if !ok {
			continue
		}
		if req.Specs == nil {
			req.Specs = map[string]json.RawMessage{}
		}
		req.Specs[sys] = raw
	}
}

// QuotaError is a coordinator 429: the client is over its in-flight
// cell quota. RetryAfter carries the coordinator's backoff hint.
type QuotaError struct {
	RetryAfter time.Duration
	Message    string
}

func (e *QuotaError) Error() string {
	return fmt.Sprintf("sweepd: %s (retry after %s)", e.Message, e.RetryAfter)
}

// maxStreamResumes bounds reconnection attempts after a stream stalls
// or drops mid-sweep; each attempt itself retries refused connections,
// so a coordinator restart of several seconds is spanned comfortably.
const maxStreamResumes = 8

// permanentError marks a failure that reconnecting cannot fix (a
// rejected request, a fingerprint mismatch, a coordinator-sent error).
type permanentError struct{ err error }

func (e *permanentError) Error() string { return e.err.Error() }

// errUnknownResume marks a resume token the coordinator no longer
// knows; the caller falls back to a fresh submission (completed cells
// replay from the shared store, so nothing re-simulates).
type unknownResumeError struct{ token string }

func (e *unknownResumeError) Error() string {
	return fmt.Sprintf("sweepd: coordinator does not know resume token %q", e.token)
}

// Submit posts a sweep to a coordinator and consumes the NDJSON result
// stream, invoking onCell for every completed cell as it arrives (so
// callers can render tables filling in live). Each received result's
// fingerprint is recomputed locally — a mismatch means the wire mangled
// a value (or a worker diverged) and fails the sweep rather than
// silently producing a wrong table.
//
// The stream is watched with a keepalive deadline derived from the
// coordinator's advertised ping interval: a coordinator that dies
// mid-sweep (or a wedged connection) surfaces as a reconnect with the
// sweep's resume token rather than blocking forever, and only after the
// reconnect budget is exhausted does Submit return a structured error.
// Cells replayed across a resume are deduplicated, so onCell sees each
// cell exactly once. A 429 (admission control) returns *QuotaError with
// the coordinator's Retry-After.
func Submit(ctx context.Context, coordinator string, req SweepRequest, onCell func(CellResult)) (*Summary, error) {
	attachSpecs(&req)
	client := &http.Client{} // no overall timeout: the stream lasts as long as the sweep
	seen := map[string]bool{}
	resume := ""
	var lastErr error
	for attempt := 0; attempt <= maxStreamResumes; attempt++ {
		if attempt > 0 {
			backoff := time.Duration(attempt) * 500 * time.Millisecond
			if backoff > 3*time.Second {
				backoff = 3 * time.Second
			}
			t := time.NewTimer(backoff)
			select {
			case <-ctx.Done():
				t.Stop()
				return nil, ctx.Err()
			case <-t.C:
			}
		}
		r := req
		r.Resume = resume
		sum, token, err := streamSweepOnce(ctx, client, coordinator, r, seen, onCell)
		if sum != nil {
			return sum, nil
		}
		if token != "" {
			resume = token
		}
		if err == nil {
			err = fmt.Errorf("sweepd: result stream ended before the sweep completed")
		}
		if pe, ok := err.(*permanentError); ok {
			return nil, pe.err
		}
		if ctx.Err() != nil {
			return nil, ctx.Err()
		}
		if _, ok := err.(*unknownResumeError); ok {
			// The coordinator lost the sweep (crash before the journal
			// synced, or retention expired). Start over: finished cells are
			// in the shared store, so workers replay rather than re-run.
			resume = ""
		}
		lastErr = err
	}
	return nil, fmt.Errorf("sweepd: lost coordinator stream after %d attempts: %v", maxStreamResumes+1, lastErr)
}

// streamSweepOnce performs one sweep connection: submit (or resume),
// then consume events until "done" or the stream breaks. It returns the
// summary on completion, the latest resume token either way, and the
// reason the stream ended otherwise. Results already in seen are not
// re-delivered to onCell.
func streamSweepOnce(ctx context.Context, client *http.Client, coordinator string, req SweepRequest, seen map[string]bool, onCell func(CellResult)) (*Summary, string, error) {
	body, err := json.Marshal(req)
	if err != nil {
		return nil, "", &permanentError{fmt.Errorf("sweepd: encoding sweep request: %v", err)}
	}
	var resp *http.Response
	// Connection refusals are retried briefly so clients can race a
	// just-started (or just-restarted) coordinator.
	for attempt := 0; ; attempt++ {
		hreq, err := http.NewRequestWithContext(ctx, http.MethodPost, coordinator+PathSweep, bytes.NewReader(body))
		if err != nil {
			return nil, "", &permanentError{err}
		}
		hreq.Header.Set("Content-Type", "application/json")
		resp, err = client.Do(hreq)
		if err == nil {
			break
		}
		if ctx.Err() != nil {
			return nil, "", ctx.Err()
		}
		if attempt >= 10 {
			return nil, "", fmt.Errorf("sweepd: submitting sweep to %s: %v", coordinator, err)
		}
		t := time.NewTimer(300 * time.Millisecond)
		select {
		case <-ctx.Done():
			t.Stop()
			return nil, "", ctx.Err()
		case <-t.C:
		}
	}
	defer resp.Body.Close()
	switch {
	case resp.StatusCode == http.StatusTooManyRequests:
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
		retry := 5 * time.Second
		if secs, err := strconv.Atoi(resp.Header.Get("Retry-After")); err == nil && secs > 0 {
			retry = time.Duration(secs) * time.Second
		}
		return nil, "", &permanentError{&QuotaError{RetryAfter: retry, Message: string(bytes.TrimSpace(msg))}}
	case resp.StatusCode == http.StatusNotFound && req.Resume != "":
		io.Copy(io.Discard, io.LimitReader(resp.Body, 4096))
		return nil, "", &unknownResumeError{token: req.Resume}
	case resp.StatusCode != http.StatusOK:
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
		return nil, "", &permanentError{fmt.Errorf("sweepd: coordinator rejected sweep: %s", bytes.TrimSpace(msg))}
	}

	// Keepalive watchdog: if no event (cells or pings) arrives within the
	// deadline, force-close the body so the scanner unblocks — a dead
	// coordinator must yield an error, not a hang. The deadline tracks
	// the coordinator's advertised ping interval from the start event.
	deadline := 30 * time.Second
	var stalled atomic.Bool
	watchdog := time.AfterFunc(deadline, func() {
		stalled.Store(true)
		resp.Body.Close()
	})
	defer watchdog.Stop()

	token := req.Resume
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	for sc.Scan() {
		watchdog.Reset(deadline)
		line := bytes.TrimSpace(sc.Bytes())
		if len(line) == 0 {
			continue
		}
		var ev StreamEvent
		if err := json.Unmarshal(line, &ev); err != nil {
			return nil, token, &permanentError{fmt.Errorf("sweepd: decoding stream event: %v", err)}
		}
		switch ev.Type {
		case "start":
			if ev.Token != "" {
				token = ev.Token
			}
			if ev.PingMillis > 0 {
				deadline = 4 * time.Duration(ev.PingMillis) * time.Millisecond
				if deadline < 2*time.Second {
					deadline = 2 * time.Second
				}
				watchdog.Reset(deadline)
			}
		case "ping":
			// keepalive only; the watchdog reset above is the point
		case "cell":
			if ev.Cell == nil {
				return nil, token, &permanentError{fmt.Errorf("sweepd: cell event without a cell")}
			}
			if got := Fingerprint(*ev.Cell); got != ev.Cell.Fingerprint {
				return nil, token, &permanentError{fmt.Errorf("sweepd: cell %s fingerprint mismatch: streamed %s, recomputed %s",
					ev.Cell.Cell.Key(), ev.Cell.Fingerprint, got)}
			}
			if key := ev.Cell.Cell.Key(); !seen[key] {
				seen[key] = true
				if onCell != nil {
					onCell(*ev.Cell)
				}
			}
		case "done":
			if ev.Summary == nil {
				return nil, token, &permanentError{fmt.Errorf("sweepd: done event without a summary")}
			}
			return ev.Summary, token, nil
		case "error":
			return nil, token, &permanentError{fmt.Errorf("sweepd: coordinator error: %s", ev.Message)}
		default:
			return nil, token, &permanentError{fmt.Errorf("sweepd: unknown stream event type %q", ev.Type)}
		}
	}
	if stalled.Load() {
		return nil, token, fmt.Errorf("sweepd: result stream stalled (no data or keepalive within %s)", deadline)
	}
	if err := sc.Err(); err != nil {
		// Distinguish transport breakage (retryable via resume) from
		// anything already classified above.
		if strings.Contains(err.Error(), "use of closed") {
			return nil, token, fmt.Errorf("sweepd: result stream closed mid-sweep")
		}
		return nil, token, fmt.Errorf("sweepd: reading result stream: %v", err)
	}
	return nil, token, fmt.Errorf("sweepd: result stream ended before the sweep completed")
}
