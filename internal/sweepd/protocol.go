package sweepd

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"strconv"
)

// Wire protocol between clients, the coordinator, and workers. Every
// request that opens a conversation (sweep submission, worker
// registration) carries schema.Version and is rejected on mismatch, so a
// stale binary fails loudly instead of exchanging artifacts it would
// misread.

// API paths served by Coordinator.Handler.
const (
	PathSweep     = "/api/v1/sweep"
	PathRegister  = "/api/v1/worker/register"
	PathPoll      = "/api/v1/worker/poll"
	PathComplete  = "/api/v1/worker/complete"
	PathHeartbeat = "/api/v1/worker/heartbeat"
	PathStatus    = "/api/v1/status"
	PathHealthz   = "/healthz"
)

// Cell result statuses, mirroring the store's entry statuses.
// StatusEstimated is the screening tier's addition: the cell was priced
// by the analytic model (internal/analytic) and not promoted to full
// simulation, so Seconds is an estimate carrying Uncertainty.
const (
	StatusOK         = "ok"
	StatusInfeasible = "infeasible"
	StatusError      = "error"
	StatusEstimated  = "estimated"
)

// SweepRequest is a client's sweep submission. With Screen set the
// coordinator prices every cell through the analytic screening tier
// in-process and leases only the promoted cells (scheme crossovers
// within PromoteMargin, or estimates whose uncertainty exceeds
// UncertaintyBound) to workers; the rest stream back as "estimated".
type SweepRequest struct {
	SchemaVersion int    `json:"schema_version"`
	Grid          Grid   `json:"grid"`
	Faults        string `json:"faults,omitempty"`
	FaultSeed     int64  `json:"fault_seed,omitempty"`
	Retries       int    `json:"retries,omitempty"`
	Screen        bool   `json:"screen,omitempty"`
	// Client identifies the submitter for admission control: the
	// coordinator's per-client in-flight cell quota sums over live sweeps
	// with the same Client string (empty is itself one shared identity).
	Client string `json:"client,omitempty"`
	// Priority (0..MaxPriority, clamped) weights this sweep's cells in
	// the coordinator's weighted-fair dequeue: weight priority+1.
	Priority int `json:"priority,omitempty"`
	// Resume re-attaches to a live sweep by the token carried in the
	// stream's "start" event instead of submitting a new one: the
	// coordinator replays every result finalized so far and streams the
	// rest. All other fields are ignored on resume. An unknown token
	// (coordinator lost the sweep) returns 404.
	Resume string `json:"resume,omitempty"`
	// PromoteMargin is the fractional closeness at which two schemes'
	// estimates count as a potential ranking flip (0 = use the default).
	PromoteMargin float64 `json:"promote_margin,omitempty"`
	// UncertaintyBound promotes any cell whose model uncertainty exceeds
	// it (0 = use the default).
	UncertaintyBound float64 `json:"uncertainty_bound,omitempty"`
	// Specs carries the canonical schema-2 JSON of every custom machine
	// the grid references by content-hash id, keyed by that id. The
	// coordinator registers them (verifying each id matches its content)
	// before validating the grid, and ships the spec to workers inside
	// the lease, so custom machines need no out-of-band distribution.
	Specs map[string]json.RawMessage `json:"specs,omitempty"`
}

// CellResult is one completed cell, streamed to clients and reported by
// workers. Seconds is the simulated makespan (StatusOK only). The
// Worker, Simulated, and Attempt fields are observability — they vary
// run to run and are excluded from the fingerprint.
type CellResult struct {
	Cell        CellSpec `json:"cell"`
	Status      string   `json:"status"`
	Seconds     float64  `json:"seconds,omitempty"`
	Error       string   `json:"error,omitempty"`
	Transient   bool     `json:"transient,omitempty"`
	Fingerprint string   `json:"fingerprint"`
	Worker      string   `json:"worker,omitempty"`
	Simulated   bool     `json:"simulated,omitempty"`
	Attempt     int      `json:"attempt,omitempty"`
	// Uncertainty is the analytic model's relative uncertainty band
	// (StatusEstimated only). Promoted marks a simulated cell that the
	// screening tier flagged for full simulation; it is observability,
	// excluded from the fingerprint so promoted results stay
	// byte-identical to unscreened runs of the same cell.
	Uncertainty float64 `json:"uncertainty,omitempty"`
	Promoted    bool    `json:"promoted,omitempty"`
}

// Fingerprint reduces a cell result to an exact signature over its
// deterministic fields: the cell identity, the status, the bit pattern
// of the makespan (hex float, so equal fingerprints mean equal bits, not
// equal roundings), and the error text. Any worker — and the serial
// golden path — must produce the same fingerprint for the same cell.
func Fingerprint(res CellResult) string {
	h := sha256.New()
	for _, f := range []string{
		res.Cell.Key(),
		res.Status,
		strconv.FormatFloat(res.Seconds, 'x', -1, 64),
		res.Error,
	} {
		h.Write([]byte(f))
		h.Write([]byte{0})
	}
	return hex.EncodeToString(h.Sum(nil))[:16]
}

// StreamEvent is one NDJSON line of a sweep response stream: first a
// "start" event carrying the sweep's resume token and ping interval,
// then "cell" events as results complete (any order — the client
// indexes by cell key), with "ping" keepalives while the stream idles,
// then exactly one "done" event with the sweep summary. An "error"
// event aborts the stream. A client that loses the connection (or stops
// seeing pings) re-submits with Resume set to the token and receives
// the full result replay plus the remainder live.
type StreamEvent struct {
	Type    string      `json:"type"`
	Cell    *CellResult `json:"cell,omitempty"`
	Summary *Summary    `json:"summary,omitempty"`
	Message string      `json:"message,omitempty"`
	// Token and PingMillis ride the "start" event.
	Token      string `json:"token,omitempty"`
	PingMillis int64  `json:"ping_millis,omitempty"`
}

// Summary totals one sweep's outcomes as streamed to one client.
// Simulated counts cells a worker actually ran for this sweep;
// StoreHits counts cells served from the shared store without
// simulating. Divergent counts fingerprint mismatches observed by the
// coordinator (duplicate completions that disagreed) — always zero
// unless determinism is broken.
type Summary struct {
	Cells      int `json:"cells"`
	Simulated  int `json:"simulated"`
	StoreHits  int `json:"store_hits"`
	Infeasible int `json:"infeasible"`
	Errors     int `json:"errors"`
	Divergent  int `json:"divergent"`
	// Screened counts cells the analytic tier settled without
	// simulation; Promoted counts cells it escalated to the simulator.
	Screened int `json:"screened,omitempty"`
	Promoted int `json:"promoted,omitempty"`
}

// RegisterRequest announces a worker to the coordinator. Domain labels
// the failure domain the worker shares fate with (host, rack, zone):
// repeated lease expiries across a domain's workers quarantine the
// whole domain with exponential backoff instead of re-leasing cells
// into it. Empty means the shared "default" domain.
type RegisterRequest struct {
	SchemaVersion int    `json:"schema_version"`
	Name          string `json:"name,omitempty"`
	Domain        string `json:"domain,omitempty"`
}

// RegisterResponse assigns the worker its ID and the lease duration it
// must heartbeat within.
type RegisterResponse struct {
	Worker      string `json:"worker"`
	LeaseMillis int64  `json:"lease_millis"`
}

// PollRequest asks for one cell lease, long-polling up to WaitMillis.
type PollRequest struct {
	Worker     string `json:"worker"`
	WaitMillis int64  `json:"wait_millis,omitempty"`
}

// Assignment is one leased cell: the spec plus the sweep-level fault
// plan and retry budget it must run under. ID is the coordinator's dedup
// key; completions and heartbeats name cells by it. Attempt counts
// lease assignments of this cell (1-based).
type Assignment struct {
	ID        string   `json:"id"`
	Cell      CellSpec `json:"cell"`
	Faults    string   `json:"faults,omitempty"`
	FaultSeed int64    `json:"fault_seed,omitempty"`
	Retries   int      `json:"retries,omitempty"`
	Attempt   int      `json:"attempt"`
	// Spec is the canonical schema-2 JSON of the cell's machine when
	// Cell.System is a custom content-hash id; the worker registers it
	// (verifying the id) before resolving the cell. Empty for registered
	// machine names.
	Spec json.RawMessage `json:"spec,omitempty"`
}

// PollResponse carries at most one assignment; nil means "no work yet,
// poll again". RetryAfterMillis, when set, means the worker's failure
// domain is quarantined: the worker must not poll again for that long.
type PollResponse struct {
	Assignment       *Assignment `json:"assignment,omitempty"`
	RetryAfterMillis int64       `json:"retry_after_millis,omitempty"`
}

// CompleteRequest reports a finished cell.
type CompleteRequest struct {
	Worker  string     `json:"worker"`
	ID      string     `json:"id"`
	Attempt int        `json:"attempt"`
	Result  CellResult `json:"result"`
}

// HeartbeatRequest renews the worker's leases on the named cells.
type HeartbeatRequest struct {
	Worker string   `json:"worker"`
	IDs    []string `json:"ids"`
}

// HeartbeatResponse lists cells the worker no longer holds (its lease
// expired and was re-assigned); the worker aborts those runs and never
// reports them.
type HeartbeatResponse struct {
	Lost []string `json:"lost,omitempty"`
}

// Status is the coordinator's observable state (GET /api/v1/status).
type Status struct {
	Workers   int `json:"workers"`
	Queued    int `json:"queued"`
	Leased    int `json:"leased"`
	Done      int `json:"done"`
	Divergent int `json:"divergent"`
	// Sweeps counts live (retained) sweeps; Domains reports per-domain
	// quarantine state, sorted by domain name.
	Sweeps  int            `json:"sweeps"`
	Domains []DomainStatus `json:"domains,omitempty"`
}

// DomainStatus is one failure domain's health as surfaced by /status.
type DomainStatus struct {
	Domain  string `json:"domain"`
	Workers int    `json:"workers"`
	// Quarantined means polls from this domain are being turned away;
	// RetryAfterMillis is how much of the backoff remains. Quarantines
	// counts how many times the domain has been quarantined in total.
	Quarantined      bool  `json:"quarantined,omitempty"`
	RetryAfterMillis int64 `json:"retry_after_millis,omitempty"`
	Quarantines      int   `json:"quarantines,omitempty"`
}

// dedupKey joins a cell's identity with the sweep-level parameters that
// change its result, so concurrent sweeps share an execution exactly
// when the simulations would be byte-identical.
func dedupKey(c CellSpec, faults string, seed int64, retries int) string {
	if faults == "" {
		return c.Key()
	}
	// The retry budget changes whether a transiently failing cell
	// eventually succeeds, so it joins the key — but only under a fault
	// plan, which is the only source of transient failures.
	return fmt.Sprintf("%s|faults=%s|seed=%d|retries=%d", c.Key(), faults, seed, retries)
}
