package sweepd

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"multicore/internal/experiments"
	"multicore/internal/fault"
	"multicore/internal/machine"
	"multicore/internal/schema"
	"multicore/internal/store"
)

// WorkerOptions configures one worker process.
type WorkerOptions struct {
	// Coordinator is the coordinator's base URL, e.g. "http://host:9141".
	Coordinator string
	// Store, when non-empty, is the shared result-store directory: cells
	// already on disk are served without simulating, and every completed
	// cell is persisted for other workers and later sweeps. The store's
	// rename-based writes give per-entry atomicity, so workers share the
	// directory without the whole-sweep flock mcbench takes.
	Store string
	// Name labels the worker in coordinator logs.
	Name string
	// Domain is the failure domain this worker shares fate with (host,
	// rack, zone). The coordinator quarantines a domain whose workers
	// repeatedly let leases expire. Empty joins the "default" domain.
	Domain string
	// Parallelism is how many cells this worker runs concurrently;
	// < 1 means 1.
	Parallelism int
	// SettleWorkers opts cells into component-mode parallel settling
	// (see experiments.Options.SettleWorkers).
	SettleWorkers int
	// Client is the HTTP client; nil uses a default with a timeout above
	// the coordinator's poll window.
	Client *http.Client
	// Logf receives worker events; nil discards them.
	Logf func(format string, args ...any)

	// beforeCell, when non-nil, runs before each assignment executes;
	// tests use it to stall a worker so its lease expires mid-cell.
	beforeCell func(Assignment)
}

// Worker pulls cell leases from a coordinator, executes them through
// experiments.Runner (store cache, fault injection, transient retries
// included), and reports results. Safe for one Run call at a time.
type Worker struct {
	opts   WorkerOptions
	client *http.Client
	logf   func(string, ...any)

	id          string
	leaseMillis int64
	st          *store.Store

	mu       sync.Mutex
	inflight map[string]context.CancelFunc // leased cell id -> abort

	cellsRun  atomic.Int64
	storeHits atomic.Int64
}

// NewWorker builds a worker; Run does the network work.
func NewWorker(opts WorkerOptions) (*Worker, error) {
	if opts.Coordinator == "" {
		return nil, fmt.Errorf("sweepd: worker needs a coordinator URL")
	}
	if opts.Parallelism < 1 {
		opts.Parallelism = 1
	}
	w := &Worker{
		opts:     opts,
		client:   opts.Client,
		logf:     opts.Logf,
		inflight: map[string]context.CancelFunc{},
	}
	if w.client == nil {
		w.client = &http.Client{Timeout: 60 * time.Second}
	}
	if w.logf == nil {
		w.logf = func(string, ...any) {}
	}
	if opts.Store != "" {
		st, err := store.Open(opts.Store)
		if err != nil {
			return nil, err
		}
		w.st = st
	}
	return w, nil
}

// Stats reports how many cells this worker simulated and how many it
// served from the shared store.
func (w *Worker) Stats() (cellsRun, storeHits int) {
	return int(w.cellsRun.Load()), int(w.storeHits.Load())
}

func (w *Worker) post(ctx context.Context, path string, req, resp any) error {
	body, err := json.Marshal(req)
	if err != nil {
		return fmt.Errorf("sweepd: encoding %s request: %v", path, err)
	}
	hreq, err := http.NewRequestWithContext(ctx, http.MethodPost, w.opts.Coordinator+path, bytes.NewReader(body))
	if err != nil {
		return err
	}
	hreq.Header.Set("Content-Type", "application/json")
	hresp, err := w.client.Do(hreq)
	if err != nil {
		return err
	}
	defer hresp.Body.Close()
	if hresp.StatusCode != http.StatusOK {
		msg, _ := io.ReadAll(io.LimitReader(hresp.Body, 1024))
		return &httpError{code: hresp.StatusCode, msg: fmt.Sprintf("sweepd: %s: %s", path, bytes.TrimSpace(msg))}
	}
	if resp == nil {
		return nil
	}
	return json.NewDecoder(hresp.Body).Decode(resp)
}

type httpError struct {
	code int
	msg  string
}

func (e *httpError) Error() string { return e.msg }

// register announces the worker, retrying until the coordinator is
// reachable or ctx ends — worker processes may start before the
// coordinator.
func (w *Worker) register(ctx context.Context) error {
	backoff := 200 * time.Millisecond
	for {
		var resp RegisterResponse
		err := w.post(ctx, PathRegister, RegisterRequest{SchemaVersion: schema.Version, Name: w.opts.Name, Domain: w.opts.Domain}, &resp)
		if err == nil {
			w.id = resp.Worker
			w.leaseMillis = resp.LeaseMillis
			w.logf("registered as %s (lease %dms)", w.id, w.leaseMillis)
			return nil
		}
		if httpCode(err) == http.StatusBadRequest {
			return err // schema mismatch: retrying cannot help
		}
		w.logf("register failed (%v); retrying", err)
		t := time.NewTimer(backoff)
		select {
		case <-ctx.Done():
			t.Stop()
			return ctx.Err()
		case <-t.C:
		}
		if backoff < 2*time.Second {
			backoff *= 2
		}
	}
}

// httpCode extracts the status code of a coordinator error response;
// 0 means a transport-level failure.
func httpCode(err error) int {
	if e, ok := err.(*httpError); ok {
		return e.code
	}
	return 0
}

// Run registers and serves cell leases until ctx is canceled. Cells run
// on Parallelism concurrent slots; a heartbeat goroutine renews every
// in-flight lease and aborts runs whose lease the coordinator took away.
func (w *Worker) Run(ctx context.Context) error {
	if err := w.register(ctx); err != nil {
		return err
	}
	hbCtx, stopHB := context.WithCancel(ctx)
	defer stopHB()
	go w.heartbeatLoop(hbCtx)

	var wg sync.WaitGroup
	for i := 0; i < w.opts.Parallelism; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			w.slotLoop(ctx)
		}()
	}
	wg.Wait()
	return ctx.Err()
}

// slotLoop is one poll→run→complete loop.
func (w *Worker) slotLoop(ctx context.Context) {
	for ctx.Err() == nil {
		var resp PollResponse
		err := w.post(ctx, PathPoll, PollRequest{Worker: w.id, WaitMillis: 5000}, &resp)
		if err != nil {
			if ctx.Err() != nil {
				return
			}
			if httpCode(err) == http.StatusNotFound {
				// Coordinator restarted and forgot us; re-register.
				if rerr := w.register(ctx); rerr != nil {
					return
				}
				continue
			}
			w.logf("poll failed: %v", err)
			select {
			case <-ctx.Done():
				return
			case <-time.After(500 * time.Millisecond):
			}
			continue
		}
		if resp.RetryAfterMillis > 0 {
			// Our failure domain is quarantined: back off instead of
			// hammering the coordinator with polls it will refuse.
			w.logf("domain quarantined; backing off %dms", resp.RetryAfterMillis)
			t := time.NewTimer(time.Duration(resp.RetryAfterMillis) * time.Millisecond)
			select {
			case <-ctx.Done():
				t.Stop()
				return
			case <-t.C:
			}
			continue
		}
		if resp.Assignment == nil {
			continue
		}
		w.runAssignment(ctx, *resp.Assignment)
	}
}

// runAssignment executes one leased cell and reports it. A run aborted
// by cancellation (worker shutdown or a lost lease) is never reported:
// cancellation describes this worker stopping, not the cell, and the
// coordinator will re-lease the cell elsewhere.
func (w *Worker) runAssignment(ctx context.Context, asg Assignment) {
	cellCtx, cancel := context.WithCancel(ctx)
	w.mu.Lock()
	w.inflight[asg.ID] = cancel
	w.mu.Unlock()
	defer func() {
		w.mu.Lock()
		delete(w.inflight, asg.ID)
		w.mu.Unlock()
		cancel()
	}()

	if w.opts.beforeCell != nil {
		w.opts.beforeCell(asg)
	}
	res, canceled := w.executeCell(cellCtx, asg)
	if canceled {
		w.logf("cell %s attempt %d aborted (%s)", asg.ID, asg.Attempt, cellCtx.Err())
		return
	}
	res.Worker = w.id
	if err := w.post(ctx, PathComplete, CompleteRequest{
		Worker: w.id, ID: asg.ID, Attempt: asg.Attempt, Result: res,
	}, nil); err != nil && ctx.Err() == nil {
		w.logf("reporting cell %s failed: %v", asg.ID, err)
	}
}

// executeCell wraps experiments.Runner around one cell. Each assignment
// gets a fresh runner — cross-attempt and cross-worker dedup belongs to
// the shared store, and a re-leased cell must actually re-run rather
// than hit a memoized in-process failure. Resume is set so stored error
// entries re-run when the coordinator explicitly re-leases a cell.
func (w *Worker) executeCell(ctx context.Context, asg Assignment) (CellResult, bool) {
	if len(asg.Spec) > 0 {
		// A custom machine travels with the lease; registering it makes
		// the cell's System id resolvable. The id must match the shipped
		// content — a mismatch means the assignment is corrupt, and
		// simulating under the wrong machine would poison the store.
		id, _, err := machine.RegisterSpecJSON(asg.Spec)
		if err != nil {
			return resultFor(asg.Cell, 0, fmt.Errorf("sweepd: leased spec for %s: %w", asg.Cell.System, err)), false
		}
		if id != asg.Cell.System {
			return resultFor(asg.Cell, 0, fmt.Errorf(
				"sweepd: leased spec hashes to %s, cell wants system %s", id, asg.Cell.System)), false
		}
	}
	spec, scheme, scale, err := resolveCell(asg.Cell)
	if err != nil {
		return resultFor(asg.Cell, 0, err), false
	}
	opts := experiments.Options{
		Parallelism:   1,
		Resume:        true,
		Retries:       asg.Retries,
		RetryBackoff:  50 * time.Millisecond,
		SettleWorkers: w.opts.SettleWorkers,
		Store:         nil,
	}
	if w.st != nil {
		opts.Store = w.st
	}
	if asg.Faults != "" {
		plan, perr := fault.Parse(asg.Faults, asg.FaultSeed)
		if perr != nil {
			return resultFor(asg.Cell, 0, perr), false
		}
		opts.Faults = plan
	}
	r := experiments.NewRunner(ctx, opts)
	secs, err := r.RunWorkloadCell(spec, asg.Cell.System, asg.Cell.Ranks, scheme, scale)
	if err != nil && isCanceled(err) {
		return CellResult{}, true
	}
	w.cellsRun.Add(int64(r.CellsRun()))
	w.storeHits.Add(int64(r.StoreHits()))
	res := resultFor(asg.Cell, secs, err)
	res.Simulated = r.CellsRun() > 0
	return res, false
}

// heartbeatLoop renews every in-flight lease at a third of the lease
// interval and aborts cells the coordinator re-assigned away.
func (w *Worker) heartbeatLoop(ctx context.Context) {
	interval := time.Duration(w.leaseMillis) * time.Millisecond / 3
	if interval < 10*time.Millisecond {
		interval = 10 * time.Millisecond
	}
	t := time.NewTicker(interval)
	defer t.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-t.C:
		}
		w.mu.Lock()
		ids := make([]string, 0, len(w.inflight))
		for id := range w.inflight {
			ids = append(ids, id)
		}
		w.mu.Unlock()
		if len(ids) == 0 {
			continue
		}
		var resp HeartbeatResponse
		if err := w.post(ctx, PathHeartbeat, HeartbeatRequest{Worker: w.id, IDs: ids}, &resp); err != nil {
			if ctx.Err() == nil {
				w.logf("heartbeat failed: %v", err)
			}
			continue
		}
		if len(resp.Lost) == 0 {
			continue
		}
		w.mu.Lock()
		for _, id := range resp.Lost {
			if cancel, ok := w.inflight[id]; ok {
				w.logf("lease lost for cell %s; aborting", id)
				cancel()
			}
		}
		w.mu.Unlock()
	}
}
