package sweepd

import (
	"context"
	"testing"
	"time"

	"multicore/internal/analytic"
	"multicore/internal/experiments"
	"multicore/internal/schema"
)

func screenGrid() Grid {
	return Grid{
		Workloads: []string{"stream", "cg", "ra"},
		Systems:   []string{"tiger", "longs"},
		Ranks:     []int{1, 2, 4},
		Schemes:   []string{"default", "localalloc", "membind", "interleave"},
		Scale:     "quick",
	}
}

// TestScreenGridPartition: every cell gets exactly one verdict — a
// promotion with a reason, or a settled result with a fingerprint — and
// the decisions come back in grid order.
func TestScreenGridPartition(t *testing.T) {
	g := screenGrid()
	decisions := ScreenGrid(analytic.New(), g, ScreenOptions{})
	cells := g.Cells()
	if len(decisions) != len(cells) {
		t.Fatalf("%d decisions for %d cells", len(decisions), len(cells))
	}
	for i, d := range decisions {
		if d.Cell != cells[i] {
			t.Fatalf("decision %d is %+v, want grid-order cell %+v", i, d.Cell, cells[i])
		}
		if d.Promote {
			if d.Reason == "" {
				t.Errorf("promoted cell %s has no reason", d.Cell.Key())
			}
			if d.Result.Status != "" {
				t.Errorf("promoted cell %s also settled as %q", d.Cell.Key(), d.Result.Status)
			}
			continue
		}
		if d.Result.Status == "" {
			t.Errorf("unpromoted cell %s has no result", d.Cell.Key())
			continue
		}
		if d.Result.Fingerprint == "" {
			t.Errorf("settled cell %s has no fingerprint", d.Cell.Key())
		}
		if d.Result.Status == StatusEstimated && !(d.Result.Seconds > 0) {
			t.Errorf("estimated cell %s has non-positive seconds %v", d.Cell.Key(), d.Result.Seconds)
		}
	}
}

// TestScreenGridDeterministic: screening is pure math — two estimators
// screening the same grid produce byte-equal decisions, fingerprints
// included.
func TestScreenGridDeterministic(t *testing.T) {
	g := screenGrid()
	a := ScreenGrid(analytic.New(), g, ScreenOptions{})
	b := ScreenGrid(analytic.New(), g, ScreenOptions{})
	for i := range a {
		if a[i].Promote != b[i].Promote || a[i].Reason != b[i].Reason ||
			a[i].Result.Fingerprint != b[i].Result.Fingerprint {
			t.Fatalf("screening diverged at %s: %+v vs %+v", a[i].Cell.Key(), a[i], b[i])
		}
	}
}

// TestScreenPromotionMargin: with an absurdly wide margin every
// estimable row pair promotes; with a zero-ish margin only genuinely
// tied estimates do. The unknown-family path always promotes.
func TestScreenPromotionMargin(t *testing.T) {
	g := screenGrid()
	wide := ScreenGrid(analytic.New(), g, ScreenOptions{PromoteMargin: 1e9})
	var widePromoted, wideEstimable int
	for _, d := range wide {
		if d.HasEst {
			wideEstimable++
			if d.Promote {
				widePromoted++
			}
		}
	}
	if widePromoted != wideEstimable {
		t.Errorf("margin=1e9 promoted %d of %d estimable cells; rows with >=2 schemes must all promote",
			widePromoted, wideEstimable)
	}

	narrow := ScreenGrid(analytic.New(), g, ScreenOptions{PromoteMargin: 1e-12})
	var narrowPromoted int
	for _, d := range narrow {
		if d.HasEst && d.Promote && d.Reason == ReasonCrossover {
			narrowPromoted++
		}
	}
	if narrowPromoted >= widePromoted {
		t.Errorf("margin=1e-12 promoted %d crossover cells, not fewer than the wide margin's %d",
			narrowPromoted, widePromoted)
	}

	// A single-scheme row has no crossover to detect: a known family
	// settles as an estimate, while a family the model has no profile
	// for must promote — only the simulator can price it.
	gk := Grid{Workloads: []string{"stream"}, Systems: []string{"tiger"},
		Ranks: []int{1}, Schemes: []string{"default"}, Scale: "quick"}
	dk := ScreenGrid(analytic.New(), gk, ScreenOptions{})
	if len(dk) != 1 || dk[0].Promote || dk[0].Result.Status != StatusEstimated {
		t.Fatalf("known family screened as %+v; want settled estimate", dk[0])
	}
	gu := gk
	gu.Workloads = []string{"nosuchfamily"}
	du := ScreenGrid(analytic.New(), gu, ScreenOptions{})
	if len(du) != 1 || !du[0].Promote || du[0].Reason != ReasonUnestimable {
		t.Fatalf("unprofiled family screened as %+v; want promotion (%s)", du[0], ReasonUnestimable)
	}
}

// TestRunScreenedByteStable: the two-tier executor's promoted cells run
// through the same path as a direct sweep, so (a) every result is
// identical across worker counts, and (b) promoted cells' fingerprints
// are byte-identical to an unscreened run's.
func TestRunScreenedByteStable(t *testing.T) {
	g := screenGrid()
	opts := ScreenOptions{}

	newRunner := func() *experiments.Runner {
		return experiments.NewRunner(context.Background(), experiments.Options{Parallelism: 2})
	}
	res1, dec1 := RunScreened(newRunner(), analytic.New(), g, opts, 1)
	res4, dec4 := RunScreened(newRunner(), analytic.New(), g, opts, 4)
	if len(dec1) != len(dec4) || len(res1) != len(res4) {
		t.Fatalf("worker counts changed the result shape: %d/%d vs %d/%d",
			len(dec1), len(res1), len(dec4), len(res4))
	}
	for k, a := range res1 {
		b, ok := res4[k]
		if !ok {
			t.Fatalf("cell %s missing at workers=4", k)
		}
		if a.Fingerprint != b.Fingerprint || a.Status != b.Status {
			t.Errorf("cell %s differs across worker counts: %+v vs %+v", k, a, b)
		}
	}

	// Promoted cells vs the direct (unscreened) golden run.
	golden := RunLocal(newRunner(), g, 1)
	var promoted int
	for _, d := range dec1 {
		if !d.Promote {
			continue
		}
		promoted++
		k := d.Cell.Key()
		got, want := res1[k], golden[k]
		if got.Fingerprint != want.Fingerprint {
			t.Errorf("promoted cell %s fingerprint %s != direct run %s", k, got.Fingerprint, want.Fingerprint)
		}
		if !got.Promoted {
			t.Errorf("promoted cell %s not marked Promoted in results", k)
		}
	}
	if promoted == 0 {
		t.Error("screening promoted nothing; the crossover rule is inert")
	}
	if promoted == len(dec1) {
		t.Error("screening promoted everything; the estimate tier is inert")
	}

	sum := ScreenSummary(dec1, res1)
	if sum.Cells != len(dec1) || sum.Promoted != promoted || sum.Screened != len(dec1)-promoted {
		t.Errorf("summary %+v inconsistent with %d decisions / %d promoted", sum, len(dec1), promoted)
	}
}

// TestScreenThroughput is the perf acceptance gate: screening must
// sustain at least 1e5 cells/sec single-threaded on a >=100k-cell grid
// (the scale the two-tier executor exists for). The real rate is well
// above 1e6/sec, so the bound holds even on loaded CI machines.
func TestScreenThroughput(t *testing.T) {
	if testing.Short() {
		t.Skip("throughput measurement; skipped with -short")
	}
	ranks := make([]int, 650)
	for i := range ranks {
		ranks[i] = i + 1
	}
	g := Grid{
		Workloads: []string{"stream", "daxpy", "dgemm", "fft", "ra", "ptrans", "hpl", "cg", "ft", "ep", "mg", "lmbench", "pop"},
		Systems:   []string{"tiger", "dmz", "longs"},
		Ranks:     ranks,
		Schemes:   []string{"default", "localalloc", "membind", "interleave"},
		Scale:     "quick",
	}
	cells := len(g.Workloads) * len(g.Systems) * len(g.Ranks) * len(g.Schemes)
	if cells < 100_000 {
		t.Fatalf("grid has %d cells, want >= 100k", cells)
	}
	e := analytic.New()
	start := time.Now()
	decisions := ScreenGrid(e, g, ScreenOptions{})
	elapsed := time.Since(start)
	rate := float64(len(decisions)) / elapsed.Seconds()
	t.Logf("screened %d cells in %v (%.0f cells/sec)", len(decisions), elapsed, rate)
	if rate < 1e5 {
		t.Errorf("screening rate %.0f cells/sec below the 1e5 acceptance floor", rate)
	}
}

// TestCoordinatorScreenedSweep: a screened remote sweep settles most
// cells in-process, leases only the promoted sliver, and the promoted
// results are byte-identical to the serial golden path.
func TestCoordinatorScreenedSweep(t *testing.T) {
	g := screenGrid()
	golden, _ := serialGolden(t, g)

	_, srv := startCoordinator(t, CoordinatorOptions{})
	storeDir := t.TempDir()
	w1, _ := startE2EWorker(t, srv.URL, storeDir, "a", nil)

	req := SweepRequest{SchemaVersion: schema.Version, Grid: g, Screen: true}
	results := map[string]CellResult{}
	sum, err := Submit(context.Background(), srv.URL, req, func(r CellResult) {
		results[r.Cell.Key()] = r
	})
	if err != nil {
		t.Fatal(err)
	}
	if sum == nil {
		t.Fatal("no summary")
	}
	if sum.Cells != len(g.Cells()) {
		t.Fatalf("summary cells = %d, want %d", sum.Cells, len(g.Cells()))
	}
	if sum.Screened == 0 || sum.Promoted == 0 {
		t.Fatalf("summary %+v: want both screened and promoted cells", sum)
	}
	if sum.Screened+sum.Promoted != sum.Cells {
		t.Fatalf("summary %+v: screened+promoted != cells", sum)
	}
	if sum.Simulated != sum.Promoted {
		t.Errorf("worker simulated %d cells, want exactly the %d promoted", sum.Simulated, sum.Promoted)
	}
	run, _ := w1.Stats()
	if run != sum.Promoted {
		t.Errorf("worker ran %d cells, want %d", run, sum.Promoted)
	}
	for k, res := range results {
		switch res.Status {
		case StatusEstimated:
			if res.Promoted {
				t.Errorf("cell %s both estimated and promoted", k)
			}
		case StatusOK, StatusInfeasible, StatusError:
			if res.Status == StatusOK && !res.Promoted {
				t.Errorf("simulated cell %s not marked promoted in a screened sweep", k)
			}
			if res.Status == StatusOK {
				if want := golden[k]; res.Fingerprint != want.Fingerprint {
					t.Errorf("promoted cell %s fingerprint %s != serial %s", k, res.Fingerprint, want.Fingerprint)
				}
			}
		default:
			t.Errorf("cell %s has unexpected status %q", k, res.Status)
		}
	}
}
