package sweepd

import (
	"errors"
	"fmt"
	"sort"

	"multicore/internal/affinity"
	"multicore/internal/analytic"
	"multicore/internal/experiments"
	"multicore/internal/workload"
)

// This file is the two-tier executor: tier A prices every cell of a grid
// through the analytic roofline model (internal/analytic) in
// microseconds, tier B promotes to full simulation only the cells where
// the model cannot settle the paper's question — which placement scheme
// wins — on its own. The promotion rule is per table row (workload,
// system, ranks): two schemes whose estimates are within PromoteMargin
// of each other could flip rank order inside the model's error band, so
// both simulate; a cell whose model uncertainty exceeds
// UncertaintyBound simulates; a cell the model cannot price at all
// (no analytic profile for the family) simulates. Everything else is
// reported as an estimate, so a million-cell grid costs seconds of
// screening plus simulation of the contested sliver.

// Default promotion thresholds. The margin matches the calibrated
// model's typical per-class residual (see analytic.Calibrate): scheme
// gaps wider than ~10% are outside the model's observed error, gaps
// inside it are genuinely ambiguous.
const (
	DefaultPromoteMargin    = 0.10
	DefaultUncertaintyBound = 0.50
)

// ScreenOptions tunes the promotion rule; zero fields take the
// defaults.
type ScreenOptions struct {
	PromoteMargin    float64
	UncertaintyBound float64
}

func (o ScreenOptions) withDefaults() ScreenOptions {
	if o.PromoteMargin <= 0 {
		o.PromoteMargin = DefaultPromoteMargin
	}
	if o.UncertaintyBound <= 0 {
		o.UncertaintyBound = DefaultUncertaintyBound
	}
	return o
}

// Promotion reasons recorded on ScreenDecision.Reason.
const (
	ReasonCrossover   = "crossover"   // within margin of another scheme: possible ranking flip
	ReasonUncertainty = "uncertainty" // model uncertainty above the bound
	ReasonUnestimable = "unestimable" // no analytic profile; only the simulator can price it
)

// ScreenDecision is the screening tier's verdict on one cell, in grid
// order. Exactly one of two shapes: Promote is set (the cell needs full
// simulation; Reason says why, Est is the estimate when one exists), or
// Result holds the settled outcome (an estimated, infeasible, or
// deterministic-error cell).
type ScreenDecision struct {
	Cell    CellSpec
	Est     analytic.Estimate
	HasEst  bool
	Promote bool
	Reason  string
	Result  CellResult
}

// ScreenGrid prices every cell of the grid analytically and applies the
// promotion rule. Pure in-process float math on cached layout and
// profile aggregates: no simulation, no I/O, and deterministic — equal
// grids yield byte-equal decisions regardless of who screens them.
func ScreenGrid(e *analytic.Estimator, g Grid, opts ScreenOptions) []ScreenDecision {
	opts = opts.withDefaults()

	// Resolve the grid dimensions once; per-cell work must stay cheap
	// enough to screen ~10^5 cells a second.
	type wl struct {
		spec workload.Spec
		err  error
	}
	wls := make([]wl, len(g.Workloads))
	for i, w := range g.Workloads {
		spec, err := workload.ParseSpec(w)
		if err == nil {
			spec.Class, spec.Steps, spec.N = g.Class, g.Steps, g.N
		}
		wls[i] = wl{spec: spec, err: err}
	}
	schemes := make([]affinity.Scheme, len(g.Schemes))
	schemeErr := make([]error, len(g.Schemes))
	for i, s := range g.Schemes {
		schemes[i], schemeErr[i] = affinity.ParseScheme(s)
	}

	decisions := make([]ScreenDecision, 0, len(g.Workloads)*len(g.Systems)*len(g.Ranks)*len(g.Schemes))
	for wi := range g.Workloads {
		for _, sys := range g.Systems {
			for _, r := range g.Ranks {
				rowStart := len(decisions)
				for si := range g.Schemes {
					c := CellSpec{
						Workload: g.Workloads[wi], Class: g.Class, Steps: g.Steps, N: g.N,
						System: sys, Ranks: r, Scheme: g.Schemes[si], Scale: g.Scale,
					}
					decisions = append(decisions, screenCell(e, c, wls[wi].spec, wls[wi].err, schemes[si], schemeErr[si], opts))
				}
				promoteCrossovers(decisions[rowStart:], opts.PromoteMargin)
			}
		}
	}

	// Settle every cell that survived screening as an estimate result.
	for i := range decisions {
		d := &decisions[i]
		if d.Promote || d.Result.Status != "" {
			continue
		}
		d.Result = CellResult{
			Cell:        d.Cell,
			Status:      StatusEstimated,
			Seconds:     d.Est.Seconds,
			Uncertainty: d.Est.Uncertainty,
		}
		d.Result.Fingerprint = Fingerprint(d.Result)
	}
	return decisions
}

// screenCell prices one cell. Deterministic spec errors and infeasible
// placements settle exactly like the simulator path (same resultFor
// text, same fingerprint); model errors promote.
func screenCell(e *analytic.Estimator, c CellSpec, spec workload.Spec, specErr error,
	scheme affinity.Scheme, schemeErr error, opts ScreenOptions) ScreenDecision {
	d := ScreenDecision{Cell: c}
	if specErr != nil {
		d.Result = resultFor(c, 0, specErr)
		return d
	}
	if schemeErr != nil {
		d.Result = resultFor(c, 0, schemeErr)
		return d
	}
	est, err := e.Cell(spec, c.System, c.Ranks, scheme)
	var inf *affinity.ErrInfeasible
	switch {
	case errors.As(err, &inf):
		d.Result = resultFor(c, 0, err)
	case err != nil:
		d.Promote = true
		d.Reason = ReasonUnestimable
	default:
		d.Est, d.HasEst = est, true
		if est.Uncertainty > opts.UncertaintyBound {
			d.Promote = true
			d.Reason = ReasonUncertainty
		}
	}
	return d
}

// promoteCrossovers applies the ranking-flip rule to one table row:
// sort the estimable cells by estimate; any adjacent pair within the
// margin could swap order inside the model's error band, so both
// promote. Chains promote whole groups (a,b within margin and b,c
// within margin promotes all three) — exactly the set whose relative
// order the estimates cannot settle.
func promoteCrossovers(row []ScreenDecision, margin float64) {
	idx := make([]int, 0, len(row))
	for i := range row {
		if row[i].HasEst {
			idx = append(idx, i)
		}
	}
	if len(idx) < 2 {
		return
	}
	sort.Slice(idx, func(a, b int) bool {
		ea, eb := row[idx[a]].Est.Seconds, row[idx[b]].Est.Seconds
		if ea != eb {
			return ea < eb
		}
		return idx[a] < idx[b] // stable for byte-equal estimates
	})
	for k := 0; k+1 < len(idx); k++ {
		a, b := &row[idx[k]], &row[idx[k+1]]
		if b.Est.Seconds <= a.Est.Seconds*(1+margin) {
			for _, d := range []*ScreenDecision{a, b} {
				if !d.Promote {
					d.Promote = true
					d.Reason = ReasonCrossover
				}
			}
		}
	}
}

// RunScreened executes a grid through the two-tier executor on one
// in-process runner: screen everything, simulate only the promoted
// cells (on up to workers goroutines), and merge. Promoted cells run
// through the exact same executor path as an unscreened sweep, so their
// results — store entries, seconds, fingerprints — are byte-identical
// to a direct run's.
func RunScreened(r *experiments.Runner, e *analytic.Estimator, g Grid, opts ScreenOptions, workers int) (map[string]CellResult, []ScreenDecision) {
	decisions := ScreenGrid(e, g, opts)
	results := make(map[string]CellResult, len(decisions))
	var promoted []CellSpec
	for _, d := range decisions {
		if d.Promote {
			promoted = append(promoted, d.Cell)
		} else {
			results[d.Cell.Key()] = d.Result
		}
	}
	for k, res := range runCells(r, promoted, workers) {
		res.Promoted = true
		results[k] = res
	}
	return results, decisions
}

// ScreenSummary folds a screened sweep's decisions into the summary
// counters shared with the wire protocol.
func ScreenSummary(decisions []ScreenDecision, results map[string]CellResult) Summary {
	var sum Summary
	sum.Cells = len(decisions)
	for _, d := range decisions {
		if d.Promote {
			sum.Promoted++
			res, ok := results[d.Cell.Key()]
			if !ok {
				continue
			}
			switch res.Status {
			case StatusInfeasible:
				sum.Infeasible++
			case StatusError:
				sum.Errors++
			}
			continue
		}
		sum.Screened++
		switch d.Result.Status {
		case StatusInfeasible:
			sum.Infeasible++
		case StatusError:
			sum.Errors++
		}
	}
	return sum
}

// StoreObservation is the store-agnostic calibration input form;
// cmd/mcbench adapts persisted store.Entry records into it so this
// package does not depend on the store's schema plumbing.
type StoreObservation struct {
	Workload string
	System   string
	Ranks    int
	Scheme   string
	Faults   string
	Status   string
	Seconds  float64
}

// CalibrateFromStore fits the estimator's per-class correction factors
// from the simulation results already persisted in a cell store (see
// analytic.Calibrate). Only clean entries participate: ok-status cells
// with no fault plan. Entries whose workload or scheme does not parse
// back into a cell (parameter-override keys, foreign families) are
// skipped, not errors.
func CalibrateFromStore(e *analytic.Estimator, entries []StoreObservation) (analytic.Calibration, error) {
	var obs []analytic.Observation
	for _, ent := range entries {
		if ent.Status != StatusOK || ent.Faults != "" {
			continue
		}
		spec, err := workload.ParseSpec(ent.Workload)
		if err != nil {
			continue
		}
		scheme, ok := parseSchemeAny(ent.Scheme)
		if !ok {
			continue
		}
		obs = append(obs, analytic.Observation{
			Workload: spec,
			System:   ent.System,
			Ranks:    ent.Ranks,
			Scheme:   scheme,
			Seconds:  ent.Seconds,
		})
	}
	if len(obs) == 0 {
		return analytic.Calibration{}, fmt.Errorf("sweepd: no usable ok-status entries to calibrate from")
	}
	return analytic.Calibrate(e, obs)
}

// parseSchemeAny accepts a scheme in either serialized form: the CLI
// name sweep grids use ("localalloc") or the display name persisted in
// store keys ("One MPI + Local Alloc").
func parseSchemeAny(name string) (affinity.Scheme, bool) {
	if s, err := affinity.ParseScheme(name); err == nil {
		return s, true
	}
	for _, s := range affinity.Schemes {
		if s.String() == name {
			return s, true
		}
	}
	return 0, false
}
