package sweepd

import (
	"strings"
	"testing"
)

func TestParseGridCanonical(t *testing.T) {
	g, err := ParseGrid("workloads=stream,cg,stream;systems=tiger,dmz;ranks=1,2,4;schemes=default,localalloc")
	if err != nil {
		t.Fatal(err)
	}
	if len(g.Workloads) != 2 {
		t.Errorf("duplicate workload not removed: %v", g.Workloads)
	}
	g.Scale = "quick"
	want := "workloads=stream,cg;systems=tiger,dmz;ranks=1,2,4;schemes=default,localalloc;scale=quick"
	if g.String() != want {
		t.Errorf("canonical form = %q, want %q", g.String(), want)
	}
	// Round-trip: parsing the canonical form (minus scale) reproduces it.
	g2, err := ParseGrid(strings.TrimSuffix(g.String(), ";scale=quick"))
	if err != nil {
		t.Fatal(err)
	}
	g2.Scale = "quick"
	if g2.String() != want {
		t.Errorf("round-trip = %q, want %q", g2.String(), want)
	}
	if n := len(g.Cells()); n != 2*2*3*2 {
		t.Errorf("got %d cells, want 24", n)
	}
}

func TestParseGridDefaultsAndOverrides(t *testing.T) {
	g, err := ParseGrid("workloads=cg;systems=tiger;ranks=2;class=B;steps=5;n=1024")
	if err != nil {
		t.Fatal(err)
	}
	if len(g.Schemes) != 1 || g.Schemes[0] != "default" {
		t.Errorf("schemes default = %v, want [default]", g.Schemes)
	}
	if g.Class != "B" || g.Steps != 5 || g.N != 1024 {
		t.Errorf("overrides not parsed: %+v", g)
	}
	g.Scale = "quick"
	c := g.Cells()[0]
	if !strings.Contains(c.Key(), "[class=B]") || !strings.Contains(c.Key(), "[steps=5]") || !strings.Contains(c.Key(), "[n=1024]") {
		t.Errorf("cell key misses overrides: %s", c.Key())
	}
}

func TestParseGridRankRanges(t *testing.T) {
	g, err := ParseGrid("workloads=stream;systems=tiger;ranks=1..8,16,2..4")
	if err != nil {
		t.Fatal(err)
	}
	want := []int{1, 2, 3, 4, 5, 6, 7, 8, 16}
	if len(g.Ranks) != len(want) {
		t.Fatalf("ranks = %v, want %v (ranges expanded, duplicates dropped)", g.Ranks, want)
	}
	for i, n := range want {
		if g.Ranks[i] != n {
			t.Fatalf("ranks = %v, want %v", g.Ranks, want)
		}
	}
	// The canonical form compresses the consecutive run back to a range
	// and round-trips.
	g.Scale = "quick"
	if got := g.String(); !strings.Contains(got, "ranks=1..8,16") {
		t.Errorf("canonical form = %q, want a compressed ranks=1..8,16", got)
	}
	g2, err := ParseGrid(strings.TrimSuffix(g.String(), ";scale=quick"))
	if err != nil {
		t.Fatal(err)
	}
	if len(g2.Ranks) != len(want) {
		t.Errorf("round-trip ranks = %v, want %v", g2.Ranks, want)
	}
}

func TestParseGridErrors(t *testing.T) {
	for _, bad := range []string{
		"",                                     // no dimensions
		"workloads=cg",                         // missing systems/ranks
		"workloads=cg;systems=tiger;ranks=0",   // bad rank
		"workloads=cg;systems=tiger;ranks=x",   // unparseable rank
		"workloads=cg;systems=tiger;ranks=4..2",   // inverted range
		"workloads=cg;systems=tiger;ranks=0..4",   // range below 1
		"workloads=cg;systems=tiger;ranks=1..x",   // unparseable range end
		"workloads=cg;systems=tiger;ranks=2;schemes=bogus", // unknown scheme
		"wibble=1;workloads=cg;systems=tiger;ranks=2",      // unknown section
		"workloads=;systems=tiger;ranks=2",                 // empty value
		"workloads=bogus;systems=tiger;ranks=2",            // unregistered workload
		"workloads=cg;systems=sunway;ranks=2",              // unknown system
		"workloads=cg;systems=tiger;ranks=2;class=Z",       // invalid NPB class
	} {
		if _, err := ParseGrid(bad); err == nil {
			t.Errorf("ParseGrid(%q) succeeded, want error", bad)
		}
	}
}

// FuzzParseGrid: any input either fails to parse or yields a grid that
// validates and whose canonical form round-trips to an equal grid. The
// seed corpus covers every section, the range syntax, and the error
// shapes from TestParseGridErrors.
func FuzzParseGrid(f *testing.F) {
	for _, seed := range []string{
		"workloads=stream,cg;systems=tiger,dmz;ranks=1,2,4;schemes=default,localalloc",
		"workloads=cg;systems=tiger;ranks=1..8,16;schemes=interleave",
		"workloads=cg;systems=tiger;ranks=2;class=B;steps=5;n=1024",
		"workloads=stream;systems=longs;ranks=1..300",
		"workloads=cg;systems=tiger;ranks=4..2",
		"workloads=cg;systems=tiger;ranks=0",
		"workloads=;systems=tiger;ranks=2",
		"wibble=1",
		"",
		";;;",
		"workloads=cg;systems=tiger;ranks=1..",
		"workloads=cg;systems=tiger;ranks=..4",
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, s string) {
		g, err := ParseGrid(s)
		if err != nil {
			return
		}
		if verr := g.Validate(); verr != nil {
			t.Fatalf("ParseGrid(%q) ok but Validate failed: %v", s, verr)
		}
		// Canonical string round-trips to an identical grid.
		g.Scale = "quick"
		canon := g.String()
		g2, err := ParseGrid(strings.TrimSuffix(canon, ";scale=quick"))
		if err != nil {
			t.Fatalf("canonical form %q does not re-parse: %v", canon, err)
		}
		g2.Scale = "quick"
		if g2.String() != canon {
			t.Fatalf("round-trip %q -> %q", canon, g2.String())
		}
	})
}

func TestFingerprintDeterministic(t *testing.T) {
	cell := CellSpec{Workload: "stream", System: "tiger", Ranks: 2, Scheme: "default", Scale: "quick"}
	a := CellResult{Cell: cell, Status: StatusOK, Seconds: 1.0625}
	b := CellResult{Cell: cell, Status: StatusOK, Seconds: 1.0625,
		Worker: "w7", Simulated: true, Attempt: 3} // observability fields must not matter
	if Fingerprint(a) != Fingerprint(b) {
		t.Error("fingerprint depends on observability fields")
	}
	c := a
	c.Seconds = 1.0625000000000002 // one ulp
	if Fingerprint(a) == Fingerprint(c) {
		t.Error("fingerprint misses a one-ulp value change")
	}
	d := a
	d.Status = StatusError
	d.Seconds = 0
	d.Error = "boom"
	if Fingerprint(a) == Fingerprint(d) {
		t.Error("fingerprint misses a status change")
	}
}

func TestTableRendering(t *testing.T) {
	g := Grid{Workloads: []string{"stream"}, Systems: []string{"tiger"}, Ranks: []int{1, 2},
		Schemes: []string{"default", "localalloc"}, Scale: "quick"}
	results := map[string]CellResult{}
	cells := g.Cells()
	for i, c := range cells {
		res := CellResult{Cell: c}
		switch i {
		case 0:
			res.Status = StatusOK
			res.Seconds = 1.5
		case 1:
			res.Status = StatusInfeasible
		case 2:
			res.Status = StatusError
			res.Error = "boom"
		default:
			continue // missing result renders ERR too
		}
		results[c.Key()] = res
	}
	text := Table(g, results).Text()
	for _, want := range []string{"1.500", "-", "ERR"} {
		if !strings.Contains(text, want) {
			t.Errorf("table misses %q:\n%s", want, text)
		}
	}
	if !strings.Contains(text, g.String()) {
		t.Errorf("table title is not the canonical grid:\n%s", text)
	}
}
