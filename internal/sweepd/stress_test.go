package sweepd

import (
	"context"
	"testing"
	"time"
)

// TestStressSmoke runs a scaled-down million-cell stress configuration:
// same screening tier, coordinator, worker fleet, and chaos schedule as
// `mcsweepd -stress -cells 1000000`, over a grid small enough for CI.
// The harness itself asserts the byte-identical-to-serial property.
func TestStressSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("stress smoke takes seconds")
	}
	ctx, cancel := context.WithTimeout(context.Background(), 3*time.Minute)
	defer cancel()
	rep, err := Stress(ctx, StressOptions{Cells: 200, Seed: 42, Logf: t.Logf})
	if err != nil {
		t.Fatalf("stress: %v", err)
	}
	if rep.Cells < 200 {
		t.Errorf("stress grid held %d cells, want >= 200", rep.Cells)
	}
	t.Logf("stress smoke: %s", rep)
}
