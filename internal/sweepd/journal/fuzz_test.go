package journal

import (
	"bytes"
	"testing"
)

// FuzzDecodeFrames checks the journal decoder's crash-tolerance
// invariants on arbitrary bytes: it never panics, the valid prefix it
// reports is within bounds, re-encoding the decoded payloads reproduces
// that prefix byte-for-byte (the round-trip invariant), and appending a
// fresh frame to the prefix decodes to exactly one more record — i.e. a
// torn or corrupt tail is discarded without poisoning later appends.
func FuzzDecodeFrames(f *testing.F) {
	f.Add([]byte{})
	f.Add(EncodeFrame(nil, []byte("seed")))
	f.Add(EncodeFrame(EncodeFrame(nil, []byte(`{"t":"sweep","token":"s1"}`)), nil))
	half := EncodeFrame(nil, []byte("torn"))
	f.Add(append(EncodeFrame(nil, []byte("ok")), half[:len(half)-2]...))
	f.Add([]byte{0x80, 0x00, 0, 0, 0, 0}) // non-canonical varint length

	f.Fuzz(func(t *testing.T, data []byte) {
		payloads, valid := DecodeFrames(data)
		if valid < 0 || valid > len(data) {
			t.Fatalf("valid prefix %d out of bounds for %d bytes", valid, len(data))
		}
		var re []byte
		for _, p := range payloads {
			re = EncodeFrame(re, p)
		}
		if !bytes.Equal(re, data[:valid]) {
			t.Fatalf("re-encoding %d payloads does not reproduce the valid prefix", len(payloads))
		}
		appended := EncodeFrame(append([]byte(nil), data[:valid]...), []byte("appended"))
		got, n := DecodeFrames(appended)
		if n != len(appended) || len(got) != len(payloads)+1 {
			t.Fatalf("append over truncated tail: %d records in %d/%d bytes, want %d",
				len(got), n, len(appended), len(payloads)+1)
		}
		if string(got[len(got)-1]) != "appended" {
			t.Fatalf("appended record decoded as %q", got[len(got)-1])
		}
	})
}
