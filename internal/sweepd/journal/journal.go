// Package journal is the coordinator's crash-safe persistence layer: an
// append-only record log (journal.wal) plus a periodically rewritten
// snapshot (snapshot.json). Records are opaque byte payloads framed as
//
//	uvarint(len(payload)) | crc32(payload) LE | payload
//
// so a torn tail — a crash mid-write — is detected and discarded up to
// the last intact record. The snapshot/journal pair recovers in two
// steps: load the snapshot, then replay every journal record on top.
// Replay must therefore be idempotent against the snapshot: a crash
// between the snapshot rename and the journal truncation leaves old
// records in the journal that the snapshot already reflects.
package journal

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sync"
)

const (
	walName  = "journal.wal"
	snapName = "snapshot.json"
)

// Journal is an open state directory. Append/Sync/Snapshot are safe for
// concurrent use.
type Journal struct {
	dir string

	mu      sync.Mutex
	f       *os.File
	dirty   bool // bytes appended since the last Sync
	records int  // records appended since the last Snapshot
}

// Open loads a state directory, returning the snapshot bytes (nil if no
// snapshot was ever taken) and every intact journal record appended
// since it. A torn or corrupt journal tail is truncated away so new
// appends extend the valid prefix.
func Open(dir string) (j *Journal, snapshot []byte, records [][]byte, err error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, nil, nil, fmt.Errorf("journal: creating state dir: %v", err)
	}
	snapshot, err = os.ReadFile(filepath.Join(dir, snapName))
	if err != nil {
		if !os.IsNotExist(err) {
			return nil, nil, nil, fmt.Errorf("journal: reading snapshot: %v", err)
		}
		snapshot = nil
	}
	data, err := os.ReadFile(filepath.Join(dir, walName))
	if err != nil && !os.IsNotExist(err) {
		return nil, nil, nil, fmt.Errorf("journal: reading journal: %v", err)
	}
	records, valid := DecodeFrames(data)
	f, err := os.OpenFile(filepath.Join(dir, walName), os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		return nil, nil, nil, fmt.Errorf("journal: opening journal: %v", err)
	}
	if valid < len(data) {
		if err := f.Truncate(int64(valid)); err != nil {
			f.Close()
			return nil, nil, nil, fmt.Errorf("journal: truncating torn tail: %v", err)
		}
	}
	if _, err := f.Seek(int64(valid), 0); err != nil {
		f.Close()
		return nil, nil, nil, err
	}
	return &Journal{dir: dir, f: f, records: len(records)}, snapshot, records, nil
}

// Append frames one record onto the journal. The write reaches the OS
// immediately (no userspace buffering, so an in-process crash loses
// nothing); call Sync to force it to stable storage.
func (j *Journal) Append(payload []byte) error {
	frame := EncodeFrame(nil, payload)
	j.mu.Lock()
	defer j.mu.Unlock()
	if _, err := j.f.Write(frame); err != nil {
		return fmt.Errorf("journal: appending record: %v", err)
	}
	j.dirty = true
	j.records++
	return nil
}

// Sync flushes appended records to stable storage. Losing unsynced tail
// records on power failure is safe by design — replay is idempotent and
// completed results live in the content-addressed store — so callers
// batch Syncs rather than paying an fsync per record.
func (j *Journal) Sync() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.syncLocked()
}

func (j *Journal) syncLocked() error {
	if !j.dirty {
		return nil
	}
	if err := j.f.Sync(); err != nil {
		return fmt.Errorf("journal: fsync: %v", err)
	}
	j.dirty = false
	return nil
}

// Records reports how many records were appended (or replayed at Open)
// since the last Snapshot — the compaction trigger.
func (j *Journal) Records() int {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.records
}

// Snapshot atomically replaces the snapshot with state and truncates the
// journal. Crash ordering: the tmp+rename makes the new snapshot appear
// atomically; if the process dies before the truncation, Open replays
// the stale journal records onto the new snapshot, which idempotent
// replay absorbs.
func (j *Journal) Snapshot(state []byte) error {
	j.mu.Lock()
	defer j.mu.Unlock()
	tmp := filepath.Join(j.dir, snapName+".tmp")
	f, err := os.OpenFile(tmp, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return fmt.Errorf("journal: snapshot tmp: %v", err)
	}
	if _, err := f.Write(state); err == nil {
		err = f.Sync()
	}
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		os.Remove(tmp)
		return fmt.Errorf("journal: writing snapshot: %v", err)
	}
	if err := os.Rename(tmp, filepath.Join(j.dir, snapName)); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("journal: publishing snapshot: %v", err)
	}
	if err := j.f.Truncate(0); err != nil {
		return fmt.Errorf("journal: truncating after snapshot: %v", err)
	}
	if _, err := j.f.Seek(0, 0); err != nil {
		return err
	}
	j.dirty = false
	j.records = 0
	return nil
}

// Close syncs and releases the journal file.
func (j *Journal) Close() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	err := j.syncLocked()
	if cerr := j.f.Close(); err == nil {
		err = cerr
	}
	return err
}

// EncodeFrame appends one framed record to dst and returns the extended
// slice. The framing is self-delimiting and checksummed; see the package
// comment.
func EncodeFrame(dst, payload []byte) []byte {
	var lenBuf [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(lenBuf[:], uint64(len(payload)))
	dst = append(dst, lenBuf[:n]...)
	var crcBuf [4]byte
	binary.LittleEndian.PutUint32(crcBuf[:], crc32.ChecksumIEEE(payload))
	dst = append(dst, crcBuf[:]...)
	return append(dst, payload...)
}

// DecodeFrames splits data into framed record payloads, stopping at the
// first truncated, corrupt, or non-canonical frame. It returns the
// payloads (sub-slices of data) and the byte length of the valid prefix;
// everything past it is a torn tail to discard. For any input,
// re-encoding the returned payloads reproduces data[:valid] exactly.
func DecodeFrames(data []byte) (payloads [][]byte, valid int) {
	var lenBuf [binary.MaxVarintLen64]byte
	for valid < len(data) {
		l, n := binary.Uvarint(data[valid:])
		if n <= 0 || binary.PutUvarint(lenBuf[:], l) != n {
			return payloads, valid // truncated or non-canonical length
		}
		rest := data[valid+n:]
		if uint64(len(rest)) < 4 || l > uint64(len(rest)-4) {
			return payloads, valid // truncated frame
		}
		payload := rest[4 : 4+l]
		if crc32.ChecksumIEEE(payload) != binary.LittleEndian.Uint32(rest[:4]) {
			return payloads, valid // corrupt payload
		}
		payloads = append(payloads, payload)
		valid += n + 4 + int(l)
	}
	return payloads, valid
}
