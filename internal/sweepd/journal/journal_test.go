package journal

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"testing"
)

func openT(t *testing.T, dir string) (*Journal, []byte, [][]byte) {
	t.Helper()
	j, snap, recs, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { j.Close() })
	return j, snap, recs
}

func TestRoundTrip(t *testing.T) {
	dir := t.TempDir()
	j, snap, recs := openT(t, dir)
	if snap != nil || len(recs) != 0 {
		t.Fatalf("fresh dir: snap=%v recs=%d, want empty", snap, len(recs))
	}
	want := [][]byte{[]byte("one"), []byte(`{"t":"final","id":"x"}`), {}, []byte("four")}
	for _, r := range want {
		if err := j.Append(r); err != nil {
			t.Fatal(err)
		}
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	_, snap, recs = openT(t, dir)
	if snap != nil {
		t.Errorf("snapshot = %q, want none", snap)
	}
	if len(recs) != len(want) {
		t.Fatalf("reopened %d records, want %d", len(recs), len(want))
	}
	for i := range want {
		if !bytes.Equal(recs[i], want[i]) {
			t.Errorf("record %d = %q, want %q", i, recs[i], want[i])
		}
	}
}

func TestTornTailTruncatedAndOverwritten(t *testing.T) {
	dir := t.TempDir()
	j, _, _ := openT(t, dir)
	j.Append([]byte("intact-1"))
	j.Append([]byte("intact-2"))
	j.Close()

	// Simulate a crash mid-append: a partial frame at the tail.
	wal := filepath.Join(dir, walName)
	full, err := os.ReadFile(wal)
	if err != nil {
		t.Fatal(err)
	}
	torn := EncodeFrame(nil, []byte("half-written record"))
	torn = torn[:len(torn)/2]
	if err := os.WriteFile(wal, append(full, torn...), 0o644); err != nil {
		t.Fatal(err)
	}

	j2, _, recs := openT(t, dir)
	if len(recs) != 2 {
		t.Fatalf("recovered %d records past a torn tail, want 2", len(recs))
	}
	// New appends must land on the truncated valid prefix and survive a
	// further reopen.
	j2.Append([]byte("post-crash"))
	j2.Close()
	_, _, recs = openT(t, dir)
	if len(recs) != 3 || string(recs[2]) != "post-crash" {
		t.Fatalf("after append-over-tear: %q", recs)
	}
}

func TestCorruptMiddleStopsReplay(t *testing.T) {
	dir := t.TempDir()
	j, _, _ := openT(t, dir)
	j.Append([]byte("good"))
	j.Append([]byte("will-be-flipped"))
	j.Append([]byte("unreachable"))
	j.Close()

	wal := filepath.Join(dir, walName)
	data, _ := os.ReadFile(wal)
	// Flip a byte inside the second record's payload.
	first := EncodeFrame(nil, []byte("good"))
	data[len(first)+6] ^= 0xff
	os.WriteFile(wal, data, 0o644)

	_, _, recs := openT(t, dir)
	if len(recs) != 1 || string(recs[0]) != "good" {
		t.Fatalf("corrupt middle: recovered %q, want just the first record", recs)
	}
}

func TestSnapshotTruncatesJournal(t *testing.T) {
	dir := t.TempDir()
	j, _, _ := openT(t, dir)
	for i := 0; i < 5; i++ {
		j.Append([]byte(fmt.Sprintf("rec-%d", i)))
	}
	if n := j.Records(); n != 5 {
		t.Errorf("Records() = %d, want 5", n)
	}
	if err := j.Snapshot([]byte(`{"state":"compacted"}`)); err != nil {
		t.Fatal(err)
	}
	if n := j.Records(); n != 0 {
		t.Errorf("Records() after snapshot = %d, want 0", n)
	}
	j.Append([]byte("after-snap"))
	j.Close()

	_, snap, recs := openT(t, dir)
	if string(snap) != `{"state":"compacted"}` {
		t.Errorf("snapshot = %q", snap)
	}
	if len(recs) != 1 || string(recs[0]) != "after-snap" {
		t.Errorf("post-snapshot records = %q, want just after-snap", recs)
	}
}

// TestCrashBetweenSnapshotAndTruncate reproduces the documented window:
// the snapshot renamed into place but the journal not yet truncated.
// Open must surface both — idempotent replay at the caller absorbs the
// overlap.
func TestCrashBetweenSnapshotAndTruncate(t *testing.T) {
	dir := t.TempDir()
	j, _, _ := openT(t, dir)
	j.Append([]byte("rec"))
	j.Close()
	// "Crash": snapshot written by hand, journal left alone.
	if err := os.WriteFile(filepath.Join(dir, snapName), []byte("snap"), 0o644); err != nil {
		t.Fatal(err)
	}
	_, snap, recs := openT(t, dir)
	if string(snap) != "snap" || len(recs) != 1 || string(recs[0]) != "rec" {
		t.Fatalf("snap=%q recs=%q, want both visible", snap, recs)
	}
}

func TestDecodeFramesEmptyAndGarbage(t *testing.T) {
	if recs, n := DecodeFrames(nil); len(recs) != 0 || n != 0 {
		t.Errorf("nil: %v %d", recs, n)
	}
	if recs, n := DecodeFrames([]byte{0xff, 0xff, 0xff}); len(recs) != 0 || n != 0 {
		t.Errorf("garbage: %v %d", recs, n)
	}
	// A non-canonical varint length (0x80 0x00 encodes 0 in two bytes)
	// must not decode — re-encoding would not round-trip.
	data := []byte{0x80, 0x00, 0, 0, 0, 0}
	if recs, n := DecodeFrames(data); len(recs) != 0 || n != 0 {
		t.Errorf("non-canonical varint accepted: %v %d", recs, n)
	}
}
