package sweepd

import (
	"context"
	"errors"
	"fmt"
	"sync"

	"multicore/internal/affinity"
	"multicore/internal/experiments"
	"multicore/internal/fault"
	"multicore/internal/report"
	"multicore/internal/sim"
	"multicore/internal/workload"
)

// isCanceled reports whether err describes the sweep (or worker)
// stopping rather than the cell failing.
func isCanceled(err error) bool {
	var ce *sim.CanceledError
	return errors.As(err, &ce) ||
		errors.Is(err, context.Canceled) ||
		errors.Is(err, context.DeadlineExceeded)
}

// Table assembles streamed cell results into the sweep's results table:
// one row per (workload, system, ranks) in grid order, one column per
// scheme, makespan seconds in the paper's cell style (dash for
// infeasible placements, ERR for failures). Local and remote sweeps
// build their tables through this one function, so a distributed run is
// byte-identical to the serial one whenever the cell values are.
func Table(g Grid, results map[string]CellResult) *report.Table {
	cols := append([]string{"Workload", "System", "MPI tasks"}, g.Schemes...)
	t := report.New(g.String(), cols...)
	for _, w := range g.Workloads {
		for _, sys := range g.Systems {
			for _, r := range g.Ranks {
				cells := []string{w, sys, fmt.Sprint(r)}
				for _, sch := range g.Schemes {
					spec := CellSpec{Workload: w, Class: g.Class, Steps: g.Steps, N: g.N,
						System: sys, Ranks: r, Scheme: sch, Scale: g.Scale}
					res, ok := results[spec.Key()]
					switch {
					case !ok:
						cells = append(cells, report.Err)
					case res.Status == StatusOK && res.Promoted:
						// Promoted by the screening tier: simulated seconds,
						// marked so a screened table shows its tier per cell.
						cells = append(cells, report.Seconds(res.Seconds)+"*")
					case res.Status == StatusOK:
						cells = append(cells, report.Seconds(res.Seconds))
					case res.Status == StatusEstimated:
						cells = append(cells, "~"+report.Seconds(res.Seconds))
					case res.Status == StatusInfeasible:
						cells = append(cells, report.NA)
					default:
						cells = append(cells, report.Err)
					}
				}
				t.AddRow(cells...)
			}
		}
	}
	return t
}

// resolveCell turns a wire CellSpec into executor arguments. Errors are
// deterministic properties of the spec (unknown scheme or scale), so
// they become error cells, never retries.
func resolveCell(c CellSpec) (workload.Spec, affinity.Scheme, experiments.Scale, error) {
	spec, err := workload.ParseSpec(c.Workload)
	if err != nil {
		return workload.Spec{}, 0, 0, err
	}
	spec.Class, spec.Steps, spec.N = c.Class, c.Steps, c.N
	scheme, err := affinity.ParseScheme(c.Scheme)
	if err != nil {
		return workload.Spec{}, 0, 0, err
	}
	scale, err := experiments.ParseScale(c.Scale)
	if err != nil {
		return workload.Spec{}, 0, 0, err
	}
	return spec, scheme, scale, nil
}

// resultFor maps one executed cell to its wire result and stamps the
// fingerprint. Cancellation must be filtered by the caller — a canceled
// run describes the sweep stopping, not the cell, and must never be
// reported as the cell's result.
func resultFor(c CellSpec, secs float64, err error) CellResult {
	res := CellResult{Cell: c}
	var inf *affinity.ErrInfeasible
	switch {
	case err == nil:
		res.Status = StatusOK
		res.Seconds = secs
	case errors.As(err, &inf):
		res.Status = StatusInfeasible
	default:
		res.Status = StatusError
		res.Error = err.Error()
		res.Transient = fault.IsTransient(err)
	}
	res.Fingerprint = Fingerprint(res)
	return res
}

// RunLocal executes a grid on one in-process runner — the serial golden
// path distributed runs are checked against. Cells run on up to workers
// goroutines (the runner's own parallelism bound applies inside
// RunWorkloadCell's store/retry path; this pool is the cell-level
// fan-out), and results are keyed by cell for Table. With workers <= 1
// the grid runs strictly in declared order.
func RunLocal(r *experiments.Runner, g Grid, workers int) map[string]CellResult {
	return runCells(r, g.Cells(), workers)
}

// runCells is the cell-level worker pool shared by full sweeps
// (RunLocal) and the promoted tier of screened sweeps (RunScreened).
func runCells(r *experiments.Runner, cells []CellSpec, workers int) map[string]CellResult {
	out := make([]CellResult, len(cells))
	run := func(i int) {
		c := cells[i]
		spec, scheme, scale, err := resolveCell(c)
		var secs float64
		if err == nil {
			secs, err = r.RunWorkloadCell(spec, c.System, c.Ranks, scheme, scale)
		}
		if err != nil && isCanceled(err) {
			return // sweep stopped; not a cell outcome
		}
		out[i] = resultFor(c, secs, err)
	}
	if workers > len(cells) {
		workers = len(cells)
	}
	if workers <= 1 {
		for i := range cells {
			if r.Context().Err() != nil {
				break
			}
			run(i)
		}
	} else {
		var (
			wg   sync.WaitGroup
			mu   sync.Mutex
			next int
		)
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for {
					if r.Context().Err() != nil {
						return
					}
					mu.Lock()
					i := next
					next++
					mu.Unlock()
					if i >= len(cells) {
						return
					}
					run(i)
				}
			}()
		}
		wg.Wait()
	}
	results := make(map[string]CellResult, len(cells))
	for i, c := range cells {
		if out[i].Status == "" {
			continue // canceled before this cell ran
		}
		results[c.Key()] = out[i]
	}
	return results
}
