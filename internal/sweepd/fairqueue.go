package sweepd

// fairQueue is the coordinator's pending-cell queue with weighted-fair
// dequeue across sweep priorities (stride scheduling). Each priority
// level is one class with weight priority+1: a priority-4 sweep drains
// five cells for every one a priority-0 sweep drains, but the low
// class always makes progress — a million-cell background submission
// cannot starve an interactive sweep, and vice versa. Within a class,
// cells dequeue FIFO, preserving submission order. Not safe for
// concurrent use; the coordinator guards it with its mutex.
type fairQueue struct {
	classes map[int]*fairClass
	n       int
}

type fairClass struct {
	ids    []string
	pass   float64 // virtual time consumed; min-pass class dequeues next
	stride float64 // 1/weight
}

// MaxPriority caps sweep priorities; higher submissions clamp to it.
const MaxPriority = 9

func clampPriority(p int) int {
	if p < 0 {
		return 0
	}
	if p > MaxPriority {
		return MaxPriority
	}
	return p
}

func newFairQueue() *fairQueue {
	return &fairQueue{classes: map[int]*fairClass{}}
}

func (q *fairQueue) len() int { return q.n }

// push enqueues id at priority prio. A class waking from empty starts at
// the current minimum pass so it competes fairly from now on instead of
// burning accumulated credit in a burst.
func (q *fairQueue) push(id string, prio int) {
	prio = clampPriority(prio)
	cl := q.classes[prio]
	if cl == nil {
		cl = &fairClass{stride: 1 / float64(prio+1)}
		q.classes[prio] = cl
	}
	if len(cl.ids) == 0 {
		if m, ok := q.minPass(); ok && cl.pass < m {
			cl.pass = m
		}
	}
	cl.ids = append(cl.ids, id)
	q.n++
}

func (q *fairQueue) minPass() (float64, bool) {
	min, ok := 0.0, false
	for _, cl := range q.classes {
		if len(cl.ids) == 0 {
			continue
		}
		if !ok || cl.pass < min {
			min, ok = cl.pass, true
		}
	}
	return min, ok
}

// pop dequeues from the non-empty class with the lowest pass (ties break
// toward the higher priority, deterministically).
func (q *fairQueue) pop() (string, bool) {
	var best *fairClass
	bestPrio := -1
	for prio, cl := range q.classes {
		if len(cl.ids) == 0 {
			continue
		}
		if best == nil || cl.pass < best.pass || (cl.pass == best.pass && prio > bestPrio) {
			best, bestPrio = cl, prio
		}
	}
	if best == nil {
		return "", false
	}
	id := best.ids[0]
	best.ids = best.ids[1:]
	best.pass += best.stride
	q.n--
	return id, true
}

// remove drops id wherever it is queued; reports whether it was found.
func (q *fairQueue) remove(id string) bool {
	for _, cl := range q.classes {
		for i, qid := range cl.ids {
			if qid == id {
				cl.ids = append(cl.ids[:i], cl.ids[i+1:]...)
				q.n--
				return true
			}
		}
	}
	return false
}

// promote moves an already-queued id to a higher-priority class (a
// second sweep referencing the same pending cell at higher priority).
// No-op if the cell is not queued or the new priority is not higher.
func (q *fairQueue) promote(id string, from, to int) {
	if clampPriority(to) <= clampPriority(from) {
		return
	}
	if q.remove(id) {
		q.push(id, to)
	}
}
