package sweepd

import (
	"fmt"
	"testing"
)

func TestFairQueueFIFOWithinClass(t *testing.T) {
	q := newFairQueue()
	for i := 0; i < 5; i++ {
		q.push(fmt.Sprintf("c%d", i), 0)
	}
	for i := 0; i < 5; i++ {
		id, ok := q.pop()
		if !ok || id != fmt.Sprintf("c%d", i) {
			t.Fatalf("pop %d = %q ok=%v, want c%d", i, id, ok, i)
		}
	}
	if _, ok := q.pop(); ok {
		t.Error("pop from empty queue succeeded")
	}
}

// TestFairQueueWeightedInterleave checks the stride property: with a
// priority-4 class (weight 5) and a priority-0 class (weight 1) both
// backlogged, dequeues interleave roughly 5:1 — neither class starves.
func TestFairQueueWeightedInterleave(t *testing.T) {
	q := newFairQueue()
	for i := 0; i < 100; i++ {
		q.push(fmt.Sprintf("hi%d", i), 4)
		q.push(fmt.Sprintf("lo%d", i), 0)
	}
	hi, lo := 0, 0
	for i := 0; i < 60; i++ {
		id, ok := q.pop()
		if !ok {
			t.Fatal("queue drained early")
		}
		if id[:2] == "hi" {
			hi++
		} else {
			lo++
		}
		// The low class must never fall further behind than the weight
		// ratio allows (one extra dequeue of slack for startup).
		if hi > 5*(lo+1) {
			t.Fatalf("after %d pops: hi=%d lo=%d, low class starved", i+1, hi, lo)
		}
	}
	if lo == 0 {
		t.Fatal("low-priority class never dequeued")
	}
	if hi < 4*lo {
		t.Errorf("hi=%d lo=%d, want roughly 5:1 interleave", hi, lo)
	}
}

func TestFairQueueLateArrivalNoBurst(t *testing.T) {
	q := newFairQueue()
	for i := 0; i < 50; i++ {
		q.push(fmt.Sprintf("lo%d", i), 0)
	}
	// Drain some low-priority work first, accumulating pass.
	for i := 0; i < 20; i++ {
		q.pop()
	}
	// A high-priority class arriving late starts at the current virtual
	// time: it dominates per its weight but does not monopolize.
	for i := 0; i < 50; i++ {
		q.push(fmt.Sprintf("hi%d", i), 4)
	}
	lo := 0
	for i := 0; i < 12; i++ {
		id, _ := q.pop()
		if id[:2] == "lo" {
			lo++
		}
	}
	if lo == 0 {
		t.Error("low class starved after high-priority arrival")
	}
}

func TestFairQueueRemoveAndPromote(t *testing.T) {
	q := newFairQueue()
	q.push("a", 0)
	q.push("b", 0)
	q.push("c", 0)
	if !q.remove("b") {
		t.Fatal("remove(b) failed")
	}
	if q.remove("b") {
		t.Fatal("remove(b) twice succeeded")
	}
	if q.len() != 2 {
		t.Fatalf("len = %d, want 2", q.len())
	}
	// Promote c above a: with weight 10 vs 1 it dequeues first.
	q.promote("c", 0, 9)
	id, _ := q.pop()
	if id != "c" {
		t.Errorf("after promote, pop = %q, want c", id)
	}
	// Demotion is a no-op.
	q.promote("a", 5, 2)
	if id, _ := q.pop(); id != "a" {
		t.Errorf("pop = %q, want a", id)
	}
	if q.len() != 0 {
		t.Errorf("len = %d, want 0", q.len())
	}
}

func TestClampPriority(t *testing.T) {
	for _, tc := range []struct{ in, want int }{{-3, 0}, {0, 0}, {5, 5}, {9, 9}, {42, 9}} {
		if got := clampPriority(tc.in); got != tc.want {
			t.Errorf("clampPriority(%d) = %d, want %d", tc.in, got, tc.want)
		}
	}
}
