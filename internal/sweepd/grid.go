// Package sweepd turns the single-process sweep pipeline into a
// networked coordinator/worker system: an HTTP coordinator accepts sweep
// submissions (a workload × system × ranks × scheme grid plus an optional
// fault plan and seed), shards the grid's cells across registered worker
// processes, and streams per-cell results back to each client as NDJSON
// so tables fill in live. Workers wrap experiments.Runner with the
// content-addressed store as a global result cache, so any worker — and
// any later sweep — serves a completed cell from disk instead of
// re-simulating it.
//
// Correctness properties are inherited from the single-process pipeline
// and enforced across the network:
//
//   - Determinism: every cell result carries a fingerprint over its
//     deterministic fields. The coordinator compares fingerprints when
//     duplicate completions arrive (a re-assigned lease racing its
//     original worker), and clients recompute fingerprints on receipt,
//     so a worker that diverges from the serial golden path is detected,
//     not silently averaged in.
//   - Exactly-once simulation: the coordinator dedups in-flight identical
//     cells across concurrent clients (two users sweeping overlapping
//     grids share one execution), and the store dedups across sweeps.
//   - Crash tolerance: leases expire when a worker stops heartbeating and
//     the cell is re-queued; transient cell failures (fault.IsTransient)
//     are retried on the worker and re-leased by the coordinator, while
//     deterministic failures render ERR exactly like a local sweep.
package sweepd

import (
	"fmt"
	"strconv"
	"strings"

	"multicore/internal/affinity"
	"multicore/internal/experiments"
	"multicore/internal/machine"
	"multicore/internal/workload"
)

// Grid declares a sweep: the cross product of workloads, systems, rank
// counts, and placement schemes, at one problem scale. The declared
// order is the table order, so two clients submitting the same grid
// render byte-identical tables.
type Grid struct {
	// Workloads are registry specs in CLI form ("cg", "amber:JAC").
	Workloads []string `json:"workloads"`
	// Systems are registered machine names ("tiger", "dmz", "longs", the
	// modern pack) or content-hash ids of loaded custom specs. ParseGrid
	// also accepts "@FILE" entries, which it loads, registers, and
	// replaces with their canonical id, so a grid that leaves the process
	// (sweep submissions, table titles) never references a local path.
	Systems []string `json:"systems"`
	// Ranks are the MPI task counts to sweep.
	Ranks []int `json:"ranks"`
	// Schemes are placement schemes in CLI form (affinity.ParseScheme).
	Schemes []string `json:"schemes"`
	// Scale is the problem scale, "quick" or "full".
	Scale string `json:"scale"`
	// Class, Steps, and N override workload defaults for every cell,
	// exactly like mcrun's -class/-steps/-n flags.
	Class string `json:"class,omitempty"`
	Steps int    `json:"steps,omitempty"`
	N     int    `json:"n,omitempty"`
}

// ParseGrid parses the CLI grid form: semicolon-separated k=v sections
// with comma-separated values, e.g.
//
//	workloads=stream,cg;systems=tiger,dmz;ranks=1,2,4;schemes=default,localalloc
//
// Optional sections: schemes (default "default"), class, steps, n. The
// scale is not part of the string; callers set it from their -scale
// flag. Values are validated (schemes and workload specs must parse,
// ranks must be positive) and deduplicated preserving first occurrence.
func ParseGrid(s string) (Grid, error) {
	g := Grid{}
	for _, section := range strings.Split(s, ";") {
		section = strings.TrimSpace(section)
		if section == "" {
			continue
		}
		k, v, ok := strings.Cut(section, "=")
		if !ok || v == "" {
			return Grid{}, fmt.Errorf("sweepd: grid section %q is not k=v", section)
		}
		switch k {
		case "workloads":
			g.Workloads = splitList(v)
		case "systems":
			g.Systems = splitList(v)
			for i, sys := range g.Systems {
				path, ok := strings.CutPrefix(sys, "@")
				if !ok {
					continue
				}
				id, _, err := machine.RegisterSpecFile(path)
				if err != nil {
					return Grid{}, fmt.Errorf("sweepd: system %q: %w", sys, err)
				}
				g.Systems[i] = id
			}
			// Two @FILEs with the same content collapse to one id:
			// re-dedup so the expanded list keeps the grid contract.
			g.Systems = splitList(strings.Join(g.Systems, ","))
		case "ranks":
			for _, rs := range splitList(v) {
				ns, err := parseRanks(rs)
				if err != nil {
					return Grid{}, err
				}
				g.Ranks = appendRanks(g.Ranks, ns)
			}
		case "schemes":
			g.Schemes = splitList(v)
		case "class":
			g.Class = v
		case "steps":
			n, err := strconv.Atoi(v)
			if err != nil || n < 0 {
				return Grid{}, fmt.Errorf("sweepd: bad steps %q", v)
			}
			g.Steps = n
		case "n":
			n, err := strconv.Atoi(v)
			if err != nil || n < 1 {
				return Grid{}, fmt.Errorf("sweepd: bad problem size %q", v)
			}
			g.N = n
		default:
			return Grid{}, fmt.Errorf("sweepd: unknown grid section %q (want workloads, systems, ranks, schemes, class, steps, n)", k)
		}
	}
	if len(g.Schemes) == 0 {
		g.Schemes = []string{affinity.Default.CLIName()}
	}
	if err := g.Validate(); err != nil {
		return Grid{}, err
	}
	return g, nil
}

// parseRanks parses one ranks list item: a single count ("4") or an
// inclusive range ("1..64"), the syntax that makes million-cell
// screening grids expressible on a command line.
func parseRanks(rs string) ([]int, error) {
	if lo, hi, ok := strings.Cut(rs, ".."); ok {
		a, err1 := strconv.Atoi(lo)
		b, err2 := strconv.Atoi(hi)
		if err1 != nil || err2 != nil || a < 1 || b < a {
			return nil, fmt.Errorf("sweepd: bad rank range %q (want lo..hi with 1 <= lo <= hi)", rs)
		}
		ns := make([]int, 0, b-a+1)
		for n := a; n <= b; n++ {
			ns = append(ns, n)
		}
		return ns, nil
	}
	n, err := strconv.Atoi(rs)
	if err != nil || n < 1 {
		return nil, fmt.Errorf("sweepd: bad rank count %q", rs)
	}
	return []int{n}, nil
}

// appendRanks appends deduplicating, preserving first occurrence —
// the same contract splitList gives the string dimensions.
func appendRanks(dst, ns []int) []int {
	seen := make(map[int]bool, len(dst))
	for _, n := range dst {
		seen[n] = true
	}
	for _, n := range ns {
		if !seen[n] {
			seen[n] = true
			dst = append(dst, n)
		}
	}
	return dst
}

func splitList(v string) []string {
	var out []string
	seen := map[string]bool{}
	for _, s := range strings.Split(v, ",") {
		s = strings.TrimSpace(s)
		if s == "" || seen[s] {
			continue
		}
		seen[s] = true
		out = append(out, s)
	}
	return out
}

// Validate checks every dimension of the grid parses; Scale may still be
// empty (callers fill it in from their -scale flag before Cells).
func (g Grid) Validate() error {
	if len(g.Workloads) == 0 {
		return fmt.Errorf("sweepd: grid has no workloads")
	}
	if len(g.Systems) == 0 {
		return fmt.Errorf("sweepd: grid has no systems")
	}
	if len(g.Ranks) == 0 {
		return fmt.Errorf("sweepd: grid has no rank counts")
	}
	for _, r := range g.Ranks {
		if r < 1 {
			return fmt.Errorf("sweepd: bad rank count %d", r)
		}
	}
	for _, sys := range g.Systems {
		if machine.Lookup(sys) == nil {
			return fmt.Errorf("sweepd: unknown system %q (registered: %s)",
				sys, strings.Join(machine.Names(), ", "))
		}
	}
	for _, w := range g.Workloads {
		spec, err := workload.ParseSpec(w)
		if err != nil {
			return err
		}
		// Resolve against the registry with the grid-wide overrides
		// applied, so an unknown workload or an invalid class/steps/n
		// fails the whole sweep at submission instead of rendering a
		// table of ERR cells.
		spec.Class, spec.Steps, spec.N = g.Class, g.Steps, g.N
		if _, err := workload.New(spec); err != nil {
			return err
		}
	}
	for _, sch := range g.Schemes {
		if _, err := affinity.ParseScheme(sch); err != nil {
			return err
		}
	}
	if g.Scale != "" {
		if _, err := experiments.ParseScale(g.Scale); err != nil {
			return err
		}
	}
	return nil
}

// String renders the canonical grid form; it round-trips through
// ParseGrid (modulo Scale, which ParseGrid leaves to the caller) and
// titles the results table, so it is part of the byte-identical output
// contract.
func (g Grid) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "workloads=%s;systems=%s;ranks=%s;schemes=%s",
		strings.Join(g.Workloads, ","), strings.Join(g.Systems, ","),
		joinInts(g.Ranks), strings.Join(g.Schemes, ","))
	if g.Class != "" {
		fmt.Fprintf(&b, ";class=%s", g.Class)
	}
	if g.Steps != 0 {
		fmt.Fprintf(&b, ";steps=%d", g.Steps)
	}
	if g.N != 0 {
		fmt.Fprintf(&b, ";n=%d", g.N)
	}
	if g.Scale != "" {
		fmt.Fprintf(&b, ";scale=%s", g.Scale)
	}
	return b.String()
}

// joinInts renders a ranks list, compressing runs of consecutive
// counts of length >= 3 to the lo..hi range form so a screening grid's
// canonical string (and table title) stays readable at a million cells.
// It round-trips through parseRanks.
func joinInts(ns []int) string {
	var ss []string
	for i := 0; i < len(ns); {
		j := i
		for j+1 < len(ns) && ns[j+1] == ns[j]+1 {
			j++
		}
		if j-i >= 2 {
			ss = append(ss, fmt.Sprintf("%d..%d", ns[i], ns[j]))
		} else {
			for ; i <= j; i++ {
				ss = append(ss, strconv.Itoa(ns[i]))
			}
		}
		i = j + 1
	}
	return strings.Join(ss, ",")
}

// CellSpec identifies one cell of a sweep on the wire. Workload carries
// the spec in CLI form; Class/Steps/N the grid-wide overrides; Scheme
// the CLI scheme name. Two equal CellSpecs must be byte-for-byte the
// same simulation.
type CellSpec struct {
	Workload string `json:"workload"`
	Class    string `json:"class,omitempty"`
	Steps    int    `json:"steps,omitempty"`
	N        int    `json:"n,omitempty"`
	System   string `json:"system"`
	Ranks    int    `json:"ranks"`
	Scheme   string `json:"scheme"`
	Scale    string `json:"scale"`
}

// Key is the canonical cell identity string; the coordinator dedups
// in-flight cells by it (joined with the sweep's fault plan and seed —
// see dedupKey) and tables index results by it.
func (c CellSpec) Key() string {
	spec, _ := workload.ParseSpec(c.Workload)
	spec.Class, spec.Steps, spec.N = c.Class, c.Steps, c.N
	return fmt.Sprintf("%s/%s/r%d/%s/%s", experiments.WorkloadKey(spec), c.System, c.Ranks, c.Scheme, c.Scale)
}

// Cells expands the grid in declared order: workload, then system, then
// ranks, then scheme — the row-major order of the results table.
func (g Grid) Cells() []CellSpec {
	var cells []CellSpec
	for _, w := range g.Workloads {
		for _, sys := range g.Systems {
			for _, r := range g.Ranks {
				for _, sch := range g.Schemes {
					cells = append(cells, CellSpec{
						Workload: w, Class: g.Class, Steps: g.Steps, N: g.N,
						System: sys, Ranks: r, Scheme: sch, Scale: g.Scale,
					})
				}
			}
		}
	}
	return cells
}
