package sweepd

import (
	"crypto/rand"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"net/http"
	"sort"
	"strconv"
	"sync"
	"time"

	"multicore/internal/analytic"
	"multicore/internal/machine"
	"multicore/internal/schema"
	"multicore/internal/sweepd/journal"
)

// CoordinatorOptions tunes the control plane. The zero value gives
// production defaults; tests shrink the lease to exercise expiry fast.
type CoordinatorOptions struct {
	// Lease is how long a worker may hold a cell without heartbeating
	// before the coordinator re-queues it. Default 15s.
	Lease time.Duration
	// MaxAttempts bounds lease assignments per cell (crashed workers,
	// transient failures); past it the cell finalizes as an error.
	// Default 5.
	MaxAttempts int
	// PollWait caps a worker long-poll. Default 5s.
	PollWait time.Duration
	// Logf receives coordinator events; nil discards them.
	Logf func(format string, args ...any)

	// StateDir, when non-empty, makes the coordinator durable: sweep
	// submissions, cell finalizations, and lease attempts journal to
	// StateDir, and NewCoordinator replays them so a SIGKILL'd
	// coordinator restarts to the exact queue state — re-leasing only
	// unfinished cells and resuming client streams by token.
	StateDir string
	// SyncEvery batches journal fsyncs: one per this many records
	// (the janitor also syncs every tick). Default 64.
	SyncEvery int
	// SnapshotEvery compacts the journal into a snapshot after this many
	// records. Default 4096.
	SnapshotEvery int

	// MaxInflightPerClient caps one client's outstanding (not yet
	// finalized) simulated cells across its live sweeps; a submission
	// that would exceed it is rejected with 429 and a Retry-After of
	// RetryAfter. 0 means no quota.
	MaxInflightPerClient int
	// RetryAfter is the backoff hinted to quota-rejected clients.
	// Default 5s.
	RetryAfter time.Duration

	// SweepRetention is how long a sweep outlives its last connected
	// client before the janitor drops it (its resume window). Default
	// 15m.
	SweepRetention time.Duration
	// PingEvery is the stream keepalive interval. Default 5s.
	PingEvery time.Duration

	// QuarantineAfter is how many consecutive lease expiries a failure
	// domain absorbs before it is quarantined. Default 3.
	QuarantineAfter int
	// QuarantineBackoff is the first quarantine duration; it doubles per
	// consecutive quarantine, capped at 16x. Default 30s.
	QuarantineBackoff time.Duration
}

func (o CoordinatorOptions) withDefaults() CoordinatorOptions {
	if o.Lease <= 0 {
		o.Lease = 15 * time.Second
	}
	if o.MaxAttempts <= 0 {
		o.MaxAttempts = 5
	}
	if o.PollWait <= 0 {
		o.PollWait = 5 * time.Second
	}
	if o.Logf == nil {
		o.Logf = func(string, ...any) {}
	}
	if o.SyncEvery <= 0 {
		o.SyncEvery = 64
	}
	if o.SnapshotEvery <= 0 {
		o.SnapshotEvery = 4096
	}
	if o.RetryAfter <= 0 {
		o.RetryAfter = 5 * time.Second
	}
	if o.SweepRetention <= 0 {
		o.SweepRetention = 15 * time.Minute
	}
	if o.PingEvery <= 0 {
		o.PingEvery = 5 * time.Second
	}
	if o.QuarantineAfter <= 0 {
		o.QuarantineAfter = 3
	}
	if o.QuarantineBackoff <= 0 {
		o.QuarantineBackoff = 30 * time.Second
	}
	return o
}

// cell lifecycle states.
const (
	cellQueued = iota
	cellLeased
	cellDone
)

// cellState is one deduplicated cell execution: however many concurrent
// sweeps reference it (refs), it is queued, leased, and completed once.
type cellState struct {
	asg    Assignment // Attempt tracks the current lease generation
	state  int
	refs   int
	prio   int // max priority across referencing sweeps
	worker string
	expiry time.Time
	result *CellResult
	sweeps []*sweepState // live sweeps awaiting this cell
}

// workerState is one registered worker.
type workerState struct {
	name     string
	domain   string
	lastSeen time.Time
}

// domainState tracks one failure domain's health. Consecutive lease
// expiries anywhere in the domain quarantine it — polls are turned away
// with a retry hint — for an exponentially growing backoff; any
// successful completion from the domain resets both counter and
// backoff.
type domainState struct {
	workers     int
	expiries    int // consecutive, since the last success
	until       time.Time
	backoff     time.Duration
	quarantines int
}

// sweepState is one submitted sweep, living server-side so its NDJSON
// stream survives client disconnects: a reconnecting client resumes by
// token and replays results. The janitor drops sweeps idle past
// SweepRetention.
type sweepState struct {
	token   string
	req     SweepRequest
	prio    int
	ids     []string     // unique dedup keys of the simulated (promoted) cells
	settled []CellResult // screening-tier results, streamed on every (re)attach
	results map[string]CellResult
	sum     Summary
	done    bool
	subs    map[chan CellResult]bool
	idle    time.Time // when the last subscriber detached; zero while attached
}

// journalRecord is one durable state transition. Types: "sweep" (a
// submission: token + full request), "final" (a cell finalized),
// "lease" (a cell leased at an attempt number, so restart preserves the
// attempt budget), "done" (a sweep completed), "drop" (a sweep
// retired). Replay over a snapshot is idempotent.
type journalRecord struct {
	T       string        `json:"t"`
	Token   string        `json:"token,omitempty"`
	Req     *SweepRequest `json:"req,omitempty"`
	ID      string        `json:"id,omitempty"`
	Attempt int           `json:"attempt,omitempty"`
	Res     *CellResult   `json:"res,omitempty"`
}

// persistedState is the snapshot payload: everything needed to rebuild
// the coordinator minus what is recomputed (screened results re-screen
// deterministically; queue membership falls out of sweeps minus
// finalized results).
type persistedState struct {
	Sweeps    []persistedSweep      `json:"sweeps"`
	Results   map[string]CellResult `json:"results,omitempty"`
	Attempts  map[string]int        `json:"attempts,omitempty"`
	Finals    map[string]string     `json:"finals,omitempty"`
	Divergent int                   `json:"divergent,omitempty"`
	DoneCells int                   `json:"done_cells,omitempty"`
}

type persistedSweep struct {
	Token string       `json:"token"`
	Req   SweepRequest `json:"req"`
	Done  bool         `json:"done,omitempty"`
}

// Coordinator shards sweep cells across registered workers. It is pure
// control plane: results live in the workers' shared store (and
// in-memory only while a sweep still needs them). With StateDir set it
// is also durable — queue state survives SIGKILL via journal replay.
type Coordinator struct {
	opts CoordinatorOptions
	// est screens grids submitted with Screen set; the estimator's
	// layout/profile caches are shared across sweeps (it is safe for
	// concurrent use), so repeated screening submissions price cells
	// from warm caches.
	est *analytic.Estimator
	jn  *journal.Journal // nil when not durable
	// instance suffixes worker IDs in durable mode so IDs from before a
	// restart can never alias freshly issued ones.
	instance string

	mu         sync.Mutex
	cells      map[string]*cellState
	queue      *fairQueue
	sweeps     map[string]*sweepState
	sweepOrder []string
	workers    map[string]*workerState
	domains    map[string]*domainState
	nextWorker int
	divergent  int
	doneCells  int
	finals     map[string]string // finalized cell id → fingerprint
	wake       chan struct{}
	unsynced   int
	restoring  bool // suppress journal writes during replay

	stop     chan struct{}
	stopOnce sync.Once
}

// NewCoordinator builds a coordinator and starts its lease janitor
// (stopped by Close). With opts.StateDir set it first replays the
// journal there, restoring live sweeps and re-queueing every cell that
// was not finalized before the previous process died.
func NewCoordinator(opts CoordinatorOptions) (*Coordinator, error) {
	c := &Coordinator{
		opts:    opts.withDefaults(),
		est:     analytic.New(),
		cells:   map[string]*cellState{},
		queue:   newFairQueue(),
		sweeps:  map[string]*sweepState{},
		workers: map[string]*workerState{},
		domains: map[string]*domainState{},
		finals:  map[string]string{},
		wake:    make(chan struct{}),
		stop:    make(chan struct{}),
	}
	if opts.StateDir != "" {
		c.instance = randomHex(2)
		jn, snapshot, records, err := journal.Open(opts.StateDir)
		if err != nil {
			return nil, err
		}
		c.jn = jn
		if err := c.restore(snapshot, records); err != nil {
			jn.Close()
			return nil, err
		}
	}
	go c.janitor()
	return c, nil
}

func randomHex(n int) string {
	b := make([]byte, n)
	rand.Read(b)
	return hex.EncodeToString(b)
}

// Close stops the lease janitor and syncs the journal. In-flight HTTP
// requests are the server's to drain.
func (c *Coordinator) Close() {
	c.stopOnce.Do(func() {
		close(c.stop)
		if c.jn != nil {
			c.mu.Lock()
			c.jn.Close()
			c.jn = nil
			c.mu.Unlock()
		}
	})
}

// crash abandons the coordinator without syncing or closing the
// journal — the in-process equivalent of SIGKILL, used by crash-restart
// tests and the stress harness. The journal file handle leaks until the
// process exits, exactly as a kill would leave it.
func (c *Coordinator) crash() { c.stopOnce.Do(func() { close(c.stop) }) }

// restore rebuilds state from a snapshot plus journal records. Replay
// is idempotent: records already reflected in the snapshot re-apply
// harmlessly (the snapshot/truncate crash window leaves such records).
func (c *Coordinator) restore(snapshot []byte, records [][]byte) error {
	ps := persistedState{Results: map[string]CellResult{}, Finals: map[string]string{}, Attempts: map[string]int{}}
	if len(snapshot) > 0 {
		if err := json.Unmarshal(snapshot, &ps); err != nil {
			return fmt.Errorf("sweepd: decoding snapshot: %v", err)
		}
		if ps.Results == nil {
			ps.Results = map[string]CellResult{}
		}
		if ps.Finals == nil {
			ps.Finals = map[string]string{}
		}
		if ps.Attempts == nil {
			ps.Attempts = map[string]int{}
		}
	}
	byToken := map[string]int{}
	for i, sw := range ps.Sweeps {
		byToken[sw.Token] = i
	}
	for _, raw := range records {
		var rec journalRecord
		if err := json.Unmarshal(raw, &rec); err != nil {
			continue // CRC passed but content unreadable: skip, don't abort recovery
		}
		switch rec.T {
		case "sweep":
			if _, ok := byToken[rec.Token]; !ok && rec.Req != nil {
				byToken[rec.Token] = len(ps.Sweeps)
				ps.Sweeps = append(ps.Sweeps, persistedSweep{Token: rec.Token, Req: *rec.Req})
			}
		case "final":
			if rec.Res == nil {
				continue
			}
			if _, ok := ps.Results[rec.ID]; !ok {
				ps.DoneCells++
			}
			ps.Results[rec.ID] = *rec.Res
			ps.Finals[rec.ID] = rec.Res.Fingerprint
			delete(ps.Attempts, rec.ID)
		case "lease":
			if rec.Attempt > ps.Attempts[rec.ID] {
				ps.Attempts[rec.ID] = rec.Attempt
			}
		case "done":
			if i, ok := byToken[rec.Token]; ok {
				ps.Sweeps[i].Done = true
			}
		case "drop":
			if i, ok := byToken[rec.Token]; ok {
				ps.Sweeps[i].Token = "" // tombstone; skipped below
				delete(byToken, rec.Token)
			}
		}
	}

	c.mu.Lock()
	defer c.mu.Unlock()
	c.restoring = true
	defer func() { c.restoring = false }()
	c.finals = ps.Finals
	c.divergent = ps.Divergent
	c.doneCells = ps.DoneCells
	restored := 0
	for _, p := range ps.Sweeps {
		if p.Token == "" {
			continue
		}
		sw, err := c.buildSweepLocked(p.Token, p.Req, ps.Results)
		if err != nil {
			c.opts.Logf("restore: dropping sweep %s: %v", p.Token, err)
			continue
		}
		if p.Done {
			sw.done = true
		}
		sw.idle = time.Now() // retention clock runs until a client resumes
		restored++
	}
	// Preserved attempt counts keep the lease budget honest across the
	// restart: a cell that burned attempts before the crash does not get
	// a fresh budget.
	for id, at := range ps.Attempts {
		if st, ok := c.cells[id]; ok && st.state == cellQueued && at > st.asg.Attempt {
			st.asg.Attempt = at
		}
	}
	if restored > 0 {
		c.opts.Logf("restored %d sweeps from %s: %d cells done, %d queued",
			restored, c.opts.StateDir, len(ps.Results), c.queue.len())
	}
	// Compact: the rebuilt state is the new snapshot; the journal restarts
	// empty.
	return c.snapshotLocked()
}

// journalLocked appends one record, batching fsyncs and compacting into
// a snapshot past the configured thresholds. Callers hold c.mu. No-op
// when not durable or while restoring.
func (c *Coordinator) journalLocked(rec journalRecord) {
	if c.jn == nil || c.restoring {
		return
	}
	b, err := json.Marshal(rec)
	if err != nil {
		c.opts.Logf("journal encode failed: %v", err)
		return
	}
	if err := c.jn.Append(b); err != nil {
		c.opts.Logf("journal append failed: %v", err)
		return
	}
	c.unsynced++
	if c.unsynced >= c.opts.SyncEvery {
		if err := c.jn.Sync(); err != nil {
			c.opts.Logf("journal sync failed: %v", err)
		}
		c.unsynced = 0
	}
	if c.jn.Records() >= c.opts.SnapshotEvery {
		if err := c.snapshotLocked(); err != nil {
			c.opts.Logf("snapshot failed: %v", err)
		}
	}
}

// snapshotLocked compacts current state into the snapshot file and
// truncates the journal. Callers hold c.mu.
func (c *Coordinator) snapshotLocked() error {
	if c.jn == nil {
		return nil
	}
	ps := persistedState{
		Finals:    c.finals,
		Divergent: c.divergent,
		DoneCells: c.doneCells,
		Results:   map[string]CellResult{},
		Attempts:  map[string]int{},
	}
	for _, token := range c.sweepOrder {
		sw, ok := c.sweeps[token]
		if !ok {
			continue
		}
		ps.Sweeps = append(ps.Sweeps, persistedSweep{Token: token, Req: sw.req, Done: sw.done})
	}
	for id, st := range c.cells {
		if st.state == cellDone && st.result != nil {
			ps.Results[id] = *st.result
		} else if st.asg.Attempt > 0 {
			ps.Attempts[id] = st.asg.Attempt
		}
	}
	b, err := json.Marshal(ps)
	if err != nil {
		return fmt.Errorf("sweepd: encoding snapshot: %v", err)
	}
	if err := c.jn.Snapshot(b); err != nil {
		return err
	}
	c.unsynced = 0
	return nil
}

// janitor re-queues expired leases even when no worker is polling (so a
// sweep whose only worker died still completes once a worker returns),
// drops sweeps idle past retention, and syncs the journal.
func (c *Coordinator) janitor() {
	interval := c.opts.Lease / 4
	if interval < 10*time.Millisecond {
		interval = 10 * time.Millisecond
	}
	t := time.NewTicker(interval)
	defer t.Stop()
	for {
		select {
		case <-c.stop:
			return
		case <-t.C:
			c.mu.Lock()
			c.reapExpiredLocked()
			c.gcSweepsLocked()
			if c.jn != nil && c.unsynced > 0 {
				c.jn.Sync()
				c.unsynced = 0
			}
			c.mu.Unlock()
		}
	}
}

// signalLocked wakes every long-poller; callers hold c.mu.
func (c *Coordinator) signalLocked() {
	close(c.wake)
	c.wake = make(chan struct{})
}

// reapExpiredLocked re-queues (or, past the attempt budget, fails) every
// leased cell whose worker stopped heartbeating, charging the expiry to
// the worker's failure domain. Callers hold c.mu.
func (c *Coordinator) reapExpiredLocked() {
	now := time.Now()
	woke := false
	for id, st := range c.cells {
		if st.state != cellLeased || now.Before(st.expiry) {
			continue
		}
		c.opts.Logf("lease expired: cell %s attempt %d on worker %s", id, st.asg.Attempt, st.worker)
		c.chargeDomainLocked(st.worker, now)
		if st.asg.Attempt >= c.opts.MaxAttempts {
			res := resultFor(st.asg.Cell, 0, fmt.Errorf(
				"sweepd: cell lease expired %d times (last worker %s); giving up", st.asg.Attempt, st.worker))
			res.Attempt = st.asg.Attempt
			c.finalizeLocked(id, st, res)
			continue
		}
		st.state = cellQueued
		st.worker = ""
		c.queue.push(id, st.prio)
		woke = true
	}
	if woke {
		c.signalLocked()
	}
}

// maxQuarantineBackoff caps the exponential quarantine growth at 16x
// the base.
const maxQuarantineDoublings = 4

// chargeDomainLocked attributes one lease expiry to the worker's
// failure domain, quarantining it once expiries hit the threshold.
// Callers hold c.mu.
func (c *Coordinator) chargeDomainLocked(worker string, now time.Time) {
	ws, ok := c.workers[worker]
	if !ok {
		return
	}
	ds := c.domains[ws.domain]
	if ds == nil {
		return
	}
	ds.expiries++
	if ds.expiries < c.opts.QuarantineAfter {
		return
	}
	ds.expiries = 0
	if ds.backoff <= 0 {
		ds.backoff = c.opts.QuarantineBackoff
	} else if ds.backoff < c.opts.QuarantineBackoff<<maxQuarantineDoublings {
		ds.backoff *= 2
	}
	ds.until = now.Add(ds.backoff)
	ds.quarantines++
	c.opts.Logf("QUARANTINE domain %s for %s (%d consecutive lease expiries, quarantine #%d)",
		ws.domain, ds.backoff, c.opts.QuarantineAfter, ds.quarantines)
}

// gcSweepsLocked retires sweeps whose last client detached more than
// SweepRetention ago, releasing their cell references. Callers hold
// c.mu.
func (c *Coordinator) gcSweepsLocked() {
	now := time.Now()
	for token, sw := range c.sweeps {
		if len(sw.subs) > 0 || sw.idle.IsZero() || now.Sub(sw.idle) < c.opts.SweepRetention {
			continue
		}
		c.dropSweepLocked(token, sw)
	}
}

// dropSweepLocked removes a sweep and its cell references: unreferenced
// queued cells are dequeued (nobody wants them), unreferenced done
// cells evicted (the store has them), leased cells left to complete
// (the worker will persist to the store either way). Callers hold c.mu.
func (c *Coordinator) dropSweepLocked(token string, sw *sweepState) {
	c.opts.Logf("dropping sweep %s (idle past retention, %d/%d cells done)",
		token, len(sw.results), len(sw.ids))
	c.journalLocked(journalRecord{T: "drop", Token: token})
	delete(c.sweeps, token)
	for i, t := range c.sweepOrder {
		if t == token {
			c.sweepOrder = append(c.sweepOrder[:i], c.sweepOrder[i+1:]...)
			break
		}
	}
	for _, id := range sw.ids {
		st, ok := c.cells[id]
		if !ok {
			continue
		}
		st.refs--
		for i, s := range st.sweeps {
			if s == sw {
				st.sweeps = append(st.sweeps[:i], st.sweeps[i+1:]...)
				break
			}
		}
		if st.refs <= 0 {
			switch st.state {
			case cellQueued:
				c.queue.remove(id)
				delete(c.cells, id)
			case cellDone:
				delete(c.cells, id)
			}
		}
	}
}

// finalizeLocked completes a cell: records the result, journals it,
// notifies every referencing sweep, and evicts the state once no sweep
// references it. Callers hold c.mu.
func (c *Coordinator) finalizeLocked(id string, st *cellState, res CellResult) {
	st.state = cellDone
	st.result = &res
	c.doneCells++
	c.rememberFinalLocked(id, res.Fingerprint)
	c.journalLocked(journalRecord{T: "final", ID: id, Res: &res})
	for _, sw := range st.sweeps {
		c.adoptLocked(sw, id, res)
	}
	st.sweeps = nil
	if st.refs <= 0 {
		delete(c.cells, id)
	}
}

// adoptLocked delivers a finalized result into one sweep: records it,
// updates the sweep summary, fans it out to attached subscribers, and
// completes the sweep when the grid is full. Callers hold c.mu.
func (c *Coordinator) adoptLocked(sw *sweepState, id string, res CellResult) {
	if sw.done {
		return
	}
	if _, ok := sw.results[id]; ok {
		return
	}
	// Every leased cell of a screened sweep is there because the
	// screening tier promoted it.
	res.Promoted = sw.req.Screen
	sw.results[id] = res
	switch res.Status {
	case StatusInfeasible:
		sw.sum.Infeasible++
	case StatusError:
		sw.sum.Errors++
	}
	if res.Simulated {
		sw.sum.Simulated++
	} else if res.Status != StatusError {
		sw.sum.StoreHits++
	}
	for ch := range sw.subs {
		ch <- res // buffered for every cell; never blocks
	}
	if len(sw.results) == len(sw.ids) {
		sw.done = true
		c.journalLocked(journalRecord{T: "done", Token: sw.token})
		c.opts.Logf("sweep %s complete: %d cells, %d simulated, %d store hits, %d errors",
			sw.token, sw.sum.Cells, sw.sum.Simulated, sw.sum.StoreHits, sw.sum.Errors)
	}
}

// maxFinals bounds the finalized-fingerprint memory used for the
// determinism cross-check on late duplicate completions. Past the bound
// the map resets: losing old fingerprints only disables the cross-check
// for leases stale by thousands of cells, never correctness.
const maxFinals = 65536

// rememberFinalLocked records a finalized cell's fingerprint so a stale
// worker completing the same cell after eviction is still cross-checked
// for divergence. Callers hold c.mu.
func (c *Coordinator) rememberFinalLocked(id, fingerprint string) {
	if len(c.finals) >= maxFinals {
		c.finals = map[string]string{}
	}
	c.finals[id] = fingerprint
}

// Handler returns the coordinator's HTTP API.
func (c *Coordinator) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST "+PathSweep, c.handleSweep)
	mux.HandleFunc("POST "+PathRegister, c.handleRegister)
	mux.HandleFunc("POST "+PathPoll, c.handlePoll)
	mux.HandleFunc("POST "+PathComplete, c.handleComplete)
	mux.HandleFunc("POST "+PathHeartbeat, c.handleHeartbeat)
	mux.HandleFunc("GET "+PathStatus, c.handleStatus)
	mux.HandleFunc("GET "+PathHealthz, func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprintln(w, "ok")
	})
	return mux
}

func decode[T any](w http.ResponseWriter, r *http.Request, v *T) bool {
	if err := json.NewDecoder(r.Body).Decode(v); err != nil {
		http.Error(w, fmt.Sprintf("sweepd: decoding request: %v", err), http.StatusBadRequest)
		return false
	}
	return true
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(v)
}

// buildSweepLocked validates a request, screens it if asked, registers
// it under token, and attaches its cells: existing executions gain a
// reference, already-finalized ones adopt immediately, new ones queue
// at the sweep's priority. finals, when non-nil (restore), supplies
// pre-crash results for cells this sweep should see as done. Callers
// hold c.mu.
func (c *Coordinator) buildSweepLocked(token string, req SweepRequest, finals map[string]CellResult) (*sweepState, error) {
	for id, raw := range req.Specs {
		got, _, err := machine.RegisterSpecJSON(raw)
		if err != nil {
			return nil, fmt.Errorf("sweepd: custom spec %s: %v", id, err)
		}
		if got != id {
			return nil, fmt.Errorf("sweepd: custom spec id %s does not match its content (canonical id %s)", id, got)
		}
	}
	if err := req.Grid.Validate(); err != nil {
		return nil, err
	}
	cells := req.Grid.Cells()
	sw := &sweepState{
		token:   token,
		req:     req,
		prio:    clampPriority(req.Priority),
		results: map[string]CellResult{},
		subs:    map[chan CellResult]bool{},
	}
	sw.sum.Cells = len(cells)

	// Screening tier: price the whole grid in-process and lease only the
	// promoted cells. ScreenGrid is deterministic, so a restore replays
	// it instead of journaling a million settled results.
	if req.Screen {
		decisions := ScreenGrid(c.est, req.Grid, ScreenOptions{
			PromoteMargin:    req.PromoteMargin,
			UncertaintyBound: req.UncertaintyBound,
		})
		cells = cells[:0]
		for _, d := range decisions {
			if d.Promote {
				cells = append(cells, d.Cell)
				continue
			}
			sw.settled = append(sw.settled, d.Result)
			switch d.Result.Status {
			case StatusInfeasible:
				sw.sum.Infeasible++
			case StatusError:
				sw.sum.Errors++
			}
		}
		sw.sum.Screened = len(sw.settled)
		sw.sum.Promoted = len(cells)
	}

	// Fix the full id set before adopting any result: adoption checks
	// len(results) against len(ids) for sweep completion, so ids must be
	// complete first.
	seen := map[string]bool{}
	uniq := cells[:0]
	for _, cell := range cells {
		id := dedupKey(cell, req.Faults, req.FaultSeed, req.Retries)
		if seen[id] {
			continue
		}
		seen[id] = true
		sw.ids = append(sw.ids, id)
		uniq = append(uniq, cell)
	}
	queued := false
	for i, cell := range uniq {
		id := sw.ids[i]
		st, ok := c.cells[id]
		if !ok {
			st = &cellState{asg: Assignment{
				ID: id, Cell: cell,
				Faults: req.Faults, FaultSeed: req.FaultSeed, Retries: req.Retries,
			}, prio: sw.prio}
			// Custom machines travel inside the lease so a worker that has
			// never seen this spec can still run the cell.
			if raw, isCustom := machine.CustomSpecJSON(cell.System); isCustom {
				st.asg.Spec = raw
			}
			c.cells[id] = st
			if res, done := finals[id]; done {
				st.state = cellDone
				st.result = &res
			} else {
				c.queue.push(id, sw.prio)
				queued = true
			}
		}
		st.refs++
		if st.state == cellDone {
			res := *st.result
			if finals == nil {
				// This sweep did not cause the simulation; for its summary the
				// cell is a cache hit, exactly as if a worker had served it
				// from the shared store.
				res.Simulated = false
			}
			c.adoptLocked(sw, id, res)
		} else {
			st.sweeps = append(st.sweeps, sw)
			if st.state == cellQueued && sw.prio > st.prio {
				c.queue.promote(id, st.prio, sw.prio)
			}
			if sw.prio > st.prio {
				st.prio = sw.prio
			}
		}
	}
	if len(sw.ids) == 0 && !sw.done {
		sw.done = true
		c.journalLocked(journalRecord{T: "done", Token: token})
	}
	c.sweeps[token] = sw
	c.sweepOrder = append(c.sweepOrder, token)
	if queued {
		c.signalLocked()
	}
	return sw, nil
}

// inflightLocked sums a client's outstanding (unfinalized) cells across
// its live sweeps. Callers hold c.mu.
func (c *Coordinator) inflightLocked(client string) int {
	n := 0
	for _, sw := range c.sweeps {
		if sw.done || sw.req.Client != client {
			continue
		}
		n += len(sw.ids) - len(sw.results)
	}
	return n
}

// attachLocked registers a new subscriber stream on a sweep, returning
// the already-finalized results to replay and how many more to expect.
// The channel is buffered for every cell so finalization never blocks.
// Callers hold c.mu.
func (c *Coordinator) attachLocked(sw *sweepState) (replay []CellResult, remaining int, ch chan CellResult) {
	ch = make(chan CellResult, len(sw.ids))
	sw.subs[ch] = true
	sw.idle = time.Time{}
	replay = make([]CellResult, 0, len(sw.results))
	for _, res := range sw.results {
		replay = append(replay, res)
	}
	return replay, len(sw.ids) - len(replay), ch
}

// detach removes a subscriber; the last one out starts the retention
// clock.
func (c *Coordinator) detach(sw *sweepState, ch chan CellResult) {
	c.mu.Lock()
	defer c.mu.Unlock()
	delete(sw.subs, ch)
	if len(sw.subs) == 0 {
		sw.idle = time.Now()
	}
}

// handleSweep validates a submission (or a resume), attaches a stream,
// and sends NDJSON events until the grid is full: "start" with the
// resume token, the replay, live completions with "ping" keepalives,
// then "done".
func (c *Coordinator) handleSweep(w http.ResponseWriter, r *http.Request) {
	var req SweepRequest
	if !decode(w, r, &req) {
		return
	}
	if req.Resume != "" {
		c.mu.Lock()
		sw, ok := c.sweeps[req.Resume]
		if !ok {
			c.mu.Unlock()
			http.Error(w, fmt.Sprintf("sweepd: unknown resume token %q", req.Resume), http.StatusNotFound)
			return
		}
		replay, remaining, ch := c.attachLocked(sw)
		c.mu.Unlock()
		c.opts.Logf("sweep %s resumed: replaying %d results, %d outstanding", sw.token, len(replay), remaining)
		c.streamSweep(w, r, sw, replay, remaining, ch)
		return
	}
	if err := schema.Check("sweep request", req.SchemaVersion); err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	if req.Grid.Scale == "" {
		http.Error(w, "sweepd: sweep grid has no scale", http.StatusBadRequest)
		return
	}
	if req.Screen && req.Faults != "" {
		http.Error(w, "sweepd: screening estimates cannot price fault plans (drop -faults or screening)", http.StatusBadRequest)
		return
	}
	// Register shipped custom machines and validate the grid before
	// admission control touches it. An id that does not match its
	// content is a client bug (or tampering) and rejects the whole
	// sweep. buildSweepLocked repeats both checks for the restore path.
	for id, raw := range req.Specs {
		got, _, err := machine.RegisterSpecJSON(raw)
		if err != nil {
			http.Error(w, fmt.Sprintf("sweepd: custom spec %s: %v", id, err), http.StatusBadRequest)
			return
		}
		if got != id {
			http.Error(w, fmt.Sprintf("sweepd: custom spec id %s does not match its content (canonical id %s)", id, got), http.StatusBadRequest)
			return
		}
	}
	if err := req.Grid.Validate(); err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}

	c.mu.Lock()
	// Admission control: reject before building any state, counting the
	// promoted cells this sweep would add. Screened grids admit by their
	// post-screen footprint, so a million-cell screened sweep with a
	// small promoted set passes a small quota.
	if max := c.opts.MaxInflightPerClient; max > 0 {
		have := c.inflightLocked(req.Client)
		add := len(req.Grid.Cells()) // pre-screen upper bound
		if have+add > max && req.Screen {
			// Screening is deterministic and cheap; price it to get the
			// real footprint before rejecting.
			add = 0
			for _, d := range ScreenGrid(c.est, req.Grid, ScreenOptions{
				PromoteMargin:    req.PromoteMargin,
				UncertaintyBound: req.UncertaintyBound,
			}) {
				if d.Promote {
					add++
				}
			}
		}
		if have+add > max {
			c.mu.Unlock()
			secs := int(c.opts.RetryAfter.Seconds())
			if secs < 1 {
				secs = 1
			}
			w.Header().Set("Retry-After", strconv.Itoa(secs))
			http.Error(w, fmt.Sprintf(
				"sweepd: client %q over in-flight cell quota (%d in flight + %d requested > %d)",
				req.Client, have, add, max), http.StatusTooManyRequests)
			return
		}
	}
	token := "s" + randomHex(6)
	c.journalLocked(journalRecord{T: "sweep", Token: token, Req: &req})
	sw, err := c.buildSweepLocked(token, req, nil)
	if err != nil {
		c.mu.Unlock()
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	replay, remaining, ch := c.attachLocked(sw)
	c.mu.Unlock()

	if req.Screen {
		c.opts.Logf("sweep %s screened: %d cells settled analytically, %d promoted to simulation (%s)",
			token, sw.sum.Screened, sw.sum.Promoted, req.Grid)
	} else {
		c.opts.Logf("sweep %s submitted: %d cells (%s)", token, sw.sum.Cells, req.Grid)
	}
	c.streamSweep(w, r, sw, replay, remaining, ch)
}

// streamSweep owns one client connection: start event, settled results,
// replay, then live completions and pings until the sweep is full or
// the client leaves.
func (c *Coordinator) streamSweep(w http.ResponseWriter, r *http.Request, sw *sweepState, replay []CellResult, remaining int, ch chan CellResult) {
	defer c.detach(sw, ch)
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)
	flusher, _ := w.(http.Flusher)
	enc := json.NewEncoder(w)
	emit := func(ev StreamEvent) bool {
		if err := enc.Encode(ev); err != nil {
			return false
		}
		if flusher != nil {
			flusher.Flush()
		}
		return true
	}
	if !emit(StreamEvent{Type: "start", Token: sw.token, PingMillis: c.opts.PingEvery.Milliseconds()}) {
		return
	}
	for i := range sw.settled {
		if !emit(StreamEvent{Type: "cell", Cell: &sw.settled[i]}) {
			return
		}
	}
	for i := range replay {
		if !emit(StreamEvent{Type: "cell", Cell: &replay[i]}) {
			return
		}
	}
	ping := time.NewTicker(c.opts.PingEvery)
	defer ping.Stop()
	for remaining > 0 {
		select {
		case res := <-ch:
			remaining--
			if !emit(StreamEvent{Type: "cell", Cell: &res}) {
				return // client gone; the sweep stays resumable
			}
		case <-ping.C:
			if !emit(StreamEvent{Type: "ping"}) {
				return
			}
		case <-r.Context().Done():
			return
		}
	}
	c.mu.Lock()
	sum := sw.sum
	sum.Divergent = c.divergent
	c.mu.Unlock()
	emit(StreamEvent{Type: "done", Summary: &sum})
}

func (c *Coordinator) handleRegister(w http.ResponseWriter, r *http.Request) {
	var req RegisterRequest
	if !decode(w, r, &req) {
		return
	}
	if err := schema.Check("worker registration", req.SchemaVersion); err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	domain := req.Domain
	if domain == "" {
		domain = "default"
	}
	c.mu.Lock()
	c.nextWorker++
	id := fmt.Sprintf("w%d", c.nextWorker)
	if c.instance != "" {
		// Durable coordinators suffix worker IDs with the process
		// incarnation so a zombie worker from before a restart can never
		// be mistaken for a freshly registered one.
		id += "-" + c.instance
	}
	c.workers[id] = &workerState{name: req.Name, domain: domain, lastSeen: time.Now()}
	ds := c.domains[domain]
	if ds == nil {
		ds = &domainState{}
		c.domains[domain] = ds
	}
	ds.workers++
	c.mu.Unlock()
	c.opts.Logf("worker registered: %s (%s, domain %s)", id, req.Name, domain)
	writeJSON(w, RegisterResponse{Worker: id, LeaseMillis: c.opts.Lease.Milliseconds()})
}

// knownWorker checks registration; unknown IDs (a coordinator restart)
// get 404 so the worker re-registers.
func (c *Coordinator) knownWorker(w http.ResponseWriter, id string) bool {
	c.mu.Lock()
	ws, ok := c.workers[id]
	if ok {
		ws.lastSeen = time.Now()
	}
	c.mu.Unlock()
	if !ok {
		http.Error(w, fmt.Sprintf("sweepd: unknown worker %q (re-register)", id), http.StatusNotFound)
	}
	return ok
}

// quarantinedLocked reports how long the worker's domain remains
// quarantined (0 = not quarantined). Callers hold c.mu.
func (c *Coordinator) quarantinedLocked(worker string, now time.Time) time.Duration {
	ws, ok := c.workers[worker]
	if !ok {
		return 0
	}
	ds := c.domains[ws.domain]
	if ds == nil || now.After(ds.until) {
		return 0
	}
	return ds.until.Sub(now)
}

// popLocked leases the weighted-fair queue's next cell to a worker,
// journaling the attempt so a restart preserves the lease budget.
// Callers hold c.mu.
func (c *Coordinator) popLocked(worker string) *Assignment {
	for {
		id, ok := c.queue.pop()
		if !ok {
			return nil
		}
		st, ok := c.cells[id]
		if !ok || st.state != cellQueued {
			continue // evicted or already handled
		}
		st.state = cellLeased
		st.worker = worker
		st.expiry = time.Now().Add(c.opts.Lease)
		st.asg.Attempt++
		c.journalLocked(journalRecord{T: "lease", ID: id, Attempt: st.asg.Attempt})
		asg := st.asg
		return &asg
	}
}

func (c *Coordinator) handlePoll(w http.ResponseWriter, r *http.Request) {
	var req PollRequest
	if !decode(w, r, &req) {
		return
	}
	if !c.knownWorker(w, req.Worker) {
		return
	}
	wait := time.Duration(req.WaitMillis) * time.Millisecond
	if wait <= 0 || wait > c.opts.PollWait {
		wait = c.opts.PollWait
	}
	deadline := time.Now().Add(wait)
	for {
		c.mu.Lock()
		c.reapExpiredLocked()
		if q := c.quarantinedLocked(req.Worker, time.Now()); q > 0 {
			c.mu.Unlock()
			writeJSON(w, PollResponse{RetryAfterMillis: q.Milliseconds() + 1})
			return
		}
		asg := c.popLocked(req.Worker)
		wake := c.wake
		c.mu.Unlock()
		if asg != nil {
			c.opts.Logf("leased cell %s attempt %d to %s", asg.ID, asg.Attempt, req.Worker)
			writeJSON(w, PollResponse{Assignment: asg})
			return
		}
		remain := time.Until(deadline)
		if remain <= 0 {
			writeJSON(w, PollResponse{})
			return
		}
		t := time.NewTimer(remain)
		select {
		case <-wake:
			t.Stop()
		case <-t.C:
		case <-r.Context().Done():
			t.Stop()
			writeJSON(w, PollResponse{})
			return
		}
	}
}

func (c *Coordinator) handleComplete(w http.ResponseWriter, r *http.Request) {
	var req CompleteRequest
	if !decode(w, r, &req) {
		return
	}
	if !c.knownWorker(w, req.Worker) {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	// Any completed cell is evidence the domain works; reset its expiry
	// streak and backoff.
	if ws, ok := c.workers[req.Worker]; ok {
		if ds := c.domains[ws.domain]; ds != nil {
			ds.expiries = 0
			ds.backoff = 0
		}
	}
	st, ok := c.cells[req.ID]
	if !ok {
		// State evicted (sweep finished or abandoned); the worker already
		// persisted the result to the shared store, so nothing is lost —
		// but a finalized fingerprint still gets the determinism check.
		if fp, done := c.finals[req.ID]; done && fp != req.Result.Fingerprint {
			c.divergent++
			c.opts.Logf("DIVERGENT cell %s: finalized %s vs %s from %s",
				req.ID, fp, req.Result.Fingerprint, req.Worker)
		}
		writeJSON(w, struct{}{})
		return
	}
	if st.state == cellDone {
		// A re-assigned lease raced its original worker: first result
		// won. Cross-check determinism — equal cells must produce equal
		// fingerprints on any worker.
		if st.result != nil && st.result.Fingerprint != req.Result.Fingerprint {
			c.divergent++
			c.opts.Logf("DIVERGENT cell %s: %s from %s vs %s from %s",
				req.ID, st.result.Fingerprint, st.result.Worker, req.Result.Fingerprint, req.Worker)
		}
		writeJSON(w, struct{}{})
		return
	}
	res := req.Result
	res.Worker = req.Worker
	res.Attempt = req.Attempt
	if res.Status == StatusError && res.Transient && st.asg.Attempt < c.opts.MaxAttempts {
		// Transient failure with budget left: re-lease, possibly to a
		// different worker. Deterministic failures finalize immediately —
		// they repeat identically anywhere.
		c.opts.Logf("transient failure on cell %s attempt %d (%s); re-queueing", req.ID, req.Attempt, res.Error)
		st.state = cellQueued
		st.worker = ""
		c.queue.push(req.ID, st.prio)
		c.signalLocked()
		writeJSON(w, struct{}{})
		return
	}
	c.finalizeLocked(req.ID, st, res)
	writeJSON(w, struct{}{})
}

func (c *Coordinator) handleHeartbeat(w http.ResponseWriter, r *http.Request) {
	var req HeartbeatRequest
	if !decode(w, r, &req) {
		return
	}
	if !c.knownWorker(w, req.Worker) {
		return
	}
	var resp HeartbeatResponse
	c.mu.Lock()
	for _, id := range req.IDs {
		st, ok := c.cells[id]
		if ok && st.state == cellLeased && st.worker == req.Worker {
			st.expiry = time.Now().Add(c.opts.Lease)
		} else {
			resp.Lost = append(resp.Lost, id)
		}
	}
	c.mu.Unlock()
	writeJSON(w, resp)
}

func (c *Coordinator) handleStatus(w http.ResponseWriter, r *http.Request) {
	now := time.Now()
	c.mu.Lock()
	st := Status{Workers: len(c.workers), Divergent: c.divergent, Done: c.doneCells, Sweeps: len(c.sweeps)}
	for _, cs := range c.cells {
		switch cs.state {
		case cellQueued:
			st.Queued++
		case cellLeased:
			st.Leased++
		}
	}
	names := make([]string, 0, len(c.domains))
	for name := range c.domains {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		ds := c.domains[name]
		d := DomainStatus{Domain: name, Workers: ds.workers, Quarantines: ds.quarantines}
		if now.Before(ds.until) {
			d.Quarantined = true
			d.RetryAfterMillis = ds.until.Sub(now).Milliseconds()
		}
		st.Domains = append(st.Domains, d)
	}
	c.mu.Unlock()
	writeJSON(w, st)
}
