package sweepd

import (
	"encoding/json"
	"fmt"
	"net/http"
	"sync"
	"time"

	"multicore/internal/analytic"
	"multicore/internal/machine"
	"multicore/internal/schema"
)

// CoordinatorOptions tunes the control plane. The zero value gives
// production defaults; tests shrink the lease to exercise expiry fast.
type CoordinatorOptions struct {
	// Lease is how long a worker may hold a cell without heartbeating
	// before the coordinator re-queues it. Default 15s.
	Lease time.Duration
	// MaxAttempts bounds lease assignments per cell (crashed workers,
	// transient failures); past it the cell finalizes as an error.
	// Default 5.
	MaxAttempts int
	// PollWait caps a worker long-poll. Default 5s.
	PollWait time.Duration
	// Logf receives coordinator events; nil discards them.
	Logf func(format string, args ...any)
}

func (o CoordinatorOptions) withDefaults() CoordinatorOptions {
	if o.Lease <= 0 {
		o.Lease = 15 * time.Second
	}
	if o.MaxAttempts <= 0 {
		o.MaxAttempts = 5
	}
	if o.PollWait <= 0 {
		o.PollWait = 5 * time.Second
	}
	if o.Logf == nil {
		o.Logf = func(string, ...any) {}
	}
	return o
}

// cell lifecycle states.
const (
	cellQueued = iota
	cellLeased
	cellDone
)

// cellState is one deduplicated cell execution: however many concurrent
// sweeps reference it (refs), it is queued, leased, and completed once.
type cellState struct {
	asg     Assignment // Attempt tracks the current lease generation
	state   int
	refs    int
	worker  string
	expiry  time.Time
	result  *CellResult
	waiters []chan<- CellResult
}

// workerState is one registered worker.
type workerState struct {
	name     string
	lastSeen time.Time
}

// Coordinator shards sweep cells across registered workers. It is pure
// control plane: results live in the workers' shared store (and
// in-memory only while a sweep still needs them), so a coordinator
// restart loses queue state but never completed results.
type Coordinator struct {
	opts CoordinatorOptions
	// est screens grids submitted with Screen set; the estimator's
	// layout/profile caches are shared across sweeps (it is safe for
	// concurrent use), so repeated screening submissions price cells
	// from warm caches.
	est *analytic.Estimator

	mu         sync.Mutex
	cells      map[string]*cellState
	queue      []string
	workers    map[string]*workerState
	nextWorker int
	divergent  int
	doneCells  int
	finals     map[string]string // finalized cell id → fingerprint
	wake       chan struct{}

	stop     chan struct{}
	stopOnce sync.Once
}

// NewCoordinator builds a coordinator and starts its lease janitor
// (stopped by Close).
func NewCoordinator(opts CoordinatorOptions) *Coordinator {
	c := &Coordinator{
		opts:    opts.withDefaults(),
		est:     analytic.New(),
		cells:   map[string]*cellState{},
		workers: map[string]*workerState{},
		finals:  map[string]string{},
		wake:    make(chan struct{}),
		stop:    make(chan struct{}),
	}
	go c.janitor()
	return c
}

// Close stops the lease janitor. In-flight HTTP requests are the
// server's to drain.
func (c *Coordinator) Close() { c.stopOnce.Do(func() { close(c.stop) }) }

// janitor re-queues expired leases even when no worker is polling, so a
// sweep whose only worker died still completes once a worker returns.
func (c *Coordinator) janitor() {
	interval := c.opts.Lease / 4
	if interval < 10*time.Millisecond {
		interval = 10 * time.Millisecond
	}
	t := time.NewTicker(interval)
	defer t.Stop()
	for {
		select {
		case <-c.stop:
			return
		case <-t.C:
			c.mu.Lock()
			c.reapExpiredLocked()
			c.mu.Unlock()
		}
	}
}

// signalLocked wakes every long-poller; callers hold c.mu.
func (c *Coordinator) signalLocked() {
	close(c.wake)
	c.wake = make(chan struct{})
}

// reapExpiredLocked re-queues (or, past the attempt budget, fails) every
// leased cell whose worker stopped heartbeating. Callers hold c.mu.
func (c *Coordinator) reapExpiredLocked() {
	now := time.Now()
	woke := false
	for id, st := range c.cells {
		if st.state != cellLeased || now.Before(st.expiry) {
			continue
		}
		c.opts.Logf("lease expired: cell %s attempt %d on worker %s", id, st.asg.Attempt, st.worker)
		if st.asg.Attempt >= c.opts.MaxAttempts {
			res := resultFor(st.asg.Cell, 0, fmt.Errorf(
				"sweepd: cell lease expired %d times (last worker %s); giving up", st.asg.Attempt, st.worker))
			res.Attempt = st.asg.Attempt
			c.finalizeLocked(id, st, res)
			continue
		}
		st.state = cellQueued
		st.worker = ""
		c.queue = append(c.queue, id)
		woke = true
	}
	if woke {
		c.signalLocked()
	}
}

// finalizeLocked completes a cell: records the result, notifies every
// waiting sweep, and evicts the state once no sweep references it.
// Callers hold c.mu.
func (c *Coordinator) finalizeLocked(id string, st *cellState, res CellResult) {
	st.state = cellDone
	st.result = &res
	c.doneCells++
	c.rememberFinalLocked(id, res.Fingerprint)
	for _, w := range st.waiters {
		w <- res
	}
	st.waiters = nil
	if st.refs <= 0 {
		delete(c.cells, id)
	}
}

// maxFinals bounds the finalized-fingerprint memory used for the
// determinism cross-check on late duplicate completions. Past the bound
// the map resets: losing old fingerprints only disables the cross-check
// for leases stale by thousands of cells, never correctness.
const maxFinals = 65536

// rememberFinalLocked records a finalized cell's fingerprint so a stale
// worker completing the same cell after eviction is still cross-checked
// for divergence. Callers hold c.mu.
func (c *Coordinator) rememberFinalLocked(id, fingerprint string) {
	if len(c.finals) >= maxFinals {
		c.finals = map[string]string{}
	}
	c.finals[id] = fingerprint
}

// removeQueuedLocked drops id from the pending queue. Callers hold c.mu.
func (c *Coordinator) removeQueuedLocked(id string) {
	for i, q := range c.queue {
		if q == id {
			c.queue = append(c.queue[:i], c.queue[i+1:]...)
			return
		}
	}
}

// Handler returns the coordinator's HTTP API.
func (c *Coordinator) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST "+PathSweep, c.handleSweep)
	mux.HandleFunc("POST "+PathRegister, c.handleRegister)
	mux.HandleFunc("POST "+PathPoll, c.handlePoll)
	mux.HandleFunc("POST "+PathComplete, c.handleComplete)
	mux.HandleFunc("POST "+PathHeartbeat, c.handleHeartbeat)
	mux.HandleFunc("GET "+PathStatus, c.handleStatus)
	mux.HandleFunc("GET "+PathHealthz, func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprintln(w, "ok")
	})
	return mux
}

func decode[T any](w http.ResponseWriter, r *http.Request, v *T) bool {
	if err := json.NewDecoder(r.Body).Decode(v); err != nil {
		http.Error(w, fmt.Sprintf("sweepd: decoding request: %v", err), http.StatusBadRequest)
		return false
	}
	return true
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(v)
}

// subscribe registers one sweep's cells: existing executions gain a
// reference, new cells are queued. Already-completed results are
// delivered immediately on ch, which must have capacity for every cell.
func (c *Coordinator) subscribe(req SweepRequest, cells []CellSpec, ch chan CellResult) []string {
	ids := make([]string, len(cells))
	c.mu.Lock()
	defer c.mu.Unlock()
	queued := false
	for i, cell := range cells {
		id := dedupKey(cell, req.Faults, req.FaultSeed, req.Retries)
		ids[i] = id
		st, ok := c.cells[id]
		if !ok {
			st = &cellState{asg: Assignment{
				ID: id, Cell: cell,
				Faults: req.Faults, FaultSeed: req.FaultSeed, Retries: req.Retries,
			}}
			// Custom machines travel inside the lease so a worker that has
			// never seen this spec can still run the cell.
			if raw, isCustom := machine.CustomSpecJSON(cell.System); isCustom {
				st.asg.Spec = raw
			}
			c.cells[id] = st
			c.queue = append(c.queue, id)
			queued = true
		}
		st.refs++
		if st.state == cellDone {
			ch <- *st.result
		} else {
			st.waiters = append(st.waiters, ch)
		}
	}
	if queued {
		c.signalLocked()
	}
	return ids
}

// release drops one sweep's references: unreferenced queued cells are
// removed (nobody wants them), unreferenced done cells evicted (the
// store has them), leased cells left to complete (the worker will
// persist to the store either way).
func (c *Coordinator) release(ids []string, ch chan CellResult) {
	c.mu.Lock()
	defer c.mu.Unlock()
	for _, id := range ids {
		st, ok := c.cells[id]
		if !ok {
			continue
		}
		st.refs--
		for i, w := range st.waiters {
			if w == ch {
				st.waiters = append(st.waiters[:i], st.waiters[i+1:]...)
				break
			}
		}
		if st.refs <= 0 {
			switch st.state {
			case cellQueued:
				c.removeQueuedLocked(id)
				delete(c.cells, id)
			case cellDone:
				delete(c.cells, id)
			}
		}
	}
}

// handleSweep validates a submission, subscribes to its cells, and
// streams completions as NDJSON until the grid is full.
func (c *Coordinator) handleSweep(w http.ResponseWriter, r *http.Request) {
	var req SweepRequest
	if !decode(w, r, &req) {
		return
	}
	if err := schema.Check("sweep request", req.SchemaVersion); err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	if req.Grid.Scale == "" {
		http.Error(w, "sweepd: sweep grid has no scale", http.StatusBadRequest)
		return
	}
	// Register shipped custom machines before grid validation so their
	// content-hash ids resolve. An id that does not match its content is
	// a client bug (or tampering) and rejects the whole sweep.
	for id, raw := range req.Specs {
		got, _, err := machine.RegisterSpecJSON(raw)
		if err != nil {
			http.Error(w, fmt.Sprintf("sweepd: custom spec %s: %v", id, err), http.StatusBadRequest)
			return
		}
		if got != id {
			http.Error(w, fmt.Sprintf("sweepd: custom spec id %s does not match its content (canonical id %s)", id, got), http.StatusBadRequest)
			return
		}
	}
	if err := req.Grid.Validate(); err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	if req.Screen && req.Faults != "" {
		http.Error(w, "sweepd: screening estimates cannot price fault plans (drop -faults or screening)", http.StatusBadRequest)
		return
	}
	cells := req.Grid.Cells()
	var sum Summary
	sum.Cells = len(cells)

	// Screening tier: price the whole grid in-process and lease only the
	// promoted cells. The settled tier-A results stream first, so a
	// million-cell submission fills most of its table before the first
	// worker lease.
	var settled []CellResult
	if req.Screen {
		decisions := ScreenGrid(c.est, req.Grid, ScreenOptions{
			PromoteMargin:    req.PromoteMargin,
			UncertaintyBound: req.UncertaintyBound,
		})
		cells = cells[:0]
		for _, d := range decisions {
			if d.Promote {
				cells = append(cells, d.Cell)
				continue
			}
			settled = append(settled, d.Result)
		}
		sum.Screened = len(settled)
		sum.Promoted = len(cells)
		c.opts.Logf("sweep screened: %d cells settled analytically, %d promoted to simulation (%s)",
			sum.Screened, sum.Promoted, req.Grid)
	} else {
		c.opts.Logf("sweep submitted: %d cells (%s)", len(cells), req.Grid)
	}

	// Cell keys can repeat inside one grid only via aliased specs; the
	// channel is sized for every subscription so finalize never blocks.
	ch := make(chan CellResult, len(cells))
	ids := c.subscribe(req, cells, ch)
	defer c.release(ids, ch)

	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)
	flusher, _ := w.(http.Flusher)
	enc := json.NewEncoder(w)
	emit := func(ev StreamEvent) bool {
		if err := enc.Encode(ev); err != nil {
			return false
		}
		if flusher != nil {
			flusher.Flush()
		}
		return true
	}

	for i := range settled {
		res := settled[i]
		switch res.Status {
		case StatusInfeasible:
			sum.Infeasible++
		case StatusError:
			sum.Errors++
		}
		if !emit(StreamEvent{Type: "cell", Cell: &res}) {
			return
		}
	}
	for n := 0; n < len(cells); n++ {
		select {
		case res := <-ch:
			switch res.Status {
			case StatusInfeasible:
				sum.Infeasible++
			case StatusError:
				sum.Errors++
			}
			if res.Simulated {
				sum.Simulated++
			} else if res.Status != StatusError {
				sum.StoreHits++
			}
			// Every leased cell of a screened sweep is there because the
			// screening tier promoted it.
			res.Promoted = req.Screen
			if !emit(StreamEvent{Type: "cell", Cell: &res}) {
				return // client gone; release via defer
			}
		case <-r.Context().Done():
			return
		}
	}
	c.mu.Lock()
	sum.Divergent = c.divergent
	c.mu.Unlock()
	emit(StreamEvent{Type: "done", Summary: &sum})
	c.opts.Logf("sweep complete: %d cells, %d simulated, %d store hits, %d errors",
		sum.Cells, sum.Simulated, sum.StoreHits, sum.Errors)
}

func (c *Coordinator) handleRegister(w http.ResponseWriter, r *http.Request) {
	var req RegisterRequest
	if !decode(w, r, &req) {
		return
	}
	if err := schema.Check("worker registration", req.SchemaVersion); err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	c.mu.Lock()
	c.nextWorker++
	id := fmt.Sprintf("w%d", c.nextWorker)
	c.workers[id] = &workerState{name: req.Name, lastSeen: time.Now()}
	c.mu.Unlock()
	c.opts.Logf("worker registered: %s (%s)", id, req.Name)
	writeJSON(w, RegisterResponse{Worker: id, LeaseMillis: c.opts.Lease.Milliseconds()})
}

// knownWorker checks registration; unknown IDs (a coordinator restart)
// get 404 so the worker re-registers.
func (c *Coordinator) knownWorker(w http.ResponseWriter, id string) bool {
	c.mu.Lock()
	ws, ok := c.workers[id]
	if ok {
		ws.lastSeen = time.Now()
	}
	c.mu.Unlock()
	if !ok {
		http.Error(w, fmt.Sprintf("sweepd: unknown worker %q (re-register)", id), http.StatusNotFound)
	}
	return ok
}

// popLocked leases the queue head to a worker. Callers hold c.mu.
func (c *Coordinator) popLocked(worker string) *Assignment {
	for len(c.queue) > 0 {
		id := c.queue[0]
		c.queue = c.queue[1:]
		st, ok := c.cells[id]
		if !ok || st.state != cellQueued {
			continue // evicted or already handled
		}
		st.state = cellLeased
		st.worker = worker
		st.expiry = time.Now().Add(c.opts.Lease)
		st.asg.Attempt++
		asg := st.asg
		return &asg
	}
	return nil
}

func (c *Coordinator) handlePoll(w http.ResponseWriter, r *http.Request) {
	var req PollRequest
	if !decode(w, r, &req) {
		return
	}
	if !c.knownWorker(w, req.Worker) {
		return
	}
	wait := time.Duration(req.WaitMillis) * time.Millisecond
	if wait <= 0 || wait > c.opts.PollWait {
		wait = c.opts.PollWait
	}
	deadline := time.Now().Add(wait)
	for {
		c.mu.Lock()
		c.reapExpiredLocked()
		asg := c.popLocked(req.Worker)
		wake := c.wake
		c.mu.Unlock()
		if asg != nil {
			c.opts.Logf("leased cell %s attempt %d to %s", asg.ID, asg.Attempt, req.Worker)
			writeJSON(w, PollResponse{Assignment: asg})
			return
		}
		remain := time.Until(deadline)
		if remain <= 0 {
			writeJSON(w, PollResponse{})
			return
		}
		t := time.NewTimer(remain)
		select {
		case <-wake:
			t.Stop()
		case <-t.C:
		case <-r.Context().Done():
			t.Stop()
			writeJSON(w, PollResponse{})
			return
		}
	}
}

func (c *Coordinator) handleComplete(w http.ResponseWriter, r *http.Request) {
	var req CompleteRequest
	if !decode(w, r, &req) {
		return
	}
	if !c.knownWorker(w, req.Worker) {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	st, ok := c.cells[req.ID]
	if !ok {
		// State evicted (sweep finished or abandoned); the worker already
		// persisted the result to the shared store, so nothing is lost —
		// but a finalized fingerprint still gets the determinism check.
		if fp, done := c.finals[req.ID]; done && fp != req.Result.Fingerprint {
			c.divergent++
			c.opts.Logf("DIVERGENT cell %s: finalized %s vs %s from %s",
				req.ID, fp, req.Result.Fingerprint, req.Worker)
		}
		writeJSON(w, struct{}{})
		return
	}
	if st.state == cellDone {
		// A re-assigned lease raced its original worker: first result
		// won. Cross-check determinism — equal cells must produce equal
		// fingerprints on any worker.
		if st.result != nil && st.result.Fingerprint != req.Result.Fingerprint {
			c.divergent++
			c.opts.Logf("DIVERGENT cell %s: %s from %s vs %s from %s",
				req.ID, st.result.Fingerprint, st.result.Worker, req.Result.Fingerprint, req.Worker)
		}
		writeJSON(w, struct{}{})
		return
	}
	res := req.Result
	res.Worker = req.Worker
	res.Attempt = req.Attempt
	if res.Status == StatusError && res.Transient && st.asg.Attempt < c.opts.MaxAttempts {
		// Transient failure with budget left: re-lease, possibly to a
		// different worker. Deterministic failures finalize immediately —
		// they repeat identically anywhere.
		c.opts.Logf("transient failure on cell %s attempt %d (%s); re-queueing", req.ID, req.Attempt, res.Error)
		st.state = cellQueued
		st.worker = ""
		c.queue = append(c.queue, req.ID)
		c.signalLocked()
		writeJSON(w, struct{}{})
		return
	}
	c.finalizeLocked(req.ID, st, res)
	writeJSON(w, struct{}{})
}

func (c *Coordinator) handleHeartbeat(w http.ResponseWriter, r *http.Request) {
	var req HeartbeatRequest
	if !decode(w, r, &req) {
		return
	}
	if !c.knownWorker(w, req.Worker) {
		return
	}
	var resp HeartbeatResponse
	c.mu.Lock()
	for _, id := range req.IDs {
		st, ok := c.cells[id]
		if ok && st.state == cellLeased && st.worker == req.Worker {
			st.expiry = time.Now().Add(c.opts.Lease)
		} else {
			resp.Lost = append(resp.Lost, id)
		}
	}
	c.mu.Unlock()
	writeJSON(w, resp)
}

func (c *Coordinator) handleStatus(w http.ResponseWriter, r *http.Request) {
	c.mu.Lock()
	st := Status{Workers: len(c.workers), Divergent: c.divergent, Done: c.doneCells}
	for _, cs := range c.cells {
		switch cs.state {
		case cellQueued:
			st.Queued++
		case cellLeased:
			st.Leased++
		}
	}
	c.mu.Unlock()
	writeJSON(w, st)
}
