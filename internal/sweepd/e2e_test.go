package sweepd

import (
	"context"
	"sync"
	"testing"
	"time"

	"multicore/internal/experiments"
	"multicore/internal/schema"
	"multicore/internal/store"
)

// End-to-end tests: real Workers running real (quick-scale) simulations
// against a live coordinator, checked byte-for-byte against the serial
// golden path.

func e2eGrid() Grid {
	return Grid{Workloads: []string{"stream"}, Systems: []string{"tiger"},
		Ranks: []int{1, 2}, Schemes: []string{"default", "localalloc"}, Scale: "quick"}
}

// serialGolden runs the grid in-process, single-threaded, with no store —
// the reference every distributed run must reproduce exactly.
func serialGolden(t *testing.T, g Grid) (map[string]CellResult, string) {
	t.Helper()
	r := experiments.NewRunner(context.Background(), experiments.Options{Parallelism: 1})
	results := RunLocal(r, g, 1)
	return results, Table(g, results).Text()
}

// startE2EWorker launches a Worker goroutine; the cancel func kills it.
func startE2EWorker(t *testing.T, base, storeDir, name string, hook func(Assignment)) (*Worker, context.CancelFunc) {
	t.Helper()
	w, err := NewWorker(WorkerOptions{
		Coordinator: base, Store: storeDir, Name: name,
		Client:     nil,
		beforeCell: hook,
	})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan struct{})
	go func() { defer close(done); w.Run(ctx) }()
	t.Cleanup(func() { cancel(); <-done })
	return w, cancel
}

func collectSweep(t *testing.T, base string, g Grid) (*Summary, map[string]CellResult) {
	t.Helper()
	req := SweepRequest{SchemaVersion: schema.Version, Grid: g}
	results := map[string]CellResult{}
	var mu sync.Mutex
	sum, err := Submit(context.Background(), base, req, func(r CellResult) {
		mu.Lock()
		results[r.Cell.Key()] = r
		mu.Unlock()
	})
	if err != nil {
		t.Fatal(err)
	}
	return sum, results
}

func TestDistributedSweepMatchesSerial(t *testing.T) {
	g := e2eGrid()
	golden, goldenTable := serialGolden(t, g)

	_, srv := startCoordinator(t, CoordinatorOptions{})
	storeDir := t.TempDir()
	w1, _ := startE2EWorker(t, srv.URL, storeDir, "a", nil)
	w2, _ := startE2EWorker(t, srv.URL, storeDir, "b", nil)

	sum, results := collectSweep(t, srv.URL, g)
	if sum.Cells != len(g.Cells()) || sum.Errors != 0 || sum.Divergent != 0 {
		t.Fatalf("summary = %+v, want %d clean cells", sum, len(g.Cells()))
	}
	if sum.Simulated != len(g.Cells()) {
		t.Errorf("first run simulated %d of %d cells", sum.Simulated, len(g.Cells()))
	}
	// Byte-identical to the serial golden path: rendered table and
	// per-cell fingerprints.
	if got := Table(g, results).Text(); got != goldenTable {
		t.Errorf("distributed table differs from serial:\n--- distributed\n%s--- serial\n%s", got, goldenTable)
	}
	for k, want := range golden {
		got, ok := results[k]
		if !ok {
			t.Errorf("cell %s missing from distributed results", k)
			continue
		}
		if got.Fingerprint != want.Fingerprint {
			t.Errorf("cell %s fingerprint %s != serial %s", k, got.Fingerprint, want.Fingerprint)
		}
	}
	run1, _ := w1.Stats()
	run2, _ := w2.Stats()
	if run1+run2 != len(g.Cells()) {
		t.Errorf("workers simulated %d cells, want %d", run1+run2, len(g.Cells()))
	}

	// Resubmission: every cell is on disk, so nothing re-simulates and
	// the table is still byte-identical.
	sum2, results2 := collectSweep(t, srv.URL, g)
	if sum2.Simulated != 0 {
		t.Errorf("resubmission simulated %d cells, want 0", sum2.Simulated)
	}
	if sum2.StoreHits != len(g.Cells()) {
		t.Errorf("resubmission store hits = %d, want %d", sum2.StoreHits, len(g.Cells()))
	}
	if got := Table(g, results2).Text(); got != goldenTable {
		t.Errorf("resubmitted table differs from serial:\n%s", got)
	}
	st, err := store.Open(storeDir)
	if err != nil {
		t.Fatal(err)
	}
	if n, err := st.Len(); err != nil || n != len(g.Cells()) {
		t.Errorf("store holds %d entries (err %v), want %d", n, err, len(g.Cells()))
	}
}

func TestWorkerKilledMidCellReassigned(t *testing.T) {
	g := e2eGrid()
	golden, goldenTable := serialGolden(t, g)

	_, srv := startCoordinator(t, CoordinatorOptions{Lease: 150 * time.Millisecond})
	storeDir := t.TempDir()

	// Worker "a" dies the instant it receives its first cell — before
	// simulating or reporting anything.
	killed := make(chan Assignment, 1)
	var kill context.CancelFunc
	var once sync.Once
	_, kill = startE2EWorker(t, srv.URL, storeDir, "a", func(asg Assignment) {
		once.Do(func() {
			killed <- asg
			kill()
		})
	})

	sumc, resc, errc := submitAsync(t, srv.URL, SweepRequest{SchemaVersion: schema.Version, Grid: g})

	var dead Assignment
	select {
	case dead = <-killed:
	case <-time.After(5 * time.Second):
		t.Fatal("worker a never received a cell")
	}

	// Only now does the surviving worker appear; the dead worker's lease
	// must expire and its cell re-lease here.
	startE2EWorker(t, srv.URL, storeDir, "b", nil)

	sum := <-sumc
	results := <-resc
	if err := <-errc; err != nil {
		t.Fatal(err)
	}
	if sum.Errors != 0 || sum.Divergent != 0 {
		t.Fatalf("summary = %+v, want clean completion after worker death", sum)
	}
	if got := Table(g, results).Text(); got != goldenTable {
		t.Errorf("post-crash table differs from serial:\n--- distributed\n%s--- serial\n%s", got, goldenTable)
	}
	for k, want := range golden {
		if results[k].Fingerprint != want.Fingerprint {
			t.Errorf("cell %s fingerprint %s != serial %s", k, results[k].Fingerprint, want.Fingerprint)
		}
	}
	res := results[dead.Cell.Key()]
	if res.Worker != "w2" || res.Attempt != 2 {
		t.Errorf("killed cell finished as %+v, want worker w2 at attempt 2", res)
	}
}

func TestDuplicateSubmissionsSimulateEachCellOnce(t *testing.T) {
	g := e2eGrid()
	nCells := len(g.Cells())

	_, srv := startCoordinator(t, CoordinatorOptions{})
	storeDir := t.TempDir()
	w1, _ := startE2EWorker(t, srv.URL, storeDir, "a", nil)
	w2, _ := startE2EWorker(t, srv.URL, storeDir, "b", nil)

	req := SweepRequest{SchemaVersion: schema.Version, Grid: g}
	sum1, res1, err1 := submitAsync(t, srv.URL, req)
	sum2, res2, err2 := submitAsync(t, srv.URL, req)

	s1, s2 := <-sum1, <-sum2
	r1, r2 := <-res1, <-res2
	if err := <-err1; err != nil {
		t.Fatal(err)
	}
	if err := <-err2; err != nil {
		t.Fatal(err)
	}
	if s1.Cells != nCells || s2.Cells != nCells || s1.Errors+s2.Errors != 0 {
		t.Fatalf("summaries = %+v / %+v, want %d clean cells each", s1, s2, nCells)
	}
	// Exactly-once: the workers between them simulated each cell once,
	// and the store holds exactly one entry per cell.
	run1, _ := w1.Stats()
	run2, _ := w2.Stats()
	if run1+run2 != nCells {
		t.Errorf("duplicate sweeps simulated %d cells, want %d", run1+run2, nCells)
	}
	st, err := store.Open(storeDir)
	if err != nil {
		t.Fatal(err)
	}
	if n, err := st.Len(); err != nil || n != nCells {
		t.Errorf("store holds %d entries (err %v), want %d", n, err, nCells)
	}
	// Both clients observed identical results.
	for k, a := range r1 {
		if b := r2[k]; a.Fingerprint != b.Fingerprint {
			t.Errorf("duplicate sweeps diverge at %s: %s vs %s", k, a.Fingerprint, b.Fingerprint)
		}
	}
}
