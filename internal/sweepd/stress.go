package sweepd

import (
	"context"
	"fmt"
	"net"
	"net/http"
	"os"
	"sync"
	"time"

	"multicore/internal/analytic"
	"multicore/internal/experiments"
	"multicore/internal/schema"
)

// StressOptions configures the durable-coordination stress harness: a
// large screened grid swept through a real coordinator + worker fleet
// while chaos kills workers and SIGKILLs (simulated) and restarts the
// coordinator, with the final table checked byte-for-byte against a
// serial screened run.
type StressOptions struct {
	// Cells is the approximate grid size; the rank axis is stretched
	// until the grid reaches it. 1_000_000 is the million-cell
	// configuration; the default exercises the same machinery in less
	// wall time.
	Cells int
	// Seed drives the deterministic chaos schedule (which worker dies
	// when, where the coordinator restart lands).
	Seed int64
	// Workers is the worker-process count (default 2); Slots the
	// concurrent cells per worker (default 2).
	Workers int
	Slots   int
	// StoreDir/StateDir default to temporary directories.
	StoreDir string
	StateDir string
	// Logf receives progress; nil discards.
	Logf func(format string, args ...any)
}

// StressReport summarizes a passed stress run.
type StressReport struct {
	Cells       int
	Screened    int
	Promoted    int
	Simulated   int
	StoreHits   int
	WorkerKills int
	CoordKills  int
	Elapsed     time.Duration
}

func (r StressReport) String() string {
	return fmt.Sprintf("%d cells (%d screened, %d promoted, %d simulated, %d store hits), %d worker kills, %d coordinator kills, %s",
		r.Cells, r.Screened, r.Promoted, r.Simulated, r.StoreHits, r.WorkerKills, r.CoordKills, r.Elapsed.Round(time.Millisecond))
}

// stressGrid stretches the rank axis until the grid holds at least n
// cells. Oversubscribed rank counts are fine — they screen as ordinary
// (often infeasible or high-uncertainty) cells.
func stressGrid(n int) Grid {
	g := Grid{
		Workloads: []string{"stream", "cg", "ra"},
		Systems:   []string{"tiger", "longs"},
		Schemes:   []string{"default", "localalloc", "membind", "interleave"},
		Scale:     "quick",
	}
	perRank := len(g.Workloads) * len(g.Systems) * len(g.Schemes)
	ranks := (n + perRank - 1) / perRank
	if ranks < 1 {
		ranks = 1
	}
	for r := 1; r <= ranks; r++ {
		g.Ranks = append(g.Ranks, r)
	}
	return g
}

// splitmix64 is the chaos schedule's deterministic RNG.
type splitmix64 uint64

func (s *splitmix64) next() uint64 {
	*s += 0x9e3779b97f4a7c15
	z := uint64(*s)
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// stressCoordinator is one coordinator incarnation bound to a real TCP
// listener (so a restarted incarnation can rebind the same address —
// what clients reconnect to).
type stressCoordinator struct {
	coord *Coordinator
	srv   *http.Server
}

func startStressCoordinator(addr string, opts CoordinatorOptions) (*stressCoordinator, string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, "", fmt.Errorf("sweepd: stress listener: %v", err)
	}
	coord, err := NewCoordinator(opts)
	if err != nil {
		ln.Close()
		return nil, "", err
	}
	sc := &stressCoordinator{coord: coord, srv: &http.Server{Handler: coord.Handler()}}
	go sc.srv.Serve(ln)
	return sc, ln.Addr().String(), nil
}

// kill simulates SIGKILL: connections are severed and the journal is
// abandoned unflushed — nothing is shut down gracefully.
func (sc *stressCoordinator) kill() {
	sc.coord.crash()
	sc.srv.Close()
}

func (sc *stressCoordinator) close() {
	sc.coord.Close()
	sc.srv.Close()
}

// Stress runs the harness; see StressOptions. The sweep must complete
// despite the chaos and produce a table byte-identical to the serial
// screened run, simulating each promoted cell at most once overall
// (kills can force re-runs of in-flight cells, but completed cells are
// always served from the store).
func Stress(ctx context.Context, opts StressOptions) (StressReport, error) {
	var rep StressReport
	if opts.Cells <= 0 {
		opts.Cells = 100000
	}
	if opts.Workers <= 0 {
		opts.Workers = 2
	}
	if opts.Slots <= 0 {
		opts.Slots = 2
	}
	logf := opts.Logf
	if logf == nil {
		logf = func(string, ...any) {}
	}
	if opts.StoreDir == "" {
		dir, err := os.MkdirTemp("", "mcstress-store-*")
		if err != nil {
			return rep, err
		}
		defer os.RemoveAll(dir)
		opts.StoreDir = dir
	}
	if opts.StateDir == "" {
		dir, err := os.MkdirTemp("", "mcstress-state-*")
		if err != nil {
			return rep, err
		}
		defer os.RemoveAll(dir)
		opts.StateDir = dir
	}
	g := stressGrid(opts.Cells)
	rep.Cells = len(g.Cells())
	start := time.Now()

	// Serial screened golden: the byte-exact reference the chaotic
	// distributed run must reproduce.
	logf("stress: serial screened golden over %d cells", rep.Cells)
	runner := experiments.NewRunner(ctx, experiments.Options{Parallelism: 1})
	golden, _ := RunScreened(runner, analytic.New(), g, ScreenOptions{}, 1)
	goldenTable := Table(g, golden).Text()

	coordOpts := CoordinatorOptions{
		Lease:    2 * time.Second,
		StateDir: opts.StateDir,
		// Sync aggressively: the harness kills the coordinator without
		// flushing, and the run must still recover losslessly enough to
		// finish (idempotent replay absorbs whatever the tail lost).
		SyncEvery: 16,
		PingEvery: time.Second,
		Logf:      func(string, ...any) {}, // coordinator chatter drowns progress
	}
	sc, addr, err := startStressCoordinator("127.0.0.1:0", coordOpts)
	if err != nil {
		return rep, err
	}
	defer func() { sc.close() }()
	base := "http://" + addr
	logf("stress: coordinator on %s (state %s)", base, opts.StateDir)

	// Worker fleet. Workers are restartable: the chaos loop kills one and
	// starts a replacement.
	workerCtx, stopWorkers := context.WithCancel(ctx)
	defer stopWorkers()
	var wg sync.WaitGroup
	var mu sync.Mutex
	var cancels []context.CancelFunc
	startWorker := func(name string) {
		w, err := NewWorker(WorkerOptions{
			Coordinator: base, Store: opts.StoreDir, Name: name,
			Domain: "stress-" + name, Parallelism: opts.Slots,
		})
		if err != nil {
			logf("stress: worker %s failed to start: %v", name, err)
			return
		}
		wctx, cancel := context.WithCancel(workerCtx)
		mu.Lock()
		cancels = append(cancels, cancel)
		mu.Unlock()
		wg.Add(1)
		go func() { defer wg.Done(); w.Run(wctx) }()
	}
	for i := 0; i < opts.Workers; i++ {
		startWorker(fmt.Sprintf("sw%d", i))
	}

	// The client sweep: Submit's resume machinery spans the coordinator
	// kill transparently.
	results := map[string]CellResult{}
	var resMu sync.Mutex
	sumc := make(chan *Summary, 1)
	errc := make(chan error, 1)
	go func() {
		sum, err := Submit(ctx, base, SweepRequest{
			SchemaVersion: schema.Version, Grid: g, Screen: true, Client: "stress",
		}, func(r CellResult) {
			resMu.Lock()
			results[r.Cell.Key()] = r
			resMu.Unlock()
		})
		sumc <- sum
		errc <- err
	}()

	// Chaos: kill a worker (and start a replacement) on a seed-derived
	// cadence, and SIGKILL+restart the coordinator once, mid-sweep. The
	// timing jitters with the seed; the result bytes may not depend on
	// any of it.
	rng := splitmix64(opts.Seed)
	chaosDone := make(chan struct{})
	go func() {
		defer close(chaosDone)
		killed := 0
		coordKilled := false
		for i := 0; ; i++ {
			delay := 150*time.Millisecond + time.Duration(rng.next()%350)*time.Millisecond
			select {
			case <-workerCtx.Done():
				return
			case <-time.After(delay):
			}
			if !coordKilled && i >= 1 {
				coordKilled = true
				logf("stress: SIGKILL coordinator")
				sc.kill()
				rep.CoordKills++
				select {
				case <-workerCtx.Done():
					return
				case <-time.After(time.Duration(200+rng.next()%400) * time.Millisecond):
				}
				nsc, _, err := startStressCoordinator(addr, coordOpts)
				if err != nil {
					logf("stress: coordinator restart failed: %v", err)
					return
				}
				mu.Lock()
				sc = nsc
				mu.Unlock()
				logf("stress: coordinator restarted on %s", base)
				continue
			}
			if killed < opts.Workers {
				mu.Lock()
				cancel := cancels[killed]
				mu.Unlock()
				cancel()
				killed++
				rep.WorkerKills++
				logf("stress: killed worker %d, starting replacement", killed)
				startWorker(fmt.Sprintf("sw%d-r", killed))
			}
		}
	}()

	sum := <-sumc
	err = <-errc
	stopWorkers()
	<-chaosDone
	wg.Wait()
	if err != nil {
		return rep, fmt.Errorf("sweepd: stress sweep failed: %v", err)
	}
	rep.Screened = sum.Screened
	rep.Promoted = sum.Promoted
	rep.Simulated = sum.Simulated
	rep.StoreHits = sum.StoreHits
	rep.Elapsed = time.Since(start)

	resMu.Lock()
	got := Table(g, results).Text()
	resMu.Unlock()
	if got != goldenTable {
		return rep, fmt.Errorf("sweepd: stress table diverges from serial golden (%d cells)", rep.Cells)
	}
	if sum.Divergent != 0 {
		return rep, fmt.Errorf("sweepd: stress run observed %d divergent completions", sum.Divergent)
	}
	logf("stress: table byte-identical to serial golden")
	return rep, nil
}
