package sim

import "sync/atomic"

// Engine observation: always-on activity counters plus an optional
// detailed observer. The counters are bare integer increments; everything
// heavier (per-process state times, per-resource used-rate timelines) is
// gated behind a single `e.obs != nil` pointer check on the hot paths and
// costs nothing when observation is disabled.

// procState classifies what a process is doing at an instant, keyed off
// the block sites: running between resume and block, and otherwise by the
// kind of wait it entered.
type procState int

const (
	stateRunning procState = iota
	stateSleeping
	stateBlockedFlow
	stateBlockedQueue
	numProcStates
)

// ProcStats is the accumulated state-time breakdown of one process.
type ProcStats struct {
	Name string
	// Seconds spent in each state. Running covers resume-to-block spans
	// (zero for pure coroutine hand-offs, since simulated time only
	// advances while every process is parked).
	Running      float64
	Sleeping     float64
	BlockedFlow  float64
	BlockedQueue float64
}

// Total returns the process's observed lifetime.
func (p ProcStats) Total() float64 {
	return p.Running + p.Sleeping + p.BlockedFlow + p.BlockedQueue
}

// RateSegment is one piece of a piecewise-constant used-rate timeline:
// the resource served Rate bytes/second over [Start, End). Idle periods
// appear as gaps between segments.
type RateSegment struct {
	Start, End float64
	Rate       float64
}

// ResourceStats is the utilization timeline of one resource.
type ResourceStats struct {
	Name     string
	Cap      float64
	Segments []RateSegment
}

// Stats is a snapshot of engine activity. The counters are always
// maintained; Procs and Resources are populated only when observation was
// enabled before the run (EnableObservation).
type Stats struct {
	// Events counts fired scheduler events, Flows started flows, Settles
	// flow-network settling passes that advanced time, and Spawns
	// processes created (MPI ranks plus transient helpers), whichever
	// backing they run on.
	Events  uint64
	Flows   uint64
	Settles uint64
	Spawns  uint64

	Procs     []ProcStats
	Resources []ResourceStats
}

// Process-wide activity counters, accumulated from every Engine.Run in the
// process. Tools that drive many engines (one per experiment cell) read
// deltas of these around a unit of work instead of plumbing an engine
// handle out of each cell.
var globalEvents, globalFlows, globalSettles, globalSpawns atomic.Uint64

// Activity snapshots the process-wide counters: scheduler events fired,
// flows started, settling passes, and processes spawned (ranks plus
// helpers), summed over all completed engine runs since the last
// ResetActivity. Spawns over heap growth is the bytes-per-rank signal the
// benchmark snapshots track.
func Activity() (events, flows, settles, spawns uint64) {
	return globalEvents.Load(), globalFlows.Load(), globalSettles.Load(), globalSpawns.Load()
}

// ResetActivity zeroes the process-wide activity counters.
func ResetActivity() {
	globalEvents.Store(0)
	globalFlows.Store(0)
	globalSettles.Store(0)
	globalSpawns.Store(0)
}

// publishActivity folds one finished engine's counters into the
// process-wide totals; called once at the end of Run.
func (e *Engine) publishActivity() {
	globalEvents.Add(e.statEvents)
	globalFlows.Add(e.statFlows)
	globalSettles.Add(e.statSettles)
	globalSpawns.Add(e.statSpawns)
}

// observer holds the registration order of observed processes and
// resources so snapshots are deterministic.
type observer struct {
	procs     []*Proc
	resources []*Resource
}

// EnableObservation turns on detailed per-process and per-resource
// accounting for the rest of the engine's lifetime. Call it before
// spawning processes; it is idempotent.
func (e *Engine) EnableObservation() {
	if e.obs == nil {
		e.obs = &observer{}
	}
}

// Observing reports whether detailed observation is enabled.
func (e *Engine) Observing() bool { return e.obs != nil }

// procStateChange accumulates the time spent in p's current state and
// enters the next one. Only called when e.obs != nil.
func (e *Engine) procStateChange(p *Proc, next procState) {
	p.stateTimes[p.state] += e.now - p.stateSince
	p.state = next
	p.stateSince = e.now
}

// recordSegment appends one used-rate segment to r's timeline, coalescing
// with the previous segment when the rate continues unchanged. Only
// called when the engine's observer is active.
func (o *observer) recordSegment(r *Resource, start, end, rate float64) {
	if rate <= 0 || end <= start {
		return
	}
	if !r.observed {
		r.observed = true
		o.resources = append(o.resources, r)
	}
	if n := len(r.segments); n > 0 {
		last := &r.segments[n-1]
		if last.End == start && last.Rate == rate {
			last.End = end
			return
		}
	}
	r.segments = append(r.segments, RateSegment{Start: start, End: end, Rate: rate})
}

// Stats snapshots the engine's activity counters and, if observation is
// enabled, the per-process and per-resource detail, consistent up to the
// current simulated time.
func (e *Engine) Stats() Stats {
	s := Stats{Events: e.statEvents, Flows: e.statFlows, Settles: e.statSettles, Spawns: e.statSpawns}
	if e.obs == nil {
		return s
	}
	for _, p := range e.obs.procs {
		ps := ProcStats{Name: p.name}
		times := p.stateTimes
		if !p.done {
			// Live process: fold the open interval in without mutating.
			times[p.state] += e.now - p.stateSince
		}
		ps.Running = times[stateRunning]
		ps.Sleeping = times[stateSleeping]
		ps.BlockedFlow = times[stateBlockedFlow]
		ps.BlockedQueue = times[stateBlockedQueue]
		s.Procs = append(s.Procs, ps)
	}
	for _, r := range e.obs.resources {
		segs := make([]RateSegment, len(r.segments))
		copy(segs, r.segments)
		s.Resources = append(s.Resources, ResourceStats{Name: r.Name, Cap: r.Cap, Segments: segs})
	}
	return s
}
