package sim

import (
	"fmt"
	"runtime"
	"testing"
)

// mallocsDuring counts heap allocations performed by fn.
func mallocsDuring(fn func()) uint64 {
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	fn()
	runtime.ReadMemStats(&after)
	return after.Mallocs - before.Mallocs
}

// steadyStateAllocs runs workload at two scales and returns the allocation
// count attributable to the extra iterations, cancelling out fixed setup
// costs (engine, procs, goroutines, slice warm-up).
func steadyStateAllocs(small, large int, workload func(iters int)) uint64 {
	a := mallocsDuring(func() { workload(small) })
	b := mallocsDuring(func() { workload(large) })
	if b <= a {
		return 0
	}
	return b - a
}

// TestEventScheduleZeroAlloc: pushing and popping the typed events (resume,
// flow-check) must not allocate once the heap's backing array is warm, and
// Engine.At with a preallocated closure must not either.
func TestEventScheduleZeroAlloc(t *testing.T) {
	e := NewEngine()
	p := &Proc{eng: e}
	// Warm the heap storage.
	for i := 0; i < 64; i++ {
		e.scheduleResume(1, p)
	}
	for len(e.queue) > 0 {
		e.queue.pop()
	}
	if n := testing.AllocsPerRun(200, func() {
		e.scheduleResume(1, p)
		e.queue.pop()
	}); n != 0 {
		t.Errorf("schedule/pop of a resume event allocates %v per cycle, want 0", n)
	}
	fn := func() {}
	if n := testing.AllocsPerRun(200, func() {
		e.At(1, fn)
		e.queue.pop()
	}); n != 0 {
		t.Errorf("At/pop with a hoisted closure allocates %v per cycle, want 0", n)
	}
}

// TestSleepPingPongZeroAlloc: a process sleeping in a loop — the schedule,
// handoff, block, resume cycle — must not allocate in steady state.
func TestSleepPingPongZeroAlloc(t *testing.T) {
	workload := func(iters int) {
		e := NewEngine()
		e.Spawn("sleeper", func(p *Proc) {
			for i := 0; i < iters; i++ {
				p.Sleep(1e-9)
			}
		})
		e.Run()
	}
	if extra := steadyStateAllocs(2000, 20000, workload); extra > 100 {
		t.Errorf("18000 extra sleep cycles allocated %d times, want ~0", extra)
	}
}

// TestWaitQueueChurnZeroAlloc: sustained Wait/WakeOne cycles must reuse the
// ring's backing storage instead of allocating per cycle.
func TestWaitQueueChurnZeroAlloc(t *testing.T) {
	workload := func(iters int) {
		e := NewEngine()
		var q WaitQueue
		e.Spawn("waiter", func(p *Proc) {
			for i := 0; i < iters; i++ {
				q.Wait(p, "churn")
			}
		})
		e.Spawn("waker", func(p *Proc) {
			for woken := 0; woken < iters; {
				if q.WakeOne(e) {
					woken++
				}
				p.Sleep(1e-9)
			}
		})
		e.Run()
	}
	if extra := steadyStateAllocs(2000, 20000, workload); extra > 100 {
		t.Errorf("18000 extra wait/wake cycles allocated %d times, want ~0", extra)
	}
}

// TestFlowChurnAllocsBounded: a transfer cycle allocates nothing in
// steady state — the Flow object itself recycles through the network's
// arena (Transfer owns and releases it), and the settle/fill/completion
// machinery runs entirely on recycled scratch.
func TestFlowChurnAllocsBounded(t *testing.T) {
	workload := func(iters int) {
		e := NewEngine()
		r := NewResource("mc", 1e9)
		path := []*Resource{r}
		e.Spawn("mover", func(p *Proc) {
			for i := 0; i < iters; i++ {
				p.Transfer("t", 1e3, path, 0)
			}
		})
		e.Run()
	}
	const small, large = 1000, 5000
	extra := steadyStateAllocs(small, large, workload)
	perCycle := float64(extra) / float64(large-small)
	if perCycle > 0.05 {
		t.Errorf("flow start/finish cycle allocates %.2f times, want ~0 (arena-recycled)", perCycle)
	}
}

// TestWaitQueueStorageBounded: the head-indexed ring must keep its backing
// array at a small multiple of the live waiter count under sustained churn,
// instead of growing with the total number of Wait calls.
func TestWaitQueueStorageBounded(t *testing.T) {
	e := NewEngine()
	var q WaitQueue
	const live, cycles = 4, 5000
	for i := 0; i < live; i++ {
		e.Spawn("w", func(p *Proc) {
			for j := 0; j < cycles; j++ {
				q.Wait(p, "cycle")
			}
		})
	}
	e.Spawn("waker", func(p *Proc) {
		for woken := 0; woken < live*cycles; {
			if q.WakeOne(e) {
				woken++
			} else {
				p.Sleep(1e-9)
			}
		}
	})
	e.Run()
	if q.Len() != 0 {
		t.Fatalf("queue not drained: %d waiters left", q.Len())
	}
	if c := cap(q.waiters); c > 4*live+8 {
		t.Errorf("backing storage grew to %d slots for %d live waiters over %d cycles",
			c, live, live*cycles)
	}
}

// BenchmarkEventSchedule measures the typed schedule+pop cycle.
func BenchmarkEventSchedule(b *testing.B) {
	e := NewEngine()
	p := &Proc{eng: e}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		e.scheduleResume(1, p)
		e.queue.pop()
	}
}

// BenchmarkProcHandoff measures a full block/resume round trip: one
// zero-length sleep per iteration.
func BenchmarkProcHandoff(b *testing.B) {
	e := NewEngine()
	n := b.N
	e.Spawn("pingpong", func(p *Proc) {
		for i := 0; i < n; i++ {
			p.Sleep(0)
		}
	})
	b.ReportAllocs()
	b.ResetTimer()
	e.Run()
}

// BenchmarkSettleCoalesce measures a 16-flow fan-out admitted at one
// timestamp — a collective's pattern. Lazy settling runs one component
// discovery + fill per batch instead of one per flow.
func BenchmarkSettleCoalesce(b *testing.B) {
	e := NewEngine()
	n := e.net
	res := make([]*Resource, 4)
	for i := range res {
		res[i] = NewResource(fmt.Sprintf("r%d", i), 1e9)
	}
	for i := 0; i < b.N; i++ {
		at := float64(i) * 1e-3
		e.At(at, func() {
			for k := 0; k < 16; k++ {
				n.Start("fan", 1e3, res[k%len(res):k%len(res)+1], 0)
			}
		})
	}
	b.ReportAllocs()
	b.ResetTimer()
	e.Run()
}

// BenchmarkComponentDrain measures retiring flows one at a time out of a
// wide shared component (~64 flows over one resource): the completion scan,
// swap-delete removal, and component refill.
func BenchmarkComponentDrain(b *testing.B) {
	e := NewEngine()
	n := e.net
	r := []*Resource{NewResource("shared", 1e9)}
	for i := 0; i < b.N; i++ {
		at := float64(i) * 1e-6
		bytes := 1e3 + float64(i%64)*8
		e.At(at, func() { n.Start("drain", bytes, r, 0) })
	}
	b.ReportAllocs()
	b.ResetTimer()
	e.Run()
}
