package sim

import (
	"runtime"
	"testing"
)

// TestSpawnContChurnZeroAlloc: spawning and retiring lightweight
// continuation processes in a loop must recycle the Proc through the
// engine's free list and never allocate a wrapper closure — the flat
// spawn/teardown path helper-heavy workloads (Isend/Irecv) ride on.
func TestSpawnContChurnZeroAlloc(t *testing.T) {
	child := func(c *Proc) {
		c.SleepThen(1e-9, func() {})
	}
	workload := func(iters int) {
		e := NewEngine()
		e.Spawn("spawner", func(p *Proc) {
			for i := 0; i < iters; i++ {
				e.SpawnCont("child", child)
				p.Sleep(2e-9)
			}
		})
		e.Run()
	}
	if extra := steadyStateAllocs(2000, 20000, workload); extra > 100 {
		t.Errorf("18000 extra SpawnCont spawn/teardown cycles allocated %d times, want ~0", extra)
	}
}

// TestSpawnContOrdering: converting a process between the goroutine and
// continuation backings must not reorder the simulation — both consume
// the same start-event sequence number and resume at the same times.
func TestSpawnContOrdering(t *testing.T) {
	run := func(lightFirst bool) []int {
		e := NewEngine()
		var order []int
		spawnHeavy := func(id int) {
			e.Spawn("h", func(p *Proc) {
				p.Sleep(1e-6)
				order = append(order, id)
			})
		}
		spawnLight := func(id int) {
			e.SpawnCont("l", func(p *Proc) {
				p.SleepThen(1e-6, func() { order = append(order, id) })
			})
		}
		if lightFirst {
			spawnLight(0)
			spawnHeavy(1)
			spawnLight(2)
		} else {
			spawnHeavy(0)
			spawnLight(1)
			spawnHeavy(2)
		}
		e.Run()
		return order
	}
	for _, lightFirst := range []bool{true, false} {
		got := run(lightFirst)
		if len(got) != 3 || got[0] != 0 || got[1] != 1 || got[2] != 2 {
			t.Errorf("lightFirst=%v: wake order %v, want [0 1 2]", lightFirst, got)
		}
	}
}

// TestWaitQueueShrinkAfterBurst: a queue that once held a large burst of
// waiters must release its backing array once the era that follows only
// needs a few slots — 10k-rank barriers must not pin 10k slots forever.
func TestWaitQueueShrinkAfterBurst(t *testing.T) {
	e := NewEngine()
	var q WaitQueue
	const burst = 1024
	for i := 0; i < burst; i++ {
		e.Spawn("burst", func(p *Proc) { q.Wait(p, "burst") })
	}
	var capAfterQuiet int
	e.Spawn("driver", func(p *Proc) {
		p.Sleep(1e-6) // let the burst enqueue
		q.WakeAll(e)  // first drain: maxLive == burst, array kept
		if cap(q.waiters) < burst {
			t.Errorf("backing array cap %d after burst of %d", cap(q.waiters), burst)
		}
		// A quiet era: a handful of waiters, then a drain. The empty
		// transition sees maxLive << cap/4 and releases the array.
		for i := 0; i < 4; i++ {
			e.Spawn("quiet", func(p *Proc) { q.Wait(p, "quiet") })
		}
		p.Sleep(1e-6)
		q.WakeAll(e)
		capAfterQuiet = cap(q.waiters)
	})
	e.Run()
	if capAfterQuiet != 0 {
		t.Errorf("backing array cap %d after quiet-era drain, want 0 (released)", capAfterQuiet)
	}
}

// TestWaitQueueSmallNeverShrinks: queues below shrinkMinCap keep their
// backing array across drains — releasing a mailbox-sized slice would
// reintroduce a steady-state allocation per wait cycle.
func TestWaitQueueSmallNeverShrinks(t *testing.T) {
	e := NewEngine()
	var q WaitQueue
	e.Spawn("w", func(p *Proc) {
		for i := 0; i < 3; i++ {
			q.Wait(p, "small")
		}
	})
	e.Spawn("waker", func(p *Proc) {
		for woken := 0; woken < 3; {
			if q.WakeOne(e) {
				woken++
			}
			p.Sleep(1e-9)
		}
	})
	e.Run()
	if cap(q.waiters) == 0 {
		t.Errorf("small queue released its backing array; shrink floor is %d", shrinkMinCap)
	}
}

// TestSettleTokenBudget: the process-wide settle-worker budget hands out
// at most GOMAXPROCS-1 tokens across all engines, never blocks on a
// shortfall, and restores capacity on release — the mechanism that keeps
// cells x settle workers bounded under a parallel sweep.
func TestSettleTokenBudget(t *testing.T) {
	budget := cap(settleTokens)
	if want := runtime.GOMAXPROCS(0) - 1; budget != want && !(want < 0 && budget == 0) {
		t.Fatalf("token capacity %d, want GOMAXPROCS-1 = %d", budget, want)
	}
	got := acquireSettleTokens(budget + 5)
	if got != budget {
		releaseSettleTokens(got)
		t.Fatalf("acquired %d tokens from a budget of %d", got, budget)
	}
	// Exhausted: further acquires return zero instead of blocking.
	if extra := acquireSettleTokens(1); extra != 0 {
		releaseSettleTokens(got + extra)
		t.Fatalf("acquired %d tokens past an exhausted budget", extra)
	}
	releaseSettleTokens(got)
	if again := acquireSettleTokens(budget); again != budget {
		releaseSettleTokens(again)
		t.Fatalf("re-acquired %d tokens after full release, want %d", again, budget)
	}
	releaseSettleTokens(budget)
}

// settleScenario drives a multi-component contention pattern and returns
// the simulated completion time of every transfer, in completion order.
// Several disjoint resource groups stay busy at once, so component-mode
// settling has real parallelism to find.
func settleScenario(t *testing.T, workers int) []float64 {
	t.Helper()
	e := NewEngine()
	if workers > 0 {
		e.SetSettleWorkers(workers)
	}
	const groups = 8
	var res [groups][2]*Resource
	for g := range res {
		res[g][0] = NewResource("mc", 1e9)
		res[g][1] = NewResource("link", 2e9)
	}
	var times []float64
	for g := 0; g < groups; g++ {
		g := g
		for i := 0; i < 40; i++ {
			i := i
			e.Spawn("mover", func(p *Proc) {
				p.Sleep(float64(i) * 1e-7)
				path := res[g][:1+(i%2)]
				p.Transfer("t", 1e3+float64(i*g)*17, path, 0)
				times = append(times, p.Now())
			})
		}
	}
	e.Run()
	return times
}

// TestComponentSettleWorkerIndependence: component-mode output is a pure
// function of the mode, not the worker count — n=2 and n=8 must produce
// bit-identical completion times.
func TestComponentSettleWorkerIndependence(t *testing.T) {
	base := settleScenario(t, 2)
	for _, n := range []int{3, 8} {
		got := settleScenario(t, n)
		if len(got) != len(base) {
			t.Fatalf("workers=%d: %d completions, want %d", n, len(got), len(base))
		}
		for i := range got {
			if got[i] != base[i] {
				t.Fatalf("workers=%d: completion %d at %.17g, workers=2 at %.17g", n, i, got[i], base[i])
			}
		}
	}
}

// TestComponentSettleRepeatable: the same component-mode run twice is
// bit-identical — parallel filling must not leak scheduling noise into
// the simulation.
func TestComponentSettleRepeatable(t *testing.T) {
	a := settleScenario(t, 4)
	b := settleScenario(t, 4)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("completion %d differs across identical runs: %.17g vs %.17g", i, a[i], b[i])
		}
	}
}
