package sim

import (
	"math"
	"testing"
)

func approx(t *testing.T, got, want, tol float64, msg string) {
	t.Helper()
	if math.Abs(got-want) > tol*(1+math.Abs(want)) {
		t.Fatalf("%s: got %g, want %g (tol %g)", msg, got, want, tol)
	}
}

func TestSleepOrdering(t *testing.T) {
	e := NewEngine()
	var order []string
	e.Spawn("a", func(p *Proc) {
		p.Sleep(2)
		order = append(order, "a@2")
	})
	e.Spawn("b", func(p *Proc) {
		p.Sleep(1)
		order = append(order, "b@1")
		p.Sleep(3)
		order = append(order, "b@4")
	})
	e.Run()
	want := []string{"b@1", "a@2", "b@4"}
	if len(order) != len(want) {
		t.Fatalf("order = %v, want %v", order, want)
	}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
	approx(t, e.Now(), 4, 1e-12, "final time")
}

func TestSimultaneousEventsFIFO(t *testing.T) {
	e := NewEngine()
	var order []int
	for i := 0; i < 5; i++ {
		i := i
		e.At(1.0, func() { order = append(order, i) })
	}
	e.Run()
	for i, v := range order {
		if v != i {
			t.Fatalf("events fired out of order: %v", order)
		}
	}
}

func TestZeroSleepYields(t *testing.T) {
	e := NewEngine()
	n := 0
	e.Spawn("z", func(p *Proc) {
		for i := 0; i < 10; i++ {
			p.Sleep(0)
			n++
		}
	})
	e.Run()
	if n != 10 {
		t.Fatalf("n = %d, want 10", n)
	}
	approx(t, e.Now(), 0, 1e-12, "time after zero sleeps")
}

func TestSingleFlowRate(t *testing.T) {
	e := NewEngine()
	r := NewResource("mc", 100) // 100 B/s
	e.Spawn("t", func(p *Proc) {
		p.Transfer("x", 250, []*Resource{r}, 0)
	})
	e.Run()
	approx(t, e.Now(), 2.5, 1e-9, "250 B at 100 B/s")
	approx(t, r.BytesServed(), 250, 1e-9, "bytes served")
}

func TestTwoFlowsShareFairly(t *testing.T) {
	e := NewEngine()
	r := NewResource("mc", 100)
	var t1, t2 float64
	e.Spawn("a", func(p *Proc) {
		p.Transfer("a", 100, []*Resource{r}, 0)
		t1 = p.Now()
	})
	e.Spawn("b", func(p *Proc) {
		p.Transfer("b", 100, []*Resource{r}, 0)
		t2 = p.Now()
	})
	e.Run()
	// Both share 100 B/s: each runs at 50 B/s until one finishes.
	approx(t, t1, 2.0, 1e-9, "flow a completion")
	approx(t, t2, 2.0, 1e-9, "flow b completion")
}

func TestStaggeredFlows(t *testing.T) {
	e := NewEngine()
	r := NewResource("mc", 100)
	var tA, tB float64
	e.Spawn("a", func(p *Proc) {
		p.Transfer("a", 150, []*Resource{r}, 0)
		tA = p.Now()
	})
	e.Spawn("b", func(p *Proc) {
		p.Sleep(1)
		p.Transfer("b", 100, []*Resource{r}, 0)
		tB = p.Now()
	})
	e.Run()
	// a runs alone for 1s (100 B done, 50 left). Then both at 50 B/s.
	// a finishes at t=2.0. b then runs alone: 50 B done at t=2, 50 left
	// at 100 B/s -> finishes at 2.5.
	approx(t, tA, 2.0, 1e-9, "flow a completion")
	approx(t, tB, 2.5, 1e-9, "flow b completion")
}

func TestFlowCeiling(t *testing.T) {
	e := NewEngine()
	r := NewResource("mc", 100)
	var tA float64
	e.Spawn("a", func(p *Proc) {
		p.Transfer("a", 100, []*Resource{r}, 20) // latency-bound flow
		tA = p.Now()
	})
	e.Run()
	approx(t, tA, 5.0, 1e-9, "ceiling-limited flow")
}

func TestCeilingLeavesHeadroomForOthers(t *testing.T) {
	e := NewEngine()
	r := NewResource("mc", 100)
	var tA, tB float64
	e.Spawn("a", func(p *Proc) {
		p.Transfer("a", 40, []*Resource{r}, 20)
		tA = p.Now()
	})
	e.Spawn("b", func(p *Proc) {
		p.Transfer("b", 160, []*Resource{r}, 0)
		tB = p.Now()
	})
	e.Run()
	// a frozen at 20 B/s, b gets 80 B/s. a: 40/20 = 2s. b: 160/80 = 2s.
	approx(t, tA, 2.0, 1e-9, "capped flow")
	approx(t, tB, 2.0, 1e-9, "uncapped flow")
}

func TestMultiResourcePathBottleneck(t *testing.T) {
	e := NewEngine()
	link := NewResource("link", 50)
	mc := NewResource("mc", 100)
	e.Spawn("a", func(p *Proc) {
		p.Transfer("a", 100, []*Resource{link, mc}, 0)
	})
	e.Run()
	approx(t, e.Now(), 2.0, 1e-9, "bottleneck is the 50 B/s link")
}

func TestCrossTrafficOnSharedLink(t *testing.T) {
	e := NewEngine()
	link := NewResource("link", 100)
	mcA := NewResource("mcA", 1000)
	mcB := NewResource("mcB", 1000)
	var tA, tB float64
	e.Spawn("a", func(p *Proc) {
		p.Transfer("a", 100, []*Resource{link, mcA}, 0)
		tA = p.Now()
	})
	e.Spawn("b", func(p *Proc) {
		p.Transfer("b", 100, []*Resource{link, mcB}, 0)
		tB = p.Now()
	})
	e.Run()
	approx(t, tA, 2.0, 1e-9, "a shares the link")
	approx(t, tB, 2.0, 1e-9, "b shares the link")
}

func TestTransferAllParallel(t *testing.T) {
	e := NewEngine()
	r1 := NewResource("r1", 100)
	r2 := NewResource("r2", 50)
	e.Spawn("a", func(p *Proc) {
		p.TransferAll("multi", []FlowSpec{
			{Bytes: 100, Path: []*Resource{r1}},
			{Bytes: 100, Path: []*Resource{r2}},
		})
	})
	e.Run()
	// Parallel: slower branch (2 s) dominates.
	approx(t, e.Now(), 2.0, 1e-9, "parallel transfer completes at max")
}

func TestZeroByteTransferIsFree(t *testing.T) {
	e := NewEngine()
	r := NewResource("r", 100)
	e.Spawn("a", func(p *Proc) {
		p.Transfer("z", 0, []*Resource{r}, 0)
	})
	e.Run()
	approx(t, e.Now(), 0, 1e-12, "zero-byte transfer")
}

func TestWaitQueueFIFO(t *testing.T) {
	e := NewEngine()
	var q WaitQueue
	var order []string
	for _, name := range []string{"a", "b", "c"} {
		name := name
		e.Spawn(name, func(p *Proc) {
			q.Wait(p, "test")
			order = append(order, name)
		})
	}
	e.Spawn("waker", func(p *Proc) {
		p.Sleep(1)
		q.WakeAll(e)
	})
	e.Run()
	if len(order) != 3 || order[0] != "a" || order[1] != "b" || order[2] != "c" {
		t.Fatalf("wake order = %v", order)
	}
}

func TestDeadlockPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected deadlock panic")
		}
	}()
	e := NewEngine()
	var q WaitQueue
	e.Spawn("stuck", func(p *Proc) { q.Wait(p, "forever") })
	e.Run()
}

func TestUtilizationAccounting(t *testing.T) {
	e := NewEngine()
	r := NewResource("mc", 100)
	e.Spawn("a", func(p *Proc) {
		p.Transfer("a", 100, []*Resource{r}, 50)
	})
	e.Run()
	// 2 seconds at 50% utilization.
	approx(t, r.Utilization(e.Now()), 0.5, 1e-9, "utilization")
}

func TestManyFlowsFairness(t *testing.T) {
	e := NewEngine()
	r := NewResource("mc", 100)
	const n = 10
	ends := make([]float64, n)
	for i := 0; i < n; i++ {
		i := i
		e.Spawn("f", func(p *Proc) {
			p.Transfer("f", 10, []*Resource{r}, 0)
			ends[i] = p.Now()
		})
	}
	e.Run()
	// n flows of 10 B each over 100 B/s: all complete at 1 s.
	for i, end := range ends {
		approx(t, end, 1.0, 1e-9, "flow completion")
		_ = i
	}
}

func TestSpawnDuringRun(t *testing.T) {
	e := NewEngine()
	var childDone float64
	e.Spawn("parent", func(p *Proc) {
		p.Sleep(1)
		e.Spawn("child", func(c *Proc) {
			c.Sleep(2)
			childDone = c.Now()
		})
		p.Sleep(5)
	})
	e.Run()
	approx(t, childDone, 3.0, 1e-9, "child spawned mid-run")
	approx(t, e.Now(), 6.0, 1e-9, "parent finishes last")
}

func TestSchedulePastPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for past event")
		}
	}()
	e := NewEngine()
	e.Spawn("a", func(p *Proc) { p.Sleep(5) })
	e.Run()
	e.At(1, func() {}) // now = 5: scheduling in the past must panic
}
