package sim

import (
	"math"
	"strings"
	"testing"
)

func mustPanic(t *testing.T, want string, fn func()) {
	t.Helper()
	defer func() {
		r := recover()
		if r == nil {
			t.Fatalf("no panic, want one containing %q", want)
		}
		msg, ok := r.(string)
		if !ok || !strings.Contains(msg, want) {
			t.Fatalf("panic %v, want one containing %q", r, want)
		}
	}()
	fn()
}

func TestAtRejectsNaNAndPast(t *testing.T) {
	e := NewEngine()
	e.At(1, func() {})
	e.At(1, func() {
		mustPanic(t, "before now", func() { e.At(0.5, func() {}) })
		mustPanic(t, "before now", func() { e.At(math.NaN(), func() {}) })
	})
	e.Run()
}

func TestSleepRejectsNaN(t *testing.T) {
	e := NewEngine()
	e.Spawn("naps", func(p *Proc) {
		p.Sleep(0.25)
		mustPanic(t, "sleeping NaN", func() { p.Sleep(math.NaN()) })
	})
	e.Run()
}

func TestFlowStartRejectsInvalidArgs(t *testing.T) {
	e := NewEngine()
	r := NewResource("r", 100)
	path := []*Resource{r}
	for _, tc := range []struct {
		name           string
		bytes, ceiling float64
		want           string
	}{
		{"nan-bytes", math.NaN(), 0, "invalid volume"},
		{"neg-bytes", -1, 0, "invalid volume"},
		{"inf-bytes", math.Inf(1), 0, "invalid volume"},
		{"nan-ceiling", 10, math.NaN(), "invalid rate ceiling"},
		{"neg-inf-ceiling", 10, math.Inf(-1), "invalid rate ceiling"},
	} {
		mustPanic(t, tc.want, func() { e.net.Start(tc.name, tc.bytes, path, tc.ceiling) })
	}
	// The guards must not reject legitimate flows.
	e.net.Start("ok", 50, path, 0)
	e.Run()
}

// TestWakeOneReleasesWokenProc checks that WakeOne clears the vacated
// backing-array slot: re-slicing alone would keep every woken *Proc
// reachable through the queue's backing array for its whole lifetime.
func TestWakeOneReleasesWokenProc(t *testing.T) {
	e := NewEngine()
	var q WaitQueue
	for i := 0; i < 3; i++ {
		e.Spawn("w", func(p *Proc) { q.Wait(p, "test") })
	}
	e.At(1, func() {
		backing := q.waiters[:3]
		q.WakeOne(e)
		q.WakeOne(e)
		if backing[0] != nil || backing[1] != nil {
			t.Errorf("vacated slots not cleared: %v", backing[:2])
		}
		if backing[2] == nil || q.Len() != 1 {
			t.Errorf("remaining waiter lost (len=%d)", q.Len())
		}
		q.WakeOne(e)
	})
	e.Run()
}

func TestStatsCounters(t *testing.T) {
	e := NewEngine()
	r := NewResource("mc", 100)
	e.Spawn("p", func(p *Proc) {
		p.Transfer("a", 50, []*Resource{r}, 0)
		p.Sleep(1)
		p.Transfer("b", 25, []*Resource{r}, 0)
	})
	e.Run()
	s := e.Stats()
	if s.Flows != 2 {
		t.Errorf("Flows = %d, want 2", s.Flows)
	}
	if s.Events == 0 || s.Settles == 0 {
		t.Errorf("Events = %d, Settles = %d, want both > 0", s.Events, s.Settles)
	}
	if s.Procs != nil || s.Resources != nil {
		t.Errorf("detail populated without EnableObservation: %+v", s)
	}
}

func TestProcStateTimes(t *testing.T) {
	e := NewEngine()
	e.EnableObservation()
	r := NewResource("mc", 100)
	var q WaitQueue
	e.Spawn("worker", func(p *Proc) {
		p.Sleep(1)                              // 1 s sleeping
		p.Transfer("x", 200, []*Resource{r}, 0) // 2 s blocked on flow
		q.Wait(p, "handoff")                    // 3 s queued (woken at t=6)
	})
	e.Spawn("waker", func(p *Proc) {
		p.Sleep(6)
		q.WakeOne(e)
	})
	e.Run()
	s := e.Stats()
	if len(s.Procs) != 2 {
		t.Fatalf("got %d procs, want 2", len(s.Procs))
	}
	w := s.Procs[0]
	if w.Name != "worker" {
		t.Fatalf("procs out of registration order: %q first", w.Name)
	}
	approx := func(name string, got, want float64) {
		if math.Abs(got-want) > 1e-9 {
			t.Errorf("%s = %g, want %g", name, got, want)
		}
	}
	approx("Sleeping", w.Sleeping, 1)
	approx("BlockedFlow", w.BlockedFlow, 2)
	approx("BlockedQueue", w.BlockedQueue, 3)
	approx("Total", w.Total(), 6)
	approx("waker.Total", s.Procs[1].Total(), 6)
}

// TestResourceTimelineMatchesIntegral cross-checks the observer's
// piecewise-constant rate timeline against the independently accrued
// busyIntegral: integrating the segments must reproduce the bytes served.
func TestResourceTimelineMatchesIntegral(t *testing.T) {
	e := NewEngine()
	e.EnableObservation()
	res := []*Resource{NewResource("a", 100), NewResource("b", 150), NewResource("c", 80)}
	// Overlapping flows over shared sub-paths so rates change mid-flight.
	e.At(0, func() { e.net.Start("f0", 300, res[0:2], 0) })
	e.At(0.5, func() { e.net.Start("f1", 200, res[1:3], 90) })
	e.At(1, func() { e.net.Start("f2", 120, res[0:3], 0) })
	e.Run()
	s := e.Stats()
	if len(s.Resources) != 3 {
		t.Fatalf("got %d resources, want 3", len(s.Resources))
	}
	byName := map[string]*Resource{"a": res[0], "b": res[1], "c": res[2]}
	for _, rs := range s.Resources {
		integral, last := 0.0, math.Inf(-1)
		for _, seg := range rs.Segments {
			if seg.Start < last {
				t.Errorf("%s: segments overlap or regress at %g", rs.Name, seg.Start)
			}
			if seg.End <= seg.Start || seg.Rate <= 0 {
				t.Errorf("%s: degenerate segment %+v", rs.Name, seg)
			}
			if seg.Rate > rs.Cap*(1+1e-9) {
				t.Errorf("%s: segment rate %g exceeds capacity %g", rs.Name, seg.Rate, rs.Cap)
			}
			integral += seg.Rate * (seg.End - seg.Start)
			last = seg.End
		}
		want := byName[rs.Name].BytesServed()
		if math.Abs(integral-want) > 1e-6*(1+want) {
			t.Errorf("%s: timeline integral %g != bytes served %g", rs.Name, integral, want)
		}
	}
}

// TestStatsReproducible runs the same observed simulation twice and
// requires identical snapshots — the observability layer must not perturb
// or depend on anything outside the simulation inputs.
func TestStatsReproducible(t *testing.T) {
	run := func() Stats {
		e := NewEngine()
		e.EnableObservation()
		r := []*Resource{NewResource("a", 100), NewResource("b", 60)}
		for i := 0; i < 4; i++ {
			i := i
			e.Spawn("p", func(p *Proc) {
				p.Sleep(float64(i) * 0.1)
				p.Transfer("t", 50+float64(i)*10, r[i%2:i%2+1], 0)
			})
		}
		e.Run()
		return e.Stats()
	}
	a, b := run(), run()
	if a.Events != b.Events || a.Flows != b.Flows || a.Settles != b.Settles {
		t.Fatalf("counters differ: %+v vs %+v", a, b)
	}
	for i := range a.Procs {
		if a.Procs[i] != b.Procs[i] {
			t.Fatalf("proc %d stats differ: %+v vs %+v", i, a.Procs[i], b.Procs[i])
		}
	}
	for i := range a.Resources {
		x, y := a.Resources[i], b.Resources[i]
		if x.Name != y.Name || len(x.Segments) != len(y.Segments) {
			t.Fatalf("resource %d timelines differ", i)
		}
		for j := range x.Segments {
			if x.Segments[j] != y.Segments[j] {
				t.Fatalf("resource %s segment %d differs: %+v vs %+v", x.Name, j, x.Segments[j], y.Segments[j])
			}
		}
	}
}
