package sim

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// TestFlowConservation: every byte admitted to the network is eventually
// served by every resource on its path (counting duplicate occurrences),
// and no resource exceeds its capacity-time budget.
func TestFlowConservation(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		e := NewEngine()
		nRes := 2 + rng.Intn(4)
		res := make([]*Resource, nRes)
		for i := range res {
			res[i] = NewResource("r", 50+rng.Float64()*200)
		}
		type load struct {
			bytes float64
			path  []*Resource
		}
		expected := map[*Resource]float64{}
		nFlows := 1 + rng.Intn(8)
		for i := 0; i < nFlows; i++ {
			bytes := 10 + rng.Float64()*1000
			pathLen := 1 + rng.Intn(nRes)
			path := make([]*Resource, pathLen)
			for j := range path {
				path[j] = res[rng.Intn(nRes)]
			}
			for _, r := range path {
				expected[r] += bytes
			}
			delay := rng.Float64() * 2
			ceiling := 0.0
			if rng.Intn(3) == 0 {
				ceiling = 20 + rng.Float64()*100
			}
			p := path
			b := bytes
			c := ceiling
			e.Spawn("w", func(pr *Proc) {
				pr.Sleep(delay)
				pr.Transfer("x", b, p, c)
			})
		}
		e.Run()
		now := e.Now()
		for _, r := range res {
			want := expected[r]
			if math.Abs(r.BytesServed()-want) > 1e-6*(1+want) {
				return false
			}
			// Served bytes cannot exceed capacity * elapsed time.
			if r.BytesServed() > r.Cap*now*(1+1e-9) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// TestMakespanLowerBound: the simulated makespan can never beat the
// per-resource bandwidth bound max_r(totalBytes_r / cap_r).
func TestMakespanLowerBound(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		e := NewEngine()
		r1 := NewResource("a", 100+rng.Float64()*100)
		r2 := NewResource("b", 100+rng.Float64()*100)
		var t1, t2 float64
		n := 2 + rng.Intn(6)
		for i := 0; i < n; i++ {
			b := 50 + rng.Float64()*500
			both := rng.Intn(2) == 0
			bb := b
			e.Spawn("w", func(p *Proc) {
				if both {
					p.Transfer("x", bb, []*Resource{r1, r2}, 0)
				} else {
					p.Transfer("x", bb, []*Resource{r1}, 0)
				}
			})
			t1 += b
			if both {
				t2 += b
			}
		}
		e.Run()
		bound := math.Max(t1/r1.Cap, t2/r2.Cap)
		return e.Now() >= bound*(1-1e-9)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// TestRatesRespectCeilings: no flow ever runs above its ceiling.
func TestRatesRespectCeilings(t *testing.T) {
	e := NewEngine()
	r := NewResource("r", 1000)
	const ceiling = 70.0
	const bytes = 700.0
	var end float64
	e.Spawn("w", func(p *Proc) {
		p.Transfer("x", bytes, []*Resource{r}, ceiling)
		end = p.Now()
	})
	e.Run()
	if end < bytes/ceiling-1e-9 {
		t.Fatalf("flow finished at %v, faster than its ceiling allows (%v)", end, bytes/ceiling)
	}
}
