package sim

import (
	"context"
	"errors"
	"testing"
)

// TestRunContextDeadlockError checks the watchdog: when the event heap
// drains with processes still blocked, RunContext returns a structured
// *DeadlockError naming every stuck process (sorted) with its wait label,
// instead of hanging or panicking.
func TestRunContextDeadlockError(t *testing.T) {
	e := NewEngine()
	var q WaitQueue
	e.Spawn("zeta", func(p *Proc) { q.Wait(p, "recv from 1") })
	e.Spawn("alpha", func(p *Proc) { q.Wait(p, "rendezvous to 0") })
	e.Spawn("fine", func(p *Proc) { p.Sleep(1) })
	err := e.RunContext(context.Background())
	var dl *DeadlockError
	if !errors.As(err, &dl) {
		t.Fatalf("got %v, want *DeadlockError", err)
	}
	if dl.Live != 2 {
		t.Fatalf("Live = %d, want 2", dl.Live)
	}
	if len(dl.Blocked) != 2 {
		t.Fatalf("Blocked = %v, want 2 entries", dl.Blocked)
	}
	if dl.Blocked[0].Name != "alpha" || dl.Blocked[1].Name != "zeta" {
		t.Fatalf("blocked names not sorted: %v", dl.Blocked)
	}
	if dl.Blocked[0].Wait != "rendezvous to 0" || dl.Blocked[1].Wait != "recv from 1" {
		t.Fatalf("wait labels lost: %v", dl.Blocked)
	}
	if dl.Time != 1 {
		t.Fatalf("deadlock detected at t=%g, want 1 (after the healthy proc finished)", dl.Time)
	}
}

// TestRunContextPreCanceled checks that an already-canceled context stops
// the run before any event fires.
func TestRunContextPreCanceled(t *testing.T) {
	e := NewEngine()
	ran := false
	e.Spawn("p", func(p *Proc) { ran = true })
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	err := e.RunContext(ctx)
	var ce *CanceledError
	if !errors.As(err, &ce) {
		t.Fatalf("got %v, want *CanceledError", err)
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("CanceledError should unwrap to context.Canceled, got %v", err)
	}
	if ran {
		t.Fatal("process body ran despite pre-canceled context")
	}
}

// TestRunContextCancelMidRun cancels the context partway through a long
// simulation and checks the run aborts at an intermediate simulated time
// with every goroutine released (the engine would deadlock the test
// otherwise).
func TestRunContextCancelMidRun(t *testing.T) {
	e := NewEngine()
	ctx, cancel := context.WithCancel(context.Background())
	e.Spawn("spinner", func(p *Proc) {
		// Far more events than ctxCheckStride, so the poll must fire.
		for i := 0; i < 1_000_000; i++ {
			p.Sleep(1)
		}
	})
	e.At(10, func() { cancel() })
	err := e.RunContext(ctx)
	var ce *CanceledError
	if !errors.As(err, &ce) {
		t.Fatalf("got %v, want *CanceledError", err)
	}
	if ce.Time < 10 || ce.Time > 10+2*ctxCheckStride {
		t.Fatalf("aborted at t=%g, want shortly after 10", ce.Time)
	}
}

// TestRunPanicsOnDeadlockValue pins the legacy contract: Run panics with
// the *DeadlockError value so old callers still fail loudly with the
// structured diagnosis.
func TestRunPanicsOnDeadlockValue(t *testing.T) {
	defer func() {
		p := recover()
		if p == nil {
			t.Fatal("expected deadlock panic")
		}
		if _, ok := p.(*DeadlockError); !ok {
			t.Fatalf("panic value is %T, want *DeadlockError", p)
		}
	}()
	e := NewEngine()
	var q WaitQueue
	e.Spawn("stuck", func(p *Proc) { q.Wait(p, "forever") })
	e.Run()
}
