package sim

import (
	"fmt"
	"math"
	"sort"
)

// Resource is a capacity-limited element of the flow network: a memory
// controller, a HyperTransport link direction, or a per-core issue port.
// Concurrent flows crossing a resource share its capacity max-min fairly.
type Resource struct {
	Name string
	Cap  float64 // bytes per second

	flows map[*Flow]struct{}

	// Utilization accounting.
	busyIntegral float64 // integral of used rate over time (bytes)
	lastUsedRate float64
}

// NewResource creates a resource with the given capacity in bytes/second.
func NewResource(name string, capacity float64) *Resource {
	if capacity <= 0 {
		panic("sim: resource capacity must be positive: " + name)
	}
	return &Resource{Name: name, Cap: capacity, flows: make(map[*Flow]struct{})}
}

// BytesServed returns the total bytes that have crossed this resource.
func (r *Resource) BytesServed() float64 { return r.busyIntegral }

// ActiveFlows returns the number of flows currently crossing this resource.
func (r *Resource) ActiveFlows() int { return len(r.flows) }

// Utilization returns mean utilization over [0, now].
func (r *Resource) Utilization(now float64) float64 {
	if now <= 0 {
		return 0
	}
	return r.busyIntegral / (r.Cap * now)
}

// Flow is a fluid transfer of a byte volume across a path of resources.
type Flow struct {
	remaining float64
	ceiling   float64 // per-flow rate cap; 0 means unlimited
	path      []*Resource
	rate      float64
	waiters   []*Proc
	onDone    []func()
	done      bool
	label     string
	seq       uint64
}

// Rate returns the flow's current allocated rate in bytes/second.
func (f *Flow) Rate() float64 { return f.rate }

// Done reports whether the flow has completed.
func (f *Flow) Done() bool { return f.done }

// FlowNet manages active flows and assigns rates by progressive filling.
type FlowNet struct {
	eng        *Engine
	flows      map[*Flow]struct{}
	lastSettle float64
	gen        uint64 // invalidates scheduled completion events
	seq        uint64 // flow admission order, for deterministic completion
}

func newFlowNet(e *Engine) *FlowNet {
	return &FlowNet{eng: e, flows: make(map[*Flow]struct{})}
}

// settle advances all flow progress to the current time.
func (n *FlowNet) settle() {
	dt := n.eng.now - n.lastSettle
	if dt > 0 {
		for f := range n.flows {
			f.remaining -= f.rate * dt
			if f.remaining < 0 {
				f.remaining = 0
			}
		}
		// Accumulate resource utilization.
		seen := map[*Resource]float64{}
		for f := range n.flows {
			for _, r := range f.path {
				seen[r] += f.rate
			}
		}
		for r, used := range seen {
			r.busyIntegral += used * dt
		}
	}
	n.lastSettle = n.eng.now
}

// recompute runs progressive filling over all active flows, then schedules
// the next completion event.
func (n *FlowNet) recompute() {
	// Reset.
	type rstate struct {
		avail  float64
		active int
	}
	states := map[*Resource]*rstate{}
	unfrozen := make([]*Flow, 0, len(n.flows))
	for f := range n.flows {
		f.rate = 0
		unfrozen = append(unfrozen, f)
		for _, r := range f.path {
			if _, ok := states[r]; !ok {
				states[r] = &rstate{avail: r.Cap}
			}
			states[r].active++
		}
	}

	level := 0.0
	for len(unfrozen) > 0 {
		// Smallest additional rate increment any constraint allows.
		inc := math.Inf(1)
		for _, f := range unfrozen {
			if f.ceiling > 0 {
				if d := f.ceiling - level; d < inc {
					inc = d
				}
			}
			for _, r := range f.path {
				st := states[r]
				if st.active > 0 {
					if d := st.avail / float64(st.active); d < inc {
						inc = d
					}
				}
			}
		}
		if math.IsInf(inc, 1) {
			// No constraint at all (flows with empty paths and no
			// ceiling): they complete instantly; give them a huge rate.
			for _, f := range unfrozen {
				f.rate = math.Inf(1)
			}
			break
		}
		if inc < 0 {
			inc = 0
		}
		level += inc
		// Charge resources and find newly frozen flows.
		for _, st := range states {
			st.avail -= inc * float64(st.active)
			if st.avail < 0 {
				st.avail = 0
			}
		}
		next := unfrozen[:0]
		for _, f := range unfrozen {
			frozen := false
			if f.ceiling > 0 && level >= f.ceiling-1e-15 {
				frozen = true
			}
			if !frozen {
				for _, r := range f.path {
					if states[r].avail <= 1e-9*r.Cap {
						frozen = true
						break
					}
				}
			}
			f.rate = level
			if frozen {
				for _, r := range f.path {
					states[r].active--
				}
			} else {
				next = append(next, f)
			}
		}
		if len(next) == len(unfrozen) {
			// Safety: no progress possible (all increments ~0).
			break
		}
		unfrozen = next
	}

	n.scheduleNextCompletion()
}

func (n *FlowNet) scheduleNextCompletion() {
	n.gen++
	gen := n.gen
	next := math.Inf(1)
	for f := range n.flows {
		if f.rate <= 0 {
			if f.remaining <= almostZero {
				next = 0
			}
			continue
		}
		if t := f.remaining / f.rate; t < next {
			next = t
		}
	}
	if math.IsInf(next, 1) {
		if len(n.flows) > 0 {
			panic("sim: active flows can make no progress (zero-capacity path?)")
		}
		return
	}
	// Clamp to the clock's float64 resolution: a delay below one ulp of
	// `now` would schedule an event at the same timestamp and live-lock
	// (settle would see dt == 0 and never drain the last bytes).
	if ulp := math.Nextafter(n.eng.now, math.Inf(1)) - n.eng.now; next < ulp {
		next = ulp
	}
	n.eng.After(next, func() {
		if gen != n.gen {
			return // superseded by a later recompute
		}
		n.completeFinished()
	})
}

// completeFinished settles, retires finished flows, and recomputes.
func (n *FlowNet) completeFinished() {
	n.settle()
	finished := make([]*Flow, 0, 2)
	for f := range n.flows {
		if f.remaining <= almostZero || math.IsInf(f.rate, 1) {
			finished = append(finished, f)
		}
	}
	// Process in admission order so downstream wakeups are deterministic
	// regardless of map iteration order.
	sort.Slice(finished, func(i, j int) bool { return finished[i].seq < finished[j].seq })
	for _, f := range finished {
		delete(n.flows, f)
		for _, r := range f.path {
			delete(r.flows, f)
		}
		f.done = true
		f.rate = 0
	}
	n.recompute()
	e := n.eng
	for _, f := range finished {
		for _, cb := range f.onDone {
			cb()
		}
		for _, p := range f.waiters {
			pp := p
			e.At(e.now, func() { e.resume(pp) })
		}
		f.onDone, f.waiters = nil, nil
	}
}

// Start begins a flow of bytes over path with an optional per-flow rate
// ceiling (0 = none). A zero-byte flow completes at the current time.
// The returned flow can be waited on with Proc.WaitFlow or observed with
// OnDone.
func (n *FlowNet) Start(label string, bytes float64, path []*Resource, ceiling float64) *Flow {
	if bytes < 0 {
		panic("sim: negative flow volume")
	}
	n.seq++
	f := &Flow{remaining: bytes, ceiling: ceiling, path: path, label: label, seq: n.seq}
	n.settle()
	n.flows[f] = struct{}{}
	for _, r := range path {
		r.flows[f] = struct{}{}
	}
	n.recompute()
	return f
}

// OnDone registers cb to run when the flow completes. If the flow has
// already completed, cb runs immediately.
func (f *Flow) OnDone(n *FlowNet, cb func()) {
	if f.done {
		cb()
		return
	}
	f.onDone = append(f.onDone, cb)
}

// WaitFlow blocks the process until the flow completes.
func (p *Proc) WaitFlow(f *Flow) {
	if f.done {
		// Still yield once so zero-time transfers keep FIFO fairness.
		p.Sleep(0)
		return
	}
	f.waiters = append(f.waiters, p)
	p.block("flow " + f.label)
}

// Transfer starts a flow and blocks until it completes. It is the common
// case for memory streams and message copies.
func (p *Proc) Transfer(label string, bytes float64, path []*Resource, ceiling float64) {
	if bytes <= 0 {
		return
	}
	f := p.eng.net.Start(label, bytes, path, ceiling)
	p.WaitFlow(f)
}

// TransferAll starts several flows at once and blocks until every one of
// them has completed (parallel transfers from a single process, e.g. an
// access striped over multiple memory nodes).
func (p *Proc) TransferAll(label string, specs []FlowSpec) {
	pending := 0
	for _, s := range specs {
		if s.Bytes <= 0 {
			continue
		}
		f := p.eng.net.Start(label, s.Bytes, s.Path, s.Ceiling)
		if !f.done {
			pending++
			f.waiters = append(f.waiters, p)
		}
	}
	for pending > 0 {
		p.block("flows " + label)
		pending--
	}
}

// FlowSpec describes one flow for TransferAll.
type FlowSpec struct {
	Bytes   float64
	Path    []*Resource
	Ceiling float64
}

func (f *Flow) String() string {
	return fmt.Sprintf("flow(%s rem=%.0f rate=%.0f)", f.label, f.remaining, f.rate)
}
