package sim

import (
	"fmt"
	"math"
	"runtime"
	"sync"
	"sync/atomic"
)

// Resource is a capacity-limited element of the flow network: a memory
// controller, a HyperTransport link direction, or a per-core issue port.
// Concurrent flows crossing a resource share its capacity max-min fairly.
type Resource struct {
	Name string
	Cap  float64 // bytes per second

	flows []flowRef // active flow crossings, unordered (swap-delete)

	// net is the flow network that first admitted a flow over this
	// resource; the utilization getters flush pending admissions through
	// it so readers always see settled accounting.
	net *FlowNet

	// Utilization accounting.
	busyIntegral float64 // integral of used rate over time (bytes)

	// Incrementally-maintained state, owned by the FlowNet. usedRate is
	// the sum of the rates of the flows currently crossing the resource,
	// refreshed whenever the resource's component is re-filled; it lets
	// settle() accrue busyIntegral without rebuilding a rate map.
	usedRate  float64
	inActive  bool // member of FlowNet.activeRes
	activeIdx int  // position in FlowNet.activeRes while inActive

	// Scratch for component discovery and progressive filling: a resource
	// is "touched" by the current pass iff epoch matches the FlowNet's.
	epoch  uint64
	avail  float64 // remaining headroom at the current filling level
	active int     // unfrozen flows crossing the resource

	// Observation (populated only when the engine's observer is active):
	// the piecewise-constant used-rate timeline, accrued in settle.
	observed bool
	segments []RateSegment
}

// flowRef is one crossing of a flow over a resource. pi is the crossing's
// index in the flow's path (paths may cross the same resource more than
// once), so a swap-delete that moves this entry can repair the flow-side
// slot table in O(1).
type flowRef struct {
	f  *Flow
	pi int32
}

// NewResource creates a resource with the given capacity in bytes/second.
func NewResource(name string, capacity float64) *Resource {
	if capacity <= 0 {
		panic("sim: resource capacity must be positive: " + name)
	}
	return &Resource{Name: name, Cap: capacity}
}

// BytesServed returns the total bytes that have crossed this resource.
func (r *Resource) BytesServed() float64 {
	if r.net != nil && r.net.dirty {
		r.net.flush()
	}
	return r.busyIntegral
}

// ActiveFlows returns the number of flows currently crossing this resource.
func (r *Resource) ActiveFlows() int { return len(r.flows) }

// Utilization returns mean utilization over [0, now].
func (r *Resource) Utilization(now float64) float64 {
	if now <= 0 {
		return 0
	}
	return r.BytesServed() / (r.Cap * now)
}

// Flow is a fluid transfer of a byte volume across a path of resources.
//
// Flows are slab objects: FlowNet.Start services the spawn from a free
// list when the previous owner released its flow back (see release), so
// the transfer churn that dominates spawn/teardown at 10k+ ranks recycles
// a fixed arena instead of allocating per message. The path is copied
// into flow-owned storage at admission, which both decouples the arena
// from caller buffers and lets callers reuse path scratch across Start
// calls.
type Flow struct {
	remaining float64
	ceiling   float64 // per-flow rate cap; 0 means unlimited
	path      []*Resource
	rate      float64
	waiters   []*Proc
	onDone    []func()
	done      bool
	released  bool // returned to the arena; guards double release
	label     string
	seq       uint64
	epoch     uint64 // visit stamp for component discovery
	netIdx    int    // position in FlowNet.flows, for O(1) removal
	net       *FlowNet

	// slots[k] is the index of path crossing k in path[k].flows, kept in
	// sync by the swap-deletes so retirement needs no membership scans.
	// slotsBuf keeps typical paths allocation-free, pathBuf does the same
	// for the flow-owned path copy, and waitersBuf for the common
	// single-waiter (Transfer) case. Long paths spill into pathSpill and
	// slotsSpill, which the arena retains so a recycled flow reuses the
	// allocations.
	slots      []int32
	slotsBuf   [8]int32
	pathBuf    [8]*Resource
	pathSpill  []*Resource
	slotsSpill []int32
	waitersBuf [2]*Proc
}

// removeCrossing drops crossing k of f from the resource's flow list by
// swap-delete, repairing the moved entry's slot index.
func (r *Resource) removeCrossing(f *Flow, k int) {
	s := f.slots[k]
	last := int32(len(r.flows) - 1)
	moved := r.flows[last]
	r.flows[s] = moved
	moved.f.slots[moved.pi] = s
	r.flows[last] = flowRef{}
	r.flows = r.flows[:last]
}

// Rate returns the flow's current allocated rate in bytes/second.
func (f *Flow) Rate() float64 {
	if !f.done && f.net.dirty {
		f.net.flush()
	}
	return f.rate
}

// Done reports whether the flow has completed.
func (f *Flow) Done() bool { return f.done }

// FlowNet manages active flows and assigns rates by progressive filling.
//
// Rate assignment is incremental and batched. Admissions are lazy: Start
// only records the flow and marks the network dirty, and the engine
// flushes once per distinct timestamp — settling progress, re-filling the
// union of the touched components, and scheduling the next completion
// check — so an N-flow collective fan-out costs one fill pass instead of
// N. Retirements settle eagerly inside completeFinished. Max-min rates
// depend only on the active flow set, never on the admission history, so
// the batched fill assigns exactly the rates the per-admission fills
// would have left behind; and since no simulated time passes between an
// admission and its flush, no progress is ever accrued under pre-flush
// rates. Readers that can observe rates or utilization mid-timestamp
// (Flow.Rate, Resource.BytesServed) flush on demand.
type FlowNet struct {
	eng        *Engine
	flows      []*Flow // active flows, unordered (swap-delete)
	lastSettle float64
	gen        uint64 // invalidates scheduled completion events
	seq        uint64 // flow admission order, for deterministic completion
	epoch      uint64 // current discovery/filling pass

	// freeFlows is the arena's free list: flows released by their owners
	// after completion, recycled by Start.
	freeFlows []*Flow

	// dirty marks admissions awaiting a flush; dirtySeeds are the flows
	// whose components must be re-filled.
	dirty      bool
	dirtySeeds []*Flow

	// activeRes lists every resource with at least one active flow;
	// the remaining slices are reusable scratch for component discovery,
	// filling, and retirement. compFlows holds the discovered components
	// back to back, compEnds the end index of each.
	activeRes []*Resource
	compFlows []*Flow
	compEnds  []int
	resQueue  []*Resource
	seeds     []*Flow
	finished  []*Flow

	// scratches[i] is the private filling scratch of concurrent settle
	// worker i; scratches[0] doubles as the serial path's scratch.
	scratches []*fillScratch
}

// fillScratch is the per-worker reusable state of one progressive-filling
// pass; giving each settle worker its own keeps parallel fills race-free.
type fillScratch struct {
	res      []*Resource
	unfrozen []*Flow
}

func newFlowNet(e *Engine) *FlowNet {
	return &FlowNet{eng: e, scratches: []*fillScratch{{}}}
}

// settleTokens is the process-wide budget of extra settle workers: an
// engine that wants to fill k components concurrently takes k-1 tokens
// (non-blocking; a shortfall just means fewer workers, never waiting).
// Capacity GOMAXPROCS-1 bounds cells × settle workers near the machine
// width no matter how many engines run concurrently.
var settleTokens chan struct{}

func init() {
	n := runtime.GOMAXPROCS(0) - 1
	if n < 0 {
		n = 0
	}
	settleTokens = make(chan struct{}, n)
	for i := 0; i < n; i++ {
		settleTokens <- struct{}{}
	}
}

func acquireSettleTokens(want int) int {
	got := 0
	for got < want {
		select {
		case <-settleTokens:
			got++
		default:
			return got
		}
	}
	return got
}

func releaseSettleTokens(n int) {
	for ; n > 0; n-- {
		settleTokens <- struct{}{}
	}
}

// addFlow registers f as active.
func (n *FlowNet) addFlow(f *Flow) {
	f.netIdx = len(n.flows)
	n.flows = append(n.flows, f)
}

// removeFlow drops f from the active set by swap-delete.
func (n *FlowNet) removeFlow(f *Flow) {
	last := len(n.flows) - 1
	moved := n.flows[last]
	n.flows[f.netIdx] = moved
	moved.netIdx = f.netIdx
	n.flows[last] = nil
	n.flows = n.flows[:last]
}

// dropActive removes r from the active-resource list by swap-delete.
func (n *FlowNet) dropActive(r *Resource) {
	last := len(n.activeRes) - 1
	moved := n.activeRes[last]
	n.activeRes[r.activeIdx] = moved
	moved.activeIdx = r.activeIdx
	n.activeRes[last] = nil
	n.activeRes = n.activeRes[:last]
	r.inActive = false
	r.usedRate = 0
}

// settle advances all flow progress to the current time.
func (n *FlowNet) settle() {
	dt := n.eng.now - n.lastSettle
	if dt > 0 {
		n.eng.statSettles++
		for _, f := range n.flows {
			f.remaining -= f.rate * dt
			if f.remaining < 0 {
				f.remaining = 0
			}
		}
		// Accrue resource utilization from the maintained used rates.
		// Flows admitted at the current instant contribute nothing: their
		// resources carry a zero used rate until the fill that follows.
		obs := n.eng.obs
		for _, r := range n.activeRes {
			r.busyIntegral += r.usedRate * dt
			if obs != nil {
				obs.recordSegment(r, n.lastSettle, n.eng.now, r.usedRate)
			}
		}
	}
	n.lastSettle = n.eng.now
}

// components discovers the connected component of every seed flow,
// leaving them back to back in compFlows with per-component end indices
// in compEnds. Components are disjoint by construction (a seed whose
// component was already discovered is skipped), each sorted into
// admission order, and listed in first-seed order — the deterministic
// unit of work for both serial and parallel filling. Duplicate seeds are
// tolerated.
func (n *FlowNet) components(seeds []*Flow) {
	n.epoch++
	ep := n.epoch
	out := n.compFlows[:0]
	ends := n.compEnds[:0]
	queue := n.resQueue[:0]
	for _, s := range seeds {
		if s.epoch == ep {
			continue
		}
		start := len(out)
		s.epoch = ep
		out = append(out, s)
		for _, r := range s.path {
			if r.epoch != ep {
				r.epoch = ep
				queue = append(queue, r)
			}
		}
		for len(queue) > 0 {
			r := queue[len(queue)-1]
			queue = queue[:len(queue)-1]
			for _, fr := range r.flows {
				f := fr.f
				if f.epoch == ep {
					continue
				}
				f.epoch = ep
				out = append(out, f)
				for _, r2 := range f.path {
					if r2.epoch != ep {
						r2.epoch = ep
						queue = append(queue, r2)
					}
				}
			}
		}
		// Discovery visits flows in swap-delete (arbitrary) order;
		// admission order keeps every later pass (filling, used-rate
		// refresh) deterministic.
		sortFlowsBySeq(out[start:])
		ends = append(ends, len(out))
	}
	n.compFlows = out
	n.compEnds = ends
	n.resQueue = queue[:0]
}

// sortFlowsBySeq orders flows by admission seq with an insertion sort:
// components are typically small, and unlike sort.Slice this allocates
// nothing on the settle path.
func sortFlowsBySeq(fs []*Flow) {
	for i := 1; i < len(fs); i++ {
		f := fs[i]
		j := i - 1
		for j >= 0 && fs[j].seq > f.seq {
			fs[j+1] = fs[j]
			j--
		}
		fs[j+1] = f
	}
}

// parallelSettleMinFlows is the total component size below which fillAll
// stays serial: filling is cheap enough there that worker handoff costs
// more than it saves.
const parallelSettleMinFlows = 128

// fillAll fills every component discovered by the last components() call.
//
// With settleWorkers <= 1 (the default) it runs the legacy single
// progressive-filling pass over the union of the components, preserving
// the exact floating-point accumulation sequence of the historical
// engine — the arithmetic the golden trace hashes pin.
//
// With settleWorkers > 1 the engine switches to component mode: each
// component fills independently under its own pre-assigned epoch
// (base+1+i) and private scratch. Components are disjoint, so the
// per-component sums are identical no matter how many workers execute
// them or in what order — the deterministic merge rule. Component-mode
// rates can differ from union-mode rates by float rounding (the max-min
// solution is the same real number, accumulated through a different
// increment sequence), so the mode is an explicit opt-in for scale runs,
// chosen once per engine, and its output is a pure function of the mode —
// never of worker count, token availability, or thread timing. The worker
// count is bounded by the engine's settleWorkers cap and the process-wide
// settleTokens budget.
func (n *FlowNet) fillAll() {
	k := len(n.compEnds)
	if k == 0 {
		return
	}
	if n.eng.settleWorkers <= 1 {
		// Union mode: compFlows concatenates the components, each sorted
		// by admission seq, which preserves every order the union pass is
		// sensitive to (per-resource sums are component-local, and the
		// shared level accumulates order-independent minima).
		n.epoch++
		n.fill(n.compFlows, n.scratches[0], n.epoch)
		return
	}
	// One fresh filling epoch per component, never shared across workers.
	base := n.epoch
	n.epoch += uint64(k)
	workers := 1
	if k > 1 && len(n.compFlows) >= parallelSettleMinFlows {
		workers = k
		if workers > n.eng.settleWorkers {
			workers = n.eng.settleWorkers
		}
		workers = 1 + acquireSettleTokens(workers-1)
	}
	if workers <= 1 {
		s := n.scratches[0]
		start := 0
		for i, end := range n.compEnds {
			n.fill(n.compFlows[start:end], s, base+1+uint64(i))
			start = end
		}
		return
	}
	defer releaseSettleTokens(workers - 1)
	for len(n.scratches) < workers {
		n.scratches = append(n.scratches, &fillScratch{})
	}
	var next atomic.Int64
	run := func(s *fillScratch) {
		for {
			i := int(next.Add(1)) - 1
			if i >= k {
				return
			}
			start := 0
			if i > 0 {
				start = n.compEnds[i-1]
			}
			n.fill(n.compFlows[start:n.compEnds[i]], s, base+1+uint64(i))
		}
	}
	var wg sync.WaitGroup
	wg.Add(workers - 1)
	for w := 1; w < workers; w++ {
		s := n.scratches[w]
		go func() {
			defer wg.Done()
			run(s)
		}()
	}
	run(n.scratches[0]) // the caller is worker 0
	wg.Wait()
}

// fill runs progressive filling over the given flows, which must form a
// union of connected components: every other flow's rate is unaffected.
// ep must be a fresh epoch stamp (newer than any stamp on the flows or
// their resources) owned exclusively by this pass; s is the pass's
// private scratch. Both are the caller's to coordinate, which is what
// lets fillAll run disjoint components concurrently.
func (n *FlowNet) fill(flows []*Flow, s *fillScratch, ep uint64) {
	res := s.res[:0]
	for _, f := range flows {
		f.rate = 0
		for _, r := range f.path {
			if r.epoch != ep {
				r.epoch = ep
				r.avail = r.Cap
				r.active = 0
				r.usedRate = 0
				res = append(res, r)
			}
			r.active++
		}
	}
	unfrozen := append(s.unfrozen[:0], flows...)
	level := 0.0
	for len(unfrozen) > 0 {
		// Smallest additional rate increment any constraint allows.
		inc := math.Inf(1)
		for _, f := range unfrozen {
			if f.ceiling > 0 {
				if d := f.ceiling - level; d < inc {
					inc = d
				}
			}
			for _, r := range f.path {
				if r.active > 0 {
					if d := r.avail / float64(r.active); d < inc {
						inc = d
					}
				}
			}
		}
		if math.IsInf(inc, 1) {
			// No constraint at all (flows with empty paths and no
			// ceiling): they complete instantly; give them a huge rate.
			for _, f := range unfrozen {
				f.rate = math.Inf(1)
			}
			break
		}
		if inc < 0 {
			inc = 0
		}
		level += inc
		// Charge resources and find newly frozen flows.
		for _, r := range res {
			r.avail -= inc * float64(r.active)
			if r.avail < 0 {
				r.avail = 0
			}
		}
		next := unfrozen[:0]
		for _, f := range unfrozen {
			frozen := false
			// Relative epsilon: a ceiling-limited increment can leave level
			// one ulp short of the ceiling, which an absolute 1e-15 misses
			// for large rates; the flow must still freeze or the safety
			// break below abandons the pass with under-allocated rates.
			if f.ceiling > 0 && level >= f.ceiling*(1-1e-12) {
				frozen = true
			}
			if !frozen {
				for _, r := range f.path {
					if r.avail <= 1e-9*r.Cap {
						frozen = true
						break
					}
				}
			}
			f.rate = level
			if frozen {
				for _, r := range f.path {
					r.active--
				}
			} else {
				next = append(next, f)
			}
		}
		if len(next) == len(unfrozen) {
			// Safety: no progress possible (all increments ~0).
			break
		}
		unfrozen = next
	}
	// Refresh the used rate of every touched resource, in admission order
	// so the floating-point sums are reproducible.
	for _, f := range flows {
		if math.IsInf(f.rate, 1) {
			continue // empty path: crosses no resources
		}
		for _, r := range f.path {
			r.usedRate += f.rate
		}
	}
	s.res = res
	s.unfrozen = unfrozen[:0]
}

// markDirty queues f's component for the next flush and invalidates any
// scheduled completion check, exactly as an eager recompute would have.
func (n *FlowNet) markDirty(f *Flow) {
	n.gen++
	n.dirty = true
	n.dirtySeeds = append(n.dirtySeeds, f)
}

// flush batch-settles the pending admissions: one settle, one fill over
// the union of the dirty components, one completion schedule. The engine
// calls it after the last event of each timestamp; mid-timestamp readers
// of rates or utilization call it on demand.
func (n *FlowNet) flush() {
	n.dirty = false
	n.settle()
	n.components(n.dirtySeeds)
	n.fillAll()
	for i := range n.dirtySeeds {
		n.dirtySeeds[i] = nil
	}
	n.dirtySeeds = n.dirtySeeds[:0]
	n.scheduleNextCompletion()
}

// recomputeTouched re-fills the components containing the seed flows and
// schedules the next completion event.
func (n *FlowNet) recomputeTouched(seeds []*Flow) {
	n.components(seeds)
	n.fillAll()
	n.scheduleNextCompletion()
}

func (n *FlowNet) scheduleNextCompletion() {
	n.gen++
	next := math.Inf(1)
	for _, f := range n.flows {
		if f.rate <= 0 {
			if f.remaining <= almostZero {
				next = 0
			}
			continue
		}
		if t := f.remaining / f.rate; t < next {
			next = t
		}
	}
	if math.IsInf(next, 1) {
		if len(n.flows) > 0 {
			panic("sim: active flows can make no progress (zero-capacity path?)")
		}
		return
	}
	// Clamp to the clock's float64 resolution: a delay below one ulp of
	// `now` would schedule an event at the same timestamp and live-lock
	// (settle would see dt == 0 and never drain the last bytes).
	if ulp := math.Nextafter(n.eng.now, math.Inf(1)) - n.eng.now; next < ulp {
		next = ulp
	}
	n.eng.schedule(n.eng.now+next, event{kind: evFlowCheck, gen: n.gen})
}

// completionCheck runs the completion pass scheduled under gen, unless a
// later flow change superseded it.
func (n *FlowNet) completionCheck(gen uint64) {
	if gen != n.gen {
		return
	}
	n.completeFinished()
}

// completeFinished settles, retires finished flows, and recomputes.
// Admissions are deferred to the flush, but retirement stays eager: the
// completion event it runs under was scheduled with the rates the seed
// semantics would have used, and the post-retirement refill must precede
// the waiter wakeups it triggers.
func (n *FlowNet) completeFinished() {
	n.settle()
	finished := n.finished[:0]
	for _, f := range n.flows {
		if f.remaining <= almostZero || math.IsInf(f.rate, 1) {
			finished = append(finished, f)
		}
	}
	// Process in admission order so downstream wakeups are deterministic
	// regardless of the active set's swap-delete order.
	sortFlowsBySeq(finished)
	for _, f := range finished {
		n.removeFlow(f)
		for k, r := range f.path {
			r.removeCrossing(f, k)
		}
		f.done = true
		f.rate = 0
	}
	// Drained resources leave the active list immediately, before any new
	// admission can re-append them: their used rate is stale (the refill
	// below only touches surviving components), and a later settle must
	// neither accrue it nor record it as a segment.
	for _, f := range finished {
		for _, r := range f.path {
			if r.inActive && len(r.flows) == 0 {
				n.dropActive(r)
			}
		}
	}
	// Only components the finished flows crossed can change rates: seed
	// the recompute with the surviving flows sharing their resources
	// (collected after removal so retired flows no longer bridge
	// otherwise-disjoint components).
	seeds := n.seeds[:0]
	for _, f := range finished {
		for _, r := range f.path {
			for _, fr := range r.flows {
				seeds = append(seeds, fr.f)
			}
		}
	}
	n.recomputeTouched(seeds)
	for i := range seeds {
		seeds[i] = nil
	}
	n.seeds = seeds[:0]
	e := n.eng
	for _, f := range finished {
		for _, cb := range f.onDone {
			cb()
		}
		for _, p := range f.waiters {
			e.scheduleResume(e.now, p)
		}
		f.onDone, f.waiters = nil, nil
	}
	for i := range finished {
		finished[i] = nil
	}
	n.finished = finished[:0]
}

// Start begins a flow of bytes over path with an optional per-flow rate
// ceiling (0 = none). A zero-byte flow completes at the current time.
// The returned flow can be waited on with Proc.WaitFlow or observed with
// OnDone.
func (n *FlowNet) Start(label string, bytes float64, path []*Resource, ceiling float64) *Flow {
	// NaN compares false against everything, so a NaN volume or ceiling
	// would sail through every threshold below and stall or corrupt the
	// completion schedule undiagnosed; +Inf bytes can never drain.
	if bytes < 0 || math.IsNaN(bytes) || math.IsInf(bytes, 1) {
		panic(fmt.Sprintf("sim: flow %q at t=%g has invalid volume %g", label, n.eng.now, bytes))
	}
	if math.IsNaN(ceiling) || math.IsInf(ceiling, -1) {
		panic(fmt.Sprintf("sim: flow %q at t=%g has invalid rate ceiling %g", label, n.eng.now, ceiling))
	}
	n.eng.statFlows++
	n.seq++
	var f *Flow
	if m := len(n.freeFlows); m > 0 {
		f = n.freeFlows[m-1]
		n.freeFlows[m-1] = nil
		n.freeFlows = n.freeFlows[:m-1]
		pathSpill, slotsSpill := f.pathSpill, f.slotsSpill
		*f = Flow{pathSpill: pathSpill, slotsSpill: slotsSpill}
	} else {
		f = &Flow{}
	}
	f.remaining = bytes
	f.ceiling = ceiling
	f.label = label
	f.seq = n.seq
	f.net = n
	// Copy the path into flow-owned storage so the arena never aliases a
	// caller's buffer (callers are free to reuse path scratch).
	if len(path) <= len(f.pathBuf) {
		f.path = f.pathBuf[:len(path)]
	} else {
		if cap(f.pathSpill) < len(path) {
			f.pathSpill = make([]*Resource, len(path))
		}
		f.path = f.pathSpill[:len(path)]
	}
	copy(f.path, path)
	f.waiters = f.waitersBuf[:0]
	if len(path) <= len(f.slotsBuf) {
		f.slots = f.slotsBuf[:len(path)]
	} else {
		if cap(f.slotsSpill) < len(path) {
			f.slotsSpill = make([]int32, len(path))
		}
		f.slots = f.slotsSpill[:len(path)]
	}
	n.addFlow(f)
	for k, r := range path {
		if r.net == nil {
			r.net = n
		}
		f.slots[k] = int32(len(r.flows))
		r.flows = append(r.flows, flowRef{f: f, pi: int32(k)})
		if !r.inActive {
			r.inActive = true
			r.activeIdx = len(n.activeRes)
			n.activeRes = append(n.activeRes, r)
		}
	}
	n.markDirty(f)
	return f
}

// Release returns a completed flow to the arena for reuse by a later
// Start. Ownership rule: only the call that started the flow and is the
// sole holder of its reference after completion — Transfer, TransferAll,
// the machine-level execute loop — may release it, and only once every
// wait on it has returned. Flows started through raw Start and handed to
// other code are never released; they simply fall to the GC, which is
// always safe. Releasing an unfinished or already-released flow is a
// no-op (the latter guards against recycling a flow that already carries
// a new transfer).
func (n *FlowNet) Release(f *Flow) {
	if f == nil || !f.done || f.released {
		return
	}
	f.released = true
	n.freeFlows = append(n.freeFlows, f)
}

// SetCapacity changes r's capacity at the current simulated time — the
// engine-level rate-perturbation point used by the deterministic fault
// layer (degraded HyperTransport links, slowed memory controllers). Flows
// currently crossing r have their progress settled under the old rates
// and are re-rated under the new capacity at the end of the current
// timestamp, exactly like an admission; any scheduled completion check is
// invalidated. A resource with no active flows just takes the new
// capacity for future admissions.
func (n *FlowNet) SetCapacity(r *Resource, c float64) {
	if c <= 0 || math.IsNaN(c) || math.IsInf(c, 1) {
		panic(fmt.Sprintf("sim: resource %q capacity set to invalid %g at t=%g", r.Name, c, n.eng.now))
	}
	if c == r.Cap {
		return
	}
	r.Cap = c
	if r.net == nil {
		r.net = n
	}
	if len(r.flows) > 0 {
		n.markDirty(r.flows[0].f)
	}
}

// OnDone registers cb to run when the flow completes. If the flow has
// already completed, cb runs immediately.
func (f *Flow) OnDone(n *FlowNet, cb func()) {
	if f.done {
		cb()
		return
	}
	f.onDone = append(f.onDone, cb)
}

// WaitFlow blocks the process until the flow completes.
func (p *Proc) WaitFlow(f *Flow) {
	if f.done {
		// Still yield once so zero-time transfers keep FIFO fairness.
		p.Sleep(0)
		return
	}
	f.waiters = append(f.waiters, p)
	p.block(stateBlockedFlow, f.label)
}

// WaitFlowThen is the continuation form of WaitFlow: it arranges for k
// to run once f completes. For a goroutine-backed process it waits inline
// and then calls k; for a light process it parks the continuation. Both
// forms consume event sequence numbers identically to WaitFlow, so a
// conversion between them cannot change a simulation.
func (p *Proc) WaitFlowThen(f *Flow, k func()) {
	if f.done {
		// Still yield once so zero-time transfers keep FIFO fairness.
		p.SleepThen(0, k)
		return
	}
	if !p.light {
		f.waiters = append(f.waiters, p)
		p.block(stateBlockedFlow, f.label)
		k()
		return
	}
	f.waiters = append(f.waiters, p)
	p.park(stateBlockedFlow, f.label, k)
}

// Transfer starts a flow and blocks until it completes. It is the common
// case for memory streams and message copies. Transfer owns the flow it
// starts, so it recycles it through the arena on completion.
func (p *Proc) Transfer(label string, bytes float64, path []*Resource, ceiling float64) {
	if bytes <= 0 {
		return
	}
	net := p.eng.net
	f := net.Start(label, bytes, path, ceiling)
	p.WaitFlow(f)
	net.Release(f)
}

// TransferThen is the continuation form of Transfer: it starts the flow
// and runs k once it completes; an empty transfer runs k immediately,
// mirroring Transfer's early return.
func (p *Proc) TransferThen(label string, bytes float64, path []*Resource, ceiling float64, k func()) {
	if bytes <= 0 {
		k()
		return
	}
	net := p.eng.net
	f := net.Start(label, bytes, path, ceiling)
	p.WaitFlowThen(f, func() {
		net.Release(f)
		k()
	})
}

// TransferAll starts several flows at once and blocks until every one of
// them has completed (parallel transfers from a single process, e.g. an
// access striped over multiple memory nodes). Like Transfer it owns the
// flows it starts and recycles them once the last wait returns.
func (p *Proc) TransferAll(label string, specs []FlowSpec) {
	var startedBuf [16]*Flow
	started := startedBuf[:0]
	pending := 0
	net := p.eng.net
	for _, s := range specs {
		if s.Bytes <= 0 {
			continue
		}
		f := net.Start(label, s.Bytes, s.Path, s.Ceiling)
		started = append(started, f)
		if !f.done {
			pending++
			f.waiters = append(f.waiters, p)
		}
	}
	for pending > 0 {
		p.block(stateBlockedFlow, label)
		pending--
	}
	for _, f := range started {
		net.Release(f)
	}
}

// FlowSpec describes one flow for TransferAll.
type FlowSpec struct {
	Bytes   float64
	Path    []*Resource
	Ceiling float64
}

func (f *Flow) String() string {
	return fmt.Sprintf("flow(%s rem=%.0f rate=%.0f)", f.label, f.remaining, f.rate)
}
