package sim

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
	"testing"
)

// refFill is the reference rate assignment: one global progressive-filling
// pass over every active flow, the straightforward map-based algorithm the
// incremental component-restricted implementation must reproduce.
func refFill(flows []*Flow) map[*Flow]float64 {
	type rstate struct {
		avail  float64
		active int
	}
	state := map[*Resource]*rstate{}
	for _, f := range flows {
		for _, r := range f.path {
			s, ok := state[r]
			if !ok {
				s = &rstate{avail: r.Cap}
				state[r] = s
			}
			s.active++
		}
	}
	rates := map[*Flow]float64{}
	unfrozen := append([]*Flow(nil), flows...)
	sort.Slice(unfrozen, func(i, j int) bool { return unfrozen[i].seq < unfrozen[j].seq })
	level := 0.0
	for len(unfrozen) > 0 {
		inc := math.Inf(1)
		for _, f := range unfrozen {
			if f.ceiling > 0 {
				if d := f.ceiling - level; d < inc {
					inc = d
				}
			}
			for _, r := range f.path {
				if s := state[r]; s.active > 0 {
					if d := s.avail / float64(s.active); d < inc {
						inc = d
					}
				}
			}
		}
		if math.IsInf(inc, 1) {
			for _, f := range unfrozen {
				rates[f] = math.Inf(1)
			}
			break
		}
		if inc < 0 {
			inc = 0
		}
		level += inc
		for _, s := range state {
			s.avail -= inc * float64(s.active)
			if s.avail < 0 {
				s.avail = 0
			}
		}
		next := unfrozen[:0]
		for _, f := range unfrozen {
			frozen := false
			if f.ceiling > 0 && level >= f.ceiling*(1-1e-12) {
				frozen = true
			}
			if !frozen {
				for _, r := range f.path {
					if state[r].avail <= 1e-9*r.Cap {
						frozen = true
						break
					}
				}
			}
			rates[f] = level
			if frozen {
				for _, r := range f.path {
					state[r].active--
				}
			} else {
				next = append(next, f)
			}
		}
		if len(next) == len(unfrozen) {
			break
		}
		unfrozen = next
	}
	return rates
}

// TestIncrementalMatchesReference drives randomized overlapping flow sets
// through the engine and checks, at every admission and at random probe
// times, that the incrementally-maintained rates equal a from-scratch
// progressive filling over the whole active set.
func TestIncrementalMatchesReference(t *testing.T) {
	for seed := int64(0); seed < 30; seed++ {
		rng := rand.New(rand.NewSource(seed))
		e := NewEngine()
		n := e.net
		nRes := 2 + rng.Intn(6)
		res := make([]*Resource, nRes)
		for i := range res {
			res[i] = NewResource(fmt.Sprintf("r%d", i), 50+rng.Float64()*500)
		}
		check := func(when string) {
			// Admissions are settled lazily; flush so the incremental
			// rates are current before comparing against the reference.
			if n.dirty {
				n.flush()
			}
			ref := refFill(n.flows)
			for _, f := range n.flows {
				want := ref[f]
				if math.IsInf(want, 1) != math.IsInf(f.rate, 1) {
					t.Fatalf("seed %d %s: flow %d rate=%v ref=%v", seed, when, f.seq, f.rate, want)
				}
				if math.IsInf(want, 1) {
					continue
				}
				if diff := math.Abs(f.rate - want); diff > 1e-9*(1+want) {
					t.Fatalf("seed %d %s: flow %d rate=%v ref=%v (diff %v)",
						seed, when, f.seq, f.rate, want, diff)
				}
			}
		}
		nFlows := 5 + rng.Intn(20)
		for i := 0; i < nFlows; i++ {
			start := rng.Float64() * 3
			bytes := 10 + rng.Float64()*500
			pathLen := rng.Intn(4)
			path := make([]*Resource, pathLen)
			for j := range path {
				path[j] = res[rng.Intn(nRes)]
			}
			ceiling := 0.0
			if rng.Intn(3) == 0 {
				ceiling = 20 + rng.Float64()*200
			}
			b, p, c := bytes, path, ceiling
			e.At(start, func() {
				n.Start("x", b, p, c)
				check("after start")
			})
		}
		// Probe between admissions and completions too.
		for i := 0; i < 10; i++ {
			e.At(rng.Float64()*4, func() { check("probe") })
		}
		e.Run()
		if len(n.flows) != 0 {
			t.Fatalf("seed %d: %d flows never completed", seed, len(n.flows))
		}
	}
}

// benchFlows schedules staggered flows over a 16-resource ladder of link
// resources; volume controls the offered load and therefore how many flows
// overlap at once (it must keep the network below saturation, or the
// backlog — and the component size — grows with b.N).
func benchFlows(b *testing.B, volume float64) {
	e := NewEngine()
	n := e.net
	res := make([]*Resource, 16)
	for i := range res {
		res[i] = NewResource(fmt.Sprintf("l%d", i), 1e9)
	}
	for i := 0; i < b.N; i++ {
		start := float64(i) * 1e-6
		lo := i % (len(res) - 4)
		path := res[lo : lo+4]
		e.At(start, func() { n.Start("x", volume, path, 0) })
	}
	b.ResetTimer()
	e.Run()
}

// BenchmarkFlowNetStart admits flows under heavy overlap (~75% network
// load): the cost of component discovery + filling on a loaded network.
func BenchmarkFlowNetStart(b *testing.B) { benchFlows(b, 3e3) }

// BenchmarkFlowNetChurn cycles flows with light overlap: the steady-state
// admit/complete path.
func BenchmarkFlowNetChurn(b *testing.B) { benchFlows(b, 5e2) }
