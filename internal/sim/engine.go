// Package sim implements a deterministic, process-oriented discrete-event
// simulation engine with a fluid-flow network for modeling bandwidth
// contention.
//
// Processes are goroutine-backed coroutines: exactly one process executes at
// a time, and control transfers between the scheduler and processes through
// single-slot handoff channels, so simulations are fully deterministic given
// the same inputs. Time is a float64 in seconds; simultaneous events fire in
// the order they were scheduled.
//
// Bandwidth-shared activities (memory streams, message copies) are modeled
// as flows over paths of capacity-limited resources. Rates are assigned by
// max-min fairness (progressive filling) and re-settled whenever the flow
// set changes, which reproduces contention effects such as two cores sharing
// one memory controller.
package sim

import (
	"context"
	"fmt"
	"math"
	"sort"
)

// ModelVersion names the simulation model's semantic generation. It is
// baked into persistent result-store keys (internal/store), so bump it
// whenever an engine or machine-model change alters simulated results —
// the same events that require regenerating engine_golden.json.
const ModelVersion = "mc-sim/3"

// BlockedProc describes one process stuck at deadlock detection time: its
// name and the wait label it blocked on (e.g. "recv from 3").
type BlockedProc struct {
	Name string
	Wait string
}

// DeadlockError is returned by RunContext when the event heap drains while
// processes are still blocked: no event can ever wake them, so the
// simulation would otherwise sit in a silent hang. Blocked lists the stuck
// processes sorted by name, each with the label of the wait it is parked
// on, which is usually enough to identify the protocol bug (two ranks in
// head-to-head rendezvous sends, a Recv with no matching Send, ...).
type DeadlockError struct {
	Time    float64
	Live    int
	Blocked []BlockedProc
}

func (e *DeadlockError) Error() string {
	names := make([]string, len(e.Blocked))
	for i, b := range e.Blocked {
		names[i] = fmt.Sprintf("%s (%s)", b.Name, b.Wait)
	}
	return fmt.Sprintf("sim: deadlock at t=%g: %d live processes, blocked: %v",
		e.Time, e.Live, names)
}

// CanceledError is returned by RunContext when the run's context is
// canceled (SIGINT) or its deadline passes (per-cell wall-clock timeout).
// It wraps the context error, so errors.Is(err, context.Canceled) and
// errors.Is(err, context.DeadlineExceeded) distinguish the two.
type CanceledError struct {
	Time  float64 // simulated time reached when the run stopped
	Cause error   // the context's error
}

func (e *CanceledError) Error() string {
	return fmt.Sprintf("sim: run aborted at t=%g: %v", e.Time, e.Cause)
}

func (e *CanceledError) Unwrap() error { return e.Cause }

// ctxCheckStride is how many events RunContext processes between context
// polls: frequent enough that timeouts bite within microseconds of real
// time, rare enough that the poll never shows up in profiles.
const ctxCheckStride = 1024

// Engine is a discrete-event simulator instance. The zero value is not
// usable; create one with NewEngine.
type Engine struct {
	now   float64
	seq   uint64
	queue eventHeap

	yield chan struct{} // signaled by a process when it blocks or finishes

	liveProcs    int
	blockedProcs map[*Proc]string

	// killing is set by abort: woken processes unwind via a procKilled
	// panic instead of resuming their bodies, so cancellation and
	// deadlock detection release every goroutine instead of leaking
	// parked workers for the life of the process.
	killing bool

	// idleWorkers are parked goroutines from finished processes, reused by
	// Spawn so steady-state process churn creates no new goroutines.
	idleWorkers []*worker

	// freeLight recycles finished lightweight processes (SpawnCont) so
	// helper churn — one isend/irecv helper per message at 10k+ ranks —
	// allocates no Proc in steady state. Only used while detailed
	// observation is off: the observer retains every spawned Proc.
	freeLight []*Proc

	// settleWorkers selects the settling mode and bounds how many
	// flow-network components a single flush may fill concurrently (see
	// FlowNet.fillAll). 1 — the default — keeps the legacy union fill
	// whose float accumulation the golden hashes pin.
	settleWorkers int

	net *FlowNet

	// Always-on activity counters (see Stats).
	statEvents  uint64
	statFlows   uint64
	statSettles uint64
	statSpawns  uint64

	// obs enables detailed observation when non-nil (EnableObservation).
	obs *observer

	// MaxTime aborts the run if the clock passes it (guards against
	// runaway simulations in tests). Zero means no limit.
	MaxTime float64
}

// NewEngine creates an empty simulation.
func NewEngine() *Engine {
	e := &Engine{
		yield:         make(chan struct{}, 1),
		blockedProcs:  make(map[*Proc]string),
		settleWorkers: 1,
	}
	e.net = newFlowNet(e)
	return e
}

// SetSettleWorkers selects the flow-settling mode. n <= 1 — the default —
// keeps the legacy behavior: one progressive-filling pass per flush over
// the union of the touched components, the arithmetic the golden trace
// hashes pin. n > 1 opts into component mode for scale runs: independent
// components fill concurrently under at most n workers. Component-mode
// output is deterministic and identical for every n > 1 — the per-
// component arithmetic never depends on worker count, token availability,
// or thread timing — but its rates can differ from union mode by float
// rounding (same max-min solution, different accumulation order), so
// switching modes is a per-engine decision made before the run. Sweeps
// that run many cells in parallel lower n so cells × settle workers stays
// within the machine (see experiments.Options.Parallelism); a process-
// wide token budget of GOMAXPROCS-1 extra workers bounds the product
// regardless.
func (e *Engine) SetSettleWorkers(n int) {
	if n < 1 {
		n = 1
	}
	e.settleWorkers = n
}

// Now returns the current simulated time in seconds.
func (e *Engine) Now() float64 { return e.now }

// Net returns the engine's flow network.
func (e *Engine) Net() *FlowNet { return e.net }

// eventKind discriminates the typed events stored by value in the heap.
// The typed kinds cover the two hot schedules — waking a process and
// checking the flow network for completions — so neither allocates; evFunc
// is the generic fallback behind Engine.At.
type eventKind uint8

const (
	evFunc      eventKind = iota // run fire()
	evResume                     // hand control to proc
	evFlowCheck                  // flow completion check, valid iff gen matches
)

type event struct {
	at   float64
	seq  uint64
	kind eventKind
	proc *Proc  // evResume
	gen  uint64 // evFlowCheck
	fire func() // evFunc
}

// eventHeap is a typed binary min-heap ordered by (time, schedule seq).
// It is hand-rolled rather than built on container/heap so pushes and
// pops stay monomorphic, and it stores events by value: the backing array
// is recycled across pushes, so steady-state scheduling never allocates.
type eventHeap []event

func (h eventHeap) less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}

func (h *eventHeap) push(ev event) {
	q := append(*h, ev)
	i := len(q) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !q.less(i, parent) {
			break
		}
		q[i], q[parent] = q[parent], q[i]
		i = parent
	}
	*h = q
}

func (h *eventHeap) pop() event {
	q := *h
	top := q[0]
	last := len(q) - 1
	q[0] = q[last]
	q[last] = event{} // release the proc/fire references in the vacated slot
	q = q[:last]
	i := 0
	for {
		c := 2*i + 1
		if c >= len(q) {
			break
		}
		if r := c + 1; r < len(q) && q.less(r, c) {
			c = r
		}
		if !q.less(c, i) {
			break
		}
		q[i], q[c] = q[c], q[i]
		i = c
	}
	*h = q
	return top
}

// schedule stamps ev with (t, next seq) and enqueues it. Scheduling in the
// past or at a NaN timestamp panics: the former violates causality, the
// latter corrupts the event heap's ordering (every comparison against NaN
// is false) and would silently break determinism.
func (e *Engine) schedule(t float64, ev event) {
	if !(t >= e.now) {
		panic(fmt.Sprintf("sim: scheduling event at %g before now %g", t, e.now))
	}
	e.seq++
	ev.at, ev.seq = t, e.seq
	e.queue.push(ev)
}

// At schedules fn to run at absolute simulated time t.
func (e *Engine) At(t float64, fn func()) {
	e.schedule(t, event{kind: evFunc, fire: fn})
}

// After schedules fn to run d seconds from now.
func (e *Engine) After(d float64, fn func()) { e.At(e.now+d, fn) }

// scheduleResume schedules p to be handed control at time t without
// allocating a closure.
func (e *Engine) scheduleResume(t float64, p *Proc) {
	e.schedule(t, event{kind: evResume, proc: p})
}

// Proc is a simulated process. Its methods must only be called from within
// the process's own body function.
//
// A Proc has one of two backings. Goroutine-backed processes (Spawn) run
// arbitrary re-entrant bodies that block mid-call-stack; control transfers
// through channel handoff. Lightweight processes (SpawnCont) have no
// goroutine at all: their body is a chain of explicit continuations that
// the scheduler invokes inline, so blocking costs one closure instead of
// a stack plus two channel operations per resume. Both backings share the
// same wake paths (scheduleResume, WaitQueue, flow waiters), observation
// states, and deadlock reporting.
type Proc struct {
	eng  *Engine
	name string
	wake chan struct{}
	done bool

	// light marks a continuation-backed process; cont is the armed
	// continuation the next resume will invoke (nil while running), and
	// start is the body's entry point, kept as a bare func(*Proc) so
	// spawning never allocates a wrapper closure.
	light bool
	cont  func()
	start func(*Proc)

	// Observation state (only touched when the engine's observer is
	// active): current state, when it was entered, and accumulated
	// seconds per state.
	state      procState
	stateSince float64
	stateTimes [numProcStates]float64
}

// Name returns the process name given at spawn time.
func (p *Proc) Name() string { return p.name }

// Engine returns the engine this process belongs to.
func (p *Proc) Engine() *Engine { return p.eng }

// Now returns the current simulated time.
func (p *Proc) Now() float64 { return p.eng.now }

// worker is a reusable goroutine that runs process bodies one after
// another. Each worker owns one wake channel; the Proc handed to it
// borrows that channel for its lifetime, which ends before the worker is
// recycled, so tokens can never leak between processes.
type worker struct {
	run  chan spawnReq
	wake chan struct{}
}

type spawnReq struct {
	p    *Proc
	body func(*Proc)
}

// procKilled is the panic value used to unwind a blocked process during
// abort; the worker loop swallows it and recycles the goroutine.
type procKilled struct{}

// runBody executes a process body, absorbing the procKilled unwind that
// abort injects into blocked processes. Any other panic propagates: a
// workload bug must surface, not vanish into a worker goroutine.
func runBody(req spawnReq) {
	defer func() {
		if r := recover(); r != nil {
			if _, ok := r.(procKilled); !ok {
				panic(r)
			}
		}
	}()
	req.body(req.p)
}

func (e *Engine) newWorker() *worker {
	w := &worker{run: make(chan spawnReq, 1), wake: make(chan struct{}, 1)}
	go func() {
		for req := range w.run {
			<-req.p.wake
			if !e.killing { // a kill before first resume skips the body entirely
				runBody(req)
			}
			if e.obs != nil {
				e.procStateChange(req.p, stateBlockedQueue)
			}
			req.p.done = true
			e.liveProcs--
			// Recycle before yielding: the send below happens-before the
			// scheduler resumes, so the append is never concurrent with a
			// Spawn on the scheduler side.
			e.idleWorkers = append(e.idleWorkers, w)
			e.yield <- struct{}{}
		}
	}()
	return w
}

// Spawn creates a process that will begin executing body at the current
// simulated time (or at time 0 if the simulation has not started).
func (e *Engine) Spawn(name string, body func(*Proc)) *Proc {
	var w *worker
	if n := len(e.idleWorkers); n > 0 {
		w = e.idleWorkers[n-1]
		e.idleWorkers[n-1] = nil
		e.idleWorkers = e.idleWorkers[:n-1]
	} else {
		w = e.newWorker()
	}
	p := &Proc{eng: e, name: name, wake: w.wake}
	e.liveProcs++
	e.statSpawns++
	if e.obs != nil {
		p.state = stateBlockedQueue // parked until the start event fires
		p.stateSince = e.now
		e.obs.procs = append(e.obs.procs, p)
	}
	w.run <- spawnReq{p: p, body: body}
	e.scheduleResume(e.now, p)
	return p
}

// SpawnCont creates a lightweight, continuation-backed process that will
// begin executing start at the current simulated time. The body must be
// written in continuation-passing style: instead of blocking, it arms the
// next step with SleepThen, WaitThen, WaitFlowThen, or TransferThen and
// returns. When a step returns without arming a continuation the process
// is finished. Scheduling order is identical to Spawn — the start event
// consumes the same sequence number — so converting a process between
// backings never reorders a simulation.
func (e *Engine) SpawnCont(name string, start func(p *Proc)) *Proc {
	var p *Proc
	if n := len(e.freeLight); n > 0 && e.obs == nil {
		p = e.freeLight[n-1]
		e.freeLight[n-1] = nil
		e.freeLight = e.freeLight[:n-1]
		*p = Proc{eng: e, light: true}
	} else {
		p = &Proc{eng: e, light: true}
	}
	p.name = name
	p.start = start
	e.liveProcs++
	e.statSpawns++
	if e.obs != nil {
		p.state = stateBlockedQueue // parked until the start event fires
		p.stateSince = e.now
		e.obs.procs = append(e.obs.procs, p)
	}
	e.scheduleResume(e.now, p)
	return p
}

// finishLight retires a completed lightweight process, mirroring the tail
// of the worker loop for goroutine-backed processes.
func (e *Engine) finishLight(p *Proc) {
	if e.obs != nil {
		e.procStateChange(p, stateBlockedQueue)
	}
	p.done = true
	e.liveProcs--
	if e.obs == nil {
		e.freeLight = append(e.freeLight, p)
	}
}

// resume hands control to p and waits until it blocks or finishes.
func (e *Engine) resume(p *Proc) {
	if p.done {
		panic("sim: resuming finished process " + p.name)
	}
	delete(e.blockedProcs, p)
	if e.obs != nil {
		e.procStateChange(p, stateRunning)
	}
	if p.light {
		if f := p.start; f != nil {
			p.start = nil
			f(p)
		} else {
			k := p.cont
			p.cont = nil
			k()
		}
		if p.cont == nil {
			e.finishLight(p)
		}
		return
	}
	p.wake <- struct{}{}
	<-e.yield
}

// park records a lightweight process as blocked and arms k as the step to
// run when it is next resumed. It is the continuation-backed analogue of
// block.
func (p *Proc) park(kind procState, why string, k func()) {
	if k == nil {
		panic("sim: lightweight process " + p.name + " parked without a continuation")
	}
	e := p.eng
	e.blockedProcs[p] = why
	if e.obs != nil {
		e.procStateChange(p, kind)
	}
	p.cont = k
}

// block yields control back to the scheduler and waits to be woken. The
// kind classifies the wait for observation; why labels it in deadlock
// reports.
func (p *Proc) block(kind procState, why string) {
	e := p.eng
	if e.killing {
		// A dying process tried to block again while unwinding (e.g. a
		// deferred cleanup sleeping); re-panic rather than park forever.
		panic(procKilled{})
	}
	e.blockedProcs[p] = why
	if e.obs != nil {
		e.procStateChange(p, kind)
	}
	e.yield <- struct{}{}
	<-p.wake
	if e.killing {
		panic(procKilled{})
	}
}

// Sleep advances the process by d seconds of simulated time. Negative or
// zero durations still yield to the scheduler at the current time, which
// preserves event ordering for zero-cost operations. A NaN duration
// panics: NaN compares false against everything, so it would slip past
// the causality check in schedule and corrupt event ordering undiagnosed.
func (p *Proc) Sleep(d float64) {
	if math.IsNaN(d) {
		panic(fmt.Sprintf("sim: process %s sleeping NaN seconds at t=%g", p.name, p.eng.now))
	}
	if d < 0 {
		d = 0
	}
	e := p.eng
	e.scheduleResume(e.now+d, p)
	p.block(stateSleeping, "sleep")
}

// SleepThen advances the process by d seconds and then runs k. On a
// lightweight process it arms k as the continuation and returns
// immediately; on a goroutine-backed process it sleeps inline and calls k
// on the same stack. Either way the schedule sequence is identical to
// Sleep, so protocol code written against the *Then primitives simulates
// byte-identically on both backings.
func (p *Proc) SleepThen(d float64, k func()) {
	if !p.light {
		p.Sleep(d)
		k()
		return
	}
	if math.IsNaN(d) {
		panic(fmt.Sprintf("sim: process %s sleeping NaN seconds at t=%g", p.name, p.eng.now))
	}
	if d < 0 {
		d = 0
	}
	e := p.eng
	e.scheduleResume(e.now+d, p)
	p.park(stateSleeping, "sleep", k)
}

// Run executes events until the queue is empty. It panics if processes
// remain blocked when no event can wake them (a deadlock) so that protocol
// bugs in workloads surface immediately. Sweeps that must survive bad
// cells use RunContext instead and receive the deadlock as a structured
// error.
func (e *Engine) Run() {
	if err := e.RunContext(context.Background()); err != nil {
		panic(err)
	}
}

// RunContext executes events until the queue is empty, the context is
// canceled (or its deadline passes), or a deadlock is detected. It returns
// nil on a clean drain, *CanceledError on cancellation, and *DeadlockError
// when the event heap empties while processes are still blocked — the
// watchdog that turns a would-be silent hang into a diagnosis naming the
// blocked processes and their wait labels.
//
// On any return the engine has released every goroutine it created;
// a non-nil error leaves the simulation state unusable (create a fresh
// engine per run, as every caller in this repository already does).
//
// Between the last event of a timestamp and the first event of the next,
// the loop flushes any pending flow-network changes: admissions
// accumulated at the current time are settled and filled in one batch
// (see FlowNet.flush).
func (e *Engine) RunContext(ctx context.Context) error {
	if err := ctx.Err(); err != nil {
		return e.cancel(err)
	}
	// A panic on the scheduler side (an event callback, a lightweight
	// process's continuation, the flow network) must not strand the
	// engine's parked goroutines: release them, then let the panic
	// propagate to the caller's isolation layer.
	defer func() {
		if r := recover(); r != nil {
			e.abort()
			panic(r)
		}
	}()
	for {
		if e.net.dirty && (len(e.queue) == 0 || e.queue[0].at > e.now) {
			e.net.flush()
			continue // the flush schedules the next completion event
		}
		if len(e.queue) == 0 {
			break
		}
		ev := e.queue.pop()
		if ev.at < e.now {
			panic("sim: time went backwards")
		}
		e.now = ev.at
		if e.MaxTime > 0 && e.now > e.MaxTime {
			panic(fmt.Sprintf("sim: exceeded MaxTime %g", e.MaxTime))
		}
		e.statEvents++
		if e.statEvents%ctxCheckStride == 0 {
			if err := ctx.Err(); err != nil {
				return e.cancel(err)
			}
		}
		switch ev.kind {
		case evResume:
			e.resume(ev.proc)
		case evFlowCheck:
			e.net.completionCheck(ev.gen)
		default:
			ev.fire()
		}
	}
	if e.liveProcs > 0 {
		blocked := make([]BlockedProc, 0, len(e.blockedProcs))
		for p, why := range e.blockedProcs {
			blocked = append(blocked, BlockedProc{Name: p.name, Wait: why})
		}
		sort.Slice(blocked, func(i, j int) bool { return blocked[i].Name < blocked[j].Name })
		err := &DeadlockError{Time: e.now, Live: e.liveProcs, Blocked: blocked}
		e.abort()
		return err
	}
	e.shutdown()
	return nil
}

// cancel aborts a canceled run and wraps the context error.
func (e *Engine) cancel(cause error) error {
	err := &CanceledError{Time: e.now, Cause: cause}
	e.abort()
	return err
}

// abort unwinds every live process and releases all worker goroutines.
// Live processes are parked on their wake channels in one of two places:
// blocked inside block() (tracked in blockedProcs), or waiting for their
// start resume event (still in the queue as evResume). Waking them with
// killing set makes block() unwind via procKilled and makes the worker
// skip never-started bodies, so liveProcs drains to zero without running
// any further simulation.
func (e *Engine) abort() {
	e.killing = true
	for len(e.queue) > 0 {
		ev := e.queue.pop()
		if ev.kind == evResume {
			e.kill(ev.proc)
		}
	}
	for len(e.blockedProcs) > 0 {
		for p := range e.blockedProcs {
			e.kill(p)
			break
		}
	}
	e.shutdown()
}

// kill unwinds one parked process (no-op if it already finished — a
// sleeping process appears both in the queue and in blockedProcs).
// Goroutine-backed processes unwind via the procKilled panic; lightweight
// processes have no stack to unwind, so dropping the armed continuation
// retires them directly.
func (e *Engine) kill(p *Proc) {
	if p.done {
		return
	}
	delete(e.blockedProcs, p)
	if p.light {
		p.cont = nil
		p.start = nil
		e.finishLight(p)
		return
	}
	p.wake <- struct{}{}
	<-e.yield
}

// shutdown releases the idle worker goroutines so engines do not pin
// goroutines after their run completes, and folds the engine's activity
// counters into the process-wide totals.
func (e *Engine) shutdown() {
	for i, w := range e.idleWorkers {
		close(w.run)
		e.idleWorkers[i] = nil
	}
	e.idleWorkers = e.idleWorkers[:0]
	e.publishActivity()
}

// WaitQueue is a FIFO of blocked processes, the building block for
// higher-level synchronization (mailboxes, barriers, locks).
//
// It is a head-indexed ring over one backing slice: WakeOne advances head
// instead of re-slicing, and Wait compacts the live tail back to the front
// once the dead prefix dominates, so sustained Wait/WakeOne churn reuses
// constant storage instead of crawling through the backing array. After a
// burst, the backing array is released once the queue drains if it dwarfs
// the high-watermark of the era that follows — a queue that once held 10k
// waiters must not pin 10k slots for the engine's lifetime.
type WaitQueue struct {
	waiters []*Proc
	head    int
	// maxLive is the largest Len() observed since the queue last went
	// empty; it is the shrink heuristic's estimate of steady-state demand.
	maxLive int
}

// shrinkMinCap is the capacity below which a drained queue never releases
// its backing array: reallocating tiny slices would defeat the zero-alloc
// steady state for the common small queues (mailboxes, barriers).
const shrinkMinCap = 64

// maybeShrink releases an oversized backing array once the queue is
// empty. Called only at empty transitions.
func (q *WaitQueue) maybeShrink() {
	if cap(q.waiters) >= shrinkMinCap && q.maxLive < cap(q.waiters)/4 {
		q.waiters = nil
	}
	q.maxLive = 0
}

// enqueue appends p, compacting the dead prefix when it dominates.
func (q *WaitQueue) enqueue(p *Proc) {
	if q.head > 0 && q.head*2 >= len(q.waiters) {
		n := copy(q.waiters, q.waiters[q.head:])
		for i := n; i < len(q.waiters); i++ {
			q.waiters[i] = nil
		}
		q.waiters = q.waiters[:n]
		q.head = 0
	}
	q.waiters = append(q.waiters, p)
	if live := len(q.waiters) - q.head; live > q.maxLive {
		q.maxLive = live
	}
}

// Wait blocks the calling process until another process wakes it.
func (q *WaitQueue) Wait(p *Proc, why string) {
	q.enqueue(p)
	p.block(stateBlockedQueue, why)
}

// WaitThen enqueues the process and runs k once another process wakes it:
// the continuation form of Wait, usable from either backing (see
// Proc.SleepThen for the dispatch contract).
func (q *WaitQueue) WaitThen(p *Proc, why string, k func()) {
	if !p.light {
		q.Wait(p, why)
		k()
		return
	}
	q.enqueue(p)
	p.park(stateBlockedQueue, why, k)
}

// WakeOne wakes the oldest waiter, if any, at the current time.
// It returns true if a process was woken.
func (q *WaitQueue) WakeOne(e *Engine) bool {
	if q.head == len(q.waiters) {
		return false
	}
	p := q.waiters[q.head]
	// Nil the vacated slot: advancing head alone would pin the woken
	// process in the backing array for the queue's lifetime.
	q.waiters[q.head] = nil
	q.head++
	if q.head == len(q.waiters) {
		q.waiters = q.waiters[:0]
		q.head = 0
		q.maybeShrink()
	}
	e.scheduleResume(e.now, p)
	return true
}

// WakeAll wakes every waiter in FIFO order at the current time.
func (q *WaitQueue) WakeAll(e *Engine) {
	for i := q.head; i < len(q.waiters); i++ {
		e.scheduleResume(e.now, q.waiters[i])
		q.waiters[i] = nil
	}
	q.waiters = q.waiters[:0]
	q.head = 0
	q.maybeShrink()
}

// Len reports the number of blocked processes.
func (q *WaitQueue) Len() int { return len(q.waiters) - q.head }

// almostZero is the byte threshold below which a flow counts as complete;
// it absorbs float64 rounding from incremental settling.
const almostZero = 1e-6
