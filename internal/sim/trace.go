package sim

import (
	"encoding/json"
	"io"
	"os"

	"multicore/internal/schema"
)

// Trace is a sink for simulation spans and counter samples that renders
// as Chrome trace-event JSON (viewable in Perfetto / chrome://tracing).
// It is purely an accumulator: recording has no effect on simulation
// behavior, and because every engine is single-threaded internally, the
// recorded sequence is deterministic for a given configuration — two runs
// of the same cell emit byte-identical JSON regardless of how many other
// simulations execute concurrently in the process.
//
// Times are given in simulated seconds and stored in microseconds, the
// trace format's native unit.
type Trace struct {
	events []traceEvent
}

// traceEvent is one entry of the Chrome trace-event format. Field order
// is fixed by the struct, so encoding is byte-stable.
type traceEvent struct {
	Name string         `json:"name"`
	Cat  string         `json:"cat,omitempty"`
	Ph   string         `json:"ph"`
	Ts   float64        `json:"ts"`
	Dur  float64        `json:"dur,omitempty"`
	PID  int            `json:"pid"`
	TID  int            `json:"tid"`
	Args map[string]any `json:"args,omitempty"`
}

// Span records a complete event covering [start, start+dur) seconds on
// the given pid/tid track.
func (t *Trace) Span(pid, tid int, name, cat string, start, dur float64) {
	t.events = append(t.events, traceEvent{
		Name: name, Cat: cat, Ph: "X",
		Ts: start * 1e6, Dur: dur * 1e6, PID: pid, TID: tid,
	})
}

// Counter records a sampled counter value at time ts seconds. Samples
// with the same name form one counter track on pid.
func (t *Trace) Counter(pid int, name string, ts, value float64) {
	t.events = append(t.events, traceEvent{
		Name: name, Ph: "C", Ts: ts * 1e6, PID: pid,
		Args: map[string]any{"value": value},
	})
}

// ProcessName labels pid in the trace viewer.
func (t *Trace) ProcessName(pid int, name string) {
	t.events = append(t.events, traceEvent{
		Name: "process_name", Ph: "M", PID: pid,
		Args: map[string]any{"name": name},
	})
}

// ThreadName labels (pid, tid) in the trace viewer.
func (t *Trace) ThreadName(pid, tid int, name string) {
	t.events = append(t.events, traceEvent{
		Name: "thread_name", Ph: "M", PID: pid, TID: tid,
		Args: map[string]any{"name": name},
	})
}

// Len reports the number of recorded events.
func (t *Trace) Len() int { return len(t.events) }

// WriteJSON emits the trace in Chrome trace-event JSON object form. The
// envelope carries the repository-wide artifact schema_version (trace
// viewers ignore unknown top-level keys).
func (t *Trace) WriteJSON(w io.Writer) error {
	out := struct {
		SchemaVersion   int          `json:"schema_version"`
		TraceEvents     []traceEvent `json:"traceEvents"`
		DisplayTimeUnit string       `json:"displayTimeUnit"`
	}{SchemaVersion: schema.Version, TraceEvents: t.events, DisplayTimeUnit: "ms"}
	if out.TraceEvents == nil {
		out.TraceEvents = []traceEvent{}
	}
	enc := json.NewEncoder(w)
	return enc.Encode(out)
}

// WriteFile writes the trace to path as Chrome trace-event JSON.
func (t *Trace) WriteFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := t.WriteJSON(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
