// Package schema pins the version of every JSON artifact this repository
// emits — mcbench -json benchmark envelopes, Chrome trace exports,
// persistent result-store entries, and the distributed sweep protocol's
// opening requests (sweep submissions and worker registrations, see
// internal/sweepd). Artifacts embed the version as a `schema_version`
// field; loaders call Check and refuse mismatches with a clear error
// instead of misreading a stale layout.
//
// Bump Version whenever a field is renamed, removed, or changes meaning.
// Purely additive fields do not require a bump.
package schema

import "fmt"

// Version is the current artifact schema version.
const Version = 1

// Check validates a loaded artifact's schema_version. The artifact name
// appears in the error so the user knows which file to regenerate.
func Check(artifact string, got int) error {
	if got != Version {
		return fmt.Errorf("%s: schema_version %d does not match this build's version %d — regenerate the artifact (or use the matching tool version)",
			artifact, got, Version)
	}
	return nil
}
