package topology

import "testing"

func TestParseLadderMatchesLongs(t *testing.T) {
	got, err := Parse("ladder:4x2")
	if err != nil {
		t.Fatal(err)
	}
	longs := Longs()
	if got.NumSockets != longs.NumSockets || got.NumCores() != longs.NumCores() {
		t.Fatalf("ladder:4x2 shape %d/%d, want Longs %d/%d",
			got.NumSockets, got.NumCores(), longs.NumSockets, longs.NumCores())
	}
	if got.MaxHops() != longs.MaxHops() {
		t.Fatalf("ladder diameter %d, want %d", got.MaxHops(), longs.MaxHops())
	}
}

func TestParseRing(t *testing.T) {
	s, err := Parse("ring:6x1")
	if err != nil {
		t.Fatal(err)
	}
	if s.NumSockets != 6 || s.CoresPerSock != 1 {
		t.Fatalf("ring shape wrong: %d sockets, %d cores/socket", s.NumSockets, s.CoresPerSock)
	}
	if s.Hops(0, 3) != 3 || s.Hops(0, 5) != 1 {
		t.Fatalf("ring distances wrong: %d, %d", s.Hops(0, 3), s.Hops(0, 5))
	}
}

func TestParseXbar(t *testing.T) {
	s, err := Parse("xbar:8")
	if err != nil {
		t.Fatal(err)
	}
	if s.MaxHops() != 1 {
		t.Fatalf("xbar diameter = %d, want 1", s.MaxHops())
	}
	if len(s.Links) != 28 {
		t.Fatalf("xbar links = %d, want 28", len(s.Links))
	}
}

func TestParseLine(t *testing.T) {
	s, err := Parse("line:4")
	if err != nil {
		t.Fatal(err)
	}
	if s.Hops(0, 3) != 3 {
		t.Fatalf("line end-to-end = %d hops, want 3", s.Hops(0, 3))
	}
}

func TestParseErrors(t *testing.T) {
	for _, bad := range []string{
		"", "ladder", "ladder:4", "ladder:4x2x2x2", "ring:2", "ring:axb",
		"torus:4x2", "xbar:1", "line:1", "ladder:0x2",
	} {
		if _, err := Parse(bad); err == nil {
			t.Fatalf("Parse(%q) should fail", bad)
		}
	}
}

func TestParsedTopologiesRouteCorrectly(t *testing.T) {
	for _, spec := range []string{"ladder:3x3", "ring:5", "xbar:4", "line:6x1"} {
		s, err := Parse(spec)
		if err != nil {
			t.Fatal(err)
		}
		for a := 0; a < s.NumSockets; a++ {
			for b := 0; b < s.NumSockets; b++ {
				if len(s.Route(SocketID(a), SocketID(b))) != s.Hops(SocketID(a), SocketID(b)) {
					t.Fatalf("%s: route/hops mismatch %d->%d", spec, a, b)
				}
			}
		}
	}
}
