package topology

import (
	"fmt"
	"strconv"
	"strings"
)

// Parse builds a System from a compact spec string, for experimenting
// with hypothetical machines beyond the paper's three:
//
//	"ladder:RxC[xK]"  R rows by C columns grid/ladder, K cores per socket
//	"ring:N[xK]"      N sockets in a ring
//	"xbar:N[xK]"      N sockets fully connected
//	"line:N[xK]"      N sockets in a chain
//
// K defaults to 2 (dual-core). Examples: "ladder:4x2" is the Longs
// fabric; "xbar:8" is the ablation crossbar.
func Parse(spec string) (*System, error) {
	kind, rest, ok := strings.Cut(spec, ":")
	if !ok {
		return nil, fmt.Errorf("topology: spec %q needs the form kind:dims", spec)
	}
	dims := strings.Split(rest, "x")
	nums := make([]int, 0, 3)
	for _, d := range dims {
		v, err := strconv.Atoi(d)
		if err != nil || v <= 0 {
			return nil, fmt.Errorf("topology: bad dimension %q in %q", d, spec)
		}
		nums = append(nums, v)
	}
	cores := 2
	switch kind {
	case "ladder":
		if len(nums) < 2 || len(nums) > 3 {
			return nil, fmt.Errorf("topology: ladder needs RxC[xK], got %q", spec)
		}
		if len(nums) == 3 {
			cores = nums[2]
		}
		return Ladder(spec, nums[0], nums[1], cores), nil
	case "ring", "xbar", "line":
		if len(nums) < 1 || len(nums) > 2 {
			return nil, fmt.Errorf("topology: %s needs N[xK], got %q", kind, spec)
		}
		n := nums[0]
		if len(nums) == 2 {
			cores = nums[1]
		}
		var links []Link
		switch kind {
		case "ring":
			if n < 3 {
				return nil, fmt.Errorf("topology: ring needs >= 3 sockets")
			}
			for i := 0; i < n; i++ {
				links = append(links, Link{A: SocketID(i), B: SocketID((i + 1) % n)})
			}
		case "line":
			if n < 2 {
				return nil, fmt.Errorf("topology: line needs >= 2 sockets")
			}
			for i := 0; i+1 < n; i++ {
				links = append(links, Link{A: SocketID(i), B: SocketID(i + 1)})
			}
		case "xbar":
			if n < 2 {
				return nil, fmt.Errorf("topology: xbar needs >= 2 sockets")
			}
			for a := 0; a < n; a++ {
				for b := a + 1; b < n; b++ {
					links = append(links, Link{A: SocketID(a), B: SocketID(b)})
				}
			}
		}
		return New(spec, n, cores, links), nil
	}
	return nil, fmt.Errorf("topology: unknown kind %q (want ladder, ring, xbar, or line)", kind)
}

// Ladder builds an R-row by C-column grid (the Iwill H8501 is 4x2):
// links along rows and columns. Socket numbering is row-major.
func Ladder(name string, rows, cols, coresPerSocket int) *System {
	var links []Link
	id := func(r, c int) SocketID { return SocketID(r*cols + c) }
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			if c+1 < cols {
				links = append(links, Link{A: id(r, c), B: id(r, c+1)})
			}
			if r+1 < rows {
				links = append(links, Link{A: id(r, c), B: id(r+1, c)})
			}
		}
	}
	return New(name, rows*cols, coresPerSocket, links)
}
