package topology

import (
	"fmt"
	"strconv"
	"strings"
)

// Parse builds a System from a compact spec string, for experimenting
// with hypothetical machines beyond the paper's three:
//
//	"ladder:RxC[xK]"  R rows by C columns grid/ladder, K cores per socket
//	"ring:N[xK]"      N sockets in a ring
//	"xbar:N[xK]"      N sockets fully connected
//	"line:N[xK]"      N sockets in a chain
//	"sock:K"          a single socket (no inter-socket links)
//
// K defaults to 2 (dual-core). Examples: "ladder:4x2" is the Longs
// fabric; "xbar:8" is the ablation crossbar.
//
// The cores-per-socket position also accepts a core-class list for
// heterogeneous (hybrid) sockets: "+"-joined count/name items, e.g.
// "sock:8P+8E" is one socket with eight P-cores and eight E-cores, and
// "line:2x4big+4little" is a two-socket hybrid. Class names are letters
// and apply identically to every socket.
//
// A trailing "/D" splits every socket into D equal chiplet dies joined
// by an on-package fabric (see System.DiesPerSocket): "line:2x32/4" is a
// two-socket EPYC-style machine with four 8-core dies per socket.
func Parse(spec string) (*System, error) {
	kind, rest, ok := strings.Cut(spec, ":")
	if !ok {
		return nil, fmt.Errorf("topology: spec %q needs the form kind:dims", spec)
	}
	dies := 1
	if body, d, found := strings.Cut(rest, "/"); found {
		v, err := strconv.Atoi(d)
		if err != nil || v < 1 {
			return nil, fmt.Errorf("topology: bad die count %q in %q", d, spec)
		}
		dies, rest = v, body
	}

	if kind == "sock" {
		classes, err := parseClasses(rest, spec)
		if err != nil {
			return nil, err
		}
		return assemble(spec, 1, classes, dies, nil)
	}

	dims := strings.Split(rest, "x")
	coresIdx := 1 // the dimension that may be a class list
	if kind == "ladder" {
		coresIdx = 2
	}
	nums := make([]int, len(dims))
	var classes []CoreClass
	for i, d := range dims {
		if v, err := strconv.Atoi(d); err == nil && v > 0 {
			nums[i] = v
			continue
		}
		if i != coresIdx {
			return nil, fmt.Errorf("topology: bad dimension %q in %q", d, spec)
		}
		cl, err := parseClasses(d, spec)
		if err != nil {
			return nil, err
		}
		classes = cl
	}
	cores := 2
	switch kind {
	case "ladder":
		if len(nums) < 2 || len(nums) > 3 {
			return nil, fmt.Errorf("topology: ladder needs RxC[xK], got %q", spec)
		}
		if len(nums) == 3 && classes == nil {
			cores = nums[2]
		}
		rows, cols := nums[0], nums[1]
		if classes == nil && dies == 1 {
			return Ladder(spec, rows, cols, cores), nil
		}
		if classes == nil {
			classes = []CoreClass{{PerSocket: cores}}
		}
		return assemble(spec, rows*cols, classes, dies, ladderLinks(rows, cols))
	case "ring", "xbar", "line":
		if len(nums) < 1 || len(nums) > 2 {
			return nil, fmt.Errorf("topology: %s needs N[xK], got %q", kind, spec)
		}
		n := nums[0]
		if len(nums) == 2 && classes == nil {
			cores = nums[1]
		}
		links, err := fabricLinks(kind, n)
		if err != nil {
			return nil, err
		}
		if classes == nil && dies == 1 {
			return New(spec, n, cores, links), nil
		}
		if classes == nil {
			classes = []CoreClass{{PerSocket: cores}}
		}
		return assemble(spec, n, classes, dies, links)
	}
	return nil, fmt.Errorf("topology: unknown kind %q (want ladder, ring, xbar, line, or sock)", kind)
}

// fabricLinks builds the link list of the non-ladder fabrics, enforcing
// their minimum socket counts.
func fabricLinks(kind string, n int) ([]Link, error) {
	var links []Link
	switch kind {
	case "ring":
		if n < 3 {
			return nil, fmt.Errorf("topology: ring needs >= 3 sockets")
		}
		for i := 0; i < n; i++ {
			links = append(links, Link{A: SocketID(i), B: SocketID((i + 1) % n)})
		}
	case "line":
		if n < 2 {
			return nil, fmt.Errorf("topology: line needs >= 2 sockets")
		}
		for i := 0; i+1 < n; i++ {
			links = append(links, Link{A: SocketID(i), B: SocketID(i + 1)})
		}
	case "xbar":
		if n < 2 {
			return nil, fmt.Errorf("topology: xbar needs >= 2 sockets")
		}
		for a := 0; a < n; a++ {
			for b := a + 1; b < n; b++ {
				links = append(links, Link{A: SocketID(a), B: SocketID(b)})
			}
		}
	}
	return links, nil
}

// parseClasses parses a core-class list like "8P+8E": a count followed
// by a class name, items joined by "+". A bare count ("4") is a single
// unnamed class; names are required as soon as there is more than one.
func parseClasses(tok, spec string) ([]CoreClass, error) {
	parts := strings.Split(tok, "+")
	out := make([]CoreClass, 0, len(parts))
	for _, p := range parts {
		i := 0
		for i < len(p) && p[i] >= '0' && p[i] <= '9' {
			i++
		}
		count, err := strconv.Atoi(p[:i])
		if err != nil || count <= 0 {
			return nil, fmt.Errorf("topology: bad core class %q in %q", p, spec)
		}
		name := p[i:]
		for _, r := range name {
			if !(r >= 'a' && r <= 'z' || r >= 'A' && r <= 'Z') {
				return nil, fmt.Errorf("topology: bad core class %q in %q", p, spec)
			}
		}
		if len(parts) > 1 && name == "" {
			return nil, fmt.Errorf("topology: core class %q in %q needs a name", p, spec)
		}
		out = append(out, CoreClass{Name: name, PerSocket: count})
	}
	for i := range out {
		for j := i + 1; j < len(out); j++ {
			if out[i].Name == out[j].Name {
				return nil, fmt.Errorf("topology: duplicate core class %q in %q", out[i].Name, spec)
			}
		}
	}
	return out, nil
}

// assemble builds a heterogeneous/multi-die system from parsed pieces,
// converting the remaining layout violations into errors instead of
// NewHetero's panics.
func assemble(spec string, n int, classes []CoreClass, dies int, links []Link) (*System, error) {
	per := 0
	for _, cl := range classes {
		per += cl.PerSocket
	}
	if per%dies != 0 {
		return nil, fmt.Errorf("topology: %d cores per socket do not split into %d dies in %q", per, dies, spec)
	}
	return NewHetero(spec, n, classes, dies, links), nil
}

// Ladder builds an R-row by C-column grid (the Iwill H8501 is 4x2):
// links along rows and columns. Socket numbering is row-major.
func Ladder(name string, rows, cols, coresPerSocket int) *System {
	return New(name, rows*cols, coresPerSocket, ladderLinks(rows, cols))
}

func ladderLinks(rows, cols int) []Link {
	var links []Link
	id := func(r, c int) SocketID { return SocketID(r*cols + c) }
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			if c+1 < cols {
				links = append(links, Link{A: id(r, c), B: id(r, c+1)})
			}
			if r+1 < rows {
				links = append(links, Link{A: id(r, c), B: id(r+1, c)})
			}
		}
	}
	return links
}
