package topology

import "testing"

func TestTigerShape(t *testing.T) {
	s := Tiger()
	if s.NumCores() != 2 || s.NumSockets != 2 || s.CoresPerSock != 1 {
		t.Fatalf("Tiger shape wrong: %+v", s)
	}
	if s.Hops(0, 1) != 1 {
		t.Fatalf("Tiger hops(0,1) = %d", s.Hops(0, 1))
	}
}

func TestDMZShape(t *testing.T) {
	s := DMZ()
	if s.NumCores() != 4 {
		t.Fatalf("DMZ cores = %d, want 4", s.NumCores())
	}
	if s.SocketOf(0) != 0 || s.SocketOf(1) != 0 || s.SocketOf(2) != 1 || s.SocketOf(3) != 1 {
		t.Fatal("DMZ core->socket mapping wrong")
	}
	if got := s.CoresOn(1); len(got) != 2 || got[0] != 2 || got[1] != 3 {
		t.Fatalf("DMZ CoresOn(1) = %v", got)
	}
}

func TestLongsLadder(t *testing.T) {
	s := Longs()
	if s.NumCores() != 16 || s.NumSockets != 8 {
		t.Fatalf("Longs shape wrong")
	}
	// Ladder distances: 0 and 7 are at opposite corners: 0-1-3-5-7 or
	// 0-2-4-6-7, both 4 hops.
	if s.Hops(0, 7) != 4 {
		t.Fatalf("Longs hops(0,7) = %d, want 4", s.Hops(0, 7))
	}
	if s.Hops(0, 1) != 1 || s.Hops(0, 2) != 1 {
		t.Fatal("Longs adjacent hops wrong")
	}
	if s.Hops(0, 3) != 2 {
		t.Fatalf("Longs hops(0,3) = %d, want 2", s.Hops(0, 3))
	}
	if s.MaxHops() != 4 {
		t.Fatalf("Longs diameter = %d, want 4", s.MaxHops())
	}
}

func TestRoutesAreConsistent(t *testing.T) {
	for _, s := range []*System{Tiger(), DMZ(), Longs()} {
		for a := 0; a < s.NumSockets; a++ {
			for b := 0; b < s.NumSockets; b++ {
				route := s.Route(SocketID(a), SocketID(b))
				if len(route) != s.Hops(SocketID(a), SocketID(b)) {
					t.Fatalf("%s: route length %d != hops %d for %d->%d",
						s.Name, len(route), s.Hops(SocketID(a), SocketID(b)), a, b)
				}
				// Walk the route and confirm it lands on b.
				cur := SocketID(a)
				for _, dl := range route {
					l := s.Links[dl.Index]
					switch {
					case !dl.Reverse && l.A == cur:
						cur = l.B
					case dl.Reverse && l.B == cur:
						cur = l.A
					default:
						t.Fatalf("%s: route %d->%d broken at link %v from socket %d",
							s.Name, a, b, dl, cur)
					}
				}
				if cur != SocketID(b) {
					t.Fatalf("%s: route %d->%d ends at %d", s.Name, a, b, cur)
				}
			}
		}
	}
}

func TestRouteDeterminism(t *testing.T) {
	a := Longs()
	b := Longs()
	for src := 0; src < 8; src++ {
		for dst := 0; dst < 8; dst++ {
			ra := a.Route(SocketID(src), SocketID(dst))
			rb := b.Route(SocketID(src), SocketID(dst))
			if len(ra) != len(rb) {
				t.Fatalf("nondeterministic route %d->%d", src, dst)
			}
			for i := range ra {
				if ra[i] != rb[i] {
					t.Fatalf("nondeterministic route %d->%d at hop %d", src, dst, i)
				}
			}
		}
	}
}

func TestDisconnectedPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for disconnected topology")
		}
	}()
	New("broken", 3, 1, []Link{{A: 0, B: 1}})
}

func TestCoreOutOfRangePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for out-of-range core")
		}
	}()
	Tiger().SocketOf(99)
}
