// Package topology describes the structure of the evaluated systems: cores,
// sockets, memory nodes, and the inter-socket interconnect (coherent
// HyperTransport), including the Iwill H8501 2x4 ladder used by the paper's
// Longs system. It provides shortest-path routing between sockets; link
// congestion and cost modeling live in internal/machine.
package topology

import "fmt"

// CoreID identifies a core within a system (0-based, dense).
type CoreID int

// SocketID identifies a socket (and its attached memory node: on Opteron
// every socket has a local memory controller, so memory node IDs equal
// socket IDs).
type SocketID int

// Link is an undirected inter-socket HyperTransport link. Machine-level
// code instantiates two directed resources per link.
type Link struct {
	A, B SocketID
}

// CoreClass is one class of cores present in every socket of a
// heterogeneous system (e.g. performance vs efficiency cores on a hybrid
// part). Homogeneous systems have no declared classes.
type CoreClass struct {
	Name      string
	PerSocket int
}

// System is the static structure of one evaluated machine.
type System struct {
	Name         string
	CoresPerSock int
	NumSockets   int
	Links        []Link

	// Classes, when non-empty, partitions every socket's cores into
	// named classes in declared order (class 0 gets the socket's lowest
	// core ids). Empty means one anonymous homogeneous class.
	Classes []CoreClass
	// DiesPerSocket splits each socket into equal chiplets joined by an
	// on-package fabric (Infinity-Fabric-style); 0 or 1 means a
	// monolithic socket. Cores are assigned to dies in contiguous
	// id blocks.
	DiesPerSocket int

	coreToSocket []SocketID
	socketCores  [][]CoreID
	coreClass    []int              // core id -> class index (nil when homogeneous)
	routes       [][][]DirectedLink // [from][to] -> directed link sequence
	hopCount     [][]int
}

// DirectedLink identifies one direction of a Link: link index plus
// direction (false = A->B, true = B->A).
type DirectedLink struct {
	Index   int
	Reverse bool
}

// New builds a system from socket/core counts and a link list, and
// precomputes all shortest routes. It panics on disconnected topologies:
// every socket must reach every other.
func New(name string, numSockets, coresPerSocket int, links []Link) *System {
	s := &System{
		Name:         name,
		CoresPerSock: coresPerSocket,
		NumSockets:   numSockets,
		Links:        links,
	}
	s.coreToSocket = make([]SocketID, numSockets*coresPerSocket)
	s.socketCores = make([][]CoreID, numSockets)
	for sock := 0; sock < numSockets; sock++ {
		for c := 0; c < coresPerSocket; c++ {
			id := CoreID(sock*coresPerSocket + c)
			s.coreToSocket[id] = SocketID(sock)
			s.socketCores[sock] = append(s.socketCores[sock], id)
		}
	}
	s.computeRoutes()
	return s
}

// NewHetero builds a heterogeneous and/or multi-die system: every socket
// holds the declared core classes in order, split into diesPerSocket
// equal chiplets. It panics on invalid layouts (use topology.Parse for
// error-returning construction from untrusted strings). A single unnamed
// class is normalized to the homogeneous representation, so
// NewHetero(name, n, []CoreClass{{PerSocket: k}}, 1, links) is
// equivalent to New(name, n, k, links).
func NewHetero(name string, numSockets int, classes []CoreClass, diesPerSocket int, links []Link) *System {
	if diesPerSocket < 1 {
		diesPerSocket = 1
	}
	per := 0
	for _, cl := range classes {
		if cl.PerSocket <= 0 {
			panic(fmt.Sprintf("topology: %s class %q has %d cores per socket", name, cl.Name, cl.PerSocket))
		}
		if len(classes) > 1 && cl.Name == "" {
			panic(fmt.Sprintf("topology: %s has an unnamed core class among %d", name, len(classes)))
		}
		per += cl.PerSocket
	}
	for i := range classes {
		for j := i + 1; j < len(classes); j++ {
			if classes[i].Name == classes[j].Name {
				panic(fmt.Sprintf("topology: %s has duplicate core class %q", name, classes[i].Name))
			}
		}
	}
	if per == 0 {
		panic(fmt.Sprintf("topology: %s has no core classes", name))
	}
	if per%diesPerSocket != 0 {
		panic(fmt.Sprintf("topology: %s has %d cores per socket, not divisible into %d dies", name, per, diesPerSocket))
	}
	s := New(name, numSockets, per, links)
	s.DiesPerSocket = diesPerSocket
	if len(classes) == 1 && classes[0].Name == "" {
		return s // homogeneous: keep the canonical class-free form
	}
	s.Classes = append([]CoreClass(nil), classes...)
	s.coreClass = make([]int, s.NumCores())
	for sock := 0; sock < numSockets; sock++ {
		id := sock * per
		for ci, cl := range classes {
			for k := 0; k < cl.PerSocket; k++ {
				s.coreClass[id] = ci
				id++
			}
		}
	}
	return s
}

// Reshape returns a copy of s with the given core classes and die count
// on the same socket/link fabric. It is the layering hook for machine
// specs that declare classes or dies in JSON on top of a plain topology
// string. Nil classes keeps the existing layout (likewise dies < 1); the
// class counts must sum to the existing cores per socket.
func (s *System) Reshape(classes []CoreClass, diesPerSocket int) (*System, error) {
	if classes == nil {
		classes = s.Classes
	}
	if classes == nil {
		classes = []CoreClass{{PerSocket: s.CoresPerSock}}
	}
	if diesPerSocket < 1 {
		diesPerSocket = s.NumDies()
	}
	per := 0
	for _, cl := range classes {
		if cl.PerSocket <= 0 {
			return nil, fmt.Errorf("topology: class %q has %d cores per socket", cl.Name, cl.PerSocket)
		}
		if len(classes) > 1 && cl.Name == "" {
			return nil, fmt.Errorf("topology: multi-class systems need named classes")
		}
		per += cl.PerSocket
	}
	if per != s.CoresPerSock {
		return nil, fmt.Errorf("topology: %s has %d cores per socket, classes sum to %d", s.Name, s.CoresPerSock, per)
	}
	if per%diesPerSocket != 0 {
		return nil, fmt.Errorf("topology: %s has %d cores per socket, not divisible into %d dies", s.Name, per, diesPerSocket)
	}
	for i := range classes {
		for j := i + 1; j < len(classes); j++ {
			if classes[i].Name == classes[j].Name {
				return nil, fmt.Errorf("topology: duplicate core class %q", classes[i].Name)
			}
		}
	}
	return NewHetero(s.Name, s.NumSockets, classes, diesPerSocket, s.Links), nil
}

// Renamed returns a shallow copy of s under a new name. The routing
// tables and core maps are shared — they are immutable after
// construction.
func (s *System) Renamed(name string) *System {
	c := *s
	c.Name = name
	return &c
}

// NumCores returns the total core count.
func (s *System) NumCores() int { return len(s.coreToSocket) }

// NumClasses returns the number of core classes (1 for homogeneous
// systems).
func (s *System) NumClasses() int {
	if len(s.Classes) == 0 {
		return 1
	}
	return len(s.Classes)
}

// ClassOf returns the class index of core c (always 0 on homogeneous
// systems).
func (s *System) ClassOf(c CoreID) int {
	if int(c) < 0 || int(c) >= len(s.coreToSocket) {
		panic(fmt.Sprintf("topology: core %d out of range on %s", c, s.Name))
	}
	if s.coreClass == nil {
		return 0
	}
	return s.coreClass[c]
}

// ClassName returns the name of class i ("" for the single anonymous
// class of a homogeneous system).
func (s *System) ClassName(i int) string {
	if len(s.Classes) == 0 {
		return ""
	}
	return s.Classes[i].Name
}

// NumDies returns the dies per socket (1 for monolithic sockets).
func (s *System) NumDies() int {
	if s.DiesPerSocket < 1 {
		return 1
	}
	return s.DiesPerSocket
}

// CoresPerDie returns the cores hosted by one die.
func (s *System) CoresPerDie() int { return s.CoresPerSock / s.NumDies() }

// DieOf returns the die (within its socket) hosting core c — always 0 on
// monolithic sockets.
func (s *System) DieOf(c CoreID) int {
	if s.NumDies() == 1 {
		return 0
	}
	sock := int(s.SocketOf(c))
	return (int(c) - sock*s.CoresPerSock) / s.CoresPerDie()
}

// SocketOf returns the socket hosting core c.
func (s *System) SocketOf(c CoreID) SocketID {
	if int(c) < 0 || int(c) >= len(s.coreToSocket) {
		panic(fmt.Sprintf("topology: core %d out of range on %s", c, s.Name))
	}
	return s.coreToSocket[c]
}

// CoresOn returns the cores hosted by socket id.
func (s *System) CoresOn(id SocketID) []CoreID { return s.socketCores[id] }

// Route returns the directed link sequence from socket a to socket b
// (empty for a == b). Routes are shortest paths with deterministic
// tie-breaking (lowest next socket id first), mirroring static HT routing
// tables.
func (s *System) Route(a, b SocketID) []DirectedLink { return s.routes[a][b] }

// Hops returns the number of links between sockets a and b.
func (s *System) Hops(a, b SocketID) int { return s.hopCount[a][b] }

// MaxHops returns the topology diameter in links.
func (s *System) MaxHops() int {
	max := 0
	for a := range s.hopCount {
		for _, h := range s.hopCount[a] {
			if h > max {
				max = h
			}
		}
	}
	return max
}

func (s *System) computeRoutes() {
	n := s.NumSockets
	type edge struct {
		to SocketID
		dl DirectedLink
	}
	adjE := make([][]edge, n)
	for i, l := range s.Links {
		adjE[l.A] = append(adjE[l.A], edge{to: l.B, dl: DirectedLink{Index: i}})
		adjE[l.B] = append(adjE[l.B], edge{to: l.A, dl: DirectedLink{Index: i, Reverse: true}})
	}
	s.routes = make([][][]DirectedLink, n)
	s.hopCount = make([][]int, n)
	for src := 0; src < n; src++ {
		// BFS with deterministic neighbor order.
		prev := make([]int, n)
		prevLink := make([]DirectedLink, n)
		dist := make([]int, n)
		for i := range prev {
			prev[i] = -1
			dist[i] = -1
		}
		dist[src] = 0
		queue := []int{src}
		for len(queue) > 0 {
			u := queue[0]
			queue = queue[1:]
			for _, e := range adjE[u] {
				v := int(e.to)
				if dist[v] == -1 {
					dist[v] = dist[u] + 1
					prev[v] = u
					prevLink[v] = e.dl
					queue = append(queue, v)
				}
			}
		}
		s.routes[src] = make([][]DirectedLink, n)
		s.hopCount[src] = make([]int, n)
		for dst := 0; dst < n; dst++ {
			if dst == src {
				continue
			}
			if dist[dst] == -1 {
				panic(fmt.Sprintf("topology: %s sockets %d and %d are disconnected", s.Name, src, dst))
			}
			var rev []DirectedLink
			for v := dst; v != src; v = prev[v] {
				rev = append(rev, prevLink[v])
			}
			route := make([]DirectedLink, len(rev))
			for i := range rev {
				route[i] = rev[len(rev)-1-i]
			}
			s.routes[src][dst] = route
			s.hopCount[src][dst] = dist[dst]
		}
	}
}

// Tiger is the Cray XD1 node: two single-core 2.2 GHz Opteron 248 sockets
// joined by one coherent HT link (paper Table 1).
func Tiger() *System {
	return New("Tiger", 2, 1, []Link{{A: 0, B: 1}})
}

// DMZ is one node of the DMZ cluster: two dual-core 2.2 GHz Opteron 275
// sockets joined by one coherent HT link (paper Table 1).
func DMZ() *System {
	return New("DMZ", 2, 2, []Link{{A: 0, B: 1}})
}

// Longs is the eight-socket Iwill H8501 server: dual-core 1.8 GHz Opteron
// 865 sockets arranged in a 2x4 HyperTransport ladder (paper Figure 1).
// Socket numbering: column-major pairs, rung r holds sockets 2r and 2r+1.
//
//	0 -- 1
//	|    |
//	2 -- 3
//	|    |
//	4 -- 5
//	|    |
//	6 -- 7
func Longs() *System {
	links := []Link{
		{A: 0, B: 1}, {A: 2, B: 3}, {A: 4, B: 5}, {A: 6, B: 7}, // rungs
		{A: 0, B: 2}, {A: 2, B: 4}, {A: 4, B: 6}, // left rail
		{A: 1, B: 3}, {A: 3, B: 5}, {A: 5, B: 7}, // right rail
	}
	return New("Longs", 8, 2, links)
}
