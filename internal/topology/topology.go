// Package topology describes the structure of the evaluated systems: cores,
// sockets, memory nodes, and the inter-socket interconnect (coherent
// HyperTransport), including the Iwill H8501 2x4 ladder used by the paper's
// Longs system. It provides shortest-path routing between sockets; link
// congestion and cost modeling live in internal/machine.
package topology

import "fmt"

// CoreID identifies a core within a system (0-based, dense).
type CoreID int

// SocketID identifies a socket (and its attached memory node: on Opteron
// every socket has a local memory controller, so memory node IDs equal
// socket IDs).
type SocketID int

// Link is an undirected inter-socket HyperTransport link. Machine-level
// code instantiates two directed resources per link.
type Link struct {
	A, B SocketID
}

// System is the static structure of one evaluated machine.
type System struct {
	Name         string
	CoresPerSock int
	NumSockets   int
	Links        []Link
	coreToSocket []SocketID
	socketCores  [][]CoreID
	routes       [][][]DirectedLink // [from][to] -> directed link sequence
	hopCount     [][]int
}

// DirectedLink identifies one direction of a Link: link index plus
// direction (false = A->B, true = B->A).
type DirectedLink struct {
	Index   int
	Reverse bool
}

// New builds a system from socket/core counts and a link list, and
// precomputes all shortest routes. It panics on disconnected topologies:
// every socket must reach every other.
func New(name string, numSockets, coresPerSocket int, links []Link) *System {
	s := &System{
		Name:         name,
		CoresPerSock: coresPerSocket,
		NumSockets:   numSockets,
		Links:        links,
	}
	s.coreToSocket = make([]SocketID, numSockets*coresPerSocket)
	s.socketCores = make([][]CoreID, numSockets)
	for sock := 0; sock < numSockets; sock++ {
		for c := 0; c < coresPerSocket; c++ {
			id := CoreID(sock*coresPerSocket + c)
			s.coreToSocket[id] = SocketID(sock)
			s.socketCores[sock] = append(s.socketCores[sock], id)
		}
	}
	s.computeRoutes()
	return s
}

// NumCores returns the total core count.
func (s *System) NumCores() int { return len(s.coreToSocket) }

// SocketOf returns the socket hosting core c.
func (s *System) SocketOf(c CoreID) SocketID {
	if int(c) < 0 || int(c) >= len(s.coreToSocket) {
		panic(fmt.Sprintf("topology: core %d out of range on %s", c, s.Name))
	}
	return s.coreToSocket[c]
}

// CoresOn returns the cores hosted by socket id.
func (s *System) CoresOn(id SocketID) []CoreID { return s.socketCores[id] }

// Route returns the directed link sequence from socket a to socket b
// (empty for a == b). Routes are shortest paths with deterministic
// tie-breaking (lowest next socket id first), mirroring static HT routing
// tables.
func (s *System) Route(a, b SocketID) []DirectedLink { return s.routes[a][b] }

// Hops returns the number of links between sockets a and b.
func (s *System) Hops(a, b SocketID) int { return s.hopCount[a][b] }

// MaxHops returns the topology diameter in links.
func (s *System) MaxHops() int {
	max := 0
	for a := range s.hopCount {
		for _, h := range s.hopCount[a] {
			if h > max {
				max = h
			}
		}
	}
	return max
}

func (s *System) computeRoutes() {
	n := s.NumSockets
	type edge struct {
		to SocketID
		dl DirectedLink
	}
	adjE := make([][]edge, n)
	for i, l := range s.Links {
		adjE[l.A] = append(adjE[l.A], edge{to: l.B, dl: DirectedLink{Index: i}})
		adjE[l.B] = append(adjE[l.B], edge{to: l.A, dl: DirectedLink{Index: i, Reverse: true}})
	}
	s.routes = make([][][]DirectedLink, n)
	s.hopCount = make([][]int, n)
	for src := 0; src < n; src++ {
		// BFS with deterministic neighbor order.
		prev := make([]int, n)
		prevLink := make([]DirectedLink, n)
		dist := make([]int, n)
		for i := range prev {
			prev[i] = -1
			dist[i] = -1
		}
		dist[src] = 0
		queue := []int{src}
		for len(queue) > 0 {
			u := queue[0]
			queue = queue[1:]
			for _, e := range adjE[u] {
				v := int(e.to)
				if dist[v] == -1 {
					dist[v] = dist[u] + 1
					prev[v] = u
					prevLink[v] = e.dl
					queue = append(queue, v)
				}
			}
		}
		s.routes[src] = make([][]DirectedLink, n)
		s.hopCount[src] = make([]int, n)
		for dst := 0; dst < n; dst++ {
			if dst == src {
				continue
			}
			if dist[dst] == -1 {
				panic(fmt.Sprintf("topology: %s sockets %d and %d are disconnected", s.Name, src, dst))
			}
			var rev []DirectedLink
			for v := dst; v != src; v = prev[v] {
				rev = append(rev, prevLink[v])
			}
			route := make([]DirectedLink, len(rev))
			for i := range rev {
				route[i] = rev[len(rev)-1-i]
			}
			s.routes[src][dst] = route
			s.hopCount[src][dst] = dist[dst]
		}
	}
}

// Tiger is the Cray XD1 node: two single-core 2.2 GHz Opteron 248 sockets
// joined by one coherent HT link (paper Table 1).
func Tiger() *System {
	return New("Tiger", 2, 1, []Link{{A: 0, B: 1}})
}

// DMZ is one node of the DMZ cluster: two dual-core 2.2 GHz Opteron 275
// sockets joined by one coherent HT link (paper Table 1).
func DMZ() *System {
	return New("DMZ", 2, 2, []Link{{A: 0, B: 1}})
}

// Longs is the eight-socket Iwill H8501 server: dual-core 1.8 GHz Opteron
// 865 sockets arranged in a 2x4 HyperTransport ladder (paper Figure 1).
// Socket numbering: column-major pairs, rung r holds sockets 2r and 2r+1.
//
//	0 -- 1
//	|    |
//	2 -- 3
//	|    |
//	4 -- 5
//	|    |
//	6 -- 7
func Longs() *System {
	links := []Link{
		{A: 0, B: 1}, {A: 2, B: 3}, {A: 4, B: 5}, {A: 6, B: 7}, // rungs
		{A: 0, B: 2}, {A: 2, B: 4}, {A: 4, B: 6}, // left rail
		{A: 1, B: 3}, {A: 3, B: 5}, {A: 5, B: 7}, // right rail
	}
	return New("Longs", 8, 2, links)
}
