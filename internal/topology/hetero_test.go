package topology

import (
	"strings"
	"testing"
)

func TestParseHeteroClasses(t *testing.T) {
	s, err := Parse("sock:8P+8E")
	if err != nil {
		t.Fatal(err)
	}
	if s.NumSockets != 1 || s.CoresPerSock != 16 {
		t.Fatalf("shape wrong: %d sockets, %d cores/socket", s.NumSockets, s.CoresPerSock)
	}
	if len(s.Classes) != 2 || s.Classes[0].Name != "P" || s.Classes[1].Name != "E" {
		t.Fatalf("classes wrong: %+v", s.Classes)
	}
	// Class-major ordering: cores 0..7 are P, 8..15 are E.
	for c := 0; c < 16; c++ {
		want := 0
		if c >= 8 {
			want = 1
		}
		if got := s.ClassOf(CoreID(c)); got != want {
			t.Fatalf("ClassOf(%d) = %d, want %d", c, got, want)
		}
	}
	if s.ClassName(0) != "P" || s.ClassName(1) != "E" {
		t.Fatalf("class names wrong: %q, %q", s.ClassName(0), s.ClassName(1))
	}
}

func TestParseHeteroMultiSocket(t *testing.T) {
	s, err := Parse("line:2x4P+4E")
	if err != nil {
		t.Fatal(err)
	}
	if s.NumSockets != 2 || s.CoresPerSock != 8 {
		t.Fatalf("shape wrong: %d sockets, %d cores/socket", s.NumSockets, s.CoresPerSock)
	}
	// Class layout repeats per socket.
	for sock := 0; sock < 2; sock++ {
		cores := s.CoresOn(SocketID(sock))
		for i, c := range cores {
			want := 0
			if i >= 4 {
				want = 1
			}
			if s.ClassOf(c) != want {
				t.Fatalf("socket %d core %d (id %d): class %d, want %d", sock, i, c, s.ClassOf(c), want)
			}
		}
	}
}

func TestParseMultiDie(t *testing.T) {
	s, err := Parse("line:2x32/4")
	if err != nil {
		t.Fatal(err)
	}
	if s.NumDies() != 4 || s.CoresPerDie() != 8 {
		t.Fatalf("dies wrong: %d dies of %d cores", s.NumDies(), s.CoresPerDie())
	}
	// Dies are contiguous blocks within a socket and restart per socket.
	if s.DieOf(0) != 0 || s.DieOf(7) != 0 || s.DieOf(8) != 1 || s.DieOf(31) != 3 {
		t.Fatalf("die mapping wrong: %d %d %d %d", s.DieOf(0), s.DieOf(7), s.DieOf(8), s.DieOf(31))
	}
	if s.DieOf(32) != 0 || s.DieOf(63) != 3 {
		t.Fatalf("second-socket die mapping wrong: %d %d", s.DieOf(32), s.DieOf(63))
	}
}

func TestParseHomogeneousDefaults(t *testing.T) {
	s, err := Parse("ladder:4x2")
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Classes) != 0 {
		t.Fatalf("homogeneous parse grew classes: %+v", s.Classes)
	}
	if s.NumDies() != 1 || s.DieOf(5) != 0 {
		t.Fatalf("homogeneous parse grew dies: %d", s.NumDies())
	}
	if s.NumClasses() != 1 || s.ClassOf(3) != 0 {
		t.Fatalf("homogeneous class accessors wrong: %d classes, class %d", s.NumClasses(), s.ClassOf(3))
	}
}

func TestParseHeteroRejects(t *testing.T) {
	for _, bad := range []string{
		"sock:8P+8P",     // duplicate class name
		"sock:8+8",       // multiple classes need names
		"sock:0P+8E",     // zero-count class
		"sock:8P+8E/3",   // 16 cores not divisible into 3 dies
		"sock:8P+8E/0",   // zero dies
		"sock:8P+8E/-2",  // negative dies
		"sock:8P+8E/x",   // non-numeric dies
		"ladder:4P+4Ex2", // class list outside the cores position
		"sock:",          // empty class list
		"sock:P8",        // count must lead
		"sock:8P++8E",    // empty class item
		"line:2x32/64",   // more dies than cores
		"sock:8Pé8E",     // non-ASCII class name
	} {
		if _, err := Parse(bad); err == nil {
			t.Fatalf("Parse(%q) should fail", bad)
		}
	}
}

func TestParseDieErrorMentionsInput(t *testing.T) {
	_, err := Parse("line:2x32/x")
	if err == nil || !strings.Contains(err.Error(), "die count") {
		t.Fatalf("want die-count error, got %v", err)
	}
}

func TestReshape(t *testing.T) {
	base := New("flat", 2, 8, []Link{{A: 0, B: 1}})
	s, err := base.Reshape([]CoreClass{{Name: "P", PerSocket: 4}, {Name: "E", PerSocket: 4}}, 2)
	if err != nil {
		t.Fatal(err)
	}
	if s.NumDies() != 2 || len(s.Classes) != 2 {
		t.Fatalf("reshape lost structure: %d dies, %d classes", s.NumDies(), len(s.Classes))
	}
	if base.NumDies() != 1 || len(base.Classes) != 0 {
		t.Fatal("Reshape mutated its receiver")
	}
	if _, err := base.Reshape([]CoreClass{{Name: "P", PerSocket: 3}}, 1); err == nil {
		t.Fatal("class counts not summing to cores/socket should fail")
	}
	if _, err := base.Reshape(nil, 3); err == nil {
		t.Fatal("8 cores into 3 dies should fail")
	}
}

func FuzzParseTopology(f *testing.F) {
	for _, seed := range []string{
		"ladder:4x2", "ring:6x1", "xbar:8", "line:4", "sock:2",
		"sock:8P+8E", "line:2x32/4", "ladder:4x2x2", "ring:3x4P+4E",
		"sock:8P+8E/2", "line:0", "xbar:1", "torus:4", "sock:8P\xffE",
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, in string) {
		s, err := Parse(in)
		if err != nil {
			return
		}
		// Any accepted topology must be internally consistent.
		if s.NumSockets < 1 || s.CoresPerSock < 1 {
			t.Fatalf("Parse(%q): empty system %d/%d", in, s.NumSockets, s.CoresPerSock)
		}
		if s.CoresPerSock%s.NumDies() != 0 {
			t.Fatalf("Parse(%q): %d cores/socket not divisible into %d dies", in, s.CoresPerSock, s.NumDies())
		}
		total := 0
		for _, cl := range s.Classes {
			if cl.Name == "" || cl.PerSocket < 1 {
				t.Fatalf("Parse(%q): bad class %+v", in, cl)
			}
			total += cl.PerSocket
		}
		if len(s.Classes) > 0 && total != s.CoresPerSock {
			t.Fatalf("Parse(%q): class counts sum to %d, want %d", in, total, s.CoresPerSock)
		}
		for c := 0; c < s.NumCores(); c++ {
			id := CoreID(c)
			if cl := s.ClassOf(id); cl < 0 || cl >= s.NumClasses() {
				t.Fatalf("Parse(%q): ClassOf(%d) = %d out of range", in, c, cl)
			}
			if d := s.DieOf(id); d < 0 || d >= s.NumDies() {
				t.Fatalf("Parse(%q): DieOf(%d) = %d out of range", in, c, d)
			}
		}
		for a := 0; a < s.NumSockets; a++ {
			for b := 0; b < s.NumSockets; b++ {
				if len(s.Route(SocketID(a), SocketID(b))) != s.Hops(SocketID(a), SocketID(b)) {
					t.Fatalf("Parse(%q): route/hops mismatch %d->%d", in, a, b)
				}
			}
		}
	})
}
