// Package paperdata embeds the numbers published in the paper's tables so
// the reproduction can be scored automatically: cmd/mccompare re-runs each
// table on the simulator and reports, row by row, how well the measured
// ordering and spread agree with the published ones.
//
// Values are transcribed from the paper (IISWC 2006). NaN marks the dashes
// (infeasible configurations).
package paperdata

import "math"

// NA marks a dash in a paper table.
var NA = math.NaN()

// Row is one table row: a rank count, a system, and the six numactl-option
// cells in Table 5 order (Default, 1MPI+LA, 1MPI+MB, 2MPI+LA, 2MPI+MB,
// Interleave) — or, for speedup tables, one cell per workload column.
type Row struct {
	Tasks  int
	System string
	Cells  []float64
}

// Table is one published table.
type Table struct {
	ID      string
	Title   string
	Columns []string
	Rows    []Row
}

var numactlCols = []string{"Default", "One MPI + Local Alloc", "One MPI + Membind",
	"Two MPI + Local Alloc", "Two MPI + Membind", "Interleave"}

// Tables returns every transcribed paper table, keyed by experiment id.
func Tables() map[string]Table {
	return map[string]Table{
		"table2-cg": {
			ID: "table2-cg", Title: "NAS CG vs numactl (Longs), seconds", Columns: numactlCols,
			Rows: []Row{
				{2, "longs", []float64{162.81, 162.68, 162.72, 172.08, 170.79, 190.18}},
				{4, "longs", []float64{98.51, 88.21, 111.02, 102.94, 99.54, 109.93}},
				{8, "longs", []float64{50.93, 51.15, 109.11, 49.24, 115.87, 67.23}},
				{16, "longs", []float64{54.17, NA, NA, 54.45, 121.87, 72.62}},
			},
		},
		"table2-ft": {
			ID: "table2-ft", Title: "NAS FT vs numactl (Longs), seconds", Columns: numactlCols,
			Rows: []Row{
				{2, "longs", []float64{118.97, 118.56, 123.15, 129.18, 129.12, 137.79}},
				{4, "longs", []float64{79.96, 67.72, 91.84, 74.38, 92.79, 84.89}},
				{8, "longs", []float64{42.32, 39.96, 69.79, 62.80, 81.95, 47.13}},
				{16, "longs", []float64{30.77, NA, NA, 31.36, 63.39, 41.48}},
			},
		},
		"table3-cg": {
			ID: "table3-cg", Title: "NAS CG vs numactl (DMZ), seconds", Columns: numactlCols,
			Rows: []Row{
				{2, "dmz", []float64{106.8, 106.24, 125.87, 111.17, 111.20, 115.02}},
				{4, "dmz", []float64{59.22, NA, NA, 68.16, 86.93, 66.74}},
			},
		},
		"table3-ft": {
			ID: "table3-ft", Title: "NAS FT vs numactl (DMZ), seconds", Columns: numactlCols,
			Rows: []Row{
				{2, "dmz", []float64{93.58, 100.84, 115.42, 108.30, 101.18, 105.13}},
				{4, "dmz", []float64{57.05, NA, NA, 57.03, 75.50, 63.67}},
			},
		},
		"table4": {
			ID: "table4", Title: "NAS multi-core efficiency", Columns: []string{"CG", "FT"},
			Rows: []Row{
				{2, "dmz", []float64{1.07, 0.82}},
				{4, "dmz", []float64{0.86, 0.64}},
				{2, "longs", []float64{1.07, 0.85}},
				{4, "longs", []float64{0.73, 0.69}},
				{8, "longs", []float64{0.52, 0.62}},
				{16, "longs", []float64{0.25, 0.42}},
				{2, "tiger", []float64{1.01, 0.88}},
			},
		},
		"table7": {
			ID: "table7", Title: "JAC FFT time vs numactl, seconds", Columns: numactlCols,
			Rows: []Row{
				{2, "longs", []float64{3.13, 2.76, 3.13, 3.3, 3.31, 3.50}},
				{4, "longs", []float64{1.83, 1.45, 1.78, 1.48, 1.77, 1.75}},
				{8, "longs", []float64{0.81, 0.82, 1.17, 0.77, 1.01, 0.85}},
				{16, "longs", []float64{0.63, NA, NA, 0.57, 1.32, 2.22}},
				{2, "dmz", []float64{1.81, 1.77, 2.39, 2.25, 2.25, 1.96}},
				{4, "dmz", []float64{1.03, NA, NA, 1.08, 1.51, 1.09}},
			},
		},
		"table8": {
			ID: "table8", Title: "AMBER multi-core speedup",
			Columns: []string{"dhfr", "factor_ix", "gb_cox2", "gb_mb", "JAC"},
			Rows: []Row{
				{2, "dmz", []float64{1.90, 1.91, 1.98, 1.98, 1.96}},
				{4, "dmz", []float64{3.45, 3.35, 3.92, 3.94, 3.63}},
				{2, "longs", []float64{1.95, 1.89, 1.98, 2.06, 1.93}},
				{4, "longs", []float64{3.63, 3.43, 3.92, 4.07, 3.78}},
				{8, "longs", []float64{6.02, 5.94, 7.63, 7.96, 6.22}},
				{16, "longs", []float64{7.24, 7.35, 14.29, 14.93, 7.97}},
			},
		},
		"table9": {
			ID: "table9", Title: "JAC overall runtime vs numactl, seconds", Columns: numactlCols,
			Rows: []Row{
				{2, "longs", []float64{38.08, 35.21, 35.63, 35.91, 36.75, 36.99}},
				{4, "longs", []float64{20.18, 18.70, 19.72, 18.83, 19.63, 19.97}},
				{8, "longs", []float64{11.47, 11.39, 13.85, 11.12, 13.42, 12.06}},
				{16, "longs", []float64{8.96, NA, NA, 8.95, 14.71, 14.99}},
				{2, "dmz", []float64{27.05, 26.30, 28.08, 28.01, 27.59, 27.27}},
				{4, "dmz", []float64{14.38, NA, NA, 14.44, 16.08, 14.74}},
			},
		},
		"table10": {
			ID: "table10", Title: "LAMMPS multi-core speedup",
			Columns: []string{"LJ", "Chain", "EAM"},
			Rows: []Row{
				{2, "dmz", []float64{1.79, 2.13, 1.96}},
				{4, "dmz", []float64{3.61, 4.41, 3.60}},
				{2, "longs", []float64{1.89, 2.23, 1.82}},
				{4, "longs", []float64{3.51, 5.53, 3.45}},
				{8, "longs", []float64{6.63, 11.52, 6.74}},
				{16, "longs", []float64{10.65, 19.95, 12.54}},
				{2, "tiger", []float64{1.92, 2.13, 1.87}},
			},
		},
		"table11": {
			ID: "table11", Title: "LAMMPS LJ vs numactl, seconds", Columns: numactlCols,
			Rows: []Row{
				{2, "longs", []float64{3.82, 3.6, 3.76, 3.73, 3.73, 3.93}},
				{4, "longs", []float64{1.95, 1.87, 1.99, 2.52, 2.99, 2.03}},
				{8, "longs", []float64{1.03, 1.02, 1.11, 1.97, 1.067, 1.05}},
				{16, "longs", []float64{0.63, NA, NA, 0.63, 0.77, 0.64}},
				{2, "dmz", []float64{3.07037, 2.89618, 3.10457, 3.00691, 3.00305, 2.96663}},
				{4, "dmz", []float64{1.55389, NA, NA, 1.53995, 1.73746, 1.58052}},
			},
		},
		"table12": {
			ID: "table12", Title: "POP multi-core speedup",
			Columns: []string{"Baroclinic", "Barotropic"},
			Rows: []Row{
				{2, "dmz", []float64{2.04, 2.07}},
				{4, "dmz", []float64{3.87, 3.99}},
				{2, "tiger", []float64{1.97, 1.93}},
				{2, "longs", []float64{2.02, 2.002}},
				{4, "longs", []float64{4.08, 4.07}},
				{8, "longs", []float64{8.26, 8.28}},
				{16, "longs", []float64{16.11, 14.85}},
			},
		},
		"table13": {
			ID: "table13", Title: "POP baroclinic vs numactl, seconds", Columns: numactlCols,
			Rows: []Row{
				{2, "longs", []float64{358.57, 332.29, 343.89, 354.01, 354.62, 408.66}},
				{4, "longs", []float64{177.64, 163.37, 191.78, 169.08, 275.91, 194.99}},
				{8, "longs", []float64{87.58, 86.61, 118.87, 84.5, 184.33, 98.09}},
				{16, "longs", []float64{44.93, NA, NA, 44.9, 75.96, 57.08}},
				{2, "dmz", []float64{301.82, 284.53, 326.43, 316.36, 305.34, 306.05}},
				{4, "dmz", []float64{150.15, NA, NA, 154.03, 199.51, 156.79}},
			},
		},
		"table14": {
			ID: "table14", Title: "POP barotropic vs numactl, seconds", Columns: numactlCols,
			Rows: []Row{
				{2, "longs", []float64{36.13, 34.35, 35.12, 37.28, 37.37, 41.41}},
				{4, "longs", []float64{17.75, 17.08, 20.3, 17.51, 34.92, 19.29}},
				{8, "longs", []float64{8.74, 10.06, 10.41, 8.96, 21.99, 9.31}},
				{16, "longs", []float64{4.87, NA, NA, 4.23, 4.55, 4.36}},
				{2, "dmz", []float64{29.78, 26.18, 29.68, 30.40, 28.21, 29.84}},
				{4, "dmz", []float64{13.76, NA, NA, 13.94, 17.55, 14.33}},
			},
		},
	}
}
