package paperdata

import (
	"fmt"
	"math"
	"sort"
)

// Agreement scores how well a measured row reproduces a published row.
type Agreement struct {
	// Spearman is the rank correlation between paper and measured cells
	// (1 = identical ordering, -1 = reversed). NaN if fewer than three
	// comparable cells.
	Spearman float64
	// SpreadRatio compares worst/best ratios: measured spread divided by
	// paper spread (1 = same magnitude of placement effect).
	SpreadRatio float64
	// N is the number of comparable (non-dash) cells.
	N int
}

// Compare scores measured cells against paper cells; dashes (NaN) in
// either side are skipped pairwise.
func Compare(paper, measured []float64) Agreement {
	var p, m []float64
	for i := range paper {
		if i >= len(measured) {
			break
		}
		if math.IsNaN(paper[i]) || math.IsNaN(measured[i]) {
			continue
		}
		p = append(p, paper[i])
		m = append(m, measured[i])
	}
	ag := Agreement{N: len(p), Spearman: math.NaN(), SpreadRatio: math.NaN()}
	if len(p) >= 3 {
		ag.Spearman = Spearman(p, m)
	}
	if len(p) >= 2 {
		ag.SpreadRatio = spread(m) / spread(p)
	}
	return ag
}

func spread(v []float64) float64 {
	lo, hi := math.Inf(1), math.Inf(-1)
	for _, x := range v {
		if x < lo {
			lo = x
		}
		if x > hi {
			hi = x
		}
	}
	if lo <= 0 {
		return math.NaN()
	}
	return hi / lo
}

// Spearman computes the rank correlation coefficient of two equal-length
// samples, with average ranks for ties.
func Spearman(a, b []float64) float64 {
	if len(a) != len(b) || len(a) < 2 {
		return math.NaN()
	}
	ra := ranks(a)
	rb := ranks(b)
	return pearson(ra, rb)
}

func ranks(v []float64) []float64 {
	type iv struct {
		i int
		v float64
	}
	s := make([]iv, len(v))
	for i, x := range v {
		s[i] = iv{i, x}
	}
	sort.Slice(s, func(i, j int) bool { return s[i].v < s[j].v })
	out := make([]float64, len(v))
	for i := 0; i < len(s); {
		j := i
		for j < len(s) && s[j].v == s[i].v {
			j++
		}
		avg := float64(i+j-1)/2 + 1
		for k := i; k < j; k++ {
			out[s[k].i] = avg
		}
		i = j
	}
	return out
}

func pearson(a, b []float64) float64 {
	n := float64(len(a))
	var sa, sb float64
	for i := range a {
		sa += a[i]
		sb += b[i]
	}
	ma, mb := sa/n, sb/n
	var cov, va, vb float64
	for i := range a {
		cov += (a[i] - ma) * (b[i] - mb)
		va += (a[i] - ma) * (a[i] - ma)
		vb += (b[i] - mb) * (b[i] - mb)
	}
	if va == 0 || vb == 0 {
		return math.NaN()
	}
	return cov / math.Sqrt(va*vb)
}

// Summary aggregates agreements across rows: mean Spearman over rows with
// a defined value, and the geometric mean spread ratio.
func Summary(ags []Agreement) (meanSpearman, geoSpread float64) {
	var sSum float64
	var sN int
	var logSum float64
	var gN int
	for _, a := range ags {
		if !math.IsNaN(a.Spearman) {
			sSum += a.Spearman
			sN++
		}
		if !math.IsNaN(a.SpreadRatio) && a.SpreadRatio > 0 {
			logSum += math.Log(a.SpreadRatio)
			gN++
		}
	}
	meanSpearman, geoSpread = math.NaN(), math.NaN()
	if sN > 0 {
		meanSpearman = sSum / float64(sN)
	}
	if gN > 0 {
		geoSpread = math.Exp(logSum / float64(gN))
	}
	return
}

func (a Agreement) String() string {
	return fmt.Sprintf("spearman=%.2f spread-ratio=%.2f n=%d", a.Spearman, a.SpreadRatio, a.N)
}
