package paperdata

import (
	"math"
	"testing"
)

func TestTablesAreWellFormed(t *testing.T) {
	tabs := Tables()
	if len(tabs) < 12 {
		t.Fatalf("only %d paper tables transcribed", len(tabs))
	}
	for id, tab := range tabs {
		if len(tab.Rows) == 0 {
			t.Fatalf("%s has no rows", id)
		}
		for _, row := range tab.Rows {
			if len(row.Cells) != len(tab.Columns) {
				t.Fatalf("%s row (%d,%s) has %d cells for %d columns",
					id, row.Tasks, row.System, len(row.Cells), len(tab.Columns))
			}
			if row.Tasks < 1 || row.Tasks > 16 {
				t.Fatalf("%s has implausible task count %d", id, row.Tasks)
			}
		}
	}
}

func TestDashesOnlyWhereInfeasible(t *testing.T) {
	// One-MPI columns (indices 1, 2) dash exactly when tasks exceed the
	// system's socket count (8 for longs, 2 for dmz).
	sockets := map[string]int{"longs": 8, "dmz": 2, "tiger": 2}
	for id, tab := range Tables() {
		if len(tab.Columns) != 6 {
			continue // speedup tables have no option columns
		}
		for _, row := range tab.Rows {
			infeasible := row.Tasks > sockets[row.System]
			for _, col := range []int{1, 2} {
				isNaN := math.IsNaN(row.Cells[col])
				if isNaN != infeasible {
					t.Fatalf("%s row (%d,%s) col %d: dash=%v, want %v",
						id, row.Tasks, row.System, col, isNaN, infeasible)
				}
			}
		}
	}
}

func TestSpearmanBasics(t *testing.T) {
	if s := Spearman([]float64{1, 2, 3, 4}, []float64{10, 20, 30, 40}); math.Abs(s-1) > 1e-12 {
		t.Fatalf("identical ordering: %v", s)
	}
	if s := Spearman([]float64{1, 2, 3, 4}, []float64{4, 3, 2, 1}); math.Abs(s+1) > 1e-12 {
		t.Fatalf("reversed ordering: %v", s)
	}
	if s := Spearman([]float64{1, 2}, []float64{2, 1}); math.Abs(s+1) > 1e-12 {
		t.Fatalf("two-point reversal: %v", s)
	}
	if s := Spearman([]float64{1, 1, 1}, []float64{1, 2, 3}); !math.IsNaN(s) {
		t.Fatalf("constant input should be NaN, got %v", s)
	}
}

func TestSpearmanTies(t *testing.T) {
	// Ties get average ranks; correlation stays defined.
	s := Spearman([]float64{1, 2, 2, 3}, []float64{10, 20, 21, 30})
	if s < 0.9 {
		t.Fatalf("tie handling broke correlation: %v", s)
	}
}

func TestCompareSkipsDashes(t *testing.T) {
	paper := []float64{50.93, 51.15, NA, 49.24, 115.87, 67.23}
	measured := []float64{0.795, 0.680, 1.073, 1.176, 2.263, 1.204}
	ag := Compare(paper, measured)
	if ag.N != 5 {
		t.Fatalf("comparable cells = %d, want 5", ag.N)
	}
	if math.IsNaN(ag.Spearman) {
		t.Fatal("spearman undefined despite 5 points")
	}
}

func TestCompareSpreadRatio(t *testing.T) {
	paper := []float64{10, 20} // spread 2
	meas := []float64{5, 20}   // spread 4
	ag := Compare(paper, meas)
	if math.Abs(ag.SpreadRatio-2) > 1e-12 {
		t.Fatalf("spread ratio = %v, want 2", ag.SpreadRatio)
	}
}

func TestSummary(t *testing.T) {
	ags := []Agreement{
		{Spearman: 1, SpreadRatio: 2, N: 5},
		{Spearman: 0.5, SpreadRatio: 0.5, N: 5},
		{Spearman: math.NaN(), SpreadRatio: math.NaN(), N: 2},
	}
	s, g := Summary(ags)
	if math.Abs(s-0.75) > 1e-12 {
		t.Fatalf("mean spearman = %v, want 0.75", s)
	}
	if math.Abs(g-1) > 1e-12 {
		t.Fatalf("geo spread = %v, want 1", g)
	}
}

func TestPaperTable2InternalConsistency(t *testing.T) {
	// The transcription must preserve the paper's headline: membind is
	// the worst option at 8 tasks on Longs for CG.
	cg := Tables()["table2-cg"]
	for _, row := range cg.Rows {
		if row.Tasks != 8 {
			continue
		}
		worst := 0.0
		worstIdx := -1
		for i, v := range row.Cells {
			if !math.IsNaN(v) && v > worst {
				worst, worstIdx = v, i
			}
		}
		if worstIdx != 4 { // Two MPI + Membind
			t.Fatalf("worst option at 8 tasks is column %d, want membind (4)", worstIdx)
		}
	}
}
