package fault

import (
	"math"
	"testing"
)

// FuzzParsePlan asserts the fault-plan parser never panics, and that any
// spec it accepts canonicalizes to a fixed point: Parse(String()) must
// succeed and produce the same String. The canonical form joins store
// keys, so a drifting canonicalization would silently fork cached results.
func FuzzParsePlan(f *testing.F) {
	seeds := []string{
		"noise:core=3,period=1ms,frac=0.1;linkdown:s0-s1,t=2ms..5ms",
		"noise:core=*,period=500us,frac=0.05",
		"linkdown:s1-s0,factor=0.25,t=1ms..2ms,t=4ms..6ms",
		"mcslow:socket=*,factor=0.75,t=1ms..inf",
		"straggler:rank=2,factor=1.5",
		"msgdelay:delay=10us,src=0,dst=*",
		"cellerr:p=0.3,workload=cg",
		"noise:core=1e99,period=-1ms,frac=2",
		";;;:::===",
		"linkdown:s-1-s2",
		"noise:core=3,period=9999999h,frac=0.999",
		"msgdelay:delay=1ns,t=0s..inf,t=..",
	}
	for _, s := range seeds {
		f.Add(s, int64(42))
	}
	f.Fuzz(func(t *testing.T, spec string, seed int64) {
		p, err := Parse(spec, seed)
		if err != nil {
			return
		}
		canon := p.String()
		p2, err := Parse(canon, seed)
		if err != nil {
			t.Fatalf("canonical form rejected: Parse(%q) after Parse(%q): %v", canon, spec, err)
		}
		if got := p2.String(); got != canon {
			t.Fatalf("canonical form unstable: %q -> %q -> %q", spec, canon, got)
		}
		// Every injector must stay total and finite on accepted plans.
		if d := p.ComputeTime(0, 0.001, 0.01); math.IsNaN(d) || d < 0.01 {
			t.Fatalf("ComputeTime produced %g for 0.01s of work", d)
		}
		for _, w := range append(p.LinkWindows(0, 1), p.MCWindows(0)...) {
			if math.IsNaN(w.Start) || math.IsNaN(w.Factor) || w.Factor <= 0 {
				t.Fatalf("invalid capacity window %+v", w)
			}
		}
		if d := p.SendDelay(0, 1, 0.001); math.IsNaN(d) || d < 0 {
			t.Fatalf("SendDelay produced %g", d)
		}
		if f := p.RankFactor(0); math.IsNaN(f) || f < 1 {
			t.Fatalf("RankFactor produced %g", f)
		}
		p.CellError("cell", 0)
	})
}
