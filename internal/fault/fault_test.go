package fault

import (
	"errors"
	"fmt"
	"math"
	"strings"
	"testing"
)

func TestParseErrors(t *testing.T) {
	bad := []string{
		"",
		"   ",
		"nonsense",
		"noise",
		"noise:period=1ms",                    // missing frac
		"noise:frac=0.1",                      // missing period
		"noise:core=3,period=0s,frac=0.1",     // period must be > 0
		"noise:core=3,period=1ms,frac=1",      // frac must be < 1
		"noise:core=3,period=1ms,frac=-0.1",   // frac must be >= 0
		"noise:core=3,period=1ms,frac=NaN",    // non-finite
		"noise:core=3,period=1ms,frac=Inf",    // non-finite
		"noise:core=x,period=1ms,frac=0.1",    // bad selector
		"noise:core=-2,period=1ms,frac=0.1",   // negative selector
		"noise:core=3,period=1ms,frac=0.1,x=1",// unknown field
		"noise:core=3,core=4,period=1ms,frac=0.1", // duplicate field
		"linkdown:t=2ms..5ms",                 // missing target
		"linkdown:s0-s0",                      // endpoints must differ
		"linkdown:s0-s1,t=5ms..2ms",           // end before start
		"linkdown:s0-s1,t=2ms",                // not a window
		"linkdown:s0-s1,factor=0",             // factor must be > 0
		"linkdown:s0-s1,factor=2",             // capacity factor <= 1
		"mcslow:socket=1",                     // missing factor
		"straggler:rank=2",                    // missing factor
		"straggler:factor=2",                  // missing rank
		"straggler:rank=*,factor=2",           // rank must be specific
		"straggler:rank=2,factor=0.5",         // slowdown must be >= 1
		"msgdelay:src=0",                      // missing delay
		"msgdelay:delay=-1ms",                 // negative duration
		"cellerr:workload=cg",                 // missing p
		"cellerr:p=1.5",                       // probability in [0,1]
		"cellerr:p=0.5,workload=",             // empty filter
		"mcslow:socket=1,factor=0.5;bogus:x=1",// second clause bad
	}
	for _, spec := range bad {
		if _, err := Parse(spec, 1); err == nil {
			t.Errorf("Parse(%q) succeeded, want error", spec)
		}
	}
}

func TestParseAndCanonicalRoundTrip(t *testing.T) {
	specs := []string{
		"noise:core=3,period=1ms,frac=0.1",
		"noise:core=*,period=500us,frac=0.05",
		"linkdown:s0-s1,t=2ms..5ms",
		"linkdown:s1-s0,factor=0.25,t=1ms..2ms,t=4ms..6ms",
		"mcslow:socket=1,factor=0.5",
		"mcslow:socket=*,factor=0.75,t=1ms..inf",
		"straggler:rank=2,factor=1.5",
		"msgdelay:delay=10us,src=0",
		"cellerr:p=0.3,workload=cg",
		"noise:core=0,period=1ms,frac=0.1;linkdown:s0-s1,t=2ms..5ms;cellerr:p=0.2",
		" mcslow : socket=1 , factor=0.5 ; ; ",
	}
	for _, spec := range specs {
		p, err := Parse(spec, 42)
		if err != nil {
			t.Fatalf("Parse(%q): %v", spec, err)
		}
		canon := p.String()
		p2, err := Parse(canon, 42)
		if err != nil {
			t.Fatalf("Parse(canonical %q): %v", canon, err)
		}
		if got := p2.String(); got != canon {
			t.Errorf("canonical form not idempotent: %q -> %q -> %q", spec, canon, got)
		}
	}
}

func TestNoiseClosedForm(t *testing.T) {
	// Noise that steals [k·10+0, k·10+2) of every period of 10: starting at
	// t=2 (a burst end), 8 units of work fit exactly before the next burst.
	if got := noiseEnd(2, 8, 10, 2, 0); got != 10 {
		t.Errorf("work fitting the gap: end = %g, want 10", got)
	}
	// 9 units spill past the next burst: 8 before it, burst 10..12, 1 after.
	if got := noiseEnd(2, 9, 10, 2, 0); got != 13 {
		t.Errorf("work spanning one burst: end = %g, want 13", got)
	}
	// Starting inside the burst defers all work to the burst end.
	if got := noiseEnd(1, 4, 10, 2, 0); got != 6 {
		t.Errorf("start inside burst: end = %g, want 6", got)
	}
	// Many periods: 20 units of work at 8 usable per period.
	if got := noiseEnd(2, 20, 10, 2, 0); got != 26 {
		t.Errorf("multi-period: end = %g, want 26", got)
	}
	// Zero burst is the identity.
	if got := noiseEnd(3, 7, 10, 0, 0); got != 10 {
		t.Errorf("no burst: end = %g, want 10", got)
	}
	// Elapsed time never shrinks and is always >= the work.
	for i := 0; i < 1000; i++ {
		t0 := float64(i) * 0.37
		w := 0.1 + float64(i%17)
		end := noiseEnd(t0, w, 1.0, 0.25, 0.4)
		if end < t0+w {
			t.Fatalf("noiseEnd(%g, %g) = %g < t+w", t0, w, end)
		}
		if end2 := noiseEnd(t0, w+0.5, 1.0, 0.25, 0.4); end2 < end {
			t.Fatalf("more work finished earlier: %g < %g", end2, end)
		}
	}
}

func TestComputeTimeSelectivity(t *testing.T) {
	p := MustParse("noise:core=3,period=1ms,frac=0.5", 7)
	if d := p.ComputeTime(0, 0, 0.01); d != 0.01 {
		t.Errorf("unaffected core perturbed: %g", d)
	}
	if d := p.ComputeTime(3, 0, 0.01); d <= 0.01 {
		t.Errorf("noisy core not perturbed: %g", d)
	}
	all := MustParse("noise:core=*,period=1ms,frac=0.5", 7)
	for core := 0; core < 4; core++ {
		if d := all.ComputeTime(core, 0, 0.01); d <= 0.01 {
			t.Errorf("core=* left core %d unperturbed: %g", core, d)
		}
	}
}

func TestDeterminismAcrossInstances(t *testing.T) {
	spec := "noise:core=*,period=1ms,frac=0.2;cellerr:p=0.5;msgdelay:delay=5us"
	a := MustParse(spec, 99)
	b := MustParse(spec, 99)
	for core := 0; core < 8; core++ {
		if x, y := a.ComputeTime(core, 0.123, 0.01), b.ComputeTime(core, 0.123, 0.01); x != y {
			t.Fatalf("ComputeTime diverges on core %d: %g vs %g", core, x, y)
		}
	}
	for attempt := 0; attempt < 20; attempt++ {
		ea := a.CellError("cg/tiger/4", attempt)
		eb := b.CellError("cg/tiger/4", attempt)
		if (ea == nil) != (eb == nil) {
			t.Fatalf("CellError diverges at attempt %d", attempt)
		}
	}
	// A different seed must change the noise phase on some core.
	c := MustParse(spec, 100)
	diff := false
	for core := 0; core < 8; core++ {
		if a.ComputeTime(core, 0.123, 0.01) != c.ComputeTime(core, 0.123, 0.01) {
			diff = true
		}
	}
	if !diff {
		t.Error("seed change left every core's noise phase identical")
	}
}

func TestCellError(t *testing.T) {
	p := MustParse("cellerr:p=1", 1)
	err := p.CellError("any", 0)
	if err == nil || !IsTransient(err) {
		t.Fatalf("p=1 cellerr: got %v, want transient error", err)
	}
	if p := MustParse("cellerr:p=0", 1); p.CellError("any", 0) != nil {
		t.Error("p=0 cellerr fired")
	}
	filt := MustParse("cellerr:p=1,workload=cg", 1)
	if filt.CellError("ep/tiger/4", 0) != nil {
		t.Error("workload filter did not exclude non-matching cell")
	}
	if filt.CellError("cg/tiger/4", 0) == nil {
		t.Error("workload filter excluded matching cell")
	}
	// Attempts see independent draws: with p=0.5 over 64 attempts, both
	// outcomes must occur (probability of violation ~ 2^-63).
	half := MustParse("cellerr:p=0.5", 3)
	var hits, misses int
	for attempt := 0; attempt < 64; attempt++ {
		if half.CellError("cell", attempt) != nil {
			hits++
		} else {
			misses++
		}
	}
	if hits == 0 || misses == 0 {
		t.Errorf("p=0.5 over 64 attempts: %d hits, %d misses", hits, misses)
	}
	if !MustParse("cellerr:p=0.5", 3).InjectsCellErrors() {
		t.Error("InjectsCellErrors false with a cellerr rule")
	}
	if MustParse("noise:core=0,period=1ms,frac=0.1", 3).InjectsCellErrors() {
		t.Error("InjectsCellErrors true without a cellerr rule")
	}
}

func TestTransientWrapping(t *testing.T) {
	base := errors.New("boom")
	tr := &Transient{Err: base}
	if !IsTransient(tr) {
		t.Error("IsTransient(Transient) = false")
	}
	if !IsTransient(fmt.Errorf("cell failed: %w", tr)) {
		t.Error("IsTransient lost through wrapping")
	}
	if !errors.Is(tr, base) {
		t.Error("Transient does not unwrap to its cause")
	}
	if IsTransient(base) {
		t.Error("plain error reported transient")
	}
}

func TestCapacityWindows(t *testing.T) {
	p := MustParse("linkdown:s0-s1,factor=0.25,t=1ms..2ms,t=4ms..6ms;mcslow:socket=1,factor=0.5", 1)
	ws := p.LinkWindows(0, 1)
	if len(ws) != 2 || ws[0].Start != 0.001 || ws[0].End != 0.002 || ws[0].Factor != 0.25 {
		t.Fatalf("LinkWindows(0,1) = %+v", ws)
	}
	if rev := p.LinkWindows(1, 0); len(rev) != 2 {
		t.Errorf("LinkWindows not order-insensitive: %+v", rev)
	}
	if other := p.LinkWindows(1, 2); len(other) != 0 {
		t.Errorf("unrelated link degraded: %+v", other)
	}
	mc := p.MCWindows(1)
	if len(mc) != 1 || !math.IsInf(mc[0].End, 1) || mc[0].Factor != 0.5 {
		t.Fatalf("MCWindows(1) = %+v", mc)
	}
	if other := p.MCWindows(0); len(other) != 0 {
		t.Errorf("unrelated socket degraded: %+v", other)
	}
}

func TestSendDelayAndStraggler(t *testing.T) {
	p := MustParse("msgdelay:delay=10us,src=0,t=1ms..2ms;straggler:rank=2,factor=1.5", 1)
	if d := p.SendDelay(0, 3, 0.0015); d != 10e-6 {
		t.Errorf("in-window delay = %g, want 10us", d)
	}
	if d := p.SendDelay(0, 3, 0.005); d != 0 {
		t.Errorf("out-of-window delay = %g, want 0", d)
	}
	if d := p.SendDelay(1, 3, 0.0015); d != 0 {
		t.Errorf("non-matching src delayed: %g", d)
	}
	if f := p.RankFactor(2); f != 1.5 {
		t.Errorf("RankFactor(2) = %g, want 1.5", f)
	}
	if f := p.RankFactor(0); f != 1 {
		t.Errorf("RankFactor(0) = %g, want 1", f)
	}
}

func TestBackoffJitter(t *testing.T) {
	for attempt := 0; attempt < 10; attempt++ {
		j := BackoffJitter(5, "cell", attempt)
		if j < 0.5 || j >= 1.5 {
			t.Fatalf("jitter out of range: %g", j)
		}
		if j != BackoffJitter(5, "cell", attempt) {
			t.Fatal("jitter not deterministic")
		}
	}
	if BackoffJitter(5, "cell", 0) == BackoffJitter(6, "cell", 0) &&
		BackoffJitter(5, "cell", 1) == BackoffJitter(6, "cell", 1) &&
		BackoffJitter(5, "other", 2) == BackoffJitter(6, "other", 2) {
		t.Error("jitter ignores seed")
	}
}

func TestStringIsStable(t *testing.T) {
	// Two spellings of the same plan canonicalize identically.
	a := MustParse("linkdown:s1-s0, t=2ms..5ms, factor=0.25", 1).String()
	b := MustParse("linkdown:s1-s0,factor=0.25,t=0.002s..0.005s", 1).String()
	if a != b {
		t.Errorf("equivalent plans canonicalize differently:\n  %q\n  %q", a, b)
	}
	if strings.Contains(a, " ") {
		t.Errorf("canonical form contains spaces: %q", a)
	}
}
