package fault

import (
	"fmt"
	"math"
	"sort"
	"strconv"
	"strings"
	"time"
)

// Parse compiles a fault-plan spec into a Plan bound to seed. The grammar
// is semicolon-separated clauses, each `kind:field=value,...`:
//
//	noise:core=3,period=1ms,frac=0.1      periodic OS noise on core 3
//	noise:core=*,period=500us,frac=0.05   ... on every core
//	linkdown:s0-s1,t=2ms..5ms             HT link s0<->s1 degraded in a window
//	linkdown:s0-s1,factor=0.25,t=1ms..2ms,t=4ms..6ms   flapping link
//	mcslow:socket=1,factor=0.5            memory controller at half capacity
//	straggler:rank=2,factor=1.5           rank 2 computes 1.5x slower
//	msgdelay:delay=10us,src=0,dst=*       extra latency on messages from rank 0
//	cellerr:p=0.3,workload=cg             30% transient failure per attempt
//
// Durations accept time.ParseDuration forms ("1ms", "2.5us") or bare
// seconds with an "s" suffix ("0.001s"); windows are `t=START..END`
// half-open intervals. Selectors take an integer or `*` (all). Repeated
// clauses compose. The zero-value spec ("" after trimming) is an error:
// "no faults" is expressed by not installing a plan at all.
func Parse(spec string, seed int64) (*Plan, error) {
	p := &Plan{seed: seed}
	if strings.TrimSpace(spec) == "" {
		return nil, fmt.Errorf("fault: empty plan spec")
	}
	for _, clause := range strings.Split(spec, ";") {
		clause = strings.TrimSpace(clause)
		if clause == "" {
			continue
		}
		kind, rest, ok := strings.Cut(clause, ":")
		kind = strings.TrimSpace(kind)
		if !ok || kind == "" {
			return nil, fmt.Errorf("fault: clause %q: want kind:field=value,...", clause)
		}
		r, err := parseClause(kind, rest)
		if err != nil {
			return nil, fmt.Errorf("fault: clause %q: %w", clause, err)
		}
		p.rules = append(p.rules, r)
	}
	if len(p.rules) == 0 {
		return nil, fmt.Errorf("fault: plan spec %q has no clauses", spec)
	}
	return p, nil
}

// MustParse is Parse for tests and compiled-in plans; it panics on error.
func MustParse(spec string, seed int64) *Plan {
	p, err := Parse(spec, seed)
	if err != nil {
		panic(err)
	}
	return p
}

// parseClause parses the fields of one clause into a rule.
func parseClause(kind, rest string) (rule, error) {
	r := rule{
		kind: kind,
		core: anyID, socket: anyID, rank: anyID, src: anyID, dst: anyID,
		linkA: anyID, linkB: anyID,
	}
	switch kind {
	case kindNoise, kindLinkDown, kindMCSlow, kindStraggler, kindMsgDelay, kindCellErr:
	default:
		return r, fmt.Errorf("unknown fault kind %q", kind)
	}
	seen := map[string]bool{}
	for _, field := range strings.Split(rest, ",") {
		field = strings.TrimSpace(field)
		if field == "" {
			continue
		}
		key, val, ok := strings.Cut(field, "=")
		if !ok {
			// Positional link target: "s0-s1".
			if kind == kindLinkDown {
				a, b, err := parseLink(field)
				if err != nil {
					return r, err
				}
				r.linkA, r.linkB = a, b
				continue
			}
			return r, fmt.Errorf("field %q: want key=value", field)
		}
		key, val = strings.TrimSpace(key), strings.TrimSpace(val)
		if key != "t" && seen[key] {
			return r, fmt.Errorf("duplicate field %q", key)
		}
		seen[key] = true
		var err error
		switch {
		case key == "core" && kind == kindNoise:
			r.core, err = parseSelector(val)
		case key == "period" && kind == kindNoise:
			r.period, err = parseDur(val)
		case key == "frac" && kind == kindNoise:
			r.frac, err = parseFloat(val, 0, 0.999)
		case key == "socket" && kind == kindMCSlow:
			r.socket, err = parseSelector(val)
		case key == "factor" && (kind == kindMCSlow || kind == kindLinkDown):
			r.factor, err = parseFloat(val, 1e-9, 1)
		case key == "factor" && kind == kindStraggler:
			r.factor, err = parseFloat(val, 1, 1e6)
		case key == "rank" && kind == kindStraggler:
			r.rank, err = parseSelector(val)
			if err == nil && r.rank == anyID {
				err = fmt.Errorf("straggler rank must be a specific rank, not *")
			}
		case key == "delay" && kind == kindMsgDelay:
			r.delay, err = parseDur(val)
		case key == "src" && kind == kindMsgDelay:
			r.src, err = parseSelector(val)
		case key == "dst" && kind == kindMsgDelay:
			r.dst, err = parseSelector(val)
		case key == "p" && kind == kindCellErr:
			r.p, err = parseFloat(val, 0, 1)
		case key == "workload" && kind == kindCellErr:
			if val == "" {
				err = fmt.Errorf("empty workload filter")
			}
			r.workload = val
		case key == "t" && (kind == kindLinkDown || kind == kindMCSlow || kind == kindMsgDelay):
			var w window
			w, err = parseWindow(val)
			if err == nil {
				r.windows = append(r.windows, w)
			}
		default:
			return r, fmt.Errorf("field %q does not apply to %s", key, kind)
		}
		if err != nil {
			return r, fmt.Errorf("field %q: %w", field, err)
		}
	}
	// Required fields and defaults per kind.
	switch kind {
	case kindNoise:
		if r.period <= 0 {
			return r, fmt.Errorf("noise needs period > 0")
		}
		if !seen["frac"] {
			return r, fmt.Errorf("noise needs frac")
		}
	case kindLinkDown:
		if r.linkA == anyID {
			return r, fmt.Errorf("linkdown needs a target like s0-s1")
		}
		if !seen["factor"] {
			r.factor = 0.01 // near-dead link, still drainable
		}
	case kindMCSlow:
		if !seen["factor"] {
			return r, fmt.Errorf("mcslow needs factor")
		}
	case kindStraggler:
		if r.rank == anyID {
			return r, fmt.Errorf("straggler needs rank")
		}
		if !seen["factor"] {
			return r, fmt.Errorf("straggler needs factor >= 1")
		}
	case kindMsgDelay:
		if r.delay <= 0 {
			return r, fmt.Errorf("msgdelay needs delay > 0")
		}
	case kindCellErr:
		if !seen["p"] {
			return r, fmt.Errorf("cellerr needs p")
		}
	}
	sort.Slice(r.windows, func(i, j int) bool { return r.windows[i].start < r.windows[j].start })
	return r, nil
}

// parseSelector parses an integer selector or the "*" wildcard.
func parseSelector(s string) (int, error) {
	if s == "*" {
		return anyID, nil
	}
	n, err := strconv.Atoi(s)
	if err != nil || n < 0 || n > 1<<20 {
		return 0, fmt.Errorf("want a small non-negative integer or *")
	}
	return n, nil
}

// parseLink parses a "s0-s1" link target into its socket endpoints.
func parseLink(s string) (int, int, error) {
	as, bs, ok := strings.Cut(s, "-")
	if !ok || !strings.HasPrefix(as, "s") || !strings.HasPrefix(bs, "s") {
		return 0, 0, fmt.Errorf("field %q: want a link target like s0-s1", s)
	}
	a, err1 := strconv.Atoi(as[1:])
	b, err2 := strconv.Atoi(bs[1:])
	if err1 != nil || err2 != nil || a < 0 || b < 0 || a > 1<<20 || b > 1<<20 {
		return 0, 0, fmt.Errorf("field %q: bad socket numbers", s)
	}
	if a == b {
		return 0, 0, fmt.Errorf("field %q: link endpoints must differ", s)
	}
	return a, b, nil
}

// parseFloat parses a finite float in [lo, hi].
func parseFloat(s string, lo, hi float64) (float64, error) {
	v, err := strconv.ParseFloat(s, 64)
	if err != nil || math.IsNaN(v) || math.IsInf(v, 0) {
		return 0, fmt.Errorf("want a finite number")
	}
	if v < lo || v > hi {
		return 0, fmt.Errorf("want a value in [%g, %g]", lo, hi)
	}
	return v, nil
}

// parseDur parses a duration into seconds: time.ParseDuration forms, or
// bare seconds with an "s" suffix (the canonical String output, which may
// carry an exponent ParseDuration rejects).
func parseDur(s string) (float64, error) {
	if d, err := time.ParseDuration(s); err == nil {
		sec := d.Seconds()
		if sec < 0 {
			return 0, fmt.Errorf("want a non-negative duration")
		}
		return sec, nil
	}
	if num, okSuffix := strings.CutSuffix(s, "s"); okSuffix {
		v, err := strconv.ParseFloat(num, 64)
		if err == nil && !math.IsNaN(v) && !math.IsInf(v, 0) && v >= 0 {
			return v, nil
		}
	}
	return 0, fmt.Errorf("want a duration like 2ms or 0.002s")
}

// parseWindow parses a "START..END" time window (END may be "inf").
func parseWindow(s string) (window, error) {
	ss, es, ok := strings.Cut(s, "..")
	if !ok {
		return window{}, fmt.Errorf("want a window like 2ms..5ms")
	}
	start, err := parseDur(ss)
	if err != nil {
		return window{}, err
	}
	var end float64
	if es == "inf" {
		end = math.Inf(1)
	} else {
		end, err = parseDur(es)
		if err != nil {
			return window{}, err
		}
	}
	if end <= start {
		return window{}, fmt.Errorf("window end must be after start")
	}
	return window{start, end}, nil
}

// fmtDur renders seconds in the canonical duration form parseDur accepts.
func fmtDur(sec float64) string {
	return strconv.FormatFloat(sec, 'g', -1, 64) + "s"
}

func fmtSelector(n int) string {
	if n == anyID {
		return "*"
	}
	return strconv.Itoa(n)
}

// String renders the plan in canonical spec form: Parse(p.String(), seed)
// yields a plan with the same String. The canonical form (not the raw
// user input) joins the store key, so equivalent spellings of a plan
// share cached results.
func (p *Plan) String() string {
	var b strings.Builder
	for i, r := range p.rules {
		if i > 0 {
			b.WriteByte(';')
		}
		b.WriteString(r.kind)
		b.WriteByte(':')
		switch r.kind {
		case kindNoise:
			fmt.Fprintf(&b, "core=%s,period=%s,frac=%s",
				fmtSelector(r.core), fmtDur(r.period), strconv.FormatFloat(r.frac, 'g', -1, 64))
		case kindLinkDown:
			fmt.Fprintf(&b, "s%d-s%d,factor=%s", r.linkA, r.linkB,
				strconv.FormatFloat(r.factor, 'g', -1, 64))
		case kindMCSlow:
			fmt.Fprintf(&b, "socket=%s,factor=%s",
				fmtSelector(r.socket), strconv.FormatFloat(r.factor, 'g', -1, 64))
		case kindStraggler:
			fmt.Fprintf(&b, "rank=%d,factor=%s", r.rank,
				strconv.FormatFloat(r.factor, 'g', -1, 64))
		case kindMsgDelay:
			fmt.Fprintf(&b, "delay=%s,src=%s,dst=%s",
				fmtDur(r.delay), fmtSelector(r.src), fmtSelector(r.dst))
		case kindCellErr:
			fmt.Fprintf(&b, "p=%s", strconv.FormatFloat(r.p, 'g', -1, 64))
			if r.workload != "" {
				fmt.Fprintf(&b, ",workload=%s", r.workload)
			}
		}
		for _, w := range r.windows {
			if math.IsInf(w.end, 1) {
				fmt.Fprintf(&b, ",t=%s..inf", fmtDur(w.start))
			} else {
				fmt.Fprintf(&b, ",t=%s..%s", fmtDur(w.start), fmtDur(w.end))
			}
		}
	}
	return b.String()
}
