// Package fault is the deterministic, seed-driven perturbation subsystem:
// it turns a parseable fault-plan spec (see Parse) into injectors that the
// machine, MPI, and experiment layers consult while a simulation runs.
// The paper's measurements were taken on real Opteron systems where OS
// noise, contended HyperTransport links, saturated memory controllers, and
// straggler ranks are part of the signal; a Plan reintroduces those
// perturbations into the otherwise idealized simulator — reproducibly.
//
// Two properties are contractual:
//
//   - With no plan installed, every consumer keeps a nil hook and the
//     simulation is byte-identical to the fault-free model.
//   - Given the same (plan, seed), every injected decision is identical:
//     all randomness is stateless, derived by hashing the seed with the
//     identity of the decision (core, cell, attempt, ...), never from
//     shared RNG state, so results do not depend on scheduling order or
//     worker count.
package fault

import (
	"errors"
	"fmt"
	"math"
	"strings"

	"multicore/internal/machine"
)

// Transient marks an error as retryable: the failure depends on the
// attempt (an injected fault, a flaky resource), not deterministically on
// the cell, so a bounded retry may succeed. The experiment runner retries
// only transient errors; deterministic failures (panics, deadlocks) are
// reported immediately.
type Transient struct{ Err error }

func (t *Transient) Error() string { return t.Err.Error() }

// Unwrap exposes the underlying error to errors.Is/As.
func (t *Transient) Unwrap() error { return t.Err }

// IsTransient reports whether err is (or wraps) a transient failure.
func IsTransient(err error) bool {
	var tr *Transient
	return errors.As(err, &tr)
}

// window is one [start, end) time interval; end may be +Inf ("rest of the
// run").
type window struct{ start, end float64 }

func (w window) contains(t float64) bool { return t >= w.start && t < w.end }

// rule kinds.
const (
	kindNoise     = "noise"
	kindLinkDown  = "linkdown"
	kindMCSlow    = "mcslow"
	kindStraggler = "straggler"
	kindMsgDelay  = "msgdelay"
	kindCellErr   = "cellerr"
)

// any is the wildcard value of an integer selector ("*").
const anyID = -1

// rule is one parsed fault clause.
type rule struct {
	kind string

	core, socket int // noise / mcslow selectors (anyID = all)
	rank         int // straggler selector
	src, dst     int // msgdelay selectors (anyID = all)
	linkA, linkB int // linkdown endpoints (sockets)

	period, frac float64 // noise: burst period and fraction of it lost
	factor       float64 // capacity multiplier (linkdown/mcslow) or slowdown (straggler)
	delay        float64 // msgdelay: injected latency, seconds
	p            float64 // cellerr: per-attempt failure probability

	windows  []window // time windows (empty = whole run where applicable)
	workload string   // cellerr: substring filter on the cell key
}

// Plan is a parsed fault plan bound to a seed. A nil *Plan injects
// nothing; consumers must keep their hooks nil rather than installing a
// nil Plan (a nil Plan inside a non-nil interface still dispatches).
type Plan struct {
	seed  int64
	rules []rule
}

// Seed returns the seed the plan was bound to.
func (p *Plan) Seed() int64 { return p.seed }

// splitmix64 is the stateless mixing function behind every seeded draw.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// unit hashes the plan seed with the decision identifiers into [0, 1).
func (p *Plan) unit(ids ...uint64) float64 {
	h := splitmix64(uint64(p.seed) ^ 0xd6e8feb86659fd93)
	for _, id := range ids {
		h = splitmix64(h ^ id)
	}
	return float64(h>>11) / (1 << 53)
}

// hashString folds a string into one identifier (FNV-1a).
func hashString(s string) uint64 {
	h := uint64(14695981039346656037)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 1099511628211
	}
	return h
}

// BackoffJitter returns a deterministic multiplier in [0.5, 1.5) for retry
// backoff of the given cell and attempt: jittered, but reproducible given
// the seed, so two runs of the same sweep retry on the same schedule.
func BackoffJitter(seed int64, cell string, attempt int) float64 {
	h := splitmix64(uint64(seed) ^ 0xa24baed4963ee407)
	h = splitmix64(h ^ hashString(cell))
	h = splitmix64(h ^ uint64(attempt))
	return 0.5 + float64(h>>11)/(1<<53)
}

// ComputeTime implements machine.Perturb: it maps an on-core execution
// duration through the periodic OS-noise model. Each matching noise rule
// steals frac of every period in one burst at a seed-derived, per-core
// phase; work only progresses outside bursts, so a phase that spans a
// burst is inflated by exactly the burst time it straddles.
func (p *Plan) ComputeTime(core int, now, d float64) float64 {
	if d <= 0 {
		return d
	}
	for i, r := range p.rules {
		if r.kind != kindNoise || r.frac <= 0 {
			continue
		}
		if r.core != anyID && r.core != core {
			continue
		}
		phase := p.unit(uint64(i), 0x6e6f697365, uint64(core)) * r.period
		// Noise only inflates: the clamp absorbs the ulp of rounding in
		// (now + d) - now when no burst intersects the phase.
		if nd := noiseEnd(now, d, r.period, r.frac*r.period, phase) - now; nd > d {
			d = nd
		}
	}
	return d
}

// noiseEnd returns the wall time at which work of duration w finishes when
// started at t on a core that loses the burst [kP+phase, kP+phase+B) of
// every period P. Closed form: no iteration over periods, so arbitrarily
// fine noise stays O(1) per compute phase.
func noiseEnd(t, w, period, burst, phase float64) float64 {
	if w <= 0 || burst <= 0 {
		return t + w
	}
	avail := period - burst
	// Position within the period, measured from the burst start.
	pos := math.Mod(t-phase, period)
	if pos < 0 {
		pos += period
	}
	if pos < burst {
		// Starting inside a burst: no work until it ends.
		t += burst - pos
		pos = burst
	}
	if left := period - pos; w <= left {
		return t + w // finishes before the next burst
	} else {
		w -= left
		t += left
	}
	// Now at a burst start. Whole periods first, then the remainder.
	full := math.Floor(w / avail)
	t += full * period
	w -= full * avail
	if w <= 0 {
		return t
	}
	return t + burst + w
}

// capWindows collects the capacity windows of the rules selected by pick.
func (p *Plan) capWindows(pick func(r rule) bool) []machine.CapWindow {
	var out []machine.CapWindow
	for _, r := range p.rules {
		if !pick(r) {
			continue
		}
		ws := r.windows
		if len(ws) == 0 {
			ws = []window{{0, math.Inf(1)}}
		}
		for _, w := range ws {
			out = append(out, machine.CapWindow{Start: w.start, End: w.end, Factor: r.factor})
		}
	}
	return out
}

// MCWindows implements machine.Perturb: the degradation windows of the
// socket's memory controller.
func (p *Plan) MCWindows(socket int) []machine.CapWindow {
	return p.capWindows(func(r rule) bool {
		return r.kind == kindMCSlow && (r.socket == anyID || r.socket == socket)
	})
}

// LinkWindows implements machine.Perturb: the degradation windows of the
// link between sockets a and b (order-insensitive).
func (p *Plan) LinkWindows(a, b int) []machine.CapWindow {
	return p.capWindows(func(r rule) bool {
		return r.kind == kindLinkDown &&
			((r.linkA == a && r.linkB == b) || (r.linkA == b && r.linkB == a))
	})
}

// SendDelay implements mpi.Perturb: the extra latency injected into a
// src->dst message issued at simulated time now (the sum of every
// matching msgdelay rule whose window contains now).
func (p *Plan) SendDelay(src, dst int, now float64) float64 {
	total := 0.0
	for _, r := range p.rules {
		if r.kind != kindMsgDelay {
			continue
		}
		if r.src != anyID && r.src != src {
			continue
		}
		if r.dst != anyID && r.dst != dst {
			continue
		}
		if len(r.windows) > 0 {
			hit := false
			for _, w := range r.windows {
				if w.contains(now) {
					hit = true
					break
				}
			}
			if !hit {
				continue
			}
		}
		total += r.delay
	}
	return total
}

// RankFactor implements mpi.Perturb: the compute slowdown of a straggler
// rank (the product of every matching straggler rule), 1 when unaffected.
func (p *Plan) RankFactor(rank int) float64 {
	f := 1.0
	for _, r := range p.rules {
		if r.kind == kindStraggler && r.rank == rank {
			f *= r.factor
		}
	}
	return f
}

// CellError draws the injected outcome of one attempt at one experiment
// cell: a *Transient error with probability p per matching cellerr rule,
// nil otherwise. The draw depends only on (seed, cell, rule, attempt), so
// retries of the same cell see fresh, but reproducible, draws.
func (p *Plan) CellError(cell string, attempt int) error {
	for i, r := range p.rules {
		if r.kind != kindCellErr {
			continue
		}
		if r.workload != "" && !strings.Contains(cell, r.workload) {
			continue
		}
		if p.unit(uint64(i), 0x63656c6c, hashString(cell), uint64(attempt)) < r.p {
			return &Transient{Err: fmt.Errorf(
				"fault: injected transient failure in cell %s (attempt %d)", cell, attempt)}
		}
	}
	return nil
}

// InjectsCellErrors reports whether the plan contains any cellerr rule —
// i.e. whether sweeps should expect transient cell failures worth
// retrying.
func (p *Plan) InjectsCellErrors() bool {
	for _, r := range p.rules {
		if r.kind == kindCellErr {
			return true
		}
	}
	return false
}
