package analytic

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"multicore/internal/affinity"
	"multicore/internal/workload"
)

// Observation is one measured (simulated) cell used to calibrate the
// estimator.
type Observation struct {
	Workload workload.Spec
	System   string
	Ranks    int
	Scheme   affinity.Scheme
	// Seconds is the simulated makespan.
	Seconds float64
}

// ClassReport summarizes calibration quality for one workload
// family/system class.
type ClassReport struct {
	Class     string
	N         int     // observations fitted
	Factor    float64 // fitted multiplicative correction
	MedianErr float64 // median |est*factor - sim| / sim after correction
	MaxErr    float64
}

// Calibration holds fitted per-class correction factors and the
// residual-error report of the fit.
type Calibration struct {
	Factors map[string]float64
	Classes []ClassReport
	// MedianErr is the overall median relative error across every
	// observation after correction; Skipped counts observations the
	// estimator could not price (no profile, infeasible, zero time).
	MedianErr float64
	Skipped   int
}

// Calibrate fits one multiplicative correction factor per workload
// class (family/system) as the geometric mean of simulated/estimated
// ratios, then reports the residual relative error of the corrected
// estimates. The fit is independent of observation order.
func Calibrate(e *Estimator, obs []Observation) (Calibration, error) {
	type cell struct {
		class string
		ratio float64 // simulated / raw estimate
	}
	var cells []cell
	cal := Calibration{Factors: make(map[string]float64)}
	for _, o := range obs {
		if !(o.Seconds > 0) {
			cal.Skipped++
			continue
		}
		est, err := e.Cell(o.Workload, o.System, o.Ranks, o.Scheme)
		if err != nil || !(est.Seconds > 0) {
			cal.Skipped++
			continue
		}
		// Factors are fitted against raw estimates, so recalibrating an
		// already-calibrated estimator reproduces the same factors.
		raw := est.Seconds
		class := classOf(e, o)
		e.mu.Lock()
		if f, ok := e.factors[class]; ok && f > 0 {
			raw = est.Seconds / f
		}
		e.mu.Unlock()
		cells = append(cells, cell{class: class, ratio: o.Seconds / raw})
	}
	if len(cells) == 0 {
		return cal, fmt.Errorf("analytic: no usable observations to calibrate from (%d skipped)", cal.Skipped)
	}

	byClass := make(map[string][]float64)
	for _, c := range cells {
		byClass[c.class] = append(byClass[c.class], c.ratio)
	}
	var all []float64
	classes := make([]string, 0, len(byClass))
	for class := range byClass {
		classes = append(classes, class)
	}
	sort.Strings(classes)
	for _, class := range classes {
		ratios := byClass[class]
		var logSum float64
		for _, r := range ratios {
			logSum += math.Log(r)
		}
		factor := math.Exp(logSum / float64(len(ratios)))
		cal.Factors[class] = factor
		errs := make([]float64, len(ratios))
		for i, r := range ratios {
			// Corrected estimate = raw*factor; relative error vs sim is
			// |raw*factor - sim|/sim = |factor/r - 1|.
			errs[i] = math.Abs(factor/r - 1)
		}
		all = append(all, errs...)
		cal.Classes = append(cal.Classes, ClassReport{
			Class:     class,
			N:         len(ratios),
			Factor:    factor,
			MedianErr: median(errs),
			MaxErr:    maxOf(errs),
		})
	}
	cal.MedianErr = median(all)
	return cal, nil
}

func classOf(e *Estimator, o Observation) string {
	// The profile family is the spec name for every current family; go
	// through ProfileFor's cache anyway so class naming has one source.
	e.mu.Lock()
	pk := profileKey{name: o.Workload.Name, arg: o.Workload.Arg, class: o.Workload.Class,
		steps: o.Workload.Steps, n: o.Workload.N, ranks: o.Ranks}
	pe, ok := e.profiles[pk]
	e.mu.Unlock()
	if ok && pe.err == nil {
		return Class(pe.prof.Family, o.System)
	}
	return Class(o.Workload.Name, o.System)
}

func median(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	mid := len(s) / 2
	if len(s)%2 == 1 {
		return s[mid]
	}
	return (s[mid-1] + s[mid]) / 2
}

func maxOf(xs []float64) float64 {
	m := 0.0
	for _, x := range xs {
		m = math.Max(m, x)
	}
	return m
}

// String renders the residual-error report, one class per line plus an
// overall summary. Deterministic: classes are sorted.
func (c Calibration) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "calibration: %d classes, overall median error %.1f%%", len(c.Classes), 100*c.MedianErr)
	if c.Skipped > 0 {
		fmt.Fprintf(&b, " (%d observations skipped)", c.Skipped)
	}
	b.WriteByte('\n')
	for _, cr := range c.Classes {
		fmt.Fprintf(&b, "  %-16s n=%-3d factor=%.3f median=%.1f%% max=%.1f%%\n",
			cr.Class, cr.N, cr.Factor, 100*cr.MedianErr, 100*cr.MaxErr)
	}
	return b.String()
}
