// Package analytic is the screening tier of the two-tier executor: a
// closed-form roofline + MPI cost model that prices a sweep cell in
// microseconds where the fluid simulation costs O(events). It consumes
// the same inputs as the simulator — machine.Spec rates, topology hop
// counts, affinity placements, and the per-workload analytic profiles
// from internal/workload — and returns estimated seconds plus a
// model-derived uncertainty band.
//
// The estimator is deliberately simple where the simulator is exact:
// per-rank compute time comes from an efficiency-weighted flop count
// against PeakFlops; memory time from a roofline over the per-socket
// memory-controller load implied by the placement scheme (with the
// simulator's single-stream prefetch ceiling and contention inflation
// reproduced in closed form); MPI time from per-pattern message counts
// priced with the MPICH2 software overheads and hop-dependent copy
// ceilings. Constant error per (workload family, system) is absorbed by
// calibration factors fitted against simulation results (calibrate.go);
// what the closed forms must get right is the shape across ranks and
// placement schemes.
//
// Everything is pure float math evaluated in a fixed order from cached
// per-(system, ranks, scheme) layout aggregates, so estimates are
// deterministic and byte-identical regardless of worker count, and a
// cached cell prices with zero heap allocations.
package analytic

import (
	"fmt"
	"math"
	"sync"

	"multicore/internal/affinity"
	"multicore/internal/machine"
	"multicore/internal/mpi"
	"multicore/internal/topology"
	"multicore/internal/workload"
)

// Estimate is the analytic prediction for one cell.
type Estimate struct {
	// Seconds is the estimated makespan (calibration factor applied).
	Seconds float64
	// Compute, Memory, and MPI are the per-rank component times before
	// calibration. Within each kernel phase compute overlaps memory
	// (max semantics, like the simulator's CPU.Overlap); Seconds is
	// factor * (sum over phases of max(compute, memory) + MPI).
	Compute float64
	Memory  float64
	MPI     float64
	// Uncertainty is the relative model uncertainty (0.15 = ±15%): the
	// workload family's base uncertainty widened by how far the cell
	// leans on the least-trusted model terms (remote placement,
	// communication share).
	Uncertainty float64
}

type layoutKey struct {
	system string
	ranks  int
	scheme affinity.Scheme
}

// layoutInfo caches the placement aggregates of one (system, ranks,
// scheme) triple. All fields are derived once from affinity.Layout plus
// the machine spec and shared by every workload priced on that layout.
type layoutInfo struct {
	err error // infeasibility, reported for every cell on this layout

	// maxSockLoad is the hottest memory controller's load in units of
	// one rank's traffic (2.0 = two ranks' worth of bytes hit one MC).
	maxSockLoad float64
	// inflate is the closed-form contention inflation of stream volume
	// at the hottest controller: 1 + penalty (one rank alone) or
	// 1 + 3*penalty (the simulator's per-flow cap once several flows
	// share the controller).
	inflate float64
	// avgRT is the placement-weighted mean DRAM round trip (seconds); it
	// sets the prefetch-window stream ceiling, mirroring the simulator's
	// bytes-weighted batch window.
	avgRT float64
	// randPerTouch is the mean per-rank latency cost of one independent
	// line touch: because the simulator runs one flow per memory node
	// concurrently, a rank touching several nodes pays the slowest
	// per-node share, avg over ranks of max over nodes of frac*RT.
	randPerTouch float64
	// avgMemHops is the placement-weighted mean HT hops between a rank
	// and its memory pages (uncertainty term).
	avgMemHops float64
	// avgPairHops is the mean hop count over ordered rank pairs (used to
	// price tree/pairwise collectives); ringHops over ring neighbours.
	avgPairHops float64
	ringHops    float64

	// Per-core-class roofline inputs: the slowest placed core bounds an
	// SPMD phase, because phases synchronize. On homogeneous systems
	// every accessor returns the flat spec field, so these are the exact
	// values the pre-heterogeneous estimator used.
	minPeak    float64 // peak flop rate of the slowest placed core
	minIssueBW float64 // issue bandwidth of the narrowest placed core
	minCache   float64 // effective cache capacity of the smallest placed core
	minL2BW    float64 // cache-hit service rate of the slowest placed core
}

type profileKey struct {
	name, arg, class string
	steps, n         int
	ranks            int
}

type profileEntry struct {
	prof workload.Profile
	err  error
}

type machineInfo struct {
	spec *machine.Spec
	peak float64
}

// Estimator prices sweep cells analytically. The zero value is not
// usable; construct with New. Safe for concurrent use.
type Estimator struct {
	impl *mpi.Impl

	mu       sync.Mutex
	machines map[string]*machineInfo
	layouts  map[layoutKey]*layoutInfo
	profiles map[profileKey]*profileEntry
	factors  map[string]float64 // calibration class -> correction factor
}

// New returns an estimator pricing MPI traffic with the MPICH2 profile,
// matching the experiment pipeline's transport.
func New() *Estimator {
	return &Estimator{
		impl:     mpi.MPICH2(),
		machines: make(map[string]*machineInfo),
		layouts:  make(map[layoutKey]*layoutInfo),
		profiles: make(map[profileKey]*profileEntry),
	}
}

// SetCalibration installs per-class correction factors (see Calibrate).
// A nil map clears calibration.
func (e *Estimator) SetCalibration(factors map[string]float64) {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.factors = factors
}

// Class returns the calibration class of a cell: workload family and
// system joined with "/". Correction factors are fitted per class.
func Class(family, system string) string { return family + "/" + system }

// Cell prices one sweep cell. It returns *affinity.ErrInfeasible when
// the scheme cannot place the ranks (matching the simulator's NA cells)
// and an error for unknown systems or workload families without an
// analytic profile (callers promote those to full simulation).
func (e *Estimator) Cell(spec workload.Spec, system string, ranks int, scheme affinity.Scheme) (Estimate, error) {
	e.mu.Lock()
	m, ok := e.machines[system]
	if !ok {
		if s := machine.Lookup(system); s != nil {
			m = &machineInfo{spec: s, peak: s.PeakFlops()}
		}
		e.machines[system] = m
	}
	if m == nil {
		e.mu.Unlock()
		return Estimate{}, fmt.Errorf("analytic: unknown system %q", system)
	}

	lk := layoutKey{system: system, ranks: ranks, scheme: scheme}
	li, ok := e.layouts[lk]
	if !ok {
		li = newLayoutInfo(m, ranks, scheme)
		e.layouts[lk] = li
	}
	if li.err != nil {
		e.mu.Unlock()
		return Estimate{}, li.err
	}

	pk := profileKey{name: spec.Name, arg: spec.Arg, class: spec.Class, steps: spec.Steps, n: spec.N, ranks: ranks}
	pe, ok := e.profiles[pk]
	if !ok {
		prof, err := workload.ProfileFor(spec, ranks)
		pe = &profileEntry{prof: prof, err: err}
		e.profiles[pk] = pe
	}
	factor := 1.0
	if pe.err == nil {
		if f, ok := e.factors[Class(pe.prof.Family, system)]; ok {
			factor = f
		}
	}
	e.mu.Unlock()

	if pe.err != nil {
		return Estimate{}, pe.err
	}
	return e.price(m, li, &pe.prof, ranks, factor), nil
}

// newLayoutInfo computes the placement aggregates for one layout.
// Feasible rank counts are bounded by the core count (at most 16 on the
// paper systems), so the O(ranks^2) pair scan is trivial; infeasible
// layouts — the bulk of a million-cell grid — cost one Layout call.
func newLayoutInfo(m *machineInfo, ranks int, scheme affinity.Scheme) *layoutInfo {
	s := m.spec
	topo := s.Topo
	binds, err := affinity.Layout(scheme, topo, ranks)
	if err != nil {
		return &layoutInfo{err: err}
	}
	n := topo.NumSockets
	sockLoad := make([]float64, n)
	sockRanks := make([]int, n) // ranks with traffic at each node
	socks := make([]topology.SocketID, len(binds))
	var sumMemHops, sumRT, sumMaxShare float64
	li := &layoutInfo{}
	for i, b := range binds {
		home := topo.SocketOf(b.Core)
		socks[i] = home
		if peak := s.PeakFlopsOn(b.Core); i == 0 || peak < li.minPeak {
			li.minPeak = peak
		}
		if bw := s.IssueBWOn(b.Core); i == 0 || bw < li.minIssueBW {
			li.minIssueBW = bw
		}
		if cb := s.CacheBytesOn(b.Core); i == 0 || cb < li.minCache {
			li.minCache = cb
		}
		if l2 := s.L2BandwidthOn(b.Core); i == 0 || l2 < li.minL2BW {
			li.minL2BW = l2
		}
		dist := b.Placement(topo, n)
		maxShare := 0.0
		for node, frac := range dist {
			if frac == 0 {
				continue
			}
			sockLoad[node] += frac
			sockRanks[node]++
			hops := float64(topo.Hops(home, topology.SocketID(node)))
			rt := s.NodeRoundTrip(home, topology.SocketID(node))
			sumMemHops += frac * hops
			sumRT += frac * rt
			// One flow per memory node runs concurrently; the rank waits
			// for the slowest node's share of its touches.
			maxShare = math.Max(maxShare, frac*rt)
		}
		sumMaxShare += maxShare
	}
	li.avgMemHops = sumMemHops / float64(ranks)
	li.avgRT = sumRT / float64(ranks)
	li.randPerTouch = sumMaxShare / float64(ranks)
	hot := 0
	for node, l := range sockLoad {
		if l > sockLoad[hot] {
			hot = node
		}
		li.maxSockLoad = math.Max(li.maxSockLoad, l)
	}
	// Stream flows inflate their volume by the simulator's per-flow
	// contention term 1 + penalty*min(activeFlows, 3): a lone rank sees
	// only itself; once several ranks' flows meet at the controller the
	// term saturates at the cap.
	li.inflate = 1 + s.ContentionPenalty
	if sockRanks[hot] > 1 {
		li.inflate = 1 + 3*s.ContentionPenalty
	}
	if ranks > 1 {
		var pairSum, ringSum float64
		for i := range socks {
			for j := range socks {
				if i != j {
					pairSum += float64(topo.Hops(socks[i], socks[j]))
				}
			}
			ringSum += float64(topo.Hops(socks[i], socks[(i+1)%ranks]))
		}
		li.avgPairHops = pairSum / float64(ranks*(ranks-1))
		li.ringHops = ringSum / float64(ranks)
	}
	return li
}

// price evaluates the roofline + MPI closed forms. Pure float math in a
// fixed order: no allocation, no map iteration, no time source.
func (e *Estimator) price(m *machineInfo, li *layoutInfo, pr *workload.Profile, ranks int, factor float64) Estimate {
	s := m.spec
	mlp := math.Max(1, s.MLPRandom)

	// The single-stream rate is the lesser of the issue port and the
	// prefetch window implied by the placement's mean round trip.
	singleRate := li.minIssueBW
	if s.PrefetchDepth > 0 && li.avgRT > 0 {
		singleRate = math.Min(singleRate, s.PrefetchDepth*s.LineBytes/li.avgRT)
	}

	// Each phase overlaps compute with its memory flows, like the
	// simulator's CPU.Overlap: DRAM streams and latency-bound misses
	// proceed concurrently with the compute sleep, while L2 hit service
	// is serial with compute. Phases sum.
	var tComp, tMem, tKernel float64
	for i := range pr.Phases {
		ph := &pr.Phases[i]

		// Stream traffic: a cache-resident hot set serves everything
		// past one cold fill from L2.
		dram, hitBytes := ph.StreamBytes, 0.0
		if ph.StreamWS > 0 && ph.StreamWS <= li.minCache {
			dram = math.Min(ph.StreamWS, ph.StreamBytes)
			hitBytes = ph.StreamBytes - dram
		}
		rate := singleRate
		if ph.StreamCeiling > 0 {
			rate = math.Min(rate, ph.StreamCeiling)
		}
		tStream := dram * li.inflate * math.Max(li.maxSockLoad/s.MCBandwidth, 1/rate)

		// Latency-bound touches: the cache-resident fraction of the
		// touched region hits in L2 at 8 bytes a touch; misses pay the
		// concurrent per-node round trip.
		missFrac := 1.0
		if ph.TouchWS > 0 {
			missFrac = 1 - math.Min(1, li.minCache/ph.TouchWS)
		}
		tTouch := (ph.RandomTouches/mlp + ph.ChaseTouches) * missFrac * li.randPerTouch
		hitTime := hitBytes/li.minL2BW +
			(ph.RandomTouches+ph.ChaseTouches)*(1-missFrac)*8/li.minL2BW

		c := ph.EffFlops/li.minPeak + hitTime
		mem := math.Max(tStream, tTouch)
		tComp += c
		tMem += mem
		tKernel += math.Max(c, mem)
	}

	// Latency-probe sweep (lmbench): per size, a warm-up pass misses on
	// every touch and the measured pass misses on the non-resident
	// fraction; hits are pipelined 8-byte L2 reads.
	if len(pr.ChaseSweep) > 0 {
		for _, size := range pr.ChaseSweep {
			missFrac := 1 - math.Min(1, li.minCache/size)
			warm := pr.ChaseSweepTouches * li.randPerTouch
			measured := math.Max(
				pr.ChaseSweepTouches*missFrac*li.randPerTouch,
				pr.ChaseSweepTouches*(1-missFrac)*8/li.minL2BW)
			tMem += warm + measured
			tKernel += warm + measured
		}
	}

	// MPI time from the pattern mix.
	var tMPI float64
	if ranks > 1 {
		for i := range pr.Exchanges {
			tMPI += e.exchangeTime(m, li, &pr.Exchanges[i], ranks)
		}
	}

	t := tKernel + tMPI

	// Uncertainty: family base, widened by remote placement (the least
	// calibrated memory term) and by the communication share.
	unc := pr.Uncertainty + 0.05*li.avgMemHops
	if t > 0 {
		unc += 0.15 * (tMPI / t)
	}
	return Estimate{
		Seconds:     factor * t,
		Compute:     tComp,
		Memory:      tMem,
		MPI:         tMPI,
		Uncertainty: math.Min(unc, 0.95),
	}
}

// msgTime prices one point-to-point message of the transport: software
// overhead, hop latency, segment locking, and the copy through the
// shared buffer (eager double copy below the threshold, rendezvous
// handshake above), with the hop-dependent copy ceiling applied. On
// chiplet sockets the copy crosses the on-package fabric, adding its
// latency and bounding the copy rate; monolithic machines skip both
// terms unchanged.
func (e *Estimator) msgTime(m *machineInfo, li *layoutInfo, bytes, hops float64) float64 {
	s, im := m.spec, e.impl
	t := im.Overhead + im.Sub.LockLatency + im.Sub.WakeLatency + hops*s.HopLatency
	if s.Topo.NumDies() > 1 {
		t += s.FabricLatency
	}
	if bytes <= 0 {
		return t
	}
	if bytes > im.SegmentBytes {
		segs := math.Ceil(bytes / im.SegmentBytes)
		t += (segs - 1) * (im.Sub.LockLatency + im.Sub.WakeLatency) / 2
	}
	copyBW := math.Min(li.minIssueBW, s.MCBandwidth) * im.CopyEfficiency
	if s.Topo.NumDies() > 1 {
		copyBW = math.Min(copyBW, s.FabricBandwidth*im.CopyEfficiency)
	}
	if hops > 0 {
		copyBW = math.Min(copyBW, s.CopyCeiling(int(math.Ceil(hops)))*im.CopyEfficiency)
	}
	if bytes > im.EagerThreshold {
		t += im.RendezvousOverhead + bytes/copyBW
	} else {
		t += 2 * bytes / copyBW
	}
	return t
}

// Collective algorithm switch points, matching internal/mpi/collalg.go.
const (
	bcastLargeThreshold     = 128 * 1024
	allreduceLargeThreshold = 256 * 1024
)

func (e *Estimator) exchangeTime(m *machineInfo, li *layoutInfo, ex *workload.Exchange, ranks int) float64 {
	n := float64(ranks)
	rounds := math.Ceil(math.Log2(n))
	reduceRate := 0.5 * li.minPeak // combine loops run at half peak
	var per float64
	switch ex.Pattern {
	case workload.CommBarrier:
		per = rounds * e.msgTime(m, li, 8, li.avgPairHops)
	case workload.CommP2P:
		per = e.msgTime(m, li, ex.Bytes, li.avgPairHops)
	case workload.CommRing:
		per = e.msgTime(m, li, ex.Bytes, li.ringHops)
	case workload.CommAlltoall:
		per = (n - 1) * e.msgTime(m, li, ex.Bytes, li.avgPairHops)
	case workload.CommAllgather:
		per = (n - 1) * e.msgTime(m, li, ex.Bytes, li.ringHops)
	case workload.CommAllreduce:
		if ex.Bytes > allreduceLargeThreshold {
			piece := ex.Bytes / n
			per = 2*(n-1)*e.msgTime(m, li, piece, li.ringHops) + (n-1)*(piece/8)/reduceRate
		} else {
			per = rounds * (e.msgTime(m, li, ex.Bytes, li.avgPairHops) + (ex.Bytes/8)/reduceRate)
		}
	case workload.CommBcast:
		if ex.Bytes > bcastLargeThreshold {
			per = 2 * (n - 1) * e.msgTime(m, li, ex.Bytes/n, li.ringHops)
		} else {
			per = rounds * e.msgTime(m, li, ex.Bytes, li.avgPairHops)
		}
	}
	return ex.Count * per
}
