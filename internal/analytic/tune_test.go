package analytic_test

import (
	"context"
	"errors"
	"fmt"
	"os"
	"runtime"
	"sync"
	"testing"

	"multicore/internal/affinity"
	"multicore/internal/analytic"
	"multicore/internal/experiments"
	"multicore/internal/workload"
)

type obsCell struct {
	spec   workload.Spec
	system string
	ranks  int
	scheme affinity.Scheme
	secs   float64
	err    error
}

// simulate runs every feasible cell of the cross product through the
// simulator on a worker pool and returns the observations.
func simulate(t *testing.T, workloads []string, systems []string, ranks []int, schemes []affinity.Scheme) []obsCell {
	t.Helper()
	var cells []obsCell
	for _, w := range workloads {
		spec, err := workload.ParseSpec(w)
		if err != nil {
			t.Fatalf("ParseSpec(%q): %v", w, err)
		}
		for _, sys := range systems {
			for _, r := range ranks {
				for _, sch := range schemes {
					cells = append(cells, obsCell{spec: spec, system: sys, ranks: r, scheme: sch})
				}
			}
		}
	}
	r := experiments.NewRunner(context.Background(), experiments.Options{Parallelism: runtime.GOMAXPROCS(0)})
	var wg sync.WaitGroup
	sem := make(chan struct{}, runtime.GOMAXPROCS(0))
	for i := range cells {
		wg.Add(1)
		sem <- struct{}{}
		go func(c *obsCell) {
			defer wg.Done()
			defer func() { <-sem }()
			c.secs, c.err = r.RunWorkloadCell(c.spec, c.system, c.ranks, c.scheme, experiments.Quick)
		}(&cells[i])
	}
	wg.Wait()
	return cells
}

// TestTuneDump prints per-cell sim vs raw-estimate ratios. Run with
//
//	MCBENCH_TUNE=1 go test ./internal/analytic -run TestTuneDump -v
//
// It is a tuning aid, not a regression test: the dump is the raw
// material for adjusting the closed forms in price().
func TestTuneDump(t *testing.T) {
	if os.Getenv("MCBENCH_TUNE") == "" {
		t.Skip("tuning aid; set MCBENCH_TUNE=1 to enable")
	}
	workloads := []string{"stream", "daxpy", "dgemm", "fft", "ra", "ptrans", "hpl", "cg", "ft", "ep", "mg", "lmbench", "amber:JAC", "lammps:lj", "pop"}
	systems := []string{"tiger", "dmz", "longs"}
	ranksList := []int{1, 2, 4}
	schemes := []affinity.Scheme{affinity.Default, affinity.OneMPILocalAlloc, affinity.OneMPIMembind, affinity.Interleave}
	cells := simulate(t, workloads, systems, ranksList, schemes)
	e := analytic.New()
	for _, c := range cells {
		var inf *affinity.ErrInfeasible
		if errors.As(c.err, &inf) {
			continue
		}
		if c.err != nil {
			fmt.Printf("%-12s %-6s r%-2d %-24s SIM-ERR %v\n", c.spec.String(), c.system, c.ranks, c.scheme, c.err)
			continue
		}
		est, err := e.Cell(c.spec, c.system, c.ranks, c.scheme)
		if err != nil {
			fmt.Printf("%-12s %-6s r%-2d %-24s EST-ERR %v\n", c.spec.String(), c.system, c.ranks, c.scheme, err)
			continue
		}
		fmt.Printf("%-12s %-6s r%-2d %-24s sim=%-10.4f est=%-10.4f ratio=%.3f (c=%.3g m=%.3g mpi=%.3g)\n",
			c.spec.String(), c.system, c.ranks, c.scheme, c.secs, est.Seconds, c.secs/est.Seconds,
			est.Compute, est.Memory, est.MPI)
	}
}
