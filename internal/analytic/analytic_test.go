package analytic_test

import (
	"errors"
	"math"
	"sync"
	"testing"

	"multicore/internal/affinity"
	"multicore/internal/analytic"
	"multicore/internal/workload"
)

func mustSpec(t testing.TB, s string) workload.Spec {
	t.Helper()
	spec, err := workload.ParseSpec(s)
	if err != nil {
		t.Fatalf("ParseSpec(%q): %v", s, err)
	}
	return spec
}

// TestCellDeterministic: the estimator is pure float math over cached
// aggregates, so equal cells must price bit-identically — across calls,
// across estimator instances, and under concurrent use (the coordinator
// screens sweeps from many HTTP handlers at once).
func TestCellDeterministic(t *testing.T) {
	workloads := []string{"stream", "cg", "ra", "lmbench", "pop"}
	systems := []string{"tiger", "dmz", "longs"}
	schemes := []affinity.Scheme{affinity.Default, affinity.OneMPILocalAlloc, affinity.OneMPIMembind, affinity.Interleave}

	type cell struct {
		w      string
		sys    string
		ranks  int
		scheme affinity.Scheme
	}
	var cells []cell
	for _, w := range workloads {
		for _, sys := range systems {
			for _, r := range []int{1, 2, 4} {
				for _, sch := range schemes {
					cells = append(cells, cell{w, sys, r, sch})
				}
			}
		}
	}

	// Serial reference on a fresh estimator.
	ref := analytic.New()
	want := make([]analytic.Estimate, len(cells))
	wantErr := make([]error, len(cells))
	for i, c := range cells {
		want[i], wantErr[i] = ref.Cell(mustSpec(t, c.w), c.sys, c.ranks, c.scheme)
	}

	// Concurrent pricing on a second estimator, every cell hammered from
	// several goroutines, in reverse order for cache-population variety.
	e := analytic.New()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for k := range cells {
				i := k
				if g%2 == 1 {
					i = len(cells) - 1 - k
				}
				c := cells[i]
				est, err := e.Cell(mustSpec(t, c.w), c.sys, c.ranks, c.scheme)
				if (err == nil) != (wantErr[i] == nil) {
					t.Errorf("cell %v: err %v, want %v", c, err, wantErr[i])
					return
				}
				if err != nil {
					continue
				}
				if math.Float64bits(est.Seconds) != math.Float64bits(want[i].Seconds) ||
					math.Float64bits(est.Uncertainty) != math.Float64bits(want[i].Uncertainty) {
					t.Errorf("cell %v: concurrent estimate %v differs from serial %v", c, est, want[i])
					return
				}
			}
		}(g)
	}
	wg.Wait()
}

func TestCellInfeasible(t *testing.T) {
	e := analytic.New()
	// 64 ranks over-subscribes every paper system, so the placement is
	// infeasible under any scheme — the estimator must surface the same
	// typed error the simulator's NA cells come from.
	_, err := e.Cell(mustSpec(t, "stream"), "tiger", 64, affinity.OneMPIMembind)
	var inf *affinity.ErrInfeasible
	if err == nil || !errors.As(err, &inf) {
		t.Fatalf("err = %v, want *affinity.ErrInfeasible", err)
	}
}

func TestCellUnknownSystem(t *testing.T) {
	e := analytic.New()
	if _, err := e.Cell(mustSpec(t, "stream"), "cray", 1, affinity.Default); err == nil {
		t.Fatal("unknown system priced without error")
	}
}

func TestCellUnknownFamily(t *testing.T) {
	e := analytic.New()
	if _, err := e.Cell(workload.Spec{Name: "nosuchfamily"}, "tiger", 1, affinity.Default); err == nil {
		t.Fatal("unknown family priced without error")
	}
}

func TestUncertaintyBounds(t *testing.T) {
	e := analytic.New()
	for _, w := range []string{"stream", "ra", "pop", "lmbench"} {
		for _, r := range []int{1, 4} {
			est, err := e.Cell(mustSpec(t, w), "longs", r, affinity.Default)
			if err != nil {
				t.Fatalf("%s r%d: %v", w, r, err)
			}
			if !(est.Seconds > 0) {
				t.Errorf("%s r%d: non-positive estimate %v", w, r, est.Seconds)
			}
			if est.Uncertainty <= 0 || est.Uncertainty >= 1 {
				t.Errorf("%s r%d: uncertainty %v outside (0,1)", w, r, est.Uncertainty)
			}
		}
	}
}

// TestCalibrateSynthetic checks the fit machinery itself: observations
// manufactured at exactly 1.25x the raw estimates must recover factor
// 1.25 with zero residual, and recalibrating the calibrated estimator
// must be idempotent.
func TestCalibrateSynthetic(t *testing.T) {
	e := analytic.New()
	spec := mustSpec(t, "stream")
	var obs []analytic.Observation
	for _, ranks := range []int{1, 2} {
		for _, sch := range []affinity.Scheme{affinity.Default, affinity.Interleave} {
			est, err := e.Cell(spec, "tiger", ranks, sch)
			if err != nil {
				t.Fatal(err)
			}
			obs = append(obs, analytic.Observation{
				Workload: spec, System: "tiger", Ranks: ranks, Scheme: sch,
				Seconds: 1.25 * est.Seconds,
			})
		}
	}
	cal, err := analytic.Calibrate(e, obs)
	if err != nil {
		t.Fatal(err)
	}
	class := analytic.Class("stream", "tiger")
	if f := cal.Factors[class]; math.Abs(f-1.25) > 1e-12 {
		t.Errorf("factor = %v, want 1.25", f)
	}
	if cal.MedianErr > 1e-12 {
		t.Errorf("residual median error = %v, want ~0", cal.MedianErr)
	}

	// Idempotence: calibrate, install, recalibrate — same factors.
	e.SetCalibration(cal.Factors)
	cal2, err := analytic.Calibrate(e, obs)
	if err != nil {
		t.Fatal(err)
	}
	if f := cal2.Factors[class]; math.Abs(f-1.25) > 1e-12 {
		t.Errorf("recalibrated factor = %v, want 1.25 (fit must divide out installed factors)", f)
	}

	// And the calibrated estimate now matches the observations.
	est, err := e.Cell(spec, "tiger", 1, affinity.Default)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(est.Seconds-obs[0].Seconds) > 1e-9*obs[0].Seconds {
		t.Errorf("calibrated estimate %v != observation %v", est.Seconds, obs[0].Seconds)
	}
}

// TestCalibratedAccuracy is the model's acceptance gate: fit per-class
// factors against real quick-scale simulations of the full workload
// suite and require the overall median relative error of the corrected
// estimates to be within 15%.
func TestCalibratedAccuracy(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the full quick-scale simulation grid; skipped with -short")
	}
	workloads := []string{"stream", "daxpy", "dgemm", "fft", "ra", "ptrans", "hpl", "cg", "ft", "ep", "mg", "lmbench", "amber:JAC", "lammps:lj", "pop"}
	systems := []string{"tiger", "dmz", "longs"}
	ranksList := []int{1, 2, 4}
	schemes := []affinity.Scheme{affinity.Default, affinity.OneMPILocalAlloc, affinity.OneMPIMembind, affinity.Interleave}
	cells := simulate(t, workloads, systems, ranksList, schemes)

	var obs []analytic.Observation
	for _, c := range cells {
		if c.err != nil {
			continue // infeasible placements and error cells don't calibrate
		}
		obs = append(obs, analytic.Observation{
			Workload: c.spec, System: c.system, Ranks: c.ranks, Scheme: c.scheme, Seconds: c.secs,
		})
	}
	if len(obs) < 100 {
		t.Fatalf("only %d feasible observations; simulation grid broke", len(obs))
	}
	e := analytic.New()
	cal, err := analytic.Calibrate(e, obs)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("\n%s", cal.String())
	if cal.Skipped > 0 {
		t.Errorf("calibration skipped %d observations; every suite family should be estimable", cal.Skipped)
	}
	if cal.MedianErr > 0.15 {
		t.Errorf("calibrated median relative error %.1f%% exceeds the 15%% acceptance bound", 100*cal.MedianErr)
	}
	// No class may be wildly unmodeled even if the overall median is
	// fine: per-class medians stay under 25%.
	for _, cr := range cal.Classes {
		if cr.MedianErr > 0.25 {
			t.Errorf("class %s median error %.1f%% exceeds 25%%", cr.Class, 100*cr.MedianErr)
		}
	}
}

// BenchmarkCellCached prices one cached cell: the steady-state cost that
// dominates screening a million-cell grid. The package contract is zero
// heap allocations on this path.
func BenchmarkCellCached(b *testing.B) {
	e := analytic.New()
	spec := mustSpec(b, "cg")
	if _, err := e.Cell(spec, "longs", 4, affinity.Interleave); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := e.Cell(spec, "longs", 4, affinity.Interleave); err != nil {
			b.Fatal(err)
		}
	}
}
