// Package npb provides NAS Parallel Benchmark drivers for the two kernels
// the paper studies (Section 3.5): CG and FT, with the standard problem
// classes. The computational structure runs on the simulator via
// internal/kernels/cg and internal/kernels/fft.
package npb

import (
	"fmt"
	"math"

	"multicore/internal/kernels/cg"
	"multicore/internal/kernels/fft"
	"multicore/internal/mem"
	"multicore/internal/mpi"
)

// Class identifies a NAS problem class.
type Class string

// The NAS problem classes used here. Class B is what the paper ran;
// smaller classes keep tests fast with the same structure.
const (
	ClassS Class = "S"
	ClassW Class = "W"
	ClassA Class = "A"
	ClassB Class = "B"
)

// CGParams are the published NAS CG class parameters.
type CGParams struct {
	N         int
	NNZPerRow int
	Iters     int
}

// cgClasses follows the NAS 3.x specification.
var cgClasses = map[Class]CGParams{
	ClassS: {N: 1400, NNZPerRow: 7, Iters: 15},
	ClassW: {N: 7000, NNZPerRow: 8, Iters: 15},
	ClassA: {N: 14000, NNZPerRow: 11, Iters: 15},
	ClassB: {N: 75000, NNZPerRow: 13, Iters: 75},
}

// FTParams are the published NAS FT class grids.
type FTParams struct {
	NX, NY, NZ int
	Iters      int
}

var ftClasses = map[Class]FTParams{
	ClassS: {NX: 64, NY: 64, NZ: 64, Iters: 6},
	ClassW: {NX: 128, NY: 128, NZ: 32, Iters: 6},
	ClassA: {NX: 256, NY: 256, NZ: 128, Iters: 6},
	ClassB: {NX: 512, NY: 256, NZ: 256, Iters: 20},
}

// CGClass returns the CG parameters for a class.
func CGClass(c Class) (CGParams, error) {
	p, ok := cgClasses[c]
	if !ok {
		return CGParams{}, fmt.Errorf("npb: unknown CG class %q", c)
	}
	return p, nil
}

// FTClass returns the FT parameters for a class.
func FTClass(c Class) (FTParams, error) {
	p, ok := ftClasses[c]
	if !ok {
		return FTParams{}, fmt.Errorf("npb: unknown FT class %q", c)
	}
	return p, nil
}

// Report keys.
const (
	MetricCGTime = cg.MetricTime
	MetricFTTime = "npb.ft.time"
)

// RunCG executes the NAS CG benchmark body for the given class.
func RunCG(c Class) (func(*mpi.Rank), error) {
	p, err := CGClass(c)
	if err != nil {
		return nil, err
	}
	return func(r *mpi.Rank) {
		// The generator's `nonzer` parameter yields roughly
		// nonzer*(nonzer+1) stored nonzeros per row after the outer-
		// product symmetrization (13.7M total for class B).
		cg.Run(r, cg.Params{
			N:          p.N,
			NNZPerRow:  p.NNZPerRow * (p.NNZPerRow + 1),
			OuterIters: p.Iters,
			InnerIters: 25,
		})
	}, nil
}

// RunFT executes the NAS FT benchmark body for the given class: a 3-D FFT
// with 1-D slab decomposition, the alltoall transpose, and the evolve/
// checksum steps of the real benchmark.
func RunFT(c Class) (func(*mpi.Rank), error) { return RunFTHybrid(c, 1) }

// RunFTHybrid is RunFT with an OpenMP-style parallel region of `threads`
// cores per rank for the local compute phases (the hybrid programming
// model the paper's Section 3.4 proposes): communication stays at the MPI
// rank granularity while local FFTs fan out across the socket.
func RunFTHybrid(c Class, threads int) (func(*mpi.Rank), error) {
	p, err := FTClass(c)
	if err != nil {
		return nil, err
	}
	return func(r *mpi.Rank) {
		runFT(r, p, threads)
	}, nil
}

func runFT(r *mpi.Rank, p FTParams, threads int) {
	size := float64(r.Size())
	total := float64(p.NX) * float64(p.NY) * float64(p.NZ)
	nloc := total / size
	bytes := 16 * nloc

	grid := r.Alloc("ft.grid", bytes)
	scratch := r.Alloc("ft.scratch", bytes)

	// Untimed setup: compute indexmap + initial conditions (one sweep).
	r.Overlap(4*nloc, 0.3,
		mem.Access{Region: grid, Pattern: mem.StreamWrite, Bytes: bytes})

	r.Barrier()
	start := r.Now()
	// The total 3-D FFT costs 5*N*log2(N) flops; attribute per dimension
	// by its log share, as the slab algorithm does.
	logTotal := math.Log2(total)
	fracXY := (math.Log2(float64(p.NX)) + math.Log2(float64(p.NY))) / logTotal
	fracZ := math.Log2(float64(p.NZ)) / logTotal
	allFlops := fft.Flops(total) / size

	for it := 0; it < p.Iters; it++ {
		// evolve: pointwise exponential multiply (stream).
		r.HybridOverlap(threads, 6*nloc, 0.25,
			mem.Access{Region: grid, Pattern: mem.Stream, Bytes: bytes},
			mem.Access{Region: scratch, Pattern: mem.StreamWrite, Bytes: bytes})
		// FFTs in the two local dimensions.
		r.HybridOverlap(threads, allFlops*fracXY, 0.22,
			mem.Access{Region: scratch, Pattern: mem.Stream, Bytes: 2 * bytes},
			mem.Access{Region: scratch, Pattern: mem.StreamWrite, Bytes: 2 * bytes})
		// Global transpose to gather the third dimension.
		if r.Size() > 1 {
			r.Alltoall(bytes / size)
		}
		// FFT in the remaining dimension.
		r.HybridOverlap(threads, allFlops*fracZ, 0.22,
			mem.Access{Region: scratch, Pattern: mem.Stream, Bytes: bytes},
			mem.Access{Region: scratch, Pattern: mem.StreamWrite, Bytes: bytes})
		// Checksum: strided gather of 1024 points + tiny allreduce.
		r.Access(mem.Access{Region: scratch, Pattern: mem.Random, Touches: 1024 / size})
		r.Allreduce(16)
	}
	r.Report(MetricFTTime, r.Now()-start)
}
