package npb

import (
	"fmt"
	"math"

	"multicore/internal/mem"
	"multicore/internal/mpi"
)

// The paper runs "a subset of the NAS Parallel Benchmarks" and reports CG
// and FT; EP and MG complete the set of kernels commonly used alongside
// them and exercise two more corners of the design space: EP is pure
// compute (the scaling upper bound), MG is a memory-intensive multigrid
// V-cycle with nearest-neighbor communication at every level.

// EPParams are the NAS EP class parameters (2^M random pairs).
type EPParams struct {
	M int // log2 of the number of Gaussian pairs
}

var epClasses = map[Class]EPParams{
	ClassS: {M: 24},
	ClassW: {M: 25},
	ClassA: {M: 28},
	ClassB: {M: 30},
}

// MGParams are the NAS MG class grids.
type MGParams struct {
	N     int // cubic grid edge
	Iters int
}

var mgClasses = map[Class]MGParams{
	ClassS: {N: 32, Iters: 4},
	ClassW: {N: 128, Iters: 4},
	ClassA: {N: 256, Iters: 4},
	ClassB: {N: 256, Iters: 20},
}

// EPClass returns EP parameters for a class.
func EPClass(c Class) (EPParams, error) {
	p, ok := epClasses[c]
	if !ok {
		return EPParams{}, fmt.Errorf("npb: unknown EP class %q", c)
	}
	return p, nil
}

// MGClass returns MG parameters for a class.
func MGClass(c Class) (MGParams, error) {
	p, ok := mgClasses[c]
	if !ok {
		return MGParams{}, fmt.Errorf("npb: unknown MG class %q", c)
	}
	return p, nil
}

// Report keys.
const (
	MetricEPTime = "npb.ep.time"
	MetricMGTime = "npb.mg.time"
)

// RunEP returns the NAS EP body: generate 2^M Gaussian pairs with the
// NAS polynomial RNG and tally them into ten annuli — embarrassingly
// parallel, one tiny allreduce at the end.
func RunEP(c Class) (func(*mpi.Rank), error) {
	p, err := EPClass(c)
	if err != nil {
		return nil, err
	}
	return func(r *mpi.Rank) {
		pairs := math.Pow(2, float64(p.M)) / float64(r.Size())
		// ~90 flops per accepted pair (two uniforms, the acceptance
		// test, log/sqrt of the Box-Muller transform).
		r.Barrier()
		start := r.Now()
		r.Compute(90*pairs, 0.4)
		if r.Size() > 1 {
			r.Allreduce(10 * 8) // the annulus counts
		}
		r.Report(MetricEPTime, r.Now()-start)
	}, nil
}

// RunMG returns the NAS MG body: V-cycles over a hierarchy of grids, each
// level a 27-point stencil sweep with a halo exchange; coarse levels are
// latency-dominated, fine levels bandwidth-dominated.
func RunMG(c Class) (func(*mpi.Rank), error) {
	p, err := MGClass(c)
	if err != nil {
		return nil, err
	}
	return func(r *mpi.Rank) {
		runMG(r, p)
	}, nil
}

func runMG(r *mpi.Rank, p MGParams) {
	size := float64(r.Size())
	// Grid hierarchy down to 4^3.
	levels := 0
	for n := p.N; n >= 4; n /= 2 {
		levels++
	}
	// One region per level (residual + solution arrays: 2 fields).
	regions := make([]*mem.Region, levels)
	pts := make([]float64, levels)
	n := float64(p.N)
	for l := 0; l < levels; l++ {
		pts[l] = n * n * n / size
		regions[l] = r.Alloc(fmt.Sprintf("mg.l%d", l), 2*8*pts[l])
		n /= 2
	}

	r.Barrier()
	start := r.Now()
	for it := 0; it < p.Iters; it++ {
		// Down-sweep: restrict to coarser grids.
		for l := 0; l < levels; l++ {
			mgLevel(r, regions[l], pts[l])
		}
		// Up-sweep: prolongate and smooth.
		for l := levels - 1; l >= 0; l-- {
			mgLevel(r, regions[l], pts[l])
		}
	}
	r.Report(MetricMGTime, r.Now()-start)
}

// mgLevel is one smoothing sweep at one level: a 27-point stencil over
// the level's points plus a face halo exchange.
func mgLevel(r *mpi.Rank, region *mem.Region, pts float64) {
	if r.Size() > 1 {
		// Face exchange with two neighbors; coarse grids send tiny
		// messages, so this is where latency bites.
		face := math.Pow(pts, 2.0/3.0) * 8
		n := r.Size()
		up := (r.ID() + 1) % n
		down := (r.ID() - 1 + n) % n
		r.Sendrecv(up, face, down)
	}
	r.Overlap(30*pts, 0.3,
		mem.Access{Region: region, Pattern: mem.Stream, Bytes: region.Bytes},
		mem.Access{Region: region, Pattern: mem.StreamWrite, Bytes: region.Bytes / 2},
	)
}
