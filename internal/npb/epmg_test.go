package npb

import (
	"testing"

	"multicore/internal/affinity"
	"multicore/internal/core"
	"multicore/internal/mpi"
)

func epmgTime(t *testing.T, kernel string, system string, ranks int, scheme affinity.Scheme) float64 {
	t.Helper()
	var (
		body func(*mpi.Rank)
		key  string
		err  error
	)
	switch kernel {
	case "ep":
		body, err = RunEP(ClassW)
		key = MetricEPTime
	case "mg":
		body, err = RunMG(ClassW)
		key = MetricMGTime
	default:
		t.Fatalf("unknown kernel %q", kernel)
	}
	if err != nil {
		t.Fatal(err)
	}
	res, err := core.Run(core.Job{System: system, Ranks: ranks, Scheme: scheme, Impl: mpi.MPICH2()}, body)
	if err != nil {
		t.Fatal(err)
	}
	return res.Max(key)
}

func TestEPClassTable(t *testing.T) {
	for _, c := range []Class{ClassS, ClassW, ClassA, ClassB} {
		if _, err := EPClass(c); err != nil {
			t.Fatal(err)
		}
		if _, err := MGClass(c); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := EPClass("Z"); err == nil {
		t.Fatal("expected error")
	}
	if _, err := MGClass("Z"); err == nil {
		t.Fatal("expected error")
	}
}

func TestEPScalesNearPerfectly(t *testing.T) {
	t1 := epmgTime(t, "ep", "longs", 1, affinity.Default)
	t16 := epmgTime(t, "ep", "longs", 16, affinity.Default)
	sp := t1 / t16
	// EP is the upper bound: essentially perfect scaling even with both
	// cores per socket busy.
	if sp < 14.5 || sp > 16.5 {
		t.Fatalf("EP 16-core speedup = %.2f, want ~16", sp)
	}
}

func TestMGScalesWorseThanEP(t *testing.T) {
	ep := epmgTime(t, "ep", "longs", 1, affinity.Default) /
		epmgTime(t, "ep", "longs", 8, affinity.Default)
	mg := epmgTime(t, "mg", "longs", 1, affinity.Default) /
		epmgTime(t, "mg", "longs", 8, affinity.Default)
	if mg >= ep {
		t.Fatalf("MG speedup %.2f should trail EP %.2f", mg, ep)
	}
}

func TestMGPlacementSensitive(t *testing.T) {
	// MG streams the fine grids every sweep: membind must hurt.
	local := epmgTime(t, "mg", "longs", 8, affinity.OneMPILocalAlloc)
	membind := epmgTime(t, "mg", "longs", 8, affinity.OneMPIMembind)
	if membind <= local {
		t.Fatalf("membind MG %.4f should be slower than localalloc %.4f", membind, local)
	}
}

func TestEPPlacementInsensitive(t *testing.T) {
	// EP touches almost no memory: placement must not matter.
	local := epmgTime(t, "ep", "longs", 8, affinity.OneMPILocalAlloc)
	membind := epmgTime(t, "ep", "longs", 8, affinity.OneMPIMembind)
	if membind > 1.05*local {
		t.Fatalf("EP should be placement-insensitive: localalloc %.4f membind %.4f", local, membind)
	}
}

func TestFTHybridBeatsPureMPIOnLongs(t *testing.T) {
	timeFor := func(ranks, threads int, scheme affinity.Scheme) float64 {
		body, err := RunFTHybrid(ClassA, threads)
		if err != nil {
			t.Fatal(err)
		}
		res, err := core.Run(core.Job{System: "longs", Ranks: ranks, Scheme: scheme,
			Impl: mpi.MPICH2()}, body)
		if err != nil {
			t.Fatal(err)
		}
		return res.Max(MetricFTTime)
	}
	pure16 := timeFor(16, 1, affinity.Default)
	hybrid := timeFor(8, 2, affinity.OneMPILocalAlloc)
	if hybrid >= pure16 {
		t.Fatalf("hybrid 8x2 (%v) should beat pure MPI 16 (%v) on FT", hybrid, pure16)
	}
}
