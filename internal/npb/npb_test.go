package npb

import (
	"testing"

	"multicore/internal/affinity"
	"multicore/internal/core"
	"multicore/internal/mpi"
)

func TestClassLookups(t *testing.T) {
	for _, c := range []Class{ClassS, ClassW, ClassA, ClassB} {
		if _, err := CGClass(c); err != nil {
			t.Fatal(err)
		}
		if _, err := FTClass(c); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := CGClass("Z"); err == nil {
		t.Fatal("expected error for unknown class")
	}
	if _, err := FTClass("Z"); err == nil {
		t.Fatal("expected error for unknown class")
	}
}

func TestClassBMatchesPaper(t *testing.T) {
	cgB, _ := CGClass(ClassB)
	if cgB.N != 75000 || cgB.Iters != 75 {
		t.Fatalf("CG class B = %+v", cgB)
	}
	ftB, _ := FTClass(ClassB)
	if ftB.NX != 512 || ftB.NY != 256 || ftB.NZ != 256 {
		t.Fatalf("FT class B = %+v", ftB)
	}
}

// classForCG keeps placement-sensitive CG tests at a size whose matrix
// slices exceed cache (class A), like the paper's class B runs.
const classForCG = ClassA

func runNPB(t *testing.T, kernel string, system string, ranks int, scheme affinity.Scheme) float64 {
	t.Helper()
	var (
		body    func(*mpi.Rank)
		timeKey string
		err     error
	)
	switch kernel {
	case "cg":
		timeKey = MetricCGTime
		body, err = RunCG(classForCG)
	case "ft":
		timeKey = MetricFTTime
		body, err = RunFT(ClassW)
	default:
		t.Fatalf("unknown kernel %q", kernel)
	}
	if err != nil {
		t.Fatal(err)
	}
	res, err := core.Run(core.Job{System: system, Ranks: ranks, Scheme: scheme}, body)
	if err != nil {
		t.Fatal(err)
	}
	return res.Max(timeKey)
}

func TestCGSpeedupShapeDMZ(t *testing.T) {
	t1 := runNPB(t, "cg", "dmz", 1, affinity.Default)
	t2 := runNPB(t, "cg", "dmz", 2, affinity.Default)
	t4 := runNPB(t, "cg", "dmz", 4, affinity.Default)
	s2, s4 := t1/t2, t1/t4
	// Paper Table 4: CG on DMZ: 2.14x at 2 cores (1.07 eff), 3.44x at 4
	// (0.86 eff). Accept the shape: near-linear at 2, degraded at 4.
	if s2 < 1.6 || s2 > 2.4 {
		t.Fatalf("CG 2-core speedup = %.2f", s2)
	}
	if s4 < 2.2 || s4 >= 4.3 {
		t.Fatalf("CG 4-core speedup = %.2f", s4)
	}
	if s4/2 >= s2 {
		t.Fatalf("efficiency should fall from 2 to 4 cores: s2=%.2f s4=%.2f", s2, s4)
	}
}

func TestFTSpeedupShapeLongs(t *testing.T) {
	t1 := runNPB(t, "ft", "longs", 1, affinity.Default)
	t8 := runNPB(t, "ft", "longs", 8, affinity.Default)
	t16 := runNPB(t, "ft", "longs", 16, affinity.Default)
	s8, s16 := t1/t8, t1/t16
	// Paper Table 4: FT on Longs: 0.62 efficiency at 8 (5.0x), 0.42 at
	// 16 (6.7x). Accept the saturating shape.
	if s8 < 3 || s8 > 7.5 {
		t.Fatalf("FT 8-core speedup = %.2f", s8)
	}
	if s16 > 2*s8 {
		t.Fatalf("FT should saturate: s8=%.2f s16=%.2f", s8, s16)
	}
}

func TestMembindWorstOnLongsCG(t *testing.T) {
	def := runNPB(t, "cg", "longs", 8, affinity.Default)
	local := runNPB(t, "cg", "longs", 8, affinity.OneMPILocalAlloc)
	membind := runNPB(t, "cg", "longs", 8, affinity.OneMPIMembind)
	// Paper Table 2, 8 tasks: default 50.9, localalloc 51.2, membind
	// 109.1 — membind is ~2x worse.
	if membind < 1.5*local {
		t.Fatalf("membind %.3f should be ~2x localalloc %.3f", membind, local)
	}
	if def > 1.3*local {
		t.Fatalf("default %.3f should be close to localalloc %.3f", def, local)
	}
}

func TestInterleaveWorseThanLocalOnLongsCG(t *testing.T) {
	local := runNPB(t, "cg", "longs", 8, affinity.OneMPILocalAlloc)
	inter := runNPB(t, "cg", "longs", 8, affinity.Interleave)
	// Paper Table 2, 8 tasks: localalloc 51.2 vs interleave 67.2 (~1.3x).
	if inter < 1.05*local {
		t.Fatalf("interleave %.3f should be slower than localalloc %.3f", inter, local)
	}
}
