package experiments

import (
	"multicore/internal/report"
	"strconv"
	"strings"
	"testing"
)

func TestRegistryComplete(t *testing.T) {
	want := []string{
		"fig2", "fig3", "fig4", "fig5", "fig6", "fig7", "fig8", "fig9",
		"fig10", "fig11", "fig12", "fig13", "fig14", "fig15", "fig16", "fig17",
		"table2", "table3", "table4", "table7", "table8", "table9",
		"table10", "table11", "table12", "table13", "table14",
		"ablate-coherence", "ablate-topology", "ablate-sublayer", "ext-hybrid",
		"ext-latency", "ext-openmp", "ext-npb", "ext-cluster", "ext-scale",
		"ablate-collectives", "ablate-migration", "numa-stream",
	}
	for _, id := range want {
		if _, ok := ByID(id); !ok {
			t.Fatalf("experiment %q not registered", id)
		}
	}
	if len(All()) != len(want) {
		t.Fatalf("registry has %d experiments, want %d", len(All()), len(want))
	}
}

func TestAblationShapes(t *testing.T) {
	tabs := mustRun(t, "ablate-coherence")
	// Removing the derating must raise single-core STREAM substantially.
	if gain := cell(t, tabs[0].Cell(0, 3)); gain < 1.3 {
		t.Fatalf("coherence ablation STREAM gain = %v, want > 1.3", gain)
	}
	tabs = mustRun(t, "ext-hybrid")
	// Latency must grow monotonically across the three channel classes.
	l0 := cell(t, tabs[0].Cell(0, 1))
	l1 := cell(t, tabs[0].Cell(1, 1))
	l2 := cell(t, tabs[0].Cell(2, 1))
	if !(l0 < l1 && l1 < l2) {
		t.Fatalf("channel latencies not ordered: %v %v %v", l0, l1, l2)
	}
	// Intra-socket bandwidth must beat the 4-hop path.
	b0 := cell(t, tabs[0].Cell(0, 2))
	b2 := cell(t, tabs[0].Cell(2, 2))
	if b0 <= b2 {
		t.Fatalf("intra-socket bandwidth %v should beat cross-ladder %v", b0, b2)
	}
}

func TestByIDUnknown(t *testing.T) {
	if _, ok := ByID("fig99"); ok {
		t.Fatal("fig99 should not exist")
	}
}

// cell parses a numeric table cell.
func cell(t *testing.T, s string) float64 {
	t.Helper()
	v, err := strconv.ParseFloat(s, 64)
	if err != nil {
		t.Fatalf("cell %q is not numeric: %v", s, err)
	}
	return v
}

func TestFig2Shape(t *testing.T) {
	tabs := mustRun(t, "fig2")
	tab := tabs[0]
	// Longs column: 16 rows; bandwidth at 8 active cores (all first
	// cores) must far exceed 1 core.
	var bw1, bw8 float64
	for i := 0; i < tab.NumRows(); i++ {
		switch tab.Cell(i, 0) {
		case "1":
			bw1 = cell(t, tab.Cell(i, 3))
		case "8":
			bw8 = cell(t, tab.Cell(i, 3))
		}
	}
	if bw8 < 6*bw1 {
		t.Fatalf("Longs bandwidth should scale across first cores: 1=%v 8=%v", bw1, bw8)
	}
	// Tiger has only 2 cores: row 3 shows a dash.
	found := false
	for i := 0; i < tab.NumRows(); i++ {
		if tab.Cell(i, 0) == "3" && tab.Cell(i, 1) == "-" {
			found = true
		}
	}
	if !found {
		t.Fatal("Tiger should be dashed beyond 2 cores")
	}
}

func TestFig10Shape(t *testing.T) {
	tabs := mustRun(t, "fig10")
	tab := tabs[0]
	// At least the localalloc row must show Single:Star > 2.
	for i := 0; i < tab.NumRows(); i++ {
		if tab.Cell(i, 0) == "localalloc" {
			if ratio := cell(t, tab.Cell(i, 3)); ratio <= 2 {
				t.Fatalf("localalloc Single:Star = %v, want > 2", ratio)
			}
			return
		}
	}
	t.Fatal("localalloc row missing")
}

func TestTable4Shape(t *testing.T) {
	tabs := mustRun(t, "table4")
	tab := tabs[0]
	// Longs CG at 16 must show poor efficiency (speedup well below 16).
	for i := 0; i < tab.NumRows(); i++ {
		if tab.Cell(i, 0) == "16" && tab.Cell(i, 1) == "longs" {
			cg := cell(t, tab.Cell(i, 2))
			if cg > 10 {
				t.Fatalf("Longs CG speedup at 16 = %v, paper shows collapse (4.0)", cg)
			}
			return
		}
	}
	t.Fatal("Longs/16 row missing")
}

func TestTable2HasDashesAt16OneMPI(t *testing.T) {
	tabs := mustRun(t, "table2")
	for _, tab := range tabs {
		found := false
		for i := 0; i < tab.NumRows(); i++ {
			if tab.Cell(i, 0) == "16" {
				if tab.Cell(i, 3) != "-" || tab.Cell(i, 4) != "-" {
					t.Fatalf("16-rank One-MPI cells should be dashes, got %q %q",
						tab.Cell(i, 3), tab.Cell(i, 4))
				}
				found = true
			}
		}
		if !found {
			t.Fatal("missing 16-rank row")
		}
	}
}

// mustRun executes an experiment at Quick scale on the shared default
// runner (its cache keeps cells shared across tests to one simulation).
func mustRun(t *testing.T, id string) []*report.Table {
	t.Helper()
	e, ok := ByID(id)
	if !ok {
		t.Fatalf("no experiment %q", id)
	}
	tabs, err := Default().Run(e, Quick)
	if err != nil {
		t.Fatalf("%s: %v", id, err)
	}
	if len(tabs) == 0 {
		t.Fatalf("%s returned no tables", id)
	}
	for _, tab := range tabs {
		if tab.NumRows() == 0 {
			t.Fatalf("%s produced an empty table", id)
		}
		if !strings.Contains(tab.Markdown(), "|") {
			t.Fatalf("%s markdown looks wrong", id)
		}
	}
	return tabs
}

func TestAllExperimentsProduceTables(t *testing.T) {
	if testing.Short() {
		t.Skip("full sweep skipped in -short mode")
	}
	for _, e := range All() {
		e := e
		t.Run(e.ID, func(t *testing.T) {
			tabs, err := Default().Run(e, Quick)
			if err != nil {
				t.Fatalf("%s: %v", e.ID, err)
			}
			if len(tabs) == 0 {
				t.Fatalf("%s returned no tables", e.ID)
			}
			for _, tab := range tabs {
				if tab.NumRows() == 0 {
					t.Fatalf("%s produced an empty table", e.ID)
				}
				if tab.CSV() == "" || tab.Markdown() == "" || tab.Text() == "" {
					t.Fatalf("%s rendering failed", e.ID)
				}
			}
		})
	}
}
