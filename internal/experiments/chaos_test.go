package experiments

import (
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"multicore/internal/affinity"
	"multicore/internal/fault"
	"multicore/internal/mem"
	"multicore/internal/mpi"
	"multicore/internal/report"
	"multicore/internal/sim"
	"multicore/internal/store"
)

// chaosBody is a small synthetic SPMD program exercising every injection
// point: on-core compute (OS noise, stragglers), streaming memory access
// (memory-controller slowdown), a ring exchange plus a collective (link
// degradation, message delays).
func chaosBody(rk *mpi.Rank) {
	n := rk.Size()
	buf := rk.Alloc("chaos.buf", 1<<20)
	for step := 0; step < 3; step++ {
		rk.Compute(5e6, 0.5)
		rk.Access(mem.Access{Region: buf, Pattern: mem.Stream, Bytes: 1 << 20})
		if n > 1 {
			rk.Sendrecv((rk.ID()+1)%n, 64<<10, (rk.ID()+n-1)%n)
		}
		rk.Allreduce(8)
	}
}

// chaosPlans is the fault-plan sweep the harness runs across the paper
// systems: one plan per perturbation kind plus a composite.
var chaosPlans = []string{
	"noise:core=*,period=10us,frac=0.2",
	"linkdown:s0-s1,factor=0.5,t=0s..inf",
	"mcslow:socket=*,factor=0.5",
	"straggler:rank=1,factor=2",
	"msgdelay:delay=5us",
	"noise:core=0,period=20us,frac=0.1;mcslow:socket=0,factor=0.75,t=0s..2ms;msgdelay:delay=2us,src=0",
}

// resultFingerprint reduces a run to an exact (bit-level) signature.
func resultFingerprint(res *mpi.Result) string {
	var b strings.Builder
	fmt.Fprintf(&b, "t=%x m=%d by=%x", math.Float64bits(res.Time), res.Messages, math.Float64bits(res.Bytes))
	for _, v := range res.RankTimes {
		fmt.Fprintf(&b, " rt=%x", math.Float64bits(v))
	}
	for _, v := range res.RankCompute {
		fmt.Fprintf(&b, " rc=%x", math.Float64bits(v))
	}
	return b.String()
}

// chaosRanks is the per-system rank count: as many ranks as the scheme
// can host so every socket (and the links between them) sees traffic.
var chaosRanks = map[string]int{"tiger": 2, "dmz": 2, "longs": 4}

func chaosRun(t *testing.T, system string, plan *fault.Plan) *mpi.Result {
	t.Helper()
	r := NewRunner(nil, Options{Faults: plan, CellTimeout: 2 * time.Minute})
	res, err := r.runJob("chaos", system, chaosRanks[system], affinity.OneMPILocalAlloc, chaosBody)
	if err != nil {
		t.Fatalf("chaos run on %s under %v: %v", system, plan, err)
	}
	return res
}

// TestChaosDeterminismAcrossSystems is the chaos harness's core
// guarantee: for every paper system and every fault plan, two runs with
// the same (plan, seed) are bit-identical; simulated time stays finite,
// positive, and bounded by the makespan; and a different seed actually
// changes something for at least one seeded plan.
func TestChaosDeterminismAcrossSystems(t *testing.T) {
	systems := []string{"tiger", "dmz", "longs"}
	for _, system := range systems {
		clean := chaosRun(t, system, nil)
		if resultFingerprint(clean) != resultFingerprint(chaosRun(t, system, nil)) {
			t.Fatalf("%s: clean run not deterministic", system)
		}
		for _, spec := range chaosPlans {
			a := chaosRun(t, system, fault.MustParse(spec, 42))
			b := chaosRun(t, system, fault.MustParse(spec, 42))
			if fa, fb := resultFingerprint(a), resultFingerprint(b); fa != fb {
				t.Errorf("%s under %q: same (plan, seed) diverged:\n%s\n%s", system, spec, fa, fb)
			}
			if !(a.Time > 0) || math.IsInf(a.Time, 0) || math.IsNaN(a.Time) {
				t.Errorf("%s under %q: makespan %g", system, spec, a.Time)
			}
			for i, rt := range a.RankTimes {
				if rt > a.Time+1e-12 || math.IsNaN(rt) {
					t.Errorf("%s under %q: rank %d finished at %g past makespan %g",
						system, spec, i, rt, a.Time)
				}
			}
		}
		// OS noise only steals cycles, so it must strictly inflate the
		// makespan of a compute-heavy run...
		noisy := chaosRun(t, system, fault.MustParse(chaosPlans[0], 42))
		if noisy.Time <= clean.Time {
			t.Errorf("%s: noisy makespan %g not above clean %g", system, noisy.Time, clean.Time)
		}
		// ... and a different seed shifts the burst phases.
		reseeded := chaosRun(t, system, fault.MustParse(chaosPlans[0], 43))
		if resultFingerprint(reseeded) == resultFingerprint(noisy) {
			t.Errorf("%s: seed change left the noisy run bit-identical", system)
		}
	}
}

// TestChaosDeadlockStillDetected: fault injection must not defeat the
// engine's deadlock detector — a workload blocked forever under a fault
// plan returns *sim.DeadlockError instead of hanging the sweep.
func TestChaosDeadlockStillDetected(t *testing.T) {
	r := NewRunner(nil, Options{Faults: fault.MustParse("noise:core=*,period=10us,frac=0.2;msgdelay:delay=5us", 1)})
	_, err := r.runJob("chaos-deadlock", "longs", 2, affinity.OneMPILocalAlloc, func(rk *mpi.Rank) {
		if rk.ID() == 0 {
			rk.Recv(1) // never sent
		}
	})
	var dl *sim.DeadlockError
	if !errors.As(err, &dl) {
		t.Fatalf("deadlocked chaos run returned %v, want *sim.DeadlockError", err)
	}
}

// TestRetryHealsTransient: a cell failing with a transient error must be
// retried (with backoff) and succeed within the budget; the attempt count
// is exact. Removing the retry loop fails this.
func TestRetryHealsTransient(t *testing.T) {
	r := NewRunner(nil, Options{Retries: 3, RetryBackoff: time.Microsecond})
	calls := 0
	v, err := runCell(r, testCellKey("flaky-transient"), func() (float64, error) {
		calls++
		if calls <= 2 {
			return 0, &fault.Transient{Err: fmt.Errorf("injected flake %d", calls)}
		}
		return 11, nil
	})
	if err != nil || v != 11 {
		t.Fatalf("healed cell = (%v, %v), want 11", v, err)
	}
	if calls != 3 {
		t.Fatalf("cell attempted %d times, want 3", calls)
	}
	if len(r.CellErrors()) != 0 {
		t.Fatalf("healed cell recorded errors: %v", r.CellErrors())
	}
}

// TestNoRetryForDeterministicFailure: panics and plain errors repeat
// identically, so the runner must not burn retries on them.
func TestNoRetryForDeterministicFailure(t *testing.T) {
	r := NewRunner(nil, Options{Retries: 5})
	calls := 0
	_, err := runCell(r, testCellKey("det-panic"), func() (float64, error) {
		calls++
		panic("deterministic break")
	})
	if err == nil || calls != 1 {
		t.Fatalf("panicking cell: %d attempts (err=%v), want exactly 1", calls, err)
	}
	calls = 0
	_, err = runCell(r, testCellKey("det-error"), func() (float64, error) {
		calls++
		return 0, errors.New("plain failure")
	})
	if err == nil || calls != 1 {
		t.Fatalf("plain-error cell: %d attempts (err=%v), want exactly 1", calls, err)
	}
}

// countStatuses decodes every committed entry in the store directory,
// failing the test on any unparseable entry, and tallies by status.
func countStatuses(t *testing.T, dir string) map[string]int {
	t.Helper()
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	counts := map[string]int{}
	for _, ent := range ents {
		if filepath.Ext(ent.Name()) != ".json" {
			continue
		}
		data, err := os.ReadFile(filepath.Join(dir, ent.Name()))
		if err != nil {
			t.Fatal(err)
		}
		var e store.Entry
		if err := json.Unmarshal(data, &e); err != nil {
			t.Errorf("store entry %s is corrupt after the sweep: %v", ent.Name(), err)
			continue
		}
		counts[e.Status]++
	}
	return counts
}

// TestRetryExhaustionRendersERR: a cell whose injected transient fault
// persists past the retry budget renders ERR, records StatusError exactly
// once, and leaves the rest of the sweep untouched. The plan targets only
// the rank-4 cells of the grid via the workload filter.
func TestRetryExhaustionRendersERR(t *testing.T) {
	st := openStore(t)
	plan := fault.MustParse("cellerr:p=1,workload=/r4/", 7)
	r := NewRunner(nil, Options{
		Store: st, Faults: plan, Retries: 2, RetryBackoff: time.Microsecond, Parallelism: 4,
	})
	attempts := map[int]int{}
	tab := numactlTable(r, "chaos-err", []sysRanks{{System: "longs", Ranks: []int{2, 4}}},
		func(system string, ranks int, scheme affinity.Scheme) (float64, error) {
			return runCell(r, CellKey{
				Workload: "chaos-err", System: system, Ranks: ranks, Scheme: scheme, Scale: Quick,
			}, func() (float64, error) {
				attempts[ranks]++
				return float64(ranks), nil
			})
		})
	if tab.NumRows() != 2 {
		t.Fatalf("rows = %d, want 2", tab.NumRows())
	}
	errCells, okCells := 0, 0
	for i := 0; i < tab.NumRows(); i++ {
		rowRanks := tab.Cell(i, 0)
		for j := 2; j < tab.NumCols(); j++ {
			c := tab.Cell(i, j)
			switch {
			case c == report.Err:
				errCells++
				if rowRanks != "4" {
					t.Errorf("ERR leaked into untargeted row ranks=%s col %d", rowRanks, j)
				}
			case c == report.NA:
			default:
				okCells++
				if rowRanks != "2" {
					t.Errorf("targeted cell ranks=%s col %d rendered %q, want ERR", rowRanks, j, c)
				}
			}
		}
	}
	if errCells == 0 {
		t.Fatal("no cell rendered ERR despite p=1 injection")
	}
	if okCells == 0 {
		t.Fatal("untargeted cells did not render values — the fault poisoned the sweep")
	}
	// Injected failures preempt the simulation entirely; healthy cells run
	// exactly once each.
	if attempts[4] != 0 {
		t.Errorf("targeted cells simulated %d times despite p=1 injection", attempts[4])
	}
	// Each exhausted cell records its failure exactly once, in memory and
	// in the store.
	if got := len(r.CellErrors()); got != errCells {
		t.Errorf("CellErrors = %d, want one per ERR cell (%d)", got, errCells)
	}
	counts := countStatuses(t, st.Dir())
	if counts[store.StatusError] != errCells {
		t.Errorf("store holds %d error entries, want %d", counts[store.StatusError], errCells)
	}
	if counts[store.StatusOK] != okCells {
		t.Errorf("store holds %d ok entries, want %d", counts[store.StatusOK], okCells)
	}
	// The exhausted error is the injected transient, surfaced as-is.
	for _, e := range r.CellErrors() {
		if !fault.IsTransient(e) {
			t.Errorf("exhausted cell error lost its transient marker: %v", e)
		}
	}
}

// TestChaosStoreIntegrity sweeps fault plans across systems into one
// shared store and then audits it: every entry parses, nothing was
// quarantined, perturbed keys never alias clean ones, and a second pass
// under the identical (plan, seed) serves everything from the store.
func TestChaosStoreIntegrity(t *testing.T) {
	st := openStore(t)
	key := testCellKey("chaos-int")
	cell := func(r *Runner) (float64, error) {
		return runCell(r, key, func() (float64, error) {
			res, err := r.runJob("chaos-int", key.System, key.Ranks, key.Scheme, chaosBody)
			if err != nil {
				return 0, err
			}
			return res.Time, nil
		})
	}

	clean := NewRunner(nil, Options{Store: st})
	cleanTime, err := cell(clean)
	if err != nil {
		t.Fatal(err)
	}
	times := map[string]float64{}
	for _, spec := range chaosPlans {
		r := NewRunner(nil, Options{Store: st, Faults: fault.MustParse(spec, 42), Retries: 1})
		v, err := cell(r)
		if err != nil {
			t.Fatalf("plan %q: %v", spec, err)
		}
		if r.CellsRun() != 1 {
			t.Errorf("plan %q: CellsRun = %d — a perturbed key aliased an earlier entry", spec, r.CellsRun())
		}
		times[spec] = v
	}
	// One entry per distinct (plan, seed) plus the clean one.
	if n, _ := st.Len(); n != len(chaosPlans)+1 {
		t.Errorf("store holds %d entries, want %d", n, len(chaosPlans)+1)
	}
	counts := countStatuses(t, st.Dir())
	if counts[store.StatusOK] != len(chaosPlans)+1 {
		t.Errorf("statuses = %v, want %d ok", counts, len(chaosPlans)+1)
	}
	if st.Quarantined() != 0 {
		t.Errorf("sweep quarantined %d entries", st.Quarantined())
	}

	// Second pass, same (plan, seed): pure store hits with identical values.
	for _, spec := range chaosPlans {
		r := NewRunner(nil, Options{Store: st, Faults: fault.MustParse(spec, 42), Retries: 1})
		v, err := cell(r)
		if err != nil {
			t.Fatalf("replay of %q: %v", spec, err)
		}
		if r.CellsRun() != 0 || r.StoreHits() != 1 {
			t.Errorf("replay of %q: CellsRun=%d StoreHits=%d, want 0/1", spec, r.CellsRun(), r.StoreHits())
		}
		if v != times[spec] {
			t.Errorf("replay of %q: %g != stored %g", spec, v, times[spec])
		}
	}
	// A different seed is a different experiment: it must miss and re-run.
	r := NewRunner(nil, Options{Store: st, Faults: fault.MustParse(chaosPlans[0], 99), Retries: 1})
	if _, err := cell(r); err != nil {
		t.Fatal(err)
	}
	if r.CellsRun() != 1 {
		t.Errorf("reseeded plan served from another seed's entry")
	}
	// And the clean entry is still intact and still served.
	replay := NewRunner(nil, Options{Store: st})
	v, err := cell(replay)
	if err != nil || v != cleanTime || replay.CellsRun() != 0 {
		t.Errorf("clean replay = (%v, %v, ran=%d), want (%g, nil, 0)",
			v, err, replay.CellsRun(), cleanTime)
	}
}
