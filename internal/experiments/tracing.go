package experiments

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"multicore/internal/affinity"
	"multicore/internal/sim"
)

// Per-cell trace capture for mcbench -trace: when a runner has a trace
// directory, every cell routed through runJob records a sim.Trace and
// writes it to <dir>/<label>.trace.json. Each cell owns a private
// engine, so trace content depends only on the cell's configuration;
// files are byte-identical however many pool workers run (the
// determinism regression covers this). Tracing is disabled by default
// and costs a mutex probe per cell when off.

// cellLabel names one simulated cell for trace files.
func cellLabel(workload, system string, ranks int, scheme affinity.Scheme) string {
	return fmt.Sprintf("%s-%s-r%d-%s", workload, system, ranks, scheme)
}

// traceCell returns a trace sink for the labelled cell and a callback
// that writes its file; both are nil when tracing is disabled or the
// cell has already been captured (artifacts sharing cells produce one
// file, like the result cache produces one simulation).
func (r *Runner) traceCell(label string) (*sim.Trace, func()) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.opts.TraceDir == "" || r.traceWritten[label] {
		return nil, nil
	}
	r.traceWritten[label] = true
	path := filepath.Join(r.opts.TraceDir, sanitizeLabel(label)+".trace.json")
	tr := &sim.Trace{}
	return tr, func() {
		if err := tr.WriteFile(path); err != nil {
			fmt.Fprintf(os.Stderr, "experiments: writing trace: %v\n", err)
		}
	}
}

// sanitizeLabel maps a cell label to a safe file name.
func sanitizeLabel(label string) string {
	return strings.Map(func(r rune) rune {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9',
			r == '-', r == '.', r == '_', r == '+':
			return r
		default:
			return '_'
		}
	}, label)
}
