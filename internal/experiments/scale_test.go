package experiments

import (
	"context"
	"strings"
	"testing"

	"multicore/internal/report"
)

// renderWith runs one experiment under the given (cell parallelism,
// settle workers) pair and returns its tables rendered to CSV.
func renderWith(t *testing.T, id string, parallelism, settleWorkers int) string {
	t.Helper()
	r := NewRunner(context.Background(), Options{
		Parallelism:   parallelism,
		SettleWorkers: settleWorkers,
	})
	e, ok := ByID(id)
	if !ok {
		t.Fatalf("no experiment %q", id)
	}
	tables, err := r.Run(e, Quick)
	if err != nil {
		t.Fatal(err)
	}
	var b strings.Builder
	for _, tb := range tables {
		b.WriteString((*report.Table).CSV(tb))
	}
	return b.String()
}

// TestComponentSettleComposesWithCellParallelism: the nesting policy —
// cells on the runner's worker pool, each engine filling components under
// SettleWorkers, the product backstopped by the process-wide settle-token
// budget (GOMAXPROCS-1; see sim's TestSettleTokenBudget). Whatever slice
// of that budget each cell actually wins, component-mode output is
// worker-count independent, so every (parallelism, settle) combination
// must render byte-identical tables.
func TestComponentSettleComposesWithCellParallelism(t *testing.T) {
	const id = "ext-hybrid"
	base := renderWith(t, id, 1, 2)
	for _, tc := range []struct{ par, settle int }{
		{4, 2}, {1, 8}, {4, 8},
	} {
		got := renderWith(t, id, tc.par, tc.settle)
		if got != base {
			t.Errorf("parallelism=%d settle=%d: tables differ from parallelism=1 settle=2 baseline:\n%s\n---\n%s",
				tc.par, tc.settle, got, base)
		}
	}
}

// TestExtScaleSerialMatchesComponentMode: the scale experiment's rounded
// tables must not depend on the settling mode — union (default) and
// component mode solve the same max-min program and agree to table
// precision.
func TestExtScaleSerialMatchesComponentMode(t *testing.T) {
	if testing.Short() {
		t.Skip("ext-scale sweep skipped in -short mode")
	}
	serial := renderWith(t, "ext-scale", 2, 0)
	parallel := renderWith(t, "ext-scale", 2, 4)
	if serial != parallel {
		t.Errorf("ext-scale tables differ across settle modes:\n%s\n---\n%s", serial, parallel)
	}
}
