package experiments

import (
	"multicore/internal/hpcc"
	"multicore/internal/machine"
	"multicore/internal/report"
	"multicore/internal/units"
)

func init() {
	register(Experiment{
		ID:    "fig8",
		Title: "HPL performance with LAM/NUMA options",
		Paper: "Memory placement schemes have a smaller impact on HPL than the MPI sub-layer selection.",
		Run:   runFig8,
	})
	register(Experiment{
		ID:    "fig9",
		Title: "Single vs Star DGEMM and FFT with runtime options",
		Paper: "Star DGEMM ~ Single DGEMM (second core doubles socket throughput); FFT slightly more impacted.",
		Run:   runFig9,
	})
	register(Experiment{
		ID:    "fig10",
		Title: "Single vs Star STREAM with LAM/NUMA options",
		Paper: "Single:Star ratio exceeds 2:1 — the second core is a net per-socket loss for STREAM.",
		Run:   runFig10,
	})
	register(Experiment{
		ID:    "fig11",
		Title: "Single/Star/MPI RandomAccess with runtime options",
		Paper: "RandomAccess is latency bound: the second core is a net gain; SysV collapses the MPI variant.",
		Run:   runFig11,
	})
	register(Experiment{
		ID:    "fig12",
		Title: "PTRANS and ring/pingpong bandwidth with runtime options",
		Paper: "USysV's spin locks clearly beat SysV; localalloc degrades both when combined.",
		Run:   runFig12,
	})
	register(Experiment{
		ID:    "fig13",
		Title: "Ring vs PingPong latency with runtime options",
		Paper: "Ring latencies exceed PingPong, but SysV sub-layer latencies overwhelm both.",
		Run:   runFig13,
	})
}

func hplN(s Scale) int {
	if s == Full {
		return 4096
	}
	return 1536
}

func runFig8(r *Runner, s Scale) []*report.Table {
	t := report.New("Figure 8: HPL GFlop/s, 16 cores on Longs (plus DMZ reference)",
		"System", "Option", "GFlop/s")
	longs := machine.Longs()
	opts := hpcc.LongsOptions()
	rows := parMap(r, len(opts)+1, func(i int) []string {
		if i == len(opts) {
			return []string{"DMZ", hpcc.DMZOption().Name,
				report.F(hpcc.HPL(machine.DMZ(), hpcc.DMZOption(), hplN(s)/2))}
		}
		return []string{"Longs", opts[i].Name, report.F(hpcc.HPL(longs, opts[i], hplN(s)))}
	})
	for _, row := range rows {
		t.AddRow(row...)
	}
	return []*report.Table{t}
}

func runFig9(r *Runner, s Scale) []*report.Table {
	n := 512
	fftN := 1 << 20
	if s == Full {
		n = 1024
		fftN = 1 << 22
	}
	t := report.New("Figure 9: per-core GFlop/s, Single vs Star modes (Longs)",
		"Option", "Single DGEMM", "Star DGEMM", "Single FFT", "Star FFT")
	longs := machine.Longs()
	opts := hpcc.LongsOptions()
	rows := parMap(r, len(opts), func(i int) []string {
		opt := opts[i]
		return []string{opt.Name,
			report.F(hpcc.DGEMM(longs, opt, false, n)),
			report.F(hpcc.DGEMM(longs, opt, true, n)),
			report.F(hpcc.FFT(longs, opt, false, fftN)),
			report.F(hpcc.FFT(longs, opt, true, fftN))}
	})
	for _, row := range rows {
		t.AddRow(row...)
	}
	return []*report.Table{t}
}

func runFig10(r *Runner, s Scale) []*report.Table {
	t := report.New("Figure 10: per-core STREAM triad GB/s, Single vs Star (Longs)",
		"Option", "Single", "Star", "Single:Star ratio")
	longs := machine.Longs()
	opts := hpcc.LongsOptions()
	rows := parMap(r, len(opts), func(i int) []string {
		opt := opts[i]
		single := hpcc.STREAM(longs, opt, false)
		star := hpcc.STREAM(longs, opt, true)
		return []string{opt.Name, report.F(single), report.F(star), report.F(single / star)}
	})
	for _, row := range rows {
		t.AddRow(row...)
	}
	return []*report.Table{t}
}

func runFig11(r *Runner, s Scale) []*report.Table {
	t := report.New("Figure 11: RandomAccess GUPS per core (Longs)",
		"Option", "Single", "Star", "MPI", "Single:Star ratio")
	longs := machine.Longs()
	opts := hpcc.LongsOptions()
	rows := parMap(r, len(opts), func(i int) []string {
		opt := opts[i]
		single := hpcc.RandomAccess(longs, opt, hpcc.RASingle)
		star := hpcc.RandomAccess(longs, opt, hpcc.RAStar)
		mpiRA := hpcc.RandomAccess(longs, opt, hpcc.RAMPI)
		return []string{opt.Name, report.F(single), report.F(star), report.F(mpiRA), report.F(single / star)}
	})
	for _, row := range rows {
		t.AddRow(row...)
	}
	return []*report.Table{t}
}

func runFig12(r *Runner, s Scale) []*report.Table {
	n := 1024
	if s == Full {
		n = 2048
	}
	msg := 256.0 * units.KB
	t := report.New("Figure 12: communication bandwidth with runtime options (Longs)",
		"Option", "PTRANS GB/s per core", "PingPong MB/s", "Ring MB/s")
	longs := machine.Longs()
	opts := hpcc.LongsOptions()
	rows := parMap(r, len(opts), func(i int) []string {
		opt := opts[i]
		pp := hpcc.PingPong(longs, opt, msg)
		ring := hpcc.Ring(longs, opt, msg)
		return []string{opt.Name,
			report.F(hpcc.PTRANS(longs, opt, n)),
			report.F(pp.Bandwidth / units.Mega),
			report.F(ring.Bandwidth / units.Mega)}
	})
	for _, row := range rows {
		t.AddRow(row...)
	}
	return []*report.Table{t}
}

func runFig13(r *Runner, s Scale) []*report.Table {
	t := report.New("Figure 13: communication latency with runtime options (Longs, 8 B messages)",
		"Option", "PingPong us", "Ring us")
	longs := machine.Longs()
	opts := hpcc.LongsOptions()
	rows := parMap(r, len(opts), func(i int) []string {
		opt := opts[i]
		pp := hpcc.PingPong(longs, opt, 8)
		ring := hpcc.Ring(longs, opt, 8)
		return []string{opt.Name,
			report.F(pp.Latency / units.Microsecond),
			report.F(ring.Latency / units.Microsecond)}
	})
	for _, row := range rows {
		t.AddRow(row...)
	}
	return []*report.Table{t}
}
