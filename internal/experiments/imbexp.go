package experiments

import (
	"fmt"

	"multicore/internal/affinity"
	"multicore/internal/kernels/imb"
	"multicore/internal/machine"
	"multicore/internal/mem"
	"multicore/internal/mpi"
	"multicore/internal/report"
	"multicore/internal/topology"
	"multicore/internal/units"
)

func init() {
	register(Experiment{
		ID:    "fig14",
		Title: "Intra-node IMB PingPong across MPI implementations (DMZ)",
		Paper: "LAM fastest below ~16 KB, OpenMPI best in between, MPICH2 best for large messages.",
		Run:   runFig14,
	})
	register(Experiment{
		ID:    "fig15",
		Title: "Intra-node IMB Exchange across MPI implementations (DMZ)",
		Paper: "Same implementation ordering holds for the heavier Exchange pattern.",
		Run:   runFig15,
	})
	register(Experiment{
		ID:    "fig16",
		Title: "OpenMPI PingPong with scheduler affinity (DMZ)",
		Paper: "Binding both processes inside one dual-core socket gains ~10-13% bandwidth and small-message latency.",
		Run:   runFig16,
	})
	register(Experiment{
		ID:    "fig17",
		Title: "OpenMPI Exchange with scheduler affinity (DMZ)",
		Paper: "The intra-socket benefit persists for Exchange; a 4-process run shows the cost of using every core.",
		Run:   runFig17,
	})
}

func imbSizes(s Scale) []float64 {
	if s == Full {
		return imb.Sizes(4 * units.MB)
	}
	return []float64{8, 256, 4 * units.KB, 64 * units.KB, 512 * units.KB, 4 * units.MB}
}

// dmzPair builds a 2-rank config on the given cores.
func dmzPair(impl *mpi.Impl, cores ...int) mpi.Config {
	spec := machine.DMZ()
	b := make([]affinity.Binding, len(cores))
	for i, c := range cores {
		b[i] = affinity.Binding{Core: topology.CoreID(c), MemPolicy: mem.LocalAlloc}
	}
	return mpi.Config{Spec: spec, Impl: impl, Bindings: b}
}

func imbImpls() []*mpi.Impl {
	return []*mpi.Impl{mpi.MPICH2(), mpi.LAM(), mpi.OpenMPI()}
}

func runFig14(r *Runner, s Scale) []*report.Table {
	t := report.New("Figure 14: PingPong latency (us) and bandwidth (MB/s) by implementation",
		"Bytes", "MPICH2 lat", "LAM lat", "OpenMPI lat", "MPICH2 bw", "LAM bw", "OpenMPI bw")
	sizes := imbSizes(s)
	impls := imbImpls()
	pts := parMap(r, len(sizes)*len(impls), func(i int) imb.Point {
		return imb.PingPong(dmzPair(impls[i%len(impls)], 0, 2), sizes[i/len(impls)], 20)
	})
	for i, size := range sizes {
		lats := make([]string, 0, 3)
		bws := make([]string, 0, 3)
		for j := range impls {
			pt := pts[i*len(impls)+j]
			lats = append(lats, report.F(pt.Latency/units.Microsecond))
			bws = append(bws, report.F(pt.Bandwidth/units.Mega))
		}
		t.AddRow(append(append([]string{fmt.Sprintf("%.0f", size)}, lats...), bws...)...)
	}
	return []*report.Table{t}
}

func runFig15(r *Runner, s Scale) []*report.Table {
	t := report.New("Figure 15: Exchange period (us) and bandwidth (MB/s) by implementation",
		"Bytes", "MPICH2 t", "LAM t", "OpenMPI t", "MPICH2 bw", "LAM bw", "OpenMPI bw")
	sizes := imbSizes(s)
	impls := imbImpls()
	pts := parMap(r, len(sizes)*len(impls), func(i int) imb.Point {
		return imb.Exchange(dmzPairN(impls[i%len(impls)], 4), sizes[i/len(impls)], 15)
	})
	for i, size := range sizes {
		ts := make([]string, 0, 3)
		bws := make([]string, 0, 3)
		for j := range impls {
			pt := pts[i*len(impls)+j]
			ts = append(ts, report.F(pt.Latency/units.Microsecond))
			bws = append(bws, report.F(pt.Bandwidth/units.Mega))
		}
		t.AddRow(append(append([]string{fmt.Sprintf("%.0f", size)}, ts...), bws...)...)
	}
	return []*report.Table{t}
}

// dmzPairN builds an n-rank config on cores 0..n-1 in OS order (socket
// spread first).
func dmzPairN(impl *mpi.Impl, n int) mpi.Config {
	spec := machine.DMZ()
	b, err := affinity.Layout(affinity.Default, spec.Topo, n)
	if err != nil {
		panic(err)
	}
	return mpi.Config{Spec: spec, Impl: impl, Bindings: b}
}

// bindingConfigs are the paper's Figure 16/17 affinity configurations.
func bindingConfigs() []struct {
	Name  string
	Cores []int
} {
	return []struct {
		Name  string
		Cores []int
	}{
		{Name: "2 procs, bound 0", Cores: []int{0, 1}}, // both on socket 0
		{Name: "2 procs, bound 1", Cores: []int{2, 3}}, // both on socket 1
		{Name: "2 procs, unbound", Cores: []int{0, 2}}, // OS spreads sockets
		{Name: "2 procs, unbound, 2 parked", Cores: []int{0, 2, 1, 3}},
	}
}

func runFig16(r *Runner, s Scale) []*report.Table {
	t := report.New("Figure 16: OpenMPI PingPong with affinity configurations",
		append([]string{"Bytes"}, fig16Cols()...)...)
	sizes := imbSizes(s)
	cfgs := bindingConfigs()
	pts := parMap(r, len(sizes)*len(cfgs), func(i int) imb.Point {
		return imb.PingPong(dmzPair(mpi.OpenMPI(), cfgs[i%len(cfgs)].Cores...), sizes[i/len(cfgs)], 20)
	})
	for i, size := range sizes {
		row := []string{fmt.Sprintf("%.0f", size)}
		for j := range cfgs {
			row = append(row, report.F(pts[i*len(cfgs)+j].Bandwidth/units.Mega))
		}
		t.AddRow(row...)
	}
	return []*report.Table{t}
}

func fig16Cols() []string {
	var cols []string
	for _, cfg := range bindingConfigs() {
		cols = append(cols, cfg.Name+" MB/s")
	}
	return cols
}

func runFig17(r *Runner, s Scale) []*report.Table {
	cols := append([]string{"Bytes"}, fig16Cols()...)
	cols = append(cols, "4 procs MB/s")
	t := report.New("Figure 17: OpenMPI Exchange with affinity configurations", cols...)
	sizes := imbSizes(s)
	cfgs := bindingConfigs()
	stride := len(cfgs) + 1
	pts := parMap(r, len(sizes)*stride, func(i int) imb.Point {
		size, j := sizes[i/stride], i%stride
		if j == len(cfgs) {
			return imb.Exchange(dmzPairN(mpi.OpenMPI(), 4), size, 15)
		}
		// Exchange needs communicating neighbors only; parked ranks
		// do not apply, so reuse the first two cores.
		return imb.Exchange(dmzPair(mpi.OpenMPI(), cfgs[j].Cores[0], cfgs[j].Cores[1]), size, 15)
	})
	for i, size := range sizes {
		row := []string{fmt.Sprintf("%.0f", size)}
		for j := 0; j < stride; j++ {
			row = append(row, report.F(pts[i*stride+j].Bandwidth/units.Mega))
		}
		t.AddRow(row...)
	}
	return []*report.Table{t}
}
