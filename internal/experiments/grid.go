package experiments

import (
	"fmt"

	"multicore/internal/affinity"
	"multicore/internal/workload"
)

// This file is the bridge between the experiment executor and callers
// that sweep arbitrary (workload, system, ranks, scheme) grids rather
// than the paper's fixed artifacts — chiefly the distributed sweep
// service (internal/sweepd), whose workers need to execute exactly one
// cell at a time through the same memoization, store, fault-injection,
// and retry machinery the registered experiments use.

// ParseScale resolves a scale's CLI name ("quick" or "full").
func ParseScale(s string) (Scale, error) {
	switch s {
	case "quick":
		return Quick, nil
	case "full":
		return Full, nil
	}
	return 0, fmt.Errorf("experiments: unknown scale %q (want quick or full)", s)
}

// WorkloadKey canonically encodes a workload spec as a cell-identity
// string: the CLI spec form plus every non-default parameter. Two specs
// with equal keys run byte-for-byte the same simulation, so the key is
// safe to use in CellKey.Workload and hence in persistent store
// addresses.
func WorkloadKey(spec workload.Spec) string {
	key := spec.String()
	if spec.Class != "" {
		key += fmt.Sprintf("[class=%s]", spec.Class)
	}
	if spec.Steps != 0 {
		key += fmt.Sprintf("[steps=%d]", spec.Steps)
	}
	if spec.N != 0 {
		key += fmt.Sprintf("[n=%d]", spec.N)
	}
	return key
}

// RunWorkloadCell simulates one registry workload on a system under a
// placement scheme and returns the job makespan in simulated seconds.
// The cell goes through the runner's full cell path — in-process
// memoization, the persistent store when configured, fault injection,
// and transient-only retries — so distributed workers and local grid
// sweeps share every correctness property of the paper-artifact
// executor. Infeasible placements return *affinity.ErrInfeasible exactly
// like the table experiments.
func (r *Runner) RunWorkloadCell(spec workload.Spec, system string, ranks int, scheme affinity.Scheme, scale Scale) (float64, error) {
	key := CellKey{Workload: WorkloadKey(spec), System: system, Ranks: ranks, Scheme: scheme, Scale: scale}
	return runCell(r, key, func() (float64, error) {
		wl, err := workload.New(spec)
		if err != nil {
			return 0, err
		}
		res, err := r.runJob(key.Workload, system, ranks, scheme, wl.Body)
		if err != nil {
			return 0, err
		}
		return res.Time, nil
	})
}
