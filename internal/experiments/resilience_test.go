package experiments

import (
	"context"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"multicore/internal/affinity"
	"multicore/internal/report"
	"multicore/internal/sim"
	"multicore/internal/store"
)

func testCellKey(workload string) CellKey {
	return CellKey{Workload: workload, System: "longs", Ranks: 8,
		Scheme: affinity.OneMPILocalAlloc, Scale: Quick}
}

// corruptAllEntries truncates every committed entry file in dir.
func corruptAllEntries(t *testing.T, dir string) {
	t.Helper()
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	n := 0
	for _, ent := range ents {
		if filepath.Ext(ent.Name()) != ".json" {
			continue
		}
		if err := os.WriteFile(filepath.Join(dir, ent.Name()), []byte("{trunc"), 0o644); err != nil {
			t.Fatal(err)
		}
		n++
	}
	if n == 0 {
		t.Fatal("no entries to corrupt")
	}
}

func openStore(t *testing.T) *store.Store {
	t.Helper()
	st, err := store.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	return st
}

// TestRunCellPanicIsolated: a panicking cell becomes that cell's error —
// the sweep continues and the panic message survives.
func TestRunCellPanicIsolated(t *testing.T) {
	r := NewRunner(nil, Options{})
	_, err := runCell(r, testCellKey("boomy"), func() (float64, error) {
		panic("synthetic cell failure")
	})
	if err == nil || !strings.Contains(err.Error(), "synthetic cell failure") {
		t.Fatalf("panic not captured as error: %v", err)
	}
	// A healthy cell on the same runner still works.
	v, err := runCell(r, testCellKey("fine"), func() (float64, error) { return 7, nil })
	if err != nil || v != 7 {
		t.Fatalf("healthy cell after panic = (%v, %v)", v, err)
	}
	if len(r.CellErrors()) != 1 {
		t.Fatalf("CellErrors = %v, want the one panic", r.CellErrors())
	}
}

// TestExperimentWithPanickingCellRendersERR: an injected panicking cell
// must render as ERR while the rest of the table fills in normally.
func TestExperimentWithPanickingCellRendersERR(t *testing.T) {
	r := NewRunner(nil, Options{Parallelism: 4})
	tab := numactlTable(r, "synthetic", []sysRanks{{System: "longs", Ranks: []int{2, 4}}},
		func(system string, ranks int, scheme affinity.Scheme) (float64, error) {
			return runCell(r, CellKey{
				Workload: "synthetic", System: system, Ranks: ranks, Scheme: scheme, Scale: Quick,
			}, func() (float64, error) {
				if ranks == 4 && scheme == affinity.Interleave {
					panic("this cell is broken")
				}
				return float64(ranks), nil
			})
		})
	if tab.NumRows() != 2 {
		t.Fatalf("rows = %d, want 2", tab.NumRows())
	}
	foundErr, foundOK := false, false
	for i := 0; i < tab.NumRows(); i++ {
		for j := 2; j < 8; j++ {
			switch tab.Cell(i, j) {
			case report.Err:
				foundErr = true
			case report.NA:
			default:
				foundOK = true
			}
		}
	}
	if !foundErr {
		t.Fatal("panicking cell did not render as ERR")
	}
	if !foundOK {
		t.Fatal("healthy cells did not render")
	}
}

// TestRunnerRunIsolatesExperimentPanic: a panic outside any cell (in the
// experiment body itself) is captured by Runner.Run as an error.
func TestRunnerRunIsolatesExperimentPanic(t *testing.T) {
	r := NewRunner(nil, Options{})
	e := Experiment{ID: "synthetic-panic", Run: func(r *Runner, s Scale) []*report.Table {
		panic("experiment body exploded")
	}}
	tabs, err := r.Run(e, Quick)
	if tabs != nil {
		t.Fatal("panicking experiment returned tables")
	}
	if err == nil || !strings.Contains(err.Error(), "experiment body exploded") {
		t.Fatalf("panic not captured: %v", err)
	}
}

// TestStoreRoundTripSkipsSimulation: a second runner sharing the store
// must serve every cell from disk — zero simulations — with identical
// values (the -resume byte-identical-tables guarantee at cell level).
func TestStoreRoundTripSkipsSimulation(t *testing.T) {
	st := openStore(t)
	key := testCellKey("rt")

	r1 := NewRunner(nil, Options{Store: st})
	v1, err := runCell(r1, key, func() (float64, error) { return 42.5, nil })
	if err != nil || v1 != 42.5 {
		t.Fatalf("first run = (%v, %v)", v1, err)
	}
	if r1.CellsRun() != 1 || r1.StoreHits() != 0 {
		t.Fatalf("first run: CellsRun=%d StoreHits=%d", r1.CellsRun(), r1.StoreHits())
	}

	r2 := NewRunner(nil, Options{Store: st})
	v2, err := runCell(r2, key, func() (float64, error) {
		t.Error("cell re-simulated despite a stored result")
		return 0, nil
	})
	if err != nil || v2 != 42.5 {
		t.Fatalf("second run = (%v, %v), want stored 42.5", v2, err)
	}
	if r2.CellsRun() != 0 || r2.StoreHits() != 1 {
		t.Fatalf("second run: CellsRun=%d StoreHits=%d, want 0/1", r2.CellsRun(), r2.StoreHits())
	}
}

// TestStoreRoundTripStruct: struct-valued cells (the AMBER/POP metric
// pairs) must round-trip the store unchanged.
func TestStoreRoundTripStruct(t *testing.T) {
	st := openStore(t)
	key := testCellKey("pair")
	r1 := NewRunner(nil, Options{Store: st})
	want := amberTimes{Total: 12.25, FFT: 3.125}
	got, err := runCell(r1, key, func() (amberTimes, error) { return want, nil })
	if err != nil || got != want {
		t.Fatalf("first run = (%+v, %v)", got, err)
	}
	r2 := NewRunner(nil, Options{Store: st})
	got, err = runCell(r2, key, func() (amberTimes, error) {
		return amberTimes{}, fmt.Errorf("should have been served from the store")
	})
	if err != nil || got != want {
		t.Fatalf("stored struct = (%+v, %v), want %+v", got, err, want)
	}
}

// TestStoreInfeasibleRoundTrip: infeasible placements are stored and
// reconstructed as *affinity.ErrInfeasible, so dashes render identically
// from the store.
func TestStoreInfeasibleRoundTrip(t *testing.T) {
	st := openStore(t)
	key := testCellKey("dash")
	r1 := NewRunner(nil, Options{Store: st})
	_, err := runCell(r1, key, func() (float64, error) {
		return 0, &affinity.ErrInfeasible{Scheme: key.Scheme, Ranks: key.Ranks, System: key.System}
	})
	if !isInfeasible(err) {
		t.Fatalf("first run: %v, want infeasible", err)
	}
	r2 := NewRunner(nil, Options{Store: st})
	_, err = runCell(r2, key, func() (float64, error) {
		t.Error("infeasible cell re-simulated")
		return 0, nil
	})
	if !isInfeasible(err) {
		t.Fatalf("stored infeasible came back as %v", err)
	}
	if cellString(cellValue{err: err}, report.Seconds) != report.NA {
		t.Fatal("stored infeasible does not render as the paper's dash")
	}
}

// TestStoredErrorReportedWithoutResume: a recorded failure is surfaced
// (pointing at -resume), not silently retried.
func TestStoredErrorReportedWithoutResume(t *testing.T) {
	st := openStore(t)
	key := testCellKey("fails")
	r1 := NewRunner(nil, Options{Store: st})
	if _, err := runCell(r1, key, func() (float64, error) {
		return 0, errors.New("deadlock: ranks 0 and 1")
	}); err == nil {
		t.Fatal("failing cell returned nil error")
	}

	r2 := NewRunner(nil, Options{Store: st})
	_, err := runCell(r2, key, func() (float64, error) {
		t.Error("failed cell re-ran without -resume")
		return 0, nil
	})
	if err == nil || !strings.Contains(err.Error(), "-resume") ||
		!strings.Contains(err.Error(), "deadlock: ranks 0 and 1") {
		t.Fatalf("stored failure not reported usefully: %v", err)
	}
}

// TestStoredErrorRetriedWithResume: under Resume the failed cell re-runs,
// and a now-successful result replaces the error entry.
func TestStoredErrorRetriedWithResume(t *testing.T) {
	st := openStore(t)
	key := testCellKey("flaky")
	r1 := NewRunner(nil, Options{Store: st})
	runCell(r1, key, func() (float64, error) { return 0, errors.New("transient") })

	r2 := NewRunner(nil, Options{Store: st, Resume: true})
	v, err := runCell(r2, key, func() (float64, error) { return 9, nil })
	if err != nil || v != 9 {
		t.Fatalf("resume retry = (%v, %v), want 9", v, err)
	}
	// The retry's success must now be the stored state.
	r3 := NewRunner(nil, Options{Store: st})
	v, err = runCell(r3, key, func() (float64, error) {
		t.Error("healed cell re-simulated")
		return 0, nil
	})
	if err != nil || v != 9 {
		t.Fatalf("after retry = (%v, %v), want stored 9", v, err)
	}
}

// TestCorruptStoreEntryReRuns: a truncated entry file reads as a miss and
// the cell re-simulates.
func TestCorruptStoreEntryReRuns(t *testing.T) {
	st := openStore(t)
	key := testCellKey("corrupt")
	r1 := NewRunner(nil, Options{Store: st})
	if _, err := runCell(r1, key, func() (float64, error) { return 5, nil }); err != nil {
		t.Fatal(err)
	}
	corruptAllEntries(t, st.Dir())

	r2 := NewRunner(nil, Options{Store: st})
	v, err := runCell(r2, key, func() (float64, error) { return 6, nil })
	if err != nil || v != 6 {
		t.Fatalf("after corruption = (%v, %v), want re-run 6", v, err)
	}
	if r2.CellsRun() != 1 {
		t.Fatalf("CellsRun = %d, want 1 (re-simulated)", r2.CellsRun())
	}
}

// TestCanceledCellNotPersisted: a cell that died to cancellation must not
// be recorded — it would poison later resumed runs with a wall-clock
// artifact.
func TestCanceledCellNotPersisted(t *testing.T) {
	st := openStore(t)
	key := testCellKey("canceled")
	r1 := NewRunner(nil, Options{Store: st})
	_, err := runCell(r1, key, func() (float64, error) {
		return 0, &sim.CanceledError{Time: 3, Cause: context.Canceled}
	})
	if !isCanceled(err) {
		t.Fatalf("got %v, want cancellation", err)
	}
	if n, _ := st.Len(); n != 0 {
		t.Fatalf("store has %d entries after cancellation, want 0", n)
	}
	if len(r1.CellErrors()) != 0 {
		t.Fatalf("cancellation recorded as a cell error: %v", r1.CellErrors())
	}

	// A later run re-simulates and persists normally.
	r2 := NewRunner(nil, Options{Store: st})
	v, err := runCell(r2, key, func() (float64, error) { return 4, nil })
	if err != nil || v != 4 {
		t.Fatalf("re-run = (%v, %v)", v, err)
	}
	if n, _ := st.Len(); n != 1 {
		t.Fatalf("store has %d entries, want 1", n)
	}
}

// TestCanceledRunnerDiscardsPartialTables: Runner.Run on a canceled
// context returns the context error and no tables, so half-computed
// artifacts are never emitted.
func TestCanceledRunnerDiscardsPartialTables(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	r := NewRunner(ctx, Options{})
	e, ok := ByID("table2")
	if !ok {
		t.Fatal("no experiment table2")
	}
	tabs, err := r.Run(e, Quick)
	if tabs != nil {
		t.Fatal("canceled run returned tables")
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("got %v, want context.Canceled", err)
	}
	if r.CellsRun() != 0 {
		t.Fatalf("canceled runner simulated %d cells", r.CellsRun())
	}
}

// TestResumeReproducesByteIdenticalTables is the end-to-end acceptance
// check: render a real experiment into a store, then render it again with
// a fresh runner — the second pass must simulate nothing and produce
// byte-identical text.
func TestResumeReproducesByteIdenticalTables(t *testing.T) {
	st := openStore(t)
	e, ok := ByID("table13")
	if !ok {
		t.Fatal("no experiment table13")
	}
	r1 := NewRunner(nil, Options{Store: st})
	first := renderAll(t, r1, e)
	if r1.CellsRun() == 0 {
		t.Fatal("first pass simulated nothing")
	}

	r2 := NewRunner(nil, Options{Store: st})
	second := renderAll(t, r2, e)
	if r2.CellsRun() != 0 {
		t.Fatalf("second pass simulated %d cells, want 0 (all served from store)", r2.CellsRun())
	}
	if r2.StoreHits() == 0 {
		t.Fatal("second pass recorded no store hits")
	}
	if first != second {
		t.Errorf("stored tables differ from simulated ones:\nfirst:\n%s\nsecond:\n%s", first, second)
	}
}
