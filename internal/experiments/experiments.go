// Package experiments reproduces every table and figure of the paper's
// evaluation: each experiment is a registered runner that executes the
// relevant workloads on the simulated systems and emits tables shaped like
// the paper's artifacts. The cmd/mcbench tool and the repository's
// benchmark harness both drive this registry.
package experiments

import (
	"errors"
	"fmt"
	"sort"

	"multicore/internal/affinity"
	"multicore/internal/core"
	"multicore/internal/mpi"
	"multicore/internal/report"
)

// Scale selects problem sizes: Quick runs in seconds per experiment and is
// what tests and the default bench harness use; Full uses the paper's
// problem sizes (class B and the complete 100-step runs).
type Scale int

// Quick and Full scales.
const (
	Quick Scale = iota
	Full
)

// Experiment is one reproducible paper artifact.
type Experiment struct {
	// ID is the artifact name: "fig2".."fig17", "table2".."table14".
	ID string
	// Title summarizes the artifact.
	Title string
	// Paper states the headline result the paper reports for it.
	Paper string
	// Run executes the experiment and returns its tables.
	Run func(s Scale) []*report.Table
}

var registry []Experiment

func register(e Experiment) {
	registry = append(registry, e)
}

// All returns the experiments in registration (paper) order.
func All() []Experiment {
	out := make([]Experiment, len(registry))
	copy(out, registry)
	return out
}

// IDs returns every registered experiment id, sorted.
func IDs() []string {
	ids := make([]string, 0, len(registry))
	for _, e := range registry {
		ids = append(ids, e.ID)
	}
	sort.Strings(ids)
	return ids
}

// ByID finds an experiment.
func ByID(id string) (Experiment, bool) {
	for _, e := range registry {
		if e.ID == id {
			return e, true
		}
	}
	return Experiment{}, false
}

// sysRanks describes which rank counts a table sweeps per system.
type sysRanks struct {
	System string
	Ranks  []int
}

// numactlColumns is the paper's Table 5 column order.
var numactlColumns = []affinity.Scheme{
	affinity.Default,
	affinity.OneMPILocalAlloc,
	affinity.OneMPIMembind,
	affinity.TwoMPILocalAlloc,
	affinity.TwoMPIMembind,
	affinity.Interleave,
}

// numactlTable builds a paper-style placement table: rows are
// (ranks, system), columns the six schemes; infeasible cells show the
// paper's dash.
func numactlTable(title string, sweep []sysRanks, run func(system string, ranks int, scheme affinity.Scheme) (float64, error)) *report.Table {
	t := report.New(title,
		"MPI tasks", "System", "Default", "One MPI + Local Alloc", "One MPI + Membind",
		"Two MPI + Local Alloc", "Two MPI + Membind", "Interleave")
	for _, sr := range sweep {
		for _, ranks := range sr.Ranks {
			cells := []string{fmt.Sprint(ranks), sr.System}
			for _, scheme := range numactlColumns {
				v, err := run(sr.System, ranks, scheme)
				if err != nil {
					var inf *affinity.ErrInfeasible
					if errors.As(err, &inf) {
						cells = append(cells, report.NA)
						continue
					}
					panic(fmt.Sprintf("experiments: %s: %v", title, err))
				}
				cells = append(cells, report.Seconds(v))
			}
			t.AddRow(cells...)
		}
	}
	return t
}

// speedupTable builds a multi-core speedup table: rows are (cores, system)
// with one column per labelled workload.
func speedupTable(title string, sweep []sysRanks, labels []string,
	run func(system string, ranks int, which int) (float64, error)) *report.Table {
	cols := append([]string{"Number of cores", "System"}, labels...)
	t := report.New(title, cols...)
	base := map[[2]interface{}]float64{}
	for _, sr := range sweep {
		for w := range labels {
			v, err := run(sr.System, 1, w)
			if err != nil {
				panic(fmt.Sprintf("experiments: %s baseline: %v", title, err))
			}
			base[[2]interface{}{sr.System, w}] = v
		}
		for _, ranks := range sr.Ranks {
			cells := []string{fmt.Sprint(ranks), sr.System}
			for w := range labels {
				v, err := run(sr.System, ranks, w)
				if err != nil {
					var inf *affinity.ErrInfeasible
					if errors.As(err, &inf) {
						cells = append(cells, report.NA)
						continue
					}
					panic(fmt.Sprintf("experiments: %s: %v", title, err))
				}
				cells = append(cells, report.F(base[[2]interface{}{sr.System, w}]/v))
			}
			t.AddRow(cells...)
		}
	}
	return t
}

// runJob is the shared job helper: MPICH2 (the paper's NPB/application
// stack) on the named system under a scheme.
func runJob(system string, ranks int, scheme affinity.Scheme, body func(*mpi.Rank)) (*mpi.Result, error) {
	return core.Run(core.Job{
		System: system,
		Ranks:  ranks,
		Scheme: scheme,
		Impl:   mpi.MPICH2(),
	}, body)
}
