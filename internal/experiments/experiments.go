// Package experiments reproduces every table and figure of the paper's
// evaluation: each experiment is a registered runner that executes the
// relevant workloads on the simulated systems and emits tables shaped like
// the paper's artifacts. The cmd/mcbench tool and the repository's
// benchmark harness both drive this registry through a Runner, which owns
// cancellation, the worker pool, and the (optionally persistent) result
// cache.
package experiments

import (
	"fmt"
	"math"
	"sort"

	"multicore/internal/affinity"
	"multicore/internal/core"
	"multicore/internal/mpi"
	"multicore/internal/report"
)

// Scale selects problem sizes: Quick runs in seconds per experiment and is
// what tests and the default bench harness use; Full uses the paper's
// problem sizes (class B and the complete 100-step runs).
type Scale int

// Quick and Full scales.
const (
	Quick Scale = iota
	Full
)

// String names the scale; it participates in persistent store keys, so
// the names are part of the on-disk format.
func (s Scale) String() string {
	switch s {
	case Quick:
		return "quick"
	case Full:
		return "full"
	}
	return fmt.Sprintf("Scale(%d)", int(s))
}

// Experiment is one reproducible paper artifact.
type Experiment struct {
	// ID is the artifact name: "fig2".."fig17", "table2".."table14".
	ID string
	// Title summarizes the artifact.
	Title string
	// Paper states the headline result the paper reports for it.
	Paper string
	// Run executes the experiment on the given runner and returns its
	// tables. Call it through Runner.Run, which adds panic isolation
	// and cancellation handling.
	Run func(r *Runner, s Scale) []*report.Table
}

var registry []Experiment

func register(e Experiment) {
	registry = append(registry, e)
}

// All returns the experiments in registration (paper) order.
func All() []Experiment {
	out := make([]Experiment, len(registry))
	copy(out, registry)
	return out
}

// IDs returns every registered experiment id, sorted.
func IDs() []string {
	ids := make([]string, 0, len(registry))
	for _, e := range registry {
		ids = append(ids, e.ID)
	}
	sort.Strings(ids)
	return ids
}

// ByID finds an experiment.
func ByID(id string) (Experiment, bool) {
	for _, e := range registry {
		if e.ID == id {
			return e, true
		}
	}
	return Experiment{}, false
}

// sysRanks describes which rank counts a table sweeps per system.
type sysRanks struct {
	System string
	Ranks  []int
}

// numactlColumns is the paper's Table 5 column order.
var numactlColumns = []affinity.Scheme{
	affinity.Default,
	affinity.OneMPILocalAlloc,
	affinity.OneMPIMembind,
	affinity.TwoMPILocalAlloc,
	affinity.TwoMPIMembind,
	affinity.Interleave,
}

// cellValue is the outcome of one table cell's simulation.
type cellValue struct {
	v   float64
	err error
}

// cellString renders a cell value in the paper's style: fmt formats a
// feasible value, infeasible placements show the paper's dash, and any
// other failure (a panicked cell, a deadlock, a stored error under a
// non-resume run) renders as ERR — the sweep continues and the message
// is available via Runner.CellErrors.
func cellString(c cellValue, format func(float64) string) string {
	if c.err != nil {
		if isInfeasible(c.err) {
			return report.NA
		}
		return report.Err
	}
	return format(c.v)
}

// numactlTable builds a paper-style placement table: rows are
// (ranks, system), columns the six schemes; infeasible cells show the
// paper's dash. The (ranks, system, scheme) grid is declared up front and
// executed on the runner's worker pool; rows are assembled in declared
// order, so the table is identical however many workers run.
func numactlTable(r *Runner, title string, sweep []sysRanks, run func(system string, ranks int, scheme affinity.Scheme) (float64, error)) *report.Table {
	t := report.New(title,
		"MPI tasks", "System", "Default", "One MPI + Local Alloc", "One MPI + Membind",
		"Two MPI + Local Alloc", "Two MPI + Membind", "Interleave")
	type coord struct {
		system string
		ranks  int
		scheme affinity.Scheme
	}
	var grid []coord
	for _, sr := range sweep {
		for _, ranks := range sr.Ranks {
			for _, scheme := range numactlColumns {
				grid = append(grid, coord{sr.System, ranks, scheme})
			}
		}
	}
	vals := parMap(r, len(grid), func(i int) cellValue {
		v, err := run(grid[i].system, grid[i].ranks, grid[i].scheme)
		return cellValue{v, err}
	})
	for i := 0; i < len(grid); i += len(numactlColumns) {
		cells := []string{fmt.Sprint(grid[i].ranks), grid[i].system}
		for j := range numactlColumns {
			cells = append(cells, cellString(vals[i+j], report.Seconds))
		}
		t.AddRow(cells...)
	}
	return t
}

// speedupTable builds a multi-core speedup table: rows are (cores, system)
// with one column per labelled workload. Baselines and sweep cells are
// declared as one grid and executed on the runner's worker pool. A failed
// baseline renders its whole column as ERR (no ratio is computable).
func speedupTable(r *Runner, title string, sweep []sysRanks, labels []string,
	run func(system string, ranks int, which int) (float64, error)) *report.Table {
	cols := append([]string{"Number of cores", "System"}, labels...)
	t := report.New(title, cols...)
	type coord struct {
		system string
		ranks  int
		which  int
	}
	var grid []coord
	for _, sr := range sweep {
		for w := range labels {
			grid = append(grid, coord{sr.System, 1, w})
		}
		for _, ranks := range sr.Ranks {
			for w := range labels {
				grid = append(grid, coord{sr.System, ranks, w})
			}
		}
	}
	vals := parMap(r, len(grid), func(i int) cellValue {
		v, err := run(grid[i].system, grid[i].ranks, grid[i].which)
		return cellValue{v, err}
	})
	i := 0
	for _, sr := range sweep {
		base := make([]float64, len(labels))
		for w := range labels {
			if vals[i].err != nil {
				base[w] = math.NaN()
			} else {
				base[w] = vals[i].v
			}
			i++
		}
		for _, ranks := range sr.Ranks {
			cells := []string{fmt.Sprint(ranks), sr.System}
			for w := range labels {
				c := vals[i]
				if c.err == nil && math.IsNaN(base[w]) {
					c = cellValue{err: fmt.Errorf("experiments: %s: no baseline for %s", title, labels[w])}
				}
				b := base[w]
				cells = append(cells, cellString(c, func(v float64) string {
					return report.F(b / v)
				}))
				i++
			}
			t.AddRow(cells...)
		}
	}
	return t
}

// runJob is the shared job helper: MPICH2 (the paper's NPB/application
// stack) on the named system under a scheme, simulated under the runner's
// context bounded by the per-cell timeout. workload names the cell for
// trace capture; when tracing is enabled the cell's trace is written as a
// side effect.
func (r *Runner) runJob(workload, system string, ranks int, scheme affinity.Scheme, body func(*mpi.Rank)) (*mpi.Result, error) {
	tr, flush := r.traceCell(cellLabel(workload, system, ranks, scheme))
	ctx, cancel := r.jobContext()
	defer cancel()
	job := core.Job{
		System:        system,
		Ranks:         ranks,
		Scheme:        scheme,
		Impl:          mpi.MPICH2(),
		Trace:         tr,
		Observe:       tr != nil,
		SettleWorkers: r.SettleWorkers(),
	}
	// Guarded assignment: a nil *fault.Plan inside the non-nil interface
	// would still dispatch, losing the fault-free fast paths.
	if plan := r.Faults(); plan != nil {
		job.Faults = plan
	}
	res, err := core.RunContext(ctx, job, body)
	if flush != nil && err == nil {
		flush()
	}
	return res, err
}
