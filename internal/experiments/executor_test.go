package experiments

import (
	"context"
	"sync/atomic"
	"testing"
)

// TestParMapPanicShortCircuits checks that once a worker panics, the
// remaining workers stop claiming indices: a panicking grid must not
// simulate the rest of its cells before re-panicking on the caller.
func TestParMapPanicShortCircuits(t *testing.T) {
	r := NewRunner(nil, Options{Parallelism: 8})

	const n = 10000
	gate := make(chan struct{})
	var executed atomic.Int64
	var recovered any
	func() {
		defer func() { recovered = recover() }()
		parMap(r, n, func(i int) int {
			if i == 0 {
				close(gate) // release the other workers, then fail
				panic("cell 0 exploded")
			}
			<-gate
			executed.Add(1)
			return i
		})
	}()
	if recovered != "cell 0 exploded" {
		t.Fatalf("panic not propagated: got %v", recovered)
	}
	// Workers already holding an index finish it, but nobody claims new
	// work once the feed is exhausted; without the short-circuit all
	// n-1 remaining cells would run.
	if got := executed.Load(); got > 100 {
		t.Fatalf("%d cells executed after the panic; short-circuit failed", got)
	}
}

// TestParMapCompletesAllIndices is the non-panicking baseline: every
// index runs exactly once and lands in order.
func TestParMapCompletesAllIndices(t *testing.T) {
	for _, workers := range []int{1, 4} {
		r := NewRunner(nil, Options{Parallelism: workers})
		out := parMap(r, 100, func(i int) int { return i * i })
		for i, v := range out {
			if v != i*i {
				t.Fatalf("workers=%d: out[%d] = %d, want %d", workers, i, v, i*i)
			}
		}
	}
}

// TestParMapStopsOnCancel checks that canceling the runner's context
// stops workers from claiming new indices.
func TestParMapStopsOnCancel(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	r := NewRunner(ctx, Options{Parallelism: 4})
	var executed atomic.Int64
	parMap(r, 10000, func(i int) int {
		if executed.Add(1) == 8 {
			cancel()
		}
		return i
	})
	if got := executed.Load(); got > 1000 {
		t.Fatalf("%d cells executed after cancellation; claim-stop failed", got)
	}
}
