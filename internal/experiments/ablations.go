package experiments

import (
	"fmt"

	"multicore/internal/affinity"
	"multicore/internal/core"
	"multicore/internal/kernels/imb"
	"multicore/internal/kernels/rnda"
	"multicore/internal/kernels/stream"
	"multicore/internal/machine"
	"multicore/internal/mem"
	"multicore/internal/mpi"
	"multicore/internal/npb"
	"multicore/internal/report"
	"multicore/internal/topology"
	"multicore/internal/units"
)

// Ablations probe the model's load-bearing design choices and the paper's
// forward-looking claims: what happens if the coherence overhead the paper
// blames is removed, if the HT ladder is replaced by a full crossbar, or
// as the lock sub-layer's latency sweeps between spin locks and kernel
// semaphores. ext-hybrid quantifies the paper's proposed three-class
// communication hierarchy.
func init() {
	register(Experiment{
		ID:    "ablate-coherence",
		Title: "Longs without the coherence bandwidth derating",
		Paper: "The paper expects future processors to recover the bandwidth the 8-socket probe scheme costs; this ablation restores it.",
		Run:   runAblateCoherence,
	})
	register(Experiment{
		ID:    "ablate-topology",
		Title: "HT ladder vs fully-connected 8-socket fabric",
		Paper: "Quantifies how much of the Longs communication cost is the 2x4 ladder itself.",
		Run:   runAblateTopology,
	})
	register(Experiment{
		ID:    "ablate-sublayer",
		Title: "Lock sub-layer latency sweep",
		Paper: "Interpolates between USysV spin locks and SysV semaphores to locate the latency cliff for small-message workloads.",
		Run:   runAblateSublayer,
	})
	register(Experiment{
		ID:    "ext-hybrid",
		Title: "Three communication classes on Longs (paper Section 3.4 proposal)",
		Paper: "Intra-socket, neighbor-socket, and cross-ladder channels differ enough to justify a hierarchy-aware programming model.",
		Run:   runExtHybrid,
	})
}

// longsNoCoherence restores the DDR-400 controller to its two-socket
// efficiency and drops the probe latency to DMZ-like values.
func longsNoCoherence() *machine.Spec {
	spec := machine.Longs()
	spec.MCBandwidth = 3.4 * units.Giga
	spec.LocalLatency = 100 * units.Nanosecond
	return spec
}

func runAblateCoherence(r *Runner, s Scale) []*report.Table {
	vec := 16.0 * units.MB
	t := report.New("Coherence ablation: STREAM triad and NAS CG on Longs",
		"Metric", "Calibrated (paper-like)", "No coherence derating", "Gain")

	triad := func(spec *machine.Spec) float64 {
		ctx, cancel := r.jobContext()
		defer cancel()
		res, err := core.RunContext(ctx, core.Job{Spec: spec, Ranks: 1, Scheme: affinity.OneMPILocalAlloc},
			func(r *mpi.Rank) {
				stream.RunTriad(r, stream.Params{VectorBytes: vec, Iters: 2})
			})
		if err != nil {
			panic(err)
		}
		return res.Max(stream.MetricBandwidth) / units.Giga
	}
	specs := []func() *machine.Spec{machine.Longs, longsNoCoherence}
	triads := parMap(r, len(specs), func(i int) float64 { return triad(specs[i]()) })
	base, fixed := triads[0], triads[1]
	t.AddRow("1-core STREAM GB/s", report.F(base), report.F(fixed), report.F(fixed/base))

	cgTime := func(spec *machine.Spec) float64 {
		body, err := npb.RunCG(npbClass(s))
		if err != nil {
			panic(err)
		}
		ctx, cancel := r.jobContext()
		defer cancel()
		res, err := core.RunContext(ctx, core.Job{Spec: spec, Ranks: 8, Scheme: affinity.OneMPILocalAlloc,
			Impl: mpi.MPICH2()}, body)
		if err != nil {
			panic(err)
		}
		return res.Max(npb.MetricCGTime)
	}
	cgs := parMap(r, len(specs), func(i int) float64 { return cgTime(specs[i]()) })
	baseCG, fixedCG := cgs[0], cgs[1]
	t.AddRow("NAS CG 8 ranks (s)", report.Seconds(baseCG), report.Seconds(fixedCG), report.F(baseCG/fixedCG))
	return []*report.Table{t}
}

// longsCrossbar keeps the Longs cores and memory but links every socket
// pair directly.
func longsCrossbar() *machine.Spec {
	spec := machine.Longs()
	var links []topology.Link
	for a := 0; a < 8; a++ {
		for b := a + 1; b < 8; b++ {
			links = append(links, topology.Link{A: topology.SocketID(a), B: topology.SocketID(b)})
		}
	}
	spec.Topo = topology.New("Longs-xbar", 8, 2, links)
	return spec
}

func runAblateTopology(r *Runner, s Scale) []*report.Table {
	t := report.New("Topology ablation: 2x4 ladder vs full crossbar (Longs, 16 ranks)",
		"Metric", "Ladder", "Crossbar", "Ladder cost")

	ftTime := func(spec *machine.Spec) float64 {
		body, err := npb.RunFT(npb.ClassA)
		if err != nil {
			panic(err)
		}
		ctx, cancel := r.jobContext()
		defer cancel()
		res, err := core.RunContext(ctx, core.Job{Spec: spec, Ranks: 16, Impl: mpi.MPICH2()}, body)
		if err != nil {
			panic(err)
		}
		return res.Max(npb.MetricFTTime)
	}
	specs := []func() *machine.Spec{machine.Longs, longsCrossbar}
	fts := parMap(r, len(specs), func(i int) float64 { return ftTime(specs[i]()) })
	ladder, xbar := fts[0], fts[1]
	t.AddRow("NAS FT 16 ranks (s)", report.Seconds(ladder), report.Seconds(xbar), report.F(ladder/xbar))

	ringLat := func(spec *machine.Spec) float64 {
		b, err := affinity.Layout(affinity.Default, spec.Topo, 16)
		if err != nil {
			panic(err)
		}
		pt := imb.Ring(mpi.Config{Spec: spec, Impl: mpi.LAM().WithSublayer(mpi.USysV()), Bindings: b}, 8, 30)
		return pt.Latency / units.Microsecond
	}
	rings := parMap(r, len(specs), func(i int) float64 { return ringLat(specs[i]()) })
	lr, xr := rings[0], rings[1]
	t.AddRow("Ring latency 8 B (us)", report.F(lr), report.F(xr), report.F(lr/xr))
	return []*report.Table{t}
}

func runAblateSublayer(r *Runner, s Scale) []*report.Table {
	t := report.New("Sub-layer latency sweep: MPI RandomAccess, 16 ranks on Longs",
		"Lock+wake latency (us)", "MPI GUPS per core", "PingPong latency (us)")
	lockSweep := []float64{0.5, 1, 2, 4, 8, 16, 32}
	rows := parMap(r, len(lockSweep), func(i int) []string {
		lockUS := lockSweep[i]
		sub := mpi.Sublayer{
			Name:        fmt.Sprintf("sweep-%g", lockUS),
			LockLatency: lockUS / 3 * units.Microsecond,
			WakeLatency: lockUS * 2 / 3 * units.Microsecond,
		}
		impl := mpi.LAM().WithSublayer(sub)
		spec := machine.Longs()
		b, err := affinity.Layout(affinity.Default, spec.Topo, 16)
		if err != nil {
			panic(err)
		}
		ctx, cancel := r.jobContext()
		defer cancel()
		res, err := mpi.RunContext(ctx, mpi.Config{Spec: spec, Impl: impl, Bindings: b}, func(r *mpi.Rank) {
			rnda.Run(r, rnda.Params{TableBytes: 32 << 20, Updates: 8e5, MPI: true})
		})
		if err != nil {
			panic(err)
		}
		b2 := []affinity.Binding{
			{Core: 0, MemPolicy: mem.LocalAlloc},
			{Core: 2, MemPolicy: mem.LocalAlloc},
		}
		pt := imb.PingPong(mpi.Config{Spec: spec, Impl: impl, Bindings: b2}, 8, 30)
		return []string{report.F(lockUS),
			report.F(res.Mean(rnda.MetricGUPS)),
			report.F(pt.Latency / units.Microsecond)}
	})
	for _, row := range rows {
		t.AddRow(row...)
	}
	return []*report.Table{t}
}

func runExtHybrid(r *Runner, s Scale) []*report.Table {
	t := report.New("Three communication classes on Longs (OpenMPI PingPong)",
		"Channel", "Latency 8 B (us)", "Bandwidth 1 MiB (MB/s)")
	spec := machine.Longs()
	cases := []struct {
		name  string
		cores [2]topology.CoreID
	}{
		{"within a socket (cores 0,1)", [2]topology.CoreID{0, 1}},
		{"neighbor sockets (1 hop)", [2]topology.CoreID{0, 2}},
		{"across the ladder (4 hops)", [2]topology.CoreID{0, 14}},
	}
	rows := parMap(r, len(cases), func(i int) []string {
		c := cases[i]
		b := []affinity.Binding{
			{Core: c.cores[0], MemPolicy: mem.LocalAlloc},
			{Core: c.cores[1], MemPolicy: mem.LocalAlloc},
		}
		cfg := mpi.Config{Spec: spec, Impl: mpi.OpenMPI(), Bindings: b}
		lat := imb.PingPong(cfg, 8, 30)
		bw := imb.PingPong(cfg, units.MB, 15)
		return []string{c.name, report.F(lat.Latency / units.Microsecond), report.F(bw.Bandwidth / units.Mega)}
	})
	for _, row := range rows {
		t.AddRow(row...)
	}
	return []*report.Table{t}
}

// Collective-algorithm ablation: quantifies why the runtime switches
// algorithms by payload size.
func init() {
	register(Experiment{
		ID:    "ablate-collectives",
		Title: "Allreduce/Bcast algorithm crossover (Longs, 8 ranks)",
		Paper: "Justifies the size-adaptive collective selection: latency-optimal trees for small payloads, bandwidth-optimal rings for large ones.",
		Run:   runAblateCollectives,
	})
}

func runAblateCollectives(r *Runner, s Scale) []*report.Table {
	t := report.New("Collective algorithms by payload (seconds, 8 ranks on Longs)",
		"Payload", "Allreduce doubling", "Allreduce ring", "Bcast binomial", "Bcast scatter+allgather")
	spec := machine.Longs()
	b, err := affinity.Layout(affinity.OneMPILocalAlloc, spec.Topo, 8)
	if err != nil {
		panic(err)
	}
	timeOf := func(body func(*mpi.Rank)) float64 {
		ctx, cancel := r.jobContext()
		defer cancel()
		res, err := mpi.RunContext(ctx, mpi.Config{Spec: spec, Impl: mpi.MPICH2(), Bindings: b}, body)
		if err != nil {
			panic(err)
		}
		return res.Time
	}
	sizes := []float64{64, 4 * units.KB, 64 * units.KB, units.MB, 8 * units.MB}
	if s == Quick {
		sizes = sizes[:4]
	}
	algos := []func(*mpi.Rank, float64){
		func(r *mpi.Rank, b float64) { r.AllreduceRecursiveDoubling(b) },
		func(r *mpi.Rank, b float64) { r.AllreduceRing(b) },
		func(r *mpi.Rank, b float64) { r.BcastBinomial(0, b) },
		func(r *mpi.Rank, b float64) { r.BcastScatterAllgather(0, b) },
	}
	times := parMap(r, len(sizes)*len(algos), func(i int) float64 {
		bytes, algo := sizes[i/len(algos)], algos[i%len(algos)]
		return timeOf(func(r *mpi.Rank) { algo(r, bytes) })
	})
	for i, bytes := range sizes {
		t.AddRow(units.Bytes(bytes),
			report.Seconds(times[i*len(algos)]),
			report.Seconds(times[i*len(algos)+1]),
			report.Seconds(times[i*len(algos)+2]),
			report.Seconds(times[i*len(algos)+3]))
	}
	return []*report.Table{t}
}
