package experiments

import (
	"fmt"

	"multicore/internal/affinity"
	"multicore/internal/kernels/stream"
	"multicore/internal/machine"
	"multicore/internal/mem"
	"multicore/internal/mpi"
	"multicore/internal/report"
	"multicore/internal/topology"
	"multicore/internal/units"
)

// numa-stream: Bergstrom's STREAM-on-NUMA measurements (arXiv:1103.3225)
// replayed on the paper's systems and the modern machine pack. Two views:
// a single thread's triad bandwidth as its pages move to ever more distant
// nodes, and the aggregate bandwidth of a fully loaded machine under each
// placement scheme.
func init() {
	register(Experiment{
		ID:    "numa-stream",
		Title: "STREAM triad under NUMA placement (after Bergstrom, arXiv:1103.3225)",
		Paper: "Local pages beat remote pages at every hop count, and localalloc beats interleave beats wrong-node membind — on the 2006 ladders and on modern multi-die/hybrid parts alike.",
		Run:   runNumaStream,
	})
}

// numaStreamSystems pairs a 2006 paper system with the modern pack, so
// the tables show the NUMA effects surviving the architecture change.
// Labels are the registry names — they join the cell store keys, so they
// are part of the on-disk format.
type numaSystem struct {
	label string
	spec  *machine.Spec
}

func numaStreamSystems() []numaSystem {
	return []numaSystem{
		{"longs", machine.Longs()},
		{"epyc2x4", machine.EPYC2x4()},
		{"hybrid16", machine.Hybrid16()},
	}
}

// probeCores picks one representative core per core class (core 0 for
// homogeneous machines), so hybrid machines get a P row and an E row.
func probeCores(spec *machine.Spec) []topology.CoreID {
	topo := spec.Topo
	if len(topo.Classes) == 0 {
		return []topology.CoreID{topo.CoresOn(0)[0]}
	}
	cores := make([]topology.CoreID, 0, len(topo.Classes))
	for cl := range topo.Classes {
		for c := 0; c < topo.NumCores(); c++ {
			if topo.ClassOf(topology.CoreID(c)) == cl {
				cores = append(cores, topology.CoreID(c))
				break
			}
		}
	}
	return cores
}

// classLabel names a core's class, or "-" on homogeneous machines.
func classLabel(topo *topology.System, c topology.CoreID) string {
	if len(topo.Classes) == 0 {
		return "-"
	}
	return topo.ClassName(topo.ClassOf(c))
}

// numaStreamBW runs a single-rank triad on core with pages bound to node
// and returns bandwidth in GB/s. Memoized through the runner's cell cache
// (core and node join the workload string — CellKey has no fields for
// them).
func numaStreamBW(r *Runner, sys numaSystem, core topology.CoreID, node int, vec float64) (float64, error) {
	spec := sys.spec
	return runCell(r, CellKey{
		Workload: fmt.Sprintf("numa-stream/%g/c%d/n%d", vec, core, node),
		System:   sys.label, Ranks: 1,
	}, func() (float64, error) {
		bindings := []affinity.Binding{{Core: core, MemPolicy: mem.Membind, BindNodes: []int{node}}}
		ctx, cancel := r.jobContext()
		defer cancel()
		res, err := mpi.RunContext(ctx, mpi.Config{Spec: spec, Impl: mpi.LAM(), Bindings: bindings},
			func(r *mpi.Rank) {
				stream.RunTriad(r, stream.Params{VectorBytes: vec, Iters: 2})
			})
		if err != nil {
			return 0, err
		}
		return res.Sum(stream.MetricBandwidth) / units.Giga, nil
	})
}

// numaStreamDistanceTable is Bergstrom's Figure 1 analogue: one thread,
// pages bound ever further away. Long format — systems differ in their
// hop-distance range.
func numaStreamDistanceTable(r *Runner, vec float64) *report.Table {
	t := report.New("Single-thread STREAM triad vs memory-node distance (GB/s)",
		"System", "Core class", "Hops to memory", "Triad BW")
	type probe struct {
		sys  numaSystem
		core topology.CoreID
		node int
		hops int
	}
	var grid []probe
	for _, sys := range numaStreamSystems() {
		topo := sys.spec.Topo
		for _, core := range probeCores(sys.spec) {
			home := topo.SocketOf(core)
			seen := map[int]bool{}
			for s := 0; s < topo.NumSockets; s++ {
				h := topo.Hops(home, topology.SocketID(s))
				if seen[h] {
					continue
				}
				seen[h] = true
				grid = append(grid, probe{sys, core, s, h})
			}
		}
	}
	vals := parMap(r, len(grid), func(i int) cellValue {
		p := grid[i]
		v, err := numaStreamBW(r, p.sys, p.core, p.node, vec)
		return cellValue{v, err}
	})
	for i, p := range grid {
		t.AddRow(p.sys.label, classLabel(p.sys.spec.Topo, p.core),
			fmt.Sprint(p.hops), cellString(vals[i], report.F))
	}
	return t
}

// numaStreamSchemes is the placement-policy view: every core streaming,
// under the OS default, localalloc, wrong-node membind, and interleave.
var numaStreamSchemes = []affinity.Scheme{
	affinity.Default,
	affinity.OneMPILocalAlloc,
	affinity.OneMPIMembind,
	affinity.Interleave,
}

// numaStreamAggregate runs the triad on every core under a scheme and
// returns aggregate bandwidth in GB/s.
func numaStreamAggregate(r *Runner, sys numaSystem, scheme affinity.Scheme, vec float64) (float64, error) {
	spec := sys.spec
	ranks := spec.Topo.NumSockets // one streaming rank per socket, Bergstrom's thread-per-node setup
	return runCell(r, CellKey{
		Workload: fmt.Sprintf("numa-stream-agg/%g", vec),
		System:   sys.label, Ranks: ranks, Scheme: scheme,
	}, func() (float64, error) {
		bindings, err := affinity.Layout(scheme, spec.Topo, ranks)
		if err != nil {
			return 0, err
		}
		ctx, cancel := r.jobContext()
		defer cancel()
		res, err := mpi.RunContext(ctx, mpi.Config{Spec: spec, Impl: mpi.LAM(), Bindings: bindings},
			func(r *mpi.Rank) {
				stream.RunTriad(r, stream.Params{VectorBytes: vec, Iters: 2})
			})
		if err != nil {
			return 0, err
		}
		return res.Sum(stream.MetricBandwidth) / units.Giga, nil
	})
}

func numaStreamSchemeTable(r *Runner, vec float64) *report.Table {
	t := report.New("Aggregate STREAM triad by placement scheme, one rank per socket (GB/s)",
		"System", "Ranks", "Default", "Local Alloc", "Membind", "Interleave")
	systems := numaStreamSystems()
	vals := parMap(r, len(systems)*len(numaStreamSchemes), func(i int) cellValue {
		sys, scheme := systems[i/len(numaStreamSchemes)], numaStreamSchemes[i%len(numaStreamSchemes)]
		v, err := numaStreamAggregate(r, sys, scheme, vec)
		return cellValue{v, err}
	})
	for i, sys := range systems {
		row := []string{sys.label, fmt.Sprint(sys.spec.Topo.NumSockets)}
		for j := range numaStreamSchemes {
			row = append(row, cellString(vals[i*len(numaStreamSchemes)+j], report.F))
		}
		t.AddRow(row...)
	}
	return t
}

func runNumaStream(r *Runner, s Scale) []*report.Table {
	vec := 16.0 * units.MB
	if s == Full {
		vec = 64.0 * units.MB
	}
	return []*report.Table{
		numaStreamDistanceTable(r, vec),
		numaStreamSchemeTable(r, vec),
	}
}
