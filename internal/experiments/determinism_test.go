package experiments

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"testing"
)

// renderAll renders an experiment's tables through the given runner to
// one canonical string.
func renderAll(t *testing.T, r *Runner, e Experiment) string {
	t.Helper()
	tabs, err := r.Run(e, Quick)
	if err != nil {
		t.Fatalf("%s: %v", e.ID, err)
	}
	var b strings.Builder
	for _, tab := range tabs {
		b.WriteString(tab.Text())
		b.WriteString("\n")
	}
	return b.String()
}

// TestSerialParallelIdentical is the determinism regression for the
// parallel executor: every experiment must render byte-identical tables
// whether its cells run serially or on a many-worker pool. Each pass
// gets a fresh runner so both actually simulate.
func TestSerialParallelIdentical(t *testing.T) {
	exps := All()
	if testing.Short() {
		// One representative of each table family keeps -short fast.
		short := []string{"fig2", "fig8", "fig14", "table2", "table8", "table13", "ablate-sublayer"}
		exps = exps[:0]
		for _, id := range short {
			e, ok := ByID(id)
			if !ok {
				t.Fatalf("no experiment %q", id)
			}
			exps = append(exps, e)
		}
	}
	for _, e := range exps {
		e := e
		t.Run(e.ID, func(t *testing.T) {
			serial := renderAll(t, NewRunner(nil, Options{Parallelism: 1}), e)
			parallel := renderAll(t, NewRunner(nil, Options{Parallelism: 8}), e)
			if serial != parallel {
				t.Errorf("%s: serial and parallel runs render different tables\nserial:\n%s\nparallel:\n%s",
					e.ID, serial, parallel)
			}
		})
	}
}

// updateEngineGolden rewrites testdata/engine_golden.json from the current
// engine. Run it once per intentional semantic change:
//
//	go test ./internal/experiments -run TestEngineGolden -update-engine-golden
var updateEngineGolden = flag.Bool("update-engine-golden", false,
	"rewrite testdata/engine_golden.json from the current engine")

// engineGolden pins the engine's observable semantics: SHA-256 of the
// rendered tables and of the combined per-cell Chrome traces for one
// microbenchmark, one NPB, and one application artifact. The committed
// file was generated from the seed (pre-optimization) event engine, so
// any engine rework that changes a simulated time, a trace span, or a
// resource-rate segment anywhere in these sweeps fails this test.
type engineGolden struct {
	Tables map[string]string `json:"tables"`
	Traces map[string]string `json:"traces"`
}

const engineGoldenPath = "testdata/engine_golden.json"

// engineGoldenSample spans the three workload families: STREAM triad
// (micro), NAS EP/MG (NPB), and AMBER JAC (application).
var engineGoldenSample = []string{"fig2", "ext-npb", "table9"}

func sha256hex(b []byte) string {
	h := sha256.Sum256(b)
	return hex.EncodeToString(h[:])
}

// hashTraceDir hashes every trace file in dir as (name, content) pairs in
// sorted order, so the digest covers the full byte content of every cell's
// trace and the set of cells traced.
func hashTraceDir(t *testing.T, dir string) string {
	t.Helper()
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	names := make([]string, 0, len(entries))
	for _, ent := range entries {
		names = append(names, ent.Name())
	}
	sort.Strings(names)
	if len(names) == 0 {
		t.Fatal("no trace files written")
	}
	h := sha256.New()
	for _, name := range names {
		data, err := os.ReadFile(filepath.Join(dir, name))
		if err != nil {
			t.Fatal(err)
		}
		h.Write([]byte(name))
		h.Write([]byte{0})
		h.Write(data)
		h.Write([]byte{0})
	}
	return hex.EncodeToString(h.Sum(nil))
}

// TestEngineGoldenArtifacts re-simulates the sample artifacts with tracing
// enabled and asserts the tables and traces are byte-identical to the
// committed goldens. Each sample gets a fresh runner so every cell is
// simulated and traced.
func TestEngineGoldenArtifacts(t *testing.T) {
	got := engineGolden{Tables: map[string]string{}, Traces: map[string]string{}}
	for _, id := range engineGoldenSample {
		e, ok := ByID(id)
		if !ok {
			t.Fatalf("no experiment %q", id)
		}
		dir := t.TempDir()
		r := NewRunner(nil, Options{TraceDir: dir})
		text := renderAll(t, r, e)
		got.Tables[id] = sha256hex([]byte(text))
		got.Traces[id] = hashTraceDir(t, dir)
	}

	if *updateEngineGolden {
		if err := os.MkdirAll(filepath.Dir(engineGoldenPath), 0o755); err != nil {
			t.Fatal(err)
		}
		data, err := json.MarshalIndent(got, "", "  ")
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(engineGoldenPath, append(data, '\n'), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("wrote %s", engineGoldenPath)
		return
	}

	data, err := os.ReadFile(engineGoldenPath)
	if err != nil {
		t.Fatalf("reading golden (regenerate with -update-engine-golden): %v", err)
	}
	var want engineGolden
	if err := json.Unmarshal(data, &want); err != nil {
		t.Fatal(err)
	}
	for _, id := range engineGoldenSample {
		if got.Tables[id] != want.Tables[id] {
			t.Errorf("%s: table hash %s != golden %s — engine change altered simulated results",
				id, got.Tables[id], want.Tables[id])
		}
		if got.Traces[id] != want.Traces[id] {
			t.Errorf("%s: trace hash %s != golden %s — engine change altered trace content",
				id, got.Traces[id], want.Traces[id])
		}
	}
}
