package experiments

import (
	"strings"
	"testing"
)

// renderAll renders an experiment's tables to one canonical string.
func renderAll(e Experiment) string {
	var b strings.Builder
	for _, tab := range e.Run(Quick) {
		b.WriteString(tab.Text())
		b.WriteString("\n")
	}
	return b.String()
}

// TestSerialParallelIdentical is the determinism regression for the
// parallel executor: every experiment must render byte-identical tables
// whether its cells run serially or on a many-worker pool. The cache is
// cleared between passes so both actually simulate.
func TestSerialParallelIdentical(t *testing.T) {
	exps := All()
	if testing.Short() {
		// One representative of each table family keeps -short fast.
		short := []string{"fig2", "fig8", "fig14", "table2", "table8", "table13", "ablate-sublayer"}
		exps = exps[:0]
		for _, id := range short {
			e, ok := ByID(id)
			if !ok {
				t.Fatalf("no experiment %q", id)
			}
			exps = append(exps, e)
		}
	}
	orig := Parallelism()
	defer SetParallelism(orig)
	for _, e := range exps {
		e := e
		t.Run(e.ID, func(t *testing.T) {
			ClearCache()
			SetParallelism(1)
			serial := renderAll(e)
			ClearCache()
			SetParallelism(8)
			parallel := renderAll(e)
			if serial != parallel {
				t.Errorf("%s: serial and parallel runs render different tables\nserial:\n%s\nparallel:\n%s",
					e.ID, serial, parallel)
			}
		})
	}
	ClearCache()
}
